//===- tests/AtomicityLitmusTest.cpp - Section IV-A classification -------------===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Replays the paper's Seq1–Seq4 interleavings under every scheme and
/// checks that each scheme lands in exactly the atomicity class Table II
/// assigns it: PICO-CAS/PICO-HTM incorrect, HST-WEAK weak, the rest strong.
///
//===----------------------------------------------------------------------===//

#include "workloads/Litmus.h"

#include <gtest/gtest.h>

using namespace llsc;
using namespace llsc::workloads;

namespace {

std::unique_ptr<Machine> makeMachine(SchemeKind Scheme) {
  MachineConfig Config;
  Config.Scheme = Scheme;
  Config.NumThreads = 2;
  Config.MemBytes = 8ULL << 20;
  Config.ForceSoftHtm = true;
  auto MachineOrErr = Machine::create(Config);
  EXPECT_TRUE(bool(MachineOrErr)) << MachineOrErr.error().render();
  return MachineOrErr.take();
}

class LitmusTest : public ::testing::TestWithParam<SchemeKind> {};

INSTANTIATE_TEST_SUITE_P(
    Schemes, LitmusTest, ::testing::ValuesIn(allSchemeKinds()),
    [](const ::testing::TestParamInfo<SchemeKind> &Info) {
      std::string Name = schemeTraits(Info.param).Name;
      for (char &C : Name)
        if (C == '-')
          C = '_';
      return Name;
    });

} // namespace

/// Basic sanity: LL then SC with no interference succeeds and stores.
TEST_P(LitmusTest, UncontestedLlScSucceeds) {
  auto M = makeMachine(GetParam());
  auto DriverOrErr = LitmusDriver::create(*M);
  ASSERT_TRUE(bool(DriverOrErr)) << DriverOrErr.error().render();
  LitmusDriver &Driver = *DriverOrErr;

  Driver.resetVar(7);
  EXPECT_EQ(Driver.loadLink(0), 7u);
  EXPECT_TRUE(Driver.storeCond(0, 8));
  EXPECT_EQ(Driver.varValue(), 8u);
}

/// SC without a matching LL must fail.
TEST_P(LitmusTest, ScWithoutLlFails) {
  auto M = makeMachine(GetParam());
  auto DriverOrErr = LitmusDriver::create(*M);
  ASSERT_TRUE(bool(DriverOrErr)) << DriverOrErr.error().render();
  LitmusDriver &Driver = *DriverOrErr;

  Driver.resetVar(7);
  EXPECT_FALSE(Driver.storeCond(0, 8));
  EXPECT_EQ(Driver.varValue(), 7u);
}

/// An SC consumes the monitor: a second SC must fail.
TEST_P(LitmusTest, ScConsumesMonitor) {
  auto M = makeMachine(GetParam());
  auto DriverOrErr = LitmusDriver::create(*M);
  ASSERT_TRUE(bool(DriverOrErr)) << DriverOrErr.error().render();
  LitmusDriver &Driver = *DriverOrErr;

  Driver.resetVar(7);
  Driver.loadLink(0);
  EXPECT_TRUE(Driver.storeCond(0, 8));
  EXPECT_FALSE(Driver.storeCond(0, 9));
  EXPECT_EQ(Driver.varValue(), 8u);
}

/// A same-thread plain store must NOT break the thread's own monitor
/// (Section II-A), except under page-granular PST where the paper accepts
/// monitor loss only for *other* threads — our PST implementations also
/// preserve the own-thread case (the fault handler excludes the storing
/// thread).
TEST_P(LitmusTest, OwnStoreKeepsMonitor) {
  auto M = makeMachine(GetParam());
  auto DriverOrErr = LitmusDriver::create(*M);
  ASSERT_TRUE(bool(DriverOrErr)) << DriverOrErr.error().render();
  LitmusDriver &Driver = *DriverOrErr;

  // PICO-HTM cannot run a plain store of the same thread inside its open
  // transaction meaningfully; skip it there (Table II has it incorrect
  // anyway).
  if (GetParam() == SchemeKind::PicoHtm)
    GTEST_SKIP();

  Driver.resetVar(7);
  Driver.loadLink(0);
  Driver.plainStore(0, 7); // Same thread, same value.
  EXPECT_TRUE(Driver.storeCond(0, 8));
}

/// Competing SC from another thread breaks the monitor (weak atomicity
/// floor — every scheme except PICO-CAS/PICO-HTM catches this; Seq2).
TEST_P(LitmusTest, Seq2LlScInterference) {
  auto M = makeMachine(GetParam());
  auto DriverOrErr = LitmusDriver::create(*M);
  ASSERT_TRUE(bool(DriverOrErr)) << DriverOrErr.error().render();
  LitmusOutcome Outcome = runLitmusSequence(*DriverOrErr, 2);

  AtomicityClass Expected = schemeTraits(GetParam()).Atomicity;
  if (Expected == AtomicityClass::Incorrect)
    EXPECT_FALSE(Outcome.ScaFailed)
        << "incorrect schemes are expected to miss Seq2 (the ABA bug)";
  else
    EXPECT_TRUE(Outcome.ScaFailed);
}

/// Seq1: plain-store ABA — only strong schemes catch it.
TEST_P(LitmusTest, Seq1PlainStoreAba) {
  auto M = makeMachine(GetParam());
  auto DriverOrErr = LitmusDriver::create(*M);
  ASSERT_TRUE(bool(DriverOrErr)) << DriverOrErr.error().render();
  LitmusOutcome Outcome = runLitmusSequence(*DriverOrErr, 1);

  switch (schemeTraits(GetParam()).Atomicity) {
  case AtomicityClass::Strong:
    EXPECT_TRUE(Outcome.ScaFailed);
    break;
  case AtomicityClass::Weak:
    EXPECT_FALSE(Outcome.ScaFailed)
        << "HST-WEAK by design does not observe plain stores";
    break;
  case AtomicityClass::Incorrect:
    // PICO-CAS misses; PICO-HTM's conflict detection may catch it.
    if (GetParam() == SchemeKind::PicoCas) {
      EXPECT_FALSE(Outcome.ScaFailed);
    }
    break;
  }
}

/// Full classification must match Table II.
TEST_P(LitmusTest, ClassificationMatchesTableII) {
  auto M = makeMachine(GetParam());
  auto DriverOrErr = LitmusDriver::create(*M);
  ASSERT_TRUE(bool(DriverOrErr)) << DriverOrErr.error().render();
  MeasuredAtomicity Measured = classifyScheme(*DriverOrErr);

  switch (schemeTraits(GetParam()).Atomicity) {
  case AtomicityClass::Strong:
    EXPECT_EQ(Measured, MeasuredAtomicity::Strong);
    break;
  case AtomicityClass::Weak:
    EXPECT_EQ(Measured, MeasuredAtomicity::Weak);
    break;
  case AtomicityClass::Incorrect:
    EXPECT_EQ(Measured, MeasuredAtomicity::Incorrect);
    break;
  }
}

/// Seq3 and Seq4 must fail under every weak-or-better scheme.
TEST_P(LitmusTest, Seq3Seq4) {
  auto M = makeMachine(GetParam());
  auto DriverOrErr = LitmusDriver::create(*M);
  ASSERT_TRUE(bool(DriverOrErr)) << DriverOrErr.error().render();

  for (int Seq : {3, 4}) {
    LitmusOutcome Outcome = runLitmusSequence(*DriverOrErr, Seq);
    if (GetParam() == SchemeKind::PicoCas) {
      EXPECT_FALSE(Outcome.ScaFailed) << "Seq" << Seq;
    } else if (schemeTraits(GetParam()).Atomicity !=
               AtomicityClass::Incorrect) {
      EXPECT_TRUE(Outcome.ScaFailed) << "Seq" << Seq;
    }
  }
}

/// Monitors are per-thread: thread b's LL on a different variable does not
/// disturb thread a's monitor... but LL/SC to the SAME address from two
/// threads where only one commits: the other must fail.
TEST_P(LitmusTest, CompetingScOnlyOneWins) {
  auto M = makeMachine(GetParam());
  auto DriverOrErr = LitmusDriver::create(*M);
  ASSERT_TRUE(bool(DriverOrErr)) << DriverOrErr.error().render();
  LitmusDriver &Driver = *DriverOrErr;

  if (GetParam() == SchemeKind::PicoHtm)
    GTEST_SKIP(); // Both LLs open transactions; soft HTM serializes them.

  Driver.resetVar(1);
  Driver.loadLink(0);
  Driver.loadLink(1);
  bool BWins = Driver.storeCond(1, 2);
  bool AWins = Driver.storeCond(0, 3);
  EXPECT_TRUE(BWins);
  // PICO-CAS wrongly lets A win too (value changed 1 -> 2, mismatch, so
  // actually the CAS fails here: expected=1, current=2). Everyone fails A.
  EXPECT_FALSE(AWins);
  EXPECT_EQ(Driver.varValue(), 2u);
}
