//===- tests/FuzzTest.cpp - the fuzzer's own test suite --------------------------===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Tests the differential concurrency fuzzer itself (docs/FUZZING.md):
///
///  - Detection power: against the preserved pre-fix single-granule HST
///    fixture, a short fuzz run MUST report a forbidden SC success (the
///    negative control that proves the fuzzer can see the bug this PR
///    fixed) — and the same run against the real schemes must be clean.
///  - The oracle's state machine, in isolation.
///  - Shrinking: minimized cases still reproduce and are genuinely small.
///  - Repro files: render -> parse round-trips, replay reproduces on the
///    fixture and passes on the fixed scheme.
///  - Schedule controllers: FixedSchedule replay semantics and PCT
///    determinism.
///
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzz.h"

#include <gtest/gtest.h>

using namespace llsc;
using namespace llsc::fuzz;

namespace {

/// The canonical multi-granule killer: 8-byte LL/SC on thread 0, 4-byte
/// store into the second granule on thread 1, interleaved store-between.
FuzzCase canonicalCase() {
  FuzzCase Case;
  Case.Threads.resize(2);
  Case.Threads[0] = {{EventKind::LoadLink, 0, 8, 0},
                     {EventKind::StoreCond, 0, 8, 1}};
  Case.Threads[1] = {{EventKind::PlainStore, 4, 4, 3}};
  return Case;
}

/// Preamble (2 slices/thread in tid order) + the given event merge.
std::vector<unsigned> traceFor(const FuzzCase &Case,
                               std::initializer_list<unsigned> Events) {
  std::vector<unsigned> Trace;
  for (unsigned Tid = 0; Tid < Case.numThreads(); ++Tid) {
    Trace.push_back(Tid);
    Trace.push_back(Tid);
  }
  Trace.insert(Trace.end(), Events);
  return Trace;
}

} // namespace

// --- Detection power --------------------------------------------------------

TEST(FuzzDetection, SingleGranuleHstFailsCanonicalCase) {
  CaseRunner::Config Config;
  Config.Scheme = SchemeKind::Hst;
  Config.BuggySingleGranuleHst = true;
  CaseRunner Runner(Config);

  FuzzCase Case = canonicalCase();
  // LL(t0), store(t1), SC(t0): the store breaks the monitor's second
  // granule, which single-granule HST cannot see.
  FixedSchedule Sched(traceFor(Case, {0, 1, 0}));
  auto Res = Runner.run(Case, Sched);
  ASSERT_TRUE(bool(Res)) << Res.error().render();
  ASSERT_FALSE(Res->Violations.empty())
      << "the pre-fix fixture no longer exhibits the multi-granule bug";
  EXPECT_NE(Res->Violations[0].What.find("forbidden"), std::string::npos)
      << Res->Violations[0].What;
}

TEST(FuzzDetection, FixedHstPassesCanonicalCase) {
  CaseRunner::Config Config;
  Config.Scheme = SchemeKind::Hst;
  CaseRunner Runner(Config);

  FuzzCase Case = canonicalCase();
  FixedSchedule Sched(traceFor(Case, {0, 1, 0}));
  auto Res = Runner.run(Case, Sched);
  ASSERT_TRUE(bool(Res)) << Res.error().render();
  EXPECT_TRUE(Res->Violations.empty())
      << "fixed HST still unsound: " << Res->Violations[0].What;
  EXPECT_TRUE(Res->AllHalted);
}

TEST(FuzzDetection, FuzzLoopFindsTheBugInTheBuggyFixture) {
  FuzzOptions Opts;
  Opts.Schemes = {SchemeKind::Hst};
  Opts.Seed = 3;
  Opts.NumCases = 300;
  Opts.BuggyHst = true;
  Opts.MaxFailuresPerScheme = 1;
  auto Report = runFuzz(Opts);
  ASSERT_TRUE(bool(Report)) << Report.error().render();
  ASSERT_FALSE(Report->Failures.empty())
      << "the fuzzer lost its detection power over the single-granule bug";

  // Shrinking keeps only what the violation needs: an LL/SC pair and one
  // interfering event across two threads.
  const FailureRecord &Rec = Report->Failures[0];
  EXPECT_LE(Rec.Shrunk.numThreads(), 2u);
  EXPECT_LE(Rec.Shrunk.totalEvents(), 4u);
  EXPECT_NE(Rec.First.What.find("forbidden"), std::string::npos)
      << Rec.First.What;
}

TEST(FuzzDetection, FuzzLoopCleanOnFixedSchemes) {
  FuzzOptions Opts;
  Opts.Schemes = {SchemeKind::Hst, SchemeKind::HstWeak, SchemeKind::Pst,
                  SchemeKind::PstRemap, SchemeKind::PicoSt};
  Opts.Seed = 3;
  Opts.NumCases = 60;
  auto Report = runFuzz(Opts);
  ASSERT_TRUE(bool(Report)) << Report.error().render();
  for (const FailureRecord &Rec : Report->Failures)
    ADD_FAILURE() << schemeTraits(Rec.Scheme).Name << ": "
                  << Rec.First.What;
  EXPECT_GT(Report->SchedulesRun, Report->CasesRun);
}

TEST(FuzzDetection, PicoCasAbaIsCountedNotFlagged) {
  // LL(t0 of 4 bytes), t1 SC's the value away and back (ABA), SC(t0):
  // pico-cas's value compare succeeds; the oracle must classify it as an
  // ABA success, not a soundness violation (negative control).
  FuzzCase Case;
  Case.Threads.resize(2);
  Case.Threads[0] = {{EventKind::LoadLink, 0, 4, 0},
                     {EventKind::StoreCond, 0, 4, 2}};
  Case.Threads[1] = {{EventKind::LoadLink, 0, 4, 0},
                     {EventKind::StoreCond, 0, 4, 1},
                     {EventKind::LoadLink, 0, 4, 0},
                     {EventKind::StoreCond, 0, 4, 0}};

  CaseRunner::Config Config;
  Config.Scheme = SchemeKind::PicoCas;
  CaseRunner Runner(Config);
  // t0 LL, then t1 runs its whole ABA cycle, then t0's SC.
  FixedSchedule Sched(traceFor(Case, {0, 1, 1, 1, 1, 0}));
  auto Res = Runner.run(Case, Sched);
  ASSERT_TRUE(bool(Res)) << Res.error().render();
  EXPECT_TRUE(Res->Violations.empty());
  EXPECT_EQ(Res->AbaSuccesses, 1u)
      << "pico-cas should have taken the ABA bait";

  // The same schedule under HST must fail the SC instead.
  CaseRunner::Config Strong;
  Strong.Scheme = SchemeKind::Hst;
  CaseRunner StrongRunner(Strong);
  FixedSchedule Sched2(traceFor(Case, {0, 1, 1, 1, 1, 0}));
  auto Res2 = StrongRunner.run(Case, Sched2);
  ASSERT_TRUE(bool(Res2)) << Res2.error().render();
  EXPECT_TRUE(Res2->Violations.empty());
  EXPECT_EQ(Res2->AbaSuccesses, 0u);
}

TEST(FuzzDetection, BwLlscIgnoresAbaBait) {
  // The same ABA bait as the pico-cas test: bw-llsc's version-tagged
  // descriptor CAS must fail the SC (t1's commits consumed t0's slot and
  // bumped the version), with zero ABA successes and zero violations.
  FuzzCase Case;
  Case.Threads.resize(2);
  Case.Threads[0] = {{EventKind::LoadLink, 0, 4, 0},
                     {EventKind::StoreCond, 0, 4, 2}};
  Case.Threads[1] = {{EventKind::LoadLink, 0, 4, 0},
                     {EventKind::StoreCond, 0, 4, 1},
                     {EventKind::LoadLink, 0, 4, 0},
                     {EventKind::StoreCond, 0, 4, 0}};

  CaseRunner::Config Config;
  Config.Scheme = SchemeKind::BwLlsc;
  CaseRunner Runner(Config);
  FixedSchedule Sched(traceFor(Case, {0, 1, 1, 1, 1, 0}));
  auto Res = Runner.run(Case, Sched);
  ASSERT_TRUE(bool(Res)) << Res.error().render();
  EXPECT_TRUE(Res->Violations.empty());
  EXPECT_EQ(Res->AbaSuccesses, 0u)
      << "bw-llsc must be architecturally immune to ABA";
}

TEST(FuzzDetection, AbaUnsoundBwLlscFixtureIsFlagged) {
  // The negative control for the admitsAba capability query: a fixture
  // claiming bw-llsc's sound traits but validating SC by value compare.
  // The oracle judges it by the claimed contract, so the ABA success is a
  // flagged violation — NOT silently counted the way pico-cas's is.
  FuzzCase Case;
  Case.Threads.resize(2);
  Case.Threads[0] = {{EventKind::LoadLink, 0, 4, 0},
                     {EventKind::StoreCond, 0, 4, 2}};
  Case.Threads[1] = {{EventKind::LoadLink, 0, 4, 0},
                     {EventKind::StoreCond, 0, 4, 1},
                     {EventKind::LoadLink, 0, 4, 0},
                     {EventKind::StoreCond, 0, 4, 0}};

  CaseRunner::Config Config;
  Config.Scheme = SchemeKind::BwLlsc;
  Config.BuggyAbaBwLlsc = true;
  CaseRunner Runner(Config);
  FixedSchedule Sched(traceFor(Case, {0, 1, 1, 1, 1, 0}));
  auto Res = Runner.run(Case, Sched);
  ASSERT_TRUE(bool(Res)) << Res.error().render();
  ASSERT_FALSE(Res->Violations.empty())
      << "the ABA-unsound fixture slipped past the oracle";
  EXPECT_NE(Res->Violations[0].What.find("forbidden"), std::string::npos)
      << Res->Violations[0].What;
  EXPECT_EQ(Res->AbaSuccesses, 0u)
      << "a scheme claiming soundness must not accrue ABA counts";
}

TEST(FuzzDetection, FuzzLoopFindsTheAbaUnsoundBwLlscFixture) {
  FuzzOptions Opts;
  Opts.Schemes = {SchemeKind::BwLlsc};
  Opts.Seed = 3;
  Opts.NumCases = 300;
  Opts.BuggyBwLlsc = true;
  Opts.MaxFailuresPerScheme = 1;
  auto Report = runFuzz(Opts);
  ASSERT_TRUE(bool(Report)) << Report.error().render();
  ASSERT_FALSE(Report->Failures.empty())
      << "the fuzzer cannot see the planted ABA bug";
  EXPECT_NE(Report->Failures[0].First.What.find("forbidden"),
            std::string::npos)
      << Report->Failures[0].First.What;
}

TEST(FuzzDetection, FuzzLoopCleanOnRealBwLlsc) {
  FuzzOptions Opts;
  Opts.Schemes = {SchemeKind::BwLlsc};
  Opts.Seed = 3;
  Opts.NumCases = 120;
  auto Report = runFuzz(Opts);
  ASSERT_TRUE(bool(Report)) << Report.error().render();
  for (const FailureRecord &Rec : Report->Failures)
    ADD_FAILURE() << schemeTraits(Rec.Scheme).Name << ": "
                  << Rec.First.What;
}

// --- Oracle unit tests ------------------------------------------------------

TEST(FuzzOracle, ForbidsSuccessAfterOverlappingStore) {
  OracleModel Model;
  Model.Class = AtomicityClass::Strong;
  Oracle Or(Model, 2);
  EXPECT_EQ(Or.onLoadLink(0, 0, 8, 0), "");
  Or.onPlainStore(1, 4, 4, 3); // Second granule of the monitored range.
  std::string What = Or.onStoreCond(0, 0, 8, 1, /*Success=*/true);
  EXPECT_NE(What.find("forbidden"), std::string::npos) << What;
}

TEST(FuzzOracle, RequiresFailureWithoutMatchingMonitor) {
  Oracle Or(OracleModel{}, 2);
  // No LL at all (the flagged success still performs its write, so later
  // observations see value 1).
  EXPECT_NE(Or.onStoreCond(0, 0, 4, 1, true), "");
  // Mismatched range: LL 4 bytes, SC 8.
  EXPECT_EQ(Or.onLoadLink(0, 0, 4, 1), "");
  EXPECT_NE(Or.onStoreCond(0, 0, 8, 1, true), "");
  // Failure is always acceptable in both situations.
  EXPECT_EQ(Or.onStoreCond(0, 0, 4, 1, false), "");
}

TEST(FuzzOracle, WeakClassIgnoresPlainStores) {
  OracleModel Model;
  Model.Class = AtomicityClass::Weak;
  Oracle Or(Model, 2);
  EXPECT_EQ(Or.onLoadLink(0, 0, 8, 0), "");
  Or.onPlainStore(1, 4, 4, 3);
  // Weak atomicity: the plain store may sail past the monitor.
  EXPECT_EQ(Or.onStoreCond(0, 0, 8, 1, true), "");

  // But an instrumented (SC) write into the monitored range must still
  // break it (the SC above wrote 1 over bytes 0..7).
  EXPECT_EQ(Or.onLoadLink(0, 0, 8, 1), "");
  EXPECT_EQ(Or.onLoadLink(1, 4, 4, 0), "");
  EXPECT_EQ(Or.onStoreCond(1, 4, 4, 2, true), "");
  std::string What = Or.onStoreCond(0, 0, 8, 1, true);
  EXPECT_NE(What.find("forbidden"), std::string::npos) << What;
}

TEST(FuzzOracle, OwnStoreMasksBrokenMonitorUnderGranuleTagging) {
  OracleModel Model;
  Model.Class = AtomicityClass::Strong;
  Model.GranuleMasking = true;
  Oracle Or(Model, 2);
  EXPECT_EQ(Or.onLoadLink(0, 0, 4, 0), "");
  Or.onPlainStore(1, 0, 4, 3); // Breaks the monitor...
  Or.onPlainStore(0, 0, 4, 3); // ...owner re-tags the granule.
  // HST-family tag resurrection: either outcome is now legal.
  EXPECT_EQ(Or.onStoreCond(0, 0, 4, 1, true), "");
  // Without masking the success stays forbidden.
  Model.GranuleMasking = false;
  Oracle Strict(Model, 2);
  EXPECT_EQ(Strict.onLoadLink(0, 0, 4, 0), "");
  Strict.onPlainStore(1, 0, 4, 3);
  Strict.onPlainStore(0, 0, 4, 3);
  EXPECT_NE(Strict.onStoreCond(0, 0, 4, 1, true), "");
}

TEST(FuzzOracle, TracksMemoryAndLlValues) {
  Oracle Or(OracleModel{}, 2);
  Or.onPlainStore(0, 0, 4, 0x7f);
  EXPECT_EQ(Or.onLoadLink(1, 0, 4, 0x7f), "");
  EXPECT_NE(Or.onLoadLink(1, 0, 4, 0x80), ""); // Wrong observed value.
  uint8_t Region[SharedRegionBytes] = {};
  Region[0] = 0x7f;
  EXPECT_EQ(Or.checkMemory(Region), "");
  Region[5] = 1;
  EXPECT_NE(Or.checkMemory(Region), "");
  EXPECT_EQ(Or.checkMemoryWord(0, 0x7f), "");
  EXPECT_NE(Or.checkMemoryWord(8, 1), "");
}

// --- Shrinking and repro files ----------------------------------------------

TEST(FuzzShrink, MinimizesToTheCanonicalShape) {
  CaseRunner::Config Config;
  Config.Scheme = SchemeKind::Hst;
  Config.BuggySingleGranuleHst = true;
  CaseRunner Runner(Config);

  // The canonical case plus noise: an extra thread and extra events that
  // are irrelevant to the violation.
  FuzzCase Case = canonicalCase();
  Case.Threads[1].push_back({EventKind::ClearExcl, 0, 0, 0});
  Case.Threads.push_back({{EventKind::LoadLink, 12, 4, 0}});

  FixedSchedule Sched(traceFor(Case, {2, 0, 1, 1, 0}));
  auto Res = Runner.run(Case, Sched);
  ASSERT_TRUE(bool(Res)) << Res.error().render();
  ASSERT_FALSE(Res->Violations.empty());

  std::vector<unsigned> Trace = Res->ExecTrace;
  FuzzCase Shrunk = shrinkFailure(Runner, Case, Trace);
  EXPECT_EQ(Shrunk.numThreads(), 2u);
  EXPECT_EQ(Shrunk.totalEvents(), 3u);

  // The shrunk case still fails under the shrunk trace.
  FixedSchedule Replay(Trace);
  auto Res2 = Runner.run(Shrunk, Replay);
  ASSERT_TRUE(bool(Res2)) << Res2.error().render();
  EXPECT_FALSE(Res2->Violations.empty());
}

TEST(FuzzRepro, RenderParseRoundTripsAndReplays) {
  FuzzCase Case = canonicalCase();
  std::vector<unsigned> Trace = traceFor(Case, {0, 1, 0});
  std::string Text =
      renderRepro(SchemeKind::Hst, Case, Trace, "unit-test note");

  auto ReproOrErr = parseRepro(Text);
  ASSERT_TRUE(bool(ReproOrErr)) << ReproOrErr.error().render();
  const Repro &R = *ReproOrErr;
  EXPECT_EQ(R.Scheme, SchemeKind::Hst);
  ASSERT_EQ(R.Case.numThreads(), Case.numThreads());
  for (unsigned Tid = 0; Tid < Case.numThreads(); ++Tid) {
    ASSERT_EQ(R.Case.Threads[Tid].size(), Case.Threads[Tid].size());
    for (unsigned I = 0; I < Case.Threads[Tid].size(); ++I) {
      EXPECT_EQ(R.Case.Threads[Tid][I].Kind, Case.Threads[Tid][I].Kind);
      EXPECT_EQ(R.Case.Threads[Tid][I].Offset, Case.Threads[Tid][I].Offset);
      EXPECT_EQ(R.Case.Threads[Tid][I].Size, Case.Threads[Tid][I].Size);
      EXPECT_EQ(R.Case.Threads[Tid][I].Value, Case.Threads[Tid][I].Value);
    }
  }
  EXPECT_EQ(R.Trace, Trace);

  // Replays: violation on the buggy fixture, clean on the fixed scheme.
  auto Buggy = replayRepro(R, /*BuggyHst=*/true);
  ASSERT_TRUE(bool(Buggy)) << Buggy.error().render();
  EXPECT_FALSE(Buggy->Violations.empty());
  auto Fixed = replayRepro(R, /*BuggyHst=*/false);
  ASSERT_TRUE(bool(Fixed)) << Fixed.error().render();
  EXPECT_TRUE(Fixed->Violations.empty());
}

TEST(FuzzRepro, ParseRejectsMalformedInput) {
  EXPECT_FALSE(bool(parseRepro("no metadata at all\n")));
  EXPECT_FALSE(bool(parseRepro(";; scheme: not-a-scheme\n;; threads: 2\n")));
  EXPECT_FALSE(
      bool(parseRepro(";; scheme: hst\n;; threads: 1\n"
                      ";; event: 5 ll off=0 size=4 value=0\n")));
}

// --- Case generation and enumeration ----------------------------------------

TEST(FuzzGen, GeneratedProgramsAssembleAndHalt) {
  Rng R(99);
  GenConfig Gen;
  CaseRunner::Config Config;
  Config.Scheme = SchemeKind::Hst;
  CaseRunner Runner(Config);
  for (int Trial = 0; Trial < 30; ++Trial) {
    FuzzCase Case = generateCase(R, Gen);
    RoundRobinSchedule Sched;
    auto Res = Runner.run(Case, Sched);
    ASSERT_TRUE(bool(Res)) << Res.error().render();
    EXPECT_TRUE(Res->Violations.empty());
    EXPECT_TRUE(Res->AllHalted);
    EXPECT_EQ(Res->ExecTrace.size(), totalSlices(Case));
  }
}

TEST(FuzzGen, EnumerationCountsEventMerges) {
  FuzzCase Case = canonicalCase(); // 2 + 1 events: C(3,1) = 3 merges.
  auto Traces = enumerateEventTraces(Case, 64);
  ASSERT_EQ(Traces.size(), 3u);
  for (const auto &Trace : Traces) {
    // Preamble prefix, then 3 event entries.
    ASSERT_EQ(Trace.size(), 4u + 3u);
    EXPECT_EQ(std::count(Trace.begin() + 4, Trace.end(), 0u), 2);
    EXPECT_EQ(std::count(Trace.begin() + 4, Trace.end(), 1u), 1);
  }
  // Over-limit spaces report "sample instead".
  EXPECT_TRUE(enumerateEventTraces(Case, 2).empty());
}

// --- Schedule controllers ---------------------------------------------------

TEST(FuzzSchedule, FixedScheduleSkipsHaltedAndDrains) {
  FixedSchedule Sched({1, 1, 0, 7, 0}); // Tid 7 never exists.
  Sched.begin(2);
  std::vector<unsigned> Both = {0, 1}, OnlyZero = {0};
  EXPECT_EQ(Sched.pickNext(Both), 1);
  EXPECT_EQ(Sched.pickNext(OnlyZero), 0); // 1 not runnable: skipped to 0.
  EXPECT_EQ(Sched.pickNext(Both), 0);     // 7 skipped too.
  EXPECT_EQ(Sched.pickNext(Both), 0);
  // Trace exhausted: round-robin drain.
  EXPECT_EQ(Sched.pickNext(Both), 1);
  EXPECT_EQ(Sched.pickNext(Both), 0);
}

TEST(FuzzSchedule, PctIsDeterministicPerSeed) {
  std::vector<unsigned> Runnable = {0, 1, 2};
  for (uint64_t Seed = 1; Seed <= 5; ++Seed) {
    PctSchedule A(Seed, 3, 40), B(Seed, 3, 40);
    A.begin(3);
    B.begin(3);
    for (int Step = 0; Step < 40; ++Step)
      ASSERT_EQ(A.pickNext(Runnable), B.pickNext(Runnable)) << Seed;
  }
}

TEST(FuzzSchedule, PctExploresDifferentInterleavings) {
  // Across seeds, PCT must produce more than one distinct schedule
  // prefix — otherwise it adds nothing over round-robin.
  std::vector<unsigned> Runnable = {0, 1, 2};
  std::set<std::vector<int>> Prefixes;
  for (uint64_t Seed = 1; Seed <= 12; ++Seed) {
    PctSchedule Sched(Seed, 3, 12);
    Sched.begin(3);
    std::vector<int> Prefix;
    for (int Step = 0; Step < 8; ++Step)
      Prefix.push_back(Sched.pickNext(Runnable));
    Prefixes.insert(Prefix);
  }
  EXPECT_GT(Prefixes.size(), 3u);
}
