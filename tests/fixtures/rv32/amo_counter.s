# AMO counter fixture (rv32ia).
#
# Every thread (tid in a0) performs ITERS amoadd.w increments of a shared
# counter, then one each of the other AMO families on separate words so a
# test can check every lowering end-to-end:
#   counter = 0x3000   amoadd.w   expect num_threads * ITERS
#   swapw   = 0x3004   amoswap.w  expect some tid+1 (last writer wins)
#   orw     = 0x3008   amoor.w    expect (1 << num_threads) - 1
#   xorw    = 0x300c   amoxor.w   expect (1 << num_threads) - 1
#   maxw    = 0x3010   amomax.w   expect num_threads
#   andw    = 0x3014   amoand.w   expect 0 (0 & anything)

.equ COUNTER, 0x3000
.equ SWAPW,   0x3004
.equ ORW,     0x3008
.equ XORW,    0x300c
.equ MAXW,    0x3010
.equ ANDW,    0x3014
.equ ITERS,   64

    .text
    .globl _start
_start:
    li      t1, ITERS
loop:
    li      a1, COUNTER
    li      t2, 1
    amoadd.w zero, t2, (a1)
    addi    t1, t1, -1
    bnez    t1, loop

    li      t2, 1
    sll     t2, t2, a0          # 1 << tid
    li      a1, ORW
    amoor.w zero, t2, (a1)
    li      a1, XORW
    amoxor.w zero, t2, (a1)    # each bit set exactly once

    addi    t2, a0, 1           # tid + 1
    li      a1, MAXW
    amomax.w zero, t2, (a1)
    li      a1, SWAPW
    amoswap.w t3, t2, (a1)
    li      a1, ANDW
    amoand.w zero, t2, (a1)
    ecall
