#!/usr/bin/env python3
"""Pack the rv32 fixture sources into minimal ET_EXEC ELF32 binaries.

The canonical way to build these fixtures is a real RISC-V toolchain:

    riscv32-unknown-elf-gcc -O2 -march=rv32ia -mabi=ilp32 -nostdlib \
        -nostartfiles -Wl,-Ttext=0x1000 -o spinlock.elf spinlock.s

This container only ships llvm-mc, so this script does the linker's job by
hand: it assembles each .s to a relocatable object with

    llvm-mc -triple=riscv32 -mattr=+a -filetype=obj

then lifts the .text payload into a single-PT_LOAD executable matching
what src/input/rv32/Elf32Loader.cpp consumes:

  * ELFCLASS32 / little-endian / e_machine = EM_RISCV (243)
  * one PT_LOAD at vaddr TEXT_VADDR whose memsz stretches through the
    fixtures' absolute data region (0x3000..) so the loader's BSS
    zero-fill gives the programs zeroed shared words
  * a .symtab whose text symbols are rebased to TEXT_VADDR (the loader
    takes st_value verbatim) and whose SHN_ABS (.equ) symbols pass
    through untouched, so tests can resolve "counter", "lock", ...
  * e_entry = address of _start

The fixture sources must therefore be fully resolved at assembly time:
local branches only, data addressed via numeric .equ constants. The
script refuses to pack an object that still carries text relocations.
"""

import struct
import subprocess
import sys
from pathlib import Path

TEXT_VADDR = 0x1000
# One page of slack past the last .equ data word (0x3014); BSS-zeroed.
MEM_TOP = 0x4000

EM_RISCV = 243
SHT_SYMTAB = 2
SHT_RELA = 4
SHT_REL = 9
SHN_ABS = 0xFFF1

EHDR = struct.Struct("<16sHHIIIIIHHHHHH")
PHDR = struct.Struct("<IIIIIIII")
SHDR = struct.Struct("<IIIIIIIIII")
SYM = struct.Struct("<IIIBBH")


def parse_object(blob):
    """Return (text_bytes, [(name, value, info, other, is_text)]) from a
    relocatable ELF32 object."""
    (ident, _etype, machine, _ver, _entry, _phoff, shoff, _flags, _ehsize,
     _phentsize, _phnum, shentsize, shnum, shstrndx) = EHDR.unpack_from(blob)
    if ident[:4] != b"\x7fELF" or ident[4] != 1 or ident[5] != 1:
        raise SystemExit("input is not a little-endian ELF32 object")
    if machine != EM_RISCV:
        raise SystemExit(f"input e_machine {machine} is not EM_RISCV")

    shdrs = [SHDR.unpack_from(blob, shoff + i * shentsize)
             for i in range(shnum)]

    def shname(sh):
        off = shdrs[shstrndx][4] + sh[0]
        return blob[off:blob.index(b"\0", off)].decode()

    text_idx = next((i for i, sh in enumerate(shdrs)
                     if shname(sh) == ".text"), None)
    if text_idx is None:
        raise SystemExit("object has no .text section")
    tsh = shdrs[text_idx]
    text = blob[tsh[4]:tsh[4] + tsh[5]]

    for sh in shdrs:
        if sh[1] in (SHT_RELA, SHT_REL) and sh[7] == text_idx and sh[5]:
            raise SystemExit(
                f"unresolved relocations against .text ({shname(sh)}); "
                "fixtures must use only local branches and .equ addresses")

    syms = []
    for sh in shdrs:
        if sh[1] != SHT_SYMTAB:
            continue
        strtab = shdrs[sh[6]]
        count = sh[5] // SYM.size
        for i in range(1, count):
            name_off, value, size, info, other, shndx = SYM.unpack_from(
                blob, sh[4] + i * SYM.size)
            off = strtab[4] + name_off
            name = blob[off:blob.index(b"\0", off)].decode()
            stype = info & 0xF
            if not name or stype in (3, 4):  # STT_SECTION, STT_FILE
                continue
            if shndx == text_idx:
                syms.append((name, value + TEXT_VADDR, info, other, True))
            elif shndx == SHN_ABS:
                syms.append((name, value, info, other, False))
        break
    return text, syms


def write_exec(path, text, syms):
    entry = next((v for n, v, _i, _o, t in syms if n == "_start" and t),
                 TEXT_VADDR)

    strtab = b"\0"
    sym_records = [SYM.pack(0, 0, 0, 0, 0, 0)]
    for name, value, info, other, _is_text in syms:
        name_off = len(strtab)
        strtab += name.encode() + b"\0"
        sym_records.append(SYM.pack(name_off, value, 0, info, other, SHN_ABS))
    symtab = b"".join(sym_records)

    shstrtab = b"\0.symtab\0.strtab\0.shstrtab\0"
    name_symtab, name_strtab, name_shstrtab = 1, 9, 17

    phoff = EHDR.size
    text_off = phoff + PHDR.size
    symtab_off = text_off + len(text)
    strtab_off = symtab_off + len(symtab)
    shstrtab_off = strtab_off + len(strtab)
    shoff = shstrtab_off + len(shstrtab)

    ehdr = EHDR.pack(
        b"\x7fELF" + bytes([1, 1, 1]) + b"\0" * 9,
        2,                      # ET_EXEC
        EM_RISCV, 1, entry, phoff, shoff, 0,
        EHDR.size, PHDR.size, 1, SHDR.size, 4, 3)
    phdr = PHDR.pack(
        1,                      # PT_LOAD
        text_off, TEXT_VADDR, TEXT_VADDR,
        len(text), MEM_TOP - TEXT_VADDR,
        7, 4)                   # RWX, 4-byte align
    shdrs = b"".join([
        SHDR.pack(0, 0, 0, 0, 0, 0, 0, 0, 0, 0),
        SHDR.pack(name_symtab, SHT_SYMTAB, 0, 0, symtab_off, len(symtab),
                  2, len(sym_records), 4, SYM.size),
        SHDR.pack(name_strtab, 3, 0, 0, strtab_off, len(strtab), 0, 0, 1, 0),
        SHDR.pack(name_shstrtab, 3, 0, 0, shstrtab_off, len(shstrtab),
                  0, 0, 1, 0),
    ])

    path.write_bytes(ehdr + phdr + text + symtab + strtab + shstrtab + shdrs)
    print(f"{path}: entry=0x{entry:x} text={len(text)}B "
          f"mem=[0x{TEXT_VADDR:x},0x{MEM_TOP:x}) syms={len(syms)}")


def main():
    here = Path(__file__).resolve().parent
    sources = sorted(here.glob("*.s"))
    if not sources:
        raise SystemExit(f"no .s fixture sources in {here}")
    for src in sources:
        obj = src.with_suffix(".o")
        subprocess.run(
            ["llvm-mc", "-triple=riscv32", "-mattr=+a", "-filetype=obj",
             str(src), "-o", str(obj)],
            check=True)
        text, syms = parse_object(obj.read_bytes())
        obj.unlink()
        write_exec(src.with_suffix(".elf"), text, syms)


if __name__ == "__main__":
    sys.exit(main())
