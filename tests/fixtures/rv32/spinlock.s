# LR/SC spinlock fixture (rv32ia).
#
# Every thread (tid in a0, set by the frontend's entry convention)
# acquires a test-and-set spinlock with an LR.W/SC.W retry loop, bumps a
# shared counter with plain loads/stores inside the critical section,
# releases, and repeats ITERS times. Correct final state under any sound
# atomic scheme: counter == num_threads * ITERS, lock == 0.
#
# Data lives at fixed absolute addresses (no relocations), so the binary
# can be packed by make_fixtures.py without a linker:
#   lock    = 0x3000
#   counter = 0x3004

.equ LOCK,    0x3000
.equ COUNTER, 0x3004
.equ ITERS,   64

    .text
    .globl _start
_start:
    li      t1, ITERS
outer:
    li      a1, LOCK
acquire:
    lr.w    t2, (a1)
    bnez    t2, acquire         # held -> spin on LR
    li      t3, 1
    sc.w    t4, t3, (a1)
    bnez    t4, acquire         # lost the race -> retry
    # critical section: counter++ with plain accesses (exercises the
    # schemes' plain-store instrumentation against a live monitor)
    li      a2, COUNTER
    lw      t5, 0(a2)
    addi    t5, t5, 1
    sw      t5, 0(a2)
    # release
    sw      zero, 0(a1)
    addi    t1, t1, -1
    bnez    t1, outer
    ecall
