//===- tests/MachineReuseTest.cpp - session reuse conformance ------------------===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Holds Machine::reset() to the pool contract (serve/MachinePool.h): a
/// recycled machine must be indistinguishable from a fresh one. Every
/// scheme kind runs two programs back to back on one machine and is
/// checked for state leaks (guest memory, monitors, counters), for an
/// unchanged litmus classification, and for the code-cache retention rule
/// (byte-identical reload keeps translations, a different image flushes).
/// The serve-layer half stress-tests MachinePool bucketing and
/// BatchService under concurrent submit/wait with deadlines and retry.
///
//===----------------------------------------------------------------------===//

#include "core/Machine.h"
#include "core/Snapshot.h"
#include "guest/Assembler.h"
#include "mem/GuestMemory.h"
#include "serve/BatchService.h"
#include "workloads/Litmus.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

using namespace llsc;
using namespace llsc::serve;
using namespace llsc::workloads;

namespace {

/// Program A: LL/SC fetch-add on one shared word (deterministic final
/// value: 100 * threads) plus a plain-store sentinel.
constexpr const char *ProgramA = R"(
_start: la      r10, word
        li      r9, #100
loopA:  cbz     r9, stash
tryA:   ldxr.d  r1, [r10]
        addi    r1, r1, #1
        stxr.d  r2, r1, [r10]
        cbnz    r2, tryA
        addi    r9, r9, #-1
        b       loopA
stash:  la      r11, mark
        li      r3, #0xABCD
        std     r3, [r11]
        halt
        .align 64
word:   .quad 0
        .align 64
mark:   .quad 0
)";

/// Program B: straight arithmetic (fib(20) = 6765), no atomics — a shape
/// change from A in both code and data footprint.
constexpr const char *ProgramB = R"(
_start: movz    r1, #0
        movz    r2, #1
        li      r3, #20
loopB:  cbz     r3, doneB
        add     r4, r1, r2
        mov     r1, r2
        mov     r2, r4
        addi    r3, r3, #-1
        b       loopB
doneB:  la      r5, out
        std     r1, [r5]
        halt
        .align 8
out:    .quad 0
)";

std::unique_ptr<Machine> makeMachine(SchemeKind Scheme, unsigned Threads = 2) {
  MachineConfig Config;
  Config.Scheme = Scheme;
  Config.NumThreads = Threads;
  Config.MemBytes = 8ULL << 20;
  Config.ForceSoftHtm = true;
  auto MachineOrErr = Machine::create(Config);
  EXPECT_TRUE(bool(MachineOrErr)) << MachineOrErr.error().render();
  return MachineOrErr.take();
}

class ReuseTest : public ::testing::TestWithParam<SchemeKind> {};

INSTANTIATE_TEST_SUITE_P(
    Schemes, ReuseTest, ::testing::ValuesIn(allSchemeKinds()),
    [](const ::testing::TestParamInfo<SchemeKind> &Info) {
      std::string Name = schemeTraits(Info.param).Name;
      for (char &C : Name)
        if (C == '-')
          C = '_';
      return Name;
    });

} // namespace

/// Two different programs back to back on one machine: the first run's
/// memory, monitors and counters must not leak into the second, and the
/// second run must match a fresh machine's run of the same program.
TEST_P(ReuseTest, BackToBackProgramsNoStateLeak) {
  auto M = makeMachine(GetParam());
  ASSERT_TRUE(bool(M->loadAssembly(ProgramA)));
  uint64_t WordAddr = M->program().requiredSymbol("word");
  uint64_t MarkAddr = M->program().requiredSymbol("mark");

  auto RunA = M->run(RunOptions());
  ASSERT_TRUE(bool(RunA)) << RunA.error().render();
  EXPECT_TRUE(RunA->AllHalted);
  EXPECT_EQ(M->mem().shadowLoad(WordAddr, 8), 100u * M->numThreads());
  EXPECT_EQ(M->mem().shadowLoad(MarkAddr, 8), 0xABCDu);

  M->reset();
  EXPECT_EQ(M->resetCount(), 1u);
  // Job A's footprint is gone: memory zeroed, monitors disarmed, per-vCPU
  // counters rolled over.
  EXPECT_EQ(M->mem().shadowLoad(WordAddr, 8), 0u);
  EXPECT_EQ(M->mem().shadowLoad(MarkAddr, 8), 0u);
  for (unsigned Tid = 0; Tid < M->numThreads(); ++Tid) {
    EXPECT_FALSE(M->cpu(Tid).Monitor.valid()) << "tid " << Tid;
    EXPECT_EQ(M->cpu(Tid).Counters.ExecutedInsts, 0u) << "tid " << Tid;
    EXPECT_EQ(M->cpu(Tid).Counters.StoreConds, 0u) << "tid " << Tid;
  }

  ASSERT_TRUE(bool(M->loadAssembly(ProgramB)));
  auto RunB = M->run(RunOptions());
  ASSERT_TRUE(bool(RunB)) << RunB.error().render();
  EXPECT_TRUE(RunB->AllHalted);
  uint64_t OutAddr = M->program().requiredSymbol("out");
  EXPECT_EQ(M->mem().shadowLoad(OutAddr, 8), 6765u);

  // The reused run is indistinguishable from a fresh machine's.
  auto Fresh = makeMachine(GetParam());
  ASSERT_TRUE(bool(Fresh->loadAssembly(ProgramB)));
  auto FreshB = Fresh->run(RunOptions());
  ASSERT_TRUE(bool(FreshB)) << FreshB.error().render();
  EXPECT_EQ(Fresh->mem().shadowLoad(OutAddr, 8), 6765u);
  EXPECT_EQ(RunB->Total.ExecutedInsts, FreshB->Total.ExecutedInsts);
  EXPECT_EQ(RunB->Total.StoreConds, FreshB->Total.StoreConds);
}

/// The Table II litmus classification is a property of the scheme, not of
/// the machine's history: it must be identical before and after the
/// machine has served an unrelated job and been reset.
TEST_P(ReuseTest, LitmusClassificationSurvivesReuse) {
  auto M = makeMachine(GetParam());
  auto Driver1 = LitmusDriver::create(*M);
  ASSERT_TRUE(bool(Driver1)) << Driver1.error().render();
  MeasuredAtomicity FreshClass = classifyScheme(*Driver1);

  M->reset();
  ASSERT_TRUE(bool(M->loadAssembly(ProgramA)));
  auto Run = M->run(RunOptions());
  ASSERT_TRUE(bool(Run)) << Run.error().render();
  M->reset();

  auto Driver2 = LitmusDriver::create(*M);
  ASSERT_TRUE(bool(Driver2)) << Driver2.error().render();
  EXPECT_EQ(classifyScheme(*Driver2), FreshClass)
      << "classification changed after reuse ("
      << measuredAtomicityName(FreshClass) << " before)";
}

/// The code-cache retention rule behind pooled throughput: reloading a
/// byte-identical image across reset() keeps translations (no flush, no
/// new translation misses), while a different image flushes.
TEST_P(ReuseTest, IdenticalReloadKeepsTranslations) {
  auto M = makeMachine(GetParam(), /*Threads=*/1);
  auto ProgOrErr = guest::assemble(ProgramA);
  ASSERT_TRUE(bool(ProgOrErr)) << ProgOrErr.error().render();
  guest::Program Prog = ProgOrErr.take();

  ASSERT_TRUE(bool(M->loadProgram(Prog)));
  ASSERT_TRUE(bool(M->run(RunOptions())));
  uint64_t Gen = M->cache().generation();
  uint64_t Misses = M->cache().misses();
  EXPECT_GT(Misses, 0u);

  M->reset();
  ASSERT_TRUE(bool(M->loadProgram(Prog)));
  ASSERT_TRUE(bool(M->run(RunOptions())));
  EXPECT_EQ(M->cache().generation(), Gen) << "identical reload flushed";
  EXPECT_EQ(M->cache().misses(), Misses) << "identical reload retranslated";
  EXPECT_EQ(M->mem().shadowLoad(M->program().requiredSymbol("word"), 8),
            100u);

  // A different image must flush: stale translations crossing programs
  // would execute the wrong code.
  M->reset();
  ASSERT_TRUE(bool(M->loadAssembly(ProgramB)));
  EXPECT_GT(M->cache().generation(), Gen);
}

TEST(MachinePoolTest, BucketsByConfigKey) {
  MachinePool Pool;
  MachineConfig HstCfg;
  HstCfg.Scheme = SchemeKind::Hst;
  HstCfg.NumThreads = 2;
  MachineConfig CasCfg = HstCfg;
  CasCfg.Scheme = SchemeKind::PicoCas;
  EXPECT_NE(machineConfigKey(HstCfg), machineConfigKey(CasCfg));

  auto M1 = Pool.acquire(HstCfg);
  ASSERT_TRUE(bool(M1));
  EXPECT_EQ(Pool.stats().Created, 1u);
  Machine *Raw = M1->get();
  Pool.release(M1.take());
  EXPECT_EQ(Pool.stats().Idle, 1u);

  // Same shape: the parked machine comes back, reset.
  auto M2 = Pool.acquire(HstCfg);
  ASSERT_TRUE(bool(M2));
  EXPECT_EQ(M2->get(), Raw);
  EXPECT_EQ((*M2)->resetCount(), 1u);
  EXPECT_EQ(Pool.stats().Reused, 1u);

  // Different shape: a parked HST machine is no use to a PICO-CAS job.
  Pool.release(M2.take());
  auto M3 = Pool.acquire(CasCfg);
  ASSERT_TRUE(bool(M3));
  EXPECT_NE(M3->get(), Raw);
  EXPECT_EQ(Pool.stats().Created, 2u);

  Pool.clear();
  EXPECT_EQ(Pool.stats().Idle, 0u);
}

TEST(MachinePoolTest, PoisonedReleaseDestroys) {
  MachinePool Pool;
  MachineConfig Cfg;
  Cfg.Scheme = SchemeKind::Hst;
  Cfg.NumThreads = 1;

  auto M1 = Pool.acquire(Cfg);
  ASSERT_TRUE(bool(M1));
  Pool.release(M1.take(), /*Poisoned=*/true);
  EXPECT_EQ(Pool.stats().Destroyed, 1u);
  EXPECT_EQ(Pool.stats().Idle, 0u);

  // The next acquire builds a brand-new machine, never a poisoned one.
  auto M2 = Pool.acquire(Cfg);
  ASSERT_TRUE(bool(M2));
  EXPECT_EQ((*M2)->resetCount(), 0u);
  EXPECT_EQ(Pool.stats().Created, 2u);
}

/// Concurrent submitters racing the worker pool: every job completes,
/// fleet arithmetic holds, and single-bucket traffic actually recycles.
TEST(BatchServiceTest, ConcurrentSubmitWaitStress) {
  BatchConfig Config;
  Config.Workers = 8;
  Config.QueueCapacity = 16; // Small on purpose: submitters must block.
  BatchService Service(Config);

  constexpr unsigned Submitters = 4;
  constexpr unsigned JobsEach = 16;
  std::vector<std::thread> Threads;
  std::vector<int> DoneCounts(Submitters, 0);
  for (unsigned S = 0; S < Submitters; ++S) {
    Threads.emplace_back([&, S] {
      std::vector<JobHandle> Handles;
      for (unsigned J = 0; J < JobsEach; ++J) {
        JobSpec Spec;
        Spec.Name = "stress";
        Spec.Source = JobSource::assembly(ProgramA);
        Spec.Machine.Scheme = SchemeKind::Hst;
        Spec.Machine.NumThreads = 2;
        Spec.Machine.MemBytes = 8ULL << 20;
        auto Handle = Service.submit(std::move(Spec));
        ASSERT_TRUE(bool(Handle)) << Handle.error().render();
        Handles.push_back(*Handle);
      }
      for (const JobHandle &H : Handles) {
        const JobResult &R = H.wait();
        EXPECT_EQ(R.State, JobState::Done) << R.Error;
        // 2 vCPUs x 100 LL/SC increments; failures retry, so >= 200.
        EXPECT_GE(R.Report.Total.StoreConds, 200u);
        if (R.State == JobState::Done)
          ++DoneCounts[S];
      }
    });
  }
  for (std::thread &T : Threads)
    T.join();

  FleetStats Fleet = Service.fleetStats();
  EXPECT_EQ(Fleet.Submitted, Submitters * JobsEach);
  EXPECT_EQ(Fleet.Completed, Submitters * JobsEach);
  EXPECT_EQ(Fleet.Failed, 0u);
  // One config bucket, 64 jobs, 8 workers: recycling is guaranteed.
  EXPECT_GT(Fleet.MachinesReused, 0u);
  for (unsigned S = 0; S < Submitters; ++S)
    EXPECT_EQ(DoneCounts[S], static_cast<int>(JobsEach));
}

/// A deadline that expires while the job is still queued fails the job
/// without ever running it.
TEST(BatchServiceTest, DeadlineExpiresWhileQueued) {
  BatchConfig Config;
  Config.Workers = 1;
  BatchService Service(Config);

  // Occupy the lone worker long enough for the deadline job to age out.
  JobSpec Long;
  Long.Name = "long";
  Long.Source = JobSource::assembly(ProgramA);
  Long.Machine.Scheme = SchemeKind::PicoCas;
  Long.Machine.NumThreads = 2;
  Long.Machine.MemBytes = 8ULL << 20;
  auto LongHandle = Service.submit(std::move(Long));
  ASSERT_TRUE(bool(LongHandle));

  JobSpec Doomed;
  Doomed.Name = "doomed";
  Doomed.Source = JobSource::assembly(ProgramA);
  Doomed.Machine.Scheme = SchemeKind::PicoCas;
  Doomed.Machine.NumThreads = 2;
  Doomed.Machine.MemBytes = 8ULL << 20;
  Doomed.DeadlineSeconds = 1e-9; // Expired before any worker can pop it.
  auto DoomedHandle = Service.submit(std::move(Doomed));
  ASSERT_TRUE(bool(DoomedHandle));

  const JobResult &R = DoomedHandle->wait();
  EXPECT_EQ(R.State, JobState::Failed);
  EXPECT_TRUE(R.DeadlineExceeded);
  EXPECT_FALSE(R.Error.empty());
  EXPECT_EQ(LongHandle->wait().State, JobState::Done);
}

// --- Copy-on-write snapshots (docs/SERVING.md "Snapshot lifecycle") ---------

/// Clones are isolated: a clone's writes are private CoW pages, invisible
/// to sibling clones and to the sealed snapshot image itself, and a
/// repeat restore discards them.
TEST(SnapshotTest, CloneDivergence) {
  auto Donor = makeMachine(SchemeKind::Hst);
  ASSERT_TRUE(bool(Donor->loadAssembly(ProgramA)));
  auto SnapOrErr = Donor->snapshot();
  ASSERT_TRUE(bool(SnapOrErr)) << SnapOrErr.error().render();
  std::shared_ptr<const MachineSnapshot> Snap = *SnapOrErr;
  uint64_t WordAddr = Donor->program().requiredSymbol("word");

  auto CloneA = makeMachine(SchemeKind::Hst);
  auto CloneB = makeMachine(SchemeKind::Hst);
  ASSERT_TRUE(bool(CloneA->restoreFrom(Snap)));
  ASSERT_TRUE(bool(CloneB->restoreFrom(Snap)));

  auto RunA = CloneA->run(RunOptions());
  ASSERT_TRUE(bool(RunA)) << RunA.error().render();
  EXPECT_EQ(CloneA->mem().shadowLoad(WordAddr, 8),
            100u * CloneA->numThreads());
  // CloneA's dirty pages never reach its sibling.
  EXPECT_EQ(CloneB->mem().shadowLoad(WordAddr, 8), 0u);

  // Repeat restore (the fast madvise path) drops CloneA's writes.
  ASSERT_TRUE(bool(CloneA->restoreFrom(Snap)));
  EXPECT_EQ(CloneA->mem().shadowLoad(WordAddr, 8), 0u);
  auto RunA2 = CloneA->run(RunOptions());
  ASSERT_TRUE(bool(RunA2)) << RunA2.error().render();
  EXPECT_EQ(CloneA->mem().shadowLoad(WordAddr, 8),
            100u * CloneA->numThreads());

  auto RunB = CloneB->run(RunOptions());
  ASSERT_TRUE(bool(RunB)) << RunB.error().render();
  EXPECT_EQ(CloneB->mem().shadowLoad(WordAddr, 8),
            100u * CloneB->numThreads());
}

/// The Table II classification is a property of the scheme, and being a
/// snapshot clone must not change it — for any scheme kind, including the
/// page-protection ones that restore by deep copy instead of CoW attach.
TEST_P(ReuseTest, LitmusClassificationSurvivesRestore) {
  auto M = makeMachine(GetParam());
  auto Driver1 = LitmusDriver::create(*M);
  ASSERT_TRUE(bool(Driver1)) << Driver1.error().render();
  MeasuredAtomicity FreshClass = classifyScheme(*Driver1);

  ASSERT_TRUE(bool(M->loadAssembly(ProgramA)));
  auto SnapOrErr = M->snapshot();
  ASSERT_TRUE(bool(SnapOrErr)) << SnapOrErr.error().render();

  auto Clone = makeMachine(GetParam());
  ASSERT_TRUE(bool(Clone->restoreFrom(*SnapOrErr)));
  auto Run = Clone->run(RunOptions());
  ASSERT_TRUE(bool(Run)) << Run.error().render();

  auto Driver2 = LitmusDriver::create(*Clone);
  ASSERT_TRUE(bool(Driver2)) << Driver2.error().render();
  EXPECT_EQ(classifyScheme(*Driver2), FreshClass)
      << "classification changed after snapshot restore ("
      << measuredAtomicityName(FreshClass) << " before)";
}

/// Hot-swapping a snapshot-attached clone privatizes its memory and code;
/// a later restore from the same snapshot re-attaches cleanly.
TEST(SnapshotTest, RestoreAfterHotSwap) {
  auto Donor = makeMachine(SchemeKind::Hst);
  ASSERT_TRUE(bool(Donor->loadAssembly(ProgramA)));
  auto SnapOrErr = Donor->snapshot();
  ASSERT_TRUE(bool(SnapOrErr)) << SnapOrErr.error().render();
  std::shared_ptr<const MachineSnapshot> Snap = *SnapOrErr;
  uint64_t WordAddr = Donor->program().requiredSymbol("word");

  auto Clone = makeMachine(SchemeKind::Hst);
  ASSERT_TRUE(bool(Clone->restoreFrom(Snap)));
  EXPECT_TRUE(Clone->attachedSnapshot() != nullptr);

  // Swap to a page-protection scheme: the clone cannot keep executing out
  // of a CoW attachment (PST remaps pages), so the swap deep-copies the
  // image into the clone's own memfd and detaches.
  Clone->setScheme(createScheme(SchemeKind::PstRemap));
  EXPECT_TRUE(Clone->attachedSnapshot() == nullptr);
  auto RunSwapped = Clone->run(RunOptions());
  ASSERT_TRUE(bool(RunSwapped)) << RunSwapped.error().render();
  EXPECT_EQ(Clone->mem().shadowLoad(WordAddr, 8),
            100u * Clone->numThreads());

  // Restore re-attaches (cold path: scheme swapped back to the captured
  // kind, memory re-attached CoW) and the clone behaves like a fresh one.
  ASSERT_TRUE(bool(Clone->restoreFrom(Snap)));
  EXPECT_TRUE(Clone->attachedSnapshot() != nullptr);
  EXPECT_EQ(Clone->scheme().traits().Kind, SchemeKind::Hst);
  EXPECT_EQ(Clone->mem().shadowLoad(WordAddr, 8), 0u);
  auto RunRestored = Clone->run(RunOptions());
  ASSERT_TRUE(bool(RunRestored)) << RunRestored.error().render();
  EXPECT_EQ(Clone->mem().shadowLoad(WordAddr, 8),
            100u * Clone->numThreads());
}

/// The tier-1 warm-code guarantee: a clone adopts the donor's compiled
/// code and recompiles nothing, yet executes the same work a fresh
/// machine does (which pays the full compile bill itself).
TEST(SnapshotTest, CloneRunsWarmTier1WithoutCompiling) {
  MachineConfig Config;
  Config.Scheme = SchemeKind::Hst;
  Config.NumThreads = 1;
  Config.MemBytes = 8ULL << 20;
  Config.ForceSoftHtm = true;
  // Tier up on first execution (threshold N compiles on the N+1th), so
  // the donor's warm-up compiles even its once-executed entry/exit blocks
  // and the clone has nothing left to compile.
  Config.JitHotThreshold = 0;

  auto DonorOrErr = Machine::create(Config);
  ASSERT_TRUE(bool(DonorOrErr)) << DonorOrErr.error().render();
  Machine &Donor = **DonorOrErr;
  if (!Donor.jitBackend())
    GTEST_SKIP() << "tier-1 JIT unavailable on this host";

  // Warm like BatchService::captureSnapshot: run so every block tiers up,
  // then scrub and reload the identical image so the snapshot holds a
  // pristine memory image next to warm caches.
  ASSERT_TRUE(bool(Donor.loadAssembly(ProgramB)));
  auto Warm = Donor.run(RunOptions());
  ASSERT_TRUE(bool(Warm)) << Warm.error().render();
  uint64_t DonorCompiled = Warm->Events.JitBlocksCompiled;
  EXPECT_GT(DonorCompiled, 0u);
  Donor.reset();
  ASSERT_TRUE(bool(Donor.loadAssembly(ProgramB)));
  auto SnapOrErr = Donor.snapshot();
  ASSERT_TRUE(bool(SnapOrErr)) << SnapOrErr.error().render();

  // A fresh machine pays the same compile bill the donor did.
  auto FreshOrErr = Machine::create(Config);
  ASSERT_TRUE(bool(FreshOrErr));
  Machine &Fresh = **FreshOrErr;
  ASSERT_TRUE(bool(Fresh.loadAssembly(ProgramB)));
  auto FreshRun = Fresh.run(RunOptions());
  ASSERT_TRUE(bool(FreshRun)) << FreshRun.error().render();
  EXPECT_EQ(FreshRun->Events.JitBlocksCompiled, DonorCompiled);

  // The clone pays nothing: zero compiles, warm entries, same execution.
  auto CloneOrErr = Machine::create(Config);
  ASSERT_TRUE(bool(CloneOrErr));
  Machine &Clone = **CloneOrErr;
  ASSERT_TRUE(bool(Clone.restoreFrom(*SnapOrErr)));
  EXPECT_TRUE(Clone.codeShared());
  auto CloneRun = Clone.run(RunOptions());
  ASSERT_TRUE(bool(CloneRun)) << CloneRun.error().render();
  EXPECT_EQ(CloneRun->Events.JitBlocksCompiled, 0u);
  EXPECT_GT(CloneRun->Events.JitEnters, 0u);
  EXPECT_EQ(CloneRun->Total.ExecutedInsts, FreshRun->Total.ExecutedInsts);
  EXPECT_EQ(Clone.mem().shadowLoad(Clone.program().requiredSymbol("out"), 8),
            6765u);
}

/// Regression (PST-REMAP): resetZero() used to assert when a scheme had
/// remapped pages away; it must instead restore plain memfd backing and
/// zero everything.
TEST(SnapshotTest, ResetZeroRestoresRemappedPages) {
  auto MemOrErr = GuestMemory::create(1 << 20);
  ASSERT_TRUE(bool(MemOrErr)) << MemOrErr.error().render();
  GuestMemory &Mem = **MemOrErr;

  Mem.shadowStore(0x2008, 0xFEEDu, 8);
  ASSERT_TRUE(Mem.remapPageAway(2));
  ASSERT_FALSE(Mem.fastPathAllowed());

  Mem.resetZero();

  EXPECT_TRUE(Mem.fastPathAllowed());
  EXPECT_EQ(Mem.shadowLoad(0x2008, 8), 0u);
  // The page is plain read-write memfd again: a primary-mapping access
  // must not fault and must see shadow writes (shared backing restored).
  Mem.shadowStore(0x2008, 0x55u, 8);
  EXPECT_EQ(GuestMemory::loadRelaxed(Mem.primaryBase() + 0x2008, 8), 0x55u);
}

/// MachinePool snapshot buckets: cold restore mints a clone, release
/// parks it restored, the next acquireFromSnapshot pops it warm.
TEST(MachinePoolTest, SnapshotCloneBuckets) {
  MachinePool Pool;
  auto Donor = makeMachine(SchemeKind::Hst);
  ASSERT_TRUE(bool(Donor->loadAssembly(ProgramA)));
  auto SnapOrErr = Donor->snapshot();
  ASSERT_TRUE(bool(SnapOrErr)) << SnapOrErr.error().render();
  std::shared_ptr<const MachineSnapshot> Snap = *SnapOrErr;
  uint64_t WordAddr = Donor->program().requiredSymbol("word");

  bool WasReused = true;
  auto C1 = Pool.acquireFromSnapshot(Snap, &WasReused);
  ASSERT_TRUE(bool(C1)) << C1.error().render();
  EXPECT_FALSE(WasReused);
  EXPECT_EQ(Pool.stats().SnapshotClones, 1u);
  Machine *Raw = C1->get();
  ASSERT_TRUE(bool((*C1)->run(RunOptions())));

  // Release restores (dirty pages dropped) and parks in the clone bucket.
  Pool.release(C1.take());
  EXPECT_EQ(Pool.stats().Idle, 1u);
  EXPECT_EQ(Pool.stats().SnapshotRestores, 2u); // Cold + on-release.

  auto C2 = Pool.acquireFromSnapshot(Snap, &WasReused);
  ASSERT_TRUE(bool(C2)) << C2.error().render();
  EXPECT_TRUE(WasReused);
  EXPECT_EQ(C2->get(), Raw);
  EXPECT_EQ(Pool.stats().SnapshotReused, 1u);
  // Hand-out-ready: the previous job's writes are gone.
  EXPECT_EQ((*C2)->mem().shadowLoad(WordAddr, 8), 0u);
  ASSERT_TRUE(bool((*C2)->run(RunOptions())));
  EXPECT_EQ((*C2)->mem().shadowLoad(WordAddr, 8),
            100u * (*C2)->numThreads());
}

/// End to end through the service: snapshot jobs skip loading, share one
/// warm image, and the fleet counts them.
TEST(BatchServiceTest, SnapshotJobsFanOut) {
  BatchConfig Config;
  Config.Workers = 4;
  BatchService Service(Config);

  JobSpec DonorSpec;
  DonorSpec.Name = "donor";
  DonorSpec.Source = JobSource::assembly(ProgramA);
  DonorSpec.Machine.Scheme = SchemeKind::Hst;
  DonorSpec.Machine.NumThreads = 2;
  DonorSpec.Machine.MemBytes = 8ULL << 20;
  DonorSpec.Machine.ForceSoftHtm = true;
  auto SnapOrErr = Service.captureSnapshot(DonorSpec);
  ASSERT_TRUE(bool(SnapOrErr)) << SnapOrErr.error().render();

  constexpr unsigned Jobs = 16;
  std::vector<JobHandle> Handles;
  for (unsigned J = 0; J < Jobs; ++J) {
    JobSpec Spec;
    Spec.Name = "clone";
    Spec.Source = JobSource::snapshotRef(*SnapOrErr);
    Spec.Machine = DonorSpec.Machine;
    auto Handle = Service.submit(std::move(Spec));
    ASSERT_TRUE(bool(Handle)) << Handle.error().render();
    Handles.push_back(*Handle);
  }
  for (const JobHandle &H : Handles) {
    const JobResult &R = H.wait();
    EXPECT_EQ(R.State, JobState::Done) << R.Error;
    EXPECT_GE(R.Report.Total.StoreConds, 200u);
  }

  FleetStats Fleet = Service.fleetStats();
  EXPECT_EQ(Fleet.SnapshotJobs, Jobs);
  EXPECT_EQ(Fleet.Completed, Jobs);
  MachinePool::Stats P = Service.poolStats();
  EXPECT_EQ(P.SnapshotClones + P.SnapshotReused, Jobs);
  EXPECT_GT(P.SnapshotReused, 0u);
}

/// Deterministic spec errors (un-assemblable source) are not retried:
/// MaxAttempts is for machine faults, not for jobs that can never load.
TEST(BatchServiceTest, LoadErrorFailsWithoutRetry) {
  BatchConfig Config;
  Config.Workers = 2;
  BatchService Service(Config);

  JobSpec Bad;
  Bad.Name = "bad";
  Bad.Source = JobSource::assembly("_start: not_an_instruction r1, r2\n");
  Bad.Machine.Scheme = SchemeKind::Hst;
  Bad.Machine.NumThreads = 1;
  Bad.MaxAttempts = 3;
  auto Handle = Service.submit(std::move(Bad));
  ASSERT_TRUE(bool(Handle));

  const JobResult &R = Handle->wait();
  EXPECT_EQ(R.State, JobState::Failed);
  EXPECT_EQ(R.Attempts, 1u);
  EXPECT_FALSE(R.Error.empty());
  EXPECT_EQ(Service.fleetStats().Retried, 0u);
}
