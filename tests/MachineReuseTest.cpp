//===- tests/MachineReuseTest.cpp - session reuse conformance ------------------===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Holds Machine::reset() to the pool contract (serve/MachinePool.h): a
/// recycled machine must be indistinguishable from a fresh one. Every
/// scheme kind runs two programs back to back on one machine and is
/// checked for state leaks (guest memory, monitors, counters), for an
/// unchanged litmus classification, and for the code-cache retention rule
/// (byte-identical reload keeps translations, a different image flushes).
/// The serve-layer half stress-tests MachinePool bucketing and
/// BatchService under concurrent submit/wait with deadlines and retry.
///
//===----------------------------------------------------------------------===//

#include "core/Machine.h"
#include "guest/Assembler.h"
#include "mem/GuestMemory.h"
#include "serve/BatchService.h"
#include "workloads/Litmus.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

using namespace llsc;
using namespace llsc::serve;
using namespace llsc::workloads;

namespace {

/// Program A: LL/SC fetch-add on one shared word (deterministic final
/// value: 100 * threads) plus a plain-store sentinel.
constexpr const char *ProgramA = R"(
_start: la      r10, word
        li      r9, #100
loopA:  cbz     r9, stash
tryA:   ldxr.d  r1, [r10]
        addi    r1, r1, #1
        stxr.d  r2, r1, [r10]
        cbnz    r2, tryA
        addi    r9, r9, #-1
        b       loopA
stash:  la      r11, mark
        li      r3, #0xABCD
        std     r3, [r11]
        halt
        .align 64
word:   .quad 0
        .align 64
mark:   .quad 0
)";

/// Program B: straight arithmetic (fib(20) = 6765), no atomics — a shape
/// change from A in both code and data footprint.
constexpr const char *ProgramB = R"(
_start: movz    r1, #0
        movz    r2, #1
        li      r3, #20
loopB:  cbz     r3, doneB
        add     r4, r1, r2
        mov     r1, r2
        mov     r2, r4
        addi    r3, r3, #-1
        b       loopB
doneB:  la      r5, out
        std     r1, [r5]
        halt
        .align 8
out:    .quad 0
)";

std::unique_ptr<Machine> makeMachine(SchemeKind Scheme, unsigned Threads = 2) {
  MachineConfig Config;
  Config.Scheme = Scheme;
  Config.NumThreads = Threads;
  Config.MemBytes = 8ULL << 20;
  Config.ForceSoftHtm = true;
  auto MachineOrErr = Machine::create(Config);
  EXPECT_TRUE(bool(MachineOrErr)) << MachineOrErr.error().render();
  return MachineOrErr.take();
}

class ReuseTest : public ::testing::TestWithParam<SchemeKind> {};

INSTANTIATE_TEST_SUITE_P(
    Schemes, ReuseTest, ::testing::ValuesIn(allSchemeKinds()),
    [](const ::testing::TestParamInfo<SchemeKind> &Info) {
      std::string Name = schemeTraits(Info.param).Name;
      for (char &C : Name)
        if (C == '-')
          C = '_';
      return Name;
    });

} // namespace

/// Two different programs back to back on one machine: the first run's
/// memory, monitors and counters must not leak into the second, and the
/// second run must match a fresh machine's run of the same program.
TEST_P(ReuseTest, BackToBackProgramsNoStateLeak) {
  auto M = makeMachine(GetParam());
  ASSERT_TRUE(bool(M->loadAssembly(ProgramA)));
  uint64_t WordAddr = M->program().requiredSymbol("word");
  uint64_t MarkAddr = M->program().requiredSymbol("mark");

  auto RunA = M->run(RunOptions());
  ASSERT_TRUE(bool(RunA)) << RunA.error().render();
  EXPECT_TRUE(RunA->AllHalted);
  EXPECT_EQ(M->mem().shadowLoad(WordAddr, 8), 100u * M->numThreads());
  EXPECT_EQ(M->mem().shadowLoad(MarkAddr, 8), 0xABCDu);

  M->reset();
  EXPECT_EQ(M->resetCount(), 1u);
  // Job A's footprint is gone: memory zeroed, monitors disarmed, per-vCPU
  // counters rolled over.
  EXPECT_EQ(M->mem().shadowLoad(WordAddr, 8), 0u);
  EXPECT_EQ(M->mem().shadowLoad(MarkAddr, 8), 0u);
  for (unsigned Tid = 0; Tid < M->numThreads(); ++Tid) {
    EXPECT_FALSE(M->cpu(Tid).Monitor.valid()) << "tid " << Tid;
    EXPECT_EQ(M->cpu(Tid).Counters.ExecutedInsts, 0u) << "tid " << Tid;
    EXPECT_EQ(M->cpu(Tid).Counters.StoreConds, 0u) << "tid " << Tid;
  }

  ASSERT_TRUE(bool(M->loadAssembly(ProgramB)));
  auto RunB = M->run(RunOptions());
  ASSERT_TRUE(bool(RunB)) << RunB.error().render();
  EXPECT_TRUE(RunB->AllHalted);
  uint64_t OutAddr = M->program().requiredSymbol("out");
  EXPECT_EQ(M->mem().shadowLoad(OutAddr, 8), 6765u);

  // The reused run is indistinguishable from a fresh machine's.
  auto Fresh = makeMachine(GetParam());
  ASSERT_TRUE(bool(Fresh->loadAssembly(ProgramB)));
  auto FreshB = Fresh->run(RunOptions());
  ASSERT_TRUE(bool(FreshB)) << FreshB.error().render();
  EXPECT_EQ(Fresh->mem().shadowLoad(OutAddr, 8), 6765u);
  EXPECT_EQ(RunB->Total.ExecutedInsts, FreshB->Total.ExecutedInsts);
  EXPECT_EQ(RunB->Total.StoreConds, FreshB->Total.StoreConds);
}

/// The Table II litmus classification is a property of the scheme, not of
/// the machine's history: it must be identical before and after the
/// machine has served an unrelated job and been reset.
TEST_P(ReuseTest, LitmusClassificationSurvivesReuse) {
  auto M = makeMachine(GetParam());
  auto Driver1 = LitmusDriver::create(*M);
  ASSERT_TRUE(bool(Driver1)) << Driver1.error().render();
  MeasuredAtomicity FreshClass = classifyScheme(*Driver1);

  M->reset();
  ASSERT_TRUE(bool(M->loadAssembly(ProgramA)));
  auto Run = M->run(RunOptions());
  ASSERT_TRUE(bool(Run)) << Run.error().render();
  M->reset();

  auto Driver2 = LitmusDriver::create(*M);
  ASSERT_TRUE(bool(Driver2)) << Driver2.error().render();
  EXPECT_EQ(classifyScheme(*Driver2), FreshClass)
      << "classification changed after reuse ("
      << measuredAtomicityName(FreshClass) << " before)";
}

/// The code-cache retention rule behind pooled throughput: reloading a
/// byte-identical image across reset() keeps translations (no flush, no
/// new translation misses), while a different image flushes.
TEST_P(ReuseTest, IdenticalReloadKeepsTranslations) {
  auto M = makeMachine(GetParam(), /*Threads=*/1);
  auto ProgOrErr = guest::assemble(ProgramA);
  ASSERT_TRUE(bool(ProgOrErr)) << ProgOrErr.error().render();
  guest::Program Prog = ProgOrErr.take();

  ASSERT_TRUE(bool(M->loadProgram(Prog)));
  ASSERT_TRUE(bool(M->run(RunOptions())));
  uint64_t Gen = M->cache().generation();
  uint64_t Misses = M->cache().misses();
  EXPECT_GT(Misses, 0u);

  M->reset();
  ASSERT_TRUE(bool(M->loadProgram(Prog)));
  ASSERT_TRUE(bool(M->run(RunOptions())));
  EXPECT_EQ(M->cache().generation(), Gen) << "identical reload flushed";
  EXPECT_EQ(M->cache().misses(), Misses) << "identical reload retranslated";
  EXPECT_EQ(M->mem().shadowLoad(M->program().requiredSymbol("word"), 8),
            100u);

  // A different image must flush: stale translations crossing programs
  // would execute the wrong code.
  M->reset();
  ASSERT_TRUE(bool(M->loadAssembly(ProgramB)));
  EXPECT_GT(M->cache().generation(), Gen);
}

TEST(MachinePoolTest, BucketsByConfigKey) {
  MachinePool Pool;
  MachineConfig HstCfg;
  HstCfg.Scheme = SchemeKind::Hst;
  HstCfg.NumThreads = 2;
  MachineConfig CasCfg = HstCfg;
  CasCfg.Scheme = SchemeKind::PicoCas;
  EXPECT_NE(machineConfigKey(HstCfg), machineConfigKey(CasCfg));

  auto M1 = Pool.acquire(HstCfg);
  ASSERT_TRUE(bool(M1));
  EXPECT_EQ(Pool.stats().Created, 1u);
  Machine *Raw = M1->get();
  Pool.release(M1.take());
  EXPECT_EQ(Pool.stats().Idle, 1u);

  // Same shape: the parked machine comes back, reset.
  auto M2 = Pool.acquire(HstCfg);
  ASSERT_TRUE(bool(M2));
  EXPECT_EQ(M2->get(), Raw);
  EXPECT_EQ((*M2)->resetCount(), 1u);
  EXPECT_EQ(Pool.stats().Reused, 1u);

  // Different shape: a parked HST machine is no use to a PICO-CAS job.
  Pool.release(M2.take());
  auto M3 = Pool.acquire(CasCfg);
  ASSERT_TRUE(bool(M3));
  EXPECT_NE(M3->get(), Raw);
  EXPECT_EQ(Pool.stats().Created, 2u);

  Pool.clear();
  EXPECT_EQ(Pool.stats().Idle, 0u);
}

TEST(MachinePoolTest, PoisonedReleaseDestroys) {
  MachinePool Pool;
  MachineConfig Cfg;
  Cfg.Scheme = SchemeKind::Hst;
  Cfg.NumThreads = 1;

  auto M1 = Pool.acquire(Cfg);
  ASSERT_TRUE(bool(M1));
  Pool.release(M1.take(), /*Poisoned=*/true);
  EXPECT_EQ(Pool.stats().Destroyed, 1u);
  EXPECT_EQ(Pool.stats().Idle, 0u);

  // The next acquire builds a brand-new machine, never a poisoned one.
  auto M2 = Pool.acquire(Cfg);
  ASSERT_TRUE(bool(M2));
  EXPECT_EQ((*M2)->resetCount(), 0u);
  EXPECT_EQ(Pool.stats().Created, 2u);
}

/// Concurrent submitters racing the worker pool: every job completes,
/// fleet arithmetic holds, and single-bucket traffic actually recycles.
TEST(BatchServiceTest, ConcurrentSubmitWaitStress) {
  BatchConfig Config;
  Config.Workers = 8;
  Config.QueueCapacity = 16; // Small on purpose: submitters must block.
  BatchService Service(Config);

  constexpr unsigned Submitters = 4;
  constexpr unsigned JobsEach = 16;
  std::vector<std::thread> Threads;
  std::vector<int> DoneCounts(Submitters, 0);
  for (unsigned S = 0; S < Submitters; ++S) {
    Threads.emplace_back([&, S] {
      std::vector<JobHandle> Handles;
      for (unsigned J = 0; J < JobsEach; ++J) {
        JobSpec Spec;
        Spec.Name = "stress";
        Spec.AssemblySource = ProgramA;
        Spec.Machine.Scheme = SchemeKind::Hst;
        Spec.Machine.NumThreads = 2;
        Spec.Machine.MemBytes = 8ULL << 20;
        auto Handle = Service.submit(std::move(Spec));
        ASSERT_TRUE(bool(Handle)) << Handle.error().render();
        Handles.push_back(*Handle);
      }
      for (const JobHandle &H : Handles) {
        const JobResult &R = H.wait();
        EXPECT_EQ(R.State, JobState::Done) << R.Error;
        // 2 vCPUs x 100 LL/SC increments; failures retry, so >= 200.
        EXPECT_GE(R.Report.Total.StoreConds, 200u);
        if (R.State == JobState::Done)
          ++DoneCounts[S];
      }
    });
  }
  for (std::thread &T : Threads)
    T.join();

  FleetStats Fleet = Service.fleetStats();
  EXPECT_EQ(Fleet.Submitted, Submitters * JobsEach);
  EXPECT_EQ(Fleet.Completed, Submitters * JobsEach);
  EXPECT_EQ(Fleet.Failed, 0u);
  // One config bucket, 64 jobs, 8 workers: recycling is guaranteed.
  EXPECT_GT(Fleet.MachinesReused, 0u);
  for (unsigned S = 0; S < Submitters; ++S)
    EXPECT_EQ(DoneCounts[S], static_cast<int>(JobsEach));
}

/// A deadline that expires while the job is still queued fails the job
/// without ever running it.
TEST(BatchServiceTest, DeadlineExpiresWhileQueued) {
  BatchConfig Config;
  Config.Workers = 1;
  BatchService Service(Config);

  // Occupy the lone worker long enough for the deadline job to age out.
  JobSpec Long;
  Long.Name = "long";
  Long.AssemblySource = ProgramA;
  Long.Machine.Scheme = SchemeKind::PicoCas;
  Long.Machine.NumThreads = 2;
  Long.Machine.MemBytes = 8ULL << 20;
  auto LongHandle = Service.submit(std::move(Long));
  ASSERT_TRUE(bool(LongHandle));

  JobSpec Doomed;
  Doomed.Name = "doomed";
  Doomed.AssemblySource = ProgramA;
  Doomed.Machine.Scheme = SchemeKind::PicoCas;
  Doomed.Machine.NumThreads = 2;
  Doomed.Machine.MemBytes = 8ULL << 20;
  Doomed.DeadlineSeconds = 1e-9; // Expired before any worker can pop it.
  auto DoomedHandle = Service.submit(std::move(Doomed));
  ASSERT_TRUE(bool(DoomedHandle));

  const JobResult &R = DoomedHandle->wait();
  EXPECT_EQ(R.State, JobState::Failed);
  EXPECT_TRUE(R.DeadlineExceeded);
  EXPECT_FALSE(R.Error.empty());
  EXPECT_EQ(LongHandle->wait().State, JobState::Done);
}

/// Deterministic spec errors (un-assemblable source) are not retried:
/// MaxAttempts is for machine faults, not for jobs that can never load.
TEST(BatchServiceTest, LoadErrorFailsWithoutRetry) {
  BatchConfig Config;
  Config.Workers = 2;
  BatchService Service(Config);

  JobSpec Bad;
  Bad.Name = "bad";
  Bad.AssemblySource = "_start: not_an_instruction r1, r2\n";
  Bad.Machine.Scheme = SchemeKind::Hst;
  Bad.Machine.NumThreads = 1;
  Bad.MaxAttempts = 3;
  auto Handle = Service.submit(std::move(Bad));
  ASSERT_TRUE(bool(Handle));

  const JobResult &R = Handle->wait();
  EXPECT_EQ(R.State, JobState::Failed);
  EXPECT_EQ(R.Attempts, 1u);
  EXPECT_FALSE(R.Error.empty());
  EXPECT_EQ(Service.fleetStats().Retried, 0u);
}
