//===- tests/EngineTest.cpp - engine/TB-cache behavioral tests -------------------===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/Machine.h"
#include "engine/TbCache.h"

#include <gtest/gtest.h>
#include <sys/mman.h>

using namespace llsc;

namespace {

std::unique_ptr<Machine> makeMachine(unsigned Threads = 1,
                                     uint64_t MaxBlocks = 0) {
  MachineConfig Config;
  Config.Scheme = SchemeKind::PicoCas;
  Config.NumThreads = Threads;
  Config.MemBytes = 8ULL << 20;
  Config.MaxBlocksPerCpu = MaxBlocks;
  auto MachineOrErr = Machine::create(Config);
  EXPECT_TRUE(bool(MachineOrErr)) << MachineOrErr.error().render();
  return MachineOrErr.take();
}

} // namespace

TEST(TbCache, TranslatesOncePerPc) {
  auto M = makeMachine();
  ASSERT_TRUE(bool(M->loadAssembly(R"(
_start: li  r2, #100
loop:   cbz r2, done
        addi r2, r2, #-1
        b   loop
done:   halt
)")));
  auto Result = M->run({});
  ASSERT_TRUE(bool(Result)) << Result.error().render();
  // The loop body executes 100 times but translates once; the program has
  // a handful of distinct blocks.
  EXPECT_LE(M->cache().size(), 6u);
  EXPECT_GE(M->cache().misses(), 2u);
  EXPECT_GT(M->cache().lookups(), 0u);
}

TEST(TbCache, ChainingAvoidsLookups) {
  auto M = makeMachine();
  ASSERT_TRUE(bool(M->loadAssembly(R"(
_start: li  r2, #10000
loop:   cbz r2, done
        addi r2, r2, #-1
        b   loop
done:   halt
)")));
  auto Result = M->run({});
  ASSERT_TRUE(bool(Result)) << Result.error().render();
  // With direct chaining, cache lookups stay near the block count rather
  // than the dynamic block execution count (~20k here).
  EXPECT_LT(M->cache().lookups(), 100u)
      << "chaining should bypass the hash lookup on hot edges";
}

TEST(TbCache, FlushRetranslates) {
  auto M = makeMachine();
  ASSERT_TRUE(bool(M->loadAssembly("_start: halt\n")));
  ASSERT_TRUE(bool(M->run({})));
  size_t MissesBefore = M->cache().misses();
  M->cache().flush();
  EXPECT_EQ(M->cache().size(), 0u);
  ASSERT_TRUE(bool(M->run({})));
  EXPECT_GT(M->cache().misses(), MissesBefore);
}

TEST(Engine, IndirectBranchesViaBlAndRet) {
  auto M = makeMachine();
  ASSERT_TRUE(bool(M->loadAssembly(R"(
; call the same function through two call sites (indirect returns)
_start: bl   inc
        bl   inc
        la   r2, out
        std  r1, [r2]
        halt
inc:    addi r1, r1, #1
        ret
out:    .quad 0
)")));
  auto Result = M->run({});
  ASSERT_TRUE(bool(Result)) << Result.error().render();
  EXPECT_EQ(M->mem().shadowLoad(M->program().requiredSymbol("out"), 8), 2u);
}

TEST(Engine, BlockBudgetStopsRunawayGuest) {
  auto M = makeMachine(1, /*MaxBlocks=*/1000);
  ASSERT_TRUE(bool(M->loadAssembly(R"(
_start: b _start      ; infinite loop
)")));
  auto Result = M->run({});
  ASSERT_TRUE(bool(Result)) << Result.error().render();
  EXPECT_FALSE(Result->AllHalted);
  EXPECT_LE(Result->Total.ExecutedBlocks, 1001u);
}

TEST(Engine, OutOfRangeAccessHaltsWithError) {
  auto M = makeMachine();
  ASSERT_TRUE(bool(M->loadAssembly(R"(
_start: li  r1, #0x40000000     ; far beyond the 8 MiB guest memory
        ldd r2, [r1]
        halt
)")));
  auto Result = M->run({});
  ASSERT_TRUE(bool(Result)) << Result.error().render();
  // The cpu halts (with a logged error) instead of crashing the host.
  EXPECT_TRUE(Result->AllHalted);
}

TEST(Engine, FenceAndYieldExecute) {
  auto M = makeMachine();
  ASSERT_TRUE(bool(M->loadAssembly(R"(
_start: dmb
        yield
        dmb
        halt
)")));
  auto Result = M->run({});
  ASSERT_TRUE(bool(Result)) << Result.error().render();
  EXPECT_EQ(Result->Total.Yields, 1u);
}

TEST(Engine, CooperativeDeterminism) {
  // The same cooperative schedule must give bit-identical executions.
  auto RunOnce = [](uint64_t Slice) {
    auto M = makeMachine(3);
    auto Loaded = M->loadAssembly(R"(
_start: tid     r1
        la      r2, data
        li      r4, #50
loop:   cbz     r4, done
        ldw     r3, [r2]
        add     r3, r3, r1
        addi    r3, r3, #1
        stw     r3, [r2]
        addi    r4, r4, #-1
        b       loop
done:   halt
        .align 64
data:   .word 0
)");
    EXPECT_TRUE(bool(Loaded));
    RunOptions Opts;
    Opts.ExecMode = RunOptions::Mode::Cooperative;
    Opts.BlocksPerSlice = Slice;
    auto Result = M->run(Opts);
    EXPECT_TRUE(bool(Result));
    return M->mem().shadowLoad(M->program().requiredSymbol("data"), 4);
  };
  EXPECT_EQ(RunOnce(2), RunOnce(2));
  EXPECT_EQ(RunOnce(5), RunOnce(5));
}

TEST(Engine, RuleBasedTranslationEndToEnd) {
  // The atomic_add idiom must produce identical architectural results
  // with and without the Section VI rule-based pass, and the pass must
  // actually fire.
  for (bool RuleBased : {false, true}) {
    MachineConfig Config;
    Config.Scheme = SchemeKind::Hst;
    Config.NumThreads = 4;
    Config.MemBytes = 8ULL << 20;
    Config.Translation.RuleBasedAtomics = RuleBased;
    auto M = Machine::create(Config).take();
    ASSERT_TRUE(bool(M->loadAssembly(R"(
_start: la      r1, counter
        movz    r2, #1
        li      r9, #1000
loop:   cbz     r9, done
retry:  ldxr.w  r3, [r1]
        add     r5, r3, r2
        stxr.w  r6, r5, [r1]
        cbnz    r6, retry
        addi    r9, r9, #-1
        b       loop
done:   halt
        .align 4096
counter: .word 0
)")));
    auto Result = M->run({});
    ASSERT_TRUE(bool(Result)) << Result.error().render();
    EXPECT_EQ(M->mem().shadowLoad(M->program().requiredSymbol("counter"), 4),
              4000u)
        << "rule-based=" << RuleBased;
    if (RuleBased) {
      EXPECT_GT(M->translator().stats().AtomicIdiomsMatched, 0u);
      EXPECT_EQ(Result->Total.LoadLinks, 0u)
          << "the idiom should lower to a host RMW, not LL/SC";
    } else {
      EXPECT_GT(Result->Total.LoadLinks, 0u);
    }
  }
}

TEST(Engine, ProfilingCountsInstrumentOps) {
  MachineConfig Config;
  Config.Scheme = SchemeKind::Hst;
  Config.NumThreads = 1;
  Config.MemBytes = 8ULL << 20;
  Config.Profile = true;
  auto M = Machine::create(Config).take();
  ASSERT_TRUE(bool(M->loadAssembly(R"(
_start: la  r1, data
        li  r4, #100
loop:   cbz r4, done
        std r4, [r1]
        addi r4, r4, #-1
        b   loop
done:   halt
        .align 64
data:   .quad 0
)")));
  auto Result = M->run({});
  ASSERT_TRUE(bool(Result)) << Result.error().render();
  // 100 instrumented stores, one fused instrumentation op each.
  EXPECT_GE(Result->Profile.InlineInstrumentOps, 100u);
  EXPECT_GT(Result->Profile.WallNs, 0u);
}

TEST(Engine, CustomSchemeIntegration) {
  // setScheme rewires translation and execution.
  struct CountingScheme final : AtomicScheme {
    uint64_t Lls = 0, Scs = 0, Stores = 0;
    const SchemeTraits &traits() const override {
      return schemeTraits(SchemeKind::PicoCas);
    }
    bool storesViaHelper() const override { return true; }
    uint64_t emulateLoadLink(VCpu &Cpu, uint64_t Addr,
                             unsigned Size) override {
      ++Lls;
      uint64_t Value = Ctx->Mem->shadowLoad(Addr, Size);
      Cpu.Monitor.arm(Addr, Value, Size);
      return Value;
    }
    bool emulateStoreCond(VCpu &Cpu, uint64_t Addr, uint64_t Value,
                          unsigned Size) override {
      ++Scs;
      Ctx->Mem->shadowStore(Addr, Value, Size);
      Cpu.Monitor.clear();
      return true;
    }
    void storeHook(VCpu &Cpu, uint64_t Addr, uint64_t Value,
                   unsigned Size) override {
      ++Stores;
      Ctx->Mem->shadowStore(Addr, Value, Size);
    }
  };

  auto M = makeMachine();
  auto Owned = std::make_unique<CountingScheme>();
  CountingScheme &Counting = *Owned;
  M->setScheme(std::move(Owned));
  ASSERT_TRUE(bool(M->loadAssembly(R"(
_start: la      r1, data
        ldxr.w  r2, [r1]
        stxr.w  r3, r2, [r1]
        stw     r2, [r1, #4]
        halt
        .align 64
data:   .quad 0
)")));
  auto Result = M->run({});
  ASSERT_TRUE(bool(Result)) << Result.error().render();
  EXPECT_EQ(Counting.Lls, 1u);
  EXPECT_EQ(Counting.Scs, 1u);
  EXPECT_EQ(Counting.Stores, 1u);
}

namespace {

// Contended LL/SC counter: NumThreads x Iters increments of one word.
// Exercises the guest-memory fast path (plain loads/stores around the
// atomic sequence) while the page-protection schemes restrict and
// restore pages underneath it.
constexpr const char *ContendedCounterSource = R"(
_start: la      r1, counter
        la      r8, scratch
        li      r9, #200
loop:   cbz     r9, done
retry:  ldxr.w  r3, [r1]
        addi    r5, r3, #1
        stxr.w  r6, r5, [r1]
        cbnz    r6, retry
        ldd     r7, [r8]        ; plain load on the fastmem path
        addi    r7, r7, #1
        std     r7, [r8, #8]    ; plain store on the fastmem path
        addi    r9, r9, #-1
        b       loop
done:   halt
        .align 4096
counter: .word 0
        .align 64
scratch: .quad 0
        .quad 0
)";

} // namespace

TEST(Engine, PstFaultsCorrectlyWithFastMem) {
  // PST restricts pages with mprotect during exclusive sections. The raw
  // fastmem path must never let a plain access slip past the protection:
  // the final count proves no increment was lost to a missed fault.
  MachineConfig Config;
  Config.Scheme = SchemeKind::Pst;
  Config.NumThreads = 4;
  Config.MemBytes = 8ULL << 20;
  auto M = Machine::create(Config).take();
  ASSERT_TRUE(bool(M->loadAssembly(ContendedCounterSource)));
  auto Result = M->run({});
  ASSERT_TRUE(bool(Result)) << Result.error().render();
  EXPECT_TRUE(Result->AllHalted);
  EXPECT_EQ(M->mem().shadowLoad(M->program().requiredSymbol("counter"), 4),
            800u)
      << "a lost increment means a plain store bypassed the PST fault";
  EXPECT_GT(Result->Events.MprotectCalls, 0u)
      << "the scheme must actually have protected pages during the run";
}

TEST(Engine, PstRemapFaultsCorrectlyWithFastMem) {
  MachineConfig Config;
  Config.Scheme = SchemeKind::PstRemap;
  Config.NumThreads = 4;
  Config.MemBytes = 8ULL << 20;
  auto M = Machine::create(Config).take();
  ASSERT_TRUE(bool(M->loadAssembly(ContendedCounterSource)));
  auto Result = M->run({});
  ASSERT_TRUE(bool(Result)) << Result.error().render();
  EXPECT_TRUE(Result->AllHalted);
  EXPECT_EQ(M->mem().shadowLoad(M->program().requiredSymbol("counter"), 4),
            800u)
      << "a lost increment means a plain access bypassed the remap fault";
  EXPECT_GT(Result->Events.RemapCalls, 0u);
}

TEST(Engine, FastMemDisabledWhilePagesRestricted) {
  // Force a page restriction around a run: the per-vCPU fast-path window
  // must close (all accesses take the slow checked path) and reopen once
  // the restriction clears.
  auto M = makeMachine();
  ASSERT_TRUE(bool(M->loadAssembly(R"(
_start: la  r1, data
        li  r4, #100
loop:   cbz r4, done
        ldd r2, [r1]
        addi r2, r2, #1
        std r2, [r1]
        addi r4, r4, #-1
        b   loop
done:   halt
        .align 64
data:   .quad 0
)")));
  auto Result = M->run({});
  ASSERT_TRUE(bool(Result)) << Result.error().render();
  EXPECT_GT(Result->Events.FastMemHits, 0u);
  EXPECT_EQ(Result->Events.FastMemSlow, 0u);

  // Restrict an unrelated page: the window collapses machine-wide.
  ASSERT_TRUE(M->mem().protectPage(1000, PROT_READ));
  EXPECT_FALSE(M->mem().fastPathAllowed());
  auto Restricted = M->run({});
  ASSERT_TRUE(bool(Restricted)) << Restricted.error().render();
  EXPECT_EQ(Restricted->Events.FastMemHits, 0u)
      << "no raw access may happen while any page is restricted";
  EXPECT_GT(Restricted->Events.FastMemSlow, 0u);

  ASSERT_TRUE(M->mem().protectPage(1000, PROT_READ | PROT_WRITE));
  auto Reopened = M->run({});
  ASSERT_TRUE(bool(Reopened)) << Reopened.error().render();
  EXPECT_GT(Reopened->Events.FastMemHits, 0u);
}

TEST(Engine, JumpCacheCountersOnIndirectWorkload) {
  auto M = makeMachine();
  ASSERT_TRUE(bool(M->loadAssembly(R"(
_start: li   r2, #1000
loop:   cbz  r2, done
        bl   callee
        addi r2, r2, #-1
        b    loop
done:   halt
callee: addi r3, r3, #1
        ret
)")));
  auto Result = M->run({});
  ASSERT_TRUE(bool(Result)) << Result.error().render();
  EXPECT_EQ(M->cpu(0).Regs[3], 1000u);
  // Every `ret` is an indirect branch; after the cold misses the jump
  // cache must serve nearly all of them.
  uint64_t Hits = Result->Events.JmpCacheHits;
  uint64_t Misses = Result->Events.JmpCacheMisses;
  EXPECT_GT(Hits + Misses, 900u);
  EXPECT_GE(Hits * 100, (Hits + Misses) * 95)
      << "jump-cache hit rate below 95% on a two-target indirect loop";
}

TEST(Engine, WallBudgetStopsRunawayGuest) {
  MachineConfig Config;
  Config.Scheme = SchemeKind::PicoCas;
  Config.NumThreads = 1;
  Config.MemBytes = 8ULL << 20;
  Config.MaxSecondsPerCpu = 0.05;
  auto M = Machine::create(Config).take();
  ASSERT_TRUE(bool(M->loadAssembly("_start: b _start\n")));
  uint64_t Start = monotonicNanos();
  auto Result = M->run({});
  uint64_t ElapsedNs = monotonicNanos() - Start;
  ASSERT_TRUE(bool(Result)) << Result.error().render();
  EXPECT_FALSE(Result->AllHalted);
  EXPECT_LT(ElapsedNs, 2'000'000'000ull) << "wall budget must bound the run";
}
