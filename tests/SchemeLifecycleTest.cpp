//===- tests/SchemeLifecycleTest.cpp - lifecycle conformance suite --------------===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Conformance suite for the scheme lifecycle state machine (docs/API.md):
/// every SchemeKind must honor the Detached -> Attached -> Detached
/// transitions, release cross-instruction state on clearExclusive /
/// onCpuStopped, return the machine to a scheme-neutral state on detach,
/// and survive a Machine::setScheme hot-swap mid-litmus without ever
/// letting a pre-swap LL's SC succeed.
///
//===----------------------------------------------------------------------===//

#include "core/Machine.h"
#include "core/Snapshot.h"
#include "mem/GuestMemory.h"

#include <gtest/gtest.h>

using namespace llsc;

namespace {

std::unique_ptr<Machine> makeMachine(SchemeKind Scheme, unsigned Threads = 2) {
  MachineConfig Config;
  Config.Scheme = Scheme;
  Config.NumThreads = Threads;
  Config.MemBytes = 8ULL << 20;
  Config.ForceSoftHtm = true;
  auto MachineOrErr = Machine::create(Config);
  EXPECT_TRUE(bool(MachineOrErr)) << MachineOrErr.error().render();
  return MachineOrErr.take();
}

/// A non-HTM swap partner that differs from the kind under test.
SchemeKind swapPartner(SchemeKind Kind) {
  return Kind == SchemeKind::Hst ? SchemeKind::PicoSt : SchemeKind::Hst;
}

class LifecycleTest : public ::testing::TestWithParam<SchemeKind> {};

INSTANTIATE_TEST_SUITE_P(
    Schemes, LifecycleTest, ::testing::ValuesIn(allSchemeKinds()),
    [](const ::testing::TestParamInfo<SchemeKind> &Info) {
      std::string Name = schemeTraits(Info.param).Name;
      for (char &C : Name)
        if (C == '-')
          C = '_';
      return Name;
    });

} // namespace

/// createScheme returns a Detached scheme; detach() on a Detached scheme
/// is an idempotent no-op; setScheme drives Detached -> Attached; the
/// replaced scheme ends Detached and is retained one swap deep.
TEST_P(LifecycleTest, StateMachineTransitions) {
  auto Fresh = createScheme(GetParam(), /*HstTableLog2=*/12);
  ASSERT_TRUE(Fresh);
  EXPECT_EQ(Fresh->state(), SchemeState::Detached);
  Fresh->detach(); // Idempotent on a never-attached scheme.
  EXPECT_EQ(Fresh->state(), SchemeState::Detached);

  auto M = makeMachine(swapPartner(GetParam()));
  ASSERT_TRUE(bool(M->loadAssembly("_start: halt\n")));
  AtomicScheme *Raw = Fresh.get();
  M->setScheme(std::move(Fresh));
  EXPECT_EQ(&M->scheme(), Raw);
  EXPECT_EQ(Raw->state(), SchemeState::Attached);

  // reset() (via prepareRun) is legal and repeatable while Attached.
  M->prepareRun();
  M->prepareRun();
  EXPECT_EQ(Raw->state(), SchemeState::Attached);

  // Swap away: the old scheme is detached but must stay alive until the
  // *next* swap (retired code blocks reference it).
  M->setScheme(createScheme(swapPartner(GetParam()), /*HstTableLog2=*/12));
  EXPECT_EQ(Raw->state(), SchemeState::Detached);
  EXPECT_NE(&M->scheme(), Raw);
}

/// CLREX releases the whole LL window — monitor, page protection claim,
/// open transaction — and leaves the scheme able to run a fresh LL/SC.
TEST_P(LifecycleTest, ClearExclusiveReleasesCrossInstructionState) {
  auto M = makeMachine(GetParam());
  ASSERT_TRUE(bool(M->loadAssembly("_start: halt\n")));
  M->prepareRun();
  AtomicScheme &Scheme = M->scheme();
  VCpu &A = M->cpu(0);

  Scheme.emulateLoadLink(A, 0xa000, 4);
  Scheme.clearExclusive(A);
  EXPECT_FALSE(A.InLongTx) << "clearExclusive must close an open long tx";
  EXPECT_FALSE(Scheme.emulateStoreCond(A, 0xa000, 1, 4))
      << schemeTraits(GetParam()).Name;

  // The scheme must not be wedged: a fresh LL/SC pair succeeds.
  Scheme.emulateLoadLink(A, 0xa000, 4);
  EXPECT_TRUE(Scheme.emulateStoreCond(A, 0xa000, 2, 4))
      << schemeTraits(GetParam()).Name;
}

/// A vCPU leaving the run loop must not strand scheme state that blocks
/// its siblings (open PICO-HTM transaction, exclusive-fallback floor).
TEST_P(LifecycleTest, OnCpuStoppedReleasesCrossInstructionState) {
  auto M = makeMachine(GetParam());
  ASSERT_TRUE(bool(M->loadAssembly("_start: halt\n")));
  M->prepareRun();
  AtomicScheme &Scheme = M->scheme();
  VCpu &A = M->cpu(0);
  VCpu &B = M->cpu(1);

  Scheme.emulateLoadLink(A, 0xb000, 4);
  Scheme.onCpuStopped(A);
  EXPECT_FALSE(A.InLongTx) << "onCpuStopped must close an open long tx";

  // Another thread must be able to run a complete LL/SC afterwards.
  Scheme.emulateLoadLink(B, 0xc000, 4);
  EXPECT_TRUE(Scheme.emulateStoreCond(B, 0xc000, 3, 4))
      << schemeTraits(GetParam()).Name;
}

/// setScheme mid-LL-window: the quiesce protocol breaks the armed monitor
/// (SC under the new scheme fails) and detach returns the machine to a
/// scheme-neutral state (no page left restricted).
TEST_P(LifecycleTest, SwapReleasesMachineState) {
  auto M = makeMachine(GetParam());
  ASSERT_TRUE(bool(M->loadAssembly("_start: halt\n")));
  M->prepareRun();
  VCpu &A = M->cpu(0);

  M->scheme().emulateLoadLink(A, 0xd000, 4);
  M->setScheme(createScheme(swapPartner(GetParam()), /*HstTableLog2=*/12));

  EXPECT_TRUE(M->mem().fastPathAllowed())
      << "detach left a page restricted";
  EXPECT_FALSE(M->scheme().emulateStoreCond(A, 0xd000, 1, 4))
      << "SC across a scheme swap must fail";

  // The new scheme is fully operational.
  M->scheme().emulateLoadLink(A, 0xd000, 4);
  EXPECT_TRUE(M->scheme().emulateStoreCond(A, 0xd000, 2, 4));
}

/// restoreFrom is monitor-neutral: an LL window armed before the restore
/// must not survive it — the restore path quiesces and resets the scheme,
/// so the pending SC fails exactly as it would after CLREX — and the
/// restored machine runs a fresh LL/SC pair. This matters most for
/// schemes whose monitor state lives outside guest memory (HST tag
/// tables, PST protection maps, bw-llsc announcement slots): none of it
/// is captured by the snapshot, so all of it must be dropped on restore.
TEST_P(LifecycleTest, SnapshotRestoreIsMonitorNeutral) {
  auto Donor = makeMachine(GetParam());
  ASSERT_TRUE(bool(Donor->loadAssembly("_start: halt\n")));
  auto SnapOrErr = Donor->snapshot();
  ASSERT_TRUE(bool(SnapOrErr)) << SnapOrErr.error().render();

  auto Clone = makeMachine(GetParam());
  ASSERT_TRUE(bool(Clone->loadAssembly("_start: halt\n")));
  Clone->prepareRun();
  VCpu &A = Clone->cpu(0);
  Clone->scheme().emulateLoadLink(A, 0xe000, 4);
  ASSERT_TRUE(bool(Clone->restoreFrom(*SnapOrErr)));

  EXPECT_FALSE(Clone->scheme().emulateStoreCond(A, 0xe000, 1, 4))
      << "SC across a snapshot restore must fail";

  // The restored scheme is fully operational.
  Clone->scheme().emulateLoadLink(A, 0xe000, 4);
  EXPECT_TRUE(Clone->scheme().emulateStoreCond(A, 0xe000, 2, 4))
      << schemeTraits(GetParam()).Name;
}

namespace {

/// Swaps the scheme the first time it sees the LL executed with the SC
/// still pending — the adaptive controller's quiesce/swap path, driven
/// deterministically between Scheduled-mode slices.
class SwapBetweenLlAndSc final : public SliceObserver {
public:
  SwapBetweenLlAndSc(Machine &M, SchemeKind To) : M(M), To(To) {}

  bool onSlice(unsigned, uint64_t) override {
    VCpu &Cpu = M.cpu(0);
    if (!DidSwap && Cpu.Regs[2] == 7 && Cpu.Regs[3] == 99) {
      M.setScheme(createScheme(To, /*HstTableLog2=*/12));
      DidSwap = true;
    }
    return true;
  }

  bool swapped() const { return DidSwap; }

private:
  Machine &M;
  SchemeKind To;
  bool DidSwap = false;
};

} // namespace

/// Hot-swap between a guest LL and its SC: the SC must fail under every
/// kind — the quiesce cleared the monitor, and the architecture permits
/// an SC to fail at any time; a success here would be a soundness bug.
TEST_P(LifecycleTest, HotSwapMidLitmusScFails) {
  auto M = makeMachine(GetParam(), /*Threads=*/1);
  // Explicit branches split the LL and SC into separate translation
  // blocks so the observer gets a slice boundary between them. r3 holds
  // 99 until the SC overwrites it with its status (0 = success).
  ASSERT_TRUE(bool(M->loadAssembly(R"(
_start: la      r1, var
        li      r3, #99
        b       ll
ll:     ldxr.w  r2, [r1]
        b       sc
sc:     stxr.w  r3, r2, [r1]
        b       fin
fin:    halt
        .align 64
var:    .word 7
)")));

  RoundRobinSchedule Sched;
  SwapBetweenLlAndSc Obs(*M, swapPartner(GetParam()));
  RunOptions Opts;
  Opts.ExecMode = RunOptions::Mode::Scheduled;
  Opts.Sched = &Sched;
  Opts.Observer = &Obs;
  auto Result = M->run(Opts);
  ASSERT_TRUE(bool(Result)) << Result.error().render();
  EXPECT_TRUE(Result->AllHalted);
  ASSERT_TRUE(Obs.swapped()) << "LL and SC were not split across slices";

  uint64_t Status = M->cpu(0).Regs[3];
  EXPECT_NE(Status, 99u) << "SC never executed";
  EXPECT_NE(Status, 0u) << "SC succeeded across a scheme hot-swap — "
                           "forbidden for every scheme kind";
  EXPECT_EQ(M->mem().shadowLoad(M->program().requiredSymbol("var"), 4), 7u)
      << "a failed SC must not store";
  EXPECT_EQ(Result->FinalSchemeKind, swapPartner(GetParam()));
}
