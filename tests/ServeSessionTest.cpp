//===- tests/ServeSessionTest.cpp - session serving API conformance -------------===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Holds the session-oriented serving API (serve/Session.h) to its
/// contract: the JobSource variant, non-blocking admission with
/// retry-after hints, the deadline clock starting at queue *accept*,
/// cancel/poll/stream semantics, per-session quotas, close semantics,
/// service-wide drain, the AutoscaleController policy (hysteresis +
/// cooldown, doubling up / halving down), live fleet resizing, and the
/// MachinePool::trim rule that autoscaling must never destroy parked
/// snapshot clones whose donor an open session still references.
///
//===----------------------------------------------------------------------===//

#include "core/Snapshot.h"
#include "serve/Session.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

using namespace llsc;
using namespace llsc::serve;

namespace {

/// Finishes in microseconds.
constexpr const char *QuickProgram = R"(
_start: movz    r1, #7
        la      r2, out
        std     r1, [r2]
        halt
        .align 8
out:    .quad 0
)";

/// Never halts — its runtime is exactly its DeadlineSeconds, which is
/// how these tests make "a job that runs for N ms" deterministic.
constexpr const char *SpinProgram = "_start: b _start\n";

JobSpec quickSpec(const std::string &Name = "quick") {
  JobSpec Spec;
  Spec.Name = Name;
  Spec.Source = JobSource::assembly(QuickProgram);
  Spec.Machine.Scheme = SchemeKind::Hst;
  Spec.Machine.NumThreads = 1;
  Spec.Machine.MemBytes = 8ULL << 20;
  Spec.Run.ExecMode = RunOptions::Mode::Cooperative;
  Spec.Run.BlocksPerSlice = 16;
  return Spec;
}

JobSpec spinSpec(double DeadlineSeconds, const std::string &Name = "spin") {
  JobSpec Spec = quickSpec(Name);
  Spec.Source = JobSource::assembly(SpinProgram);
  Spec.DeadlineSeconds = DeadlineSeconds;
  return Spec;
}

BatchConfig smallFleet(unsigned Workers, size_t QueueCapacity) {
  BatchConfig Config;
  Config.Workers = Workers;
  Config.QueueCapacity = QueueCapacity;
  return Config;
}

/// Spins until \p Handle reports Running (a worker picked the job up).
void waitRunning(const JobHandle &Handle) {
  while (Handle.state() == JobState::Queued)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
}

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

} // namespace

TEST(JobSourceTest, FactoriesSetTheVariant) {
  JobSource Asm = JobSource::assembly("_start: halt\n", 0x2000);
  EXPECT_EQ(Asm.SourceKind, JobSource::Kind::Image);
  EXPECT_FALSE(Asm.Program.has_value());
  EXPECT_EQ(Asm.BaseAddr, 0x2000u);
  EXPECT_FALSE(Asm.AssemblySource.empty());

  JobSource Img = JobSource::image(guest::Program());
  EXPECT_EQ(Img.SourceKind, JobSource::Kind::Image);
  EXPECT_TRUE(Img.Program.has_value());

  JobSource Ref = JobSource::snapshotRef(nullptr);
  EXPECT_EQ(Ref.SourceKind, JobSource::Kind::SnapshotRef);
}

TEST(JobSourceTest, AdmitStatusNamesAreStable) {
  EXPECT_STREQ(admitStatusName(AdmitStatus::Accepted), "accepted");
  EXPECT_STREQ(admitStatusName(AdmitStatus::QueueFull), "queue-full");
  EXPECT_STREQ(admitStatusName(AdmitStatus::QuotaExceeded), "quota-exceeded");
  EXPECT_STREQ(admitStatusName(AdmitStatus::Draining), "draining");
  EXPECT_STREQ(admitStatusName(AdmitStatus::Closed), "closed");
}

/// trySubmit must answer QueueFull immediately — the daemon's event
/// loop calls it inline and a blocked loop is a dead daemon.
TEST(BatchAdmissionTest, TrySubmitNeverBlocksOnFullQueue) {
  BatchService Service(smallFleet(1, 1));
  Admission Running = Service.trySubmit(spinSpec(0.5));
  ASSERT_EQ(Running.Status, AdmitStatus::Accepted);
  waitRunning(Running.Handle);
  Admission Queued = Service.trySubmit(quickSpec());
  ASSERT_EQ(Queued.Status, AdmitStatus::Accepted);

  auto Start = std::chrono::steady_clock::now();
  Admission Rejected = Service.trySubmit(quickSpec());
  EXPECT_LT(secondsSince(Start), 0.2);
  EXPECT_EQ(Rejected.Status, AdmitStatus::QueueFull);
  EXPECT_FALSE(Rejected.Handle.valid());
  EXPECT_GT(Rejected.RetryAfterSeconds, 0.0);
  EXPECT_EQ(Service.fleetStats().RejectedQueueFull, 1u);

  Service.drain();
}

/// The deadline clock starts at queue accept, not at the submit call:
/// a blocking submit that waits out a full queue must not eat the job's
/// deadline budget.
TEST(BatchAdmissionTest, DeadlineClockStartsAtAccept) {
  BatchService Service(smallFleet(1, 1));
  // Occupy the worker for ~0.5s and the single queue slot.
  Admission Running = Service.trySubmit(spinSpec(0.5));
  ASSERT_EQ(Running.Status, AdmitStatus::Accepted);
  waitRunning(Running.Handle);
  Admission Filler = Service.trySubmit(quickSpec("filler"));
  ASSERT_EQ(Filler.Status, AdmitStatus::Accepted);

  // This submit parks until the spin job's deadline frees a slot —
  // longer than the submitted job's own 0.3s deadline.
  JobSpec Late = quickSpec("late");
  Late.DeadlineSeconds = 0.3;
  auto Start = std::chrono::steady_clock::now();
  auto Handle = Service.submit(std::move(Late));
  ASSERT_TRUE(bool(Handle)) << Handle.error().render();
  EXPECT_GT(secondsSince(Start), 0.3);

  const JobResult &Result = Handle->wait();
  EXPECT_EQ(Result.State, JobState::Done);
  EXPECT_FALSE(Result.DeadlineExceeded);
  Service.drain();
}

TEST(SessionTest, CancelQueuedJobCompletesAsCancelled) {
  SessionService Service({smallFleet(1, 4)});
  auto Sess = Service.createSession();
  ASSERT_TRUE(bool(Sess));

  Admission Running = (*Sess)->submit(spinSpec(0.4));
  ASSERT_EQ(Running.Status, AdmitStatus::Accepted);
  waitRunning(Running.Handle);
  Admission Queued = (*Sess)->submit(quickSpec("victim"));
  ASSERT_EQ(Queued.Status, AdmitStatus::Accepted);

  EXPECT_TRUE((*Sess)->cancel(Queued.Handle.id()));
  EXPECT_FALSE((*Sess)->cancel(99999)); // Unknown id.

  const JobResult &Result = Queued.Handle.wait();
  EXPECT_EQ(Result.State, JobState::Cancelled);
  Service.drain();
  EXPECT_EQ((*Sess)->poll(Queued.Handle.id()), JobState::Cancelled);
  EXPECT_EQ(Service.fleet().fleetStats().Cancelled, 1u);
}

TEST(SessionTest, QuotaRejectsBeyondMaxInFlight) {
  SessionService Service({smallFleet(1, 8)});
  SessionConfig Cfg;
  Cfg.MaxInFlight = 2;
  auto Sess = Service.createSession(Cfg);
  ASSERT_TRUE(bool(Sess));

  ASSERT_EQ((*Sess)->submit(spinSpec(0.3)).Status, AdmitStatus::Accepted);
  ASSERT_EQ((*Sess)->submit(quickSpec()).Status, AdmitStatus::Accepted);
  // Two in flight (one running, one queued): the quota is hit.
  EXPECT_EQ((*Sess)->submit(quickSpec()).Status, AdmitStatus::QuotaExceeded);

  Service.drain();
  // In-flight drained; the quota frees up.
  EXPECT_EQ((*Sess)->submit(quickSpec()).Status, AdmitStatus::Accepted);
  Service.drain();
}

TEST(SessionTest, StreamDeliversCompletionOrderAndPollTracksStates) {
  SessionService Service({smallFleet(1, 8)});
  auto Sess = Service.createSession();
  ASSERT_TRUE(bool(Sess));

  std::vector<uint64_t> Ids;
  for (int J = 0; J < 4; ++J) {
    Admission A =
        (*Sess)->submit(quickSpec("job-" + std::to_string(J)));
    ASSERT_EQ(A.Status, AdmitStatus::Accepted);
    Ids.push_back(A.Handle.id());
  }
  EXPECT_EQ((*Sess)->submitted(), 4u);

  std::vector<JobResult> Got;
  while (Got.size() < 4) {
    std::vector<JobResult> Batch = (*Sess)->stream(2, 1.0);
    ASSERT_FALSE(Batch.empty()) << "stream timed out";
    for (JobResult &R : Batch)
      Got.push_back(std::move(R));
  }
  // One worker: completion order is submit order.
  for (size_t J = 0; J < Got.size(); ++J) {
    EXPECT_EQ(Got[J].Name, "job-" + std::to_string(J));
    EXPECT_EQ(Got[J].State, JobState::Done);
  }
  EXPECT_EQ((*Sess)->buffered(), 0u);
  for (uint64_t Id : Ids)
    EXPECT_EQ((*Sess)->poll(Id), JobState::Done);
  EXPECT_EQ((*Sess)->poll(424242), std::nullopt);
}

TEST(SessionTest, BoundedBufferDropsOldest) {
  SessionService Service({smallFleet(2, 8)});
  SessionConfig Cfg;
  Cfg.MaxBufferedResults = 2;
  auto Sess = Service.createSession(Cfg);
  ASSERT_TRUE(bool(Sess));
  for (int J = 0; J < 4; ++J)
    ASSERT_EQ((*Sess)->submit(quickSpec()).Status, AdmitStatus::Accepted);
  Service.drain();
  EXPECT_EQ((*Sess)->buffered(), 2u);
  EXPECT_EQ((*Sess)->droppedResults(), 2u);
}

TEST(SessionTest, CloseSemantics) {
  SessionService Service({smallFleet(1, 4)});
  SessionConfig Cfg;
  Cfg.Name = "tenant";
  auto Sess = Service.createSession(Cfg);
  ASSERT_TRUE(bool(Sess));
  EXPECT_EQ((*Sess)->name(), "tenant");
  // Duplicate names are rejected while the session is open.
  EXPECT_FALSE(bool(Service.createSession(Cfg)));
  EXPECT_EQ(Service.find("tenant"), *Sess);

  Admission A = (*Sess)->submit(spinSpec(0.3));
  ASSERT_EQ(A.Status, AdmitStatus::Accepted);
  // Non-blocking close with a job in flight: admissions stop now, the
  // close completes when the job does.
  EXPECT_FALSE((*Sess)->tryClose());
  EXPECT_TRUE((*Sess)->closed());
  EXPECT_EQ((*Sess)->submit(quickSpec()).Status, AdmitStatus::Closed);

  (*Sess)->close(); // Blocking flavor waits out the in-flight job.
  EXPECT_TRUE((*Sess)->idle());
  // Buffered results stay streamable after close.
  std::vector<JobResult> Results = (*Sess)->stream(8, 1.0);
  ASSERT_EQ(Results.size(), 1u);
  EXPECT_EQ(Results[0].State, JobState::Done); // Deadline-stopped spin.
  EXPECT_TRUE(Results[0].DeadlineExceeded);

  Service.closeSession("tenant");
  EXPECT_EQ(Service.find("tenant"), nullptr);
  // The name is free again.
  EXPECT_TRUE(bool(Service.createSession(Cfg)));
}

TEST(SessionTest, ServiceDrainStopsAdmissionsEverywhere) {
  SessionService Service({smallFleet(1, 4)});
  auto Sess = Service.createSession();
  ASSERT_TRUE(bool(Sess));
  Service.beginDrain();
  EXPECT_TRUE(Service.draining());
  EXPECT_EQ((*Sess)->submit(quickSpec()).Status, AdmitStatus::Draining);
  EXPECT_FALSE(bool(Service.createSession()));
}

//===----------------------------------------------------------------------===//
// AutoscaleController policy units
//===----------------------------------------------------------------------===//

namespace {

AutoscaleConfig fastTuning() {
  AutoscaleConfig Config;
  Config.CooldownMs = 100;
  Config.HysteresisSamples = 3;
  Config.QueuePerWorkerHigh = 2.0;
  Config.BusyFracLow = 0.5;
  return Config;
}

AutoscaleSample pressure(unsigned Workers) {
  return {/*QueueDepth=*/Workers * 8, Workers, /*BusyWorkers=*/Workers};
}

AutoscaleSample idle(unsigned Workers) {
  return {/*QueueDepth=*/0, Workers, /*BusyWorkers=*/0};
}

constexpr uint64_t Ms = 1'000'000;

} // namespace

TEST(AutoscaleControllerTest, ScaleUpNeedsHysteresisAndDoubles) {
  AutoscaleController C(1, 8, fastTuning());
  EXPECT_EQ(C.current(), 1u);
  uint64_t Now = 1'000 * Ms;
  EXPECT_EQ(C.onSample(pressure(1), Now), std::nullopt);
  EXPECT_EQ(C.onSample(pressure(1), Now += 20 * Ms), std::nullopt);
  auto Target = C.onSample(pressure(1), Now += 20 * Ms);
  ASSERT_TRUE(Target.has_value()); // Third consecutive sample fires.
  EXPECT_EQ(*Target, 2u);          // Up doubles.
  C.onScaleComplete(2, Now);
  EXPECT_EQ(C.scaleUps(), 1u);
}

TEST(AutoscaleControllerTest, NeutralSampleResetsTheStreak) {
  AutoscaleController C(1, 8, fastTuning());
  uint64_t Now = 1'000 * Ms;
  EXPECT_EQ(C.onSample(pressure(1), Now), std::nullopt);
  EXPECT_EQ(C.onSample(pressure(1), Now += 20 * Ms), std::nullopt);
  // A no-signal sample (busy fleet, empty queue) breaks the streak...
  AutoscaleSample Busy = {0, 1, 1};
  EXPECT_EQ(C.onSample(Busy, Now += 20 * Ms), std::nullopt);
  // ...so two more pressure samples still aren't enough.
  EXPECT_EQ(C.onSample(pressure(1), Now += 20 * Ms), std::nullopt);
  EXPECT_EQ(C.onSample(pressure(1), Now += 20 * Ms), std::nullopt);
  EXPECT_TRUE(C.onSample(pressure(1), Now += 20 * Ms).has_value());
}

TEST(AutoscaleControllerTest, CooldownBlocksBackToBackScales) {
  AutoscaleController C(1, 8, fastTuning());
  uint64_t Now = 1'000 * Ms;
  for (int S = 0; S < 2; ++S)
    EXPECT_EQ(C.onSample(pressure(1), Now += 20 * Ms), std::nullopt);
  ASSERT_TRUE(C.onSample(pressure(1), Now += 20 * Ms).has_value());
  C.onScaleComplete(2, Now);

  // Pressure continues, but the 100ms cooldown has not elapsed.
  for (int S = 0; S < 4; ++S)
    EXPECT_EQ(C.onSample(pressure(2), Now += 20 * Ms), std::nullopt);
  EXPECT_GT(C.cooldownBlocked(), 0u);

  // Past the cooldown the streak can fire again.
  Now += 100 * Ms;
  std::optional<unsigned> Target;
  for (int S = 0; S < 3 && !Target; ++S)
    Target = C.onSample(pressure(2), Now += 20 * Ms);
  ASSERT_TRUE(Target.has_value());
  EXPECT_EQ(*Target, 4u);
}

TEST(AutoscaleControllerTest, ScaleDownHalvesOnIdleAndClampsAtMin) {
  AutoscaleController C(2, 8, fastTuning());
  uint64_t Now = 1'000 * Ms;
  C.onScaleComplete(8, Now); // Pretend the fleet is at max.
  Now += 200 * Ms;           // Clear the cooldown.
  std::optional<unsigned> Target;
  for (int S = 0; S < 3 && !Target; ++S)
    Target = C.onSample(idle(8), Now += 20 * Ms);
  ASSERT_TRUE(Target.has_value());
  EXPECT_EQ(*Target, 4u); // Down halves.
  C.onScaleComplete(4, Now);
  EXPECT_EQ(C.scaleDowns(), 1u);

  // Halving runs out at the floor.
  C.onScaleComplete(2, Now += 200 * Ms);
  Now += 200 * Ms;
  for (int S = 0; S < 6; ++S)
    EXPECT_EQ(C.onSample(idle(2), Now += 20 * Ms), std::nullopt)
        << "scaled below MinWorkers";
}

TEST(AutoscaleControllerTest, ScaleUpClampsAtMax) {
  AutoscaleController C(1, 3, fastTuning());
  uint64_t Now = 1'000 * Ms;
  C.onScaleComplete(2, Now);
  Now += 200 * Ms;
  std::optional<unsigned> Target;
  for (int S = 0; S < 3 && !Target; ++S)
    Target = C.onSample(pressure(2), Now += 20 * Ms);
  ASSERT_TRUE(Target.has_value());
  EXPECT_EQ(*Target, 3u); // Doubling 2 clamps to Max = 3.
  C.onScaleComplete(3, Now);
  Now += 200 * Ms;
  for (int S = 0; S < 6; ++S)
    EXPECT_EQ(C.onSample(pressure(3), Now += 20 * Ms), std::nullopt)
        << "scaled above MaxWorkers";
}

/// End to end: a loaded autoscaling fleet grows from its floor, then
/// shrinks back once the load drains.
TEST(AutoscaleIntegrationTest, FleetGrowsUnderLoadAndShrinksWhenIdle) {
  BatchConfig Config = smallFleet(4, 64);
  Config.Autoscale = true;
  Config.MinWorkers = 1;
  Config.MaxWorkers = 4;
  Config.AutoTuning.SampleIntervalMs = 5;
  Config.AutoTuning.CooldownMs = 20;
  Config.AutoTuning.HysteresisSamples = 2;
  BatchService Service(Config);
  EXPECT_EQ(Service.workerTarget(), 1u); // Starts at the floor.

  for (int J = 0; J < 12; ++J)
    ASSERT_EQ(Service.trySubmit(spinSpec(0.15)).Status,
              AdmitStatus::Accepted);

  auto Start = std::chrono::steady_clock::now();
  while (Service.workerTarget() <= 1 && secondsSince(Start) < 5.0)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_GT(Service.workerTarget(), 1u) << "never scaled up under load";

  Service.drain();
  Start = std::chrono::steady_clock::now();
  while (Service.workerTarget() > 1 && secondsSince(Start) < 5.0)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(Service.workerTarget(), 1u) << "never scaled back down idle";
}

/// Regression for the autoscale/snapshot interaction: trim() (the
/// scale-down path) must spare parked clones whose donor snapshot an
/// open session still references — they are the warm fan-out capacity
/// the session is about to use — and reap them once the reference is
/// gone.
TEST(MachinePoolTest, TrimSparesSessionReferencedCloneBuckets) {
  SessionService Service({smallFleet(2, 16)});
  auto Sess = Service.createSession();
  ASSERT_TRUE(bool(Sess));
  auto SnapOrErr = (*Sess)->captureSnapshot("img", quickSpec("donor"));
  ASSERT_TRUE(bool(SnapOrErr)) << SnapOrErr.error().render();
  // Move, don't copy: the ErrorOr wrapper must not keep a hidden
  // reference alive for the release-everything phase below.
  std::shared_ptr<const MachineSnapshot> Snap = std::move(*SnapOrErr);

  JobSpec CloneSpec = quickSpec("clone");
  CloneSpec.Source = JobSource::snapshotRef(Snap);
  CloneSpec.Machine = Snap->Config;
  for (int J = 0; J < 4; ++J)
    ASSERT_EQ((*Sess)->submit(CloneSpec).Status, AdmitStatus::Accepted);
  Service.drain();

  MachinePool &Pool = Service.fleet().pool();
  MachinePool::Stats Before = Pool.stats();
  ASSERT_GT(Before.Idle, 0u);

  // The session (and this test) still hold the snapshot: trim to zero
  // must leave its clone bucket alone.
  Pool.trim(0);
  MachinePool::Stats After = Pool.stats();
  EXPECT_GE(After.TrimSkippedBuckets, 1u);
  EXPECT_GT(After.Idle, 0u) << "trim destroyed referenced clones";

  // The spared clones are warm: the next fan-out pops them instead of
  // cold-restoring.
  for (int J = 0; J < 2; ++J)
    ASSERT_EQ((*Sess)->submit(CloneSpec).Status, AdmitStatus::Accepted);
  Service.drain();
  EXPECT_GT(Pool.stats().SnapshotReused, Before.SnapshotReused);

  // Drop every reference (the session's copy goes with close()); now
  // the clones are reclaimable.
  CloneSpec.Source = JobSource();
  Snap.reset();
  (*Sess)->close();
  uint64_t SkippedBefore = Pool.stats().TrimSkippedBuckets;
  Pool.trim(0);
  MachinePool::Stats Final = Pool.stats();
  EXPECT_EQ(Final.Idle, 0u);
  EXPECT_EQ(Final.TrimSkippedBuckets, SkippedBefore);
  EXPECT_GT(Final.Trimmed, After.Trimmed);
}
