//===- tests/GrvRoundTripTest.cpp - exhaustive GRV asm/disasm round-trip -------===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Exhaustive Assembler <-> Disassembler round-trip over the FULL GRV
/// opcode table. AssemblerTest.cpp covers random sampling; this file
/// guarantees every opcode is exercised deterministically, including the
/// branch and SYS forms the random property skips, so adding an opcode
/// without teaching both the assembler and the disassembler about it
/// fails here rather than at a distant use site.
///
//===----------------------------------------------------------------------===//

#include "guest/Assembler.h"
#include "guest/Disassembler.h"
#include "guest/Encoding.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

using namespace llsc;
using namespace llsc::guest;

namespace {

uint32_t wordAt(const Program &P, uint64_t Addr) {
  uint32_t Word = 0;
  for (unsigned B = 0; B < 4; ++B)
    Word |= static_cast<uint32_t>(P.image()[Addr - P.baseAddr() + B])
            << (B * 8);
  return Word;
}

/// A canonical, encodable instance of \p Op with distinctive operands,
/// with fields the encoding does not carry normalized to zero (mirrors
/// the encoder's documented behavior).
Inst canonicalInst(Opcode Op) {
  const OpcodeInfo &Info = getOpcodeInfo(Op);
  Inst I;
  I.Op = Op;
  I.Rd = 1;
  I.Rs1 = 2;
  I.Rs2 = 3;
  switch (Info.Form) {
  case Format::R:
    break;
  case Format::I:
    I.Rs2 = 0;
    I.Imm = -5; // In range for every I-format immediate field.
    break;
  case Format::W:
    I.Rs1 = I.Rs2 = 0;
    I.Hw = 2;
    I.Imm = 0xbeef;
    break;
  case Format::B:
    I.Rd = 0; // B-format carries no rd.
    I.Imm = -3; // Words, not bytes.
    break;
  case Format::J:
    I.Rd = I.Rs1 = I.Rs2 = 0;
    I.Imm = 7;
    break;
  }
  // Operand-less / partially-operanded opcodes: the textual form cannot
  // name the unused registers, so canonicalize them to the zeros the
  // assembler emits.
  switch (Op) {
  case Opcode::NOP:
  case Opcode::HALT:
  case Opcode::YIELD:
  case Opcode::DMB:
  case Opcode::CLREX:
    I.Rd = I.Rs1 = I.Rs2 = 0;
    break;
  case Opcode::TID:
    I.Rs1 = I.Rs2 = 0;
    break;
  case Opcode::BR:
    I.Rd = I.Rs2 = 0;
    break;
  case Opcode::LDXRW:
  case Opcode::LDXRD:
    I.Rs2 = 0;
    break;
  case Opcode::CBZ:
  case Opcode::CBNZ:
    I.Rs2 = 0;
    break;
  case Opcode::SYS:
    I.Imm = 1; // PrintReg: a valid selector.
    break;
  default:
    break;
  }
  return I;
}

} // namespace

/// Binary round-trip: encode(decode(encode(inst))) is lossless for a
/// canonical instance of EVERY opcode in the table.
TEST(GrvRoundTrip, EncodeDecodeFullTable) {
  for (unsigned OpIdx = 0;
       OpIdx < static_cast<unsigned>(Opcode::NumOpcodes); ++OpIdx) {
    Inst I = canonicalInst(static_cast<Opcode>(OpIdx));
    auto WordOrErr = encode(I);
    ASSERT_TRUE(bool(WordOrErr))
        << getOpcodeInfo(I.Op).Mnemonic << ": " << WordOrErr.error().render();
    auto BackOrErr = decode(*WordOrErr);
    ASSERT_TRUE(bool(BackOrErr)) << getOpcodeInfo(I.Op).Mnemonic;
    EXPECT_EQ(*BackOrErr, I) << disassemble(I);
  }
}

/// The mnemonic table is a bijection: every opcode's mnemonic is unique
/// and parses back to the same opcode (case-insensitively).
TEST(GrvRoundTrip, MnemonicTableBijective) {
  std::set<std::string> Seen;
  for (unsigned OpIdx = 0;
       OpIdx < static_cast<unsigned>(Opcode::NumOpcodes); ++OpIdx) {
    auto Op = static_cast<Opcode>(OpIdx);
    std::string Mn = getOpcodeInfo(Op).Mnemonic;
    EXPECT_TRUE(Seen.insert(Mn).second) << "duplicate mnemonic " << Mn;
    auto Parsed = parseOpcode(Mn);
    ASSERT_TRUE(Parsed.has_value()) << Mn;
    EXPECT_EQ(*Parsed, Op) << Mn;
    // Case-insensitivity, as the assembler promises.
    for (char &C : Mn)
      C = static_cast<char>(toupper(C));
    Parsed = parseOpcode(Mn);
    ASSERT_TRUE(Parsed.has_value()) << Mn;
    EXPECT_EQ(*Parsed, Op) << Mn;
  }
}

/// Textual round-trip: assemble(disassemble(inst)) == inst for every
/// non-control-flow opcode (branch targets must be labels in assembler
/// syntax and SYS selectors have mnemonic aliases, so those two classes
/// go through the label-based test below instead).
TEST(GrvRoundTrip, TextualRoundTripFullTable) {
  for (unsigned OpIdx = 0;
       OpIdx < static_cast<unsigned>(Opcode::NumOpcodes); ++OpIdx) {
    auto Op = static_cast<Opcode>(OpIdx);
    if (getOpcodeInfo(Op).IsBranch || Op == Opcode::SYS)
      continue;
    Inst I = canonicalInst(Op);
    std::string Text = "_start: " + disassemble(I) + "\n";
    auto ProgOrErr = assemble(Text);
    ASSERT_TRUE(bool(ProgOrErr))
        << Text << " -> " << ProgOrErr.error().render();
    auto BackOrErr = decode(wordAt(*ProgOrErr, ProgOrErr->baseAddr()));
    ASSERT_TRUE(bool(BackOrErr)) << Text;
    EXPECT_EQ(*BackOrErr, I) << Text;
  }
}

/// Branch opcodes round-trip through labels: assemble a backward branch
/// over every branch opcode, check the encoded word decodes to the right
/// displacement, and that the disassembler renders the same absolute
/// target the label resolved to.
TEST(GrvRoundTrip, BranchOpcodesThroughLabels) {
  for (unsigned OpIdx = 0;
       OpIdx < static_cast<unsigned>(Opcode::NumOpcodes); ++OpIdx) {
    auto Op = static_cast<Opcode>(OpIdx);
    const OpcodeInfo &Info = getOpcodeInfo(Op);
    if (!Info.IsBranch || Info.Form == Format::R) // BR takes a register.
      continue;

    std::string Line;
    switch (Info.Form) {
    case Format::B:
      if (Op == Opcode::CBZ || Op == Opcode::CBNZ)
        Line = std::string(Info.Mnemonic) + " r1, target";
      else
        Line = std::string(Info.Mnemonic) + " r1, r2, target";
      break;
    case Format::J:
      Line = std::string(Info.Mnemonic) + " target";
      break;
    default:
      continue;
    }

    // target sits one instruction BEFORE the branch: displacement -1.
    auto ProgOrErr = assemble("target: nop\n" + Line + "\n");
    ASSERT_TRUE(bool(ProgOrErr))
        << Line << " -> " << ProgOrErr.error().render();
    const uint64_t BranchPc = ProgOrErr->baseAddr() + InstBytes;
    auto InstOrErr = decode(wordAt(*ProgOrErr, BranchPc));
    ASSERT_TRUE(bool(InstOrErr)) << Line;
    EXPECT_EQ(InstOrErr->Op, Op);
    EXPECT_EQ(InstOrErr->Imm, -1) << Line;

    // The disassembler must render the label's absolute address back.
    std::string Rendered = disassemble(*InstOrErr, BranchPc);
    char Target[32];
    snprintf(Target, sizeof(Target), "0x%llx",
             static_cast<unsigned long long>(ProgOrErr->baseAddr()));
    EXPECT_NE(Rendered.find(Target), std::string::npos)
        << Rendered << " should reference " << Target;
  }
}
