//===- tests/PstRemapStressTest.cpp - PST-REMAP concurrency stress ---------------===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// PST-REMAP is the scheme with the trickiest concurrency: SC remaps the
/// page away mid-flight while other threads' plain loads AND stores fault
/// and must wait on the page lock. These tests hammer exactly those
/// windows: readers and writers racing against a thread doing back-to-back
/// LL/SC on the same page, with full data-integrity checks.
///
//===----------------------------------------------------------------------===//

#include "core/Machine.h"

#include <gtest/gtest.h>

using namespace llsc;

namespace {

std::unique_ptr<Machine> makeMachine(unsigned Threads) {
  MachineConfig Config;
  Config.Scheme = SchemeKind::PstRemap;
  Config.NumThreads = Threads;
  Config.MemBytes = 16ULL << 20;
  Config.MaxBlocksPerCpu = 200'000'000;
  auto MachineOrErr = Machine::create(Config);
  EXPECT_TRUE(bool(MachineOrErr)) << MachineOrErr.error().render();
  return MachineOrErr.take();
}

} // namespace

/// Thread 0 performs LL/SC increments on a word; the other threads read a
/// *different* word on the same page (their loads fault whenever the page
/// is remapped away) and copy it to private slots. Every observed value
/// must be one of the two values ever stored there.
TEST(PstRemapStress, ReadersSurviveRemapWindows) {
  constexpr unsigned Threads = 4;
  auto M = makeMachine(Threads);
  ASSERT_TRUE(bool(M->loadAssembly(R"(
_start: tid     r7
        la      r10, hot_page
        cbnz    r7, reader

; thread 0: LL/SC increments + flip the witness word between 2 values
        li      r4, #3000
writer: cbz     r4, done
retry:  ldxr.w  r2, [r10]
        addi    r2, r2, #1
        stxr.w  r3, r2, [r10]
        cbnz    r3, retry
        andi    r2, r4, #1
        movz    r3, #0xaaaa
        cbz     r2, flip_b
        stw     r3, [r10, #64]      ; witness = 0xaaaa
        b       next
flip_b: movz    r3, #0xbbbb
        stw     r3, [r10, #64]      ; witness = 0xbbbb
next:   addi    r4, r4, #-1
        b       writer

reader: li      r4, #3000
        movz    r6, #0              ; bad observation counter
rloop:  cbz     r4, emit
        ldw     r2, [r10, #64]      ; may fault against a remap window
        movz    r3, #0xaaaa
        beq     r2, r3, rok
        movz    r3, #0xbbbb
        beq     r2, r3, rok
        cbz     r2, rok             ; initial zero
        addi    r6, r6, #1          ; torn/invalid value!
rok:    addi    r4, r4, #-1
        b       rloop
emit:   la      r2, bad
        lsli    r3, r7, #3
        add     r2, r2, r3
        std     r6, [r2]
done:   halt

        .align  4096
hot_page:
        .word   0                   ; LL/SC target
        .space  60
        .word   0                   ; witness at +64
        .align  4096
bad:    .space  64
)")));
  auto Result = M->run({});
  ASSERT_TRUE(bool(Result)) << Result.error().render();
  ASSERT_TRUE(Result->AllHalted);

  uint64_t Hot = M->program().requiredSymbol("hot_page");
  EXPECT_EQ(M->mem().shadowLoad(Hot, 4), 3000u);
  uint64_t Bad = M->program().requiredSymbol("bad");
  for (unsigned Tid = 1; Tid < Threads; ++Tid)
    EXPECT_EQ(M->mem().shadowLoad(Bad + Tid * 8, 8), 0u)
        << "reader " << Tid << " observed invalid values";
  // PST-REMAP must not have used any stop-the-world section.
  EXPECT_EQ(Result->ExclusiveSections, 0u);
}

/// All threads do LL/SC increments on words of the SAME page (different
/// words): heavy remap contention, exact total required.
TEST(PstRemapStress, ConcurrentScOnSamePage) {
  constexpr unsigned Threads = 4;
  constexpr unsigned Iters = 1500;
  auto M = makeMachine(Threads);
  ASSERT_TRUE(bool(M->loadAssembly(R"(
_start: tid     r7
        la      r10, hot_page
        lsli    r1, r7, #6          ; 64-byte stride per thread
        add     r10, r10, r1
        li      r4, #1500
loop:   cbz     r4, done
retry:  ldxr.w  r2, [r10]
        addi    r2, r2, #1
        stxr.w  r3, r2, [r10]
        cbnz    r3, retry
        addi    r4, r4, #-1
        b       loop
done:   halt
        .align  4096
hot_page:
        .space  4096
)")));
  auto Result = M->run({});
  ASSERT_TRUE(bool(Result)) << Result.error().render();
  ASSERT_TRUE(Result->AllHalted);
  uint64_t Hot = M->program().requiredSymbol("hot_page");
  for (unsigned Tid = 0; Tid < Threads; ++Tid)
    EXPECT_EQ(M->mem().shadowLoad(Hot + Tid * 64, 4), Iters)
        << "thread " << Tid;
}

/// Writers storing plain data race the SC remaps; no update may be lost
/// (each thread owns distinct addresses, so any loss is a scheme bug).
TEST(PstRemapStress, PlainWritersRaceScRemaps) {
  constexpr unsigned Threads = 4;
  auto M = makeMachine(Threads);
  ASSERT_TRUE(bool(M->loadAssembly(R"(
_start: tid     r7
        la      r10, hot_page
        cbnz    r7, writer

; thread 0: hammer LL/SC on the page head
        li      r4, #2500
sc:     cbz     r4, done
retry:  ldxr.w  r2, [r10]
        addi    r2, r2, #1
        stxr.w  r3, r2, [r10]
        cbnz    r3, retry
        addi    r4, r4, #-1
        b       sc

; others: plain stores to private words of the hot page
writer: lsli    r1, r7, #7          ; 128-byte stride
        add     r10, r10, r1
        li      r4, #2500
wloop:  cbz     r4, done
        stw     r4, [r10, #4]       ; plain store; faults while remapped
        ldw     r2, [r10, #4]
        bne     r2, r4, corrupt
        addi    r4, r4, #-1
        b       wloop
corrupt:
        movz    r5, #1
        la      r2, corrupted
        stw     r5, [r2]
done:   halt
        .align  4096
hot_page:
        .space  4096
        .align  64
corrupted:
        .word 0
)")));
  auto Result = M->run({});
  ASSERT_TRUE(bool(Result)) << Result.error().render();
  ASSERT_TRUE(Result->AllHalted);
  uint64_t Hot = M->program().requiredSymbol("hot_page");
  EXPECT_EQ(M->mem().shadowLoad(Hot, 4), 2500u);
  EXPECT_EQ(
      M->mem().shadowLoad(M->program().requiredSymbol("corrupted"), 4), 0u)
      << "a plain writer lost an update across a remap window";
  // The writers' last store is value 1 (countdown reached 1).
  for (unsigned Tid = 1; Tid < Threads; ++Tid)
    EXPECT_EQ(M->mem().shadowLoad(Hot + Tid * 128 + 4, 4), 1u);
}

/// Regression: an SC on a *different page* than the armed monitor used to
/// release the stale monitor with AdjustProtection=false, stranding the
/// old page read-only forever — every later plain store to it would take
/// the SIGSEGV slow path. After the fix the stale monitor is released
/// with normal protection handling, so the trailing store must not fault.
TEST(PstRemapStress, ScOnOtherPageRestoresStaleMonitorPage) {
  for (SchemeKind Kind : {SchemeKind::Pst, SchemeKind::PstRemap}) {
    MachineConfig Config;
    Config.Scheme = Kind;
    Config.NumThreads = 1;
    Config.MemBytes = 16ULL << 20;
    auto M = Machine::create(Config).take();
    ASSERT_TRUE(bool(M->loadAssembly(R"(
_start: la      r10, var_a
        ldxr.w  r1, [r10]       ; arm a monitor on page A (A goes RO)
        la      r11, var_b
        li      r12, #7
        stxr.w  r2, r12, [r11]  ; SC on page B: fails, must restore A
        li      r12, #9
        stw     r12, [r10]      ; plain store to A: must not fault
        halt
        .align  4096
var_a:  .word   0
        .align  4096
var_b:  .word   0
)"))) << schemeTraits(Kind).Name;
    auto Result = M->run({});
    ASSERT_TRUE(bool(Result))
        << schemeTraits(Kind).Name << ": " << Result.error().render();
    ASSERT_TRUE(Result->AllHalted) << schemeTraits(Kind).Name;

    EXPECT_NE(M->cpu(0).Regs[2], 0u)
        << schemeTraits(Kind).Name << ": cross-page SC must fail";
    EXPECT_EQ(M->mem().shadowLoad(M->program().requiredSymbol("var_a"), 4),
              9u)
        << schemeTraits(Kind).Name;
    // The store must have gone down the fast path: page A's protection
    // was restored when the stale monitor was released.
    EXPECT_EQ(Result->Total.PageFaultsRecovered, 0u)
        << schemeTraits(Kind).Name
        << ": stale monitor left its page read-only";
    EXPECT_EQ(Result->Total.FalseSharingFaults, 0u)
        << schemeTraits(Kind).Name;
  }
}
