//===- tests/SchemeEquivalenceTest.cpp - schemes agree on program results --------===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Property: for single-threaded programs (no contention), every scheme —
/// including the incorrect ones — must produce identical architectural
/// results; the schemes differ only in how they *detect conflicts*, never
/// in uncontended semantics. Also: multi-threaded programs whose shared
/// state is only touched through LL/SC retry loops must produce identical
/// final shared state under every correct scheme.
///
//===----------------------------------------------------------------------===//

#include "core/Machine.h"
#include "support/Random.h"
#include "support/StringUtils.h"
#include "workloads/Litmus.h"

#include <array>
#include <gtest/gtest.h>

using namespace llsc;

namespace {

std::string randomSingleThreadProgram(Rng &R) {
  // A small program mixing ALU work, memory traffic, and LL/SC pairs.
  std::string Asm = "_start:\n        la r10, scratch\n";
  unsigned Ops = 40 + static_cast<unsigned>(R.nextBelow(40));
  for (unsigned N = 0; N < Ops; ++N) {
    switch (R.nextBelow(6)) {
    case 0:
      Asm += formatString("        addi r%u, r%u, #%lld\n",
                          1 + (unsigned)R.nextBelow(8),
                          1 + (unsigned)R.nextBelow(8),
                          (long long)R.nextInRange(0, 200) - 100);
      break;
    case 1:
      Asm += formatString("        mul r%u, r%u, r%u\n",
                          1 + (unsigned)R.nextBelow(8),
                          1 + (unsigned)R.nextBelow(8),
                          1 + (unsigned)R.nextBelow(8));
      break;
    case 2:
      Asm += formatString("        std r%u, [r10, #%u]\n",
                          1 + (unsigned)R.nextBelow(8),
                          8 * (unsigned)R.nextBelow(16));
      break;
    case 3:
      Asm += formatString("        ldd r%u, [r10, #%u]\n",
                          1 + (unsigned)R.nextBelow(8),
                          8 * (unsigned)R.nextBelow(16));
      break;
    case 4:
      Asm += formatString("        eori r%u, r%u, #%llu\n",
                          1 + (unsigned)R.nextBelow(8),
                          1 + (unsigned)R.nextBelow(8),
                          (unsigned long long)R.nextBelow(8191));
      break;
    case 5: {
      unsigned Val = 1 + (unsigned)R.nextBelow(8);
      Asm += formatString(R"(        ldxr.w  r%u, [r10]
        addi    r%u, r%u, #1
        stxr.w  r9, r%u, [r10]
)",
                          Val, Val, Val, Val);
      break;
    }
    }
  }
  Asm += "        halt\n        .align 4096\nscratch: .space 256\n";
  return Asm;
}

} // namespace

TEST(SchemeEquivalence, SingleThreadedProgramsAgreeAcrossAllSchemes) {
  Rng R(777);
  for (int Trial = 0; Trial < 10; ++Trial) {
    std::string Asm = randomSingleThreadProgram(R);

    std::array<uint64_t, guest::NumGuestRegs> BaselineRegs{};
    std::vector<uint8_t> BaselineScratch;
    bool HaveBaseline = false;

    for (SchemeKind Kind : allSchemeKinds()) {
      MachineConfig Config;
      Config.Scheme = Kind;
      Config.NumThreads = 1;
      Config.MemBytes = 4ULL << 20;
      Config.ForceSoftHtm = true;
      auto M = Machine::create(Config).take();
      ASSERT_TRUE(bool(M->loadAssembly(Asm)));
      auto Result = M->run({});
      ASSERT_TRUE(bool(Result))
          << schemeTraits(Kind).Name << ": " << Result.error().render();
      ASSERT_TRUE(Result->AllHalted) << schemeTraits(Kind).Name;

      std::array<uint64_t, guest::NumGuestRegs> Regs;
      std::copy_n(std::begin(M->cpu(0).Regs), guest::NumGuestRegs,
                  Regs.begin());
      uint64_t Scratch = M->program().requiredSymbol("scratch");
      std::vector<uint8_t> Data(256);
      for (unsigned B = 0; B < 256; ++B)
        Data[B] = static_cast<uint8_t>(M->mem().shadowLoad(Scratch + B, 1));

      if (!HaveBaseline) {
        BaselineRegs = Regs;
        BaselineScratch = Data;
        HaveBaseline = true;
        continue;
      }
      EXPECT_EQ(Regs, BaselineRegs)
          << "trial " << Trial << ": " << schemeTraits(Kind).Name
          << " diverges from pico-cas on an uncontended program";
      EXPECT_EQ(Data, BaselineScratch)
          << "trial " << Trial << ": " << schemeTraits(Kind).Name;
    }
  }
}

// The headline multi-granule shape, pinned deterministically: an 8-byte
// LL/SC spans two 4-byte granules, and a 4-byte plain store lands in the
// *second* one. Every strong scheme must fail the SC; before the
// multi-granule fix the HST family only tagged/checked the first granule
// and let it succeed. Two placements: window-aligned (granules 0-1,
// store in 1) and straddle-at-4 (granules 1-2, store in 2).
TEST(SchemeEquivalence, WideScMustSeeNarrowStoreInSecondGranule) {
  struct Shape {
    unsigned LlOffset;    ///< 8-byte LL/SC offset.
    unsigned StoreOffset; ///< 4-byte interfering store offset.
  };
  constexpr Shape Shapes[] = {{0, 4}, {4, 8}};

  for (SchemeKind Kind : allSchemeKinds()) {
    if (schemeTraits(Kind).Atomicity != AtomicityClass::Strong)
      continue;
    MachineConfig Config;
    Config.Scheme = Kind;
    Config.NumThreads = 2;
    Config.MemBytes = 8ULL << 20;
    Config.ForceSoftHtm = true;
    auto M = Machine::create(Config).take();
    auto DriverOrErr = workloads::LitmusDriver::create(*M);
    ASSERT_TRUE(bool(DriverOrErr)) << DriverOrErr.error().render();
    workloads::LitmusDriver &Driver = *DriverOrErr;

    for (const Shape &S : Shapes) {
      Driver.resetVar(0);
      Driver.loadLinkAt(0, S.LlOffset, 8);
      Driver.plainStoreAt(1, 0xAB, S.StoreOffset, 4);
      bool ScOk = Driver.storeCondAt(0, 0x1122334455667788ULL, S.LlOffset, 8);
      EXPECT_FALSE(ScOk)
          << schemeTraits(Kind).Name << ": 8-byte SC at offset "
          << S.LlOffset << " ignored a 4-byte store at offset "
          << S.StoreOffset;
      // The interfering store, and only it, must be visible.
      EXPECT_EQ(Driver.varValueAt(S.StoreOffset, 4), 0xABu)
          << schemeTraits(Kind).Name;
      EXPECT_EQ(Driver.varValueAt(S.LlOffset, 4), 0u)
          << schemeTraits(Kind).Name;
    }
  }
}

TEST(SchemeEquivalence, ContendedCounterAgreesAcrossCorrectSchemes) {
  // Multi-threaded LL/SC counter: exact final value under every
  // weak-or-stronger scheme (and PICO-CAS, for which a counter is safe).
  constexpr unsigned Threads = 6;
  constexpr unsigned Iters = 400;
  for (SchemeKind Kind : allSchemeKinds()) {
    MachineConfig Config;
    Config.Scheme = Kind;
    Config.NumThreads = Threads;
    Config.MemBytes = 8ULL << 20;
    Config.ForceSoftHtm = true;
    Config.MaxBlocksPerCpu = 100'000'000;
    auto M = Machine::create(Config).take();
    ASSERT_TRUE(bool(M->loadAssembly(R"(
_start: la      r1, counter
        li      r4, #400
loop:   cbz     r4, done
retry:  ldxr.d  r2, [r1]
        addi    r2, r2, #1
        stxr.d  r3, r2, [r1]
        cbnz    r3, retry
        addi    r4, r4, #-1
        b       loop
done:   halt
        .align 4096
counter: .quad 0
)")));
    auto Result = M->run({});
    ASSERT_TRUE(bool(Result))
        << schemeTraits(Kind).Name << ": " << Result.error().render();
    EXPECT_TRUE(Result->AllHalted) << schemeTraits(Kind).Name;
    EXPECT_EQ(M->mem().shadowLoad(M->program().requiredSymbol("counter"), 8),
              static_cast<uint64_t>(Threads) * Iters)
        << schemeTraits(Kind).Name;
  }
}
