//===- tests/CrossCheckTest.cpp - differential testing vs a reference ISS --------===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Property-based differential testing: random guest programs are run
/// both through the full pipeline (translator -> IR optimizer -> engine)
/// and through an *independent* instruction-set simulator implemented
/// directly over decoded instructions. Final register files and the
/// guest data region must match bit-for-bit.
///
/// Programs use ALU ops, wide moves, loads/stores into a scratch region,
/// forward-only conditional branches (guaranteed termination), and
/// uncontended LL/SC pairs.
///
//===----------------------------------------------------------------------===//

#include "core/Machine.h"
#include "guest/Assembler.h"
#include "guest/Disassembler.h"
#include "guest/Encoding.h"

#include "support/Random.h"

#include <array>
#include <gtest/gtest.h>

using namespace llsc;
using namespace llsc::guest;

namespace {

constexpr uint64_t ScratchBase = 0x10000; // Data region for memory ops.
constexpr uint64_t ScratchSize = 0x1000;

/// A minimal reference ISS over decoded instructions. Written directly
/// against the ISA definition in guest/Isa.h (not via the IR layer), so
/// translator/optimizer/engine bugs cannot cancel out.
struct ReferenceIss {
  std::array<uint64_t, NumGuestRegs> Regs{};
  std::vector<uint8_t> Memory;
  uint64_t Pc = 0;
  bool Halted = false;
  // Uncontended monitor (single-threaded reference).
  bool MonitorValid = false;
  uint64_t MonitorAddr = 0;

  explicit ReferenceIss(uint64_t MemSize) : Memory(MemSize, 0) {}

  uint64_t load(uint64_t Addr, unsigned Bytes) const {
    uint64_t Value = 0;
    for (unsigned B = 0; B < Bytes; ++B)
      Value |= static_cast<uint64_t>(Memory[Addr + B]) << (8 * B);
    return Value;
  }
  void store(uint64_t Addr, uint64_t Value, unsigned Bytes) {
    for (unsigned B = 0; B < Bytes; ++B)
      Memory[Addr + B] = static_cast<uint8_t>(Value >> (8 * B));
  }

  void step() {
    uint32_t Word = static_cast<uint32_t>(load(Pc, 4));
    auto InstOrErr = decode(Word);
    ASSERT_TRUE(bool(InstOrErr)) << "reference decode failed";
    const Inst I = *InstOrErr;
    uint64_t Next = Pc + 4;
    auto S = [&](unsigned R) -> int64_t {
      return static_cast<int64_t>(Regs[R]);
    };

    switch (I.Op) {
    case Opcode::ADD:
      Regs[I.Rd] = Regs[I.Rs1] + Regs[I.Rs2];
      break;
    case Opcode::SUB:
      Regs[I.Rd] = Regs[I.Rs1] - Regs[I.Rs2];
      break;
    case Opcode::MUL:
      Regs[I.Rd] = Regs[I.Rs1] * Regs[I.Rs2];
      break;
    case Opcode::UDIV:
      Regs[I.Rd] = Regs[I.Rs2] ? Regs[I.Rs1] / Regs[I.Rs2] : 0;
      break;
    case Opcode::SDIV:
      Regs[I.Rd] = (Regs[I.Rs2] == 0 ||
                    (S(I.Rs1) == INT64_MIN && S(I.Rs2) == -1))
                       ? 0
                       : static_cast<uint64_t>(S(I.Rs1) / S(I.Rs2));
      break;
    case Opcode::UREM:
      Regs[I.Rd] = Regs[I.Rs2] ? Regs[I.Rs1] % Regs[I.Rs2] : 0;
      break;
    case Opcode::SREM:
      Regs[I.Rd] = (Regs[I.Rs2] == 0 ||
                    (S(I.Rs1) == INT64_MIN && S(I.Rs2) == -1))
                       ? 0
                       : static_cast<uint64_t>(S(I.Rs1) % S(I.Rs2));
      break;
    case Opcode::AND:
      Regs[I.Rd] = Regs[I.Rs1] & Regs[I.Rs2];
      break;
    case Opcode::ORR:
      Regs[I.Rd] = Regs[I.Rs1] | Regs[I.Rs2];
      break;
    case Opcode::EOR:
      Regs[I.Rd] = Regs[I.Rs1] ^ Regs[I.Rs2];
      break;
    case Opcode::LSL:
      Regs[I.Rd] = Regs[I.Rs1] << (Regs[I.Rs2] & 63);
      break;
    case Opcode::LSR:
      Regs[I.Rd] = Regs[I.Rs1] >> (Regs[I.Rs2] & 63);
      break;
    case Opcode::ASR:
      Regs[I.Rd] = static_cast<uint64_t>(S(I.Rs1) >> (Regs[I.Rs2] & 63));
      break;
    case Opcode::SLT:
      Regs[I.Rd] = S(I.Rs1) < S(I.Rs2) ? 1 : 0;
      break;
    case Opcode::SLTU:
      Regs[I.Rd] = Regs[I.Rs1] < Regs[I.Rs2] ? 1 : 0;
      break;
    case Opcode::ADDI:
      Regs[I.Rd] = Regs[I.Rs1] + static_cast<uint64_t>(I.Imm);
      break;
    case Opcode::ANDI:
      Regs[I.Rd] = Regs[I.Rs1] & static_cast<uint64_t>(I.Imm);
      break;
    case Opcode::ORRI:
      Regs[I.Rd] = Regs[I.Rs1] | static_cast<uint64_t>(I.Imm);
      break;
    case Opcode::EORI:
      Regs[I.Rd] = Regs[I.Rs1] ^ static_cast<uint64_t>(I.Imm);
      break;
    case Opcode::LSLI:
      Regs[I.Rd] = Regs[I.Rs1] << (I.Imm & 63);
      break;
    case Opcode::LSRI:
      Regs[I.Rd] = Regs[I.Rs1] >> (I.Imm & 63);
      break;
    case Opcode::ASRI:
      Regs[I.Rd] = static_cast<uint64_t>(S(I.Rs1) >> (I.Imm & 63));
      break;
    case Opcode::SLTI:
      Regs[I.Rd] = S(I.Rs1) < I.Imm ? 1 : 0;
      break;
    case Opcode::SLTUI:
      Regs[I.Rd] = Regs[I.Rs1] < static_cast<uint64_t>(I.Imm) ? 1 : 0;
      break;
    case Opcode::MOVZ:
      Regs[I.Rd] = static_cast<uint64_t>(I.Imm) << (I.Hw * 16);
      break;
    case Opcode::MOVK:
      Regs[I.Rd] = (Regs[I.Rd] & ~(0xffffULL << (I.Hw * 16))) |
                   (static_cast<uint64_t>(I.Imm) << (I.Hw * 16));
      break;
    case Opcode::LDB:
      Regs[I.Rd] = load(Regs[I.Rs1] + I.Imm, 1);
      break;
    case Opcode::LDH:
      Regs[I.Rd] = load(Regs[I.Rs1] + I.Imm, 2);
      break;
    case Opcode::LDW:
      Regs[I.Rd] = load(Regs[I.Rs1] + I.Imm, 4);
      break;
    case Opcode::LDD:
      Regs[I.Rd] = load(Regs[I.Rs1] + I.Imm, 8);
      break;
    case Opcode::LDSB:
      Regs[I.Rd] = static_cast<uint64_t>(
          signExtend(load(Regs[I.Rs1] + I.Imm, 1), 8));
      break;
    case Opcode::LDSH:
      Regs[I.Rd] = static_cast<uint64_t>(
          signExtend(load(Regs[I.Rs1] + I.Imm, 2), 16));
      break;
    case Opcode::LDSW:
      Regs[I.Rd] = static_cast<uint64_t>(
          signExtend(load(Regs[I.Rs1] + I.Imm, 4), 32));
      break;
    case Opcode::STB:
      store(Regs[I.Rs1] + I.Imm, Regs[I.Rd], 1);
      break;
    case Opcode::STH:
      store(Regs[I.Rs1] + I.Imm, Regs[I.Rd], 2);
      break;
    case Opcode::STW:
      store(Regs[I.Rs1] + I.Imm, Regs[I.Rd], 4);
      break;
    case Opcode::STD:
      store(Regs[I.Rs1] + I.Imm, Regs[I.Rd], 8);
      break;
    case Opcode::LDXRW:
      Regs[I.Rd] = load(Regs[I.Rs1], 4);
      MonitorValid = true;
      MonitorAddr = Regs[I.Rs1];
      break;
    case Opcode::LDXRD:
      Regs[I.Rd] = load(Regs[I.Rs1], 8);
      MonitorValid = true;
      MonitorAddr = Regs[I.Rs1];
      break;
    case Opcode::STXRW:
      if (MonitorValid && MonitorAddr == Regs[I.Rs1]) {
        store(Regs[I.Rs1], Regs[I.Rs2], 4);
        Regs[I.Rd] = 0;
      } else {
        Regs[I.Rd] = 1;
      }
      MonitorValid = false;
      break;
    case Opcode::STXRD:
      if (MonitorValid && MonitorAddr == Regs[I.Rs1]) {
        store(Regs[I.Rs1], Regs[I.Rs2], 8);
        Regs[I.Rd] = 0;
      } else {
        Regs[I.Rd] = 1;
      }
      MonitorValid = false;
      break;
    case Opcode::CLREX:
      MonitorValid = false;
      break;
    case Opcode::BEQ:
      if (Regs[I.Rs1] == Regs[I.Rs2])
        Next = Pc + I.Imm * 4;
      break;
    case Opcode::BNE:
      if (Regs[I.Rs1] != Regs[I.Rs2])
        Next = Pc + I.Imm * 4;
      break;
    case Opcode::BLT:
      if (S(I.Rs1) < S(I.Rs2))
        Next = Pc + I.Imm * 4;
      break;
    case Opcode::BLTU:
      if (Regs[I.Rs1] < Regs[I.Rs2])
        Next = Pc + I.Imm * 4;
      break;
    case Opcode::BGE:
      if (S(I.Rs1) >= S(I.Rs2))
        Next = Pc + I.Imm * 4;
      break;
    case Opcode::BGEU:
      if (Regs[I.Rs1] >= Regs[I.Rs2])
        Next = Pc + I.Imm * 4;
      break;
    case Opcode::CBZ:
      if (Regs[I.Rs1] == 0)
        Next = Pc + I.Imm * 4;
      break;
    case Opcode::CBNZ:
      if (Regs[I.Rs1] != 0)
        Next = Pc + I.Imm * 4;
      break;
    case Opcode::B:
      Next = Pc + I.Imm * 4;
      break;
    case Opcode::BL:
      Regs[RegLr] = Pc + 4;
      Next = Pc + I.Imm * 4;
      break;
    case Opcode::BR:
      Next = Regs[I.Rs1];
      break;
    case Opcode::NOP:
    case Opcode::YIELD:
    case Opcode::DMB:
      break;
    case Opcode::TID:
      Regs[I.Rd] = 0;
      break;
    case Opcode::HALT:
      Halted = true;
      break;
    case Opcode::SYS:
    case Opcode::NumOpcodes:
      FAIL() << "unexpected opcode in generated program";
    }
    Pc = Next;
  }
};

/// Generates a random terminating program: straight-line ops with
/// forward-only branches, ending in HALT.
std::vector<Inst> generateProgram(Rng &R, unsigned Length) {
  std::vector<Inst> Program;
  // Prologue: point r10 at the scratch region, keep r11 as a mask helper.
  for (const Inst &I : expandLoadImmediate(10, ScratchBase))
    Program.push_back(I);

  const Opcode AluR[] = {Opcode::ADD,  Opcode::SUB,  Opcode::MUL,
                         Opcode::UDIV, Opcode::SDIV, Opcode::UREM,
                         Opcode::SREM, Opcode::AND,  Opcode::ORR,
                         Opcode::EOR,  Opcode::LSL,  Opcode::LSR,
                         Opcode::ASR,  Opcode::SLT,  Opcode::SLTU};
  const Opcode AluI[] = {Opcode::ADDI, Opcode::ANDI, Opcode::ORRI,
                         Opcode::EORI, Opcode::LSLI, Opcode::LSRI,
                         Opcode::ASRI, Opcode::SLTI, Opcode::SLTUI};
  const Opcode Loads[] = {Opcode::LDB,  Opcode::LDH,  Opcode::LDW,
                          Opcode::LDD,  Opcode::LDSB, Opcode::LDSH,
                          Opcode::LDSW};
  const Opcode Stores[] = {Opcode::STB, Opcode::STH, Opcode::STW,
                           Opcode::STD};
  const Opcode Branches[] = {Opcode::BEQ, Opcode::BNE,  Opcode::BLT,
                             Opcode::BLTU, Opcode::BGE, Opcode::BGEU,
                             Opcode::CBZ, Opcode::CBNZ};

  // Registers r1..r9 are playground; r10 is the scratch base (preserved),
  // r12..r15 also playground.
  auto RandReg = [&]() -> uint8_t {
    static const uint8_t Pool[] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 12, 15};
    return Pool[R.nextBelow(std::size(Pool))];
  };

  for (unsigned N = 0; N < Length; ++N) {
    Inst I;
    switch (R.nextBelow(10)) {
    case 0:
    case 1:
    case 2: // Reg-reg ALU.
      I.Op = AluR[R.nextBelow(std::size(AluR))];
      I.Rd = RandReg();
      I.Rs1 = RandReg();
      I.Rs2 = RandReg();
      break;
    case 3:
    case 4: // Reg-imm ALU.
      I.Op = AluI[R.nextBelow(std::size(AluI))];
      I.Rd = RandReg();
      I.Rs1 = RandReg();
      I.Imm = static_cast<int64_t>(R.nextInRange(0, 16383)) - 8192;
      break;
    case 5: // Wide move.
      I.Op = R.nextBool(0.5) ? Opcode::MOVZ : Opcode::MOVK;
      I.Rd = RandReg();
      I.Hw = static_cast<uint8_t>(R.nextBelow(4));
      I.Imm = static_cast<int64_t>(R.nextBelow(0x10000));
      break;
    case 6: { // Load from scratch (aligned, in range).
      I.Op = Loads[R.nextBelow(std::size(Loads))];
      I.Rd = RandReg();
      I.Rs1 = 10;
      unsigned Bytes = memAccessBytes(I.Op);
      I.Imm = static_cast<int64_t>(
          alignDown(R.nextBelow(ScratchSize - 8), Bytes));
      break;
    }
    case 7: { // Store to scratch.
      I.Op = Stores[R.nextBelow(std::size(Stores))];
      I.Rd = RandReg();
      I.Rs1 = 10;
      unsigned Bytes = memAccessBytes(I.Op);
      I.Imm = static_cast<int64_t>(
          alignDown(R.nextBelow(ScratchSize - 8), Bytes));
      break;
    }
    case 8: { // Uncontended LL/SC pair on a scratch word.
      Inst Ll;
      Ll.Op = R.nextBool(0.5) ? Opcode::LDXRW : Opcode::LDXRD;
      Ll.Rd = RandReg();
      Ll.Rs1 = 10; // Base is ScratchBase (8-aligned).
      Program.push_back(Ll);
      I.Op = Ll.Op == Opcode::LDXRW ? Opcode::STXRW : Opcode::STXRD;
      I.Rd = RandReg();
      I.Rs2 = RandReg();
      I.Rs1 = 10;
      if (I.Rd == I.Rs1) // Status must not clobber the base.
        I.Rd = 1;
      break;
    }
    case 9: { // Forward-only conditional branch (skip 1..4 insts).
      I.Op = Branches[R.nextBelow(std::size(Branches))];
      I.Rs1 = RandReg();
      I.Rs2 = RandReg();
      I.Imm = static_cast<int64_t>(R.nextInRange(2, 5)); // Forward.
      break;
    }
    }
    // Never clobber the scratch base register.
    if (getOpcodeInfo(I.Op).WritesRd && I.Rd == 10)
      I.Rd = 9;
    Program.push_back(I);
  }

  // Pad generously so forward branches land on NOPs, then halt.
  for (int Pad = 0; Pad < 8; ++Pad)
    Program.push_back(Inst{Opcode::NOP, 0, 0, 0, 0, 0});
  Program.push_back(Inst{Opcode::HALT, 0, 0, 0, 0, 0});
  return Program;
}

std::vector<uint8_t> encodeProgram(const std::vector<Inst> &Program) {
  std::vector<uint8_t> Image;
  for (const Inst &I : Program) {
    auto WordOrErr = encode(I);
    EXPECT_TRUE(bool(WordOrErr)) << disassemble(I);
    uint32_t Word = *WordOrErr;
    for (int B = 0; B < 4; ++B)
      Image.push_back(static_cast<uint8_t>(Word >> (8 * B)));
  }
  return Image;
}

} // namespace

class CrossCheckTest : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Seeds, CrossCheckTest, ::testing::Range(0, 24));

TEST_P(CrossCheckTest, PipelineMatchesReferenceIss) {
  Rng R(0xabc0 + static_cast<uint64_t>(GetParam()));
  std::vector<Inst> Insts = generateProgram(R, 120);
  std::vector<uint8_t> Image = encodeProgram(Insts);
  guest::Program Prog(Image, /*BaseAddr=*/0x1000, /*EntryAddr=*/0x1000, {});

  // Full pipeline.
  MachineConfig Config;
  Config.Scheme = SchemeKind::Hst; // Exercises inline instrumentation too.
  Config.NumThreads = 1;
  Config.MemBytes = 1ULL << 20;
  auto M = Machine::create(Config).take();
  ASSERT_TRUE(bool(M->loadProgram(Prog)));
  auto Result = M->run({});
  ASSERT_TRUE(bool(Result)) << Result.error().render();
  ASSERT_TRUE(Result->AllHalted);

  // Reference ISS.
  ReferenceIss Iss(1ULL << 20);
  std::copy(Image.begin(), Image.end(), Iss.Memory.begin() + 0x1000);
  Iss.Pc = 0x1000;
  // Match the machine's entry conventions.
  Iss.Regs[0] = 0;
  Iss.Regs[RegSp] = alignDown((1ULL << 20) - 16, 16);
  for (unsigned Step = 0; Step < 100000 && !Iss.Halted; ++Step) {
    Iss.step();
    if (HasFatalFailure())
      return;
  }
  ASSERT_TRUE(Iss.Halted) << "reference ISS did not terminate";

  // Compare architectural state.
  for (unsigned Reg = 0; Reg < NumGuestRegs; ++Reg)
    EXPECT_EQ(M->cpu(0).Regs[Reg], Iss.Regs[Reg])
        << "r" << Reg << " mismatch (seed " << GetParam() << ")";
  for (uint64_t Addr = ScratchBase; Addr < ScratchBase + ScratchSize;
       ++Addr)
    ASSERT_EQ(M->mem().shadowLoad(Addr, 1), Iss.load(Addr, 1))
        << "memory mismatch at 0x" << std::hex << Addr << " (seed "
        << GetParam() << ")";
}

/// The optimizer and the rule-based pass must not change results either.
TEST_P(CrossCheckTest, OptimizerVariantsAgree) {
  Rng R(0xdef0 + static_cast<uint64_t>(GetParam()));
  std::vector<Inst> Insts = generateProgram(R, 100);
  std::vector<uint8_t> Image = encodeProgram(Insts);
  guest::Program Prog(Image, 0x1000, 0x1000, {});

  auto RunWith = [&](bool Optimize, bool RuleBased) {
    MachineConfig Config;
    Config.Scheme = SchemeKind::PicoCas;
    Config.NumThreads = 1;
    Config.MemBytes = 1ULL << 20;
    Config.Translation.Optimize = Optimize;
    Config.Translation.RuleBasedAtomics = RuleBased;
    auto M = Machine::create(Config).take();
    EXPECT_TRUE(bool(M->loadProgram(Prog)));
    auto Result = M->run({});
    EXPECT_TRUE(bool(Result));
    std::array<uint64_t, NumGuestRegs> Regs;
    std::copy_n(std::begin(M->cpu(0).Regs), NumGuestRegs, Regs.begin());
    return Regs;
  };

  auto Baseline = RunWith(false, false);
  EXPECT_EQ(RunWith(true, false), Baseline) << "optimizer changed results";
  EXPECT_EQ(RunWith(true, true), Baseline) << "rule-based pass changed "
                                              "results";
}
