//===- tests/AssemblerTest.cpp - assembler/encoding unit tests -----------------===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//

#include "guest/Assembler.h"
#include "guest/Disassembler.h"
#include "guest/Encoding.h"
#include "guest/Isa.h"

#include "support/Random.h"

#include <gtest/gtest.h>

using namespace llsc;
using namespace llsc::guest;

namespace {

uint32_t wordAt(const Program &Prog, uint64_t Addr) {
  uint64_t Offset = Addr - Prog.baseAddr();
  const auto &Image = Prog.image();
  return static_cast<uint32_t>(Image[Offset]) |
         static_cast<uint32_t>(Image[Offset + 1]) << 8 |
         static_cast<uint32_t>(Image[Offset + 2]) << 16 |
         static_cast<uint32_t>(Image[Offset + 3]) << 24;
}

Inst decodeAt(const Program &Prog, uint64_t Addr) {
  auto InstOrErr = decode(wordAt(Prog, Addr));
  EXPECT_TRUE(bool(InstOrErr));
  return *InstOrErr;
}

} // namespace

TEST(Encoding, RoundTripAllFormats) {
  Inst Samples[] = {
      {Opcode::ADD, 1, 2, 3, 0, 0},
      {Opcode::ADDI, 4, 5, 0, 0, -8},
      {Opcode::BEQ, 0, 1, 2, 0, -100},
      {Opcode::MOVZ, 7, 0, 0, 3, 0xbeef},
      {Opcode::B, 0, 0, 0, 0, 12345},
      {Opcode::LDXRW, 3, 4, 0, 0, 0},
      {Opcode::STXRD, 5, 6, 7, 0, 0},
      {Opcode::HALT, 0, 0, 0, 0, 0},
  };
  for (const Inst &I : Samples) {
    auto WordOrErr = encode(I);
    ASSERT_TRUE(bool(WordOrErr)) << WordOrErr.error().render();
    auto BackOrErr = decode(*WordOrErr);
    ASSERT_TRUE(bool(BackOrErr));
    EXPECT_EQ(*BackOrErr, I);
  }
}

TEST(Encoding, RejectsOutOfRangeImmediates) {
  Inst I{Opcode::ADDI, 1, 2, 0, 0, 10000}; // 14-bit signed max is 8191.
  EXPECT_FALSE(bool(encode(I)));
  I.Imm = -9000;
  EXPECT_FALSE(bool(encode(I)));
}

TEST(Encoding, RejectsUndefinedOpcode) {
  uint32_t Word = 0x3fu << 26; // Opcode 63 is unused.
  EXPECT_FALSE(bool(decode(Word)));
}

/// Property: every opcode round-trips through encode/decode for random
/// in-range operands.
TEST(Encoding, PropertyRoundTripRandom) {
  Rng R(42);
  for (unsigned OpIdx = 0;
       OpIdx < static_cast<unsigned>(Opcode::NumOpcodes); ++OpIdx) {
    Opcode Op = static_cast<Opcode>(OpIdx);
    const OpcodeInfo &Info = getOpcodeInfo(Op);
    for (int Trial = 0; Trial < 50; ++Trial) {
      Inst I;
      I.Op = Op;
      I.Rd = static_cast<uint8_t>(R.nextBelow(16));
      I.Rs1 = static_cast<uint8_t>(R.nextBelow(16));
      I.Rs2 = static_cast<uint8_t>(R.nextBelow(16));
      switch (Info.Form) {
      case Format::I:
      case Format::B:
        I.Imm = static_cast<int64_t>(R.nextInRange(0, 16383)) - 8192;
        break;
      case Format::W:
        I.Hw = static_cast<uint8_t>(R.nextBelow(4));
        I.Imm = static_cast<int64_t>(R.nextBelow(0x10000));
        break;
      case Format::J:
        I.Imm = static_cast<int64_t>(R.nextBelow(1ULL << 26)) -
                (1LL << 25);
        break;
      case Format::R:
        break;
      }
      // Normalize fields the format does not encode.
      Inst Expected = I;
      switch (Info.Form) {
      case Format::R:
        Expected.Imm = 0;
        Expected.Hw = 0;
        break;
      case Format::I:
        Expected.Rs2 = 0;
        Expected.Hw = 0;
        break;
      case Format::B:
        Expected.Rd = 0;
        Expected.Hw = 0;
        break;
      case Format::W:
        Expected.Rs1 = Expected.Rs2 = 0;
        break;
      case Format::J:
        Expected.Rd = Expected.Rs1 = Expected.Rs2 = 0;
        Expected.Hw = 0;
        break;
      }
      I = Expected;
      auto WordOrErr = encode(I);
      ASSERT_TRUE(bool(WordOrErr)) << WordOrErr.error().render();
      auto BackOrErr = decode(*WordOrErr);
      ASSERT_TRUE(bool(BackOrErr));
      EXPECT_EQ(*BackOrErr, I) << disassemble(I);
    }
  }
}

TEST(Assembler, BasicProgram) {
  auto ProgOrErr = assemble(R"(
_start:
        movz    r1, #5
        addi    r1, r1, #3
        halt
)");
  ASSERT_TRUE(bool(ProgOrErr)) << ProgOrErr.error().render();
  EXPECT_EQ(ProgOrErr->entryAddr(), 0x1000u);
  EXPECT_EQ(ProgOrErr->image().size(), 12u);
  Inst I0 = decodeAt(*ProgOrErr, 0x1000);
  EXPECT_EQ(I0.Op, Opcode::MOVZ);
  EXPECT_EQ(I0.Imm, 5);
}

TEST(Assembler, LabelsAndBranches) {
  auto ProgOrErr = assemble(R"(
_start:
loop:   addi    r1, r1, #1
        bne     r1, r2, loop
        b       end
        nop
end:    halt
)");
  ASSERT_TRUE(bool(ProgOrErr)) << ProgOrErr.error().render();
  // bne at 0x1004 targets 0x1000 => imm = -1.
  Inst Bne = decodeAt(*ProgOrErr, 0x1004);
  EXPECT_EQ(Bne.Op, Opcode::BNE);
  EXPECT_EQ(Bne.Imm, -1);
  // b at 0x1008 targets 0x1010 => imm = +2.
  Inst B = decodeAt(*ProgOrErr, 0x1008);
  EXPECT_EQ(B.Op, Opcode::B);
  EXPECT_EQ(B.Imm, 2);
}

TEST(Assembler, MemoryOperands) {
  auto ProgOrErr = assemble(R"(
_start:
        ldw     r1, [r2]
        ldd     r3, [r4, #16]
        std     r3, [r4, #-8]
        ldxr.w  r5, [r6]
        stxr.w  r7, r5, [r6]
        halt
)");
  ASSERT_TRUE(bool(ProgOrErr)) << ProgOrErr.error().render();
  Inst Ldd = decodeAt(*ProgOrErr, 0x1004);
  EXPECT_EQ(Ldd.Op, Opcode::LDD);
  EXPECT_EQ(Ldd.Imm, 16);
  Inst Stxr = decodeAt(*ProgOrErr, 0x1010);
  EXPECT_EQ(Stxr.Op, Opcode::STXRW);
  EXPECT_EQ(Stxr.Rd, 7);  // Status.
  EXPECT_EQ(Stxr.Rs2, 5); // Value.
  EXPECT_EQ(Stxr.Rs1, 6); // Address.
}

TEST(Assembler, PseudoInstructions) {
  auto ProgOrErr = assemble(R"(
_start:
        li      r1, #0x12345678
        mov     r2, r1
        la      r3, data
        ret
data:   .quad   7
)");
  ASSERT_TRUE(bool(ProgOrErr)) << ProgOrErr.error().render();
  // li of a 32-bit value: movz + movk.
  Inst I0 = decodeAt(*ProgOrErr, 0x1000);
  Inst I1 = decodeAt(*ProgOrErr, 0x1004);
  EXPECT_EQ(I0.Op, Opcode::MOVZ);
  EXPECT_EQ(static_cast<uint64_t>(I0.Imm), 0x5678u);
  EXPECT_EQ(I1.Op, Opcode::MOVK);
  EXPECT_EQ(static_cast<uint64_t>(I1.Imm), 0x1234u);
  // la is always 4 instructions.
  Inst Ret = decodeAt(*ProgOrErr, 0x1000 + 4 * (2 + 1 + 4));
  EXPECT_EQ(Ret.Op, Opcode::BR);
  EXPECT_EQ(Ret.Rs1, RegLr);
}

TEST(Assembler, DataDirectives) {
  auto ProgOrErr = assemble(R"(
        .equ MAGIC, 0xabcd
_start: halt
        .align 8
vals:   .byte 1, 2
        .half 3
        .word MAGIC
        .quad vals
        .space 5
)");
  ASSERT_TRUE(bool(ProgOrErr)) << ProgOrErr.error().render();
  auto Vals = ProgOrErr->symbol("vals");
  ASSERT_TRUE(Vals.has_value());
  EXPECT_EQ(*Vals % 8, 0u);
  const auto &Image = ProgOrErr->image();
  uint64_t Off = *Vals - ProgOrErr->baseAddr();
  EXPECT_EQ(Image[Off], 1);
  EXPECT_EQ(Image[Off + 1], 2);
  EXPECT_EQ(Image[Off + 2], 3);
  // .word MAGIC little-endian.
  EXPECT_EQ(Image[Off + 4], 0xcd);
  EXPECT_EQ(Image[Off + 5], 0xab);
}

TEST(Assembler, Errors) {
  EXPECT_FALSE(bool(assemble("frobnicate r1, r2")));
  EXPECT_FALSE(bool(assemble("addi r1, r2, #100000"))); // Imm too wide.
  EXPECT_FALSE(bool(assemble("b nowhere")));            // Undefined label.
  EXPECT_FALSE(bool(assemble("x: halt\nx: halt")));     // Redefinition.
  EXPECT_FALSE(bool(assemble("add r1, r2")));           // Arity.
  EXPECT_FALSE(bool(assemble("add r1, r2, r77")));      // Bad register.
}

TEST(Assembler, CommentsAndCase) {
  auto ProgOrErr = assemble(R"(
; full line comment
_start: ADDI r1, r1, #1   // trailing comment
        HALT              ; another
)");
  ASSERT_TRUE(bool(ProgOrErr)) << ProgOrErr.error().render();
  EXPECT_EQ(ProgOrErr->image().size(), 8u);
}

TEST(ExpandLoadImmediate, Cases) {
  EXPECT_EQ(expandLoadImmediate(1, 0).size(), 1u);
  EXPECT_EQ(expandLoadImmediate(1, 0x5678).size(), 1u);
  EXPECT_EQ(expandLoadImmediate(1, 0x12345678).size(), 2u);
  EXPECT_EQ(expandLoadImmediate(1, 0x0001000000000000ULL).size(), 1u);
  EXPECT_EQ(expandLoadImmediate(1, ~0ULL).size(), 4u);
}

/// Property: assemble(disassemble(inst)) == inst for non-branch opcodes.
TEST(Disassembler, PropertyRoundTripThroughAssembler) {
  Rng R(9);
  for (int Trial = 0; Trial < 400; ++Trial) {
    Inst I;
    // Pick a non-control-flow opcode (branch targets need labels).
    do {
      I.Op = static_cast<Opcode>(
          R.nextBelow(static_cast<uint64_t>(Opcode::NumOpcodes)));
    } while (getOpcodeInfo(I.Op).IsBranch || I.Op == Opcode::SYS);
    const OpcodeInfo &Info = getOpcodeInfo(I.Op);
    I.Rd = static_cast<uint8_t>(R.nextBelow(16));
    I.Rs1 = static_cast<uint8_t>(R.nextBelow(16));
    I.Rs2 = static_cast<uint8_t>(R.nextBelow(16));
    if (Info.Form == Format::I)
      I.Imm = static_cast<int64_t>(R.nextInRange(0, 16383)) - 8192;
    if (Info.Form == Format::W) {
      I.Hw = static_cast<uint8_t>(R.nextBelow(4));
      I.Imm = static_cast<int64_t>(R.nextBelow(0x10000));
    }
    // Normalize unencoded fields.
    if (Info.Form == Format::R) {
      I.Imm = 0;
      I.Hw = 0;
    }
    if (Info.Form == Format::I) {
      I.Rs2 = 0;
      I.Hw = 0;
    }
    if (Info.Form == Format::W) {
      I.Rs1 = I.Rs2 = 0;
    }
    // Fields the textual form does not mention (the assembler emits them
    // as zero).
    switch (I.Op) {
    case Opcode::NOP:
    case Opcode::YIELD:
    case Opcode::DMB:
    case Opcode::CLREX:
      I.Rd = I.Rs1 = I.Rs2 = 0;
      break;
    case Opcode::TID:
      I.Rs1 = I.Rs2 = 0;
      break;
    case Opcode::LDXRW:
    case Opcode::LDXRD:
      I.Rs2 = 0;
      break;
    default:
      break;
    }

    std::string Text = "_start: " + disassemble(I) + "\n";
    auto ProgOrErr = assemble(Text);
    ASSERT_TRUE(bool(ProgOrErr))
        << Text << " -> " << ProgOrErr.error().render();
    auto BackOrErr = decode(wordAt(*ProgOrErr, 0x1000));
    ASSERT_TRUE(bool(BackOrErr));
    // The assembler normalizes some forms (e.g. mov/li expansion does not
    // apply here since we use raw mnemonics); expect exact round-trip.
    EXPECT_EQ(*BackOrErr, I) << Text;
  }
}

/// Fuzz: decode() must never crash on arbitrary words, and decoding is
/// idempotent (decode(encode(decode(w))) == decode(w)) — padding bits are
/// the only information an encode round-trip may drop.
TEST(Encoding, PropertyDecodeFuzz) {
  Rng R(0xf22);
  for (int Trial = 0; Trial < 20000; ++Trial) {
    uint32_t Word = static_cast<uint32_t>(R.next());
    auto InstOrErr = decode(Word);
    if (!InstOrErr)
      continue; // Undefined opcode: fine.
    auto ReencodedOrErr = encode(*InstOrErr);
    ASSERT_TRUE(bool(ReencodedOrErr)) << disassemble(*InstOrErr);
    auto AgainOrErr = decode(*ReencodedOrErr);
    ASSERT_TRUE(bool(AgainOrErr));
    EXPECT_EQ(*AgainOrErr, *InstOrErr) << "word 0x" << std::hex << Word;
  }
}

/// Fuzz: the assembler must reject garbage inputs with an error, never
/// crash or hang.
TEST(Assembler, PropertySourceFuzz) {
  Rng R(0xa55);
  const char Alphabet[] = "abcr0123456789#[],.:+- \t\nxloadstw";
  for (int Trial = 0; Trial < 300; ++Trial) {
    std::string Source;
    unsigned Len = 10 + static_cast<unsigned>(R.nextBelow(120));
    for (unsigned C = 0; C < Len; ++C)
      Source += Alphabet[R.nextBelow(sizeof(Alphabet) - 1)];
    auto Result = assemble(Source);
    // Either outcome is fine; no crash/hang is the property.
    (void)Result;
  }
}
