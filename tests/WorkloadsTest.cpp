//===- tests/WorkloadsTest.cpp - guest workload tests ----------------------------===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//

#include "workloads/GuestRuntime.h"
#include "workloads/LockFreeStack.h"
#include "workloads/ParsecKernels.h"

#include "core/Machine.h"

#include <gtest/gtest.h>

using namespace llsc;
using namespace llsc::workloads;

namespace {

std::unique_ptr<Machine> makeMachine(SchemeKind Scheme, unsigned Threads,
                                     uint64_t MaxBlocks = 100'000'000) {
  MachineConfig Config;
  Config.Scheme = Scheme;
  Config.NumThreads = Threads;
  Config.MemBytes = 64ULL << 20;
  Config.ForceSoftHtm = true;
  Config.MaxBlocksPerCpu = MaxBlocks;
  auto MachineOrErr = Machine::create(Config);
  EXPECT_TRUE(bool(MachineOrErr)) << MachineOrErr.error().render();
  return MachineOrErr.take();
}

} // namespace

TEST(GuestRuntime, MutexProvidesExclusion) {
  auto M = makeMachine(SchemeKind::Hst, 4);
  std::string Asm = guestRuntimeAsm() + R"(
; counter protected by a mutex: non-atomic RMW inside the critical section
_start:
        li      r8, #200
        la      r9, lock
        la      r10, counter
loop:   cbz     r8, done
        mov     r1, r9
        bl      rt_mutex_lock
        ldw     r2, [r10]
        addi    r2, r2, #1
        stw     r2, [r10]
        mov     r1, r9
        bl      rt_mutex_unlock
        addi    r8, r8, #-1
        b       loop
done:   halt
        .align 4096
lock:   .word 0
        .align 64
counter: .word 0
)";
  ASSERT_TRUE(bool(M->loadAssembly(Asm)));
  auto Result = M->run({});
  ASSERT_TRUE(bool(Result)) << Result.error().render();
  ASSERT_TRUE(Result->AllHalted);
  EXPECT_EQ(M->mem().shadowLoad(M->program().requiredSymbol("counter"), 4),
            4u * 200u);
  EXPECT_EQ(M->mem().shadowLoad(M->program().requiredSymbol("lock"), 4), 0u);
}

TEST(GuestRuntime, BarrierSynchronizesPhases) {
  // Each thread writes its tid into slot[tid], barriers, then sums the
  // other threads' slots. Any barrier violation yields a wrong sum.
  auto M = makeMachine(SchemeKind::Hst, 4);
  std::string Asm = guestRuntimeAsm() + R"(
_start:
        tid     r7
        la      r9, slots
        lsli    r8, r7, #3
        add     r8, r8, r9
        addi    r2, r7, #1
        std     r2, [r8]          ; slots[tid] = tid + 1
        la      r1, barrier
        bl      rt_barrier_wait
        ; sum all slots
        movz    r4, #0
        movz    r5, #0            ; index
        sys     r6, #2            ; nthreads
sum:    beq     r5, r6, emit
        lsli    r2, r5, #3
        add     r2, r2, r9
        ldd     r2, [r2]
        add     r4, r4, r2
        addi    r5, r5, #1
        b       sum
emit:   la      r2, sums
        lsli    r3, r7, #3
        add     r2, r2, r3
        std     r4, [r2]
        halt
        .align 4096
barrier: .word 0
         .word 0
        .align 64
slots:  .space 64
sums:   .space 64
)";
  ASSERT_TRUE(bool(M->loadAssembly(Asm)));
  auto Result = M->run({});
  ASSERT_TRUE(bool(Result)) << Result.error().render();
  ASSERT_TRUE(Result->AllHalted);
  uint64_t Sums = M->program().requiredSymbol("sums");
  for (unsigned Tid = 0; Tid < 4; ++Tid)
    EXPECT_EQ(M->mem().shadowLoad(Sums + Tid * 8, 8), 1u + 2 + 3 + 4)
        << "thread " << Tid << " raced past the barrier";
}

TEST(GuestRuntime, AtomicAddReturnsOldValue) {
  auto M = makeMachine(SchemeKind::Hst, 1);
  std::string Asm = guestRuntimeAsm() + R"(
_start:
        la      r1, counter
        movz    r2, #5
        bl      rt_atomic_add_w
        la      r4, out
        std     r3, [r4]          ; old value (0)
        la      r1, counter
        movz    r2, #3
        bl      rt_atomic_add_w
        std     r3, [r4, #8]      ; old value (5)
        halt
        .align 4096
counter: .word 0
        .align 8
out:    .space 16
)";
  ASSERT_TRUE(bool(M->loadAssembly(Asm)));
  auto Result = M->run({});
  ASSERT_TRUE(bool(Result)) << Result.error().render();
  uint64_t Out = M->program().requiredSymbol("out");
  EXPECT_EQ(M->mem().shadowLoad(Out, 8), 0u);
  EXPECT_EQ(M->mem().shadowLoad(Out + 8, 8), 5u);
  EXPECT_EQ(M->mem().shadowLoad(M->program().requiredSymbol("counter"), 4),
            8u);
}

class StackSchemeTest : public ::testing::TestWithParam<SchemeKind> {};

INSTANTIATE_TEST_SUITE_P(
    CorrectSchemes, StackSchemeTest,
    ::testing::Values(SchemeKind::PicoSt, SchemeKind::Hst,
                      SchemeKind::HstWeak, SchemeKind::HstHtm,
                      SchemeKind::HstHelper, SchemeKind::Pst,
                      SchemeKind::PstRemap),
    [](const ::testing::TestParamInfo<SchemeKind> &Info) {
      std::string Name = schemeTraits(Info.param).Name;
      for (char &C : Name)
        if (C == '-')
          C = '_';
      return Name;
    });

/// The paper's §IV-A result, positive side: every proposed scheme keeps
/// the lock-free stack intact (no self-loops, no lost nodes).
TEST_P(StackSchemeTest, StackConservedUnderCorrectSchemes) {
  LockFreeStackParams Params;
  Params.NumNodes = 32;
  Params.IterationsPerThread = 300;
  Params.YieldEveryNPops = 8; // Stress the window; must stay correct.

  auto M = makeMachine(GetParam(), 4);
  auto ProgOrErr = buildLockFreeStack(Params);
  ASSERT_TRUE(bool(ProgOrErr)) << ProgOrErr.error().render();
  ASSERT_TRUE(bool(M->loadProgram(*ProgOrErr)));
  auto Result = M->run({});
  ASSERT_TRUE(bool(Result)) << Result.error().render();
  ASSERT_TRUE(Result->AllHalted);

  StackCheckResult Check =
      checkLockFreeStack(M->mem(), M->program(), Params);
  EXPECT_FALSE(Check.Corrupted)
      << "self-loops=" << Check.SelfLoops << " lost=" << Check.NodesLost
      << " cycle=" << Check.CycleDetected;
  EXPECT_EQ(Check.NodesReachable, Params.NumNodes);
}

/// The stack workload's checker recognizes a healthy untouched stack.
TEST(LockFreeStack, CheckerOnFreshProgram) {
  LockFreeStackParams Params;
  Params.NumNodes = 8;
  auto M = makeMachine(SchemeKind::Hst, 1);
  auto ProgOrErr = buildLockFreeStack(Params);
  ASSERT_TRUE(bool(ProgOrErr)) << ProgOrErr.error().render();
  ASSERT_TRUE(bool(M->loadProgram(*ProgOrErr)));
  M->prepareRun(); // Load only; no run.
  StackCheckResult Check =
      checkLockFreeStack(M->mem(), M->program(), Params);
  EXPECT_FALSE(Check.Corrupted);
  EXPECT_EQ(Check.NodesReachable, 8u);
}

/// The checker detects a planted self-loop (the paper's corruption
/// signature).
TEST(LockFreeStack, CheckerDetectsSelfLoop) {
  LockFreeStackParams Params;
  Params.NumNodes = 8;
  auto M = makeMachine(SchemeKind::Hst, 1);
  auto ProgOrErr = buildLockFreeStack(Params);
  ASSERT_TRUE(bool(ProgOrErr)) << ProgOrErr.error().render();
  ASSERT_TRUE(bool(M->loadProgram(*ProgOrErr)));
  M->prepareRun();
  uint64_t Nodes = M->program().requiredSymbol("nodes");
  M->mem().shadowStore(Nodes + 2 * 16, Nodes + 2 * 16, 8); // next = self.
  StackCheckResult Check =
      checkLockFreeStack(M->mem(), M->program(), Params);
  EXPECT_TRUE(Check.Corrupted);
  EXPECT_EQ(Check.SelfLoops, 1u);
  EXPECT_TRUE(Check.CycleDetected);
}

TEST(ParsecKernels, AllEightDefined) {
  EXPECT_EQ(parsecKernels().size(), 8u);
  EXPECT_NE(findKernel("blackscholes"), nullptr);
  EXPECT_NE(findKernel("X264"), nullptr);
  EXPECT_EQ(findKernel("doesnotexist"), nullptr);
}

TEST(ParsecKernels, AllKernelsAssemble) {
  for (const KernelParams &Params : parsecKernels()) {
    auto ProgOrErr = buildKernel(Params, /*Scale=*/0.01);
    EXPECT_TRUE(bool(ProgOrErr))
        << Params.Name << ": " << ProgOrErr.error().render();
  }
}

/// Every kernel terminates under every thread count and produces a
/// store:LL/SC mix in the paper's Table I range (stores far outnumber
/// LL/SC).
TEST(ParsecKernels, KernelsRunAndCountInstructionMix) {
  for (const KernelParams &Params : parsecKernels()) {
    auto M = makeMachine(SchemeKind::Hst, 2);
    auto ProgOrErr = buildKernel(Params, /*Scale=*/0.05);
    ASSERT_TRUE(bool(ProgOrErr)) << Params.Name;
    ASSERT_TRUE(bool(M->loadProgram(*ProgOrErr)));
    auto Result = M->run({});
    ASSERT_TRUE(bool(Result))
        << Params.Name << ": " << Result.error().render();
    EXPECT_TRUE(Result->AllHalted) << Params.Name;
    EXPECT_GT(Result->Total.Stores, 0u) << Params.Name;
    EXPECT_GT(Result->Total.LoadLinks, 0u) << Params.Name;
    double Ratio = static_cast<double>(Result->Total.Stores) /
                   static_cast<double>(Result->Total.LoadLinks);
    EXPECT_GT(Ratio, 2.0) << Params.Name
                          << ": stores must dominate LL/SC (Table I)";
  }
}

/// Kernels behave identically (same halt state) under a strong and the
/// baseline scheme — counters-based workloads have scheme-independent
/// results.
TEST(ParsecKernels, SchemeIndependentTermination) {
  const KernelParams *Params = findKernel("freqmine");
  ASSERT_NE(Params, nullptr);
  for (SchemeKind Kind : {SchemeKind::PicoCas, SchemeKind::Pst}) {
    auto M = makeMachine(Kind, 3);
    auto ProgOrErr = buildKernel(*Params, /*Scale=*/0.03);
    ASSERT_TRUE(bool(ProgOrErr));
    ASSERT_TRUE(bool(M->loadProgram(*ProgOrErr)));
    auto Result = M->run({});
    ASSERT_TRUE(bool(Result)) << Result.error().render();
    EXPECT_TRUE(Result->AllHalted) << schemeTraits(Kind).Name;
  }
}

/// The ticket lock provides mutual exclusion and (being FIFO) forward
/// progress for every thread; with the rule-based pass its take-a-ticket
/// loop lowers to a host fetch-add.
TEST(GuestRuntime, TicketLockProvidesExclusion) {
  for (bool RuleBased : {false, true}) {
    MachineConfig Config;
    Config.Scheme = SchemeKind::Hst;
    Config.NumThreads = 4;
    Config.MemBytes = 64ULL << 20;
    Config.Translation.RuleBasedAtomics = RuleBased;
    Config.MaxBlocksPerCpu = 100'000'000;
    auto M = Machine::create(Config).take();
    std::string Asm = guestRuntimeAsm() + R"(
_start:
        li      r8, #250
        la      r9, tlock
        la      r10, counter
loop:   cbz     r8, done
        mov     r1, r9
        bl      rt_ticket_lock
        ldw     r2, [r10]
        addi    r2, r2, #1
        stw     r2, [r10]
        mov     r1, r9
        bl      rt_ticket_unlock
        addi    r8, r8, #-1
        b       loop
done:   halt
        .align 4096
tlock:  .word 0
        .word 0
        .align 64
counter: .word 0
)";
    ASSERT_TRUE(bool(M->loadAssembly(Asm)));
    auto Result = M->run({});
    ASSERT_TRUE(bool(Result)) << Result.error().render();
    ASSERT_TRUE(Result->AllHalted) << "rule-based=" << RuleBased;
    EXPECT_EQ(M->mem().shadowLoad(M->program().requiredSymbol("counter"), 4),
              4u * 250u)
        << "rule-based=" << RuleBased;
    if (RuleBased) {
      EXPECT_GT(M->translator().stats().AtomicIdiomsMatched, 0u);
    }
  }
}

/// The tagged stack (version-number ABA defense, related work [13]) must
/// stay intact under EVERY scheme — including PICO-CAS with the same
/// adversarial interleaving that smashes the plain stack.
TEST(TaggedLockFreeStack, SurvivesPicoCas) {
  LockFreeStackParams Params;
  Params.NumNodes = 32;
  Params.IterationsPerThread = 2000;
  Params.YieldEveryNPops = 4;
  Params.HoldYieldEveryN = 4;
  Params.BatchDepth = 2;

  for (SchemeKind Kind : {SchemeKind::PicoCas, SchemeKind::Hst}) {
    auto M = makeMachine(Kind, 8);
    auto ProgOrErr = buildTaggedLockFreeStack(Params);
    ASSERT_TRUE(bool(ProgOrErr)) << ProgOrErr.error().render();
    ASSERT_TRUE(bool(M->loadProgram(*ProgOrErr)));
    auto Result = M->run({});
    ASSERT_TRUE(bool(Result)) << Result.error().render();
    ASSERT_TRUE(Result->AllHalted);
    StackCheckResult Check =
        checkTaggedLockFreeStack(M->mem(), M->program(), Params);
    EXPECT_FALSE(Check.Corrupted)
        << schemeTraits(Kind).Name << ": reachable="
        << Check.NodesReachable << " lost=" << Check.NodesLost
        << " cycle=" << Check.CycleDetected;
    EXPECT_EQ(Check.NodesReachable, Params.NumNodes)
        << schemeTraits(Kind).Name;
  }
}

/// Sanity: the tagged checker sees a fresh image as intact and detects a
/// planted cycle.
TEST(TaggedLockFreeStack, CheckerBasics) {
  LockFreeStackParams Params;
  Params.NumNodes = 8;
  auto M = makeMachine(SchemeKind::Hst, 1);
  auto ProgOrErr = buildTaggedLockFreeStack(Params);
  ASSERT_TRUE(bool(ProgOrErr)) << ProgOrErr.error().render();
  ASSERT_TRUE(bool(M->loadProgram(*ProgOrErr)));
  M->prepareRun();
  EXPECT_FALSE(
      checkTaggedLockFreeStack(M->mem(), M->program(), Params).Corrupted);

  uint64_t Nodes = M->program().requiredSymbol("nodes");
  M->mem().shadowStore(Nodes + 2 * 16, 3, 4); // node3.next = node3.
  StackCheckResult Check =
      checkTaggedLockFreeStack(M->mem(), M->program(), Params);
  EXPECT_TRUE(Check.Corrupted);
  EXPECT_TRUE(Check.CycleDetected);
}
