//===- tests/ServeSoakTest.cpp - llsc-served endurance soak ---------------------===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// The serving tier's endurance proof (CTest label "soak"): pushes
/// LLSC_SOAK_JOBS jobs (default 10000; CI trims via the environment)
/// through a live llsc-served event loop over localhost and then fires
/// a real SIGTERM mid-load. Holds the daemon to the three soak
/// invariants from docs/SERVING.md:
///
///   1. zero leaked machines — pool Outstanding is 0 after the run;
///   2. bounded queue latency — fleet p99 queue wait under one second;
///   3. clean SIGTERM drain — admissions cut over to "draining",
///      every accepted job still completes and streams out, and the
///      event loop exits on its own.
///
//===----------------------------------------------------------------------===//

#include "net/Client.h"
#include "net/Server.h"

#include <gtest/gtest.h>

#include <csignal>
#include <cstdlib>
#include <thread>

using namespace llsc;
using namespace llsc::net;
using namespace llsc::serve;

namespace {

/// Short contended LL/SC fetch-add: every job exercises the full
/// submit -> pool -> run -> stream path without dominating the soak's
/// wall clock.
constexpr const char *SoakAsm = R"(_start: li      r9, #50
loop:   cbz     r9, done
        la      r10, word
try:    ldxr.d  r1, [r10]
        addi    r1, r1, #1
        stxr.d  r2, r1, [r10]
        cbnz    r2, try
        addi    r9, r9, #-1
        b       loop
done:   halt
        .align 64
word:   .quad 0
)";

unsigned soakJobs() {
  if (const char *Env = std::getenv("LLSC_SOAK_JOBS"))
    if (unsigned Jobs = static_cast<unsigned>(std::strtoul(Env, nullptr, 10)))
      return Jobs;
  return 10000;
}

JsonValue submitLine(const std::string &Session) {
  JsonValue R = JsonValue::object();
  auto &M = R.membersMut();
  M["verb"] = JsonValue::string("submit");
  M["session"] = JsonValue::string(Session);
  M["name"] = JsonValue::string("soak");
  M["scheme"] = JsonValue::string("hst");
  M["threads"] = JsonValue::integer(1);
  M["asm"] = JsonValue::string(SoakAsm);
  return R;
}

/// Pipelined wire submission (in-order replies): \returns accepted
/// count; queue-full is resubmitted with its retry-after honored, and
/// with \p StopOnDraining a draining answer ends the burst.
unsigned submitWire(Client &Conn, const std::string &Session, unsigned Jobs,
                    bool StopOnDraining = false) {
  const std::string Line = submitLine(Session).render();
  constexpr unsigned Window = 32;
  unsigned Accepted = 0, Outstanding = 0, ToSend = Jobs;
  unsigned ConsecutiveRejects = 0;
  bool Draining = false;
  while (ToSend > 0 || Outstanding > 0) {
    while (!Draining && ToSend > 0 && Outstanding < Window) {
      auto Sent = Conn.sendLine(Line);
      EXPECT_TRUE(bool(Sent)) << Sent.error().render();
      --ToSend;
      ++Outstanding;
    }
    if (Outstanding == 0)
      break;
    auto In = Conn.readLine();
    if (!In) {
      ADD_FAILURE() << In.error().render();
      return Accepted;
    }
    auto Resp = JsonValue::parse(*In);
    EXPECT_TRUE(bool(Resp));
    --Outstanding;
    if (Resp->get("ok").asBool(false)) {
      ++Accepted;
      ConsecutiveRejects = 0;
      continue;
    }
    std::string Reason = Resp->get("error").asString(std::string());
    if (Reason == "draining" && StopOnDraining) {
      Draining = true;
      continue;
    }
    EXPECT_EQ(Reason, "queue-full") << Resp->render();
    if (!Draining)
      ++ToSend;
    if (++ConsecutiveRejects >= Window) {
      double RetryAfter = Resp->get("retry_after").asDouble(0.001);
      std::this_thread::sleep_for(std::chrono::duration<double>(
          RetryAfter > 0 ? RetryAfter : 0.001));
      ConsecutiveRejects = 0;
    }
  }
  return Accepted;
}

void beginStream(Client &Conn, const std::string &Session, unsigned Count) {
  JsonValue R = JsonValue::object();
  R.membersMut()["verb"] = JsonValue::string("stream");
  R.membersMut()["session"] = JsonValue::string(Session);
  R.membersMut()["count"] = JsonValue::integer(static_cast<int64_t>(Count));
  auto Sent = Conn.sendLine(R.render());
  EXPECT_TRUE(bool(Sent)) << Sent.error().render();
}

unsigned readStream(Client &Conn) {
  unsigned Delivered = 0;
  while (true) {
    auto Line = Conn.readLine();
    if (!Line) {
      ADD_FAILURE() << Line.error().render();
      return Delivered;
    }
    auto Event = JsonValue::parse(*Line);
    EXPECT_TRUE(bool(Event));
    std::string Kind = Event->get("event").asString(std::string());
    if (Kind == "result") {
      EXPECT_EQ(Event->get("job").get("state").asString("done"), "done");
      ++Delivered;
      continue;
    }
    EXPECT_EQ(Kind, "stream-end") << *Line;
    return Delivered;
  }
}

} // namespace

TEST(ServeSoakTest, TenThousandJobsThenSigtermDrain) {
  const unsigned Jobs = soakJobs();
  SessionService Service([] {
    ServiceConfig C;
    C.Fleet.Workers = 4;
    C.Fleet.QueueCapacity = 64; // Deliberately tight: admission control
                                // must absorb the imbalance.
    return C;
  }());
  ServerConfig SrvCfg;
  SrvCfg.Service = &Service;
  Server Srv(SrvCfg);
  auto Started = Srv.start();
  ASSERT_TRUE(bool(Started)) << Started.error().render();
  std::thread Loop([&Srv] { Srv.run(); });

  Client Conn;
  ASSERT_TRUE(bool(Conn.connect("127.0.0.1", Srv.port())));
  JsonValue Create = JsonValue::object();
  Create.membersMut()["verb"] = JsonValue::string("create-session");
  Create.membersMut()["max_buffered"] =
      JsonValue::integer(static_cast<int64_t>(Jobs));
  auto CreateResp = Conn.call(Create);
  ASSERT_TRUE(bool(CreateResp));
  std::string Session = CreateResp->get("session").asString(std::string());
  ASSERT_FALSE(Session.empty());

  // Phase 1: the full load.
  ASSERT_EQ(submitWire(Conn, Session, Jobs), Jobs);
  beginStream(Conn, Session, Jobs);
  EXPECT_EQ(readStream(Conn), Jobs);

  // Invariant 2: bounded queue latency under sustained full load.
  uint64_t P99 = Service.fleet().queueLatencyQuantileNs(0.99);
  EXPECT_LT(P99, 1'000'000'000u) << "p99 queue wait not bounded";

  // Phase 2: a second burst interrupted by a real SIGTERM. Subscribe
  // first (a drain only owes results to live subscribers), submit half,
  // raise the signal, and verify the admission cut-over.
  Server::installSigtermDrain(&Srv);
  const unsigned Burst = std::min(Jobs, 256u);
  Client Subscriber;
  ASSERT_TRUE(bool(Subscriber.connect("127.0.0.1", Srv.port())));
  beginStream(Subscriber, Session, Burst);
  unsigned Half = submitWire(Conn, Session, Burst / 2);
  raise(SIGTERM);
  // raise() returns after the handler wrote the drain byte, and the
  // event loop consumes its wake pipe before reading connections — so
  // the post-signal burst must be (at least partly) rejected.
  unsigned Rest = submitWire(Conn, Session, Burst - Burst / 2,
                             /*StopOnDraining=*/true);
  EXPECT_LT(Rest, Burst - Burst / 2) << "admissions never cut over";

  // Invariant 3: every accepted job still completes and streams out,
  // and the event loop exits on its own once drained.
  EXPECT_EQ(readStream(Subscriber), Half + Rest);
  Conn.close();
  Subscriber.close();
  Loop.join();
  Server::installSigtermDrain(nullptr);

  // Invariant 1: nothing leaked.
  Service.drain();
  EXPECT_EQ(Service.fleet().poolStats().Outstanding, 0u);
  FleetStats Fleet = Service.fleet().fleetStats();
  EXPECT_EQ(Fleet.Failed, 0u);
  EXPECT_EQ(Fleet.Completed, Jobs + Half + Rest);
}
