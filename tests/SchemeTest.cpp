//===- tests/SchemeTest.cpp - per-scheme behavioral unit tests ------------------===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Scheme-specific behaviors beyond the shared litmus matrix: HST hash
/// conflicts, PST page protection lifecycle and false sharing, PST-REMAP
/// concurrency, PICO-HTM footprint livelock, helper-vs-inline routing.
///
//===----------------------------------------------------------------------===//

#include "core/Machine.h"
#include "mem/FaultGuard.h"
#include "workloads/Litmus.h"

#include <gtest/gtest.h>

using namespace llsc;
using namespace llsc::workloads;

namespace {

std::unique_ptr<Machine> makeMachine(SchemeKind Scheme, unsigned Threads = 2,
                                     unsigned HstTableLog2 = 20,
                                     unsigned HtmMaxRetries = 64) {
  MachineConfig Config;
  Config.Scheme = Scheme;
  Config.NumThreads = Threads;
  Config.MemBytes = 8ULL << 20;
  Config.ForceSoftHtm = true;
  Config.HstTableLog2 = HstTableLog2;
  Config.HtmMaxRetries = HtmMaxRetries;
  auto MachineOrErr = Machine::create(Config);
  EXPECT_TRUE(bool(MachineOrErr)) << MachineOrErr.error().render();
  return MachineOrErr.take();
}

} // namespace

TEST(SchemeRegistry, NamesParseBothSpellings) {
  EXPECT_EQ(parseSchemeName("hst"), SchemeKind::Hst);
  EXPECT_EQ(parseSchemeName("HST-WEAK"), SchemeKind::HstWeak);
  EXPECT_EQ(parseSchemeName("pico_cas"), SchemeKind::PicoCas);
  EXPECT_EQ(parseSchemeName("pst-remap"), SchemeKind::PstRemap);
  EXPECT_EQ(parseSchemeName("bw-llsc"), SchemeKind::BwLlsc);
  EXPECT_FALSE(parseSchemeName("nonesuch").has_value());
}

/// Every kind's canonical name parses back to the kind — keeps the name
/// table, the parser, and the enum in lockstep as schemes are added.
TEST(SchemeRegistry, NameParseRoundTripsAllKinds) {
  for (SchemeKind Kind : allSchemeKinds()) {
    const SchemeTraits &Traits = schemeTraits(Kind);
    auto Parsed = parseSchemeName(Traits.Name);
    ASSERT_TRUE(Parsed.has_value()) << Traits.Name;
    EXPECT_EQ(*Parsed, Kind) << Traits.Name;
  }
}

TEST(SchemeRegistry, TraitsMatchTableII) {
  EXPECT_EQ(schemeTraits(SchemeKind::PicoCas).Atomicity,
            AtomicityClass::Incorrect);
  EXPECT_EQ(schemeTraits(SchemeKind::HstWeak).Atomicity,
            AtomicityClass::Weak);
  EXPECT_EQ(schemeTraits(SchemeKind::Hst).Atomicity, AtomicityClass::Strong);
  EXPECT_TRUE(schemeTraits(SchemeKind::HstHtm).RequiresHtm);
  EXPECT_TRUE(schemeTraits(SchemeKind::PicoHtm).RequiresHtm);
  EXPECT_FALSE(schemeTraits(SchemeKind::Pst).RequiresHtm);
  EXPECT_EQ(schemeTraits(SchemeKind::BwLlsc).Atomicity,
            AtomicityClass::Strong);
  EXPECT_FALSE(schemeTraits(SchemeKind::BwLlsc).RequiresHtm);
  EXPECT_FALSE(schemeTraits(SchemeKind::BwLlsc).UsesPageProtection);
  EXPECT_EQ(allSchemeKinds().size(), 11u);
}

/// The ABA capability query the fuzz oracle keys on: only the two schemes
/// with documented value-compare unsoundness declare it.
TEST(SchemeRegistry, AdmitsAbaOnlyForValueCompareSchemes) {
  for (SchemeKind Kind : allSchemeKinds()) {
    bool Expected =
        Kind == SchemeKind::PicoCas || Kind == SchemeKind::PicoHtm;
    EXPECT_EQ(createScheme(Kind)->admitsAba(), Expected)
        << schemeTraits(Kind).Name;
  }
}

/// HST: a store by another thread whose address *collides in the hash
/// table* (different address, same entry) causes a spurious SC failure —
/// safe, per Section III-A ("conflicts don't affect correctness").
TEST(Hst, HashConflictCausesSpuriousScFailure) {
  auto M = makeMachine(SchemeKind::Hst, 2,
                       /*HstTableLog2=*/4); // 16 entries: easy to collide.
  auto DriverOrErr = LitmusDriver::create(*M);
  ASSERT_TRUE(bool(DriverOrErr)) << DriverOrErr.error().render();
  LitmusDriver &Driver = *DriverOrErr;

  // The shared var's entry index is ((addr >> 2) & 15). A store to
  // addr + 16*4 hits the same entry.
  Driver.resetVar(5);
  Driver.loadLink(0);
  // Plain store by thread 1 to a *different* address with a colliding
  // hash entry: the driver's plainStore only targets the shared var, so
  // emulate the collision through the scheme's own storeHook-equivalent:
  // write via a second LL at the colliding address.
  uint64_t VarAddr = M->program().requiredSymbol("shared_var");
  uint64_t Colliding = VarAddr + 16 * 4;
  M->scheme().emulateLoadLink(M->cpu(1), Colliding, 4); // Sets entry to b.
  EXPECT_FALSE(Driver.storeCond(0, 6))
      << "colliding entry now carries thread 1's tag";
  EXPECT_EQ(Driver.varValue(), 5u);
}

/// HST vs HST-WEAK vs HST-HELPER: instrumentation routing differs.
TEST(Hst, InstrumentationRouting) {
  // HST inlines IR (no helper stores); PICO-ST and PST route stores.
  EXPECT_FALSE(createScheme(SchemeKind::Hst)->storesViaHelper());
  EXPECT_FALSE(createScheme(SchemeKind::HstWeak)->storesViaHelper());
  EXPECT_TRUE(createScheme(SchemeKind::PicoSt)->storesViaHelper());
  EXPECT_TRUE(createScheme(SchemeKind::Pst)->storesViaHelper());
  EXPECT_TRUE(createScheme(SchemeKind::BwLlsc)->storesViaHelper());
  EXPECT_TRUE(createScheme(SchemeKind::PstRemap)->loadsViaHelper());
  EXPECT_FALSE(createScheme(SchemeKind::Pst)->loadsViaHelper());
}

/// HST inline instrumentation emits marked IR ops for stores; HST-WEAK
/// emits none.
TEST(Hst, InlineInstrumentationPresence) {
  for (auto [Kind, ExpectOps] :
       {std::pair{SchemeKind::Hst, true}, {SchemeKind::HstWeak, false}}) {
    auto M = makeMachine(Kind);
    ASSERT_TRUE(bool(M->loadAssembly(R"(
_start: stw r1, [r2]
        halt
)")));
    M->prepareRun();
    auto Block = M->cache().lookup(0x1000, M->translator());
    ASSERT_TRUE(bool(Block));
    if (ExpectOps)
      EXPECT_GT((*Block)->IR.InstrumentOpCount, 0u);
    else
      EXPECT_EQ((*Block)->IR.InstrumentOpCount, 0u);
  }
}

/// PST: LL protects the page; conflicting stores fault and are recovered;
/// matching stores break the monitor; non-matching are false sharing.
TEST(Pst, FalseSharingVsConflict) {
  auto M = makeMachine(SchemeKind::Pst);
  ASSERT_TRUE(bool(M->loadAssembly("_start: halt\n")));
  M->prepareRun();
  AtomicScheme &Scheme = M->scheme();
  VCpu &A = M->cpu(0);
  VCpu &B = M->cpu(1);
  uint64_t FaultsBefore = FaultGuard::recoveredFaultCount();

  // A monitors 0x2000; B stores to 0x2100 (same page): false sharing.
  Scheme.emulateLoadLink(A, 0x2000, 4);
  Scheme.storeHook(B, 0x2100, 7, 4);
  EXPECT_EQ(B.Counters.PageFaultsRecovered, 1u);
  EXPECT_EQ(B.Counters.FalseSharingFaults, 1u);
  EXPECT_GT(FaultGuard::recoveredFaultCount(), FaultsBefore);
  // Monitor intact: SC succeeds.
  EXPECT_TRUE(Scheme.emulateStoreCond(A, 0x2000, 1, 4));

  // Again, but B stores to the monitored address: conflict.
  Scheme.emulateLoadLink(A, 0x2000, 4);
  Scheme.storeHook(B, 0x2000, 9, 4);
  EXPECT_EQ(B.Counters.FalseSharingFaults, 1u) << "a conflict, not false "
                                                  "sharing";
  EXPECT_FALSE(Scheme.emulateStoreCond(A, 0x2000, 2, 4));
  EXPECT_EQ(M->mem().shadowLoad(0x2000, 4), 9u);
}

/// PST: page protection is dropped once the last monitor leaves, so later
/// stores are fault-free.
TEST(Pst, ProtectionLifecycle) {
  auto M = makeMachine(SchemeKind::Pst);
  ASSERT_TRUE(bool(M->loadAssembly("_start: halt\n")));
  M->prepareRun();
  AtomicScheme &Scheme = M->scheme();
  VCpu &A = M->cpu(0);
  VCpu &B = M->cpu(1);

  Scheme.emulateLoadLink(A, 0x3000, 4);
  EXPECT_TRUE(Scheme.emulateStoreCond(A, 0x3000, 1, 4));
  // Monitor gone: stores to the page must not fault.
  uint64_t Before = B.Counters.PageFaultsRecovered;
  Scheme.storeHook(B, 0x3004, 2, 4);
  EXPECT_EQ(B.Counters.PageFaultsRecovered, Before);
  EXPECT_EQ(M->mem().shadowLoad(0x3004, 4), 2u);
}

/// PST: two monitors on one page; breaking one keeps the page protected
/// for the other.
TEST(Pst, TwoMonitorsOnePage) {
  auto M = makeMachine(SchemeKind::Pst, 3);
  ASSERT_TRUE(bool(M->loadAssembly("_start: halt\n")));
  M->prepareRun();
  AtomicScheme &Scheme = M->scheme();
  VCpu &A = M->cpu(0);
  VCpu &B = M->cpu(1);
  VCpu &C = M->cpu(2);

  Scheme.emulateLoadLink(A, 0x4000, 4);
  Scheme.emulateLoadLink(B, 0x4040, 4);
  // C stores over A's variable: A broken, B intact.
  Scheme.storeHook(C, 0x4000, 1, 4);
  EXPECT_FALSE(Scheme.emulateStoreCond(A, 0x4000, 2, 4));
  // B's monitor must still be armed: a conflicting store still faults.
  uint64_t Before = C.Counters.PageFaultsRecovered;
  Scheme.storeHook(C, 0x4080, 3, 4); // Same page, false sharing for B.
  EXPECT_GT(C.Counters.PageFaultsRecovered, Before);
  EXPECT_TRUE(Scheme.emulateStoreCond(B, 0x4040, 4, 4));
}

/// PST-REMAP: loads from another thread during SC wait (here: after SC,
/// value visible); guarded loads recover from remapped pages.
TEST(PstRemap, GuardedLoadSeesConsistentData) {
  auto M = makeMachine(SchemeKind::PstRemap);
  ASSERT_TRUE(bool(M->loadAssembly("_start: halt\n")));
  M->prepareRun();
  AtomicScheme &Scheme = M->scheme();
  VCpu &A = M->cpu(0);
  VCpu &B = M->cpu(1);

  M->mem().shadowStore(0x5000, 11, 4);
  EXPECT_EQ(Scheme.emulateLoadLink(A, 0x5000, 4), 11u);
  EXPECT_TRUE(Scheme.emulateStoreCond(A, 0x5000, 12, 4));
  EXPECT_EQ(Scheme.loadHook(B, 0x5000, 4), 12u);
  // Page is unprotected again: plain store works without a fault.
  uint64_t Before = B.Counters.PageFaultsRecovered;
  Scheme.storeHook(B, 0x5000, 13, 4);
  EXPECT_EQ(B.Counters.PageFaultsRecovered, Before);
}

/// PST-REMAP: a store to the monitored address breaks the monitor via the
/// fault path, like PST, but without any stop-the-world section.
TEST(PstRemap, ConflictBreaksMonitorWithoutExclusive) {
  auto M = makeMachine(SchemeKind::PstRemap);
  ASSERT_TRUE(bool(M->loadAssembly("_start: halt\n")));
  M->prepareRun();
  AtomicScheme &Scheme = M->scheme();
  uint64_t ExclBefore = M->exclusive().exclusiveCount();

  Scheme.emulateLoadLink(M->cpu(0), 0x6000, 4);
  Scheme.storeHook(M->cpu(1), 0x6000, 1, 4);
  EXPECT_FALSE(Scheme.emulateStoreCond(M->cpu(0), 0x6000, 2, 4));
  EXPECT_EQ(M->exclusive().exclusiveCount(), ExclBefore)
      << "PST-REMAP must not use stop-the-world sections";
}

/// PICO-HTM: engine-charged footprint inside the LL..SC window dooms the
/// transaction (capacity abort), modeling the paper's emulator-inflated
/// transactions.
TEST(PicoHtm, FootprintCapacityDoomsLongTransaction) {
  auto M = makeMachine(SchemeKind::PicoHtm, 2, /*HstTableLog2=*/20,
                       /*HtmMaxRetries=*/4);
  ASSERT_TRUE(bool(M->loadAssembly("_start: halt\n")));
  M->prepareRun();
  AtomicScheme &Scheme = M->scheme();
  VCpu &A = M->cpu(0);

  Scheme.emulateLoadLink(A, 0x7000, 4);
  ASSERT_TRUE(A.InLongTx);
  // Simulate executing lots of emulator work between LL and SC.
  M->htm()->noteFootprint(A.Tid, 1 << 20);
  EXPECT_FALSE(Scheme.emulateStoreCond(A, 0x7000, 1, 4));
  EXPECT_FALSE(A.InLongTx);
  EXPECT_GE(M->htm()->stats().CapacityAborts, 1u);
}

/// PICO-HTM: when another thread holds the commit lock, the LL retry
/// budget exhausts and the livelock fallback fires (counted).
TEST(PicoHtm, LivelockFallbackCounted) {
  auto M = makeMachine(SchemeKind::PicoHtm, 2, /*HstTableLog2=*/20,
                       /*HtmMaxRetries=*/2);
  ASSERT_TRUE(bool(M->loadAssembly("_start: halt\n")));
  M->prepareRun();
  AtomicScheme &Scheme = M->scheme();

  Scheme.emulateLoadLink(M->cpu(0), 0x7000, 4); // Holds the soft-HTM lock.
  Scheme.emulateLoadLink(M->cpu(1), 0x7100, 4); // Must fall back.
  EXPECT_EQ(M->cpu(1).Counters.HtmLivelockFallbacks, 1u);
  // Both SCs complete (the fallback one under exclusivity).
  EXPECT_TRUE(Scheme.emulateStoreCond(M->cpu(1), 0x7100, 1, 4));
  EXPECT_TRUE(Scheme.emulateStoreCond(M->cpu(0), 0x7000, 1, 4));
}

/// PICO-ST: a plain store by the same thread does not break its own
/// monitor, but an SC by anyone breaks all overlapping monitors.
TEST(PicoSt, MonitorSemantics) {
  auto M = makeMachine(SchemeKind::PicoSt, 3);
  ASSERT_TRUE(bool(M->loadAssembly("_start: halt\n")));
  M->prepareRun();
  AtomicScheme &Scheme = M->scheme();

  Scheme.emulateLoadLink(M->cpu(0), 0x8000, 4);
  Scheme.emulateLoadLink(M->cpu(1), 0x8000, 4);
  Scheme.storeHook(M->cpu(0), 0x8000, 5, 4); // Own store: 0 keeps monitor.
  // ...but it breaks thread 1's monitor.
  EXPECT_FALSE(Scheme.emulateStoreCond(M->cpu(1), 0x8000, 6, 4));
  EXPECT_TRUE(Scheme.emulateStoreCond(M->cpu(0), 0x8000, 7, 4));
  EXPECT_EQ(M->mem().shadowLoad(0x8000, 4), 7u);
}

/// Overlap detection is byte-granular: an 8-byte store overlapping a
/// 4-byte monitored variable breaks it.
TEST(PicoSt, OverlappingSizes) {
  auto M = makeMachine(SchemeKind::PicoSt);
  ASSERT_TRUE(bool(M->loadAssembly("_start: halt\n")));
  M->prepareRun();
  AtomicScheme &Scheme = M->scheme();

  Scheme.emulateLoadLink(M->cpu(0), 0x9004, 4);
  Scheme.storeHook(M->cpu(1), 0x9000, 0, 8); // Covers 0x9000..0x9008.
  EXPECT_FALSE(Scheme.emulateStoreCond(M->cpu(0), 0x9004, 1, 4));
}

/// CLREX clears the monitor under every scheme.
TEST(SchemeCommon, ClrexClearsMonitor) {
  for (SchemeKind Kind : allSchemeKinds()) {
    auto M = makeMachine(Kind);
    ASSERT_TRUE(bool(M->loadAssembly("_start: halt\n")));
    M->prepareRun();
    AtomicScheme &Scheme = M->scheme();
    Scheme.emulateLoadLink(M->cpu(0), 0xa000, 4);
    Scheme.clearExclusive(M->cpu(0));
    EXPECT_FALSE(Scheme.emulateStoreCond(M->cpu(0), 0xa000, 1, 4))
        << schemeTraits(Kind).Name;
  }
}

/// A second LL replaces the first monitor (LL/SC cannot be nested,
/// Section II-A): SC to the first address must fail.
TEST(SchemeCommon, SecondLlReplacesMonitor) {
  for (SchemeKind Kind : allSchemeKinds()) {
    auto M = makeMachine(Kind);
    ASSERT_TRUE(bool(M->loadAssembly("_start: halt\n")));
    M->prepareRun();
    AtomicScheme &Scheme = M->scheme();
    Scheme.emulateLoadLink(M->cpu(0), 0xb000, 4);
    Scheme.emulateLoadLink(M->cpu(0), 0xc000, 4);
    // Only the last LL's location is monitored; an SC to the first
    // address fails (and, like any SC, consumes the monitor).
    EXPECT_FALSE(Scheme.emulateStoreCond(M->cpu(0), 0xb000, 1, 4))
        << schemeTraits(Kind).Name;
    Scheme.emulateLoadLink(M->cpu(0), 0xc000, 4);
    EXPECT_TRUE(Scheme.emulateStoreCond(M->cpu(0), 0xc000, 2, 4))
        << schemeTraits(Kind).Name;
  }
}

/// 64-bit LL/SC works under every scheme.
TEST(SchemeCommon, SixtyFourBitExclusives) {
  for (SchemeKind Kind : allSchemeKinds()) {
    auto M = makeMachine(Kind);
    ASSERT_TRUE(bool(M->loadAssembly("_start: halt\n")));
    M->prepareRun();
    AtomicScheme &Scheme = M->scheme();
    M->mem().shadowStore(0xd000, 0x1122334455667788ULL, 8);
    EXPECT_EQ(Scheme.emulateLoadLink(M->cpu(0), 0xd000, 8),
              0x1122334455667788ULL)
        << schemeTraits(Kind).Name;
    EXPECT_TRUE(
        Scheme.emulateStoreCond(M->cpu(0), 0xd000, 0xaabbccddULL, 8))
        << schemeTraits(Kind).Name;
    EXPECT_EQ(M->mem().shadowLoad(0xd000, 8), 0xaabbccddULL);
  }
}

/// PST-MPK: a store to an unrelated page that shares the protection key
/// takes the slow path (key false sharing — the paper's 16-key concern)
/// but does not break the monitor; a store to a key with no monitors is
/// fast-path.
TEST(PstMpk, KeyFalseSharing) {
  auto M = makeMachine(SchemeKind::PstMpk);
  ASSERT_TRUE(bool(M->loadAssembly("_start: halt\n")));
  M->prepareRun();
  AtomicScheme &Scheme = M->scheme();
  VCpu &A = M->cpu(0);
  VCpu &B = M->cpu(1);
  uint64_t PageSize = M->mem().pageSize();

  // A monitors page 1 (key 2). Page 16 maps to the same key (15 usable
  // keys): stores there take the slow path without breaking the monitor.
  uint64_t Monitored = 1 * PageSize + 64;
  uint64_t SameKey = 16 * PageSize + 64;
  uint64_t OtherKey = 2 * PageSize + 64;

  Scheme.emulateLoadLink(A, Monitored, 4);
  Scheme.storeHook(B, SameKey, 7, 4);
  EXPECT_EQ(B.Counters.PageFaultsRecovered, 1u) << "key collision slow path";
  EXPECT_EQ(B.Counters.FalseSharingFaults, 1u);
  Scheme.storeHook(B, OtherKey, 8, 4);
  EXPECT_EQ(B.Counters.PageFaultsRecovered, 1u) << "different key: fast path";
  EXPECT_TRUE(Scheme.emulateStoreCond(A, Monitored, 1, 4))
      << "false sharing must not break the monitor";

  // A conflicting store does break it.
  Scheme.emulateLoadLink(A, Monitored, 4);
  Scheme.storeHook(B, Monitored, 9, 4);
  EXPECT_FALSE(Scheme.emulateStoreCond(A, Monitored, 2, 4));
}

/// PST-MPK uses neither page protection syscalls nor stop-the-world.
TEST(PstMpk, NoExclusivesNoFaults) {
  auto M = makeMachine(SchemeKind::PstMpk, 4);
  ASSERT_TRUE(bool(M->loadAssembly(R"(
_start: la      r1, counter
        li      r4, #300
loop:   cbz     r4, done
retry:  ldxr.w  r2, [r1]
        addi    r2, r2, #1
        stxr.w  r3, r2, [r1]
        cbnz    r3, retry
        addi    r4, r4, #-1
        b       loop
done:   halt
        .align 4096
counter: .word 0
)")));
  uint64_t FaultsBefore = FaultGuard::recoveredFaultCount();
  auto Result = M->run({});
  ASSERT_TRUE(bool(Result)) << Result.error().render();
  EXPECT_EQ(M->mem().shadowLoad(M->program().requiredSymbol("counter"), 4),
            4u * 300u);
  EXPECT_EQ(Result->ExclusiveSections, 0u);
  EXPECT_EQ(FaultGuard::recoveredFaultCount(), FaultsBefore);
}
