//===- tests/MemoryTest.cpp - guest memory and fault guard tests ---------------===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//

#include "mem/FaultGuard.h"
#include "mem/GuestMemory.h"

#include "guest/Assembler.h"

#include <gtest/gtest.h>
#include <sys/mman.h>

using namespace llsc;

namespace {

std::unique_ptr<GuestMemory> makeMem(uint64_t Size = 1 << 20) {
  auto MemOrErr = GuestMemory::create(Size);
  EXPECT_TRUE(bool(MemOrErr)) << MemOrErr.error().render();
  return MemOrErr.take();
}

} // namespace

TEST(GuestMemory, SizeRoundedToPages) {
  auto Mem = makeMem(5000);
  EXPECT_EQ(Mem->size() % hostPageSize(), 0u);
  EXPECT_GE(Mem->size(), 5000u);
}

TEST(GuestMemory, LoadStoreAllSizes) {
  auto Mem = makeMem();
  Mem->store(0x100, 0x1122334455667788ULL, 8);
  EXPECT_EQ(Mem->load(0x100, 8), 0x1122334455667788ULL);
  EXPECT_EQ(Mem->load(0x100, 4), 0x55667788ULL);
  EXPECT_EQ(Mem->load(0x100, 2), 0x7788ULL);
  EXPECT_EQ(Mem->load(0x100, 1), 0x88ULL);
  Mem->store(0x104, 0xaa, 1);
  EXPECT_EQ(Mem->load(0x100, 8), 0x112233aa55667788ULL);
}

TEST(GuestMemory, UnalignedAccess) {
  auto Mem = makeMem();
  Mem->store(0x101, 0xdeadbeef, 4);
  EXPECT_EQ(Mem->load(0x101, 4), 0xdeadbeefULL);
}

TEST(GuestMemory, ShadowAliasesPrimary) {
  auto Mem = makeMem();
  Mem->store(0x200, 42, 8);
  EXPECT_EQ(Mem->shadowLoad(0x200, 8), 42u);
  Mem->shadowStore(0x208, 43, 8);
  EXPECT_EQ(Mem->load(0x208, 8), 43u);
}

TEST(GuestMemory, FastPathWindowTracksPageProtection) {
  auto Mem = makeMem();
  EXPECT_TRUE(Mem->fastPathAllowed());
  uint64_t Epoch0 = Mem->fastPathEpoch();

  // Restricting any page collapses the window and moves the epoch.
  ASSERT_TRUE(Mem->protectPage(3, PROT_READ));
  EXPECT_FALSE(Mem->fastPathAllowed());
  uint64_t Epoch1 = Mem->fastPathEpoch();
  EXPECT_GT(Epoch1, Epoch0);

  // Re-protecting an already-restricted page is not a transition.
  ASSERT_TRUE(Mem->protectPage(3, PROT_NONE));
  EXPECT_EQ(Mem->fastPathEpoch(), Epoch1);

  // Restoring read-write re-opens the window under a fresh epoch.
  ASSERT_TRUE(Mem->protectPage(3, PROT_READ | PROT_WRITE));
  EXPECT_TRUE(Mem->fastPathAllowed());
  EXPECT_GT(Mem->fastPathEpoch(), Epoch1);
}

TEST(GuestMemory, FastPathWindowTracksRemap) {
  auto Mem = makeMem();
  uint64_t Epoch0 = Mem->fastPathEpoch();

  ASSERT_TRUE(Mem->remapPageAway(2));
  EXPECT_FALSE(Mem->fastPathAllowed());

  // Remap back read-only: still restricted (a raw store would fault).
  ASSERT_TRUE(Mem->remapPageBack(2, /*Writable=*/false));
  EXPECT_FALSE(Mem->fastPathAllowed());

  ASSERT_TRUE(Mem->protectPage(2, PROT_READ | PROT_WRITE));
  EXPECT_TRUE(Mem->fastPathAllowed());
  EXPECT_GT(Mem->fastPathEpoch(), Epoch0);

  // Two restricted pages: both must clear before the window re-opens.
  ASSERT_TRUE(Mem->remapPageAway(4));
  ASSERT_TRUE(Mem->protectPage(5, PROT_READ));
  EXPECT_FALSE(Mem->fastPathAllowed());
  ASSERT_TRUE(Mem->remapPageBack(4, /*Writable=*/true));
  EXPECT_FALSE(Mem->fastPathAllowed());
  ASSERT_TRUE(Mem->protectPage(5, PROT_READ | PROT_WRITE));
  EXPECT_TRUE(Mem->fastPathAllowed());
}

TEST(GuestMemory, RelaxedAccessorsMatchAccessorPath) {
  auto Mem = makeMem();
  Mem->store(0x400, 0x0123456789abcdefULL, 8);
  EXPECT_EQ(GuestMemory::loadRelaxed(Mem->primaryBase() + 0x400, 8),
            0x0123456789abcdefULL);
  GuestMemory::storeRelaxed(Mem->primaryBase() + 0x404, 0xfeed, 2);
  EXPECT_EQ(Mem->load(0x404, 2), 0xfeedULL);
  // Unaligned byte-assembly path.
  GuestMemory::storeRelaxed(Mem->primaryBase() + 0x409, 0xcafebabe, 4);
  EXPECT_EQ(Mem->load(0x409, 4), 0xcafebabeULL);
}

TEST(GuestMemory, CompareExchange) {
  auto Mem = makeMem();
  Mem->store(0x300, 10, 4);
  uint64_t Expected = 10;
  EXPECT_TRUE(Mem->compareExchange(0x300, Expected, 20, 4));
  EXPECT_EQ(Mem->load(0x300, 4), 20u);
  Expected = 10; // Stale.
  EXPECT_FALSE(Mem->compareExchange(0x300, Expected, 30, 4));
  EXPECT_EQ(Expected, 20u) << "failed CAS reports the current value";

  Mem->store(0x308, 100, 8);
  Expected = 100;
  EXPECT_TRUE(Mem->compareExchange(0x308, Expected, 200, 8));
  EXPECT_EQ(Mem->load(0x308, 8), 200u);
}

TEST(GuestMemory, FetchAdd) {
  auto Mem = makeMem();
  Mem->store(0x400, 5, 4);
  EXPECT_EQ(Mem->fetchAdd(0x400, 3, 4), 5u);
  EXPECT_EQ(Mem->load(0x400, 4), 8u);
  Mem->store(0x408, 5, 8);
  EXPECT_EQ(Mem->fetchAdd(0x408, static_cast<uint64_t>(-1), 8), 5u);
  EXPECT_EQ(Mem->load(0x408, 8), 4u);
}

TEST(GuestMemory, PrimaryToGuest) {
  auto Mem = makeMem();
  uint64_t GuestAddr = 0;
  EXPECT_TRUE(Mem->primaryToGuest(Mem->primaryPtr(0x1234), GuestAddr));
  EXPECT_EQ(GuestAddr, 0x1234u);
  int Local;
  EXPECT_FALSE(Mem->primaryToGuest(&Local, GuestAddr));
}

TEST(GuestMemory, LoadProgram) {
  auto Mem = makeMem();
  auto ProgOrErr = guest::assemble("_start: halt\n", 0x1000);
  ASSERT_TRUE(bool(ProgOrErr));
  ASSERT_TRUE(bool(Mem->loadProgram(*ProgOrErr)));
  EXPECT_NE(Mem->load(0x1000, 4), 0u);

  // A program that does not fit is rejected.
  auto SmallMem = makeMem(4096);
  auto BigOrErr = guest::assemble("_start: halt\n.space 8192\n", 0x0);
  ASSERT_TRUE(bool(BigOrErr));
  EXPECT_FALSE(bool(SmallMem->loadProgram(*BigOrErr)));
}

TEST(FaultGuard, StoreToReadOnlyPageRecovers) {
  auto Mem = makeMem();
  uint64_t Page = 4; // Page index.
  uint64_t Addr = Page * Mem->pageSize() + 24;
  Mem->store(Addr, 1, 8);

  ASSERT_TRUE(Mem->protectPage(Page, PROT_READ));
  uint64_t FaultsBefore = FaultGuard::recoveredFaultCount();
  FaultResult Result = FaultGuard::tryStore(*Mem, Addr, 99, 8);
  EXPECT_TRUE(Result.Faulted);
  EXPECT_EQ(FaultGuard::recoveredFaultCount(), FaultsBefore + 1);
  EXPECT_EQ(Mem->load(Addr, 8), 1u) << "faulted store must not happen";
  // Reads still work on a read-only page.
  FaultResult Load = FaultGuard::tryLoad(*Mem, Addr, 8);
  EXPECT_FALSE(Load.Faulted);
  EXPECT_EQ(Load.LoadedValue, 1u);

  ASSERT_TRUE(Mem->protectPage(Page, PROT_READ | PROT_WRITE));
  Result = FaultGuard::tryStore(*Mem, Addr, 99, 8);
  EXPECT_FALSE(Result.Faulted);
  EXPECT_EQ(Mem->load(Addr, 8), 99u);
}

TEST(FaultGuard, RemappedPageFaultsOnLoadAndStore) {
  auto Mem = makeMem();
  uint64_t Page = 7;
  uint64_t Addr = Page * Mem->pageSize();
  Mem->store(Addr, 1234, 8);

  ASSERT_TRUE(Mem->remapPageAway(Page));
  EXPECT_TRUE(FaultGuard::tryLoad(*Mem, Addr, 8).Faulted);
  EXPECT_TRUE(FaultGuard::tryStore(*Mem, Addr, 1, 8).Faulted);
  // The shadow mapping still reads and writes the real data.
  EXPECT_EQ(Mem->shadowLoad(Addr, 8), 1234u);
  Mem->shadowStore(Addr, 5678, 8);

  ASSERT_TRUE(Mem->remapPageBack(Page, /*Writable=*/true));
  FaultResult Load = FaultGuard::tryLoad(*Mem, Addr, 8);
  EXPECT_FALSE(Load.Faulted);
  EXPECT_EQ(Load.LoadedValue, 5678u) << "data survives the remap cycle";
}

TEST(FaultGuard, RemapBackReadOnly) {
  auto Mem = makeMem();
  uint64_t Page = 9;
  uint64_t Addr = Page * Mem->pageSize();
  ASSERT_TRUE(Mem->remapPageAway(Page));
  ASSERT_TRUE(Mem->remapPageBack(Page, /*Writable=*/false));
  EXPECT_FALSE(FaultGuard::tryLoad(*Mem, Addr, 8).Faulted);
  EXPECT_TRUE(FaultGuard::tryStore(*Mem, Addr, 1, 8).Faulted)
      << "read-only protection is applied atomically with the remap";
  ASSERT_TRUE(Mem->protectPage(Page, PROT_READ | PROT_WRITE));
}

TEST(FaultGuard, FaultAddressReported) {
  auto Mem = makeMem();
  uint64_t Page = 11;
  uint64_t Addr = Page * Mem->pageSize() + 128;
  ASSERT_TRUE(Mem->protectPage(Page, PROT_READ));
  FaultResult Result = FaultGuard::tryStore(*Mem, Addr, 7, 4);
  ASSERT_TRUE(Result.Faulted);
  uint64_t GuestAddr = 0;
  EXPECT_TRUE(Mem->primaryToGuest(
      reinterpret_cast<void *>(Result.FaultHostAddr), GuestAddr));
  EXPECT_EQ(GuestAddr, Addr);
  ASSERT_TRUE(Mem->protectPage(Page, PROT_READ | PROT_WRITE));
}
