//===- tests/JitTest.cpp - tier-0 vs tier-1 differential suite -------------------===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// The tier-1 JIT (engine/jit/, docs/JIT.md) is only allowed to be faster,
/// never different: every test here runs the same guest program on two
/// Machines — one with the JIT disabled (pure tier-0 interpreter) and one
/// with JitHotThreshold = 0 (every block compiles on first dispatch) — and
/// requires byte-identical final guest state plus identical event counters
/// modulo the tier bookkeeping itself (engine.jit.*, engine.jmpcache.*,
/// and the timing-dependent excl.wait_ns / excl.safepoint_parks).
///
/// Also covered: the PST fastmem fault→deopt path, deopt/re-tier across a
/// runtime scheme hot-swap (setScheme mid-run flushes the code cache), the
/// block-budget contract under chained execution, and the W^X policy of
/// the dual-mapped code cache (/proc/self/maps must never show rwx).
///
//===----------------------------------------------------------------------===//

#include "core/Machine.h"
#include "engine/jit/Jit.h"
#include "support/Random.h"
#include "support/StringUtils.h"

#include <gtest/gtest.h>

#include <array>
#include <chrono>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

using namespace llsc;

namespace {

/// Counters that legitimately differ between tiers (or across any two
/// runs): the jit.* tier counters themselves, the jump cache the JIT's
/// chained code never consults, timing-dependent waits, and the adaptive
/// controller's sampling.
bool tierDependent(const std::string &Name) {
  return Name.rfind("engine.jit.", 0) == 0 ||
         Name.rfind("engine.jmpcache.", 0) == 0 ||
         Name.rfind("adaptive.", 0) == 0 || Name == "excl.wait_ns" ||
         Name == "excl.safepoint_parks";
}

std::map<std::string, uint64_t> counterMap(const EventCounters &Events) {
  std::map<std::string, uint64_t> Map;
  Events.forEach([&](const char *Name, uint64_t Value) {
    if (!tierDependent(Name))
      Map[Name] = Value;
  });
  return Map;
}

std::unique_ptr<Machine> makeMachine(SchemeKind Kind, bool Jit,
                                     unsigned Threads = 1) {
  MachineConfig Config;
  Config.Scheme = Kind;
  Config.NumThreads = Threads;
  Config.MemBytes = 8ULL << 20;
  Config.ForceSoftHtm = true;
  Config.Jit = Jit;
  Config.JitHotThreshold = 0; // Compile on first dispatch when enabled.
  auto MachineOrErr = Machine::create(Config);
  EXPECT_TRUE(bool(MachineOrErr)) << MachineOrErr.error().render();
  return MachineOrErr.take();
}

/// Whether this build/host actually runs tier-1 (x86-64 Linux, non-TSAN,
/// LLSC_NO_JIT unset). Differential tests still pass where it is off —
/// they just degenerate to tier-0 vs tier-0 — but tier-1-specific
/// assertions must be skipped.
bool jitAvailable() {
  auto M = makeMachine(SchemeKind::PicoCas, /*Jit=*/true);
  return M && M->jitBackend() != nullptr;
}

/// A random program in the llsc-fuzz style: a counted loop whose body
/// mixes ALU work, 1/2/4/8-byte memory traffic into a scratch page, and
/// LL/SC pairs — several blocks per program, so compilation, chaining and
/// the block epilogue all get exercised. Deterministic per seed and
/// single-threaded, so *all* counters must match across tiers.
std::string randomProgram(Rng &R) {
  std::string Asm = "_start:\n        la r10, scratch\n        li r11, #6\n"
                    "loop:\n";
  unsigned Ops = 20 + static_cast<unsigned>(R.nextBelow(30));
  for (unsigned N = 0; N < Ops; ++N) {
    switch (R.nextBelow(7)) {
    case 0:
      Asm += formatString("        addi r%u, r%u, #%lld\n",
                          1 + (unsigned)R.nextBelow(8),
                          1 + (unsigned)R.nextBelow(8),
                          (long long)R.nextInRange(0, 200) - 100);
      break;
    case 1:
      Asm += formatString("        mul r%u, r%u, r%u\n",
                          1 + (unsigned)R.nextBelow(8),
                          1 + (unsigned)R.nextBelow(8),
                          1 + (unsigned)R.nextBelow(8));
      break;
    case 2:
      Asm += formatString("        std r%u, [r10, #%u]\n",
                          1 + (unsigned)R.nextBelow(8),
                          8 * (unsigned)R.nextBelow(16));
      break;
    case 3:
      Asm += formatString("        ldd r%u, [r10, #%u]\n",
                          1 + (unsigned)R.nextBelow(8),
                          8 * (unsigned)R.nextBelow(16));
      break;
    case 4:
      Asm += formatString("        eori r%u, r%u, #%llu\n",
                          1 + (unsigned)R.nextBelow(8),
                          1 + (unsigned)R.nextBelow(8),
                          (unsigned long long)R.nextBelow(8191));
      break;
    case 5:
      Asm += formatString("        stb r%u, [r10, #%u]\n",
                          1 + (unsigned)R.nextBelow(8),
                          (unsigned)R.nextBelow(128));
      break;
    default: {
      unsigned Val = 1 + (unsigned)R.nextBelow(8);
      const char *Suffix = R.nextBool(0.5) ? "d" : "w";
      Asm += formatString("        ldxr.%s  r%u, [r10]\n"
                          "        addi    r%u, r%u, #1\n"
                          "        stxr.%s  r9, r%u, [r10]\n",
                          Suffix, Val, Val, Val, Suffix, Val);
      break;
    }
    }
  }
  Asm += "        addi r11, r11, #-1\n        cbnz r11, loop\n"
         "        halt\n        .align 4096\nscratch: .space 256\n";
  return Asm;
}

struct RunSnapshot {
  std::array<uint64_t, guest::NumGuestRegs> Regs;
  std::vector<uint8_t> Scratch;
  std::map<std::string, uint64_t> Counters;
  uint64_t ExecutedBlocks;
  uint64_t ExecutedInsts;
  EventCounters Events;
};

RunSnapshot runOnce(Machine &M, const std::string &Asm) {
  RunSnapshot Snap{};
  EXPECT_TRUE(bool(M.loadAssembly(Asm)));
  auto Result = M.run({});
  EXPECT_TRUE(bool(Result)) << Result.error().render();
  if (!Result)
    return Snap;
  EXPECT_TRUE(Result->AllHalted);
  std::copy_n(std::begin(M.cpu(0).Regs), guest::NumGuestRegs,
              Snap.Regs.begin());
  uint64_t Scratch = M.program().requiredSymbol("scratch");
  Snap.Scratch.resize(256);
  for (unsigned B = 0; B < 256; ++B)
    Snap.Scratch[B] = static_cast<uint8_t>(M.mem().shadowLoad(Scratch + B, 1));
  Snap.Counters = counterMap(Result->Events);
  Snap.ExecutedBlocks = Result->Total.ExecutedBlocks;
  Snap.ExecutedInsts = Result->Total.ExecutedInsts;
  Snap.Events = Result->Events;
  return Snap;
}

} // namespace

// --- Smoke: the JIT actually runs, chains, and agrees -----------------------

TEST(JitSmoke, CompilesChainsAndCounts) {
  if (!jitAvailable())
    GTEST_SKIP() << "tier-1 JIT not available on this build/host";

  auto M = makeMachine(SchemeKind::Hst, /*Jit=*/true);
  ASSERT_TRUE(bool(M->loadAssembly(R"(
_start: la      r1, counter
        li      r4, #1000
loop:   cbz     r4, done
retry:  ldxr.d  r2, [r1]
        addi    r2, r2, #1
        stxr.d  r3, r2, [r1]
        cbnz    r3, retry
        addi    r4, r4, #-1
        b       loop
done:   halt
        .align 4096
counter: .quad 0
)")));
  auto Result = M->run({});
  ASSERT_TRUE(bool(Result)) << Result.error().render();
  EXPECT_TRUE(Result->AllHalted);
  EXPECT_EQ(M->mem().shadowLoad(M->program().requiredSymbol("counter"), 8),
            1000u);
  EXPECT_GT(Result->Events.JitBlocksCompiled, 0u);
  EXPECT_GT(Result->Events.JitEnters, 0u);
  // The loop back-edges are static exits: they must have been patched
  // into direct jumps, so re-entering the trampoline stays rare.
  EXPECT_GT(Result->Events.JitChainPatches, 0u);
  EXPECT_LT(Result->Events.JitEnters, Result->Total.ExecutedBlocks / 4);
  EXPECT_EQ(Result->Events.JitCompileBails, 0u);
  EXPECT_GT(M->jitBackend()->codeBytesUsed(), 0u);
}

// --- Differential: tier-0 vs tier-1, per scheme kind ------------------------

class JitDifferentialTest : public ::testing::TestWithParam<SchemeKind> {};

INSTANTIATE_TEST_SUITE_P(Schemes, JitDifferentialTest,
                         ::testing::ValuesIn(allSchemeKinds()),
                         [](const ::testing::TestParamInfo<SchemeKind> &Info) {
                           std::string Name = schemeTraits(Info.param).Name;
                           for (char &C : Name)
                             if (C == '-')
                               C = '_';
                           return Name;
                         });

TEST_P(JitDifferentialTest, RandomProgramsMatchInterpreterExactly) {
  SchemeKind Kind = GetParam();
  Rng R(0x71e4 + static_cast<uint64_t>(Kind));
  for (int Trial = 0; Trial < 8; ++Trial) {
    std::string Asm = randomProgram(R);

    auto Tier0 = makeMachine(Kind, /*Jit=*/false);
    RunSnapshot S0 = runOnce(*Tier0, Asm);
    auto Tier1 = makeMachine(Kind, /*Jit=*/true);
    RunSnapshot S1 = runOnce(*Tier1, Asm);

    EXPECT_EQ(S0.Regs, S1.Regs)
        << schemeTraits(Kind).Name << " trial " << Trial;
    EXPECT_EQ(S0.Scratch, S1.Scratch)
        << schemeTraits(Kind).Name << " trial " << Trial;
    EXPECT_EQ(S0.ExecutedBlocks, S1.ExecutedBlocks)
        << schemeTraits(Kind).Name << " trial " << Trial;
    EXPECT_EQ(S0.ExecutedInsts, S1.ExecutedInsts)
        << schemeTraits(Kind).Name << " trial " << Trial;
    EXPECT_EQ(S0.Counters, S1.Counters)
        << schemeTraits(Kind).Name << " trial " << Trial
        << ": tier-1 diverges from the interpreter's bookkeeping";

    // HTM machines deliberately stay tier-0 (the gate in Engine::runLoop);
    // every other scheme must actually have run emitted code here.
    if (Tier1->jitBackend() && !Tier1->htm()) {
      EXPECT_GT(S1.Events.JitEnters, 0u) << schemeTraits(Kind).Name;
      EXPECT_GT(S1.Events.JitBlocksCompiled, 0u) << schemeTraits(Kind).Name;
    }
  }
}

TEST_P(JitDifferentialTest, ContendedCounterExactUnderThreads) {
  SchemeKind Kind = GetParam();
  constexpr unsigned Threads = 4;
  constexpr uint64_t Iters = 300;
  const std::string Asm = R"(
_start: la      r1, counter
        li      r4, #300
loop:   cbz     r4, done
retry:  ldxr.d  r2, [r1]
        addi    r2, r2, #1
        stxr.d  r3, r2, [r1]
        cbnz    r3, retry
        addi    r4, r4, #-1
        b       loop
done:   halt
        .align 4096
counter: .quad 0
)";
  for (bool Jit : {false, true}) {
    auto M = makeMachine(Kind, Jit, Threads);
    ASSERT_TRUE(bool(M->loadAssembly(Asm)));
    auto Result = M->run({});
    ASSERT_TRUE(bool(Result))
        << schemeTraits(Kind).Name << ": " << Result.error().render();
    EXPECT_TRUE(Result->AllHalted) << schemeTraits(Kind).Name;
    EXPECT_EQ(M->mem().shadowLoad(M->program().requiredSymbol("counter"), 8),
              Threads * Iters)
        << schemeTraits(Kind).Name << (Jit ? " tier-1" : " tier-0");
    // Bookkeeping invariant that survives nondeterministic interleaving:
    // every loop iteration retires exactly one successful SC.
    EXPECT_EQ(Result->Events.ScSucceeded, Threads * Iters)
        << schemeTraits(Kind).Name << (Jit ? " tier-1" : " tier-0");
    if (Jit && M->jitBackend() && !M->htm()) {
      EXPECT_GT(Result->Events.JitEnters, 0u) << schemeTraits(Kind).Name;
    }
  }
}

// --- PST: fault-driven deopt -------------------------------------------------

TEST(JitDeopt, PstFaultsDeoptToInterpreter) {
  if (!jitAvailable())
    GTEST_SKIP() << "tier-1 JIT not available on this build/host";

  // Deterministic single-threaded store-between: the LL protects the
  // page, so the plain store inside the window faults (storeHook ->
  // FaultGuard recovery, own monitor survives) and the protect/unprotect
  // mprotect pair bumps the fastmem epoch every iteration. The retry
  // block contains a non-instrumented plain load, so its jitted form
  // carries the epoch entry check and must deopt — never read through a
  // stale fastmem window.
  auto M = makeMachine(SchemeKind::Pst, /*Jit=*/true);
  ASSERT_TRUE(bool(M->loadAssembly(R"(
_start: la      r1, counter
        la      r6, noise
        li      r4, #100
loop:   cbz     r4, done
retry:  ldxr.d  r2, [r1]
        addi    r2, r2, #1
        std     r2, [r6]
        ldd     r5, [r6]
        stxr.d  r3, r2, [r1]
        cbnz    r3, retry
        addi    r4, r4, #-1
        b       loop
done:   halt
        .align 4096
counter: .quad 0
noise:   .quad 0
)")));
  auto Result = M->run({});
  ASSERT_TRUE(bool(Result)) << Result.error().render();
  EXPECT_TRUE(Result->AllHalted);
  EXPECT_EQ(M->mem().shadowLoad(M->program().requiredSymbol("counter"), 8),
            100u);
  EXPECT_EQ(M->mem().shadowLoad(M->program().requiredSymbol("noise"), 8),
            100u);
  EXPECT_EQ(Result->Events.ScSucceeded, 100u);
  EXPECT_GT(Result->RecoveredFaults, 0u);
  EXPECT_GT(Result->Events.JitDeopts, 0u);
}

// --- Hot-swap: setScheme mid-run flushes and re-tiers ------------------------

TEST(JitHotSwap, SetSchemeMidRunStaysCorrectAndRetiers) {
  if (!jitAvailable())
    GTEST_SKIP() << "tier-1 JIT not available on this build/host";

  // The guest increments a counter until the host raises a flag; the host
  // hot-swaps HST -> PST while jitted code is running. Correctness
  // invariant that survives the swap: final counter == total successful
  // SCs, i.e. no SC was lost or double-applied across the flush.
  auto M = makeMachine(SchemeKind::Hst, /*Jit=*/true, /*Threads=*/2);
  ASSERT_TRUE(bool(M->loadAssembly(R"(
_start: la      r1, counter
        la      r5, flag
loop:   ldxr.d  r2, [r1]
        addi    r2, r2, #1
        stxr.d  r3, r2, [r1]
        cbnz    r3, loop
        ldd     r4, [r5]
        cbz     r4, loop
        halt
        .align 4096
counter: .quad 0
flag:    .quad 0
)")));

  ErrorOr<RunResult> Result = makeError("not run");
  std::thread Runner([&] { Result = M->run({}); });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  M->setScheme(createScheme(SchemeKind::Pst));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  M->mem().shadowStore(M->program().requiredSymbol("flag"), 1, 8);
  Runner.join();

  ASSERT_TRUE(bool(Result)) << Result.error().render();
  EXPECT_TRUE(Result->AllHalted);
  EXPECT_EQ(Result->FinalSchemeKind, SchemeKind::Pst);
  uint64_t Counter =
      M->mem().shadowLoad(M->program().requiredSymbol("counter"), 8);
  EXPECT_EQ(Counter, Result->Events.ScSucceeded);
  EXPECT_GT(Counter, 0u);
  EXPECT_GT(Result->Events.JitEnters, 0u);
  EXPECT_GT(Result->Events.JitBlocksCompiled, 0u);
}

// --- Budgets: chained execution must still honor per-vCPU block limits -------

TEST(JitBudget, BlockBudgetStopsChainedExecution) {
  if (!jitAvailable())
    GTEST_SKIP() << "tier-1 JIT not available on this build/host";

  MachineConfig Config;
  Config.Scheme = SchemeKind::PicoCas;
  Config.NumThreads = 1;
  Config.MemBytes = 4ULL << 20;
  Config.JitHotThreshold = 0;
  Config.MaxBlocksPerCpu = 1000;
  auto M = Machine::create(Config).take();
  ASSERT_TRUE(bool(M->loadAssembly("_start: addi r1, r1, #1\n        b _start\n")));
  auto Result = M->run({});
  ASSERT_TRUE(bool(Result)) << Result.error().render();
  EXPECT_FALSE(Result->AllHalted);
  // Chained jitted code must not overrun the budget: the chain budget is
  // derived from MaxBlocksPerCpu, so the stop lands on (or within one
  // trampoline re-entry of) the limit.
  EXPECT_GE(Result->Total.ExecutedBlocks, 1000u);
  EXPECT_LE(Result->Total.ExecutedBlocks, 1010u);
}

// --- W^X: the code cache must never be writable and executable at once -------

TEST(JitWx, NoRwxMappingsWhileJitLive) {
  if (!jitAvailable())
    GTEST_SKIP() << "tier-1 JIT not available on this build/host";

  // Keep a machine with installed code alive while scanning, so the code
  // cache mappings are present in the table.
  auto M = makeMachine(SchemeKind::Hst, /*Jit=*/true);
  ASSERT_TRUE(bool(M->loadAssembly(
      "_start: li r2, #64\nloop: addi r1, r1, #1\n        addi r2, r2, #-1\n"
      "        cbnz r2, loop\n        halt\n")));
  auto Result = M->run({});
  ASSERT_TRUE(bool(Result)) << Result.error().render();
  ASSERT_GT(Result->Events.JitBlocksCompiled, 0u);

  std::ifstream Maps("/proc/self/maps");
  ASSERT_TRUE(Maps.is_open());
  std::string Line;
  while (std::getline(Maps, Line))
    EXPECT_EQ(Line.find("rwx"), std::string::npos)
        << "writable+executable mapping: " << Line;
}
