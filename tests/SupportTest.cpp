//===- tests/SupportTest.cpp - support library unit tests ---------------------===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/BitUtils.h"
#include "support/CommandLine.h"
#include "support/Random.h"
#include "support/Stats.h"
#include "support/StringUtils.h"
#include "support/Table.h"

#include "support/Error.h"
#include "support/Logging.h"
#include "support/Timing.h"

#include <atomic>
#include <gtest/gtest.h>
#include <memory>

using namespace llsc;

TEST(BitUtils, PowerOfTwo) {
  EXPECT_FALSE(isPowerOf2(0));
  EXPECT_TRUE(isPowerOf2(1));
  EXPECT_TRUE(isPowerOf2(2));
  EXPECT_FALSE(isPowerOf2(3));
  EXPECT_TRUE(isPowerOf2(1ULL << 40));
  EXPECT_FALSE(isPowerOf2((1ULL << 40) + 1));
}

TEST(BitUtils, AlignTo) {
  EXPECT_EQ(alignTo(0, 8), 0u);
  EXPECT_EQ(alignTo(1, 8), 8u);
  EXPECT_EQ(alignTo(8, 8), 8u);
  EXPECT_EQ(alignTo(4097, 4096), 8192u);
  EXPECT_EQ(alignDown(4097, 4096), 4096u);
}

TEST(BitUtils, SignExtend) {
  EXPECT_EQ(signExtend(0x1fff, 14), 0x1fff);
  EXPECT_EQ(signExtend(0x2000, 14), -8192);
  EXPECT_EQ(signExtend(0x3fff, 14), -1);
  EXPECT_EQ(signExtend(0xff, 8), -1);
  EXPECT_EQ(signExtend(0x7f, 8), 127);
}

TEST(BitUtils, Fits) {
  EXPECT_TRUE(fitsSigned(8191, 14));
  EXPECT_FALSE(fitsSigned(8192, 14));
  EXPECT_TRUE(fitsSigned(-8192, 14));
  EXPECT_FALSE(fitsSigned(-8193, 14));
  EXPECT_TRUE(fitsUnsigned(0xffff, 16));
  EXPECT_FALSE(fitsUnsigned(0x10000, 16));
}

TEST(StringUtils, Trim) {
  EXPECT_EQ(trim("  hello  "), "hello");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t\n"), "");
}

TEST(StringUtils, Split) {
  auto Pieces = split("a, b , c", ',');
  ASSERT_EQ(Pieces.size(), 3u);
  EXPECT_EQ(Pieces[0], "a");
  EXPECT_EQ(Pieces[1], "b");
  EXPECT_EQ(Pieces[2], "c");
}

TEST(StringUtils, SplitWhitespace) {
  auto Tokens = splitWhitespace("  ldr   r1,  [r2] ");
  ASSERT_EQ(Tokens.size(), 3u);
  EXPECT_EQ(Tokens[0], "ldr");
}

TEST(StringUtils, ParseInteger) {
  EXPECT_EQ(parseInteger("42").value(), 42);
  EXPECT_EQ(parseInteger("-42").value(), -42);
  EXPECT_EQ(parseInteger("0x10").value(), 16);
  EXPECT_EQ(parseInteger("0b101").value(), 5);
  EXPECT_EQ(parseInteger("1_000").value(), 1000);
  EXPECT_FALSE(parseInteger("").has_value());
  EXPECT_FALSE(parseInteger("4x2").has_value());
  EXPECT_FALSE(parseInteger("0xg").has_value());
}

TEST(Stats, Geomean) {
  EXPECT_DOUBLE_EQ(geometricMean({4.0, 1.0}), 2.0);
  EXPECT_DOUBLE_EQ(geometricMean({}), 0.0);
  EXPECT_NEAR(geometricMean({1.25, 3.21}), 2.0032, 0.01);
}

TEST(Stats, MinMaxPercentile) {
  std::vector<double> Values = {3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(minOf(Values), 1.0);
  EXPECT_DOUBLE_EQ(maxOf(Values), 3.0);
  EXPECT_DOUBLE_EQ(percentile(Values, 50), 2.0);
}

TEST(Stats, CounterRegistry) {
  auto *Counter = CounterRegistry::instance().counter("test.counter");
  Counter->fetch_add(3);
  EXPECT_GE(CounterRegistry::instance().snapshot()["test.counter"], 3u);
  CounterRegistry::instance().resetAll();
  EXPECT_EQ(CounterRegistry::instance().snapshot()["test.counter"], 0u);
}

TEST(Random, Deterministic) {
  Rng A(123), B(123);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Random, Bounds) {
  Rng R(7);
  for (int I = 0; I < 1000; ++I) {
    uint64_t V = R.nextInRange(5, 10);
    EXPECT_GE(V, 5u);
    EXPECT_LE(V, 10u);
  }
}

TEST(Table, RendersAlignedAscii) {
  Table T({"bench", "1", "2"});
  T.addRow({"blackscholes", "1.00", "1.95"});
  std::string Out = T.renderAscii();
  EXPECT_NE(Out.find("blackscholes"), std::string::npos);
  EXPECT_NE(Out.find("| bench"), std::string::npos);
  EXPECT_EQ(T.numRows(), 1u);
}

TEST(Table, RendersCsv) {
  Table T({"a", "b"});
  T.addRow({"x", "1"});
  EXPECT_EQ(T.renderCsv(), "a,b\nx,1\n");
}

TEST(CommandLine, ParsesFlags) {
  ArgParser Parser("test");
  int64_t *Threads = Parser.addInt("threads", 4, "thread count");
  std::string *Scheme = Parser.addString("scheme", "hst", "scheme");
  bool *Verbose = Parser.addBool("verbose", false, "verbosity");

  const char *Argv[] = {"prog", "--threads=16", "--scheme", "pst",
                        "--verbose"};
  Parser.parse(5, const_cast<char **>(Argv));
  EXPECT_EQ(*Threads, 16);
  EXPECT_EQ(*Scheme, "pst");
  EXPECT_TRUE(*Verbose);
}

TEST(CommandLine, BoolNegation) {
  ArgParser Parser("test");
  bool *Flag = Parser.addBool("opt", true, "optimize");
  const char *Argv[] = {"prog", "--no-opt"};
  Parser.parse(2, const_cast<char **>(Argv));
  EXPECT_FALSE(*Flag);
}

TEST(Error, RenderWithLine) {
  Error Plain("bad things");
  EXPECT_EQ(Plain.render(), "bad things");
  Error WithLine("bad things", 12);
  EXPECT_EQ(WithLine.render(), "line 12: bad things");
}

TEST(Error, MakeErrorFormats) {
  Error Err = makeError("value %d out of range [%s]", 42, "x");
  EXPECT_EQ(Err.message(), "value 42 out of range [x]");
}

TEST(ErrorOr, ValueAndErrorPaths) {
  ErrorOr<int> Good(7);
  ASSERT_TRUE(bool(Good));
  EXPECT_EQ(*Good, 7);
  EXPECT_EQ(Good.take(), 7);

  ErrorOr<int> Bad(Error("nope"));
  ASSERT_FALSE(bool(Bad));
  EXPECT_EQ(Bad.error().message(), "nope");
}

TEST(ErrorOr, MoveOnlyPayload) {
  ErrorOr<std::unique_ptr<int>> Ptr(std::make_unique<int>(5));
  ASSERT_TRUE(bool(Ptr));
  std::unique_ptr<int> Owned = Ptr.take();
  EXPECT_EQ(*Owned, 5);
}

TEST(Logging, LevelGating) {
  LogLevel Saved = getLogLevel();
  setLogLevel(LogLevel::Error);
  EXPECT_TRUE(logEnabled(LogLevel::Error));
  EXPECT_FALSE(logEnabled(LogLevel::Debug));
  setLogLevel(LogLevel::Trace);
  EXPECT_TRUE(logEnabled(LogLevel::Trace));
  setLogLevel(Saved);
}

TEST(Timing, MonotonicAndStopwatch) {
  uint64_t A = monotonicNanos();
  uint64_t B = monotonicNanos();
  EXPECT_GE(B, A);

  Stopwatch Watch;
  Watch.start();
  for (int Spin = 0; Spin < 10000; ++Spin)
    std::atomic_signal_fence(std::memory_order_seq_cst);
  Watch.stop();
  EXPECT_GT(Watch.elapsedNanos(), 0u);
  double Seconds = Watch.elapsedSeconds();
  EXPECT_GT(Seconds, 0.0);
  Watch.reset();
  EXPECT_EQ(Watch.elapsedNanos(), 0u);
}

TEST(Timing, ScopedTimerAccumulates) {
  uint64_t Accumulator = 0;
  {
    ScopedTimer Timer(Accumulator);
    for (int Spin = 0; Spin < 1000; ++Spin)
      std::atomic_signal_fence(std::memory_order_seq_cst);
  }
  EXPECT_GT(Accumulator, 0u);
}

TEST(StringUtils, FormatString) {
  EXPECT_EQ(formatString("%s-%d", "a", 3), "a-3");
  EXPECT_EQ(formatString("%%"), "%");
}

TEST(StringUtils, StartsWithAndLower) {
  EXPECT_TRUE(startsWith("pico-cas", "pico"));
  EXPECT_FALSE(startsWith("pico", "pico-cas"));
  EXPECT_EQ(toLower("HST-Weak"), "hst-weak");
  EXPECT_TRUE(equalsLower("ABA", "aba"));
  EXPECT_FALSE(equalsLower("aba", "ab"));
}
