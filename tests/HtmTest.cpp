//===- tests/HtmTest.cpp - HTM runtime tests ------------------------------------===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//

#include "htm/Htm.h"

#include <atomic>
#include <gtest/gtest.h>
#include <thread>
#include <vector>

using namespace llsc;

namespace {

SoftHtmConfig smallConfig() {
  SoftHtmConfig Config;
  Config.MaxThreads = 8;
  Config.BeginSpinLimit = 64;
  Config.CapacityLimit = 100;
  return Config;
}

} // namespace

TEST(SoftHtm, BeginCommit) {
  auto Htm = createSoftHtm(smallConfig());
  EXPECT_EQ(Htm->begin(0, 0x1000), TxStatus::Started);
  EXPECT_TRUE(Htm->inTransaction(0));
  EXPECT_TRUE(Htm->commit(0));
  EXPECT_FALSE(Htm->inTransaction(0));
  HtmStats Stats = Htm->stats();
  EXPECT_EQ(Stats.Begins, 1u);
  EXPECT_EQ(Stats.Commits, 1u);
}

TEST(SoftHtm, Abort) {
  auto Htm = createSoftHtm(smallConfig());
  ASSERT_EQ(Htm->begin(0, 0x1000), TxStatus::Started);
  Htm->abort(0);
  EXPECT_FALSE(Htm->inTransaction(0));
  // The global lock must be free again.
  EXPECT_EQ(Htm->begin(1, 0x2000), TxStatus::Started);
  EXPECT_TRUE(Htm->commit(1));
}

TEST(SoftHtm, ConflictWhileHeld) {
  auto Htm = createSoftHtm(smallConfig());
  ASSERT_EQ(Htm->begin(0, 0x1000), TxStatus::Started);
  // Another thread's transaction cannot start: conflict abort.
  EXPECT_EQ(Htm->begin(1, 0x2000), TxStatus::AbortConflict);
  EXPECT_TRUE(Htm->commit(0));
  EXPECT_EQ(Htm->stats().ConflictAborts, 1u);
}

TEST(SoftHtm, StoreDoomsWatchingTransaction) {
  auto Htm = createSoftHtm(smallConfig());
  ASSERT_EQ(Htm->begin(0, 0x1000), TxStatus::Started);
  Htm->notifyStore(0x1004); // Same 8-byte granule as 0x1000.
  EXPECT_FALSE(Htm->commit(0)) << "doomed transaction must not commit";
  EXPECT_EQ(Htm->stats().StoreDooms, 1u);
}

TEST(SoftHtm, UnrelatedStoreDoesNotDoom) {
  auto Htm = createSoftHtm(smallConfig());
  ASSERT_EQ(Htm->begin(0, 0x1000), TxStatus::Started);
  Htm->notifyStore(0x5000);
  EXPECT_TRUE(Htm->commit(0));
}

TEST(SoftHtm, FootprintCapacityAbort) {
  auto Htm = createSoftHtm(smallConfig()); // CapacityLimit = 100.
  ASSERT_EQ(Htm->begin(0, 0x1000), TxStatus::Started);
  Htm->noteFootprint(0, 50);
  Htm->noteFootprint(0, 49);
  EXPECT_TRUE(Htm->inTransaction(0));
  Htm->noteFootprint(0, 10); // Crosses the limit.
  EXPECT_FALSE(Htm->commit(0));
  EXPECT_EQ(Htm->stats().CapacityAborts, 1u);
}

TEST(SoftHtm, FootprintIgnoredOutsideTransaction) {
  auto Htm = createSoftHtm(smallConfig());
  Htm->noteFootprint(0, 1000000); // Must not crash or count.
  EXPECT_EQ(Htm->stats().CapacityAborts, 0u);
}

TEST(SoftHtm, ResetStats) {
  auto Htm = createSoftHtm(smallConfig());
  ASSERT_EQ(Htm->begin(0, 0), TxStatus::Started);
  EXPECT_TRUE(Htm->commit(0));
  Htm->resetStats();
  HtmStats Stats = Htm->stats();
  EXPECT_EQ(Stats.Begins, 0u);
  EXPECT_EQ(Stats.Commits, 0u);
}

/// Contention: concurrent small transactions must all eventually commit
/// and maintain a consistent shared counter.
TEST(SoftHtm, ConcurrentTransactionsSerialize) {
  auto Htm = createSoftHtm(smallConfig());
  std::atomic<uint64_t> Aborts{0};
  uint64_t Counter = 0; // Deliberately non-atomic: protected by the HTM.

  constexpr int ThreadCount = 4;
  constexpr int PerThread = 2000;
  std::vector<std::thread> Threads;
  for (int T = 0; T < ThreadCount; ++T)
    Threads.emplace_back([&, T] {
      for (int I = 0; I < PerThread; ++I) {
        while (Htm->begin(static_cast<unsigned>(T), 0x1000) !=
               TxStatus::Started) {
          Aborts.fetch_add(1, std::memory_order_relaxed);
          std::this_thread::yield();
        }
        ++Counter;
        ASSERT_TRUE(Htm->commit(static_cast<unsigned>(T)));
      }
    });
  for (std::thread &Thread : Threads)
    Thread.join();

  EXPECT_EQ(Counter, static_cast<uint64_t>(ThreadCount) * PerThread);
}

TEST(HardwareHtm, ProbeIsStable) {
  // Whatever the answer, it must be consistent and non-crashing.
  bool First = hardwareHtmUsable();
  EXPECT_EQ(hardwareHtmUsable(), First);
  auto Hw = createHardwareHtm(4);
  EXPECT_EQ(Hw != nullptr, First);
  if (Hw) {
    // One full transaction cycle must work on usable hardware.
    bool Committed = false;
    for (int Attempt = 0; Attempt < 100 && !Committed; ++Attempt)
      if (Hw->begin(0, 0) == TxStatus::Started)
        Committed = Hw->commit(0);
    EXPECT_TRUE(Committed);
  }
}

TEST(HtmFactory, BestFallsBackToSoft) {
  auto Htm = createBestHtm(smallConfig());
  ASSERT_NE(Htm, nullptr);
  // Must be operational either way.
  ASSERT_EQ(Htm->begin(0, 0), TxStatus::Started);
  EXPECT_TRUE(Htm->commit(0));
}
