//===- tests/RandomLitmusTest.cpp - randomized litmus vs an LL/SC oracle ---------===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Beyond the paper's four hand-written sequences: generate random
/// interleavings of LL / SC / plain-store events across threads, replay
/// them deterministically through each scheme, and compare every SC
/// outcome against an architectural oracle implementing the LL/SC
/// semantics of Section II-A.
///
/// Soundness direction (must hold exactly): a scheme may never let an SC
/// *succeed* when the oracle says the monitor was broken — for strong
/// schemes the oracle counts plain stores, for weak schemes only LL/SC
/// writes. Spurious failures (scheme fails where the oracle would allow
/// success) are permitted — hash conflicts and page granularity cause
/// them by design — but must be rare, which is asserted statistically.
///
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzz.h"
#include "support/Random.h"
#include "workloads/Litmus.h"

#include <gtest/gtest.h>

using namespace llsc;
using namespace llsc::workloads;

namespace {

enum class EventKind { Ll, Sc, Store };

struct Event {
  EventKind Kind;
  unsigned Tid;
  uint32_t Value;
};

/// Architectural oracle for one shared variable: per-thread monitors,
/// broken by other threads' writes (successful SCs always; plain stores
/// when \p CountPlainStores). A thread's own store does not break its
/// armed monitor (Section II-A).
///
/// One corner is deliberately left *unspecified* (Masked): when a thread
/// plain-stores the variable after its monitor was already broken, the
/// paper's HST re-tags the hash entry with the storing thread's id and
/// its SC will succeed, while strict ARM semantics would keep the monitor
/// broken. The paper's Figure 5 scheme genuinely has this behavior (its
/// §IV-A argument only covers interference by other threads), so the
/// oracle accepts either outcome there.
struct Oracle {
  static constexpr unsigned MaxThreads = 4;
  enum class MonState { None, Armed, Broken, Masked };
  MonState State[MaxThreads] = {};
  uint32_t Value = 0;

  void ll(unsigned Tid) { State[Tid] = MonState::Armed; }

  /// \returns the required SC outcome: 1 = must succeed (modulo spurious
  /// failures), 0 = must fail, -1 = unspecified.
  int sc(unsigned Tid, uint32_t NewValue, bool SchemeSucceeded) {
    MonState Mine = State[Tid];
    State[Tid] = MonState::None;
    if (SchemeSucceeded) {
      // A successful SC is a write: it breaks everyone else's monitor.
      for (unsigned T = 0; T < MaxThreads; ++T)
        if (T != Tid && State[T] != MonState::None)
          State[T] = MonState::Broken;
      Value = NewValue;
    }
    switch (Mine) {
    case MonState::Armed:
      return 1;
    case MonState::Masked:
      return -1;
    case MonState::Broken:
    case MonState::None:
      return 0;
    }
    return 0;
  }

  void store(unsigned Tid, uint32_t NewValue, bool CountPlainStores) {
    Value = NewValue;
    // Own store: an armed monitor stays armed; a broken one becomes
    // masked (see above).
    if (State[Tid] == MonState::Broken)
      State[Tid] = MonState::Masked;
    if (!CountPlainStores)
      return;
    for (unsigned T = 0; T < MaxThreads; ++T)
      if (T != Tid && State[T] != MonState::None)
        State[T] = MonState::Broken;
  }
};

std::vector<Event> randomTrace(Rng &R, unsigned Threads, unsigned Length) {
  std::vector<Event> Trace;
  uint32_t NextValue = 1;
  for (unsigned N = 0; N < Length; ++N) {
    Event E;
    E.Tid = static_cast<unsigned>(R.nextBelow(Threads));
    switch (R.nextBelow(3)) {
    case 0:
      E.Kind = EventKind::Ll;
      break;
    case 1:
      E.Kind = EventKind::Sc;
      break;
    default:
      E.Kind = EventKind::Store;
      break;
    }
    E.Value = NextValue++;
    Trace.push_back(E);
  }
  return Trace;
}

struct ReplayStats {
  unsigned UnsoundSuccesses = 0; ///< Scheme succeeded, oracle said fail.
  unsigned SpuriousFailures = 0; ///< Scheme failed, oracle said success.
  unsigned OracleSuccesses = 0;
};

ReplayStats replay(LitmusDriver &Driver, const std::vector<Event> &Trace,
                   bool CountPlainStores) {
  ReplayStats Stats;
  Oracle Model;
  Driver.resetVar(0);
  for (const Event &E : Trace) {
    switch (E.Kind) {
    case EventKind::Ll:
      Driver.loadLink(E.Tid);
      Model.ll(E.Tid);
      break;
    case EventKind::Sc: {
      bool SchemeOk = Driver.storeCond(E.Tid, E.Value);
      int Required = Model.sc(E.Tid, E.Value, SchemeOk);
      if (Required == 1) {
        Stats.OracleSuccesses++;
        if (!SchemeOk)
          Stats.SpuriousFailures++;
        else
          EXPECT_EQ(Driver.varValue(), E.Value);
      } else if (Required == 0 && SchemeOk) {
        Stats.UnsoundSuccesses++;
      }
      break;
    }
    case EventKind::Store:
      Driver.plainStore(E.Tid, E.Value);
      Model.store(E.Tid, E.Value, CountPlainStores);
      break;
    }
  }
  return Stats;
}

struct Expectation {
  SchemeKind Kind;
  bool CountPlainStores; ///< Oracle strictness matching the claimed class.
};

} // namespace

class RandomLitmusTest : public ::testing::TestWithParam<Expectation> {};

INSTANTIATE_TEST_SUITE_P(
    Schemes, RandomLitmusTest,
    ::testing::Values(Expectation{SchemeKind::PicoSt, true},
                      Expectation{SchemeKind::Hst, true},
                      Expectation{SchemeKind::HstHtm, true},
                      Expectation{SchemeKind::HstHelper, true},
                      Expectation{SchemeKind::Pst, true},
                      Expectation{SchemeKind::PstRemap, true},
                      Expectation{SchemeKind::PstMpk, true},
                      Expectation{SchemeKind::BwLlsc, true},
                      Expectation{SchemeKind::HstWeak, false}),
    [](const ::testing::TestParamInfo<Expectation> &Info) {
      std::string Name = schemeTraits(Info.param.Kind).Name;
      for (char &C : Name)
        if (C == '-')
          C = '_';
      return Name;
    });

TEST_P(RandomLitmusTest, NoUnsoundScSuccessOnRandomTraces) {
  MachineConfig Config;
  Config.Scheme = GetParam().Kind;
  Config.NumThreads = 3;
  Config.MemBytes = 8ULL << 20;
  Config.ForceSoftHtm = true;
  auto M = Machine::create(Config).take();
  auto DriverOrErr = LitmusDriver::create(*M);
  ASSERT_TRUE(bool(DriverOrErr)) << DriverOrErr.error().render();

  Rng R(0x11cc00 + static_cast<uint64_t>(GetParam().Kind));
  unsigned TotalOracleSuccesses = 0;
  unsigned TotalSpurious = 0;
  for (int Trial = 0; Trial < 60; ++Trial) {
    std::vector<Event> Trace = randomTrace(R, 3, 30);
    ReplayStats Stats =
        replay(*DriverOrErr, Trace, GetParam().CountPlainStores);
    EXPECT_EQ(Stats.UnsoundSuccesses, 0u)
        << schemeTraits(GetParam().Kind).Name << " let an SC succeed "
        << "after its monitor was architecturally broken (trial " << Trial
        << ")";
    TotalOracleSuccesses += Stats.OracleSuccesses;
    TotalSpurious += Stats.SpuriousFailures;
  }

  // Over-conservatism check: spurious failures are legal (hash conflicts,
  // page/key granularity, and — for the HST family — other threads' LLs
  // retagging the shared entry) but a scheme that fails *most* valid SCs
  // would be useless; the guest would livelock retrying.
  ASSERT_GT(TotalOracleSuccesses, 0u);
  EXPECT_LT(static_cast<double>(TotalSpurious) / TotalOracleSuccesses, 0.6)
      << schemeTraits(GetParam().Kind).Name
      << " fails too many architecturally valid SCs";
}

// Mixed sizes and offsets over a 16-byte window: 8-byte LL/SC straddling
// granule boundaries, 2/4/8-byte interfering stores. This is the surface
// where the HST family's single-granule tagging was unsound (the headline
// bug of the multi-granule fix); the single-variable trace above could
// never reach it. Judged by the fuzzer's range-aware oracle.
TEST_P(RandomLitmusTest, NoUnsoundScSuccessOnMixedSizeTraces) {
  MachineConfig Config;
  Config.Scheme = GetParam().Kind;
  Config.NumThreads = 3;
  Config.MemBytes = 8ULL << 20;
  Config.ForceSoftHtm = true;
  auto M = Machine::create(Config).take();
  auto DriverOrErr = LitmusDriver::create(*M);
  ASSERT_TRUE(bool(DriverOrErr)) << DriverOrErr.error().render();
  LitmusDriver &Driver = *DriverOrErr;

  Rng R(0x517ed + static_cast<uint64_t>(GetParam().Kind));
  fuzz::OracleModel Model =
      fuzz::OracleModel::forScheme(*createScheme(GetParam().Kind));

  for (int Trial = 0; Trial < 40; ++Trial) {
    Driver.resetVar(0); // The oracle's shadow starts all-zero too.
    fuzz::Oracle Model2(Model, 3);
    for (int Step = 0; Step < 24; ++Step) {
      unsigned Tid = static_cast<unsigned>(R.nextBelow(3));
      uint64_t Value = 1 + R.nextBelow(200);
      std::string What;
      switch (R.nextBelow(3)) {
      case 0: {
        unsigned Size = R.nextBool(0.5) ? 8 : 4;
        unsigned Offset = static_cast<unsigned>(
            R.nextBelow((LitmusDriver::WindowBytes - Size) / 4 + 1) * 4);
        uint64_t Observed = Driver.loadLinkAt(Tid, Offset, Size);
        What = Model2.onLoadLink(Tid, Offset, Size, Observed);
        break;
      }
      case 1: {
        unsigned Size = R.nextBool(0.5) ? 8 : 4;
        unsigned Offset = static_cast<unsigned>(
            R.nextBelow((LitmusDriver::WindowBytes - Size) / 4 + 1) * 4);
        bool Ok = Driver.storeCondAt(Tid, Value, Offset, Size);
        What = Model2.onStoreCond(Tid, Offset, Size, Value, Ok);
        break;
      }
      default: {
        static constexpr unsigned Sizes[] = {2, 4, 8};
        unsigned Size = Sizes[R.nextBelow(3)];
        unsigned Offset = static_cast<unsigned>(
            R.nextBelow(LitmusDriver::WindowBytes / Size) * Size);
        Driver.plainStoreAt(Tid, Value, Offset, Size);
        Model2.onPlainStore(Tid, Offset, Size, Value);
        break;
      }
      }
      ASSERT_EQ(What, "") << schemeTraits(GetParam().Kind).Name
                          << " trial " << Trial << " step " << Step;
      // The window must track the oracle's shadow byte for byte.
      for (unsigned Offset = 0; Offset < LitmusDriver::WindowBytes;
           Offset += 8) {
        uint64_t Have = Driver.varValueAt(Offset, 8);
        ASSERT_EQ(Model2.checkMemoryWord(Offset, Have), "")
            << schemeTraits(GetParam().Kind).Name << " trial " << Trial
            << " step " << Step;
      }
    }
  }
}
