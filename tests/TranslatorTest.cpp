//===- tests/TranslatorTest.cpp - guest->IR translation tests -------------------===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//

#include "translate/Translator.h"

#include "guest/Assembler.h"
#include "ir/IRPrinter.h"
#include "ir/IRVerifier.h"
#include "mem/GuestMemory.h"

#include <gtest/gtest.h>

using namespace llsc;
using namespace llsc::ir;

namespace {

struct Setup {
  std::unique_ptr<GuestMemory> Mem;
  std::unique_ptr<Translator> Trans;
};

Setup makeTranslator(const std::string &Asm, TranslationHooks *Hooks = nullptr,
                     TranslatorConfig Config = TranslatorConfig()) {
  Setup S;
  S.Mem = GuestMemory::create(1 << 20).take();
  auto Prog = guest::assemble(Asm);
  EXPECT_TRUE(bool(Prog)) << Prog.error().render();
  EXPECT_TRUE(bool(S.Mem->loadProgram(*Prog)));
  S.Trans = std::make_unique<Translator>(
      *S.Mem, input::inputArch(input::GuestArch::Grv), Hooks, Config);
  return S;
}

unsigned countOps(const IRBlock &Block, IROp Op) {
  unsigned Count = 0;
  for (const IRInst &I : Block.Insts)
    if (I.Op == Op)
      ++Count;
  return Count;
}

/// Hook that records store-prologue invocations and optionally routes
/// stores/loads through helpers.
struct RecordingHooks : TranslationHooks {
  unsigned Prologues = 0;
  bool StoreHelper = false;
  bool LoadHelper = false;

  void emitStorePrologue(IRBuilder &B, ValueId Addr, int64_t Offset,
                         ValueId Value, unsigned Size) override {
    ++Prologues;
    B.setInstrumentMode(true);
    ValueId T = B.emitBinImm(IROp::AddImm, Addr, Offset);
    B.emitStoreHost(T, 0x7f000000, T, 4); // Arbitrary marker op.
    B.setInstrumentMode(false);
  }
  bool storesViaHelper() const override { return StoreHelper; }
  bool loadsViaHelper() const override { return LoadHelper; }
};

} // namespace

TEST(Translator, StraightLineBlock) {
  auto S = makeTranslator(R"(
_start: addi r1, r1, #1
        add  r2, r1, r1
        halt
)");
  auto Block = S.Trans->translateBlock(0x1000);
  ASSERT_TRUE(bool(Block)) << Block.error().render();
  EXPECT_EQ(Block->GuestInstCount, 3u);
  EXPECT_EQ(Block->Insts.back().Op, IROp::Halt);
  EXPECT_TRUE(bool(verify(*Block)));
}

TEST(Translator, BranchEndsBlock) {
  auto S = makeTranslator(R"(
_start: addi r1, r1, #1
        beq  r1, r2, _start
        addi r3, r3, #1
        halt
)");
  auto Block = S.Trans->translateBlock(0x1000);
  ASSERT_TRUE(bool(Block)) << Block.error().render();
  EXPECT_EQ(Block->GuestInstCount, 2u);
  EXPECT_EQ(countOps(*Block, IROp::BrCond), 1u);
  // Fallthrough terminator targets 0x1008.
  EXPECT_EQ(Block->Insts.back().Op, IROp::SetPcImm);
  EXPECT_EQ(Block->Insts.back().Imm, 0x1008);
  // Taken target is the block start.
  for (const IRInst &I : Block->Insts)
    if (I.Op == IROp::BrCond) {
      EXPECT_EQ(I.Imm, 0x1000);
    }
}

TEST(Translator, MaxBlockLengthCut) {
  std::string Asm = "_start:\n";
  for (int I = 0; I < 100; ++I)
    Asm += "        addi r1, r1, #1\n";
  Asm += "        halt\n";
  TranslatorConfig Config;
  Config.MaxGuestInstsPerBlock = 16;
  auto S = makeTranslator(Asm, nullptr, Config);
  auto Block = S.Trans->translateBlock(0x1000);
  ASSERT_TRUE(bool(Block)) << Block.error().render();
  EXPECT_EQ(Block->GuestInstCount, 16u);
  EXPECT_EQ(Block->Insts.back().Op, IROp::SetPcImm);
  EXPECT_EQ(Block->Insts.back().Imm, 0x1000 + 16 * 4);
}

TEST(Translator, LlScLowering) {
  auto S = makeTranslator(R"(
_start: ldxr.w r1, [r2]
        stxr.w r3, r1, [r2]
        clrex
        dmb
        halt
)");
  auto Block = S.Trans->translateBlock(0x1000);
  ASSERT_TRUE(bool(Block)) << Block.error().render();
  EXPECT_EQ(countOps(*Block, IROp::LoadLink), 1u);
  EXPECT_EQ(countOps(*Block, IROp::StoreCond), 1u);
  EXPECT_EQ(countOps(*Block, IROp::ClearExcl), 1u);
  EXPECT_EQ(countOps(*Block, IROp::Fence), 1u);
}

TEST(Translator, StorePrologueHookInvoked) {
  RecordingHooks Hooks;
  auto S = makeTranslator(R"(
_start: stw r1, [r2]
        std r3, [r4, #8]
        halt
)",
                          &Hooks);
  auto Block = S.Trans->translateBlock(0x1000);
  ASSERT_TRUE(bool(Block)) << Block.error().render();
  EXPECT_EQ(Hooks.Prologues, 2u);
  EXPECT_EQ(countOps(*Block, IROp::StoreG), 2u);
  EXPECT_EQ(countOps(*Block, IROp::StoreHost), 2u);
  EXPECT_GT(Block->InstrumentOpCount, 0u);
}

TEST(Translator, HelperRouting) {
  RecordingHooks Hooks;
  Hooks.StoreHelper = true;
  Hooks.LoadHelper = true;
  auto S = makeTranslator(R"(
_start: stw r1, [r2]
        ldw r3, [r4]
        ldsw r5, [r6]
        halt
)",
                          &Hooks);
  auto Block = S.Trans->translateBlock(0x1000);
  ASSERT_TRUE(bool(Block)) << Block.error().render();
  EXPECT_EQ(countOps(*Block, IROp::StoreG), 0u);
  EXPECT_EQ(countOps(*Block, IROp::HelperStore), 1u);
  EXPECT_EQ(countOps(*Block, IROp::LoadG), 0u);
  EXPECT_EQ(countOps(*Block, IROp::HelperLoad), 2u);
  // Sign extension flag travels to the helper load.
  bool FoundSext = false;
  for (const IRInst &I : Block->Insts)
    if (I.Op == IROp::HelperLoad && (I.Flags & IRFlagSignExtend))
      FoundSext = true;
  EXPECT_TRUE(FoundSext);
}

TEST(Translator, RejectsBadPc) {
  auto S = makeTranslator("_start: halt\n");
  EXPECT_FALSE(bool(S.Trans->translateBlock(2)));        // Misaligned.
  EXPECT_FALSE(bool(S.Trans->translateBlock(1 << 21))); // Out of range.
}

TEST(Translator, RejectsUndecodableWord) {
  auto S = makeTranslator("_start: halt\n");
  // 0x3f << 26 is an undefined opcode; plant it at 0x2000.
  S.Mem->shadowStore(0x2000, 0x3fu << 26, 4);
  EXPECT_FALSE(bool(S.Trans->translateBlock(0x2000)));
}

TEST(Translator, OptimizerIntegration) {
  TranslatorConfig NoOpt;
  NoOpt.Optimize = false;
  auto S1 = makeTranslator("_start: li r1, #0x123456789abc\n        halt\n",
                           nullptr, NoOpt);
  auto Unoptimized = S1.Trans->translateBlock(0x1000);
  ASSERT_TRUE(bool(Unoptimized));

  auto S2 = makeTranslator("_start: li r1, #0x123456789abc\n        halt\n");
  auto Optimized = S2.Trans->translateBlock(0x1000);
  ASSERT_TRUE(bool(Optimized));
  EXPECT_LT(Optimized->Insts.size(), Unoptimized->Insts.size())
      << "movz/movk chain must fold";
}

TEST(Translator, RuleBasedAtomicIdiom) {
  TranslatorConfig Config;
  Config.RuleBasedAtomics = true;
  auto S = makeTranslator(R"(
_start:
retry:  ldxr.w  r3, [r1]
        add     r5, r3, r2
        stxr.w  r6, r5, [r1]
        cbnz    r6, retry
        halt
)",
                          nullptr, Config);
  auto Block = S.Trans->translateBlock(0x1000);
  ASSERT_TRUE(bool(Block)) << Block.error().render();
  EXPECT_EQ(countOps(*Block, IROp::AtomicAddG), 1u)
      << printBlock(*Block);
  EXPECT_EQ(countOps(*Block, IROp::LoadLink), 0u);
  EXPECT_EQ(countOps(*Block, IROp::StoreCond), 0u);
  EXPECT_EQ(S.Trans->stats().AtomicIdiomsMatched, 1u);
}

TEST(Translator, RuleBasedPassIgnoresNonIdioms) {
  TranslatorConfig Config;
  Config.RuleBasedAtomics = true;
  // Same shape but the branch target is NOT the ldxr: no match.
  auto S = makeTranslator(R"(
_start: nop
retry:  ldxr.w  r3, [r1]
        add     r5, r3, r2
        stxr.w  r6, r5, [r1]
        cbnz    r6, _start
        halt
)",
                          nullptr, Config);
  auto Block = S.Trans->translateBlock(0x1004);
  ASSERT_TRUE(bool(Block)) << Block.error().render();
  EXPECT_EQ(countOps(*Block, IROp::AtomicAddG), 0u);
  EXPECT_EQ(countOps(*Block, IROp::LoadLink), 1u);
}

TEST(Translator, StatsAccumulate) {
  auto S = makeTranslator(R"(
_start: addi r1, r1, #1
        halt
)");
  ASSERT_TRUE(bool(S.Trans->translateBlock(0x1000)));
  EXPECT_EQ(S.Trans->stats().BlocksTranslated, 1u);
  EXPECT_EQ(S.Trans->stats().GuestInstsTranslated, 2u);
  EXPECT_GT(S.Trans->stats().IROpsEmitted, 0u);
}
