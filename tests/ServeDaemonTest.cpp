//===- tests/ServeDaemonTest.cpp - llsc-served wire protocol --------------------===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Drives a live net::Server over localhost and holds the line-delimited
/// JSON protocol (net/Protocol.h, docs/SERVING.md) to its contract:
/// hello/stats introspection, session lifecycle over the wire, submit
/// admission answers (including queue-full with retry-after), schema-v5
/// result streaming, the snapshot + from fan-out verbs, protocol error
/// answers, and the graceful drain finishing in-flight work before the
/// event loop exits.
///
//===----------------------------------------------------------------------===//

#include "core/StatsReport.h"
#include "net/Client.h"
#include "net/Protocol.h"
#include "net/Server.h"

#include <gtest/gtest.h>

#include <thread>

using namespace llsc;
using namespace llsc::net;
using namespace llsc::serve;

namespace {

constexpr const char *QuickAsm = R"(_start: movz    r1, #7
        la      r2, out
        std     r1, [r2]
        halt
        .align 8
out:    .quad 0
)";

constexpr const char *SpinAsm = "_start: b _start\n";

/// One live daemon on an ephemeral port, event loop on its own thread.
struct LiveDaemon {
  SessionService Service;
  Server Srv;
  std::thread Loop;

  explicit LiveDaemon(unsigned Workers = 2, size_t QueueCap = 16)
      : Service([&] {
          ServiceConfig C;
          C.Fleet.Workers = Workers;
          C.Fleet.QueueCapacity = QueueCap;
          return C;
        }()),
        Srv([this] {
          ServerConfig C;
          C.Service = &Service;
          return C;
        }()) {
    auto Started = Srv.start();
    EXPECT_TRUE(bool(Started)) << Started.error().render();
    Loop = std::thread([this] { Srv.run(); });
  }

  ~LiveDaemon() {
    if (Loop.joinable()) {
      Srv.requestStop();
      Loop.join();
    }
    Service.drain();
  }

  Client connect() {
    Client Conn;
    auto Connected = Conn.connect("127.0.0.1", Srv.port());
    EXPECT_TRUE(bool(Connected)) << Connected.error().render();
    return Conn;
  }
};

JsonValue verbRequest(const char *Verb, const std::string &Session = "") {
  JsonValue R = JsonValue::object();
  R.membersMut()["verb"] = JsonValue::string(Verb);
  if (!Session.empty())
    R.membersMut()["session"] = JsonValue::string(Session);
  return R;
}

/// Issues \p Request and expects an ok:true reply.
JsonValue callOk(Client &Conn, const JsonValue &Request) {
  auto Resp = Conn.call(Request);
  EXPECT_TRUE(bool(Resp)) << Resp.error().render();
  EXPECT_TRUE(Resp->get("ok").asBool(false)) << Resp->render();
  return Resp ? *Resp : JsonValue();
}

/// Issues \p Request and expects an ok:false reply; \returns its error.
std::string callError(Client &Conn, const JsonValue &Request) {
  auto Resp = Conn.call(Request);
  EXPECT_TRUE(bool(Resp)) << Resp.error().render();
  EXPECT_FALSE(Resp->get("ok").asBool(true)) << Resp->render();
  return Resp->get("error").asString(std::string());
}

std::string createSession(Client &Conn) {
  JsonValue Resp = callOk(Conn, verbRequest("create-session"));
  return Resp.get("session").asString(std::string());
}

JsonValue submitRequest(const std::string &Session, const char *Asm,
                        double Deadline = 0) {
  JsonValue R = verbRequest("submit", Session);
  auto &M = R.membersMut();
  M["name"] = JsonValue::string("wire-job");
  M["scheme"] = JsonValue::string("hst");
  M["threads"] = JsonValue::integer(1);
  M["asm"] = JsonValue::string(Asm);
  if (Deadline > 0)
    M["deadline"] = JsonValue::number(Deadline);
  return R;
}

/// Reads stream events until stream-end; appends result jobs to \p Jobs.
JsonValue readStream(Client &Conn, std::vector<JsonValue> &Jobs) {
  while (true) {
    auto Line = Conn.readLine();
    EXPECT_TRUE(bool(Line)) << Line.error().render();
    if (!Line)
      return JsonValue();
    auto Event = JsonValue::parse(*Line);
    EXPECT_TRUE(bool(Event)) << Event.error().render();
    std::string Kind = Event->get("event").asString(std::string());
    if (Kind == "result") {
      Jobs.push_back(Event->get("job"));
      continue;
    }
    EXPECT_EQ(Kind, "stream-end") << *Line;
    return *Event;
  }
}

} // namespace

TEST(ServeDaemonTest, HelloReportsProtocolAndSchema) {
  LiveDaemon D;
  Client Conn = D.connect();
  JsonValue Resp = callOk(Conn, verbRequest("hello"));
  EXPECT_EQ(Resp.get("server").asString(std::string()), "llsc-served");
  EXPECT_EQ(Resp.get("proto").asUint(0), ProtocolVersion);
  EXPECT_EQ(Resp.get("schema_version").asUint(0), StatsReport::SchemaVersion);
  EXPECT_FALSE(Resp.get("draining").asBool(true));
}

TEST(ServeDaemonTest, SubmitAndStreamSchemaV5Results) {
  LiveDaemon D;
  Client Conn = D.connect();
  std::string Session = createSession(Conn);
  ASSERT_FALSE(Session.empty());

  for (int J = 0; J < 3; ++J) {
    JsonValue Resp = callOk(Conn, submitRequest(Session, QuickAsm));
    EXPECT_GT(Resp.get("job_id").asUint(0), 0u);
  }

  JsonValue Stream = verbRequest("stream", Session);
  Stream.membersMut()["count"] = JsonValue::integer(3);
  ASSERT_TRUE(bool(Conn.sendLine(Stream.render())));
  std::vector<JsonValue> Jobs;
  JsonValue End = readStream(Conn, Jobs);
  ASSERT_EQ(Jobs.size(), 3u);
  for (const JsonValue &Job : Jobs) {
    // The job object is the schema-v5 StatsReport line (docs/STATS.md):
    // the keys CI asserts on must be present over the wire too. Done
    // jobs stream as the full report, which carries no "state" key —
    // only failure lines spell the state out.
    EXPECT_EQ(Job.get("schema_version").asUint(0), StatsReport::SchemaVersion);
    EXPECT_EQ(Job.get("state").asString("done"), "done");
    EXPECT_EQ(Job.get("name").asString(std::string()), "wire-job");
    EXPECT_FALSE(Job.get("guest_arch").asString(std::string()).empty());
    EXPECT_GT(Job.get("job_id").asUint(0), 0u);
  }
  EXPECT_EQ(End.get("remaining").asUint(99), 0u);
  EXPECT_FALSE(End.get("draining").asBool(true));

  // Terminal state is pollable after the stream collected the result.
  JsonValue Poll = verbRequest("poll", Session);
  Poll.membersMut()["job_id"] = JsonValue::integer(1);
  JsonValue PollResp = callOk(Conn, Poll);
  EXPECT_EQ(PollResp.get("state").asString(std::string()), "done");
}

TEST(ServeDaemonTest, QueueFullAnswersRetryAfterOverTheWire) {
  LiveDaemon D(/*Workers=*/1, /*QueueCap=*/1);
  Client Conn = D.connect();
  std::string Session = createSession(Conn);

  // Occupy the single worker (spin bounded by its deadline), then fill
  // the one queue slot; the next submit must bounce without blocking.
  callOk(Conn, submitRequest(Session, SpinAsm, /*Deadline=*/0.5));
  JsonValue Reject;
  for (int Attempt = 0; Attempt < 50; ++Attempt) {
    auto Resp = Conn.call(submitRequest(Session, QuickAsm));
    ASSERT_TRUE(bool(Resp));
    if (!Resp->get("ok").asBool(false)) {
      Reject = *Resp;
      break;
    }
  }
  ASSERT_TRUE(Reject.isObject()) << "queue never filled";
  EXPECT_EQ(Reject.get("error").asString(std::string()), "queue-full");
  EXPECT_GT(Reject.get("retry_after").asDouble(0), 0.0);
}

TEST(ServeDaemonTest, SnapshotVerbAndFromSubmitsServeClones) {
  LiveDaemon D;
  Client Conn = D.connect();
  std::string Session = createSession(Conn);

  JsonValue Snap = submitRequest(Session, QuickAsm);
  Snap.membersMut()["verb"] = JsonValue::string("snapshot");
  Snap.membersMut()["name"] = JsonValue::string("img");
  JsonValue SnapResp = callOk(Conn, Snap);
  EXPECT_EQ(SnapResp.get("snapshot").asString(std::string()), "img");

  for (int J = 0; J < 2; ++J) {
    JsonValue From = verbRequest("submit", Session);
    From.membersMut()["name"] = JsonValue::string("clone");
    From.membersMut()["from"] = JsonValue::string("img");
    callOk(Conn, From);
  }
  JsonValue Stream = verbRequest("stream", Session);
  Stream.membersMut()["count"] = JsonValue::integer(2);
  ASSERT_TRUE(bool(Conn.sendLine(Stream.render())));
  std::vector<JsonValue> Jobs;
  readStream(Conn, Jobs);
  ASSERT_EQ(Jobs.size(), 2u);
  for (const JsonValue &Job : Jobs)
    EXPECT_EQ(Job.get("state").asString("done"), "done");
  EXPECT_EQ(D.Service.fleet().fleetStats().SnapshotJobs, 2u);

  // A from referencing a snapshot this session never captured is a
  // request error, not a crash.
  JsonValue Bad = verbRequest("submit", Session);
  Bad.membersMut()["from"] = JsonValue::string("nope");
  EXPECT_NE(callError(Conn, Bad).find("unknown snapshot"), std::string::npos);
}

TEST(ServeDaemonTest, ProtocolErrorsAnswerWithoutDroppingTheConnection) {
  LiveDaemon D;
  Client Conn = D.connect();

  // Unparseable line.
  ASSERT_TRUE(bool(Conn.sendLine("this is not json")));
  auto Resp = Conn.readLine();
  ASSERT_TRUE(bool(Resp));
  auto Parsed = JsonValue::parse(*Resp);
  ASSERT_TRUE(bool(Parsed));
  EXPECT_FALSE(Parsed->get("ok").asBool(true));

  // Unknown verb.
  EXPECT_NE(callError(Conn, verbRequest("frobnicate")).find("unknown verb"),
            std::string::npos);

  // Session verbs without a session.
  callError(Conn, verbRequest("submit"));
  callError(Conn, verbRequest("stream"));

  // The connection survived all of it.
  callOk(Conn, verbRequest("hello"));
}

TEST(ServeDaemonTest, CloseSessionFreesTheName) {
  LiveDaemon D;
  Client Conn = D.connect();
  std::string Session = createSession(Conn);
  callOk(Conn, submitRequest(Session, QuickAsm));
  JsonValue Close = verbRequest("close-session", Session);
  JsonValue Resp = callOk(Conn, Close); // Defers until the job finishes.
  EXPECT_TRUE(Resp.get("closed").asBool(false));
  EXPECT_EQ(D.Service.find(Session), nullptr);
}

/// The drain contract over the wire: after requestDrain, new admissions
/// answer "draining", accepted jobs still finish and stream out, and
/// run() returns on its own.
TEST(ServeDaemonTest, DrainFinishesInFlightThenExits) {
  LiveDaemon D;
  Client Submitter = D.connect();
  std::string Session = createSession(Submitter);

  // A subscriber must be live before the drain (a drain only owes
  // results to active streams; unsubscribed buffers are forfeited), and
  // it subscribes for *more* results than will ever arrive, so the
  // drain — not normal completion — is what must end the stream.
  Client Subscriber = D.connect();
  JsonValue Stream = verbRequest("stream", Session);
  Stream.membersMut()["count"] = JsonValue::integer(8);
  ASSERT_TRUE(bool(Subscriber.sendLine(Stream.render())));

  unsigned Accepted = 0;
  for (int J = 0; J < 4; ++J)
    if (Submitter.call(submitRequest(Session, QuickAsm))
            ->get("ok")
            .asBool(false))
      ++Accepted;
  ASSERT_GT(Accepted, 0u);

  D.Srv.requestDrain();
  // Post-drain admissions bounce.
  EXPECT_EQ(callError(Submitter, submitRequest(Session, QuickAsm)),
            "draining");

  std::vector<JsonValue> Jobs;
  JsonValue End = readStream(Subscriber, Jobs);
  EXPECT_EQ(Jobs.size(), Accepted);
  for (const JsonValue &Job : Jobs)
    EXPECT_EQ(Job.get("state").asString("done"), "done");
  EXPECT_TRUE(End.get("draining").asBool(false));

  D.Loop.join(); // The loop exits unprompted once drained and flushed.
  EXPECT_EQ(D.Service.fleet().poolStats().Outstanding, 0u);
}
