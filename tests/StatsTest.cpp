//===- tests/StatsTest.cpp - Observability layer tests ------------------------===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Covers the observability layer end to end: cross-thread event-counter
/// aggregation into RunResult/CounterRegistry, resetAll() isolation
/// between runs, the StatsReport JSON surface, and the Chrome trace_event
/// exporter (document shape, timestamp monotonicity, B/E nesting).
///
//===----------------------------------------------------------------------===//

#include "core/Machine.h"
#include "core/StatsReport.h"
#include "runtime/EventCounters.h"
#include "support/Stats.h"
#include "support/Trace.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

using namespace llsc;

namespace {

/// A contended spinlock-increment kernel: every thread takes an LL/SC
/// lock, bumps a shared counter, releases. Guarantees SC attempts on
/// every thread and exclusive-section traffic under HST.
constexpr const char *SpinlockSource = R"(
_start: la      r10, lock
        la      r11, counter
        li      r9, #200
loop:   cbz     r9, done
acq:    ldxr.w  r1, [r10]
        cbnz    r1, wait
        movz    r1, #1
        stxr.w  r2, r1, [r10]
        cbnz    r2, acq
        dmb
        ldd     r3, [r11]
        addi    r3, r3, #1
        std     r3, [r11]
        dmb
        movz    r1, #0
        stw     r1, [r10]
        addi    r9, r9, #-1
        b       loop
wait:   yield
        b       acq
done:   halt
        .align  4096
lock:   .word   0
        .align  64
counter: .quad  0
)";

ErrorOr<RunResult> runSpinlock(SchemeKind Kind, unsigned Threads) {
  MachineConfig Config;
  Config.Scheme = Kind;
  Config.NumThreads = Threads;
  Config.ForceSoftHtm = true;
  auto MachineOrErr = Machine::create(Config);
  if (!MachineOrErr)
    return MachineOrErr.error();
  Machine &M = **MachineOrErr;
  if (auto Loaded = M.loadAssembly(SpinlockSource); !Loaded)
    return Loaded.error();
  return M.run({});
}

// --- EventCounters unit behavior -------------------------------------------

TEST(EventCountersTest, MergeAddsEveryField) {
  EventCounters A, B;
  A.LlIssued = 3;
  A.ScAttempted = 5;
  A.ScFailMonitorLost = 7;
  A.ExclWaitNs = 11;
  A.HtmBegins = 13;
  B.LlIssued = 100;
  B.ScAttempted = 200;
  B.ScFailMonitorLost = 300;
  B.ExclWaitNs = 400;
  B.HtmBegins = 500;
  A.merge(B);
  EXPECT_EQ(A.LlIssued, 103u);
  EXPECT_EQ(A.ScAttempted, 205u);
  EXPECT_EQ(A.ScFailMonitorLost, 307u);
  EXPECT_EQ(A.ExclWaitNs, 411u);
  EXPECT_EQ(A.HtmBegins, 513u);
  A.reset();
  A.forEach([](const char *Name, uint64_t Value) {
    EXPECT_EQ(Value, 0u) << Name;
  });
}

TEST(EventCountersTest, FlushToRegistryIsCumulative) {
  CounterRegistry &Registry = CounterRegistry::instance();
  Registry.resetAll();
  EventCounters Events;
  Events.ScAttempted = 17;
  Events.MprotectCalls = 4;
  Events.flushToRegistry();
  Events.flushToRegistry();
  auto Snapshot = Registry.snapshot();
  EXPECT_EQ(Snapshot["sc.attempted"], 34u);
  EXPECT_EQ(Snapshot["sys.mprotect_calls"], 8u);
  Registry.resetAll();
}

// --- Cross-thread aggregation through a real run ---------------------------

TEST(StatsAggregationTest, CountersSumAcrossThreads) {
  constexpr unsigned Threads = 4;
  CounterRegistry::instance().resetAll();
  auto Result = runSpinlock(SchemeKind::Hst, Threads);
  ASSERT_TRUE(static_cast<bool>(Result)) << Result.error().render();
  ASSERT_TRUE(Result->AllHalted);

  // Every thread runs 200 acquire/release pairs; each acquire issues at
  // least one LL and one successful SC.
  EXPECT_GE(Result->Events.LlIssued, 200u * Threads);
  EXPECT_GE(Result->Events.ScSucceeded, 200u * Threads);
  EXPECT_EQ(Result->Events.ScAttempted,
            Result->Events.ScSucceeded + Result->Events.ScFailed);
  EXPECT_EQ(Result->Events.ScFailed, Result->Events.ScFailMonitorLost +
                                         Result->Events.ScFailHashConflict);
  // HST enters an exclusive section per SC attempt.
  EXPECT_GE(Result->Events.ExclEntries, Result->Events.ScAttempted);

  // The run aggregate equals the per-vCPU sum.
  ASSERT_EQ(Result->PerCpuEvents.size(), Threads);
  EventCounters Summed;
  for (const EventCounters &PerCpu : Result->PerCpuEvents)
    Summed.merge(PerCpu);
  EXPECT_EQ(Summed.ScAttempted, Result->Events.ScAttempted);
  EXPECT_EQ(Summed.LlIssued, Result->Events.LlIssued);
  // Each vCPU did its own 200 iterations.
  for (const EventCounters &PerCpu : Result->PerCpuEvents)
    EXPECT_GE(PerCpu.ScSucceeded, 200u);

  // collectResult flushed the same totals into the process registry.
  auto Snapshot = CounterRegistry::instance().snapshot();
  EXPECT_EQ(Snapshot["sc.attempted"], Result->Events.ScAttempted);
  EXPECT_EQ(Snapshot["ll.issued"], Result->Events.LlIssued);
}

TEST(StatsAggregationTest, ResetAllIsolatesRuns) {
  CounterRegistry &Registry = CounterRegistry::instance();
  auto First = runSpinlock(SchemeKind::PicoCas, 2);
  ASSERT_TRUE(static_cast<bool>(First)) << First.error().render();
  Registry.resetAll();
  auto Second = runSpinlock(SchemeKind::PicoCas, 2);
  ASSERT_TRUE(static_cast<bool>(Second)) << Second.error().render();
  // After a reset, the registry holds only the second run's events, not
  // the cross-run accumulation.
  auto Snapshot = Registry.snapshot();
  EXPECT_EQ(Snapshot["sc.attempted"], Second->Events.ScAttempted);
  Registry.resetAll();
}

// --- StatsReport surface ----------------------------------------------------

TEST(StatsReportTest, MetricsMatchResultAndJsonParses) {
  auto Result = runSpinlock(SchemeKind::Hst, 2);
  ASSERT_TRUE(static_cast<bool>(Result)) << Result.error().render();
  StatsReport Report(*Result);

  EXPECT_EQ(Report.metric("sc.attempted"), Result->Events.ScAttempted);
  EXPECT_EQ(Report.metric("exec.insts"), Result->Total.ExecutedInsts);
  EXPECT_EQ(Report.metric("excl.sections"), Result->ExclusiveSections);
  EXPECT_EQ(Report.metric("no.such.metric"), 0u);

  std::string Json = Report.renderJson();
  // Shape, not a full parser: every catalogue name must appear as a key.
  Result->Events.forEach([&Json](const char *Name, uint64_t) {
    std::string Key = "\"";
    Key += Name;
    Key += "\":";
    EXPECT_NE(Json.find(Key), std::string::npos) << Name;
  });
  EXPECT_NE(Json.find("\"wall_seconds\""), std::string::npos);
  EXPECT_NE(Json.find("\"per_cpu\""), std::string::npos);
  EXPECT_NE(Json.find("{\"tid\": 1"), std::string::npos);
}

// --- Trace recorder ---------------------------------------------------------

TEST(TraceTest, GoldenDocumentShape) {
  TraceRecorder Recorder(/*MaxTids=*/2, /*MaxEventsPerTid=*/16);
  Recorder.begin(0, "exclusive", "excl");
  Recorder.instant(0, "sc-fail", "sc", "addr", 4096);
  Recorder.end(0, "exclusive", "excl");
  Recorder.complete(1, "mprotect", "sys", /*StartNs=*/1000, /*DurNs=*/500);
  std::string Json = Recorder.renderJson();

  // Golden fragments the exporter contract guarantees (stable key order;
  // docs/OBSERVABILITY.md documents this shape).
  EXPECT_NE(Json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(Json.find("\"droppedEvents\":0"), std::string::npos);
  EXPECT_NE(Json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(Json.find("\"name\":\"exclusive\",\"cat\":\"excl\",\"ph\":\"B\""),
            std::string::npos);
  EXPECT_NE(Json.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(Json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(Json.find("\"s\":\"t\""), std::string::npos);
  EXPECT_NE(Json.find("\"args\":{\"addr\":4096}"), std::string::npos);
  EXPECT_NE(Json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(Json.find("\"dur\":0.500"), std::string::npos);
  // ts/dur are microseconds: StartNs=1000 renders as 1.000.
  EXPECT_NE(Json.find("\"ts\":1.000"), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(Json.find("thread_name"), std::string::npos);
  EXPECT_EQ(Recorder.eventCount(), 4u);
}

TEST(TraceTest, DropsWhenFullOrOutOfRange) {
  TraceRecorder Recorder(/*MaxTids=*/1, /*MaxEventsPerTid=*/2);
  Recorder.instant(0, "a", "c");
  Recorder.instant(0, "b", "c");
  Recorder.instant(0, "c", "c"); // Buffer full.
  Recorder.instant(7, "d", "c"); // Tid out of range.
  EXPECT_EQ(Recorder.eventCount(), 2u);
  EXPECT_EQ(Recorder.droppedEvents(), 2u);
  EXPECT_NE(Recorder.renderJson().find("\"droppedEvents\":2"),
            std::string::npos);
}

TEST(TraceTest, LiveRunProducesNestedBalancedSlices) {
  constexpr unsigned Threads = 4;
  TraceRecorder::install(std::make_unique<TraceRecorder>(Threads));
  auto Result = runSpinlock(SchemeKind::Hst, Threads);
  std::unique_ptr<TraceRecorder> Recorder = TraceRecorder::uninstall();
  ASSERT_TRUE(static_cast<bool>(Result)) << Result.error().render();
  ASSERT_NE(Recorder, nullptr);
  EXPECT_GT(Recorder->eventCount(), 0u);
  EXPECT_EQ(Recorder->droppedEvents(), 0u);

  // Validate per-tid B/E nesting and timestamp monotonicity by walking
  // the JSON line by line (one event per line by contract).
  std::string Json = Recorder->renderJson();
  std::vector<int> Depth(Threads, 0);
  size_t Slices = 0;
  size_t Pos = 0;
  while ((Pos = Json.find("\"ph\":\"", Pos)) != std::string::npos) {
    char Phase = Json[Pos + 6];
    size_t TidPos = Json.find("\"tid\":", Pos);
    ASSERT_NE(TidPos, std::string::npos);
    unsigned Tid = std::stoul(Json.substr(TidPos + 6));
    Pos += 6;
    if (Phase == 'M')
      continue;
    ASSERT_LT(Tid, Threads);
    if (Phase == 'B') {
      Depth[Tid]++;
      Slices++;
    } else if (Phase == 'E') {
      ASSERT_GT(Depth[Tid], 0) << "E without matching B on tid " << Tid;
      Depth[Tid]--;
    }
  }
  for (unsigned Tid = 0; Tid < Threads; ++Tid)
    EXPECT_EQ(Depth[Tid], 0) << "unbalanced slices on tid " << Tid;
  // HST's SC runs inside an exclusive section: slices must exist.
  EXPECT_GT(Slices, 0u);
}

} // namespace
