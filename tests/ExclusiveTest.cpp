//===- tests/ExclusiveTest.cpp - stop-the-world mechanism tests ----------------===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//

#include "runtime/Exclusive.h"

#include <atomic>
#include <gtest/gtest.h>
#include <thread>
#include <vector>

using namespace llsc;

TEST(Exclusive, NoRunnersReturnsImmediately) {
  ExclusiveContext Excl;
  Excl.startExclusive(/*SelfRunning=*/false);
  Excl.endExclusive(/*SelfRunning=*/false);
  EXPECT_EQ(Excl.exclusiveCount(), 1u);
}

TEST(Exclusive, ExecStartEndBalance) {
  ExclusiveContext Excl;
  Excl.execStart();
  EXPECT_EQ(Excl.runningForTest(), 1);
  Excl.execEnd();
  EXPECT_EQ(Excl.runningForTest(), 0);
}

TEST(Exclusive, ExclusiveWaitsForRunnersToPark) {
  ExclusiveContext Excl;
  std::atomic<bool> Stop{false};
  std::atomic<uint64_t> Safepoints{0};
  std::atomic<int> InCritical{0};
  std::atomic<bool> Violation{false};

  // Worker threads emulate engine loops: registered, polling safepoints.
  std::vector<std::thread> Workers;
  for (int W = 0; W < 3; ++W)
    Workers.emplace_back([&] {
      Excl.execStart();
      while (!Stop.load(std::memory_order_relaxed)) {
        Excl.safepoint();
        // If an exclusive section believes it is alone, InCritical == 0
        // must hold here.
        if (InCritical.load(std::memory_order_acquire) != 0)
          Violation.store(true, std::memory_order_relaxed);
        Safepoints.fetch_add(1, std::memory_order_relaxed);
      }
      Excl.execEnd();
    });

  // Exclusive requester (unregistered thread). Keep going until the
  // workers have demonstrably made progress between exclusive sections
  // (on a loaded single-core host a fixed round count can finish before
  // the workers are ever scheduled).
  uint64_t Rounds = 0;
  while (Rounds < 50 || Safepoints.load(std::memory_order_relaxed) < 100) {
    Excl.startExclusive(/*SelfRunning=*/false);
    InCritical.store(1, std::memory_order_release);
    // Simulate critical work; if any worker passes a safepoint now, it
    // observes InCritical == 1 and flags a violation.
    for (int Spin = 0; Spin < 1000; ++Spin)
      std::atomic_signal_fence(std::memory_order_seq_cst);
    InCritical.store(0, std::memory_order_release);
    Excl.endExclusive(/*SelfRunning=*/false);
    ++Rounds;
    if (Rounds % 64 == 0)
      std::this_thread::yield(); // Let starved workers run.
  }

  Stop = true;
  for (std::thread &Worker : Workers)
    Worker.join();

  EXPECT_FALSE(Violation.load());
  EXPECT_EQ(Excl.exclusiveCount(), Rounds);
  EXPECT_GE(Safepoints.load(), 100u);
}

TEST(Exclusive, SelfRunningRequester) {
  ExclusiveContext Excl;
  std::atomic<bool> Stop{false};
  std::atomic<uint64_t> CriticalRuns{0};

  std::vector<std::thread> Workers;
  for (int W = 0; W < 4; ++W)
    Workers.emplace_back([&, W] {
      Excl.execStart();
      while (!Stop.load(std::memory_order_relaxed)) {
        Excl.safepoint();
        if (W == 0 || (CriticalRuns.load(std::memory_order_relaxed) & 7) ==
                          static_cast<uint64_t>(W)) {
          // Registered threads themselves request exclusive sections,
          // like an SC emulation would.
          Excl.startExclusive(/*SelfRunning=*/true);
          CriticalRuns.fetch_add(1, std::memory_order_relaxed);
          Excl.endExclusive(/*SelfRunning=*/true);
        }
      }
      Excl.execEnd();
    });

  // Let them hammer the mechanism for a bit.
  while (CriticalRuns.load(std::memory_order_relaxed) < 2000)
    std::this_thread::yield();
  Stop = true;
  for (std::thread &Worker : Workers)
    Worker.join();

  EXPECT_GE(Excl.exclusiveCount(), 2000u);
  EXPECT_EQ(Excl.runningForTest(), 0);
}

TEST(Exclusive, ConcurrentExclusivesSerialize) {
  ExclusiveContext Excl;
  std::atomic<int> Inside{0};
  std::atomic<bool> Violation{false};

  std::vector<std::thread> Requesters;
  for (int R = 0; R < 8; ++R)
    Requesters.emplace_back([&] {
      for (int Round = 0; Round < 100; ++Round) {
        Excl.startExclusive(/*SelfRunning=*/false);
        if (Inside.fetch_add(1) != 0)
          Violation = true;
        Inside.fetch_sub(1);
        Excl.endExclusive(/*SelfRunning=*/false);
      }
    });
  for (std::thread &Requester : Requesters)
    Requester.join();

  EXPECT_FALSE(Violation.load());
  EXPECT_EQ(Excl.exclusiveCount(), 800u);
}

TEST(Exclusive, ExecStartBlocksDuringExclusive) {
  ExclusiveContext Excl;
  Excl.startExclusive(/*SelfRunning=*/false);

  std::atomic<bool> Entered{false};
  std::thread Late([&] {
    Excl.execStart(); // Must block until endExclusive.
    Entered = true;
    Excl.execEnd();
  });

  // Give the late thread a chance to (incorrectly) enter.
  for (int Spin = 0; Spin < 2000000; ++Spin)
    std::atomic_signal_fence(std::memory_order_seq_cst);
  EXPECT_FALSE(Entered.load());

  Excl.endExclusive(/*SelfRunning=*/false);
  Late.join();
  EXPECT_TRUE(Entered.load());
}
