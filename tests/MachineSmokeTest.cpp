//===- tests/MachineSmokeTest.cpp - end-to-end machine tests -------------------===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// End-to-end smoke tests: assemble small guest programs and run them on a
/// Machine under every scheme, checking architectural results via guest
/// memory.
///
//===----------------------------------------------------------------------===//

#include "core/Machine.h"

#include <gtest/gtest.h>

using namespace llsc;

namespace {

std::unique_ptr<Machine> makeMachine(SchemeKind Scheme, unsigned Threads = 1,
                                     uint64_t MemBytes = 16ULL << 20) {
  MachineConfig Config;
  Config.Scheme = Scheme;
  Config.NumThreads = Threads;
  Config.MemBytes = MemBytes;
  Config.ForceSoftHtm = true;
  Config.MaxBlocksPerCpu = 50'000'000;
  auto MachineOrErr = Machine::create(Config);
  EXPECT_TRUE(bool(MachineOrErr)) << MachineOrErr.error().render();
  return MachineOrErr.take();
}

/// All schemes, for parameterized sweeps.
const std::vector<SchemeKind> &schemes() { return allSchemeKinds(); }

} // namespace

TEST(MachineSmoke, ArithmeticAndMemory) {
  auto M = makeMachine(SchemeKind::PicoCas);
  ASSERT_TRUE(bool(M->loadAssembly(R"(
_start:
        li      r1, #6
        li      r2, #7
        mul     r3, r1, r2
        la      r4, out
        std     r3, [r4]
        li      r1, #-5
        asri    r1, r1, #1
        std     r1, [r4, #8]
        halt
out:    .quad 0
        .quad 0
)")));
  auto Result = M->run({});
  ASSERT_TRUE(bool(Result)) << Result.error().render();
  EXPECT_TRUE(Result->AllHalted);
  uint64_t Out = M->program().requiredSymbol("out");
  EXPECT_EQ(M->mem().shadowLoad(Out, 8), 42u);
  EXPECT_EQ(static_cast<int64_t>(M->mem().shadowLoad(Out + 8, 8)), -3);
}

TEST(MachineSmoke, LoopsAndBranches) {
  auto M = makeMachine(SchemeKind::Hst);
  ASSERT_TRUE(bool(M->loadAssembly(R"(
; sum 1..100 into out
_start:
        movz    r1, #0          ; sum
        movz    r2, #100        ; i
loop:   cbz     r2, done
        add     r1, r1, r2
        addi    r2, r2, #-1
        b       loop
done:   la      r3, out
        stw     r1, [r3]
        halt
out:    .word 0
)")));
  auto Result = M->run({});
  ASSERT_TRUE(bool(Result)) << Result.error().render();
  EXPECT_EQ(M->mem().shadowLoad(M->program().requiredSymbol("out"), 4),
            5050u);
}

TEST(MachineSmoke, CallsAndStack) {
  auto M = makeMachine(SchemeKind::Hst);
  ASSERT_TRUE(bool(M->loadAssembly(R"(
; out = f(10) where f(x) = x*2, via bl/ret with a stack spill
_start:
        li      r1, #10
        addi    sp, sp, #-16
        std     lr, [sp]
        bl      double_it
        ldd     lr, [sp]
        addi    sp, sp, #16
        la      r2, out
        std     r1, [r2]
        halt
double_it:
        add     r1, r1, r1
        ret
out:    .quad 0
)")));
  auto Result = M->run({});
  ASSERT_TRUE(bool(Result)) << Result.error().render();
  EXPECT_EQ(M->mem().shadowLoad(M->program().requiredSymbol("out"), 8), 20u);
}

TEST(MachineSmoke, LoadStoreSizesAndSignExtension) {
  auto M = makeMachine(SchemeKind::PicoCas);
  ASSERT_TRUE(bool(M->loadAssembly(R"(
_start:
        la      r1, data
        ldsb    r2, [r1]        ; 0xff -> -1
        la      r3, out
        std     r2, [r3]
        ldb     r2, [r1]        ; 0xff -> 255
        std     r2, [r3, #8]
        ldsh    r2, [r1, #2]    ; 0x8000 -> -32768
        std     r2, [r3, #16]
        ldsw    r2, [r1, #4]    ; 0x80000000 -> negative
        std     r2, [r3, #24]
        halt
        .align 8
data:   .byte 0xff, 0
        .half 0x8000
        .word 0x80000000
out:    .space 32
)")));
  auto Result = M->run({});
  ASSERT_TRUE(bool(Result)) << Result.error().render();
  uint64_t Out = M->program().requiredSymbol("out");
  auto Load = [&](unsigned Slot) {
    return static_cast<int64_t>(M->mem().shadowLoad(Out + Slot * 8, 8));
  };
  EXPECT_EQ(Load(0), -1);
  EXPECT_EQ(Load(1), 255);
  EXPECT_EQ(Load(2), -32768);
  EXPECT_EQ(Load(3), -2147483648LL);
}

class AllSchemesTest : public ::testing::TestWithParam<SchemeKind> {};

INSTANTIATE_TEST_SUITE_P(
    Schemes, AllSchemesTest, ::testing::ValuesIn(schemes()),
    [](const ::testing::TestParamInfo<SchemeKind> &Info) {
      std::string Name = schemeTraits(Info.param).Name;
      for (char &C : Name)
        if (C == '-')
          C = '_';
      return Name;
    });

/// Single-threaded LL/SC increment: must produce an exact count under
/// every scheme (even the incorrect ones — no contention here).
TEST_P(AllSchemesTest, SingleThreadLlscCounter) {
  auto M = makeMachine(GetParam());
  ASSERT_TRUE(bool(M->loadAssembly(R"(
_start:
        la      r1, counter
        li      r4, #1000
loop:   cbz     r4, done
retry:  ldxr.w  r2, [r1]
        addi    r2, r2, #1
        stxr.w  r3, r2, [r1]
        cbnz    r3, retry
        addi    r4, r4, #-1
        b       loop
done:   halt
        .align 4096
counter: .word 0
)")));
  auto Result = M->run({});
  ASSERT_TRUE(bool(Result)) << Result.error().render();
  EXPECT_TRUE(Result->AllHalted);
  EXPECT_EQ(M->mem().shadowLoad(M->program().requiredSymbol("counter"), 4),
            1000u);
  EXPECT_GE(Result->Total.StoreConds, 1000u);
}

/// Multi-threaded atomic counter: every *correct-under-contention* scheme
/// must produce threads*iters. (PICO-CAS also passes this: value-based CAS
/// is sufficient for a pure counter — the ABA stack test is where it
/// breaks.)
TEST_P(AllSchemesTest, MultiThreadAtomicCounter) {
  constexpr unsigned Threads = 4;
  constexpr unsigned Iters = 500;
  auto M = makeMachine(GetParam(), Threads);
  ASSERT_TRUE(bool(M->loadAssembly(R"(
_start:
        la      r1, counter
        li      r4, #500
loop:   cbz     r4, done
retry:  ldxr.w  r2, [r1]
        addi    r2, r2, #1
        stxr.w  r3, r2, [r1]
        cbnz    r3, retry
        addi    r4, r4, #-1
        b       loop
done:   halt
        .align 4096
counter: .word 0
)")));
  auto Result = M->run({});
  ASSERT_TRUE(bool(Result)) << Result.error().render();
  EXPECT_TRUE(Result->AllHalted);
  EXPECT_EQ(M->mem().shadowLoad(M->program().requiredSymbol("counter"), 4),
            Threads * Iters);
}

/// Same counter, cooperative deterministic mode.
TEST_P(AllSchemesTest, CooperativeAtomicCounter) {
  constexpr unsigned Threads = 3;
  auto M = makeMachine(GetParam(), Threads);
  ASSERT_TRUE(bool(M->loadAssembly(R"(
_start:
        la      r1, counter
        li      r4, #100
loop:   cbz     r4, done
retry:  ldxr.w  r2, [r1]
        addi    r2, r2, #1
        stxr.w  r3, r2, [r1]
        cbnz    r3, retry
        addi    r4, r4, #-1
        b       loop
done:   halt
        .align 4096
counter: .word 0
)")));
  RunOptions Opts;
  Opts.ExecMode = RunOptions::Mode::Cooperative;
  Opts.BlocksPerSlice = 2;
  auto Result = M->run(Opts);
  ASSERT_TRUE(bool(Result)) << Result.error().render();
  EXPECT_TRUE(Result->AllHalted);
  EXPECT_EQ(M->mem().shadowLoad(M->program().requiredSymbol("counter"), 4),
            Threads * 100u);
}

TEST(MachineSmoke, TidAndNumThreads) {
  auto M = makeMachine(SchemeKind::Hst, 4);
  ASSERT_TRUE(bool(M->loadAssembly(R"(
; each thread writes its tid+numthreads into out[tid]
_start:
        tid     r1
        sys     r2, #2          ; r2 = num threads
        add     r3, r1, r2
        la      r4, out
        lsli    r5, r1, #3
        add     r4, r4, r5
        std     r3, [r4]
        halt
        .align 8
out:    .space 64
)")));
  auto Result = M->run({});
  ASSERT_TRUE(bool(Result)) << Result.error().render();
  uint64_t Out = M->program().requiredSymbol("out");
  for (unsigned Tid = 0; Tid < 4; ++Tid)
    EXPECT_EQ(M->mem().shadowLoad(Out + Tid * 8, 8), Tid + 4u);
}

TEST(MachineSmoke, R0HoldsTidAtEntry) {
  auto M = makeMachine(SchemeKind::Hst, 2);
  ASSERT_TRUE(bool(M->loadAssembly(R"(
_start:
        la      r4, out
        lsli    r5, r0, #3
        add     r4, r4, r5
        addi    r1, r0, #100
        std     r1, [r4]
        halt
        .align 8
out:    .space 16
)")));
  auto Result = M->run({});
  ASSERT_TRUE(bool(Result)) << Result.error().render();
  uint64_t Out = M->program().requiredSymbol("out");
  EXPECT_EQ(M->mem().shadowLoad(Out, 8), 100u);
  EXPECT_EQ(M->mem().shadowLoad(Out + 8, 8), 101u);
}

TEST(MachineSmoke, CountersTrackInstructionMix) {
  auto M = makeMachine(SchemeKind::Hst);
  ASSERT_TRUE(bool(M->loadAssembly(R"(
_start:
        la      r1, data
        ldw     r2, [r1]
        stw     r2, [r1, #4]
        stw     r2, [r1, #8]
retry:  ldxr.w  r3, [r1]
        stxr.w  r4, r3, [r1]
        cbnz    r4, retry
        halt
        .align 4096
data:   .space 16
)")));
  auto Result = M->run({});
  ASSERT_TRUE(bool(Result)) << Result.error().render();
  EXPECT_EQ(Result->Total.Stores, 2u);
  EXPECT_EQ(Result->Total.LoadLinks, 1u);
  EXPECT_EQ(Result->Total.StoreConds, 1u);
  EXPECT_GE(Result->Total.Loads, 1u);
  EXPECT_GT(Result->Total.ExecutedInsts, 0u);
}

TEST(MachineSmoke, HaltsEveryThreadIndependently) {
  auto M = makeMachine(SchemeKind::PicoCas, 3);
  ASSERT_TRUE(bool(M->loadAssembly(R"(
; thread 0 spins a while; others exit immediately
_start:
        tid     r1
        cbnz    r1, out
        li      r2, #2000
spin:   cbz     r2, out
        addi    r2, r2, #-1
        b       spin
out:    halt
)")));
  auto Result = M->run({});
  ASSERT_TRUE(bool(Result)) << Result.error().render();
  EXPECT_TRUE(Result->AllHalted);
}
