//===- tests/TbCacheConcurrencyTest.cpp - sharded TB cache under threads ---------===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//
//
// Hammers the sharded TbCache from many host threads — concurrent
// lookup/translate, chain resolution, and flush — and checks the per-vCPU
// jump cache drops its contents when the cache generation moves. The CI
// matrix runs this binary under ThreadSanitizer (LLSC_SANITIZE=thread),
// which is what keeps the chain-slot publication protocol honest.
//
//===----------------------------------------------------------------------===//

#include "core/Machine.h"
#include "engine/TbCache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

using namespace llsc;

namespace {

/// A program with \p NumBlocks single-instruction blocks: every `b`
/// target starts a new block, so lookups at 0x1000 + 8*i all translate.
std::unique_ptr<Machine> makeManyBlockMachine(unsigned NumBlocks) {
  std::string Source = "_start:\n";
  for (unsigned I = 0; I < NumBlocks; ++I) {
    Source += "L";
    Source += std::to_string(I);
    Source += ": addi r1, r1, #1\n        b L";
    Source += std::to_string(I + 1);
    Source += "\n";
  }
  Source += "L";
  Source += std::to_string(NumBlocks);
  Source += ": halt\n";

  MachineConfig Config;
  Config.Scheme = SchemeKind::PicoCas;
  Config.NumThreads = 1;
  Config.MemBytes = 8ULL << 20;
  auto MachineOrErr = Machine::create(Config);
  EXPECT_TRUE(bool(MachineOrErr)) << MachineOrErr.error().render();
  auto M = MachineOrErr.take();
  EXPECT_TRUE(bool(M->loadAssembly(Source)));
  return M;
}

} // namespace

TEST(TbCacheConcurrency, ParallelLookupTranslateFlush) {
  constexpr unsigned NumBlocks = 64;
  constexpr unsigned NumThreads = 8;
  constexpr unsigned Iters = 400;

  auto M = makeManyBlockMachine(NumBlocks);
  TbCache &Cache = M->cache();

  std::atomic<bool> Failed{false};
  std::vector<std::thread> Threads;
  Threads.reserve(NumThreads + 1);
  for (unsigned T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&, T] {
      // Each thread walks the pcs at a different stride so shards see
      // miss-translate and read-hit traffic interleaved.
      for (unsigned I = 0; I < Iters && !Failed.load(); ++I) {
        uint64_t Pc = 0x1000 + 8 * ((I * (T + 1)) % NumBlocks);
        auto BlockOrErr = Cache.lookup(Pc, M->translator());
        if (!BlockOrErr || *BlockOrErr == nullptr ||
            (*BlockOrErr)->IR.GuestPc != Pc) {
          Failed.store(true);
          continue;
        }
        // Resolve a chain slot concurrently with other resolvers and
        // flushes (the publication-race regression surface).
        uint64_t TargetPc = 0x1000 + 8 * ((I * (T + 1) + 1) % NumBlocks);
        auto ChainOrErr = Cache.chain(**BlockOrErr, I & 1, TargetPc, M->translator());
        if (!ChainOrErr || (*ChainOrErr)->IR.GuestPc != TargetPc)
          Failed.store(true);
      }
    });
  // One flusher retiring everything periodically while readers run.
  Threads.emplace_back([&] {
    for (unsigned I = 0; I < 20; ++I) {
      Cache.flush();
      std::this_thread::yield();
    }
  });
  for (std::thread &Thread : Threads)
    Thread.join();

  EXPECT_FALSE(Failed.load());
  EXPECT_GT(Cache.lookups(), 0u);
  EXPECT_GT(Cache.misses(), 0u);
  EXPECT_GE(Cache.generation(), 21u); // 20 flushes + load-time flush.

  // The cache still serves correct blocks after the churn.
  auto BlockOrErr = Cache.lookup(0x1000, M->translator());
  ASSERT_TRUE(bool(BlockOrErr));
  EXPECT_EQ((*BlockOrErr)->IR.GuestPc, 0x1000u);
}

TEST(TbCacheConcurrency, ManyVcpusMissSimultaneously) {
  // All vCPUs start cold at the same entry and fan out: the striped
  // shards must serialize only same-shard translations. Run the machine
  // end to end with real host threads.
  std::string Source = R"(
_start: tid  r1
        li   r2, #500
loop:   cbz  r2, done
        bl   callee
        addi r2, r2, #-1
        b    loop
done:   halt
callee: addi r3, r3, #1
        ret
)";
  MachineConfig Config;
  Config.Scheme = SchemeKind::Hst;
  Config.NumThreads = 8;
  Config.MemBytes = 8ULL << 20;
  auto MachineOrErr = Machine::create(Config);
  ASSERT_TRUE(bool(MachineOrErr)) << MachineOrErr.error().render();
  auto M = MachineOrErr.take();
  ASSERT_TRUE(bool(M->loadAssembly(Source)));
  auto Result = M->run({});
  ASSERT_TRUE(bool(Result)) << Result.error().render();
  EXPECT_TRUE(Result->AllHalted);
  for (unsigned Tid = 0; Tid < 8; ++Tid)
    EXPECT_EQ(M->cpu(Tid).Regs[3], 500u) << "tid " << Tid;
  // Indirect returns resolve through the per-vCPU jump cache.
  EXPECT_GT(Result->Events.JmpCacheHits, 0u);
}

TEST(TbCacheConcurrency, JumpCacheInvalidatedOnFlush) {
  // Step a ret-heavy guest part-way, flush (generation bump), and finish:
  // stale jump-cache entries must be dropped, not followed.
  std::string Source = R"(
_start: li   r2, #200
loop:   cbz  r2, done
        bl   callee
        addi r2, r2, #-1
        b    loop
done:   halt
callee: addi r3, r3, #1
        ret
)";
  MachineConfig Config;
  Config.Scheme = SchemeKind::PicoCas;
  Config.NumThreads = 1;
  Config.MemBytes = 8ULL << 20;
  auto MachineOrErr = Machine::create(Config);
  ASSERT_TRUE(bool(MachineOrErr)) << MachineOrErr.error().render();
  auto M = MachineOrErr.take();
  ASSERT_TRUE(bool(M->loadAssembly(Source)));

  M->prepareRun();
  VCpu &Cpu = M->cpu(0);
  uint64_t GenBefore = M->cache().generation();

  ASSERT_TRUE(bool(M->engine().stepBlocks(Cpu, 50)));
  EXPECT_GT(Cpu.Events.JmpCacheHits + Cpu.Events.JmpCacheMisses, 0u);
  EXPECT_EQ(Cpu.JmpCache.Generation, GenBefore);

  M->cache().flush();
  EXPECT_GT(M->cache().generation(), GenBefore);

  // Finish the run; the engine re-resolves everything through lookup().
  while (!Cpu.Halted) {
    auto Status = M->engine().stepBlocks(Cpu, 100);
    ASSERT_TRUE(bool(Status));
  }
  EXPECT_EQ(Cpu.Regs[3], 200u);
  EXPECT_EQ(Cpu.JmpCache.Generation, M->cache().generation());
}
