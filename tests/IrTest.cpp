//===- tests/IrTest.cpp - IR, verifier and optimizer unit tests ----------------===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/IRBuilder.h"
#include "ir/IRPrinter.h"
#include "ir/IRVerifier.h"
#include "ir/Optimizer.h"

#include "support/Random.h"
#include "support/StringUtils.h"

#include <gtest/gtest.h>

using namespace llsc;
using namespace llsc::ir;

namespace {

/// Counts ops of a given opcode.
unsigned countOps(const IRBlock &Block, IROp Op) {
  unsigned Count = 0;
  for (const IRInst &I : Block.Insts)
    if (I.Op == Op)
      ++Count;
  return Count;
}

} // namespace

TEST(IrAlu, EvalSemantics) {
  EXPECT_EQ(evalAluOp(IROp::Add, 2, 3, 0), 5u);
  EXPECT_EQ(evalAluOp(IROp::Sub, 2, 3, 0), static_cast<uint64_t>(-1));
  EXPECT_EQ(evalAluOp(IROp::UDiv, 7, 2, 0), 3u);
  EXPECT_EQ(evalAluOp(IROp::UDiv, 7, 0, 0), 0u) << "div by zero yields 0";
  EXPECT_EQ(evalAluOp(IROp::SDiv, static_cast<uint64_t>(-7), 2, 0),
            static_cast<uint64_t>(-3));
  EXPECT_EQ(evalAluOp(IROp::SDiv, static_cast<uint64_t>(INT64_MIN),
                      static_cast<uint64_t>(-1), 0),
            0u)
      << "INT_MIN / -1 yields 0, not UB";
  EXPECT_EQ(evalAluOp(IROp::Shl, 1, 65, 0), 2u) << "shift amounts mod 64";
  EXPECT_EQ(evalAluOp(IROp::Sar, static_cast<uint64_t>(-8), 1, 0),
            static_cast<uint64_t>(-4));
  EXPECT_EQ(evalAluOp(IROp::SltS, static_cast<uint64_t>(-1), 0, 0), 1u);
  EXPECT_EQ(evalAluOp(IROp::SltU, static_cast<uint64_t>(-1), 0, 0), 0u);
  EXPECT_EQ(evalAluOp(IROp::AddImm, 10, 0, -3), 7u);
}

TEST(IrAlu, CondCodes) {
  EXPECT_TRUE(evalCondCode(CondCode::Eq, 5, 5));
  EXPECT_TRUE(evalCondCode(CondCode::Ne, 5, 6));
  EXPECT_TRUE(evalCondCode(CondCode::LtS, static_cast<uint64_t>(-1), 0));
  EXPECT_FALSE(evalCondCode(CondCode::LtU, static_cast<uint64_t>(-1), 0));
  EXPECT_TRUE(evalCondCode(CondCode::GeU, static_cast<uint64_t>(-1), 0));
  EXPECT_TRUE(evalCondCode(CondCode::GeS, 0, static_cast<uint64_t>(-1)));
}

TEST(IrVerifier, AcceptsWellFormed) {
  IRBuilder B(0x1000);
  ValueId T = B.emitMovImm(1);
  B.emitBinTo(IROp::Add, IRBuilder::guestReg(1), T, T);
  B.emitSetPcImm(0x1004);
  IRBlock Block = B.take();
  EXPECT_TRUE(bool(verify(Block)));
}

TEST(IrVerifier, RejectsMissingTerminator) {
  IRBuilder B(0x1000);
  B.emitMovImm(1);
  IRBlock Block = B.take();
  EXPECT_FALSE(bool(verify(Block)));
}

TEST(IrVerifier, RejectsMidBlockTerminator) {
  IRBuilder B(0x1000);
  B.emitSetPcImm(0x1004);
  B.emitMovImm(1);
  B.emitSetPcImm(0x1008);
  IRBlock Block = B.take();
  EXPECT_FALSE(bool(verify(Block)));
}

TEST(IrVerifier, RejectsBadOperands) {
  IRBuilder B(0x1000);
  B.emitMovImm(1);
  B.emitSetPcImm(0x1004);
  IRBlock Block = B.take();
  Block.Insts[0].Dst = Block.NumValues; // Out of range.
  EXPECT_FALSE(bool(verify(Block)));
}

TEST(IrVerifier, RejectsBadMemSize) {
  IRBuilder B(0x1000);
  B.emitLoadG(IRBuilder::guestReg(1), 0, 4, false);
  B.emitSetPcImm(0x1004);
  IRBlock Block = B.take();
  Block.Insts[0].Size = 3;
  EXPECT_FALSE(bool(verify(Block)));
}

TEST(IrOptimizer, FoldsConstantChains) {
  IRBuilder B(0x1000);
  // r1 = 6; r2 = 7; r3 = r1 * r2.
  B.emitMovImmTo(IRBuilder::guestReg(1), 6);
  B.emitMovImmTo(IRBuilder::guestReg(2), 7);
  B.emitBinTo(IROp::Mul, IRBuilder::guestReg(3), IRBuilder::guestReg(1),
              IRBuilder::guestReg(2));
  B.emitSetPcImm(0x1010);
  IRBlock Block = B.take();
  OptStats Stats = optimize(Block);
  EXPECT_GE(Stats.ConstantsFolded, 1u);
  // The mul must now be a MovImm 42 into r3.
  bool Found = false;
  for (const IRInst &I : Block.Insts)
    if (I.Op == IROp::MovImm && I.Dst == 3 && I.Imm == 42)
      Found = true;
  EXPECT_TRUE(Found) << printBlock(Block);
}

TEST(IrOptimizer, MovkChainFoldsToSingleConstant) {
  // Simulates the translator's lowering of li r1, #0x12345678 via
  // movz + and/or movk pair.
  IRBuilder B(0x1000);
  ValueId R1 = IRBuilder::guestReg(1);
  B.emitMovImmTo(R1, 0x5678);
  B.emitBinImmTo(IROp::AndImm, R1, R1,
                 static_cast<int64_t>(~(0xffffULL << 16)));
  B.emitBinImmTo(IROp::OrImm, R1, R1, 0x1234LL << 16);
  B.emitSetPcImm(0x100c);
  IRBlock Block = B.take();
  optimize(Block);
  ASSERT_FALSE(Block.Insts.empty());
  // Final write to r1 must be the folded constant.
  bool Found = false;
  for (const IRInst &I : Block.Insts)
    if (I.Op == IROp::MovImm && I.Dst == 1 && I.Imm == 0x12345678)
      Found = true;
  EXPECT_TRUE(Found) << printBlock(Block);
}

TEST(IrOptimizer, DceRemovesDeadTemps) {
  IRBuilder B(0x1000);
  B.emitMovImm(1); // Dead temp.
  B.emitMovImm(2); // Dead temp.
  B.emitMovImmTo(IRBuilder::guestReg(1), 3);
  B.emitSetPcImm(0x1004);
  IRBlock Block = B.take();
  OptStats Stats = eliminateDeadOps(Block);
  EXPECT_EQ(Stats.DeadOpsRemoved, 2u);
  EXPECT_EQ(Block.Insts.size(), 2u);
}

TEST(IrOptimizer, DceKeepsSideEffects) {
  IRBuilder B(0x1000);
  ValueId Addr = B.emitMovImm(0x100);
  B.emitLoadG(Addr, 0, 8, false); // Result unused but load kept (may fault).
  B.emitStoreG(Addr, 0, Addr, 8);
  B.emitSetPcImm(0x1004);
  IRBlock Block = B.take();
  optimize(Block);
  EXPECT_EQ(countOps(Block, IROp::LoadG), 1u);
  EXPECT_EQ(countOps(Block, IROp::StoreG), 1u);
}

TEST(IrOptimizer, DceKeepsRegsAcrossHelpers) {
  IRBuilder B(0x1000);
  // r1 written, then an LL (which may observe registers), then r1
  // rewritten: the first write must survive.
  B.emitMovImmTo(IRBuilder::guestReg(1), 10);
  B.emitLoadLink(IRBuilder::guestReg(2), 4);
  B.emitMovImmTo(IRBuilder::guestReg(1), 20);
  B.emitSetPcImm(0x100c);
  IRBlock Block = B.take();
  optimize(Block);
  unsigned WritesToR1 = 0;
  for (const IRInst &I : Block.Insts)
    if (writesDst(I.Op) && I.Dst == 1)
      ++WritesToR1;
  EXPECT_EQ(WritesToR1, 2u) << printBlock(Block);
}

TEST(IrOptimizer, DceDropsOverwrittenRegWrite) {
  IRBuilder B(0x1000);
  B.emitMovImmTo(IRBuilder::guestReg(1), 10); // Dead: overwritten below.
  B.emitMovImmTo(IRBuilder::guestReg(1), 20);
  B.emitSetPcImm(0x1008);
  IRBlock Block = B.take();
  optimize(Block);
  unsigned WritesToR1 = 0;
  for (const IRInst &I : Block.Insts)
    if (writesDst(I.Op) && I.Dst == 1)
      ++WritesToR1;
  EXPECT_EQ(WritesToR1, 1u) << printBlock(Block);
}

TEST(IrOptimizer, CopyPropagation) {
  IRBuilder B(0x1000);
  ValueId T1 = B.emitMovImm(5);
  ValueId T2 = B.newTemp();
  B.emitMovTo(T2, T1);
  B.emitBinTo(IROp::Add, IRBuilder::guestReg(1), T2, T2);
  B.emitSetPcImm(0x1008);
  IRBlock Block = B.take();
  OptStats Stats = propagateCopies(Block);
  EXPECT_GE(Stats.CopiesPropagated, 2u);
  // After copy-prop + fold + DCE the add collapses to a constant.
  optimize(Block);
  bool Found = false;
  for (const IRInst &I : Block.Insts)
    if (I.Op == IROp::MovImm && I.Dst == 1 && I.Imm == 10)
      Found = true;
  EXPECT_TRUE(Found) << printBlock(Block);
}

TEST(IrOptimizer, CopyPropInvalidatedByRedefinition) {
  IRBuilder B(0x1000);
  ValueId T1 = B.newTemp();
  ValueId T2 = B.newTemp();
  B.emitMovImmTo(T1, 5);
  B.emitMovTo(T2, T1);      // T2 = T1 (=5).
  B.emitMovImmTo(T1, 9);    // T1 changes; T2 must stay 5.
  B.emitBinTo(IROp::Add, IRBuilder::guestReg(1), T2, T1);
  B.emitSetPcImm(0x1010);
  IRBlock Block = B.take();
  optimize(Block);
  bool Found = false;
  for (const IRInst &I : Block.Insts)
    if (I.Op == IROp::MovImm && I.Dst == 1 && I.Imm == 14)
      Found = true;
  EXPECT_TRUE(Found) << printBlock(Block);
}

TEST(IrOptimizer, BrCondConstantFolding) {
  {
    // Always-taken branch becomes the terminator.
    IRBuilder B(0x1000);
    ValueId T1 = B.emitMovImm(1);
    ValueId T2 = B.emitMovImm(1);
    B.emitBrCond(CondCode::Eq, T1, T2, 0x2000);
    B.emitSetPcImm(0x1008);
    IRBlock Block = B.take();
    optimize(Block);
    ASSERT_TRUE(bool(verify(Block)));
    EXPECT_EQ(Block.Insts.back().Op, IROp::SetPcImm);
    EXPECT_EQ(Block.Insts.back().Imm, 0x2000);
  }
  {
    // Never-taken branch disappears.
    IRBuilder B(0x1000);
    ValueId T1 = B.emitMovImm(1);
    ValueId T2 = B.emitMovImm(2);
    B.emitBrCond(CondCode::Eq, T1, T2, 0x2000);
    B.emitSetPcImm(0x1008);
    IRBlock Block = B.take();
    optimize(Block);
    EXPECT_EQ(countOps(Block, IROp::BrCond), 0u);
    EXPECT_EQ(Block.Insts.back().Imm, 0x1008);
  }
}

TEST(IrOptimizer, InstrumentCountMaintained) {
  IRBuilder B(0x1000);
  B.setInstrumentMode(true);
  ValueId T = B.emitMovImm(0x1234); // Instrumented, dead.
  B.emitStoreHost(T, 0, T, 4);      // Instrumented, kept.
  B.setInstrumentMode(false);
  B.emitSetPcImm(0x1004);
  IRBlock Block = B.take();
  EXPECT_EQ(Block.InstrumentOpCount, 2u);
  optimize(Block);
  // The StoreHost keeps its operand alive; count must stay consistent
  // with the surviving flagged ops.
  unsigned Flagged = 0;
  for (const IRInst &I : Block.Insts)
    if (I.Flags & IRFlagInstrument)
      ++Flagged;
  EXPECT_EQ(Block.InstrumentOpCount, Flagged);
}

TEST(IrPrinter, RendersRegsAndTemps) {
  EXPECT_EQ(printValue(0), "r0");
  EXPECT_EQ(printValue(13), "sp");
  // Machine register-file slots past GRV's 16 names (used by wider
  // frontends) print as g<N>; ids past FirstTempId are temps.
  EXPECT_EQ(printValue(guest::NumGuestRegs),
            formatString("g%u", guest::NumGuestRegs));
  EXPECT_EQ(printValue(FirstTempId), formatString("t%u", FirstTempId));
  IRBuilder B(0x1000);
  ValueId T = B.emitMovImm(42);
  B.emitStoreG(T, 8, T, 4);
  B.emitSetPcImm(0x1004);
  std::string Text = printBlock(B.peek());
  std::string TName = formatString("t%u", FirstTempId);
  EXPECT_NE(Text.find(TName + " = 0x2a"), std::string::npos) << Text;
  EXPECT_NE(Text.find("stg.4 [" + TName + "+8] = " + TName),
            std::string::npos)
      << Text;
}

/// Property: the optimizer never changes the architectural effect of a
/// random pure-ALU block. We compare the final guest register state of an
/// unoptimized vs optimized block under a tiny reference executor.
TEST(IrOptimizer, PropertyOptimizationPreservesSemantics) {
  Rng R(2024);
  for (int Trial = 0; Trial < 200; ++Trial) {
    IRBuilder B(0x1000);
    std::vector<ValueId> Temps;
    for (int I = 0; I < 4; ++I)
      Temps.push_back(B.emitMovImm(static_cast<int64_t>(R.next())));
    const IROp Ops[] = {IROp::Add,  IROp::Sub, IROp::Mul, IROp::And,
                        IROp::Or,   IROp::Xor, IROp::Shl, IROp::Shr,
                        IROp::SltS, IROp::SltU};
    for (int I = 0; I < 12; ++I) {
      IROp Op = Ops[R.nextBelow(std::size(Ops))];
      ValueId A = Temps[R.nextBelow(Temps.size())];
      ValueId C = Temps[R.nextBelow(Temps.size())];
      if (R.nextBool(0.5)) {
        Temps.push_back(B.emitBin(Op, A, C));
      } else {
        // Write into a guest register occasionally.
        B.emitBinTo(Op, IRBuilder::guestReg(R.nextBelow(8)), A, C);
      }
    }
    B.emitSetPcImm(0x2000);
    IRBlock Original = B.take();
    IRBlock Optimized = Original;
    optimize(Optimized);
    ASSERT_TRUE(bool(verify(Optimized)));

    auto Execute = [](const IRBlock &Block) {
      std::vector<uint64_t> Values(Block.NumValues, 0);
      for (const IRInst &I : Block.Insts) {
        if (I.Op == IROp::SetPcImm)
          break;
        Values[I.Dst] = evalAluOp(I.Op, Values[I.A], Values[I.B], I.Imm);
      }
      return std::vector<uint64_t>(Values.begin(),
                                   Values.begin() + FirstTempId);
    };
    EXPECT_EQ(Execute(Original), Execute(Optimized))
        << printBlock(Original) << "\nvs\n"
        << printBlock(Optimized);
  }
}

TEST(IrOptimizer, StoreToLoadForwarding) {
  IRBuilder B(0x1000);
  ValueId Base = IRBuilder::guestReg(1);
  ValueId Val = IRBuilder::guestReg(2);
  B.emitStoreG(Base, 8, Val, 8);
  ValueId Loaded = B.emitLoadG(Base, 8, 8, false);
  B.emitBinTo(IROp::Add, IRBuilder::guestReg(3), Loaded, Loaded);
  B.emitSetPcImm(0x100c);
  IRBlock Block = B.take();
  forwardStoresToLoads(Block);
  unsigned Loads = 0;
  for (const IRInst &I : Block.Insts)
    if (I.Op == IROp::LoadG)
      ++Loads;
  EXPECT_EQ(Loads, 0u) << printBlock(Block);
}

TEST(IrOptimizer, ForwardingBlockedByAliasingWrite) {
  IRBuilder B(0x1000);
  ValueId Base = IRBuilder::guestReg(1);
  ValueId Other = IRBuilder::guestReg(4);
  ValueId Val = IRBuilder::guestReg(2);
  B.emitStoreG(Base, 8, Val, 8);
  B.emitStoreG(Other, 0, Val, 8); // Different base: may alias.
  B.emitLoadG(Base, 8, 8, false);
  B.emitSetPcImm(0x1010);
  IRBlock Block = B.take();
  forwardStoresToLoads(Block);
  unsigned Loads = 0;
  for (const IRInst &I : Block.Insts)
    if (I.Op == IROp::LoadG)
      ++Loads;
  EXPECT_EQ(Loads, 1u) << "aliasing store must block forwarding";
}

TEST(IrOptimizer, ForwardingBlockedByHelperAndRedefinition) {
  {
    IRBuilder B(0x1000);
    ValueId Base = IRBuilder::guestReg(1);
    B.emitStoreG(Base, 0, IRBuilder::guestReg(2), 8);
    B.emitLoadLink(Base, 4); // Order-sensitive: invalidates.
    B.emitLoadG(Base, 0, 8, false);
    B.emitSetPcImm(0x100c);
    IRBlock Block = B.take();
    forwardStoresToLoads(Block);
    unsigned Loads = 0;
    for (const IRInst &I : Block.Insts)
      if (I.Op == IROp::LoadG)
        ++Loads;
    EXPECT_EQ(Loads, 1u);
  }
  {
    IRBuilder B(0x1000);
    ValueId Base = IRBuilder::guestReg(1);
    B.emitStoreG(Base, 0, IRBuilder::guestReg(2), 8);
    B.emitBinImmTo(IROp::AddImm, Base, Base, 8); // Base redefined.
    B.emitLoadG(Base, 0, 8, false);
    B.emitSetPcImm(0x100c);
    IRBlock Block = B.take();
    forwardStoresToLoads(Block);
    unsigned Loads = 0;
    for (const IRInst &I : Block.Insts)
      if (I.Op == IROp::LoadG)
        ++Loads;
    EXPECT_EQ(Loads, 1u) << "redefined base must block forwarding";
  }
}

TEST(IrOptimizer, ForwardingSkipsNarrowAndDisjointKeeps) {
  IRBuilder B(0x1000);
  ValueId Base = IRBuilder::guestReg(1);
  B.emitStoreG(Base, 0, IRBuilder::guestReg(2), 4); // Narrow store.
  B.emitLoadG(Base, 0, 4, false);                   // Not forwarded (4B).
  B.emitStoreG(Base, 16, IRBuilder::guestReg(3), 8); // Disjoint 8B store.
  B.emitStoreG(Base, 32, IRBuilder::guestReg(4), 8); // Disjoint again.
  B.emitLoadG(Base, 16, 8, false);                   // Forwarded.
  B.emitSetPcImm(0x1018);
  IRBlock Block = B.take();
  forwardStoresToLoads(Block);
  unsigned Loads = 0;
  for (const IRInst &I : Block.Insts)
    if (I.Op == IROp::LoadG)
      ++Loads;
  EXPECT_EQ(Loads, 1u) << printBlock(Block);
}
