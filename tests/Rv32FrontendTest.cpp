//===- tests/Rv32FrontendTest.cpp - RV32 frontend end-to-end matrix ------------===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// End-to-end matrix for the --arch=rv32 frontend: the checked-in ELF32
/// fixtures (tests/fixtures/rv32/) run under EVERY atomic scheme in both
/// execution tiers (threaded interpreter and forced JIT), plus the
/// Section VI rule-based AMO path, asserting architectural results
/// through the loader's symbol table. The Section IV-A litmus rows are
/// replayed through the RV32 fragment program and must land in the same
/// Table II atomicity class as the GRV frontend.
///
//===----------------------------------------------------------------------===//

#include "core/Machine.h"
#include "input/InputArch.h"
#include "workloads/Litmus.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

using namespace llsc;
using namespace llsc::workloads;

#ifndef LLSC_RV32_FIXTURE_DIR
#error "LLSC_RV32_FIXTURE_DIR must point at tests/fixtures/rv32"
#endif

namespace {

constexpr unsigned NumThreads = 4;
constexpr uint64_t Iters = 64;

/// Execution-tier axis of the matrix.
enum class Tier {
  Interp,   ///< Tier-0 threaded interpreter only.
  Jit,      ///< JitHotThreshold = 0: every block through the tier-1 JIT.
  RuleBased ///< Interpreter + Section VI idiom pass (AMOs as host RMW).
};

const char *tierName(Tier T) {
  switch (T) {
  case Tier::Interp:
    return "Interp";
  case Tier::Jit:
    return "Jit";
  case Tier::RuleBased:
    return "RuleBased";
  }
  return "?";
}

guest::Program loadFixture(const std::string &Name) {
  std::string Path = std::string(LLSC_RV32_FIXTURE_DIR) + "/" + Name;
  std::ifstream In(Path, std::ios::binary);
  EXPECT_TRUE(In.good()) << "missing fixture " << Path;
  std::ostringstream Buf;
  Buf << In.rdbuf();
  const std::string Bytes = Buf.str();
  auto ProgOrErr = input::inputArch(input::GuestArch::Rv32)
                       .loadImage(std::vector<uint8_t>(Bytes.begin(),
                                                       Bytes.end()));
  EXPECT_TRUE(bool(ProgOrErr)) << ProgOrErr.error().render();
  return ProgOrErr.take();
}

std::unique_ptr<Machine> makeMachine(SchemeKind Scheme, Tier T,
                                     unsigned Threads = NumThreads) {
  MachineConfig Config;
  Config.Arch = input::GuestArch::Rv32;
  Config.Scheme = Scheme;
  Config.NumThreads = Threads;
  Config.MemBytes = 16ULL << 20;
  Config.ForceSoftHtm = true;
  Config.MaxBlocksPerCpu = 50'000'000;
  switch (T) {
  case Tier::Interp:
    Config.Jit = false;
    break;
  case Tier::Jit:
    Config.JitHotThreshold = 0;
    break;
  case Tier::RuleBased:
    Config.Jit = false;
    Config.Translation.RuleBasedAtomics = true;
    break;
  }
  auto MachineOrErr = Machine::create(Config);
  EXPECT_TRUE(bool(MachineOrErr)) << MachineOrErr.error().render();
  return MachineOrErr.take();
}

uint32_t word(Machine &M, const char *Sym) {
  return static_cast<uint32_t>(
      M.mem().shadowLoad(M.program().requiredSymbol(Sym), 4));
}

struct MatrixParam {
  SchemeKind Scheme;
  Tier T;
};

class Rv32Matrix : public ::testing::TestWithParam<MatrixParam> {};

std::vector<MatrixParam> matrixParams() {
  std::vector<MatrixParam> Params;
  for (SchemeKind Scheme : allSchemeKinds())
    for (Tier T : {Tier::Interp, Tier::Jit, Tier::RuleBased})
      Params.push_back({Scheme, T});
  return Params;
}

INSTANTIATE_TEST_SUITE_P(
    SchemesAndTiers, Rv32Matrix, ::testing::ValuesIn(matrixParams()),
    [](const ::testing::TestParamInfo<MatrixParam> &Info) {
      std::string Name = schemeTraits(Info.param.Scheme).Name;
      for (char &C : Name)
        if (C == '-')
          C = '_';
      return Name + "_" + tierName(Info.param.T);
    });

} // namespace

/// spinlock.elf: LR/SC mutual exclusion holds under every scheme and tier.
TEST_P(Rv32Matrix, SpinlockFixture) {
  auto M = makeMachine(GetParam().Scheme, GetParam().T);
  ASSERT_TRUE(bool(M->load(input::GuestImage(input::GuestArch::Rv32,
                                             loadFixture("spinlock.elf")))));
  auto Result = M->run({});
  ASSERT_TRUE(bool(Result)) << Result.error().render();
  EXPECT_TRUE(Result->AllHalted);
  EXPECT_EQ(Result->GuestArch, input::GuestArch::Rv32);
  EXPECT_EQ(word(*M, "LOCK"), 0u);
  EXPECT_EQ(word(*M, "COUNTER"), NumThreads * Iters);
}

/// amo_counter.elf: every AMO family produces its architectural result.
TEST_P(Rv32Matrix, AmoCounterFixture) {
  auto M = makeMachine(GetParam().Scheme, GetParam().T);
  ASSERT_TRUE(bool(M->load(input::GuestImage(
      input::GuestArch::Rv32, loadFixture("amo_counter.elf")))));
  auto Result = M->run({});
  ASSERT_TRUE(bool(Result)) << Result.error().render();
  EXPECT_TRUE(Result->AllHalted);

  EXPECT_EQ(word(*M, "COUNTER"), NumThreads * Iters);
  const uint32_t Swapped = word(*M, "SWAPW");
  EXPECT_GE(Swapped, 1u);
  EXPECT_LE(Swapped, NumThreads);
  EXPECT_EQ(word(*M, "ORW"), (1u << NumThreads) - 1);
  EXPECT_EQ(word(*M, "XORW"), (1u << NumThreads) - 1);
  EXPECT_EQ(word(*M, "MAXW"), NumThreads);
  EXPECT_EQ(word(*M, "ANDW"), 0u);
}

namespace {

class Rv32Litmus : public ::testing::TestWithParam<SchemeKind> {};

INSTANTIATE_TEST_SUITE_P(
    Schemes, Rv32Litmus, ::testing::ValuesIn(allSchemeKinds()),
    [](const ::testing::TestParamInfo<SchemeKind> &Info) {
      std::string Name = schemeTraits(Info.param).Name;
      for (char &C : Name)
        if (C == '-')
          C = '_';
      return Name;
    });

} // namespace

/// The RV32 frontend's LR/SC lowering must preserve each scheme's Table II
/// atomicity class: the litmus rows match the GRV frontend's exactly.
TEST_P(Rv32Litmus, ClassificationMatchesTableII) {
  auto M = makeMachine(GetParam(), Tier::Interp, /*Threads=*/2);
  auto DriverOrErr = LitmusDriver::create(*M);
  ASSERT_TRUE(bool(DriverOrErr)) << DriverOrErr.error().render();
  MeasuredAtomicity Measured = classifyScheme(*DriverOrErr);

  switch (schemeTraits(GetParam()).Atomicity) {
  case AtomicityClass::Strong:
    EXPECT_EQ(Measured, MeasuredAtomicity::Strong);
    break;
  case AtomicityClass::Weak:
    EXPECT_EQ(Measured, MeasuredAtomicity::Weak);
    break;
  case AtomicityClass::Incorrect:
    EXPECT_EQ(Measured, MeasuredAtomicity::Incorrect);
    break;
  }
}

/// Uncontested LR/SC through the rv32 fragments, every scheme.
TEST_P(Rv32Litmus, UncontestedLrScSucceeds) {
  auto M = makeMachine(GetParam(), Tier::Interp, /*Threads=*/2);
  auto DriverOrErr = LitmusDriver::create(*M);
  ASSERT_TRUE(bool(DriverOrErr)) << DriverOrErr.error().render();
  LitmusDriver &Driver = *DriverOrErr;

  Driver.resetVar(7);
  EXPECT_EQ(Driver.loadLink(0), 7u);
  EXPECT_TRUE(Driver.storeCond(0, 8));
  EXPECT_EQ(Driver.varValue(), 8u);
}

/// SC without a matching LR must fail through the rv32 frontend too.
TEST_P(Rv32Litmus, ScWithoutLrFails) {
  auto M = makeMachine(GetParam(), Tier::Interp, /*Threads=*/2);
  auto DriverOrErr = LitmusDriver::create(*M);
  ASSERT_TRUE(bool(DriverOrErr)) << DriverOrErr.error().render();
  LitmusDriver &Driver = *DriverOrErr;

  Driver.resetVar(7);
  EXPECT_FALSE(Driver.storeCond(0, 8));
  EXPECT_EQ(Driver.varValue(), 7u);
}
