//===- tests/Rv32DecodeTest.cpp - RV32IA decoder golden tests ------------------===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Golden tests for the RV32IA decoder (src/input/rv32/Rv32Isa.h): one
/// deterministic check per encoding class, explicit rejection of the
/// encodings the frontend does NOT support (compressed, M extension,
/// LR with rs2 != 0), disassembly goldens, and the runtime misaligned
/// LR/SC fault the frontend is contracted to deliver (CheckAlign).
///
//===----------------------------------------------------------------------===//

#include "core/Machine.h"
#include "input/GuestImage.h"
#include "input/rv32/Rv32Isa.h"

#include <gtest/gtest.h>

using namespace llsc;
using namespace llsc::input::rv32;

namespace {

Rv32Inst decodeExpect(uint32_t Word, Rv32Op Op) {
  Rv32Inst I = rv32Decode(Word);
  EXPECT_EQ(I.Op, Op) << rv32Disassemble(Word);
  return I;
}

/// Builds an RV32 guest program from raw words at 0x1000 with a 4 KiB
/// data page appended.
guest::Program rv32Program(const std::vector<uint32_t> &Words) {
  constexpr uint64_t Base = 0x1000;
  const uint64_t DataAddr = 0x2000;
  std::vector<uint8_t> Image(DataAddr - Base + 4096, 0);
  for (size_t I = 0; I < Words.size(); ++I)
    for (unsigned B = 0; B < 4; ++B)
      Image[I * 4 + B] = static_cast<uint8_t>(Words[I] >> (B * 8));
  return guest::Program(std::move(Image), Base, Base, {{"data", DataAddr}});
}

} // namespace

/// U-format: LUI/AUIPC carry the upper-20 immediate, pre-shifted.
TEST(Rv32Decode, UFormat) {
  Rv32Inst I = decodeExpect(rv32EncodeU(0x12345000, 11, 0x37), Rv32Op::Lui);
  EXPECT_EQ(I.Rd, 11);
  EXPECT_EQ(I.Imm, 0x12345000);

  I = decodeExpect(rv32EncodeU(static_cast<int32_t>(0xfffff000), 5, 0x17),
                   Rv32Op::Auipc);
  EXPECT_EQ(I.Rd, 5);
  EXPECT_EQ(I.Imm, static_cast<int32_t>(0xfffff000));
}

/// J-format: JAL's scrambled 21-bit immediate, positive and negative.
TEST(Rv32Decode, JFormat) {
  Rv32Inst I = decodeExpect(rv32EncodeJ(0x12344, 1), Rv32Op::Jal);
  EXPECT_EQ(I.Rd, 1);
  EXPECT_EQ(I.Imm, 0x12344);

  I = decodeExpect(rv32EncodeJ(-4, 0), Rv32Op::Jal);
  EXPECT_EQ(I.Rd, 0);
  EXPECT_EQ(I.Imm, -4);
}

/// I-format: JALR, loads, ALU immediates (including the shift split) with
/// sign-extended immediates.
TEST(Rv32Decode, IFormat) {
  Rv32Inst I = decodeExpect(rv32EncodeI(-8, 1, 0x0, 0, 0x67), Rv32Op::Jalr);
  EXPECT_EQ(I.Rs1, 1);
  EXPECT_EQ(I.Imm, -8);
  // JALR exists only with funct3 == 0.
  decodeExpect(rv32EncodeI(-8, 1, 0x5, 0, 0x67), Rv32Op::Invalid);

  struct {
    unsigned Funct3;
    Rv32Op Op;
  } Loads[] = {{0x0, Rv32Op::Lb}, {0x1, Rv32Op::Lh},  {0x2, Rv32Op::Lw},
               {0x4, Rv32Op::Lbu}, {0x5, Rv32Op::Lhu}};
  for (const auto &L : Loads) {
    I = decodeExpect(rv32EncodeI(-2048, 10, L.Funct3, 11, 0x03), L.Op);
    EXPECT_EQ(I.Rd, 11);
    EXPECT_EQ(I.Rs1, 10);
    EXPECT_EQ(I.Imm, -2048);
  }

  I = decodeExpect(rv32EncodeI(2047, 2, 0x0, 3, 0x13), Rv32Op::Addi);
  EXPECT_EQ(I.Imm, 2047);
  decodeExpect(rv32EncodeI(1, 2, 0x2, 3, 0x13), Rv32Op::Slti);
  decodeExpect(rv32EncodeI(1, 2, 0x3, 3, 0x13), Rv32Op::Sltiu);
  decodeExpect(rv32EncodeI(1, 2, 0x4, 3, 0x13), Rv32Op::Xori);
  decodeExpect(rv32EncodeI(1, 2, 0x6, 3, 0x13), Rv32Op::Ori);
  decodeExpect(rv32EncodeI(1, 2, 0x7, 3, 0x13), Rv32Op::Andi);

  // Shifts: shamt in rs2's field, srli/srai split on bit 30.
  I = decodeExpect(rv32EncodeI(31, 2, 0x1, 3, 0x13), Rv32Op::Slli);
  EXPECT_EQ(I.Imm & 0x1f, 31);
  decodeExpect(rv32EncodeI(4, 2, 0x5, 3, 0x13), Rv32Op::Srli);
  decodeExpect(rv32EncodeI(4 | 0x400, 2, 0x5, 3, 0x13), Rv32Op::Srai);
}

/// B-format: all six branches with a negative displacement.
TEST(Rv32Decode, BFormat) {
  struct {
    unsigned Funct3;
    Rv32Op Op;
  } Branches[] = {{0x0, Rv32Op::Beq},  {0x1, Rv32Op::Bne},
                  {0x4, Rv32Op::Blt},  {0x5, Rv32Op::Bge},
                  {0x6, Rv32Op::Bltu}, {0x7, Rv32Op::Bgeu}};
  for (const auto &Br : Branches) {
    Rv32Inst I = decodeExpect(rv32EncodeB(-18, 7, 6, Br.Funct3), Br.Op);
    EXPECT_EQ(I.Rs1, 6);
    EXPECT_EQ(I.Rs2, 7);
    EXPECT_EQ(I.Imm, -18);
  }
  decodeExpect(rv32EncodeB(0x0ffe, 7, 6, 0x0), Rv32Op::Beq); // max positive
  EXPECT_EQ(rv32Decode(rv32EncodeB(0x0ffe, 7, 6, 0x0)).Imm, 0x0ffe);
}

/// S-format: stores with a negative offset.
TEST(Rv32Decode, SFormat) {
  struct {
    unsigned Funct3;
    Rv32Op Op;
  } Stores[] = {{0x0, Rv32Op::Sb}, {0x1, Rv32Op::Sh}, {0x2, Rv32Op::Sw}};
  for (const auto &St : Stores) {
    Rv32Inst I = decodeExpect(rv32EncodeS(-33, 12, 11, St.Funct3, 0x23),
                              St.Op);
    EXPECT_EQ(I.Rs1, 11);
    EXPECT_EQ(I.Rs2, 12);
    EXPECT_EQ(I.Imm, -33);
  }
}

/// R-format: the ten RV32I register-register ops, sub/sra on bit 30.
TEST(Rv32Decode, RFormat) {
  struct {
    unsigned Funct7, Funct3;
    Rv32Op Op;
  } Ops[] = {{0x00, 0x0, Rv32Op::Add},  {0x20, 0x0, Rv32Op::Sub},
             {0x00, 0x1, Rv32Op::Sll},  {0x00, 0x2, Rv32Op::Slt},
             {0x00, 0x3, Rv32Op::Sltu}, {0x00, 0x4, Rv32Op::Xor},
             {0x00, 0x5, Rv32Op::Srl},  {0x20, 0x5, Rv32Op::Sra},
             {0x00, 0x6, Rv32Op::Or},   {0x00, 0x7, Rv32Op::And}};
  for (const auto &Of : Ops) {
    Rv32Inst I = decodeExpect(rv32EncodeR(Of.Funct7, 3, 2, Of.Funct3, 1, 0x33),
                              Of.Op);
    EXPECT_EQ(I.Rd, 1);
    EXPECT_EQ(I.Rs1, 2);
    EXPECT_EQ(I.Rs2, 3);
  }
}

/// System and fence encodings.
TEST(Rv32Decode, SystemAndFence) {
  decodeExpect(0x00000073, Rv32Op::Ecall);
  decodeExpect(0x00100073, Rv32Op::Ebreak);
  decodeExpect(0x0ff0000f, Rv32Op::Fence);
}

/// A extension: LR/SC and every AMO, with aq/rl bit extraction.
TEST(Rv32Decode, AExtension) {
  Rv32Inst I = decodeExpect(rv32EncodeAmo(AmoFunct5LrW, true, false, 0, 11, 7),
                            Rv32Op::LrW);
  EXPECT_EQ(I.Rd, 7);
  EXPECT_EQ(I.Rs1, 11);
  EXPECT_TRUE(I.Aq);
  EXPECT_FALSE(I.Rl);

  I = decodeExpect(rv32EncodeAmo(AmoFunct5ScW, true, true, 28, 11, 29),
                   Rv32Op::ScW);
  EXPECT_EQ(I.Rd, 29);
  EXPECT_EQ(I.Rs2, 28);
  EXPECT_TRUE(I.Aq);
  EXPECT_TRUE(I.Rl);

  struct {
    unsigned Funct5;
    Rv32Op Op;
  } Amos[] = {{AmoFunct5SwapW, Rv32Op::AmoSwapW},
              {AmoFunct5AddW, Rv32Op::AmoAddW},
              {AmoFunct5XorW, Rv32Op::AmoXorW},
              {AmoFunct5AndW, Rv32Op::AmoAndW},
              {AmoFunct5OrW, Rv32Op::AmoOrW},
              {AmoFunct5MinW, Rv32Op::AmoMinW},
              {AmoFunct5MaxW, Rv32Op::AmoMaxW},
              {AmoFunct5MinuW, Rv32Op::AmoMinuW},
              {AmoFunct5MaxuW, Rv32Op::AmoMaxuW}};
  for (const auto &A : Amos) {
    I = decodeExpect(rv32EncodeAmo(A.Funct5, false, false, 12, 10, 14), A.Op);
    EXPECT_EQ(I.Rd, 14);
    EXPECT_EQ(I.Rs1, 10);
    EXPECT_EQ(I.Rs2, 12);
  }
}

/// Encodings the frontend rejects, each with its precise decode outcome.
TEST(Rv32Decode, Rejections) {
  // 16-bit (RVC) encodings: low two bits != 0b11.
  decodeExpect(0x0001, Rv32Op::Compressed);         // c.nop
  decodeExpect(0x4501, Rv32Op::Compressed);         // c.li a0, 0
  decodeExpect(0xfffffffe, Rv32Op::Compressed);
  // LR.W with rs2 != 0 is not a valid encoding.
  decodeExpect(rv32EncodeAmo(AmoFunct5LrW, false, false, 5, 11, 7),
               Rv32Op::Invalid);
  // M extension (funct7 == 1 on OP): not part of RV32IA.
  decodeExpect(rv32EncodeR(0x01, 3, 2, 0x0, 1, 0x33), Rv32Op::Invalid); // mul
  decodeExpect(rv32EncodeR(0x01, 3, 2, 0x4, 1, 0x33), Rv32Op::Invalid); // div
  // A extension .D forms (funct3 == 3) do not exist on RV32.
  decodeExpect(rv32EncodeAmo(AmoFunct5AddW, false, false, 3, 2, 1) ^
                   (0x1u << 12),
               Rv32Op::Invalid);
  // Entirely undefined major opcode.
  decodeExpect(0x0000007f, Rv32Op::Invalid);
}

/// Disassembly goldens (syntax consumed by --disassemble and traces).
TEST(Rv32Decode, DisassemblyGoldens) {
  EXPECT_EQ(rv32Disassemble(rv32EncodeI(64, 0, 0x0, 6, 0x13)),
            "addi t1, zero, 64");
  EXPECT_EQ(rv32Disassemble(rv32EncodeU(0x3000, 11, 0x37)), "lui a1, 0x3");
  EXPECT_EQ(rv32Disassemble(rv32EncodeAmo(AmoFunct5LrW, false, false, 0, 11,
                                          7)),
            "lr.w t2, (a1)");
  EXPECT_EQ(rv32Disassemble(rv32EncodeAmo(AmoFunct5ScW, false, false, 28, 11,
                                          29)),
            "sc.w t4, t3, (a1)");
  EXPECT_EQ(rv32Disassemble(
                rv32EncodeAmo(AmoFunct5AddW, true, true, 28, 11, 0)),
            "amoadd.w.aq.rl zero, t3, (a1)");
  EXPECT_EQ(rv32Disassemble(rv32EncodeB(-8, 0, 7, 0x1), 0x1010),
            "bne t2, zero, 0x1008");
  EXPECT_EQ(rv32Disassemble(rv32EncodeB(-8, 0, 7, 0x1)),
            "bne t2, zero, pc-8");
  EXPECT_EQ(rv32Disassemble(0x00000073), "ecall");
}

/// Runtime contract: misaligned LR/SC addresses fault (halt the vCPU)
/// instead of arming a monitor on a straddling granule.
TEST(Rv32Decode, MisalignedLrScFaults) {
  for (bool Misaligned : {false, true}) {
    MachineConfig Config;
    Config.Arch = input::GuestArch::Rv32;
    Config.NumThreads = 1;
    Config.MemBytes = 8ULL << 20;
    auto MOrErr = Machine::create(Config);
    ASSERT_TRUE(bool(MOrErr)) << MOrErr.error().render();
    auto M = MOrErr.take();

    // lui a0, 0x2; [addi a0, a0, 2;] lr.w x1, (a0); sc.w x2, x1, (a0);
    // addi x5, zero, 1; ecall
    std::vector<uint32_t> Words;
    Words.push_back(rv32EncodeU(0x2000, 10, 0x37));
    if (Misaligned)
      Words.push_back(rv32EncodeI(2, 10, 0x0, 10, 0x13));
    Words.push_back(rv32EncodeAmo(AmoFunct5LrW, false, false, 0, 10, 1));
    Words.push_back(rv32EncodeAmo(AmoFunct5ScW, false, false, 1, 10, 2));
    Words.push_back(rv32EncodeI(1, 0, 0x0, 5, 0x13));
    Words.push_back(rv32EncodeI(0, 0, 0x0, 0, 0x73));

    ASSERT_TRUE(bool(M->load(
        input::GuestImage(input::GuestArch::Rv32, rv32Program(Words)))));
    auto Result = M->run({});
    ASSERT_TRUE(bool(Result)) << Result.error().render();
    EXPECT_TRUE(Result->AllHalted);
    // The aligned run reaches the marker; the misaligned one faults at
    // the LR and never writes x5.
    EXPECT_EQ(M->cpu(0).Regs[5], Misaligned ? 0u : 1u);
  }
}
