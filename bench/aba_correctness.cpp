//===- bench/aba_correctness.cpp - E1: Section IV-A correctness experiment ----===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Reproduces the paper's correctness experiment (Section IV-A): a
/// 16-thread lock-free ARM stack executing POP/PUSH pairs, then a scan for
/// corrupted entries. The paper reports: "only QEMU-4.1 [PICO-CAS] has an
/// average of 4% of the entries having the ABA problem, while all other
/// schemes have none."
///
/// Output: one row per scheme with self-loop percentage, lost nodes,
/// overall corruption verdict, and SC statistics.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

#include "workloads/LockFreeStack.h"

using namespace llsc;
using namespace llsc::bench;
using namespace llsc::workloads;

int main(int Argc, char **Argv) {
  ArgParser Args("E1: lock-free stack ABA correctness (paper Section IV-A)");
  int64_t *Threads = Args.addInt("threads", 16, "guest threads");
  int64_t *Iters = Args.addInt("iters", 4000, "pop/push pairs per thread");
  int64_t *Nodes = Args.addInt("nodes", 64, "stack nodes");
  int64_t *YieldEvery =
      Args.addInt("yield-every", 4,
                  "widen the LL..SC window on a pseudo-random 1-in-N of "
                  "pops (single-core substitution for parallel overlap; "
                  "power of two)");
  int64_t *Batch = Args.addInt("batch", 2, "nodes held per iteration (1-2)");
  int64_t *Repeats = Args.addInt("repeats", 3, "runs per scheme");
  int64_t *WallCap = Args.addInt(
      "wall-cap-s", 90,
      "per-thread wall budget per run; a capped run is reported as a "
      "livelock (PICO-HTM hits this at high thread counts)");
  std::string *Only = Args.addString("scheme", "", "run only this scheme");
  bool *Tagged = Args.addBool(
      "tagged", true,
      "also run the tagged-stack control (version-number ABA defense "
      "[13]) under PICO-CAS — must stay intact");
  Args.parse(Argc, Argv);

  LockFreeStackParams Params;
  Params.NumNodes = static_cast<unsigned>(*Nodes);
  Params.IterationsPerThread = static_cast<uint64_t>(*Iters);
  Params.YieldEveryNPops = static_cast<unsigned>(*YieldEvery);
  Params.HoldYieldEveryN = static_cast<unsigned>(*YieldEvery);
  Params.BatchDepth = static_cast<unsigned>(*Batch);

  Table Results({"scheme", "runs", "self-loop %", "lost nodes", "cycles",
                 "corrupted runs", "SC fail %", "livelocked runs",
                 "verdict"});

  for (SchemeKind Kind : allSchemeKinds()) {
    const SchemeTraits &Traits = schemeTraits(Kind);
    if (!Only->empty() && *Only != Traits.Name)
      continue;

    double SelfLoopPctSum = 0;
    uint64_t LostSum = 0, Cycles = 0, CorruptedRuns = 0;
    uint64_t ScTotal = 0, ScFail = 0, LivelockedRuns = 0;

    for (int64_t Rep = 0; Rep < *Repeats; ++Rep) {
      auto M = makeBenchMachine(Kind, static_cast<unsigned>(*Threads),
                                /*Profile=*/false, /*UseHwHtm=*/false,
                                /*MaxBlocksPerCpu=*/400'000'000,
                                /*MaxSecondsPerCpu=*/
                                static_cast<double>(*WallCap));
      auto ProgOrErr = buildLockFreeStack(Params);
      if (!ProgOrErr)
        reportFatalError(ProgOrErr.error());
      if (auto Loaded = M->loadProgram(*ProgOrErr); !Loaded)
        reportFatalError(Loaded.error());

      auto Result = M->run({});
      if (!Result)
        reportFatalError(Result.error());
      StackCheckResult Check =
          checkLockFreeStack(M->mem(), M->program(), Params);

      SelfLoopPctSum += Check.SelfLoopPct;
      LostSum += Check.NodesLost;
      Cycles += Check.CycleDetected ? 1 : 0;
      CorruptedRuns += Check.Corrupted ? 1 : 0;
      ScTotal += Result->Total.StoreConds;
      ScFail += Result->Total.StoreCondFailures;
      if (!Result->AllHalted) {
        ++LivelockedRuns;
        std::printf("note: %s run %lld hit the livelock guard\n",
                    Traits.Name, static_cast<long long>(Rep));
      }
      std::fprintf(stderr, "  %s run %lld/%lld: %.2fs%s\n", Traits.Name,
                   static_cast<long long>(Rep + 1),
                   static_cast<long long>(*Repeats), Result->WallSeconds,
                   Check.Corrupted ? "  [corrupted]" : "");
    }

    double ScFailPct =
        ScTotal ? 100.0 * static_cast<double>(ScFail) / ScTotal : 0.0;
    Results.addRow(
        {Traits.Name, std::to_string(*Repeats),
         formatString("%.2f", SelfLoopPctSum / *Repeats),
         std::to_string(LostSum), std::to_string(Cycles),
         std::to_string(CorruptedRuns), formatString("%.2f", ScFailPct),
         std::to_string(LivelockedRuns),
         CorruptedRuns ? "ABA CORRUPTION"
                       : (LivelockedRuns ? "intact (livelocked)"
                                         : "intact")});
  }

  emitTable("E1: lock-free stack ABA correctness (16 threads, "
            "paper: PICO-CAS ~4% self-loops, others none)",
            Results, "aba_correctness.csv");

  if (*Tagged && (Only->empty() || *Only == "pico-cas")) {
    // Control experiment: the guest-side version-number defense ([13],
    // Section II-C related work) makes the same workload safe even under
    // the value-comparing CAS translation — at guest-side cost.
    Table TaggedTable({"scheme", "runs", "corrupted runs", "verdict"});
    uint64_t Corrupted = 0;
    for (int64_t Rep = 0; Rep < *Repeats; ++Rep) {
      auto M = makeBenchMachine(SchemeKind::PicoCas,
                                static_cast<unsigned>(*Threads),
                                /*Profile=*/false, /*UseHwHtm=*/false,
                                /*MaxBlocksPerCpu=*/400'000'000,
                                static_cast<double>(*WallCap));
      auto ProgOrErr = buildTaggedLockFreeStack(Params);
      if (!ProgOrErr)
        reportFatalError(ProgOrErr.error());
      if (auto Loaded = M->loadProgram(*ProgOrErr); !Loaded)
        reportFatalError(Loaded.error());
      auto Result = M->run({});
      if (!Result)
        reportFatalError(Result.error());
      Corrupted +=
          checkTaggedLockFreeStack(M->mem(), M->program(), Params)
              .Corrupted
              ? 1
              : 0;
    }
    TaggedTable.addRow({"pico-cas (tagged stack)", std::to_string(*Repeats),
                        std::to_string(Corrupted),
                        Corrupted ? "CORRUPTED" : "intact"});
    emitTable("E1b: tagged-stack control — the guest-side version-number "
              "defense neutralizes the ABA bug even under PICO-CAS",
              TaggedTable, "aba_tagged_control.csv");
  }
  return 0;
}
