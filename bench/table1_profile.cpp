//===- bench/table1_profile.cpp - E6: Table I instruction profile --------------===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Regenerates Table I: per benchmark, the measured instruction mix —
/// executed guest instructions, plain loads/stores, LL/SC pairs, and the
/// store:LL/SC ratio (the paper reports 88x..3000x), plus the PST
/// false-sharing fault rate the paper discusses in Section IV-B2.
/// Everything here is *measured* by the engine's counters, not taken from
/// the kernel generator's parameters.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

#include "core/StatsReport.h"
#include "workloads/ParsecKernels.h"

using namespace llsc;
using namespace llsc::bench;
using namespace llsc::workloads;

int main(int Argc, char **Argv) {
  ArgParser Args("E6 / Table I: per-benchmark instruction profile");
  int64_t *Threads = Args.addInt("threads", 4, "guest threads");
  int64_t *ScalePct = Args.addInt("scale-pct", 100, "workload scale %");
  Args.parse(Argc, Argv);

  // The SC-failure split and mprotect column come from the event-counter
  // stats surface (core/StatsReport.h) — the same names `llsc-run
  // --stats=json` prints; docs/OBSERVABILITY.md catalogues them.
  Table Results({"benchmark", "guest insts", "loads", "stores",
                 "ll/sc pairs", "stores per ll/sc", "sc fail %",
                 "sc lost", "sc conflict", "pst faults",
                 "false sharing %", "pst mprotects"});

  for (const KernelParams &Kernel : parsecKernels()) {
    auto Prog = buildKernel(Kernel, *ScalePct / 100.0);
    if (!Prog)
      reportFatalError(Prog.error());

    // Instruction mix measured under HST (scheme-independent counts).
    auto M = makeBenchMachine(SchemeKind::Hst,
                              static_cast<unsigned>(*Threads));
    if (auto Loaded = M->loadProgram(*Prog); !Loaded)
      reportFatalError(Loaded.error());
    auto Result = M->run({});
    if (!Result)
      reportFatalError(Result.error());

    // False-sharing faults measured under PST.
    auto PstMachine = makeBenchMachine(SchemeKind::Pst,
                                       static_cast<unsigned>(*Threads));
    if (auto Loaded = PstMachine->loadProgram(*Prog); !Loaded)
      reportFatalError(Loaded.error());
    auto PstResult = PstMachine->run({});
    if (!PstResult)
      reportFatalError(PstResult.error());

    const CpuCounters &Counters = Result->Total;
    double Ratio = Counters.LoadLinks
                       ? static_cast<double>(Counters.Stores) /
                             static_cast<double>(Counters.LoadLinks)
                       : 0.0;
    double ScFailPct =
        Counters.StoreConds
            ? 100.0 * static_cast<double>(Counters.StoreCondFailures) /
                  static_cast<double>(Counters.StoreConds)
            : 0.0;
    double FalseSharePct =
        PstResult->Total.PageFaultsRecovered
            ? 100.0 *
                  static_cast<double>(PstResult->Total.FalseSharingFaults) /
                  static_cast<double>(PstResult->Total.PageFaultsRecovered)
            : 0.0;

    StatsReport HstStats(*Result);
    StatsReport PstStats(*PstResult);
    Results.addRow({Kernel.Name, std::to_string(Counters.ExecutedInsts),
                    std::to_string(Counters.Loads),
                    std::to_string(Counters.Stores),
                    std::to_string(Counters.LoadLinks),
                    formatString("%.0f", Ratio),
                    formatString("%.2f", ScFailPct),
                    std::to_string(HstStats.metric("sc.fail.monitor_lost")),
                    std::to_string(HstStats.metric("sc.fail.hash_conflict")),
                    std::to_string(PstResult->Total.PageFaultsRecovered),
                    formatString("%.1f", FalseSharePct),
                    std::to_string(PstStats.metric("sys.mprotect_calls"))});
  }

  emitTable("E6 / Table I: instruction profile "
            "(paper: stores 88x..3000x more frequent than LL/SC)",
            Results, "table1_profile.csv");
  return 0;
}
