//===- bench/table2_summary.cpp - E7: Table II qualitative summary -------------===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Regenerates the paper's Table II (speed / atomicity / portability per
/// scheme). The atomicity column is not read off a constant: it is
/// *measured* by replaying the Section IV-A litmus sequences against each
/// scheme and printed next to the claimed class so divergence is visible.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

#include "workloads/Litmus.h"

using namespace llsc;
using namespace llsc::bench;
using namespace llsc::workloads;

namespace {

const char *atomicityName(AtomicityClass Class) {
  switch (Class) {
  case AtomicityClass::Incorrect:
    return "incorrect";
  case AtomicityClass::Weak:
    return "weak";
  case AtomicityClass::Strong:
    return "strong";
  }
  return "?";
}

} // namespace

int main(int Argc, char **Argv) {
  ArgParser Args("E7: Table II scheme summary (claimed vs measured)");
  Args.parse(Argc, Argv);

  Table Results({"approach", "speed", "atomicity (claimed)",
                 "atomicity (measured)", "portability"});

  for (SchemeKind Kind : allSchemeKinds()) {
    const SchemeTraits &Traits = schemeTraits(Kind);

    auto M = makeBenchMachine(Kind, 2);
    auto DriverOrErr = LitmusDriver::create(*M);
    if (!DriverOrErr)
      reportFatalError(DriverOrErr.error());
    MeasuredAtomicity Measured = classifyScheme(*DriverOrErr);

    Results.addRow({Traits.Name, Traits.Speed,
                    atomicityName(Traits.Atomicity),
                    measuredAtomicityName(Measured), Traits.Portability});
  }

  emitTable("E7 / Table II: approaches to LL/SC emulation", Results,
            "table2_summary.csv");
  return 0;
}
