//===- bench/table2_summary.cpp - E7: Table II qualitative summary -------------===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Regenerates the paper's Table II (speed / atomicity / portability per
/// scheme). The atomicity column is not read off a constant: it is
/// *measured* by replaying the Section IV-A litmus sequences against each
/// scheme and printed next to the claimed class so divergence is visible.
///
/// Each scheme also runs a contended LL/SC fetch-add micro-workload, so
/// the table carries a measured cost column (ns per successful SC) next
/// to the qualitative speed tier. `--json FILE` emits the rows for
/// scripts/run_bench.sh to record into BENCH_schemes.json.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

#include "workloads/Litmus.h"

using namespace llsc;
using namespace llsc::bench;
using namespace llsc::workloads;

namespace {

const char *atomicityName(AtomicityClass Class) {
  switch (Class) {
  case AtomicityClass::Incorrect:
    return "incorrect";
  case AtomicityClass::Weak:
    return "weak";
  case AtomicityClass::Strong:
    return "strong";
  }
  return "?";
}

struct Row {
  std::string Scheme;
  std::string Speed;
  std::string Claimed;
  std::string Measured;
  std::string Portability;
  double Seconds = 0;
  uint64_t ScAttempted = 0;
  uint64_t ScSucceeded = 0;
};

/// 4-thread contended fetch-add on one shared word: every scheme's SC
/// path, retry loop included, with a deterministic final value to check.
std::string contendedProgram(uint64_t Iterations) {
  return formatString(R"(
_start: la      r1, counter
        li      r4, #%llu
loop:   cbz     r4, done
retry:  ldxr.w  r2, [r1]
        addi    r2, r2, #1
        stxr.w  r3, r2, [r1]
        cbnz    r3, retry
        addi    r4, r4, #-1
        b       loop
done:   halt
        .align 4096
counter: .word 0
)",
                      static_cast<unsigned long long>(Iterations));
}

} // namespace

int main(int Argc, char **Argv) {
  ArgParser Args("E7: Table II scheme summary (claimed vs measured)");
  int64_t *Threads = Args.addInt("threads", 4, "guest threads for the "
                                               "contended micro-workload");
  int64_t *Iters =
      Args.addInt("iters", 20000, "fetch-add iterations per thread");
  int64_t *Repeats = Args.addInt("repeats", 3, "runs per scheme");
  std::string *JsonOut =
      Args.addString("json", "", "write machine-readable rows to FILE");
  Args.parse(Argc, Argv);

  Table Results({"approach", "speed", "atomicity (claimed)",
                 "atomicity (measured)", "portability", "sc ns/op"});
  std::vector<Row> Rows;

  unsigned T = static_cast<unsigned>(*Threads);
  uint64_t N = static_cast<uint64_t>(*Iters);
  std::string Program = contendedProgram(N);

  for (SchemeKind Kind : allSchemeKinds()) {
    const SchemeTraits &Traits = schemeTraits(Kind);
    Row R;
    R.Scheme = Traits.Name;
    R.Speed = Traits.Speed;
    R.Claimed = atomicityName(Traits.Atomicity);
    R.Portability = Traits.Portability;

    {
      auto M = makeBenchMachine(Kind, 2);
      auto DriverOrErr = LitmusDriver::create(*M);
      if (!DriverOrErr)
        reportFatalError(DriverOrErr.error());
      R.Measured = measuredAtomicityName(classifyScheme(*DriverOrErr));
    }

    R.Seconds = averageSeconds(
        static_cast<unsigned>(*Repeats), [&]() -> ErrorOr<RunResult> {
          auto M = makeBenchMachine(Kind, T);
          if (auto Loaded = M->loadAssembly(Program); !Loaded)
            return Loaded.error();
          auto Result = M->run({});
          if (Result) {
            R.ScAttempted += Result->Events.ScAttempted;
            R.ScSucceeded += Result->Events.ScSucceeded;
          }
          return Result;
        });

    double NsPerOp =
        R.ScSucceeded
            ? R.Seconds * static_cast<unsigned>(*Repeats) * 1e9 /
                  static_cast<double>(R.ScSucceeded)
            : 0;
    Results.addRow({R.Scheme, R.Speed, R.Claimed, R.Measured, R.Portability,
                    formatString("%.1f", NsPerOp)});
    Rows.push_back(R);
    std::fprintf(stderr, "  %s done\n", R.Scheme.c_str());
  }

  emitTable("E7 / Table II: approaches to LL/SC emulation", Results,
            "table2_summary.csv");

  if (!JsonOut->empty()) {
    FILE *Out = std::fopen(JsonOut->c_str(), "w");
    if (!Out)
      reportFatalError("cannot open " + *JsonOut);
    std::fprintf(Out, "{\n\"bench\": \"table2_summary\",\n\"rows\": [");
    for (size_t I = 0; I < Rows.size(); ++I) {
      const Row &R = Rows[I];
      std::fprintf(
          Out,
          "%s\n  {\"scheme\": \"%s\", \"speed\": \"%s\", "
          "\"claimed\": \"%s\", \"measured\": \"%s\", "
          "\"portability\": \"%s\", \"seconds\": %.6f, "
          "\"sc_attempted\": %llu, \"sc_succeeded\": %llu}",
          I ? "," : "", R.Scheme.c_str(), R.Speed.c_str(),
          R.Claimed.c_str(), R.Measured.c_str(), R.Portability.c_str(),
          R.Seconds, static_cast<unsigned long long>(R.ScAttempted),
          static_cast<unsigned long long>(R.ScSucceeded));
    }
    std::fprintf(Out, "\n]\n}\n");
    std::fclose(Out);
    std::printf("(json written to %s)\n", JsonOut->c_str());
  }
  return 0;
}
