//===- bench/micro_dispatch.cpp - engine hot-path dispatch throughput -----------===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Measures the engine's block-execution hot path in isolation: an
/// indirect-branch-heavy guest loop (four `bl`/`ret` call sites per
/// iteration, so half the executed blocks end in an indirect `SetPc`)
/// plus a straight-line ALU/memory loop, swept over thread counts.
///
/// Every indirect branch exercises the per-vCPU jump cache and, on a
/// miss, the sharded TB cache; the loop body exercises threaded dispatch
/// and the guest-memory fast path. Reported blocks/s is the engine
/// metric the PR-2 acceptance gate tracks (docs/ENGINE.md); the jump
/// cache hit rate comes from the `engine.jmpcache.*` counters
/// (docs/OBSERVABILITY.md) and reads as 0 on engines that predate them.
///
/// `--json FILE` emits a machine-readable point list consumed by
/// scripts/run_bench.sh to build BENCH_engine.json.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

#include "core/StatsReport.h"

using namespace llsc;
using namespace llsc::bench;

namespace {

/// Guest loop with four call/return pairs per iteration: `ret` is an
/// indirect branch (SetPc), so the block mix is ~half indirect exits.
std::string indirectLoop(uint64_t Iters) {
  return formatString(R"(
_start: tid     r1
        la      r2, data
        li      r4, #%llu
loop:   cbz     r4, done
        bl      f1
        bl      f2
        bl      f3
        bl      f4
        addi    r4, r4, #-1
        b       loop
done:   halt
f1:     addi    r3, r3, #1
        ret
f2:     ldd     r5, [r2]
        ret
f3:     add     r3, r3, r5
        ret
f4:     std     r3, [r2, #8]
        ret
        .align 64
data:   .quad 7
        .quad 0
)",
                      static_cast<unsigned long long>(Iters));
}

/// Straight-line dispatch loop: ALU + load/store, no calls, so block
/// chaining covers every edge and the per-op dispatch cost dominates.
std::string straightLoop(uint64_t Iters) {
  return formatString(R"(
_start: tid     r1
        la      r2, data
        li      r4, #%llu
loop:   cbz     r4, done
        ldd     r3, [r2]
        addi    r3, r3, #3
        eori    r3, r3, #0x55
        std     r3, [r2, #8]
        lsri    r3, r3, #1
        addi    r4, r4, #-1
        b       loop
done:   halt
        .align 64
data:   .quad 9
        .quad 0
)",
                      static_cast<unsigned long long>(Iters));
}

struct Point {
  std::string Workload;
  std::string Scheme;
  unsigned Threads = 0;
  double Seconds = 0;
  double BlocksPerSec = 0;
  double InstsPerSec = 0;
  double JmpCacheHitRate = 0;
  double FastMemHitRate = 0;
};

} // namespace

int main(int Argc, char **Argv) {
  ArgParser Args("engine dispatch/lookup hot-path throughput");
  std::string *SchemeName = Args.addString("scheme", "hst", "atomic scheme");
  std::string *ThreadList =
      Args.addString("threads", "1,4,16", "comma-separated thread counts");
  int64_t *Iters = Args.addInt("iters", 200000, "guest loop iterations");
  int64_t *Repeats = Args.addInt("repeats", 3, "runs per point");
  std::string *JsonOut =
      Args.addString("json", "", "write machine-readable points to FILE");
  Args.parse(Argc, Argv);

  auto Kind = parseSchemeName(*SchemeName);
  if (!Kind)
    reportFatalError("unknown scheme '" + *SchemeName + "'");

  std::vector<unsigned> Threads;
  for (std::string_view Tok : split(*ThreadList, ','))
    Threads.push_back(static_cast<unsigned>(
        std::strtoul(std::string(Tok).c_str(), nullptr, 10)));

  struct Workload {
    const char *Name;
    std::string Source;
  } Workloads[] = {
      {"indirect", indirectLoop(static_cast<uint64_t>(*Iters))},
      {"straight", straightLoop(static_cast<uint64_t>(*Iters))},
  };

  Table Results({"workload", "scheme", "threads", "seconds", "Mblocks/s",
                 "Minsts/s", "jmpcache-hit%", "fastmem-hit%"});
  std::vector<Point> Points;

  for (const Workload &W : Workloads) {
    for (unsigned T : Threads) {
      double SumSeconds = 0, SumBlocks = 0, SumInsts = 0;
      double SumJmpHit = 0, SumJmpAll = 0, SumFastHit = 0, SumFastAll = 0;
      for (int64_t Rep = 0; Rep < *Repeats; ++Rep) {
        auto M = makeBenchMachine(*Kind, T);
        if (auto Loaded = M->loadAssembly(W.Source); !Loaded)
          reportFatalError(Loaded.error());
        auto Result = M->run({});
        if (!Result)
          reportFatalError(Result.error());
        StatsReport Report(*Result);
        SumSeconds += Result->WallSeconds;
        SumBlocks += static_cast<double>(Result->Total.ExecutedBlocks);
        SumInsts += static_cast<double>(Result->Total.ExecutedInsts);
        SumJmpHit += static_cast<double>(Report.metric("engine.jmpcache.hit"));
        SumJmpAll += static_cast<double>(Report.metric("engine.jmpcache.hit") +
                                         Report.metric("engine.jmpcache.miss"));
        SumFastHit += static_cast<double>(Report.metric("engine.fastmem.hit"));
        SumFastAll += static_cast<double>(Report.metric("engine.fastmem.hit") +
                                          Report.metric("engine.fastmem.slow"));
      }
      Point P;
      P.Workload = W.Name;
      P.Scheme = schemeTraits(*Kind).Name;
      P.Threads = T;
      P.Seconds = SumSeconds / static_cast<double>(*Repeats);
      P.BlocksPerSec = SumSeconds > 0 ? SumBlocks / SumSeconds : 0;
      P.InstsPerSec = SumSeconds > 0 ? SumInsts / SumSeconds : 0;
      P.JmpCacheHitRate = SumJmpAll > 0 ? SumJmpHit / SumJmpAll : 0;
      P.FastMemHitRate = SumFastAll > 0 ? SumFastHit / SumFastAll : 0;
      Points.push_back(P);

      Results.addRow({P.Workload, P.Scheme, formatString("%u", T),
                      formatString("%.4f", P.Seconds),
                      formatString("%.3f", P.BlocksPerSec / 1e6),
                      formatString("%.3f", P.InstsPerSec / 1e6),
                      formatString("%.2f", P.JmpCacheHitRate * 100),
                      formatString("%.2f", P.FastMemHitRate * 100)});
      std::fprintf(stderr, "  %s/%s t=%u: %.3f Mblocks/s\n",
                   P.Workload.c_str(), P.Scheme.c_str(), T,
                   P.BlocksPerSec / 1e6);
    }
  }

  emitTable("engine dispatch throughput", Results, "micro_dispatch.csv");

  if (!JsonOut->empty()) {
    FILE *Out = std::fopen(JsonOut->c_str(), "w");
    if (!Out)
      reportFatalError("cannot open " + *JsonOut);
    std::fprintf(Out, "{\n\"bench\": \"micro_dispatch\",\n\"points\": [");
    for (size_t I = 0; I < Points.size(); ++I) {
      const Point &P = Points[I];
      std::fprintf(Out,
                   "%s\n  {\"workload\": \"%s\", \"scheme\": \"%s\", "
                   "\"threads\": %u, \"seconds\": %.6f, "
                   "\"blocks_per_sec\": %.1f, \"insts_per_sec\": %.1f, "
                   "\"jmpcache_hit_rate\": %.4f, \"fastmem_hit_rate\": %.4f}",
                   I ? "," : "", P.Workload.c_str(), P.Scheme.c_str(),
                   P.Threads, P.Seconds, P.BlocksPerSec, P.InstsPerSec,
                   P.JmpCacheHitRate, P.FastMemHitRate);
    }
    std::fprintf(Out, "\n]\n}\n");
    std::fclose(Out);
    std::printf("(json written to %s)\n", JsonOut->c_str());
  }
  return 0;
}
