//===- bench/BenchCommon.h - shared benchmark harness helpers ---*- C++-*-===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the per-figure/per-table benchmark binaries: machine
/// construction, repeat-and-average timing (the paper runs each point 3
/// times), and result table emission (ASCII + CSV side files).
///
//===----------------------------------------------------------------------===//

#ifndef LLSC_BENCH_BENCHCOMMON_H
#define LLSC_BENCH_BENCHCOMMON_H

#include "core/Machine.h"
#include "support/CommandLine.h"
#include "support/Stats.h"
#include "support/StringUtils.h"
#include "support/Table.h"

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

namespace llsc {
namespace bench {

/// Builds a machine for benchmarking. HTM schemes use the software model
/// by default for determinism; pass UseHwHtm to probe real RTM.
inline std::unique_ptr<Machine>
makeBenchMachine(SchemeKind Scheme, unsigned Threads, bool Profile = false,
                 bool UseHwHtm = false, uint64_t MaxBlocksPerCpu = 0,
                 double MaxSecondsPerCpu = 0) {
  MachineConfig Config;
  Config.Scheme = Scheme;
  Config.NumThreads = Threads;
  Config.MemBytes = 64ULL << 20;
  Config.Profile = Profile;
  Config.ForceSoftHtm = !UseHwHtm;
  Config.MaxBlocksPerCpu = MaxBlocksPerCpu;
  Config.MaxSecondsPerCpu = MaxSecondsPerCpu;
  auto MachineOrErr = Machine::create(Config);
  if (!MachineOrErr)
    reportFatalError(MachineOrErr.error());
  return MachineOrErr.take();
}

/// Runs \p Body \p Repeats times and returns the mean wall seconds of the
/// RunResults it produces (the paper averages 3 runs per point).
inline double
averageSeconds(unsigned Repeats,
               const std::function<ErrorOr<RunResult>()> &Body) {
  double Sum = 0;
  for (unsigned Rep = 0; Rep < Repeats; ++Rep) {
    auto Result = Body();
    if (!Result)
      reportFatalError(Result.error());
    Sum += Result->WallSeconds;
  }
  return Sum / Repeats;
}

/// Prints the table and writes a CSV next to the binary's cwd.
inline void emitTable(const std::string &Title, const Table &Results,
                      const std::string &CsvName) {
  std::printf("\n== %s ==\n%s", Title.c_str(),
              Results.renderAscii().c_str());
  if (!CsvName.empty()) {
    if (FILE *Csv = std::fopen(CsvName.c_str(), "w")) {
      std::string Data = Results.renderCsv();
      std::fwrite(Data.data(), 1, Data.size(), Csv);
      std::fclose(Csv);
      std::printf("(csv written to %s)\n", CsvName.c_str());
    }
  }
}

} // namespace bench
} // namespace llsc

#endif // LLSC_BENCH_BENCHCOMMON_H
