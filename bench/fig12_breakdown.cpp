//===- bench/fig12_breakdown.cpp - E5: Fig. 12 overhead breakdown ---------------===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Reproduces Fig. 12's stacked bars: per kernel, per scheme (PICO-ST,
/// HST, PST, PST-REMAP) and per thread count, attribute execution time to
///
///   native     — base translation/execution
///   exclusive  — stop-the-world sections and scheme lock waits
///   instrument — store/LL instrumentation (helpers measured directly;
///                inline IR ops counted and costed with a calibrated
///                per-op time, see runtime/Profiler.h)
///   mprotect   — page-protection/remap syscalls and fault slow paths
///
/// The paper's observations to look for: PICO-ST dominated by instrument
/// + exclusive; HST's instrument share tiny; PST dominated by mprotect.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

#include "runtime/Profiler.h"
#include "workloads/ParsecKernels.h"

using namespace llsc;
using namespace llsc::bench;
using namespace llsc::workloads;

int main(int Argc, char **Argv) {
  ArgParser Args("E5 / Fig. 12: execution time breakdown");
  int64_t *MaxThreads = Args.addInt("max-threads", 8, "largest thread count");
  int64_t *ScalePct = Args.addInt("scale-pct", 50, "workload scale %");
  std::string *OnlyKernel = Args.addString("kernel", "", "run one kernel");
  std::string *OnlySchemes =
      Args.addString("schemes", "pico-st,hst,pst,pst-remap", "schemes");
  Args.parse(Argc, Argv);

  auto SchemesOrErr = parseSchemeList(*OnlySchemes);
  if (!SchemesOrErr)
    reportFatalError(SchemesOrErr.error());
  std::vector<SchemeKind> Schemes = SchemesOrErr.take();

  Table Results({"kernel", "scheme", "threads", "wall (s)", "native %",
                 "exclusive %", "instrument %", "mprotect %"});

  for (const KernelParams &Kernel : parsecKernels()) {
    if (!OnlyKernel->empty() && !equalsLower(*OnlyKernel, Kernel.Name))
      continue;
    for (SchemeKind Kind : Schemes) {
      for (unsigned Threads = 1;
           Threads <= static_cast<unsigned>(*MaxThreads); Threads *= 2) {
        auto Prog = buildKernel(Kernel, *ScalePct / 100.0);
        if (!Prog)
          reportFatalError(Prog.error());
        auto M = makeBenchMachine(Kind, Threads, /*Profile=*/true);
        if (auto Loaded = M->loadProgram(*Prog); !Loaded)
          reportFatalError(Loaded.error());
        auto Result = M->run({});
        if (!Result)
          reportFatalError(Result.error());

        const CpuProfile &Profile = Result->Profile;
        double TotalNs = static_cast<double>(Profile.WallNs);
        double ExclNs =
            static_cast<double>(Profile.bucketNs(ProfileBucket::Exclusive));
        double InstrNs =
            static_cast<double>(Profile.bucketNs(ProfileBucket::Instrument)) +
            static_cast<double>(Profile.InlineInstrumentOps) *
                calibratedInstrumentOpNanos();
        double MprotNs =
            static_cast<double>(Profile.bucketNs(ProfileBucket::Mprotect));
        double NativeNs =
            std::max(0.0, TotalNs - ExclNs - InstrNs - MprotNs);
        double Denominator = std::max(TotalNs, 1.0);

        auto Pct = [&](double Ns) {
          return formatString("%.1f", 100.0 * Ns / Denominator);
        };
        Results.addRow({Kernel.Name, schemeTraits(Kind).Name,
                        std::to_string(Threads),
                        formatString("%.3f", Result->WallSeconds),
                        Pct(NativeNs), Pct(ExclNs), Pct(InstrNs),
                        Pct(MprotNs)});
        std::fprintf(stderr, "  %s/%s t=%u done (%.3fs)\n",
                     Kernel.Name.c_str(), schemeTraits(Kind).Name, Threads,
                     Result->WallSeconds);
      }
    }
  }

  emitTable("E5 / Fig. 12: time attribution per scheme "
            "(native / exclusive / instrument / mprotect)",
            Results, "fig12_breakdown.csv");
  return 0;
}
