//===- bench/atomicity_litmus.cpp - E2: Seq1-Seq4 classification matrix --------===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Prints the Section IV-A matrix: for each scheme and each of the four
/// basic execution sequences, whether the final SCa correctly failed.
/// The paper's required outcome is "fail" everywhere; "SUCC" marks the
/// ABA-prone holes (all four for PICO-CAS, Seq1 for HST-WEAK, ...).
///
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

#include "workloads/Litmus.h"

using namespace llsc;
using namespace llsc::bench;
using namespace llsc::workloads;

int main(int Argc, char **Argv) {
  ArgParser Args("E2: atomicity litmus matrix (paper Section IV-A)");
  Args.parse(Argc, Argv);

  Table Results({"scheme", "Seq1 (S,S)", "Seq2 (LL/SC x2)", "Seq3 (SC,S)",
                 "Seq4 (S,SC)", "classification"});

  for (SchemeKind Kind : allSchemeKinds()) {
    auto M = makeBenchMachine(Kind, 2);
    auto DriverOrErr = LitmusDriver::create(*M);
    if (!DriverOrErr)
      reportFatalError(DriverOrErr.error());
    LitmusDriver &Driver = *DriverOrErr;

    std::vector<std::string> Row;
    Row.push_back(schemeTraits(Kind).Name);
    for (int Seq = 1; Seq <= 4; ++Seq) {
      LitmusOutcome Outcome = runLitmusSequence(Driver, Seq);
      Row.push_back(Outcome.ScaFailed ? "fail (ok)" : "SUCC (aba!)");
    }
    Row.push_back(measuredAtomicityName(classifyScheme(Driver)));
    Results.addRow(std::move(Row));
  }

  emitTable("E2: Section IV-A sequences — the final SCa must fail",
            Results, "atomicity_litmus.csv");
  return 0;
}
