//===- bench/serve_throughput.cpp - pooled vs fresh batch throughput ------------===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Measures what the serve layer's Machine pooling buys: the same batch
/// of short mixed-scheme jobs is pushed through BatchService twice per
/// concurrency level — once with ReuseMachines (pool hands reset()
/// Machines back out) and once without (a fresh Machine per job, the
/// pre-serve baseline) — and the jobs/s ratio is the headline.
///
/// Short jobs are the honest case for pooling: construction (guest-memory
/// mmap, scheme attach, translator + engine setup) is a fixed per-job tax
/// the pool amortizes, so the win shrinks as job bodies grow. The PR-5
/// acceptance gate tracks pooled/fresh >= 1.5 at 16 concurrent jobs
/// (docs/SERVING.md).
///
/// `--json FILE` emits the point list scripts/run_bench.sh merges into
/// BENCH_serve.json.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

#include "guest/Assembler.h"
#include "serve/BatchService.h"
#include "support/Timing.h"

using namespace llsc;
using namespace llsc::bench;
using namespace llsc::serve;

namespace {

/// A short LL/SC fetch-add kernel with a deliberately wide code footprint:
/// the loop body is \p Units distinct fetch-add sequences, each on its own
/// word. Short jobs with non-trivial code are the honest case for pooling —
/// a fresh machine pays construction *and* full retranslation per job,
/// while a pooled machine reloading the byte-identical image keeps its
/// code cache warm (Machine::loadProgram hashes the image).
std::string fetchAddProgram(uint64_t Iters, unsigned Units) {
  std::string S = formatString("_start: li      r9, #%llu\n",
                               static_cast<unsigned long long>(Iters));
  S += "loop:   cbz     r9, done\n";
  for (unsigned U = 0; U < Units; ++U)
    S += formatString(R"(        la      r10, word%u
try%u:  ldxr.d  r1, [r10]
        addi    r1, r1, #1
        stxr.d  r2, r1, [r10]
        cbnz    r2, try%u
)",
                      U, U, U);
  S += "        addi    r9, r9, #-1\n"
       "        b       loop\n"
       "done:   halt\n";
  for (unsigned U = 0; U < Units; ++U)
    S += formatString("        .align 64\nword%u: .quad 0\n", U);
  return S;
}

struct Point {
  unsigned Concurrency = 0;
  bool Reuse = false;
  unsigned Jobs = 0;
  double Seconds = 0;
  double JobsPerSec = 0;
  uint64_t MachinesCreated = 0;
  uint64_t MachinesReused = 0;
};

} // namespace

int main(int Argc, char **Argv) {
  ArgParser Args("batch service throughput: pooled vs fresh machines");
  std::string *WorkerList = Args.addString(
      "workers", "1,4,16", "comma-separated concurrency levels");
  int64_t *Jobs = Args.addInt("jobs", 256, "jobs per batch");
  int64_t *Iters = Args.addInt("iters", 1, "guest loop iterations per job");
  int64_t *Units = Args.addInt("units", 128, "fetch-add sites per loop body");
  int64_t *Repeats = Args.addInt("repeats", 3, "batches per point");
  std::string *JsonOut =
      Args.addString("json", "", "write machine-readable points to FILE");
  Args.parse(Argc, Argv);

  std::vector<unsigned> Concurrencies;
  for (std::string_view Tok : split(*WorkerList, ','))
    Concurrencies.push_back(static_cast<unsigned>(
        std::strtoul(std::string(Tok).c_str(), nullptr, 10)));

  // Mixed shapes, as a real batch would have: jobs round-robin over the
  // scheme x threads list, so the pool must keep several buckets warm.
  struct Shape {
    SchemeKind Scheme;
    unsigned Threads;
  } Shapes[] = {
      {SchemeKind::Hst, 2},
      {SchemeKind::PicoCas, 2},
      {SchemeKind::Hst, 1},
      {SchemeKind::Pst, 1},
  };
  // Pre-assembled once and shared by every job: batch submitters with a
  // fixed program do this, and it keeps the assembler out of the
  // measured loop (it costs the same in both modes).
  auto ProgOrErr = guest::assemble(fetchAddProgram(
      static_cast<uint64_t>(*Iters), static_cast<unsigned>(*Units)));
  if (!ProgOrErr)
    reportFatalError(ProgOrErr.error());
  guest::Program Program = ProgOrErr.take();

  Table Results({"workers", "mode", "jobs", "seconds", "jobs/s",
                 "created", "reused"});
  std::vector<Point> Points;

  for (unsigned Workers : Concurrencies) {
    double PooledRate = 0;
    for (bool Reuse : {false, true}) {
      double SumSeconds = 0;
      uint64_t Created = 0, Reused = 0;
      for (int64_t Rep = 0; Rep < *Repeats; ++Rep) {
        BatchConfig Config;
        Config.Workers = Workers;
        Config.QueueCapacity = static_cast<size_t>(*Jobs);
        Config.ReuseMachines = Reuse;
        BatchService Service(Config);

        uint64_t StartNs = monotonicNanos();
        for (int64_t J = 0; J < *Jobs; ++J) {
          const Shape &S = Shapes[J % (sizeof(Shapes) / sizeof(Shapes[0]))];
          JobSpec Spec;
          Spec.Name = formatString("job-%lld", static_cast<long long>(J));
          Spec.Source = JobSource::image(Program);
          Spec.Machine.Scheme = S.Scheme;
          Spec.Machine.NumThreads = S.Threads;
          // Cooperative execution: the job runs inline on the service
          // worker's thread. Short jobs in a batch are exactly where the
          // per-job host-thread spawns of Threaded mode would otherwise
          // drown the construction-vs-reset differential being measured.
          Spec.Run.ExecMode = RunOptions::Mode::Cooperative;
          Spec.Run.BlocksPerSlice = 16;
          auto Handle = Service.submit(std::move(Spec));
          if (!Handle)
            reportFatalError(Handle.error());
        }
        Service.drain();
        SumSeconds +=
            static_cast<double>(monotonicNanos() - StartNs) * 1e-9;
        FleetStats Fleet = Service.fleetStats();
        if (Fleet.Failed)
          reportFatalError(formatString(
              "%llu jobs failed",
              static_cast<unsigned long long>(Fleet.Failed)));
        Created += Fleet.MachinesCreated;
        Reused += Fleet.MachinesReused;
      }
      Point P;
      P.Concurrency = Workers;
      P.Reuse = Reuse;
      P.Jobs = static_cast<unsigned>(*Jobs);
      P.Seconds = SumSeconds / static_cast<double>(*Repeats);
      P.JobsPerSec = P.Seconds > 0
                         ? static_cast<double>(*Jobs) / P.Seconds
                         : 0;
      P.MachinesCreated = Created / static_cast<uint64_t>(*Repeats);
      P.MachinesReused = Reused / static_cast<uint64_t>(*Repeats);
      Points.push_back(P);
      if (Reuse)
        PooledRate = P.JobsPerSec;

      Results.addRow({formatString("%u", Workers),
                      Reuse ? "pooled" : "fresh",
                      formatString("%u", P.Jobs),
                      formatString("%.4f", P.Seconds),
                      formatString("%.1f", P.JobsPerSec),
                      formatString("%llu", static_cast<unsigned long long>(
                                               P.MachinesCreated)),
                      formatString("%llu", static_cast<unsigned long long>(
                                               P.MachinesReused))});
      std::fprintf(stderr, "  workers=%u %s: %.1f jobs/s\n", Workers,
                   Reuse ? "pooled" : "fresh", P.JobsPerSec);
    }
    const Point &Fresh = Points[Points.size() - 2];
    std::fprintf(stderr, "  workers=%u pooled/fresh = %.2fx\n", Workers,
                 Fresh.JobsPerSec > 0 ? PooledRate / Fresh.JobsPerSec : 0);
  }

  emitTable("batch service throughput (pooled vs fresh)", Results,
            "serve_throughput.csv");

  if (!JsonOut->empty()) {
    FILE *Out = std::fopen(JsonOut->c_str(), "w");
    if (!Out)
      reportFatalError("cannot open " + *JsonOut);
    std::fprintf(Out, "{\n\"bench\": \"serve_throughput\",\n\"points\": [");
    for (size_t I = 0; I < Points.size(); ++I) {
      const Point &P = Points[I];
      std::fprintf(Out,
                   "%s\n  {\"workers\": %u, \"mode\": \"%s\", \"jobs\": %u, "
                   "\"seconds\": %.6f, \"jobs_per_sec\": %.2f, "
                   "\"machines_created\": %llu, \"machines_reused\": %llu}",
                   I ? "," : "", P.Concurrency,
                   P.Reuse ? "pooled" : "fresh", P.Jobs, P.Seconds,
                   P.JobsPerSec,
                   static_cast<unsigned long long>(P.MachinesCreated),
                   static_cast<unsigned long long>(P.MachinesReused));
    }
    std::fprintf(Out, "\n]\n}\n");
    std::fclose(Out);
    std::printf("(json written to %s)\n", JsonOut->c_str());
  }
  return 0;
}
