//===- bench/fig11_htm.cpp - E4: Fig. 11 HTM-based schemes ----------------------===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Reproduces Fig. 11: PICO-HTM vs HST-HTM across thread counts. The
/// paper's finding: PICO-HTM wins at small thread counts (no store
/// instrumentation at all), but its transactions span the emulator's own
/// code between LL and SC, and beyond ~8 threads it crashes/livelocks;
/// HST-HTM's transactions cover only the SC emulation and keep scaling.
///
/// Our HTM is runtime-detected RTM or the calibrated software model (see
/// DESIGN.md §5); livelock shows up as retry-budget fallbacks and a
/// wall-time cliff rather than a crash.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

#include "core/StatsReport.h"
#include "htm/Htm.h"
#include "workloads/LockFreeStack.h"
#include "workloads/ParsecKernels.h"

using namespace llsc;
using namespace llsc::bench;
using namespace llsc::workloads;

int main(int Argc, char **Argv) {
  ArgParser Args("E4 / Fig. 11: PICO-HTM vs HST-HTM");
  int64_t *MaxThreads = Args.addInt("max-threads", 16, "largest threads");
  int64_t *ScalePct = Args.addInt("scale-pct", 25, "kernel workload scale %");
  int64_t *Iters =
      Args.addInt("iters", 1500, "stack pop/push pairs per thread");
  std::string *Kernel = Args.addString(
      "kernel", "",
      "run a PARSEC-like kernel instead of the default lock-free stack "
      "(the stack is LL/SC-dense and contended, which is what makes the "
      "HTM schemes diverge; the kernels' sparse atomics rarely conflict "
      "on a single-core host)");
  bool *HwHtm = Args.addBool("hw-htm", false,
                             "use hardware RTM when usable");
  int64_t *WallCap = Args.addInt("wall-cap-s", 45,
                                 "per-thread wall budget (livelock guard)");
  Args.parse(Argc, Argv);

  const KernelParams *Params = nullptr;
  if (!Kernel->empty()) {
    Params = findKernel(*Kernel);
    if (!Params)
      reportFatalError("unknown kernel '" + *Kernel + "'");
  }
  LockFreeStackParams StackParams;
  StackParams.IterationsPerThread = static_cast<uint64_t>(*Iters);
  StackParams.YieldEveryNPops = 4;
  StackParams.HoldYieldEveryN = 4;
  StackParams.BatchDepth = 2;
  std::printf("hardware RTM usable on this host: %s (using %s)\n",
              hardwareHtmUsable() ? "yes" : "no",
              *HwHtm ? "hardware when usable" : "the software model");

  // The excl-wait and SC-failure columns come from the event-counter
  // stats surface (core/StatsReport.h; see docs/OBSERVABILITY.md): the
  // fallback serialization cost is exactly what makes the Fig. 11 cliff.
  Table Results({"scheme", "threads", "wall (s)", "tx begins", "commits",
                 "conflict aborts", "capacity aborts", "livelock fallbacks",
                 "commit %", "excl wait (ms)", "sc failed"});

  for (SchemeKind Kind : {SchemeKind::PicoHtm, SchemeKind::HstHtm}) {
    for (unsigned Threads = 1;
         Threads <= static_cast<unsigned>(*MaxThreads); Threads *= 2) {
      auto Prog = Params ? buildKernel(*Params, *ScalePct / 100.0)
                         : buildLockFreeStack(StackParams);
      if (!Prog)
        reportFatalError(Prog.error());
      auto M = makeBenchMachine(Kind, Threads, /*Profile=*/false, *HwHtm,
                                /*MaxBlocksPerCpu=*/2'000'000'000,
                                static_cast<double>(*WallCap));
      if (auto Loaded = M->loadProgram(*Prog); !Loaded)
        reportFatalError(Loaded.error());
      auto Result = M->run({});
      if (!Result)
        reportFatalError(Result.error());

      const HtmStats &Htm = Result->Htm;
      double CommitPct =
          Htm.Begins ? 100.0 * static_cast<double>(Htm.Commits) /
                           static_cast<double>(Htm.Begins)
                     : 0.0;
      StatsReport Stats(*Result);
      Results.addRow(
          {schemeTraits(Kind).Name, std::to_string(Threads),
           formatString(Result->AllHalted ? "%.3f" : ">%.0f (livelock)",
                        Result->WallSeconds),
           std::to_string(Htm.Begins), std::to_string(Htm.Commits),
           std::to_string(Htm.ConflictAborts),
           std::to_string(Htm.CapacityAborts),
           std::to_string(Result->Total.HtmLivelockFallbacks),
           formatString("%.1f", CommitPct),
           formatString("%.1f",
                        static_cast<double>(Stats.metric("excl.wait_ns")) *
                            1e-6),
           std::to_string(Stats.metric("sc.failed"))});
      std::fprintf(stderr, "  %s t=%u: %.3fs (%llu fallbacks)\n",
                   schemeTraits(Kind).Name, Threads, Result->WallSeconds,
                   static_cast<unsigned long long>(
                       Result->Total.HtmLivelockFallbacks));
    }
  }

  emitTable("E4 / Fig. 11: HTM-based schemes "
            "(paper: PICO-HTM livelocks beyond ~8 threads)",
            Results, "fig11_htm.csv");
  return 0;
}
