//===- bench/micro_ops.cpp - E9: primitive operation costs ----------------------===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// google-benchmark microbenchmarks for the primitive costs that explain
/// the macro results: per-scheme LL+SC pair latency, plain-store hook
/// latency (the cost PICO-ST pays 88x..3000x more often than LL/SC),
/// exclusive-section round trips, page protect/unprotect, and the
/// end-to-end interpreter throughput.
///
//===----------------------------------------------------------------------===//

#include "core/Machine.h"
#include "mem/FaultGuard.h"
#include "runtime/Exclusive.h"

#include <benchmark/benchmark.h>
#include <sys/mman.h>

using namespace llsc;

namespace {

struct SchemeFixture {
  std::unique_ptr<Machine> M;

  explicit SchemeFixture(SchemeKind Kind) {
    MachineConfig Config;
    Config.Scheme = Kind;
    Config.NumThreads = 2;
    Config.MemBytes = 8ULL << 20;
    Config.ForceSoftHtm = true;
    M = Machine::create(Config).take();
    auto Loaded = M->loadAssembly("_start: halt\n");
    if (!Loaded)
      reportFatalError(Loaded.error());
    M->prepareRun();
  }
};

void llscPair(benchmark::State &State, SchemeKind Kind) {
  SchemeFixture Fixture(Kind);
  AtomicScheme &Scheme = Fixture.M->scheme();
  VCpu &Cpu = Fixture.M->cpu(0);
  uint64_t Value = 0;
  for (auto _ : State) {
    Scheme.emulateLoadLink(Cpu, 0x4000, 4);
    bool Ok = Scheme.emulateStoreCond(Cpu, 0x4000, ++Value, 4);
    benchmark::DoNotOptimize(Ok);
  }
}

void plainStore(benchmark::State &State, SchemeKind Kind) {
  SchemeFixture Fixture(Kind);
  AtomicScheme &Scheme = Fixture.M->scheme();
  VCpu &Cpu = Fixture.M->cpu(0);
  uint64_t Value = 0;
  for (auto _ : State)
    Scheme.storeHook(Cpu, 0x5000, ++Value, 8);
}

} // namespace

BENCHMARK_CAPTURE(llscPair, pico_cas, SchemeKind::PicoCas);
BENCHMARK_CAPTURE(llscPair, pico_st, SchemeKind::PicoSt);
BENCHMARK_CAPTURE(llscPair, hst, SchemeKind::Hst);
BENCHMARK_CAPTURE(llscPair, hst_weak, SchemeKind::HstWeak);
BENCHMARK_CAPTURE(llscPair, hst_htm, SchemeKind::HstHtm);
BENCHMARK_CAPTURE(llscPair, pst, SchemeKind::Pst);
BENCHMARK_CAPTURE(llscPair, pst_remap, SchemeKind::PstRemap);
BENCHMARK_CAPTURE(llscPair, pst_mpk, SchemeKind::PstMpk);

BENCHMARK_CAPTURE(plainStore, raw_default, SchemeKind::PicoCas);
BENCHMARK_CAPTURE(plainStore, pico_st_helper, SchemeKind::PicoSt);
BENCHMARK_CAPTURE(plainStore, pst_unmonitored, SchemeKind::Pst);
BENCHMARK_CAPTURE(plainStore, pst_mpk_unarmed, SchemeKind::PstMpk);

/// PST plain store hitting a monitored page (false sharing): one fault +
/// slow path per store — Fig. 12's mprotect component per event.
static void pstFalseSharingStore(benchmark::State &State) {
  SchemeFixture Fixture(SchemeKind::Pst);
  AtomicScheme &Scheme = Fixture.M->scheme();
  VCpu &Monitor = Fixture.M->cpu(0);
  VCpu &Storer = Fixture.M->cpu(1);
  for (auto _ : State) {
    State.PauseTiming();
    Scheme.emulateLoadLink(Monitor, 0x6000, 4); // Protect the page.
    State.ResumeTiming();
    Scheme.storeHook(Storer, 0x6100, 1, 8); // Same page, different addr.
    State.PauseTiming();
    Scheme.emulateStoreCond(Monitor, 0x6000, 1, 4); // Release.
    State.ResumeTiming();
  }
}
BENCHMARK(pstFalseSharingStore);

static void exclusiveSectionRoundTrip(benchmark::State &State) {
  ExclusiveContext Excl;
  for (auto _ : State) {
    Excl.startExclusive(/*SelfRunning=*/false);
    Excl.endExclusive(/*SelfRunning=*/false);
  }
}
BENCHMARK(exclusiveSectionRoundTrip);

static void mprotectToggle(benchmark::State &State) {
  auto Mem = GuestMemory::create(1 << 20).take();
  for (auto _ : State) {
    Mem->protectPage(3, PROT_READ);
    Mem->protectPage(3, PROT_READ | PROT_WRITE);
  }
}
BENCHMARK(mprotectToggle);

static void remapRoundTrip(benchmark::State &State) {
  auto Mem = GuestMemory::create(1 << 20).take();
  for (auto _ : State) {
    Mem->remapPageAway(3);
    Mem->remapPageBack(3, /*Writable=*/true);
  }
}
BENCHMARK(remapRoundTrip);

static void recoveredFaultCost(benchmark::State &State) {
  auto Mem = GuestMemory::create(1 << 20).take();
  Mem->protectPage(4, PROT_READ);
  uint64_t Addr = 4 * Mem->pageSize();
  for (auto _ : State) {
    FaultResult Result = FaultGuard::tryStore(*Mem, Addr, 1, 8);
    benchmark::DoNotOptimize(Result.Faulted);
  }
  Mem->protectPage(4, PROT_READ | PROT_WRITE);
}
BENCHMARK(recoveredFaultCost);

/// End-to-end interpreter throughput: guest instructions per second on a
/// pure ALU loop.
static void interpreterThroughput(benchmark::State &State) {
  MachineConfig Config;
  Config.Scheme = SchemeKind::PicoCas;
  Config.MemBytes = 8ULL << 20;
  auto M = Machine::create(Config).take();
  auto Loaded = M->loadAssembly(R"(
_start: li      r2, #20000
loop:   cbz     r2, done
        addi    r1, r1, #3
        eori    r1, r1, #0x55
        lsri    r3, r1, #2
        add     r1, r1, r3
        addi    r2, r2, #-1
        b       loop
done:   halt
)");
  if (!Loaded)
    reportFatalError(Loaded.error());
  uint64_t Insts = 0;
  for (auto _ : State) {
    auto Result = M->run({});
    if (!Result)
      reportFatalError(Result.error());
    Insts += Result->Total.ExecutedInsts;
  }
  State.counters["guest_insts_per_s"] = benchmark::Counter(
      static_cast<double>(Insts), benchmark::Counter::kIsRate);
}
BENCHMARK(interpreterThroughput);

BENCHMARK_MAIN();
