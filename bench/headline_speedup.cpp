//===- bench/headline_speedup.cpp - E8: headline numbers -----------------------===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Reproduces the paper's headline comparisons:
///  - HST vs PICO-ST (the best prior correct software scheme): the paper
///    reports min 1.25x, max 3.21x, geomean 2.03x across PARSEC;
///  - HST's overhead vs PICO-CAS (fast but incorrect): 2.9% .. 555%;
///  - ablations: HST-HELPER (hash update via helper call instead of
///    inline IR — quantifies Section IV-B2's IR-inlining claim) and the
///    Section VI rule-based translation.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

#include "workloads/ParsecKernels.h"

using namespace llsc;
using namespace llsc::bench;
using namespace llsc::workloads;

namespace {

double timeKernel(SchemeKind Kind, const KernelParams &Kernel,
                  unsigned Threads, double Scale, unsigned Repeats,
                  bool RuleBased = false) {
  auto Prog = buildKernel(Kernel, Scale);
  if (!Prog)
    reportFatalError(Prog.error());
  return averageSeconds(Repeats, [&]() -> ErrorOr<RunResult> {
    MachineConfig Config;
    Config.Scheme = Kind;
    Config.NumThreads = Threads;
    Config.MemBytes = 64ULL << 20;
    Config.ForceSoftHtm = true;
    Config.Translation.RuleBasedAtomics = RuleBased;
    auto MachineOrErr = Machine::create(Config);
    if (!MachineOrErr)
      return MachineOrErr.error();
    auto &M = **MachineOrErr;
    if (auto Loaded = M.loadProgram(*Prog); !Loaded)
      return Loaded.error();
    return M.run({});
  });
}

} // namespace

int main(int Argc, char **Argv) {
  ArgParser Args("E8: headline speedups (HST vs PICO-ST, HST vs PICO-CAS)");
  int64_t *Threads = Args.addInt("threads", 8, "guest threads");
  int64_t *Repeats = Args.addInt("repeats", 3, "runs per point");
  int64_t *ScalePct = Args.addInt("scale-pct", 60, "workload scale %");
  bool *Ablations = Args.addBool("ablations", true,
                                 "include hst-helper and rule-based rows");
  Args.parse(Argc, Argv);
  double Scale = *ScalePct / 100.0;

  Table Results({"kernel", "pico-cas (s)", "pico-st (s)", "hst (s)",
                 "hst-weak (s)", "bw-llsc (s)", "HST/PICO-ST speedup",
                 "HST overhead vs CAS %"});
  std::vector<double> Speedups;
  std::vector<double> Overheads;
  std::vector<double> BwRatios;

  for (const KernelParams &Kernel : parsecKernels()) {
    unsigned T = static_cast<unsigned>(*Threads);
    unsigned R = static_cast<unsigned>(*Repeats);
    double Cas = timeKernel(SchemeKind::PicoCas, Kernel, T, Scale, R);
    double St = timeKernel(SchemeKind::PicoSt, Kernel, T, Scale, R);
    double Hst = timeKernel(SchemeKind::Hst, Kernel, T, Scale, R);
    double Weak = timeKernel(SchemeKind::HstWeak, Kernel, T, Scale, R);
    double Bw = timeKernel(SchemeKind::BwLlsc, Kernel, T, Scale, R);

    double Speedup = St / Hst;
    double OverheadPct = 100.0 * (Hst - Cas) / Cas;
    Speedups.push_back(Speedup);
    Overheads.push_back(OverheadPct);
    BwRatios.push_back(Bw / Hst);

    Results.addRow({Kernel.Name, formatString("%.3f", Cas),
                    formatString("%.3f", St), formatString("%.3f", Hst),
                    formatString("%.3f", Weak), formatString("%.3f", Bw),
                    formatString("%.2fx", Speedup),
                    formatString("%.1f", OverheadPct)});
    std::fprintf(stderr, "  %s done\n", Kernel.Name.c_str());
  }

  emitTable("E8: headline comparison at a fixed thread count", Results,
            "headline_speedup.csv");

  std::printf("\nHST vs PICO-ST speedup: min %.2fx, max %.2fx, geomean "
              "%.2fx\n  (paper: min 1.25x, max 3.21x, geomean 2.03x)\n",
              minOf(Speedups), maxOf(Speedups), geometricMean(Speedups));
  std::printf("HST overhead vs PICO-CAS: min %.1f%%, max %.1f%%\n"
              "  (paper: 2.9%% .. 555%%, growing with thread count)\n",
              minOf(Overheads), maxOf(Overheads));
  std::printf("BW-LLSC cost vs HST: geomean %.2fx (announcement-array "
              "LL/SC over CAS,\n  constant-time SC, no page protection or "
              "HTM; arXiv:1911.09671)\n",
              geometricMean(BwRatios));

  if (*Ablations) {
    Table Ablation({"kernel", "hst (s)", "hst-helper (s)",
                    "inline-IR speedup", "hst rule-based (s)",
                    "rule-based speedup"});
    std::vector<double> HelperSlowdowns;
    for (const KernelParams &Kernel : parsecKernels()) {
      unsigned T = static_cast<unsigned>(*Threads);
      unsigned R = static_cast<unsigned>(*Repeats);
      double Hst = timeKernel(SchemeKind::Hst, Kernel, T, Scale, R);
      double Helper = timeKernel(SchemeKind::HstHelper, Kernel, T, Scale, R);
      double Rule = timeKernel(SchemeKind::Hst, Kernel, T, Scale, R,
                               /*RuleBased=*/true);
      HelperSlowdowns.push_back(Helper / Hst);
      Ablation.addRow({Kernel.Name, formatString("%.3f", Hst),
                       formatString("%.3f", Helper),
                       formatString("%.2fx", Helper / Hst),
                       formatString("%.3f", Rule),
                       formatString("%.2fx", Hst / Rule)});
      std::fprintf(stderr, "  ablation %s done\n", Kernel.Name.c_str());
    }
    emitTable("E8b: ablations — inline IR instrumentation vs helper calls "
              "(Section IV-B2) and rule-based translation (Section VI)",
              Ablation, "headline_ablations.csv");
    std::printf("\nhelper-call instrumentation slowdown: geomean %.2fx "
                "(paper: helpers cost 20..45%% vs <5%% inline)\n",
                geometricMean(HelperSlowdowns));
  }
  return 0;
}
