//===- bench/serve_snapshot.cpp - snapshot clone vs fresh load fan-out ----------===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Measures what copy-on-write machine snapshots buy the serve tier: the
/// same batch of short jobs is pushed through BatchService three ways per
/// concurrency level —
///
///   fresh    a new Machine + loadProgram per job (no pooling at all),
///   pooled   the PR-5 path: reset() Machines recycled, byte-identical
///            reload keeps the code cache warm,
///   snapshot clones of one warm donor snapshot: guest memory attaches
///            MAP_PRIVATE CoW to the sealed snapshot memfd and the
///            donor's tier-0 + tier-1 code is adopted, so a clone never
///            loads, never translates, never compiles.
///
/// The headline is snapshot/fresh jobs/s at 16 workers — the acceptance
/// gate holds it to >= 10x (docs/SERVING.md "Snapshot fan-out") — and the
/// fleet-summed engine.jit.compiled counter proves the clone path ran
/// zero tier-1 compiles. Machines run with JitHotThreshold=0 (the
/// LLSC_FORCE_JIT serving configuration): every executed block tiers up,
/// which is precisely where warm shared code matters most and where
/// fresh-per-job pays the full compile bill every time.
///
/// `--json FILE` emits the point list scripts/run_bench.sh merges into
/// BENCH_serve.json.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

#include "guest/Assembler.h"
#include "serve/BatchService.h"
#include "support/Timing.h"

using namespace llsc;
using namespace llsc::bench;
using namespace llsc::serve;

namespace {

/// A short job with a deliberately wide code footprint: \p Units distinct
/// LL/SC fetch-add sequences per loop iteration, each on its own word.
/// Wide code is the honest case for snapshots — the per-job cost a clone
/// skips is dominated by translation and tier-1 compilation, both
/// proportional to code size, not data size.
std::string fetchAddProgram(uint64_t Iters, unsigned Units) {
  std::string S = formatString("_start: li      r9, #%llu\n",
                               static_cast<unsigned long long>(Iters));
  S += "loop:   cbz     r9, done\n";
  for (unsigned U = 0; U < Units; ++U)
    S += formatString(R"(        la      r10, word%u
try%u:  ldxr.d  r1, [r10]
        addi    r1, r1, #1
        stxr.d  r2, r1, [r10]
        cbnz    r2, try%u
)",
                      U, U, U);
  S += "        addi    r9, r9, #-1\n"
       "        b       loop\n"
       "done:   halt\n";
  for (unsigned U = 0; U < Units; ++U)
    S += formatString("        .align 64\nword%u: .quad 0\n", U);
  return S;
}

enum class Mode { Fresh, Pooled, Snapshot };

const char *modeName(Mode M) {
  switch (M) {
  case Mode::Fresh:
    return "fresh";
  case Mode::Pooled:
    return "pooled";
  case Mode::Snapshot:
    return "snapshot";
  }
  return "?";
}

struct Point {
  unsigned Concurrency = 0;
  Mode RunMode = Mode::Fresh;
  unsigned Jobs = 0;
  double Seconds = 0;
  double JobsPerSec = 0;
  uint64_t JitCompiled = 0;      ///< Fleet-summed engine.jit.compiled.
  uint64_t SnapshotReused = 0;   ///< Warm clone-bucket pops.
};

} // namespace

int main(int Argc, char **Argv) {
  ArgParser Args("snapshot-clone vs fresh-load batch fan-out");
  std::string *WorkerList = Args.addString(
      "workers", "4,16", "comma-separated concurrency levels");
  int64_t *Jobs = Args.addInt("jobs", 256, "jobs per batch");
  int64_t *Iters = Args.addInt("iters", 1, "guest loop iterations per job");
  int64_t *Units = Args.addInt("units", 256, "fetch-add sites per loop body");
  int64_t *Repeats = Args.addInt("repeats", 3, "batches per point");
  std::string *JsonOut =
      Args.addString("json", "", "write machine-readable points to FILE");
  Args.parse(Argc, Argv);

  std::vector<unsigned> Concurrencies;
  for (std::string_view Tok : split(*WorkerList, ','))
    Concurrencies.push_back(static_cast<unsigned>(
        std::strtoul(std::string(Tok).c_str(), nullptr, 10)));

  auto ProgOrErr = guest::assemble(fetchAddProgram(
      static_cast<uint64_t>(*Iters), static_cast<unsigned>(*Units)));
  if (!ProgOrErr)
    reportFatalError(ProgOrErr.error());
  guest::Program Program = ProgOrErr.take();

  MachineConfig Shape;
  Shape.Scheme = SchemeKind::Hst;
  Shape.NumThreads = 1;
  Shape.JitHotThreshold = 0; // Tier up on first execution (see header).

  // Tier-1 availability decides whether the zero-recompile claim is
  // checkable on this host; the throughput ratio is measured either way.
  bool JitAvailable = false;
  {
    auto ProbeOrErr = Machine::create(Shape);
    if (!ProbeOrErr)
      reportFatalError(ProbeOrErr.error());
    JitAvailable = (*ProbeOrErr)->jitBackend() != nullptr;
  }

  Table Results({"workers", "mode", "jobs", "seconds", "jobs/s",
                 "jit.compiled", "snap.reused"});
  std::vector<Point> Points;

  for (unsigned Workers : Concurrencies) {
    double FreshRate = 0, SnapshotRate = 0;
    for (Mode M : {Mode::Fresh, Mode::Pooled, Mode::Snapshot}) {
      double SumSeconds = 0;
      uint64_t JitCompiled = 0, SnapReused = 0;
      for (int64_t Rep = 0; Rep < *Repeats; ++Rep) {
        BatchConfig Config;
        Config.Workers = Workers;
        Config.QueueCapacity = static_cast<size_t>(*Jobs);
        Config.ReuseMachines = M != Mode::Fresh;
        BatchService Service(Config);

        std::shared_ptr<const MachineSnapshot> Snap;
        if (M == Mode::Snapshot) {
          // Donor capture (load + warm-up run + image) happens once and
          // is deliberately outside the measured window: it is the cost
          // the whole fleet amortizes.
          JobSpec DonorSpec;
          DonorSpec.Name = "donor";
          DonorSpec.Source = JobSource::image(Program);
          DonorSpec.Machine = Shape;
          auto SnapOrErr = Service.captureSnapshot(DonorSpec);
          if (!SnapOrErr)
            reportFatalError(SnapOrErr.error());
          Snap = *SnapOrErr;
        }

        uint64_t StartNs = monotonicNanos();
        for (int64_t J = 0; J < *Jobs; ++J) {
          JobSpec Spec;
          Spec.Name = formatString("job-%lld", static_cast<long long>(J));
          Spec.Machine = Shape;
          if (M == Mode::Snapshot)
            Spec.Source = JobSource::snapshotRef(Snap);
          else
            Spec.Source = JobSource::image(Program);
          // Threaded execution (the default), not cooperative: tier-1
          // dispatch is threaded-only, and the differential being
          // measured — fresh jobs translating and compiling ~Units
          // blocks that clones adopt warm — only exists on that path.
          // The per-job vCPU thread spawn costs both modes the same.
          auto Handle = Service.submit(std::move(Spec));
          if (!Handle)
            reportFatalError(Handle.error());
        }
        Service.drain();
        SumSeconds +=
            static_cast<double>(monotonicNanos() - StartNs) * 1e-9;
        FleetStats Fleet = Service.fleetStats();
        if (Fleet.Failed)
          reportFatalError(formatString(
              "%llu jobs failed",
              static_cast<unsigned long long>(Fleet.Failed)));
        JitCompiled += Fleet.Events.JitBlocksCompiled;
        SnapReused += Service.poolStats().SnapshotReused;
      }
      Point P;
      P.Concurrency = Workers;
      P.RunMode = M;
      P.Jobs = static_cast<unsigned>(*Jobs);
      P.Seconds = SumSeconds / static_cast<double>(*Repeats);
      P.JobsPerSec =
          P.Seconds > 0 ? static_cast<double>(*Jobs) / P.Seconds : 0;
      P.JitCompiled = JitCompiled / static_cast<uint64_t>(*Repeats);
      P.SnapshotReused = SnapReused / static_cast<uint64_t>(*Repeats);
      Points.push_back(P);
      if (M == Mode::Fresh)
        FreshRate = P.JobsPerSec;
      if (M == Mode::Snapshot)
        SnapshotRate = P.JobsPerSec;

      Results.addRow({formatString("%u", Workers), modeName(M),
                      formatString("%u", P.Jobs),
                      formatString("%.4f", P.Seconds),
                      formatString("%.1f", P.JobsPerSec),
                      formatString("%llu", static_cast<unsigned long long>(
                                               P.JitCompiled)),
                      formatString("%llu", static_cast<unsigned long long>(
                                               P.SnapshotReused))});
      std::fprintf(stderr, "  workers=%u %s: %.1f jobs/s\n", Workers,
                   modeName(M), P.JobsPerSec);
    }
    std::fprintf(stderr, "  workers=%u snapshot/fresh = %.2fx\n", Workers,
                 FreshRate > 0 ? SnapshotRate / FreshRate : 0);
  }

  emitTable("snapshot clone vs fresh load fan-out", Results,
            "serve_snapshot.csv");

  if (!JsonOut->empty()) {
    FILE *Out = std::fopen(JsonOut->c_str(), "w");
    if (!Out)
      reportFatalError("cannot open " + *JsonOut);
    std::fprintf(Out,
                 "{\n\"bench\": \"serve_snapshot\",\n\"jit_available\": %s,"
                 "\n\"points\": [",
                 JitAvailable ? "true" : "false");
    for (size_t I = 0; I < Points.size(); ++I) {
      const Point &P = Points[I];
      std::fprintf(Out,
                   "%s\n  {\"workers\": %u, \"mode\": \"%s\", \"jobs\": %u, "
                   "\"seconds\": %.6f, \"jobs_per_sec\": %.2f, "
                   "\"jit_compiled\": %llu, \"snapshot_reused\": %llu}",
                   I ? "," : "", P.Concurrency, modeName(P.RunMode), P.Jobs,
                   P.Seconds, P.JobsPerSec,
                   static_cast<unsigned long long>(P.JitCompiled),
                   static_cast<unsigned long long>(P.SnapshotReused));
    }
    std::fprintf(Out, "\n]\n}\n");
    std::fclose(Out);
  }
  return 0;
}
