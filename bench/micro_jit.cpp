//===- bench/micro_jit.cpp - tier-1 JIT vs interpreter throughput ----------------===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Measures the tier-1 x86-64 JIT (engine/jit/, docs/JIT.md) against the
/// tier-0 threaded interpreter on the same kernels micro_dispatch uses:
///
///   - straight: straight-line ALU/memory loop — every edge chains, so
///     this isolates raw per-instruction dispatch cost. The docs/JIT.md
///     acceptance gate (>= 5x over tier-0) is computed from this kernel.
///   - indirect: four bl/ret pairs per iteration — half the blocks end in
///     an indirect exit, so the trampoline round trip and jump-cache
///     lookup bound the achievable speedup.
///   - llsc: an LL/SC counter loop — scheme thunks (and, for HST, the
///     inlined tag sequence) dominate; measures how much of the
///     instrumentation cost the JIT removes.
///
/// Each point runs tier-0 (MachineConfig::Jit = false) and tier-1
/// (JitHotThreshold = 0) back to back; the emitted JSON carries both rows
/// plus a per-kernel speedup map consumed by scripts/run_bench.sh to
/// build BENCH_jit.json and enforce the gate. On hosts without tier-1
/// support the tier-1 rows degenerate to the interpreter and the JSON
/// says "jit_available": false so the gate is skipped, not failed.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

#include "core/StatsReport.h"
#include "engine/jit/Jit.h"

#include <algorithm>

using namespace llsc;
using namespace llsc::bench;

namespace {

std::string straightLoop(uint64_t Iters) {
  // ALU-dense on purpose: each plain op costs tier-0 one threaded
  // dispatch (~5 ns) and tier-1 roughly one host instruction, so a long
  // dependency-free run of them is the cleanest measure of pure
  // dispatch elimination — which is what the >= 5x gate is about. One
  // load/store pair per iteration keeps the fastmem path honest.
  return formatString(R"(
_start: tid     r1
        la      r2, data
        li      r4, #%llu
loop:   cbz     r4, done
        ldd     r3, [r2]
        addi    r3, r3, #3
        eori    r3, r3, #0x55
        addi    r5, r3, #17
        lsli    r5, r5, #2
        eor     r5, r5, r3
        addi    r6, r5, #29
        lsri    r6, r6, #3
        add     r6, r6, r5
        eori    r6, r6, #0x33
        addi    r7, r6, #5
        lsli    r7, r7, #1
        eor     r7, r7, r6
        sub     r7, r7, r5
        std     r3, [r2, #8]
        lsri    r3, r3, #1
        addi    r4, r4, #-1
        b       loop
done:   halt
        .align 64
data:   .quad 9
        .quad 0
)",
                      static_cast<unsigned long long>(Iters));
}

std::string indirectLoop(uint64_t Iters) {
  return formatString(R"(
_start: tid     r1
        la      r2, data
        li      r4, #%llu
loop:   cbz     r4, done
        bl      f1
        bl      f2
        bl      f3
        bl      f4
        addi    r4, r4, #-1
        b       loop
done:   halt
f1:     addi    r3, r3, #1
        ret
f2:     ldd     r5, [r2]
        ret
f3:     add     r3, r3, r5
        ret
f4:     std     r3, [r2, #8]
        ret
        .align 64
data:   .quad 7
        .quad 0
)",
                      static_cast<unsigned long long>(Iters));
}

std::string llscLoop(uint64_t Iters) {
  return formatString(R"(
_start: tid     r1
        la      r2, counter
        li      r4, #%llu
loop:   cbz     r4, done
retry:  ldxr.d  r5, [r2]
        addi    r5, r5, #1
        stxr.d  r6, r5, [r2]
        cbnz    r6, retry
        addi    r4, r4, #-1
        b       loop
done:   halt
        .align 4096
counter: .quad 0
)",
                      static_cast<unsigned long long>(Iters));
}

struct Point {
  std::string Workload;
  std::string Scheme;
  const char *Tier = "";
  unsigned Threads = 0;
  double Seconds = 0;
  double BlocksPerSec = 0;
  double InstsPerSec = 0;
  uint64_t JitCompiled = 0;
  uint64_t JitEnters = 0;
  uint64_t JitDeopts = 0;
};

std::unique_ptr<Machine> makeTierMachine(SchemeKind Scheme, unsigned Threads,
                                         bool Jit) {
  MachineConfig Config;
  Config.Scheme = Scheme;
  Config.NumThreads = Threads;
  Config.MemBytes = 64ULL << 20;
  Config.ForceSoftHtm = true;
  Config.Jit = Jit;
  Config.JitHotThreshold = 0;
  auto MachineOrErr = Machine::create(Config);
  if (!MachineOrErr)
    reportFatalError(MachineOrErr.error());
  return MachineOrErr.take();
}

} // namespace

int main(int Argc, char **Argv) {
  ArgParser Args("tier-1 JIT vs tier-0 interpreter throughput");
  std::string *SchemeName = Args.addString("scheme", "hst", "atomic scheme");
  int64_t *ThreadsArg = Args.addInt("threads", 1, "guest thread count");
  // Long enough that the fastest (tier-1 straight-line) configuration
  // still runs tens of milliseconds per repeat — with short runs, timer
  // granularity and frequency ramping dominate the speedup ratio.
  int64_t *Iters = Args.addInt("iters", 2000000, "guest loop iterations");
  int64_t *Repeats = Args.addInt("repeats", 3, "runs per point");
  std::string *JsonOut =
      Args.addString("json", "", "write machine-readable points to FILE");
  Args.parse(Argc, Argv);

  auto Kind = parseSchemeName(*SchemeName);
  if (!Kind)
    reportFatalError("unknown scheme '" + *SchemeName + "'");
  unsigned Threads = static_cast<unsigned>(*ThreadsArg);

  bool JitAvailable = makeTierMachine(*Kind, 1, true)->jitBackend() != nullptr;

  struct Workload {
    const char *Name;
    std::string Source;
  } Workloads[] = {
      {"straight", straightLoop(static_cast<uint64_t>(*Iters))},
      {"indirect", indirectLoop(static_cast<uint64_t>(*Iters))},
      {"llsc", llscLoop(static_cast<uint64_t>(*Iters))},
  };

  Table Results({"workload", "scheme", "tier", "threads", "seconds",
                 "Mblocks/s", "Minsts/s", "speedup"});
  std::vector<Point> Points;
  std::vector<std::pair<std::string, double>> Speedups;

  for (const Workload &W : Workloads) {
    double TierInstsPerSec[2] = {0, 0};
    for (int Tier = 0; Tier <= 1; ++Tier) {
      // Best-of-repeats: the speedup is a ratio of two one-shot wall
      // times on a time-shared host, so a scheduler pause inside either
      // tier's run skews it. Peak per-repeat rate rejects that noise
      // (pauses only ever subtract); the mean would need many more
      // repeats for the same stability.
      double SumSeconds = 0, BestBlocksRate = 0, BestInstsRate = 0;
      uint64_t Compiled = 0, Enters = 0, Deopts = 0;
      for (int64_t Rep = 0; Rep < *Repeats; ++Rep) {
        auto M = makeTierMachine(*Kind, Threads, Tier == 1);
        if (auto Loaded = M->loadAssembly(W.Source); !Loaded)
          reportFatalError(Loaded.error());
        auto Result = M->run({});
        if (!Result)
          reportFatalError(Result.error());
        SumSeconds += Result->WallSeconds;
        if (Result->WallSeconds > 0) {
          double Blocks = static_cast<double>(Result->Total.ExecutedBlocks) /
                          Result->WallSeconds;
          double Insts = static_cast<double>(Result->Total.ExecutedInsts) /
                         Result->WallSeconds;
          BestBlocksRate = std::max(BestBlocksRate, Blocks);
          BestInstsRate = std::max(BestInstsRate, Insts);
        }
        Compiled += Result->Events.JitBlocksCompiled;
        Enters += Result->Events.JitEnters;
        Deopts += Result->Events.JitDeopts;
      }
      Point P;
      P.Workload = W.Name;
      P.Scheme = schemeTraits(*Kind).Name;
      P.Tier = Tier ? "tier1" : "tier0";
      P.Threads = Threads;
      P.Seconds = SumSeconds / static_cast<double>(*Repeats);
      P.BlocksPerSec = BestBlocksRate;
      P.InstsPerSec = BestInstsRate;
      P.JitCompiled = Compiled;
      P.JitEnters = Enters;
      P.JitDeopts = Deopts;
      Points.push_back(P);
      TierInstsPerSec[Tier] = P.InstsPerSec;

      double Speedup = Tier && TierInstsPerSec[0] > 0
                           ? P.InstsPerSec / TierInstsPerSec[0]
                           : 1.0;
      Results.addRow({P.Workload, P.Scheme, P.Tier,
                      formatString("%u", Threads),
                      formatString("%.4f", P.Seconds),
                      formatString("%.3f", P.BlocksPerSec / 1e6),
                      formatString("%.3f", P.InstsPerSec / 1e6),
                      Tier ? formatString("%.2f", Speedup) : std::string("-")});
      std::fprintf(stderr, "  %s/%s %s: %.3f Minsts/s%s\n", P.Workload.c_str(),
                   P.Scheme.c_str(), P.Tier, P.InstsPerSec / 1e6,
                   Tier ? formatString(" (%.2fx)", Speedup).c_str() : "");
    }
    if (TierInstsPerSec[0] > 0)
      Speedups.emplace_back(W.Name, TierInstsPerSec[1] / TierInstsPerSec[0]);
  }

  emitTable("tier-1 JIT vs interpreter", Results, "micro_jit.csv");

  if (!JsonOut->empty()) {
    FILE *Out = std::fopen(JsonOut->c_str(), "w");
    if (!Out)
      reportFatalError("cannot open " + *JsonOut);
    std::fprintf(Out, "{\n\"bench\": \"micro_jit\",\n\"jit_available\": %s,\n",
                 JitAvailable ? "true" : "false");
    std::fprintf(Out, "\"speedups\": {");
    for (size_t I = 0; I < Speedups.size(); ++I)
      std::fprintf(Out, "%s\"%s\": %.3f", I ? ", " : "",
                   Speedups[I].first.c_str(), Speedups[I].second);
    std::fprintf(Out, "},\n\"points\": [");
    for (size_t I = 0; I < Points.size(); ++I) {
      const Point &P = Points[I];
      std::fprintf(Out,
                   "%s\n  {\"workload\": \"%s\", \"scheme\": \"%s\", "
                   "\"tier\": \"%s\", \"threads\": %u, \"seconds\": %.6f, "
                   "\"blocks_per_sec\": %.1f, \"insts_per_sec\": %.1f, "
                   "\"jit_compiled\": %llu, \"jit_enters\": %llu, "
                   "\"jit_deopts\": %llu}",
                   I ? "," : "", P.Workload.c_str(), P.Scheme.c_str(), P.Tier,
                   P.Threads, P.Seconds, P.BlocksPerSec, P.InstsPerSec,
                   static_cast<unsigned long long>(P.JitCompiled),
                   static_cast<unsigned long long>(P.JitEnters),
                   static_cast<unsigned long long>(P.JitDeopts));
    }
    std::fprintf(Out, "\n]\n}\n");
    std::fclose(Out);
    std::printf("(json written to %s)\n", JsonOut->c_str());
  }
  return 0;
}
