//===- bench/serve_daemon.cpp - daemon-over-wire vs in-process serving ----------===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Measures what the llsc-served network front costs: the same batch of
/// short LL/SC jobs is driven through the session API twice per worker
/// count — once in-process (Session::submit / Session::stream, the
/// tools/llsc-serve path) and once through a live TCP daemon over
/// localhost (net::Server event loop + line-delimited JSON, the
/// tools/llsc-client path). The headline is daemon_over_inproc: how much
/// slower the wire run is. The acceptance gate holds it to <= 1.3x at 16
/// workers (docs/SERVING.md) — the single-threaded event loop must not
/// become the fleet's bottleneck.
///
/// The --soak-jobs section is the serving tier's endurance proof: it
/// pushes that many jobs through the daemon over localhost (queue-full
/// rejections honored with their retry-after hints), records the p99
/// queue latency from the fleet's log2 histogram, then fires a real
/// SIGTERM mid-load on a second burst and verifies the drain contract —
/// admissions cut over to "draining" rejections, every accepted job
/// still completes and streams out, the event loop exits on its own,
/// and the machine pool ends with zero outstanding machines (no leaks).
///
/// `--json FILE` emits the point list plus the soak verdict;
/// scripts/run_bench.sh merges both into BENCH_serve.json and enforces
/// the gates.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

#include "core/Snapshot.h"
#include "net/Client.h"
#include "net/Server.h"
#include "support/Timing.h"

#include <csignal>
#include <thread>

using namespace llsc;
using namespace llsc::bench;
using namespace llsc::serve;
using namespace llsc::net;

namespace {

/// A short contended LL/SC fetch-add job — small enough that 10k of them
/// soak in seconds, real enough that every one exercises the full
/// submit -> pool -> run -> stream path.
std::string fetchAddProgram(uint64_t Iters) {
  return formatString(R"(_start: li      r9, #%llu
loop:   cbz     r9, done
        la      r10, word
try:    ldxr.d  r1, [r10]
        addi    r1, r1, #1
        stxr.d  r2, r1, [r10]
        cbnz    r2, try
        addi    r9, r9, #-1
        b       loop
done:   halt
        .align 64
word:   .quad 0
)",
                      static_cast<unsigned long long>(Iters));
}

struct Point {
  unsigned Workers = 0;
  bool Daemon = false;
  unsigned Jobs = 0;
  double Seconds = 0;
  double JobsPerSec = 0;
};

ServiceConfig fleetConfig(unsigned Workers, size_t QueueCap) {
  ServiceConfig Config;
  Config.Fleet.Workers = Workers;
  Config.Fleet.QueueCapacity = QueueCap;
  return Config;
}

JobSpec makeSpec(const std::string &Asm, unsigned Threads) {
  JobSpec Spec;
  Spec.Name = "bench";
  Spec.Source = JobSource::assembly(Asm);
  Spec.Machine.Scheme = SchemeKind::Hst;
  Spec.Machine.NumThreads = Threads;
  return Spec;
}

/// In-process leg: the tools/llsc-serve shape — snapshot once at
/// session setup, then fan out clone jobs with submit retry-after
/// honored and one stream pass collecting everything. Snapshot fan-out
/// is the designed high-throughput serving workload (docs/SERVING.md),
/// so both legs of the comparison use it; the capture itself is setup
/// cost and stays outside the timed window on both sides.
double runInproc(unsigned Workers, unsigned Jobs, const std::string &Asm) {
  // Queue sized for the batch, as serve_throughput does: the throughput
  // legs measure wire overhead, not admission control (the soak covers
  // that with a deliberately tight queue).
  SessionService Service(fleetConfig(Workers, Jobs));
  SessionConfig SessCfg;
  SessCfg.MaxBufferedResults = Jobs;
  auto Sess = Service.createSession(SessCfg);
  if (!Sess)
    reportFatalError(Sess.error());
  auto Snap = (*Sess)->captureSnapshot("img", makeSpec(Asm, 2));
  if (!Snap)
    reportFatalError(Snap.error());
  JobSpec CloneSpec;
  CloneSpec.Name = "bench";
  CloneSpec.Source = JobSource::snapshotRef(*Snap);
  CloneSpec.Machine = (*Snap)->Config;

  uint64_t StartNs = monotonicNanos();
  for (unsigned J = 0; J < Jobs; ++J) {
    while (true) {
      Admission A = (*Sess)->submit(CloneSpec);
      if (A.Status == AdmitStatus::Accepted)
        break;
      if (A.Status != AdmitStatus::QueueFull)
        reportFatalError(formatString("inproc submit rejected (%s)",
                                      admitStatusName(A.Status)));
      std::this_thread::sleep_for(std::chrono::duration<double>(
          A.RetryAfterSeconds > 0 ? A.RetryAfterSeconds : 0.001));
    }
  }
  unsigned Collected = 0;
  while (Collected < Jobs) {
    std::vector<JobResult> Results = (*Sess)->stream(64, 1.0);
    for (const JobResult &R : Results)
      if (R.State != JobState::Done)
        reportFatalError("inproc job failed: " + R.Error);
    Collected += static_cast<unsigned>(Results.size());
  }
  double Seconds = static_cast<double>(monotonicNanos() - StartNs) * 1e-9;
  (*Sess)->close();
  return Seconds;
}

/// One live daemon: server event loop on its own thread, ephemeral port.
struct LiveDaemon {
  SessionService Service;
  Server Srv;
  std::thread Loop;

  LiveDaemon(unsigned Workers, size_t QueueCap)
      : Service(fleetConfig(Workers, QueueCap)),
        Srv([this] {
          ServerConfig C;
          C.Service = &Service;
          return C;
        }()) {
    if (auto Started = Srv.start(); !Started)
      reportFatalError(Started.error());
    Loop = std::thread([this] { Srv.run(); });
  }

  ~LiveDaemon() {
    if (Loop.joinable()) {
      Srv.requestStop();
      Loop.join();
    }
  }
};

/// Clone submits reference the session snapshot by name — a ~60-byte
/// line instead of shipping the assembly payload per job.
JsonValue submitRequest(const std::string &Session) {
  JsonValue R = JsonValue::object();
  auto &M = R.membersMut();
  M["verb"] = JsonValue::string("submit");
  M["session"] = JsonValue::string(Session);
  M["name"] = JsonValue::string("bench");
  M["from"] = JsonValue::string("img");
  return R;
}

ErrorOr<JsonValue> callOk(Client &C, const JsonValue &Request) {
  auto Resp = C.call(Request);
  if (!Resp)
    return Resp.error();
  if (!Resp->get("ok").asBool(false))
    return makeError("server: %s",
                     Resp->get("error").asString("request failed").c_str());
  return Resp;
}

/// Captures the shared donor snapshot on the daemon (synchronous verb;
/// session-setup cost, outside every timed window).
void captureWireSnapshot(Client &Conn, const std::string &Session,
                         const std::string &Asm) {
  JsonValue R = JsonValue::object();
  auto &M = R.membersMut();
  M["verb"] = JsonValue::string("snapshot");
  M["session"] = JsonValue::string(Session);
  M["name"] = JsonValue::string("img");
  M["scheme"] = JsonValue::string("hst");
  M["threads"] = JsonValue::integer(2);
  M["asm"] = JsonValue::string(Asm);
  auto Resp = callOk(Conn, R);
  if (!Resp)
    reportFatalError(Resp.error());
}

Client connectSession(const LiveDaemon &D, unsigned Jobs,
                      std::string &SessionOut) {
  Client Conn;
  if (auto Connected = Conn.connect("127.0.0.1", D.Srv.port()); !Connected)
    reportFatalError(Connected.error());
  JsonValue Create = JsonValue::object();
  Create.membersMut()["verb"] = JsonValue::string("create-session");
  Create.membersMut()["max_buffered"] =
      JsonValue::integer(static_cast<int64_t>(Jobs));
  auto Resp = callOk(Conn, Create);
  if (!Resp)
    reportFatalError(Resp.error());
  SessionOut = Resp->get("session").asString(std::string());
  return Conn;
}

/// Submits \p Jobs over \p Conn with a pipelined request window —
/// line-delimited requests answer in order, so a throughput client
/// keeps a window in flight instead of paying one full round trip per
/// job. Queue-full rejections are resubmitted (with the retry-after
/// backoff once a whole window bounced). \returns the number accepted
/// (all of them unless \p StopOnDraining and the daemon began draining
/// mid-burst).
unsigned submitWire(Client &Conn, const std::string &Session,
                    unsigned Jobs, bool StopOnDraining = false) {
  const std::string Line = submitRequest(Session).render();
  constexpr unsigned Window = 32;
  unsigned Accepted = 0, Outstanding = 0, ToSend = Jobs;
  unsigned ConsecutiveRejects = 0;
  bool Draining = false;
  while (ToSend > 0 || Outstanding > 0) {
    while (!Draining && ToSend > 0 && Outstanding < Window) {
      if (auto Sent = Conn.sendLine(Line); !Sent)
        reportFatalError(Sent.error());
      --ToSend;
      ++Outstanding;
    }
    if (Outstanding == 0)
      break;
    auto In = Conn.readLine();
    if (!In)
      reportFatalError(In.error());
    auto Resp = JsonValue::parse(*In);
    if (!Resp)
      reportFatalError(Resp.error());
    --Outstanding;
    if (Resp->get("ok").asBool(false)) {
      ++Accepted;
      ConsecutiveRejects = 0;
      continue;
    }
    std::string Reason = Resp->get("error").asString(std::string());
    if (Reason == "draining" && StopOnDraining) {
      Draining = true; // Flush remaining replies, send no more.
      continue;
    }
    if (Reason != "queue-full")
      reportFatalError("wire submit rejected (" + Reason + ")");
    if (!Draining)
      ++ToSend; // Resubmit.
    // Back off once a window's worth of rejects bounced in a row:
    // hot resubmission would flood the event loop with reject traffic
    // that competes with the workers posting results. Sleeping here is
    // safe with replies outstanding — they buffer in the socket.
    if (++ConsecutiveRejects >= Window) {
      double RetryAfter = Resp->get("retry_after").asDouble(0.001);
      std::this_thread::sleep_for(std::chrono::duration<double>(
          RetryAfter > 0 ? RetryAfter : 0.001));
      ConsecutiveRejects = 0;
    }
  }
  return Accepted;
}

/// Opens a stream subscription for \p Count results (events read later
/// via readStream).
void beginStream(Client &Conn, const std::string &Session, unsigned Count) {
  JsonValue Stream = JsonValue::object();
  Stream.membersMut()["verb"] = JsonValue::string("stream");
  Stream.membersMut()["session"] = JsonValue::string(Session);
  Stream.membersMut()["count"] =
      JsonValue::integer(static_cast<int64_t>(Count));
  if (auto Sent = Conn.sendLine(Stream.render()); !Sent)
    reportFatalError(Sent.error());
}

/// Reads stream events until stream-end; \returns how many results were
/// delivered (equal to the subscribed count unless the daemon drained).
unsigned readStream(Client &Conn) {
  unsigned Delivered = 0;
  while (true) {
    auto Line = Conn.readLine();
    if (!Line)
      reportFatalError(Line.error());
    auto Event = JsonValue::parse(*Line);
    if (!Event)
      reportFatalError(Event.error());
    std::string Kind = Event->get("event").asString(std::string());
    if (Kind == "result") {
      if (Event->get("job").get("state").asString("done") != "done")
        reportFatalError("wire job failed");
      ++Delivered;
      continue;
    }
    if (Kind == "stream-end")
      return Delivered;
    reportFatalError("unexpected stream line: " + *Line);
  }
}

/// Wire leg of the throughput comparison.
double runDaemon(unsigned Workers, unsigned Jobs, const std::string &Asm) {
  LiveDaemon D(Workers, Jobs);
  std::string Session;
  Client Conn = connectSession(D, Jobs, Session);
  captureWireSnapshot(Conn, Session, Asm);

  uint64_t StartNs = monotonicNanos();
  submitWire(Conn, Session, Jobs);
  beginStream(Conn, Session, Jobs);
  unsigned Delivered = readStream(Conn);
  double Seconds = static_cast<double>(monotonicNanos() - StartNs) * 1e-9;
  if (Delivered != Jobs)
    reportFatalError(formatString("daemon delivered %u of %u results",
                                  Delivered, Jobs));
  return Seconds;
}

struct SoakVerdict {
  unsigned Jobs = 0;
  unsigned Completed = 0;
  double Seconds = 0;
  double JobsPerSec = 0;
  uint64_t P99QueueNs = 0;
  unsigned DrainAccepted = 0;
  unsigned DrainDelivered = 0;
  uint64_t MachinesOutstanding = ~0ull;
  bool AdmissionCutOver = false;
  bool DrainClean = false;
};

/// The endurance run: \p Jobs through one live daemon, then a real
/// SIGTERM mid-burst to prove the drain contract.
SoakVerdict runSoak(unsigned Workers, unsigned Jobs, const std::string &Asm) {
  SoakVerdict V;
  V.Jobs = Jobs;
  LiveDaemon D(Workers, 64);
  std::string Session;
  Client Conn = connectSession(D, Jobs, Session);
  captureWireSnapshot(Conn, Session, Asm);

  // Phase 1: the full load, submit + stream, p99 from the fleet's
  // histogram afterwards.
  uint64_t StartNs = monotonicNanos();
  submitWire(Conn, Session, Jobs);
  beginStream(Conn, Session, Jobs);
  V.Completed = readStream(Conn);
  V.Seconds = static_cast<double>(monotonicNanos() - StartNs) * 1e-9;
  V.JobsPerSec =
      V.Seconds > 0 ? static_cast<double>(V.Completed) / V.Seconds : 0;
  V.P99QueueNs = D.Service.fleet().queueLatencyQuantileNs(0.99);

  // Phase 2: a second burst interrupted by SIGTERM. The handler routes
  // the signal to the server's self-pipe; the daemon must reject further
  // admissions as "draining", finish and stream what it accepted, and
  // exit its event loop unprompted.
  Server::installSigtermDrain(&D.Srv);
  unsigned Burst = std::min(Jobs, 256u);
  // Subscribe on a second connection *before* the interrupted burst: a
  // drain only owes results to live subscribers (an unsubscribed client
  // forfeits its buffer, docs/SERVING.md), and subscribing up front also
  // means the daemon cannot finish draining before we ask.
  Client StreamConn;
  if (auto Connected = StreamConn.connect("127.0.0.1", D.Srv.port());
      !Connected)
    reportFatalError(Connected.error());
  beginStream(StreamConn, Session, Burst);
  unsigned Half = submitWire(Conn, Session, Burst / 2);
  raise(SIGTERM);
  // raise() returns only after the handler wrote the drain byte, and the
  // event loop consumes its wake pipe before reading connections — so
  // every submit from here on must answer "draining".
  unsigned Rest =
      submitWire(Conn, Session, Burst - Burst / 2, /*StopOnDraining=*/true);
  V.DrainAccepted = Half + Rest;
  V.AdmissionCutOver = Rest < Burst - Burst / 2;
  V.DrainDelivered = readStream(StreamConn);
  Conn.close();
  StreamConn.close();
  D.Loop.join(); // run() must return on its own once drained.
  Server::installSigtermDrain(nullptr);

  V.MachinesOutstanding = D.Service.fleet().poolStats().Outstanding;
  V.DrainClean = V.AdmissionCutOver &&
                 V.DrainDelivered == V.DrainAccepted &&
                 V.MachinesOutstanding == 0 && V.Completed == Jobs;
  return V;
}

} // namespace

int main(int Argc, char **Argv) {
  ArgParser Args("serving daemon overhead: wire vs in-process session API");
  std::string *WorkerList =
      Args.addString("workers", "4,16", "comma-separated worker counts");
  int64_t *Jobs = Args.addInt("jobs", 256, "jobs per point");
  int64_t *Iters = Args.addInt("iters", 1600, "guest loop iterations per job");
  int64_t *Repeats = Args.addInt("repeats", 3, "runs per point");
  int64_t *SoakJobs = Args.addInt(
      "soak-jobs", 10000, "soak section job count (0 = skip the soak)");
  std::string *JsonOut =
      Args.addString("json", "", "write machine-readable points to FILE");
  Args.parse(Argc, Argv);

  std::vector<unsigned> Concurrencies;
  for (std::string_view Tok : split(*WorkerList, ','))
    Concurrencies.push_back(static_cast<unsigned>(
        std::strtoul(std::string(Tok).c_str(), nullptr, 10)));

  std::string Asm = fetchAddProgram(static_cast<uint64_t>(*Iters));
  Table Results({"workers", "mode", "jobs", "seconds", "jobs/s"});
  std::vector<Point> Points;

  for (unsigned Workers : Concurrencies) {
    double InprocRate = 0;
    for (bool Daemon : {false, true}) {
      double SumSeconds = 0;
      for (int64_t Rep = 0; Rep < *Repeats; ++Rep)
        SumSeconds += Daemon
                          ? runDaemon(Workers,
                                      static_cast<unsigned>(*Jobs), Asm)
                          : runInproc(Workers,
                                      static_cast<unsigned>(*Jobs), Asm);
      Point P;
      P.Workers = Workers;
      P.Daemon = Daemon;
      P.Jobs = static_cast<unsigned>(*Jobs);
      P.Seconds = SumSeconds / static_cast<double>(*Repeats);
      P.JobsPerSec =
          P.Seconds > 0 ? static_cast<double>(*Jobs) / P.Seconds : 0;
      Points.push_back(P);
      if (!Daemon)
        InprocRate = P.JobsPerSec;

      Results.addRow({formatString("%u", Workers),
                      Daemon ? "daemon" : "inproc",
                      formatString("%u", P.Jobs),
                      formatString("%.4f", P.Seconds),
                      formatString("%.1f", P.JobsPerSec)});
      std::fprintf(stderr, "  workers=%u %s: %.1f jobs/s\n", Workers,
                   Daemon ? "daemon" : "inproc", P.JobsPerSec);
    }
    const Point &DaemonPt = Points.back();
    std::fprintf(stderr, "  workers=%u daemon_over_inproc = %.2fx\n",
                 Workers,
                 DaemonPt.JobsPerSec > 0 ? InprocRate / DaemonPt.JobsPerSec
                                         : 0);
  }

  SoakVerdict Soak;
  if (*SoakJobs > 0) {
    unsigned SoakWorkers = Concurrencies.back();
    std::fprintf(stderr, "  soak: %lld jobs @ %u workers...\n",
                 static_cast<long long>(*SoakJobs), SoakWorkers);
    Soak = runSoak(SoakWorkers, static_cast<unsigned>(*SoakJobs), Asm);
    std::fprintf(stderr,
                 "  soak: %u/%u jobs in %.2fs (%.1f jobs/s) | p99 queue "
                 "%.3fms | drain accepted %u delivered %u | outstanding "
                 "%llu | %s\n",
                 Soak.Completed, Soak.Jobs, Soak.Seconds, Soak.JobsPerSec,
                 static_cast<double>(Soak.P99QueueNs) * 1e-6,
                 Soak.DrainAccepted, Soak.DrainDelivered,
                 static_cast<unsigned long long>(Soak.MachinesOutstanding),
                 Soak.DrainClean ? "drain clean" : "DRAIN DIRTY");
  }

  emitTable("serving daemon overhead (wire vs in-process)", Results,
            "serve_daemon.csv");

  if (!JsonOut->empty()) {
    FILE *Out = std::fopen(JsonOut->c_str(), "w");
    if (!Out)
      reportFatalError("cannot open " + *JsonOut);
    std::fprintf(Out, "{\n\"bench\": \"serve_daemon\",\n\"points\": [");
    for (size_t I = 0; I < Points.size(); ++I) {
      const Point &P = Points[I];
      std::fprintf(Out,
                   "%s\n  {\"workers\": %u, \"mode\": \"%s\", \"jobs\": %u, "
                   "\"seconds\": %.6f, \"jobs_per_sec\": %.2f}",
                   I ? "," : "", P.Workers, P.Daemon ? "daemon" : "inproc",
                   P.Jobs, P.Seconds, P.JobsPerSec);
    }
    std::fprintf(Out, "\n],\n");
    if (*SoakJobs > 0) {
      std::fprintf(
          Out,
          "\"soak\": {\"jobs\": %u, \"completed\": %u, \"seconds\": %.6f, "
          "\"jobs_per_sec\": %.2f, \"p99_queue_ns\": %llu, "
          "\"drain_accepted\": %u, \"drain_delivered\": %u, "
          "\"machines_outstanding\": %llu, \"admission_cut_over\": %s, "
          "\"drain_clean\": %s}\n",
          Soak.Jobs, Soak.Completed, Soak.Seconds, Soak.JobsPerSec,
          static_cast<unsigned long long>(Soak.P99QueueNs),
          Soak.DrainAccepted, Soak.DrainDelivered,
          static_cast<unsigned long long>(Soak.MachinesOutstanding),
          Soak.AdmissionCutOver ? "true" : "false",
          Soak.DrainClean ? "true" : "false");
    } else {
      std::fprintf(Out, "\"soak\": null\n");
    }
    std::fprintf(Out, "}\n");
    std::fclose(Out);
    std::printf("(json written to %s)\n", JsonOut->c_str());
  }
  return (*SoakJobs > 0 && !Soak.DrainClean) ? 1 : 0;
}
