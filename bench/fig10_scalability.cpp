//===- bench/fig10_scalability.cpp - E3: Fig. 10 scalability -------------------===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Reproduces Fig. 10: for HST, HST-WEAK, PST and PICO-ST (plus PICO-CAS
/// as the incorrect-but-fast reference), run each PARSEC-like kernel at
/// 1..N guest threads and report the speedup normalized to the scheme's
/// own single-thread time, exactly as the paper plots it.
///
/// Host note (EXPERIMENTS.md): on a single-core host the guest threads
/// time-share, so absolute speedups flatten near 1; the *relative*
/// ordering of schemes — who adds per-event cost where — is the
/// reproduced quantity, visible in the per-thread-count times.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

#include "workloads/ParsecKernels.h"

using namespace llsc;
using namespace llsc::bench;
using namespace llsc::workloads;

int main(int Argc, char **Argv) {
  ArgParser Args("E3 / Fig. 10: scalability of HST, HST-WEAK, PST, PICO-ST");
  int64_t *MaxThreads = Args.addInt("max-threads", 16, "largest thread count "
                                                       "(doubling from 1)");
  int64_t *Repeats = Args.addInt("repeats", 2, "runs per point");
  std::string *OnlyKernel = Args.addString("kernel", "", "run one kernel");
  std::string *OnlySchemes = Args.addString(
      "schemes", "hst,hst-weak,pst,pico-st,pico-cas", "schemes to sweep");
  double *Scale = nullptr;
  int64_t *ScalePct = Args.addInt("scale-pct", 50,
                                  "workload scale percentage");
  Args.parse(Argc, Argv);
  (void)Scale;

  auto SchemesOrErr = parseSchemeList(*OnlySchemes);
  if (!SchemesOrErr)
    reportFatalError(SchemesOrErr.error());
  std::vector<SchemeKind> Schemes = SchemesOrErr.take();

  std::vector<unsigned> ThreadCounts;
  for (unsigned T = 1; T <= static_cast<unsigned>(*MaxThreads); T *= 2)
    ThreadCounts.push_back(T);

  std::vector<std::string> Header{"kernel", "scheme"};
  for (unsigned T : ThreadCounts)
    Header.push_back(formatString("t=%u (s)", T));
  for (unsigned T : ThreadCounts)
    Header.push_back(formatString("speedup@%u", T));
  Table Results(Header);

  for (const KernelParams &Kernel : parsecKernels()) {
    if (!OnlyKernel->empty() && !equalsLower(*OnlyKernel, Kernel.Name))
      continue;
    for (SchemeKind Kind : Schemes) {
      std::vector<double> Seconds;
      for (unsigned Threads : ThreadCounts) {
        auto Prog = buildKernel(Kernel, *ScalePct / 100.0);
        if (!Prog)
          reportFatalError(Prog.error());
        double Mean = averageSeconds(
            static_cast<unsigned>(*Repeats), [&]() -> ErrorOr<RunResult> {
              auto M = makeBenchMachine(Kind, Threads);
              if (auto Loaded = M->loadProgram(*Prog); !Loaded)
                return Loaded.error();
              return M->run({});
            });
        Seconds.push_back(Mean);
        std::fprintf(stderr, "  %s/%s t=%u: %.3fs\n", Kernel.Name.c_str(),
                     schemeTraits(Kind).Name, Threads, Mean);
      }

      std::vector<std::string> Row{Kernel.Name, schemeTraits(Kind).Name};
      for (double S : Seconds)
        Row.push_back(formatString("%.3f", S));
      for (double S : Seconds)
        Row.push_back(formatString("%.2f", Seconds.front() / S));
      Results.addRow(std::move(Row));
    }
  }

  emitTable("E3 / Fig. 10: per-scheme scalability "
            "(speedup vs own single-thread time)",
            Results, "fig10_scalability.csv");
  return 0;
}
