//===- examples/quickstart.cpp - smallest end-to-end use of the library ---------===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Quickstart: build a machine, pick an atomic-emulation scheme, assemble
/// a small multi-threaded guest program that increments a shared counter
/// with LDXR/STXR, run it, and inspect the result.
///
///   $ ./quickstart                # defaults: hst, 4 threads
///   $ ./quickstart --scheme pico-cas --threads 16
///
//===----------------------------------------------------------------------===//

#include "core/Machine.h"
#include "support/CommandLine.h"

#include <cstdio>

using namespace llsc;

int main(int Argc, char **Argv) {
  ArgParser Args("quickstart: shared LL/SC counter under a chosen scheme");
  std::string *SchemeName =
      Args.addString("scheme", "hst", "atomic emulation scheme "
                                      "(pico-cas, pico-st, hst, hst-weak, "
                                      "hst-htm, pico-htm, pst, pst-remap)");
  int64_t *Threads = Args.addInt("threads", 4, "guest threads");
  int64_t *Iters = Args.addInt("iters", 10000, "increments per thread");
  Args.parse(Argc, Argv);

  auto Kind = parseSchemeName(*SchemeName);
  if (!Kind) {
    std::fprintf(stderr, "unknown scheme '%s'\n", SchemeName->c_str());
    return 1;
  }

  // 1. Configure and create the machine.
  MachineConfig Config;
  Config.Scheme = *Kind;
  Config.NumThreads = static_cast<unsigned>(*Threads);
  Config.MemBytes = 32ULL << 20;
  auto MachineOrErr = Machine::create(Config);
  if (!MachineOrErr) {
    std::fprintf(stderr, "error: %s\n",
                 MachineOrErr.error().render().c_str());
    return 1;
  }
  Machine &M = **MachineOrErr;

  // 2. Assemble a guest program. Each thread performs `iters` atomic
  //    increments of a shared word using an LDXR/STXR retry loop — the
  //    code shape compilers emit for __atomic_fetch_add on ARM.
  std::string Source = R"(
_start:
        la      r1, counter
        li      r4, #)" + std::to_string(*Iters) + R"(
loop:   cbz     r4, done
retry:  ldxr.w  r2, [r1]        ; load-link
        addi    r2, r2, #1
        stxr.w  r3, r2, [r1]    ; store-conditional
        cbnz    r3, retry       ; retry on SC failure
        addi    r4, r4, #-1
        b       loop
done:   halt

        .align 4096
counter: .word 0
)";
  if (auto Loaded = M.loadAssembly(Source); !Loaded) {
    std::fprintf(stderr, "assembly error: %s\n",
                 Loaded.error().render().c_str());
    return 1;
  }

  // 3. Run: one host thread per guest thread.
  auto Result = M.run({});
  if (!Result) {
    std::fprintf(stderr, "run error: %s\n", Result.error().render().c_str());
    return 1;
  }

  // 4. Inspect guest memory and execution statistics.
  uint64_t Counter = M.mem().shadowLoad(M.program().requiredSymbol("counter"), 4);
  uint64_t Expected = static_cast<uint64_t>(*Threads) *
                      static_cast<uint64_t>(*Iters);

  std::printf("scheme            : %s (%s atomicity)\n",
              M.scheme().traits().Name,
              M.scheme().traits().Atomicity == AtomicityClass::Strong
                  ? "strong"
                  : M.scheme().traits().Atomicity == AtomicityClass::Weak
                        ? "weak"
                        : "incorrect");
  std::printf("guest threads     : %u\n", M.numThreads());
  std::printf("wall time         : %.3f s\n", Result->WallSeconds);
  std::printf("guest instructions: %llu\n",
              static_cast<unsigned long long>(Result->Total.ExecutedInsts));
  std::printf("LL / SC / SC-fail : %llu / %llu / %llu\n",
              static_cast<unsigned long long>(Result->Total.LoadLinks),
              static_cast<unsigned long long>(Result->Total.StoreConds),
              static_cast<unsigned long long>(
                  Result->Total.StoreCondFailures));
  std::printf("counter           : %llu (expected %llu) -> %s\n",
              static_cast<unsigned long long>(Counter),
              static_cast<unsigned long long>(Expected),
              Counter == Expected ? "OK" : "WRONG");
  return Counter == Expected ? 0 : 1;
}
