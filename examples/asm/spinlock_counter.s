; spinlock_counter.s — N threads increment a counter under an LL/SC
; spin lock; run with e.g.:
;   llsc-run --threads 8 --scheme hst examples/asm/spinlock_counter.s \
;            --dump sym=counter,len=8
_start:
        la      r10, lock
        la      r11, counter
        li      r9, #5000
loop:   cbz     r9, done
; acquire
acq:    ldxr.w  r1, [r10]
        cbnz    r1, wait
        movz    r1, #1
        stxr.w  r2, r1, [r10]
        cbnz    r2, acq
        dmb
; critical section: non-atomic increment (safe only under the lock)
        ldd     r3, [r11]
        addi    r3, r3, #1
        std     r3, [r11]
; release (plain store: lock-owner convention, see HST-WEAK)
        dmb
        movz    r1, #0
        stw     r1, [r10]
        addi    r9, r9, #-1
        b       loop
wait:   yield
        b       acq
done:   halt
        .align  4096
lock:   .word   0
        .align  64
counter: .quad  0
