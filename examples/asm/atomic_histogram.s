; atomic_histogram.s — threads bin pseudo-random values into a shared
; histogram with LL/SC fetch-add loops (the Section VI idiom; try
; --rule-based to translate them to host atomics):
;   llsc-run --threads 4 --rule-based examples/asm/atomic_histogram.s \
;            --dump sym=hist,len=64
_start:
        la      r10, hist
        addi    r8, r0, #1      ; lcg state, seeded by tid
        li      r7, #0x9e3779b97f4a7c15
        mul     r8, r8, r7
        li      r11, #0x5851f42d4c957f2d
        li      r12, #0x14057b7ef767814f
        li      r9, #20000
loop:   cbz     r9, done
        mul     r8, r8, r11     ; advance lcg
        add     r8, r8, r12
        lsri    r1, r8, #59     ; top bits -> bin 0..15... use 3 bits
        andi    r1, r1, #7      ; 8 bins
        lsli    r1, r1, #2
        add     r1, r10, r1     ; &hist[bin]
        movz    r2, #1
; atomic fetch-add idiom (recognized by the rule-based pass)
retry:  ldxr.w  r3, [r1]
        add     r5, r3, r2
        stxr.w  r6, r5, [r1]
        cbnz    r6, retry
        addi    r9, r9, #-1
        b       loop
done:   halt
        .align  4096
hist:   .space  32
