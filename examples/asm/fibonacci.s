; fibonacci.s — compute fib(40) iteratively into `result`
;   llsc-run examples/asm/fibonacci.s --dump sym=result,len=8
_start:
        movz    r1, #0          ; a
        movz    r2, #1          ; b
        movz    r3, #40         ; n
loop:   cbz     r3, done
        add     r4, r1, r2
        mov     r1, r2
        mov     r2, r4
        addi    r3, r3, #-1
        b       loop
done:   la      r5, result
        std     r1, [r5]
        halt
        .align  8
result: .quad   0
