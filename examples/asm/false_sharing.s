; false_sharing.s — the adaptive controller's showcase workload.
;
; Thread 0 runs an LL/SC fetch-add loop on `hot` (the first word of
; `page`); every other thread hammers plain stores into its own cache
; line of the SAME page. Under the PST family each plain store that
; lands while the page is write-protected takes a full SIGSEGV recovery
; round trip even though it never touches the monitored granule — the
; paper's "false sharing" false alarms (Section IV-B2). HST is immune:
; the stores hash to different table entries.
;
;   llsc-run --threads 16 --scheme pst      examples/asm/false_sharing.s
;   llsc-run --threads 16 --scheme adaptive examples/asm/false_sharing.s
;
; With --scheme adaptive (which starts on PST) the controller sees the
; fault rate and hot-swaps to HST within its cooldown; --stats then
; reports adaptive.* samples/swaps and the final scheme.
_start:
        la      r10, page
        cbz     r0, owner
; Writer threads: plain stores to &page[tid * 64] — distinct cache
; lines, one shared page.
        li      r9, #90000
        lsli    r1, r0, #6
        add     r1, r10, r1
        movz    r2, #1
wloop:  cbz     r9, done
        std     r2, [r1]
        std     r2, [r1]
        std     r2, [r1]
        std     r2, [r1]
        addi    r9, r9, #-1
        b       wloop
; Owner thread: LL, compute, SC — the lock-free read-compute-update
; idiom. The page stays protected for the whole window, so writer
; stores landing inside it fault under PST.
owner:  li      r9, #15000
oloop:  cbz     r9, done
retry:  ldxr.w  r2, [r10]
        li      r6, #200
spin:   addi    r6, r6, #-1
        cbnz    r6, spin
        addi    r2, r2, #1
        stxr.w  r3, r2, [r10]
        cbnz    r3, retry
        addi    r9, r9, #-1
        b       oloop
done:   halt
        .align  4096
page:   .word   0
