//===- examples/parsec_kernel.cpp - run a PARSEC-like kernel --------------------===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Runs one of the eight PARSEC-like kernels under any scheme, printing
/// the measured instruction mix (Table I style) and timing. Useful for
/// exploring how each scheme's cost reacts to a workload's store:LL/SC
/// ratio:
///
///   $ ./parsec_kernel --kernel blackscholes --scheme pico-st --threads 8
///   $ ./parsec_kernel --kernel fluidanimate --scheme hst --threads 8
///
//===----------------------------------------------------------------------===//

#include "core/Machine.h"
#include "support/CommandLine.h"
#include "workloads/ParsecKernels.h"

#include <cstdio>

using namespace llsc;
using namespace llsc::workloads;

int main(int Argc, char **Argv) {
  ArgParser Args("parsec_kernel: run a synthetic PARSEC kernel");
  std::string *KernelName = Args.addString("kernel", "swaptions", "kernel");
  std::string *SchemeName = Args.addString("scheme", "hst", "scheme");
  int64_t *Threads = Args.addInt("threads", 4, "guest threads");
  int64_t *ScalePct = Args.addInt("scale-pct", 100, "workload scale %");
  bool *List = Args.addBool("list", false, "list kernels and exit");
  Args.parse(Argc, Argv);

  if (*List) {
    std::printf("available kernels:\n");
    for (const KernelParams &Params : parsecKernels())
      std::printf("  %-14s %llu iters, %u locks/iter, %u adds/iter, "
                  "barrier every %u%s\n",
                  Params.Name.c_str(),
                  static_cast<unsigned long long>(Params.OuterIters),
                  Params.LockedSections, Params.SharedAtomicAdds,
                  Params.BarrierEvery,
                  Params.SerialSection ? ", serial section" : "");
    return 0;
  }

  const KernelParams *Kernel = findKernel(*KernelName);
  if (!Kernel) {
    std::fprintf(stderr, "unknown kernel '%s' (try --list)\n",
                 KernelName->c_str());
    return 1;
  }
  auto Kind = parseSchemeName(*SchemeName);
  if (!Kind) {
    std::fprintf(stderr, "unknown scheme '%s'\n", SchemeName->c_str());
    return 1;
  }

  MachineConfig Config;
  Config.Scheme = *Kind;
  Config.NumThreads = static_cast<unsigned>(*Threads);
  Config.MemBytes = 64ULL << 20;
  Config.ForceSoftHtm = true;
  auto MachineOrErr = Machine::create(Config);
  if (!MachineOrErr) {
    std::fprintf(stderr, "error: %s\n",
                 MachineOrErr.error().render().c_str());
    return 1;
  }
  Machine &M = **MachineOrErr;

  auto Prog = buildKernel(*Kernel, *ScalePct / 100.0);
  if (!Prog) {
    std::fprintf(stderr, "error: %s\n", Prog.error().render().c_str());
    return 1;
  }
  if (auto Loaded = M.loadProgram(*Prog); !Loaded) {
    std::fprintf(stderr, "error: %s\n", Loaded.error().render().c_str());
    return 1;
  }

  auto Result = M.run({});
  if (!Result) {
    std::fprintf(stderr, "error: %s\n", Result.error().render().c_str());
    return 1;
  }

  const CpuCounters &Counters = Result->Total;
  double Ratio = Counters.LoadLinks
                     ? static_cast<double>(Counters.Stores) /
                           static_cast<double>(Counters.LoadLinks)
                     : 0;
  std::printf("kernel '%s' under %s, %u threads:\n", Kernel->Name.c_str(),
              schemeTraits(*Kind).Name, M.numThreads());
  std::printf("  wall time        : %.3f s\n", Result->WallSeconds);
  std::printf("  guest insts      : %llu (%.1f M/s)\n",
              static_cast<unsigned long long>(Counters.ExecutedInsts),
              static_cast<double>(Counters.ExecutedInsts) /
                  Result->WallSeconds * 1e-6);
  std::printf("  loads / stores   : %llu / %llu\n",
              static_cast<unsigned long long>(Counters.Loads),
              static_cast<unsigned long long>(Counters.Stores));
  std::printf("  LL/SC pairs      : %llu (stores per pair: %.0f)\n",
              static_cast<unsigned long long>(Counters.LoadLinks), Ratio);
  std::printf("  SC failures      : %llu\n",
              static_cast<unsigned long long>(Counters.StoreCondFailures));
  std::printf("  exclusive sects  : %llu\n",
              static_cast<unsigned long long>(Result->ExclusiveSections));
  std::printf("  recovered faults : %llu (%llu false sharing)\n",
              static_cast<unsigned long long>(
                  Counters.PageFaultsRecovered),
              static_cast<unsigned long long>(Counters.FalseSharingFaults));
  return 0;
}
