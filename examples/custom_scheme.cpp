//===- examples/custom_scheme.cpp - plugging in your own scheme -----------------===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Shows the extension surface: implement AtomicScheme yourself and drive
/// the engine with it. The example scheme is a deliberately naive
/// "global-lock" emulation — every LL/SC pair serializes on one mutex —
/// which is trivially correct (strong atomicity among LL/SC and, because
/// plain stores are also routed through the lock, against stores too) but
/// scales terribly; the demo compares it against HST on the litmus
/// sequences and a contended counter.
///
//===----------------------------------------------------------------------===//

#include "core/Machine.h"
#include "mem/GuestMemory.h"
#include "workloads/Litmus.h"

#include <cstdio>
#include <mutex>

using namespace llsc;
using namespace llsc::workloads;

namespace {

/// A user-defined scheme: one global mutex serializes LL/SC and stores.
/// Monitors are per-thread; any other thread's store or SC to the
/// monitored range breaks the monitor — like PICO-ST with the simplest
/// possible data structure.
class GlobalLockScheme final : public AtomicScheme {
public:
  const SchemeTraits &traits() const override {
    static SchemeTraits Traits = {SchemeKind::PicoSt, // Closest kind.
                                  "global-lock", AtomicityClass::Strong,
                                  "slow", false, "portable",
                                  /*UsesPageProtection=*/false,
                                  // Stores go through helpers that bake
                                  // this instance in, so translations are
                                  // not shareable across machines.
                                  /*NeutralTranslations=*/false};
    return Traits;
  }

  bool storesViaHelper() const override { return true; }

protected:
  // Lifecycle hooks (docs/API.md): the non-virtual attach()/reset()/
  // detach() entry points drive the state machine; subclasses override
  // the on*() notifications. Ctx is already set when onAttach runs.
  void onAttach() override {
    Monitors.assign(Ctx->NumThreads, Monitor());
  }

  void onReset() override {
    std::lock_guard<std::mutex> Lock(Mutex);
    for (Monitor &Mon : Monitors)
      Mon.Valid = false;
  }

public:

  uint64_t emulateLoadLink(VCpu &Cpu, uint64_t Addr, unsigned Size) override {
    std::lock_guard<std::mutex> Lock(Mutex);
    Monitors[Cpu.Tid] = {true, Addr, Size};
    uint64_t Value = Ctx->Mem->shadowLoad(Addr, Size);
    Cpu.Monitor.arm(Addr, Value, Size);
    return Value;
  }

  bool emulateStoreCond(VCpu &Cpu, uint64_t Addr, uint64_t Value,
                        unsigned Size) override {
    std::lock_guard<std::mutex> Lock(Mutex);
    Monitor &Own = Monitors[Cpu.Tid];
    bool Ok = Own.Valid && Own.Addr == Addr && Own.Size == Size;
    if (Ok) {
      breakOverlapping(Addr, Size, Monitors.size());
      Ctx->Mem->shadowStore(Addr, Value, Size);
    }
    Own.Valid = false;
    Cpu.Monitor.clear();
    return Ok;
  }

  void clearExclusive(VCpu &Cpu) override {
    std::lock_guard<std::mutex> Lock(Mutex);
    Monitors[Cpu.Tid].Valid = false;
    Cpu.Monitor.clear();
  }

  void storeHook(VCpu &Cpu, uint64_t Addr, uint64_t Value,
                 unsigned Size) override {
    std::lock_guard<std::mutex> Lock(Mutex);
    breakOverlapping(Addr, Size, Cpu.Tid);
    Ctx->Mem->shadowStore(Addr, Value, Size);
  }

private:
  struct Monitor {
    bool Valid = false;
    uint64_t Addr = 0;
    unsigned Size = 0;
  };

  void breakOverlapping(uint64_t Addr, unsigned Size, size_t ExcludeTid) {
    for (size_t Tid = 0; Tid < Monitors.size(); ++Tid) {
      if (Tid == ExcludeTid)
        continue;
      Monitor &Mon = Monitors[Tid];
      if (Mon.Valid && Mon.Addr < Addr + Size && Addr < Mon.Addr + Mon.Size)
        Mon.Valid = false;
    }
  }

  std::mutex Mutex;
  std::vector<Monitor> Monitors;
};

const char *CounterProgram = R"(
_start:
        la      r1, counter
        li      r4, #5000
loop:   cbz     r4, done
retry:  ldxr.w  r2, [r1]
        addi    r2, r2, #1
        stxr.w  r3, r2, [r1]
        cbnz    r3, retry
        addi    r4, r4, #-1
        b       loop
done:   halt
        .align 4096
counter: .word 0
)";

} // namespace

int main() {
  // A Machine owns its scheme via the factory; to run a *custom* scheme
  // we build a machine and hand it ours through Machine::setScheme, which
  // quiesces, detaches the factory scheme, attaches the replacement and
  // flushes the code cache (docs/API.md).
  MachineConfig Config;
  Config.Scheme = SchemeKind::Hst; // Placeholder; replaced below.
  Config.NumThreads = 4;
  Config.MemBytes = 32ULL << 20;

  auto MachineOrErr = Machine::create(Config);
  if (!MachineOrErr) {
    std::fprintf(stderr, "error: %s\n",
                 MachineOrErr.error().render().c_str());
    return 1;
  }
  Machine &M = **MachineOrErr;

  // Plug in the custom scheme: the engine dispatches LL/SC/stores to it
  // and the translator consults its TranslationHooks (storesViaHelper).
  M.setScheme(std::make_unique<GlobalLockScheme>());

  if (auto Loaded = M.loadAssembly(CounterProgram); !Loaded) {
    std::fprintf(stderr, "error: %s\n", Loaded.error().render().c_str());
    return 1;
  }

  auto Result = M.run({});
  if (!Result) {
    std::fprintf(stderr, "error: %s\n", Result.error().render().c_str());
    return 1;
  }
  uint64_t Counter =
      M.mem().shadowLoad(M.program().requiredSymbol("counter"), 4);
  std::printf("custom global-lock scheme: counter = %llu (expected %u) "
              "in %.3f s\n",
              static_cast<unsigned long long>(Counter), 4u * 5000u,
              Result->WallSeconds);

  // Classify the custom scheme with the paper's litmus sequences.
  auto DriverOrErr = LitmusDriver::create(M);
  if (!DriverOrErr) {
    std::fprintf(stderr, "error: %s\n",
                 DriverOrErr.error().render().c_str());
    return 1;
  }
  std::printf("litmus classification      : %s (expected strong)\n",
              measuredAtomicityName(classifyScheme(*DriverOrErr)));
  return Counter == 4 * 5000 ? 0 : 1;
}
