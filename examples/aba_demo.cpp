//===- examples/aba_demo.cpp - watch the ABA bug corrupt a lock-free stack ------===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// The paper's motivating demonstration (Section I): a multi-threaded
/// lock-free stack implemented with LL/SC runs correctly on real ARM
/// hardware, but under QEMU's CAS-based emulation (PICO-CAS) it corrupts
/// within seconds — nodes end up pointing at themselves. Run it under a
/// correct scheme and the stack stays intact:
///
///   $ ./aba_demo --scheme pico-cas     # corrupts ("stack is smashed")
///   $ ./aba_demo --scheme hst          # intact
///
//===----------------------------------------------------------------------===//

#include "core/Machine.h"
#include "support/CommandLine.h"
#include "workloads/LockFreeStack.h"

#include <cstdio>

using namespace llsc;
using namespace llsc::workloads;

int main(int Argc, char **Argv) {
  ArgParser Args("aba_demo: lock-free stack under a chosen scheme");
  std::string *SchemeName = Args.addString("scheme", "pico-cas", "scheme");
  int64_t *Threads = Args.addInt("threads", 16, "guest threads");
  int64_t *Iters = Args.addInt("iters", 8000, "pop/push pairs per thread");
  Args.parse(Argc, Argv);

  auto Kind = parseSchemeName(*SchemeName);
  if (!Kind) {
    std::fprintf(stderr, "unknown scheme '%s'\n", SchemeName->c_str());
    return 1;
  }

  MachineConfig Config;
  Config.Scheme = *Kind;
  Config.NumThreads = static_cast<unsigned>(*Threads);
  Config.MemBytes = 64ULL << 20;
  Config.ForceSoftHtm = true;
  Config.MaxBlocksPerCpu = 400'000'000; // Livelock guard.
  auto MachineOrErr = Machine::create(Config);
  if (!MachineOrErr) {
    std::fprintf(stderr, "error: %s\n",
                 MachineOrErr.error().render().c_str());
    return 1;
  }
  Machine &M = **MachineOrErr;

  LockFreeStackParams Params;
  Params.NumNodes = 64;
  Params.IterationsPerThread = static_cast<uint64_t>(*Iters);
  Params.BatchDepth = 2;     // Threads hold nodes across operations.
  Params.YieldEveryNPops = 4; // Single-core stand-in for parallel overlap.
  Params.HoldYieldEveryN = 4;

  auto Prog = buildLockFreeStack(Params);
  if (!Prog) {
    std::fprintf(stderr, "error: %s\n", Prog.error().render().c_str());
    return 1;
  }
  if (auto Loaded = M.loadProgram(*Prog); !Loaded) {
    std::fprintf(stderr, "error: %s\n", Loaded.error().render().c_str());
    return 1;
  }

  std::printf("running %lld threads x %lld pop/push pairs under %s...\n",
              static_cast<long long>(*Threads),
              static_cast<long long>(*Iters), schemeTraits(*Kind).Name);
  auto Result = M.run({});
  if (!Result) {
    std::fprintf(stderr, "error: %s\n", Result.error().render().c_str());
    return 1;
  }

  StackCheckResult Check = checkLockFreeStack(M.mem(), M.program(), Params);
  std::printf("\nwall time          : %.3f s\n", Result->WallSeconds);
  std::printf("SC attempts/fails  : %llu / %llu\n",
              static_cast<unsigned long long>(Result->Total.StoreConds),
              static_cast<unsigned long long>(
                  Result->Total.StoreCondFailures));
  std::printf("nodes reachable    : %llu of %u\n",
              static_cast<unsigned long long>(Check.NodesReachable),
              Params.NumNodes);
  std::printf("self-loop entries  : %llu (%.1f%%)\n",
              static_cast<unsigned long long>(Check.SelfLoops),
              Check.SelfLoopPct);
  std::printf("cycle detected     : %s\n",
              Check.CycleDetected ? "yes" : "no");
  if (Check.Corrupted)
    std::printf("\n*** Stack is smashed! The ABA problem struck "
                "(paper Section IV-A). ***\n");
  else
    std::printf("\nABA problem test passed — the stack is intact.\n");
  return 0;
}
