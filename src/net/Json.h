//===- net/Json.h - Minimal JSON value + parser -----------------*- C++-*-===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Just enough JSON for the daemon's line-delimited protocol: a tagged
/// JsonValue, a recursive-descent parser, and a small writer. No
/// external deps by design (the container bakes in nothing beyond the
/// toolchain), and no streaming — every protocol message is one line,
/// parsed whole. Numbers keep an integer fast path (job ids are
/// uint64s, which doubles would mangle past 2^53).
///
//===----------------------------------------------------------------------===//

#ifndef LLSC_NET_JSON_H
#define LLSC_NET_JSON_H

#include "support/Error.h"

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace llsc {
namespace net {

/// One parsed JSON value. Object keys are kept sorted (std::map) —
/// protocol messages are tiny, so lookup cost is irrelevant and
/// deterministic iteration helps tests.
class JsonValue {
public:
  enum class Kind { Null, Bool, Int, Double, String, Array, Object };

  JsonValue() = default;

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isObject() const { return K == Kind::Object; }
  bool isArray() const { return K == Kind::Array; }
  bool isString() const { return K == Kind::String; }
  bool isNumber() const { return K == Kind::Int || K == Kind::Double; }
  bool isBool() const { return K == Kind::Bool; }

  /// Object member access; \returns null for missing keys / non-objects
  /// (a static Null, so chained lookups are safe).
  const JsonValue &get(const std::string &Key) const;
  bool has(const std::string &Key) const {
    return K == Kind::Object && Obj.count(Key) != 0;
  }

  // Typed reads with defaults — the protocol layer's idiom for
  // optional message fields.
  bool asBool(bool Default = false) const {
    return K == Kind::Bool ? B : Default;
  }
  int64_t asInt(int64_t Default = 0) const {
    if (K == Kind::Int)
      return I;
    if (K == Kind::Double)
      return static_cast<int64_t>(D);
    return Default;
  }
  uint64_t asUint(uint64_t Default = 0) const {
    int64_t V = asInt(static_cast<int64_t>(Default));
    return V < 0 ? Default : static_cast<uint64_t>(V);
  }
  double asDouble(double Default = 0) const {
    if (K == Kind::Double)
      return D;
    if (K == Kind::Int)
      return static_cast<double>(I);
    return Default;
  }
  const std::string &asString() const { return S; }
  std::string asString(const std::string &Default) const {
    return K == Kind::String ? S : Default;
  }
  const std::vector<JsonValue> &items() const { return Arr; }
  const std::map<std::string, JsonValue> &members() const { return Obj; }

  static JsonValue null() { return JsonValue(); }
  static JsonValue boolean(bool V);
  static JsonValue integer(int64_t V);
  static JsonValue number(double V);
  static JsonValue string(std::string V);
  static JsonValue array();
  static JsonValue object();

  // Builder access (only meaningful on the matching kind).
  std::vector<JsonValue> &itemsMut() { return Arr; }
  std::map<std::string, JsonValue> &membersMut() { return Obj; }

  /// Parses exactly one JSON value from \p Text (trailing whitespace
  /// allowed, trailing garbage is an error).
  static ErrorOr<JsonValue> parse(std::string_view Text);

  /// Compact single-line rendering (the wire format).
  std::string render() const;

private:
  Kind K = Kind::Null;
  bool B = false;
  int64_t I = 0;
  double D = 0;
  std::string S;
  std::vector<JsonValue> Arr;
  std::map<std::string, JsonValue> Obj;
};

/// \returns \p S with JSON string escapes applied (no surrounding
/// quotes).
std::string jsonEscape(const std::string &S);

} // namespace net
} // namespace llsc

#endif // LLSC_NET_JSON_H
