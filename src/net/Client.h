//===- net/Client.h - Blocking llsc-served client ---------------*- C++-*-===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small blocking client for the llsc-served protocol: connect, send
/// one JSON line, read one JSON line back (call), or read raw lines for
/// the stream verb's event sequence. Used by tools/llsc-client, the
/// daemon tests and the serve_daemon bench — none of which need
/// concurrency on the client side, so blocking I/O keeps it simple.
///
//===----------------------------------------------------------------------===//

#ifndef LLSC_NET_CLIENT_H
#define LLSC_NET_CLIENT_H

#include "net/Json.h"

#include <string>

namespace llsc {
namespace net {

class Client {
public:
  Client() = default;
  ~Client();

  Client(const Client &) = delete;
  Client &operator=(const Client &) = delete;
  Client(Client &&Other) noexcept;
  Client &operator=(Client &&Other) noexcept;

  /// Connects to the daemon at \p Host:\p Port.
  ErrorOr<void> connect(const std::string &Host, uint16_t Port);

  bool connected() const { return Fd >= 0; }
  void close();

  /// Sends one line (newline appended).
  ErrorOr<void> sendLine(const std::string &Line);

  /// Blocks for the next line from the server (without the newline).
  /// Fails on EOF or a socket error.
  ErrorOr<std::string> readLine();

  /// Request/response round trip: send \p Request as one line, parse
  /// the next line as the response object.
  ErrorOr<JsonValue> call(const JsonValue &Request);

private:
  int Fd = -1;
  std::string InBuf;
};

} // namespace net
} // namespace llsc

#endif // LLSC_NET_CLIENT_H
