//===- net/Protocol.cpp - llsc-served wire protocol --------------------------===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//

#include "net/Protocol.h"

#include "input/InputArch.h"

using namespace llsc;
using namespace llsc::net;
using namespace llsc::serve;

std::string net::hexEncode(const std::vector<uint8_t> &Bytes) {
  static const char Digits[] = "0123456789abcdef";
  std::string Out;
  Out.reserve(Bytes.size() * 2);
  for (uint8_t B : Bytes) {
    Out += Digits[B >> 4];
    Out += Digits[B & 0xF];
  }
  return Out;
}

ErrorOr<std::vector<uint8_t>> net::hexDecode(const std::string &Hex) {
  if (Hex.size() % 2)
    return makeError("hex payload has odd length %zu", Hex.size());
  auto Nibble = [](char C) -> int {
    if (C >= '0' && C <= '9')
      return C - '0';
    if (C >= 'a' && C <= 'f')
      return C - 'a' + 10;
    if (C >= 'A' && C <= 'F')
      return C - 'A' + 10;
    return -1;
  };
  std::vector<uint8_t> Out;
  Out.reserve(Hex.size() / 2);
  for (size_t I = 0; I < Hex.size(); I += 2) {
    int Hi = Nibble(Hex[I]), Lo = Nibble(Hex[I + 1]);
    if (Hi < 0 || Lo < 0)
      return makeError("bad hex digit at offset %zu", I);
    Out.push_back(static_cast<uint8_t>((Hi << 4) | Lo));
  }
  return Out;
}

ErrorOr<JobSpec> net::jobSpecFromRequest(const JsonValue &Request,
                                         std::string *FromOut) {
  JobSpec Spec;
  Spec.Name = Request.get("name").asString(std::string());

  if (const JsonValue &Arch = Request.get("arch"); Arch.isString()) {
    auto Parsed = input::parseGuestArch(Arch.asString());
    if (!Parsed)
      return Parsed.error();
    Spec.Machine.Arch = *Parsed;
  }
  if (const JsonValue &Scheme = Request.get("scheme"); Scheme.isString()) {
    if (Scheme.asString() == "adaptive") {
      Spec.Machine.Adaptive = true;
    } else if (auto Kind = parseSchemeName(Scheme.asString())) {
      Spec.Machine.Scheme = *Kind;
    } else {
      return makeError("unknown scheme '%s'", Scheme.asString().c_str());
    }
  }
  if (Request.has("threads"))
    Spec.Machine.NumThreads =
        static_cast<unsigned>(Request.get("threads").asUint(1));
  if (Request.has("deadline"))
    Spec.DeadlineSeconds = Request.get("deadline").asDouble(0);
  if (Request.has("max_blocks"))
    Spec.MaxBlocksPerCpu = Request.get("max_blocks").asUint(0);
  if (Request.has("attempts"))
    Spec.MaxAttempts =
        static_cast<unsigned>(Request.get("attempts").asUint(1));

  std::string From = Request.get("from").asString(std::string());
  if (FromOut)
    *FromOut = From;
  bool HasAsm = Request.get("asm").isString();
  bool HasElf = Request.get("elf_hex").isString();
  if ((HasAsm ? 1 : 0) + (HasElf ? 1 : 0) + (From.empty() ? 0 : 1) > 1)
    return makeError("request carries more than one of asm/elf_hex/from");

  if (HasAsm) {
    // GRV assembly ships as source: the worker assembles it at dispatch
    // time, keeping the event loop free of per-job assembly work.
    uint64_t Base = Request.has("base") ? Request.get("base").asUint(0x1000)
                                        : 0x1000;
    Spec.Source = JobSource::assembly(Request.get("asm").asString(), Base);
    if (Spec.Machine.Arch != input::GuestArch::Grv)
      return makeError("asm payloads require arch=grv (got %s)",
                       input::guestArchName(Spec.Machine.Arch));
  } else if (HasElf) {
    // A binary image must be parsed here — loadImage validates headers
    // and yields the arch-checked program the worker will load.
    auto Bytes = hexDecode(Request.get("elf_hex").asString());
    if (!Bytes)
      return Bytes.error();
    auto Prog = input::inputArch(Spec.Machine.Arch).loadImage(*Bytes);
    if (!Prog)
      return Prog.error();
    Spec.Source = JobSource::image(Prog.take());
  } else if (From.empty()) {
    return makeError("request needs one of asm/elf_hex/from");
  }
  return Spec;
}
