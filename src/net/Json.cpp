//===- net/Json.cpp - Minimal JSON value + parser ----------------------------===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//

#include "net/Json.h"

#include <cctype>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>

using namespace llsc;
using namespace llsc::net;

const JsonValue &JsonValue::get(const std::string &Key) const {
  static const JsonValue Null;
  if (K != Kind::Object)
    return Null;
  auto It = Obj.find(Key);
  return It == Obj.end() ? Null : It->second;
}

JsonValue JsonValue::boolean(bool V) {
  JsonValue J;
  J.K = Kind::Bool;
  J.B = V;
  return J;
}
JsonValue JsonValue::integer(int64_t V) {
  JsonValue J;
  J.K = Kind::Int;
  J.I = V;
  return J;
}
JsonValue JsonValue::number(double V) {
  JsonValue J;
  J.K = Kind::Double;
  J.D = V;
  return J;
}
JsonValue JsonValue::string(std::string V) {
  JsonValue J;
  J.K = Kind::String;
  J.S = std::move(V);
  return J;
}
JsonValue JsonValue::array() {
  JsonValue J;
  J.K = Kind::Array;
  return J;
}
JsonValue JsonValue::object() {
  JsonValue J;
  J.K = Kind::Object;
  return J;
}

std::string net::jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

namespace {

/// Recursive-descent parser over a string_view. Depth-limited so a
/// hostile "[[[[..." line cannot blow the daemon's stack.
class Parser {
public:
  explicit Parser(std::string_view Text) : Text(Text) {}

  ErrorOr<JsonValue> run() {
    auto V = parseValue(0);
    if (!V)
      return V;
    skipWs();
    if (Pos != Text.size())
      return fail("trailing garbage after JSON value");
    return V;
  }

private:
  static constexpr unsigned MaxDepth = 64;

  Error fail(const char *Msg) {
    return makeError("json: %s at offset %zu", Msg, Pos);
  }

  void skipWs() {
    while (Pos < Text.size() && std::isspace(
                                    static_cast<unsigned char>(Text[Pos])))
      ++Pos;
  }

  bool consume(char C) {
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool consumeWord(std::string_view W) {
    if (Text.substr(Pos, W.size()) == W) {
      Pos += W.size();
      return true;
    }
    return false;
  }

  ErrorOr<JsonValue> parseValue(unsigned Depth) {
    if (Depth > MaxDepth)
      return fail("nesting too deep");
    skipWs();
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    char C = Text[Pos];
    if (C == '{')
      return parseObject(Depth);
    if (C == '[')
      return parseArray(Depth);
    if (C == '"') {
      auto S = parseString();
      if (!S)
        return S.error();
      return JsonValue::string(std::move(*S));
    }
    if (consumeWord("true"))
      return JsonValue::boolean(true);
    if (consumeWord("false"))
      return JsonValue::boolean(false);
    if (consumeWord("null"))
      return JsonValue::null();
    return parseNumber();
  }

  ErrorOr<JsonValue> parseObject(unsigned Depth) {
    JsonValue Obj = JsonValue::object();
    ++Pos; // '{'
    skipWs();
    if (consume('}'))
      return Obj;
    while (true) {
      skipWs();
      auto Key = parseString();
      if (!Key)
        return Key.error();
      skipWs();
      if (!consume(':'))
        return fail("expected ':' in object");
      auto Val = parseValue(Depth + 1);
      if (!Val)
        return Val;
      Obj.membersMut()[std::move(*Key)] = std::move(*Val);
      skipWs();
      if (consume(','))
        continue;
      if (consume('}'))
        return Obj;
      return fail("expected ',' or '}' in object");
    }
  }

  ErrorOr<JsonValue> parseArray(unsigned Depth) {
    JsonValue Arr = JsonValue::array();
    ++Pos; // '['
    skipWs();
    if (consume(']'))
      return Arr;
    while (true) {
      auto Val = parseValue(Depth + 1);
      if (!Val)
        return Val;
      Arr.itemsMut().push_back(std::move(*Val));
      skipWs();
      if (consume(','))
        continue;
      if (consume(']'))
        return Arr;
      return fail("expected ',' or ']' in array");
    }
  }

  ErrorOr<std::string> parseString() {
    if (!consume('"'))
      return fail("expected string");
    std::string Out;
    while (Pos < Text.size()) {
      char C = Text[Pos++];
      if (C == '"')
        return Out;
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= Text.size())
        break;
      char E = Text[Pos++];
      switch (E) {
      case '"':
      case '\\':
      case '/':
        Out += E;
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'u': {
        if (Pos + 4 > Text.size())
          return fail("truncated \\u escape");
        unsigned Code = 0;
        for (unsigned I = 0; I < 4; ++I) {
          char H = Text[Pos++];
          Code <<= 4;
          if (H >= '0' && H <= '9')
            Code |= static_cast<unsigned>(H - '0');
          else if (H >= 'a' && H <= 'f')
            Code |= static_cast<unsigned>(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            Code |= static_cast<unsigned>(H - 'A' + 10);
          else
            return fail("bad hex digit in \\u escape");
        }
        // UTF-8 encode the BMP code point (surrogate pairs land as two
        // 3-byte sequences — good enough for diagnostics text).
        if (Code < 0x80) {
          Out += static_cast<char>(Code);
        } else if (Code < 0x800) {
          Out += static_cast<char>(0xC0 | (Code >> 6));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        } else {
          Out += static_cast<char>(0xE0 | (Code >> 12));
          Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        }
        break;
      }
      default:
        return fail("unknown string escape");
      }
    }
    return fail("unterminated string");
  }

  ErrorOr<JsonValue> parseNumber() {
    size_t Start = Pos;
    if (consume('-')) {
    }
    while (Pos < Text.size() &&
           std::isdigit(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
    bool IsDouble = false;
    if (Pos < Text.size() && (Text[Pos] == '.' || Text[Pos] == 'e' ||
                              Text[Pos] == 'E')) {
      IsDouble = true;
      while (Pos < Text.size() &&
             (std::isdigit(static_cast<unsigned char>(Text[Pos])) ||
              Text[Pos] == '.' || Text[Pos] == 'e' || Text[Pos] == 'E' ||
              Text[Pos] == '+' || Text[Pos] == '-'))
        ++Pos;
    }
    if (Pos == Start)
      return fail("expected value");
    std::string Num(Text.substr(Start, Pos - Start));
    if (!IsDouble) {
      errno = 0;
      char *End = nullptr;
      long long V = std::strtoll(Num.c_str(), &End, 10);
      if (errno == 0 && End && *End == '\0')
        return JsonValue::integer(V);
      // Fall through on overflow: represent as double.
    }
    char *End = nullptr;
    double D = std::strtod(Num.c_str(), &End);
    if (!End || *End != '\0')
      return fail("malformed number");
    return JsonValue::number(D);
  }

  std::string_view Text;
  size_t Pos = 0;
};

void renderTo(const JsonValue &V, std::string &Out) {
  switch (V.kind()) {
  case JsonValue::Kind::Null:
    Out += "null";
    break;
  case JsonValue::Kind::Bool:
    Out += V.asBool() ? "true" : "false";
    break;
  case JsonValue::Kind::Int: {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%" PRId64, V.asInt());
    Out += Buf;
    break;
  }
  case JsonValue::Kind::Double: {
    char Buf[40];
    std::snprintf(Buf, sizeof(Buf), "%.17g", V.asDouble());
    Out += Buf;
    break;
  }
  case JsonValue::Kind::String:
    Out += '"';
    Out += jsonEscape(V.asString());
    Out += '"';
    break;
  case JsonValue::Kind::Array: {
    Out += '[';
    bool First = true;
    for (const JsonValue &Item : V.items()) {
      if (!First)
        Out += ',';
      First = false;
      renderTo(Item, Out);
    }
    Out += ']';
    break;
  }
  case JsonValue::Kind::Object: {
    Out += '{';
    bool First = true;
    for (const auto &Member : V.members()) {
      if (!First)
        Out += ',';
      First = false;
      Out += '"';
      Out += jsonEscape(Member.first);
      Out += "\":";
      renderTo(Member.second, Out);
    }
    Out += '}';
    break;
  }
  }
}

} // namespace

ErrorOr<JsonValue> JsonValue::parse(std::string_view Text) {
  return Parser(Text).run();
}

std::string JsonValue::render() const {
  std::string Out;
  renderTo(*this, Out);
  return Out;
}
