//===- net/Protocol.h - llsc-served wire protocol ---------------*- C++-*-===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The llsc-served wire protocol, version 1: line-delimited JSON over
/// TCP, one request object per line, answered by one response object
/// (the stream verb answers with several event lines). Each protocol
/// verb maps one-to-one onto the session API (serve/Session.h);
/// docs/SERVING.md carries the full message grammar. This header holds
/// the request-decoding helpers shared by the server and tests:
/// turning a submit/snapshot request object into a JobSpec, and the
/// hex codec used to ship rv32 ELF images inside JSON strings.
///
//===----------------------------------------------------------------------===//

#ifndef LLSC_NET_PROTOCOL_H
#define LLSC_NET_PROTOCOL_H

#include "net/Json.h"
#include "serve/Job.h"

#include <string>
#include <vector>

namespace llsc {
namespace net {

/// Wire protocol version spoken by this build (the hello verb reports
/// it; requests carry it as "v").
constexpr int ProtocolVersion = 1;

/// Decodes a submit / snapshot request object into a JobSpec.
/// Recognized fields: name, scheme ("adaptive" or any Table II name),
/// threads, arch, asm (GRV assembly text — stays source so the worker
/// assembles it off the event loop), elf_hex (hex-encoded rv32 ELF,
/// decoded and loaded here), base (assembly base address), deadline,
/// max_blocks, attempts. A "from" field (snapshot-clone jobs) is
/// reported via \p FromOut and leaves the spec's source empty — the
/// server resolves the named snapshot against the session.
ErrorOr<serve::JobSpec> jobSpecFromRequest(const JsonValue &Request,
                                           std::string *FromOut = nullptr);

/// Hex codec for binary payloads in JSON strings (rv32 ELF images).
std::string hexEncode(const std::vector<uint8_t> &Bytes);
ErrorOr<std::vector<uint8_t>> hexDecode(const std::string &Hex);

} // namespace net
} // namespace llsc

#endif // LLSC_NET_PROTOCOL_H
