//===- net/Server.h - llsc-served TCP event loop ----------------*- C++-*-===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The daemon's network front: a single-threaded poll(2) event loop
/// speaking the line-delimited JSON protocol (net/Protocol.h) against a
/// shared SessionService. One thread is enough because the loop never
/// runs guest code — every job is handed to the fleet through the
/// non-blocking session submit, and queue-full answers a retry-after
/// line instead of parking the loop (the acceptance bar: the accept
/// loop never blocks on a busy fleet).
///
/// Results flow back through per-session notifiers poking a self-pipe,
/// so a stream verb turns into event lines pushed as jobs finish — no
/// polling threads, no timers beyond poll's own timeout.
///
/// Graceful drain (SIGTERM via installSigtermDrain, or requestDrain):
/// stop accepting connections and admissions, let in-flight jobs
/// finish, push their results to any active streams, flush every
/// connection, then return from run(). The drain request is one
/// signal-safe write to the self-pipe.
///
//===----------------------------------------------------------------------===//

#ifndef LLSC_NET_SERVER_H
#define LLSC_NET_SERVER_H

#include "net/Json.h"
#include "serve/Session.h"

#include <cstdint>
#include <deque>
#include <map>

namespace llsc {
namespace net {

struct ServerConfig {
  std::string Host = "127.0.0.1";
  /// TCP port; 0 = ephemeral (resolved port readable via port() after
  /// start() — tests and the soak bench bind this way).
  uint16_t Port = 0;
  /// The serving tier this daemon fronts. Not owned.
  serve::SessionService *Service = nullptr;
};

class Server {
public:
  explicit Server(const ServerConfig &Config);
  ~Server();

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Binds and listens; resolves an ephemeral port. Call before run().
  ErrorOr<void> start();

  /// The bound port (valid after start()).
  uint16_t port() const { return BoundPort; }

  /// The event loop. Returns after a drain completes (all in-flight
  /// jobs finished, streams flushed) or requestStop().
  void run();

  /// Asks the loop to exit immediately (connections dropped, in-flight
  /// jobs keep running in the fleet). Signal-safe.
  void requestStop();

  /// Begins a graceful drain: stop accepting, finish in-flight, flush,
  /// exit run(). Signal-safe — one byte down the self-pipe.
  void requestDrain();

  /// Routes SIGTERM (and SIGINT) to \p S->requestDrain(). Pass nullptr
  /// to uninstall. One server per process may be registered.
  static void installSigtermDrain(Server *S);

  bool draining() const { return Draining; }

private:
  /// Per-connection state. In/Out are byte buffers; Pending holds
  /// request lines deferred while a stream is in progress (responses
  /// must not interleave into an event stream).
  struct Conn {
    int Fd = -1;
    std::string In;
    std::string Out;
    std::deque<std::string> Pending;
    /// Active stream subscription: deliver up to Remaining results
    /// from Session, then a stream-end line.
    std::shared_ptr<serve::Session> StreamSession;
    uint64_t StreamRemaining = 0;
    /// close-session verb awaiting in-flight jobs; respond when idle.
    std::shared_ptr<serve::Session> PendingClose;
    bool CloseAfterFlush = false;
  };

  void acceptNew();
  void readConn(Conn &C);
  void handleLine(Conn &C, const std::string &Line);
  void handleRequest(Conn &C, const JsonValue &Request);
  /// Moves buffered session results into the conn's Out as event
  /// lines; emits stream-end when the subscription completes (or the
  /// server is draining and nothing more can arrive).
  void pumpStream(Conn &C);
  void checkPendingClose(Conn &C);
  void flushConn(Conn &C);
  void closeConn(Conn &C);
  void reply(Conn &C, const JsonValue &Response);
  void replyError(Conn &C, const std::string &Message,
                  const char *Code = nullptr);
  std::shared_ptr<serve::Session> sessionFor(Conn &C,
                                             const JsonValue &Request);
  /// Registers the loop-wakeup notifier on \p S (idempotent).
  void watchSession(const std::shared_ptr<serve::Session> &S);
  JsonValue statsResponse() const;

  ServerConfig Config;
  int ListenFd = -1;
  int WakePipe[2] = {-1, -1};
  uint16_t BoundPort = 0;
  bool Draining = false;
  bool Stopping = false;
  std::map<int, Conn> Conns;
  std::map<std::string, bool> Watched; ///< Sessions with our notifier.

  struct NetCounters {
    std::atomic<uint64_t> *Connections;
    std::atomic<uint64_t> *Messages;
    std::atomic<uint64_t> *ProtocolErrors;
    std::atomic<uint64_t> *SubmitsAccepted;
    std::atomic<uint64_t> *SubmitsRejected;
    std::atomic<uint64_t> *ResultsStreamed;
    std::atomic<uint64_t> *Drains;
  };
  NetCounters Counters;
};

} // namespace net
} // namespace llsc

#endif // LLSC_NET_SERVER_H
