//===- net/Client.cpp - Blocking llsc-served client --------------------------===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//

#include "net/Client.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace llsc;
using namespace llsc::net;

Client::~Client() { close(); }

Client::Client(Client &&Other) noexcept
    : Fd(Other.Fd), InBuf(std::move(Other.InBuf)) {
  Other.Fd = -1;
}

Client &Client::operator=(Client &&Other) noexcept {
  if (this != &Other) {
    close();
    Fd = Other.Fd;
    InBuf = std::move(Other.InBuf);
    Other.Fd = -1;
  }
  return *this;
}

void Client::close() {
  if (Fd >= 0)
    ::close(Fd);
  Fd = -1;
  InBuf.clear();
}

ErrorOr<void> Client::connect(const std::string &Host, uint16_t Port) {
  close();
  Fd = socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return makeError("socket: %s", std::strerror(errno));
  sockaddr_in Addr = {};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Port);
  if (inet_pton(AF_INET, Host.c_str(), &Addr.sin_addr) != 1) {
    close();
    return makeError("bad address '%s'", Host.c_str());
  }
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    Error E = makeError("connect %s:%u: %s", Host.c_str(), Port,
                        std::strerror(errno));
    close();
    return E;
  }
  // Request/response lines are latency-bound, not throughput-bound.
  int One = 1;
  setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
  return {};
}

ErrorOr<void> Client::sendLine(const std::string &Line) {
  if (Fd < 0)
    return makeError("not connected");
  std::string Data = Line;
  Data += '\n';
  size_t Off = 0;
  while (Off < Data.size()) {
    ssize_t N = send(Fd, Data.data() + Off, Data.size() - Off, MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return makeError("send: %s", std::strerror(errno));
    }
    Off += static_cast<size_t>(N);
  }
  return {};
}

ErrorOr<std::string> Client::readLine() {
  if (Fd < 0)
    return makeError("not connected");
  while (true) {
    size_t Nl = InBuf.find('\n');
    if (Nl != std::string::npos) {
      std::string Line = InBuf.substr(0, Nl);
      InBuf.erase(0, Nl + 1);
      if (!Line.empty() && Line.back() == '\r')
        Line.pop_back();
      return Line;
    }
    char Buf[4096];
    ssize_t N = recv(Fd, Buf, sizeof(Buf), 0);
    if (N == 0)
      return makeError("server closed the connection");
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return makeError("recv: %s", std::strerror(errno));
    }
    InBuf.append(Buf, static_cast<size_t>(N));
  }
}

ErrorOr<JsonValue> Client::call(const JsonValue &Request) {
  if (auto Sent = sendLine(Request.render()); !Sent)
    return Sent.error();
  auto Line = readLine();
  if (!Line)
    return Line.error();
  return JsonValue::parse(*Line);
}
