//===- net/Server.cpp - llsc-served TCP event loop ---------------------------===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//

#include "net/Server.h"

#include "core/Snapshot.h"
#include "core/StatsReport.h"
#include "net/Protocol.h"
#include "serve/Manifest.h"
#include "support/Stats.h"

#include <arpa/inet.h>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace llsc;
using namespace llsc::net;
using namespace llsc::serve;

/// One request line may carry a hex-encoded guest image; cap it so a
/// rogue client cannot grow a connection buffer without bound.
static constexpr size_t MaxLineBytes = 16u << 20;

static void setNonBlocking(int Fd) {
  int Flags = fcntl(Fd, F_GETFL, 0);
  if (Flags >= 0)
    fcntl(Fd, F_SETFL, Flags | O_NONBLOCK);
}

Server::Server(const ServerConfig &Config) : Config(Config) {
  CounterRegistry &R = CounterRegistry::instance();
  Counters.Connections = R.counter("serve.net.connections");
  Counters.Messages = R.counter("serve.net.messages");
  Counters.ProtocolErrors = R.counter("serve.net.protocol_errors");
  Counters.SubmitsAccepted = R.counter("serve.net.submits_accepted");
  Counters.SubmitsRejected = R.counter("serve.net.submits_rejected");
  Counters.ResultsStreamed = R.counter("serve.net.results_streamed");
  Counters.Drains = R.counter("serve.net.drains");
}

Server::~Server() {
  for (auto &Entry : Conns)
    if (Entry.second.Fd >= 0)
      ::close(Entry.second.Fd);
  if (ListenFd >= 0)
    ::close(ListenFd);
  if (WakePipe[0] >= 0)
    ::close(WakePipe[0]);
  if (WakePipe[1] >= 0)
    ::close(WakePipe[1]);
}

ErrorOr<void> Server::start() {
  if (!Config.Service)
    return makeError("server needs a SessionService");
  if (pipe(WakePipe) != 0)
    return makeError("pipe: %s", std::strerror(errno));
  setNonBlocking(WakePipe[0]);
  setNonBlocking(WakePipe[1]);

  ListenFd = socket(AF_INET, SOCK_STREAM, 0);
  if (ListenFd < 0)
    return makeError("socket: %s", std::strerror(errno));
  int One = 1;
  setsockopt(ListenFd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));

  sockaddr_in Addr = {};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Config.Port);
  if (inet_pton(AF_INET, Config.Host.c_str(), &Addr.sin_addr) != 1)
    return makeError("bad listen address '%s'", Config.Host.c_str());
  if (bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0)
    return makeError("bind %s:%u: %s", Config.Host.c_str(), Config.Port,
                     std::strerror(errno));
  if (listen(ListenFd, 64) != 0)
    return makeError("listen: %s", std::strerror(errno));
  setNonBlocking(ListenFd);

  socklen_t Len = sizeof(Addr);
  if (getsockname(ListenFd, reinterpret_cast<sockaddr *>(&Addr), &Len) == 0)
    BoundPort = ntohs(Addr.sin_port);
  return {};
}

void Server::requestStop() {
  if (WakePipe[1] >= 0)
    (void)!write(WakePipe[1], "S", 1);
}

void Server::requestDrain() {
  if (WakePipe[1] >= 0)
    (void)!write(WakePipe[1], "D", 1);
}

namespace {
/// The SIGTERM handler's target: just a pipe fd — everything the
/// handler does is one async-signal-safe write.
volatile sig_atomic_t SigDrainFd = -1;
void sigtermHandler(int) {
  int Fd = SigDrainFd;
  if (Fd >= 0)
    (void)!write(Fd, "D", 1);
}
} // namespace

void Server::installSigtermDrain(Server *S) {
  SigDrainFd = S ? S->WakePipe[1] : -1;
  struct sigaction Sa = {};
  Sa.sa_handler = S ? sigtermHandler : SIG_DFL;
  sigemptyset(&Sa.sa_mask);
  sigaction(SIGTERM, &Sa, nullptr);
  sigaction(SIGINT, &Sa, nullptr);
}

void Server::watchSession(const std::shared_ptr<Session> &S) {
  if (!S || Watched.count(S->name()))
    return;
  int Fd = WakePipe[1];
  S->setNotifier([Fd] { (void)!write(Fd, "N", 1); });
  Watched[S->name()] = true;
}

void Server::reply(Conn &C, const JsonValue &Response) {
  C.Out += Response.render();
  C.Out += '\n';
}

void Server::replyError(Conn &C, const std::string &Message,
                        const char *Code) {
  JsonValue R = JsonValue::object();
  R.membersMut()["ok"] = JsonValue::boolean(false);
  R.membersMut()["error"] =
      JsonValue::string(Code ? std::string(Code) : Message);
  if (Code)
    R.membersMut()["detail"] = JsonValue::string(Message);
  reply(C, R);
}

std::shared_ptr<Session> Server::sessionFor(Conn &C,
                                            const JsonValue &Request) {
  std::string Name = Request.get("session").asString(std::string());
  if (Name.empty()) {
    replyError(C, "request needs a session field");
    return nullptr;
  }
  std::shared_ptr<Session> S = Config.Service->find(Name);
  if (!S)
    replyError(C, "unknown session '" + Name + "'");
  return S;
}

JsonValue Server::statsResponse() const {
  const BatchService &Fleet = Config.Service->fleet();
  FleetStats F = Fleet.fleetStats();
  MachinePool::Stats P = Fleet.poolStats();
  CounterRegistry &R = CounterRegistry::instance();

  JsonValue J = JsonValue::object();
  auto &M = J.membersMut();
  M["ok"] = JsonValue::boolean(true);
  M["draining"] = JsonValue::boolean(Config.Service->draining());
  M["submitted"] = JsonValue::integer(static_cast<int64_t>(F.Submitted));
  M["completed"] = JsonValue::integer(static_cast<int64_t>(F.Completed));
  M["failed"] = JsonValue::integer(static_cast<int64_t>(F.Failed));
  M["cancelled"] = JsonValue::integer(static_cast<int64_t>(F.Cancelled));
  M["rejected_queue_full"] =
      JsonValue::integer(static_cast<int64_t>(F.RejectedQueueFull));
  M["deadline_exceeded"] =
      JsonValue::integer(static_cast<int64_t>(F.DeadlineExceeded));
  M["snapshot_jobs"] = JsonValue::integer(static_cast<int64_t>(F.SnapshotJobs));
  M["machines_created"] =
      JsonValue::integer(static_cast<int64_t>(P.Created));
  M["machines_reused"] = JsonValue::integer(static_cast<int64_t>(P.Reused));
  M["machines_outstanding"] =
      JsonValue::integer(static_cast<int64_t>(P.Outstanding));
  M["machines_idle"] = JsonValue::integer(static_cast<int64_t>(P.Idle));
  M["queue_depth"] =
      JsonValue::integer(static_cast<int64_t>(Fleet.queueDepth()));
  M["queue_capacity"] =
      JsonValue::integer(static_cast<int64_t>(Fleet.queueCapacity()));
  M["workers"] = JsonValue::integer(Fleet.workerTarget());
  M["busy_workers"] = JsonValue::integer(Fleet.busyWorkers());
  M["queue_p99_ns"] = JsonValue::integer(
      static_cast<int64_t>(Fleet.queueLatencyQuantileNs(0.99)));
  M["autoscale_samples"] = JsonValue::integer(static_cast<int64_t>(
      R.counter("serve.autoscale.samples")->load(std::memory_order_relaxed)));
  M["autoscale_scale_ups"] = JsonValue::integer(static_cast<int64_t>(
      R.counter("serve.autoscale.scale_ups")->load(std::memory_order_relaxed)));
  M["autoscale_scale_downs"] =
      JsonValue::integer(static_cast<int64_t>(R.counter("serve.autoscale.scale_downs")
                                                  ->load(std::memory_order_relaxed)));
  return J;
}

void Server::handleRequest(Conn &C, const JsonValue &Request) {
  Counters.Messages->fetch_add(1, std::memory_order_relaxed);
  std::string Verb = Request.get("verb").asString(std::string());

  if (Verb == "hello") {
    JsonValue R = JsonValue::object();
    R.membersMut()["ok"] = JsonValue::boolean(true);
    R.membersMut()["server"] = JsonValue::string("llsc-served");
    R.membersMut()["proto"] = JsonValue::integer(ProtocolVersion);
    R.membersMut()["schema_version"] =
        JsonValue::integer(StatsReport::SchemaVersion);
    R.membersMut()["draining"] = JsonValue::boolean(Draining);
    reply(C, R);
    return;
  }

  if (Verb == "stats") {
    reply(C, statsResponse());
    return;
  }

  if (Verb == "create-session") {
    SessionConfig Cfg;
    Cfg.Name = Request.get("session").asString(std::string());
    Cfg.MaxInFlight =
        static_cast<unsigned>(Request.get("max_inflight").asUint(0));
    if (Request.has("max_buffered"))
      Cfg.MaxBufferedResults = Request.get("max_buffered").asUint(1024);
    auto SessOrErr = Config.Service->createSession(Cfg);
    if (!SessOrErr) {
      replyError(C, SessOrErr.error().message());
      return;
    }
    watchSession(*SessOrErr);
    JsonValue R = JsonValue::object();
    R.membersMut()["ok"] = JsonValue::boolean(true);
    R.membersMut()["session"] = JsonValue::string((*SessOrErr)->name());
    reply(C, R);
    return;
  }

  if (Verb == "snapshot") {
    std::shared_ptr<Session> S = sessionFor(C, Request);
    if (!S)
      return;
    std::string Name = Request.get("name").asString(std::string());
    if (Name.empty()) {
      replyError(C, "snapshot needs a name");
      return;
    }
    auto SpecOrErr = jobSpecFromRequest(Request);
    if (!SpecOrErr) {
      Counters.ProtocolErrors->fetch_add(1, std::memory_order_relaxed);
      replyError(C, SpecOrErr.error().message());
      return;
    }
    // Deliberately synchronous: capture loads, warms and images the
    // donor before answering. Sessions snapshot at setup time, not in
    // the submit hot path (docs/SERVING.md).
    auto SnapOrErr =
        S->captureSnapshot(Name, *SpecOrErr, Request.get("warm").asBool(true));
    if (!SnapOrErr) {
      replyError(C, SnapOrErr.error().message());
      return;
    }
    JsonValue R = JsonValue::object();
    R.membersMut()["ok"] = JsonValue::boolean(true);
    R.membersMut()["snapshot"] = JsonValue::string(Name);
    reply(C, R);
    return;
  }

  if (Verb == "submit") {
    std::shared_ptr<Session> S = sessionFor(C, Request);
    if (!S)
      return;
    std::string From;
    auto SpecOrErr = jobSpecFromRequest(Request, &From);
    if (!SpecOrErr) {
      Counters.ProtocolErrors->fetch_add(1, std::memory_order_relaxed);
      replyError(C, SpecOrErr.error().message());
      return;
    }
    JobSpec Spec = SpecOrErr.take();
    if (!From.empty()) {
      std::shared_ptr<const MachineSnapshot> Snap = S->findSnapshot(From);
      if (!Snap) {
        replyError(C, "unknown snapshot '" + From + "'");
        return;
      }
      Spec.Source = JobSource::snapshotRef(Snap);
      Spec.Machine = Snap->Config; // Clones pool in the donor's bucket.
    }
    Admission A = S->submit(std::move(Spec));
    if (A.Status != AdmitStatus::Accepted) {
      Counters.SubmitsRejected->fetch_add(1, std::memory_order_relaxed);
      JsonValue R = JsonValue::object();
      R.membersMut()["ok"] = JsonValue::boolean(false);
      R.membersMut()["error"] = JsonValue::string(admitStatusName(A.Status));
      if (A.Status == AdmitStatus::QueueFull)
        R.membersMut()["retry_after"] = JsonValue::number(A.RetryAfterSeconds);
      reply(C, R);
      return;
    }
    Counters.SubmitsAccepted->fetch_add(1, std::memory_order_relaxed);
    JsonValue R = JsonValue::object();
    R.membersMut()["ok"] = JsonValue::boolean(true);
    R.membersMut()["job_id"] =
        JsonValue::integer(static_cast<int64_t>(A.Handle.id()));
    reply(C, R);
    return;
  }

  if (Verb == "poll") {
    std::shared_ptr<Session> S = sessionFor(C, Request);
    if (!S)
      return;
    uint64_t JobId = Request.get("job_id").asUint(0);
    std::optional<JobState> State = S->poll(JobId);
    JsonValue R = JsonValue::object();
    if (!State) {
      R.membersMut()["ok"] = JsonValue::boolean(false);
      R.membersMut()["error"] = JsonValue::string("unknown job");
    } else {
      R.membersMut()["ok"] = JsonValue::boolean(true);
      R.membersMut()["job_id"] = JsonValue::integer(static_cast<int64_t>(JobId));
      R.membersMut()["state"] = JsonValue::string(jobStateName(*State));
    }
    reply(C, R);
    return;
  }

  if (Verb == "stream") {
    std::shared_ptr<Session> S = sessionFor(C, Request);
    if (!S)
      return;
    uint64_t Count = Request.get("count").asUint(0);
    if (Count == 0) {
      replyError(C, "stream needs a positive count");
      return;
    }
    watchSession(S);
    C.StreamSession = S;
    C.StreamRemaining = Count;
    pumpStream(C);
    return;
  }

  if (Verb == "cancel") {
    std::shared_ptr<Session> S = sessionFor(C, Request);
    if (!S)
      return;
    uint64_t JobId = Request.get("job_id").asUint(0);
    JsonValue R = JsonValue::object();
    R.membersMut()["ok"] = JsonValue::boolean(true);
    R.membersMut()["cancelled"] = JsonValue::boolean(S->cancel(JobId));
    reply(C, R);
    return;
  }

  if (Verb == "close-session") {
    std::shared_ptr<Session> S = sessionFor(C, Request);
    if (!S)
      return;
    if (S->tryClose()) {
      Config.Service->closeSession(S->name());
      JsonValue R = JsonValue::object();
      R.membersMut()["ok"] = JsonValue::boolean(true);
      R.membersMut()["session"] = JsonValue::string(S->name());
      R.membersMut()["closed"] = JsonValue::boolean(true);
      reply(C, R);
    } else {
      // Jobs still in flight: the response is deferred until they
      // finish (checkPendingClose each loop pass).
      C.PendingClose = S;
    }
    return;
  }

  Counters.ProtocolErrors->fetch_add(1, std::memory_order_relaxed);
  replyError(C, "unknown verb '" + Verb + "'");
}

void Server::pumpStream(Conn &C) {
  if (!C.StreamSession)
    return;
  while (C.StreamRemaining > 0) {
    size_t Batch = static_cast<size_t>(
        std::min<uint64_t>(C.StreamRemaining, 64));
    std::vector<JobResult> Results = C.StreamSession->stream(Batch, 0.0);
    if (Results.empty())
      break;
    for (const JobResult &R : Results) {
      std::string Line = renderJobLine(R);
      while (!Line.empty() && Line.back() == '\n')
        Line.pop_back();
      C.Out += "{\"event\":\"result\",\"session\":\"";
      C.Out += jsonEscape(C.StreamSession->name());
      C.Out += "\",\"job\":";
      C.Out += Line;
      C.Out += "}\n";
      --C.StreamRemaining;
    }
    Counters.ResultsStreamed->fetch_add(Results.size(),
                                        std::memory_order_relaxed);
  }

  // The subscription ends when delivered in full, or when no further
  // result can ever arrive (session idle+closed, or a service-wide
  // drain finished with nothing buffered).
  bool Exhausted = C.StreamSession->idle() && C.StreamSession->buffered() == 0;
  bool DrainedOut = Draining && C.StreamSession->inFlight() == 0 &&
                    C.StreamSession->buffered() == 0;
  if (C.StreamRemaining == 0 || Exhausted || DrainedOut) {
    JsonValue End = JsonValue::object();
    End.membersMut()["event"] = JsonValue::string("stream-end");
    End.membersMut()["session"] = JsonValue::string(C.StreamSession->name());
    End.membersMut()["remaining"] =
        JsonValue::integer(static_cast<int64_t>(C.StreamRemaining));
    End.membersMut()["draining"] = JsonValue::boolean(Draining);
    reply(C, End);
    C.StreamSession.reset();
    C.StreamRemaining = 0;
    // Serve any requests the client pipelined behind the stream.
    while (!C.Pending.empty() && !C.StreamSession) {
      std::string Line = std::move(C.Pending.front());
      C.Pending.pop_front();
      handleLine(C, Line);
    }
  }
}

void Server::checkPendingClose(Conn &C) {
  if (!C.PendingClose || !C.PendingClose->idle())
    return;
  Config.Service->closeSession(C.PendingClose->name());
  JsonValue R = JsonValue::object();
  R.membersMut()["ok"] = JsonValue::boolean(true);
  R.membersMut()["session"] = JsonValue::string(C.PendingClose->name());
  R.membersMut()["closed"] = JsonValue::boolean(true);
  reply(C, R);
  C.PendingClose.reset();
}

void Server::handleLine(Conn &C, const std::string &Line) {
  if (C.StreamSession) {
    C.Pending.push_back(Line);
    return;
  }
  auto Parsed = JsonValue::parse(Line);
  if (!Parsed) {
    Counters.ProtocolErrors->fetch_add(1, std::memory_order_relaxed);
    replyError(C, Parsed.error().message());
    return;
  }
  handleRequest(C, *Parsed);
}

void Server::acceptNew() {
  while (true) {
    int Fd = accept(ListenFd, nullptr, nullptr);
    if (Fd < 0)
      return; // EAGAIN or transient error — poll again.
    setNonBlocking(Fd);
    // Small request/response lines: without this, Nagle + delayed ACK
    // turns every submit round trip into a ~40ms stall.
    int One = 1;
    setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
    Conn C;
    C.Fd = Fd;
    Conns.emplace(Fd, std::move(C));
    Counters.Connections->fetch_add(1, std::memory_order_relaxed);
  }
}

void Server::readConn(Conn &C) {
  char Buf[4096];
  while (true) {
    ssize_t N = recv(C.Fd, Buf, sizeof(Buf), 0);
    if (N > 0) {
      C.In.append(Buf, static_cast<size_t>(N));
      if (C.In.size() > MaxLineBytes) {
        Counters.ProtocolErrors->fetch_add(1, std::memory_order_relaxed);
        C.CloseAfterFlush = true;
        return;
      }
      continue;
    }
    if (N == 0) { // Peer closed.
      C.CloseAfterFlush = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      break;
    C.CloseAfterFlush = true;
    break;
  }
  size_t Start = 0;
  while (true) {
    size_t Nl = C.In.find('\n', Start);
    if (Nl == std::string::npos)
      break;
    std::string Line = C.In.substr(Start, Nl - Start);
    Start = Nl + 1;
    if (!Line.empty() && Line.back() == '\r')
      Line.pop_back();
    if (!Line.empty())
      handleLine(C, Line);
  }
  if (Start)
    C.In.erase(0, Start);
}

void Server::flushConn(Conn &C) {
  while (!C.Out.empty()) {
    ssize_t N = send(C.Fd, C.Out.data(), C.Out.size(), MSG_NOSIGNAL);
    if (N > 0) {
      C.Out.erase(0, static_cast<size_t>(N));
      continue;
    }
    if (N < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
      return;
    C.Out.clear();
    C.CloseAfterFlush = true;
    return;
  }
}

void Server::closeConn(Conn &C) {
  if (C.Fd >= 0)
    ::close(C.Fd);
  C.Fd = -1;
}

void Server::run() {
  std::vector<pollfd> Fds;
  while (true) {
    Fds.clear();
    Fds.push_back({WakePipe[0], POLLIN, 0});
    if (!Draining && ListenFd >= 0)
      Fds.push_back({ListenFd, POLLIN, 0});
    for (auto &Entry : Conns) {
      short Events = POLLIN;
      if (!Entry.second.Out.empty())
        Events |= POLLOUT;
      Fds.push_back({Entry.first, Events, 0});
    }

    (void)poll(Fds.data(), Fds.size(), 50);

    // Drain the wake pipe; a 'D' byte begins the graceful drain, an
    // 'S' byte stops immediately. 'N' bytes are session notifications
    // — their only job was ending the poll sleep early.
    char WakeBuf[64];
    ssize_t N;
    while ((N = read(WakePipe[0], WakeBuf, sizeof(WakeBuf))) > 0) {
      for (ssize_t I = 0; I < N; ++I) {
        if (WakeBuf[I] == 'S')
          Stopping = true;
        if (WakeBuf[I] == 'D' && !Draining) {
          Draining = true;
          Counters.Drains->fetch_add(1, std::memory_order_relaxed);
          Config.Service->beginDrain();
          if (ListenFd >= 0) {
            ::close(ListenFd);
            ListenFd = -1;
          }
        }
      }
    }

    if (Stopping)
      break;

    if (!Draining && ListenFd >= 0)
      acceptNew();

    for (auto &Entry : Conns) {
      Conn &C = Entry.second;
      readConn(C);
      pumpStream(C);
      checkPendingClose(C);
      flushConn(C);
    }
    for (auto It = Conns.begin(); It != Conns.end();) {
      Conn &C = It->second;
      if (C.CloseAfterFlush && C.Out.empty() && !C.StreamSession &&
          !C.PendingClose) {
        closeConn(C);
        It = Conns.erase(It);
      } else {
        ++It;
      }
    }

    if (Draining) {
      // The drain completes when nothing is in flight anywhere and
      // every connection's buffers are flushed. pumpStream already
      // emitted early stream-ends (draining flag set) above.
      // Buffered-but-unsubscribed results do NOT hold the drain open:
      // a client that never streams forfeits them (documented).
      bool Busy = false;
      for (const std::shared_ptr<Session> &S : Config.Service->sessions())
        if (S->inFlight() > 0)
          Busy = true;
      for (auto &Entry : Conns)
        if (!Entry.second.Out.empty() || Entry.second.StreamSession ||
            Entry.second.PendingClose)
          Busy = true;
      if (!Busy)
        break;
    }
  }

  for (auto &Entry : Conns) {
    flushConn(Entry.second);
    closeConn(Entry.second);
  }
  Conns.clear();
}
