//===- atomic/PstRemap.cpp - PST with page remapping (PST-REMAP) --------------===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// PST-REMAP (Section III-E, Figure 9): PST's crux is granting different
/// threads different privileges on one page during SC. Instead of the
/// stop-the-world RO->RW->RO dance, the SC thread remaps the page *out of*
/// the primary mapping (every other thread's access now faults with a
/// mapping error) and performs its check-and-store through a private
/// writable alias (our always-mapped shadow view of the same memfd pages).
/// Faulting threads simply wait on the page lock until the SC remaps the
/// page back — no global thread suspension, which is where PST-REMAP's
/// wins over PST come from (Fig. 12: blackscholes, bodytrack, swaptions).
///
/// Because a removed mapping faults on *reads* too, plain loads are routed
/// through a guarded helper (loadsViaHelper).
///
//===----------------------------------------------------------------------===//

#include "atomic/PstBase.h"
#include "atomic/Schemes.h"

#include "mem/FaultGuard.h"
#include "runtime/Observe.h"
#include "support/Timing.h"

#include <memory>
#include <sys/mman.h>

using namespace llsc;

namespace {

class PstRemap final : public PstBase {
public:
  const SchemeTraits &traits() const override {
    return schemeTraits(SchemeKind::PstRemap);
  }

  void onAttach() override {
    PstBase::onAttach();
    NumPages = Ctx->Mem->numPages();
    PageLocks = std::make_unique<std::mutex[]>(NumPages);
  }

  bool loadsViaHelper() const override { return true; }

  /// Snapshots this thread's scheme-level monitor under the Mutex.
  /// Monitors[Tid].Valid is written by *other* threads
  /// (breakOverlappingLocked under Mutex), so reading it unlocked is a
  /// data race; the snapshot may go stale the moment the Mutex drops, but
  /// only towards "released" — no thread but the owner ever arms it — and
  /// releaseMonitorLocked rechecks Valid under the lock before acting.
  PageMonitor monitorSnapshot(unsigned Tid) {
    std::lock_guard<std::mutex> Lock(Mutex);
    return Monitors[Tid];
  }

  uint64_t emulateLoadLink(VCpu &Cpu, uint64_t Addr, unsigned Size) override {
    // Release any previous monitor first (its page lock, then ours, are
    // taken in separate critical sections to keep lock ordering simple).
    PageMonitor Prev = monitorSnapshot(Cpu.Tid);
    if (Prev.Valid) {
      uint64_t OldPage = Ctx->Mem->pageIndex(Prev.Addr);
      std::lock_guard<std::mutex> PageLock(PageLocks[OldPage]);
      std::lock_guard<std::mutex> Lock(Mutex);
      releaseMonitorLocked(Cpu.Tid, &Cpu);
    }

    uint64_t PageIdx = Ctx->Mem->pageIndex(Addr);
    uint64_t Value;
    {
      std::lock_guard<std::mutex> PageLock(PageLocks[PageIdx]);
      std::lock_guard<std::mutex> Lock(Mutex);
      armMonitorLocked(Cpu.Tid, Addr, Size, &Cpu);
      Value = Ctx->Mem->shadowLoad(Addr, Size);
    }
    Cpu.Monitor.arm(Addr, Value, Size);
    return Value;
  }

  bool emulateStoreCond(VCpu &Cpu, uint64_t Addr, uint64_t Value,
                        unsigned Size) override {
    bool AddrOk = Cpu.Monitor.valid() && Cpu.Monitor.Addr == Addr &&
                  Cpu.Monitor.Size == Size;
    uint64_t PageIdx = Ctx->Mem->pageIndex(Addr);

    // A stale monitor from an earlier LL can live on a *different* page
    // than this SC. The failure path below releases with
    // AdjustProtection=false — correct for this SC's page, whose
    // protection the trailing remapPageBack re-establishes, but it would
    // strand the stale monitor's page read-only forever (every later
    // plain store to it would fault). Release such a monitor up front,
    // under its own page lock, with normal protection handling.
    PageMonitor Prev = monitorSnapshot(Cpu.Tid);
    if (Prev.Valid && Ctx->Mem->pageIndex(Prev.Addr) != PageIdx) {
      uint64_t OldPage = Ctx->Mem->pageIndex(Prev.Addr);
      std::lock_guard<std::mutex> PageLock(PageLocks[OldPage]);
      std::lock_guard<std::mutex> Lock(Mutex);
      releaseMonitorLocked(Cpu.Tid, &Cpu);
    }

    bool Ok = false;
    {
      std::lock_guard<std::mutex> PageLock(PageLocks[PageIdx]);
      // Figure 9: remap page x away; every access to x by other threads
      // now faults and blocks on the page lock.
      {
        SyscallTimer Timer(&Cpu, ProtSyscall::Remap);
        Ctx->Mem->remapPageAway(PageIdx);
      }

      uint32_t RemainingMonitors;
      {
        std::lock_guard<std::mutex> Lock(Mutex);
        Ok = AddrOk && Monitors[Cpu.Tid].Valid &&
             Monitors[Cpu.Tid].Addr == Addr;
        if (Ok) {
          // The check-and-store goes through the writable alias (z).
          Ctx->Mem->shadowStore(Addr, Value, Size);
          breakOverlappingLocked(Addr, Size, /*ExcludeTid=*/Monitors.size(),
                                 &Cpu, /*AdjustProtection=*/false);
        } else {
          // Exact-range monitors: every failure is a genuinely lost (or
          // never-armed) monitor, as in PST. Any surviving monitor of
          // ours is on this page (foreign-page ones were released
          // above), so skipping protection here is safe: remapPageBack
          // re-derives this page's protection from the live count.
          Cpu.Events.ScFailMonitorLost++;
          releaseMonitorLocked(Cpu.Tid, &Cpu,
                               /*AdjustProtection=*/false);
        }
        RemainingMonitors = pageMonitorCountLocked(PageIdx);
      }

      // Remap x back; protection is set in the same mmap call so there is
      // no window where other monitors go unenforced.
      {
        SyscallTimer Timer(&Cpu, ProtSyscall::Remap);
        Ctx->Mem->remapPageBack(PageIdx, /*Writable=*/RemainingMonitors == 0);
      }
    }
    Cpu.Monitor.clear();
    return Ok;
  }

  void clearExclusive(VCpu &Cpu) override {
    PageMonitor Prev = monitorSnapshot(Cpu.Tid);
    if (Prev.Valid) {
      uint64_t PageIdx = Ctx->Mem->pageIndex(Prev.Addr);
      std::lock_guard<std::mutex> PageLock(PageLocks[PageIdx]);
      std::lock_guard<std::mutex> Lock(Mutex);
      releaseMonitorLocked(Cpu.Tid, &Cpu);
    }
    Cpu.Monitor.clear();
  }

  void storeHook(VCpu &Cpu, uint64_t Addr, uint64_t Value,
                 unsigned Size) override {
    FaultResult Result = FaultGuard::tryStore(*Ctx->Mem, Addr, Value, Size);
    if (!Result.Faulted)
      return;

    // Monitored (RO) or mid-SC (remapped) page. Waiting on the page lock
    // is the paper's "pagefault handler simply waits ... by locking and
    // unlocking".
    Cpu.Counters.PageFaultsRecovered++;
    Cpu.Events.FaultsRecovered++;
    if (TraceRecorder *Trace = TraceRecorder::active())
      Trace->instant(Cpu.Tid, "fault", "mem");
    BucketTimer Timer(Cpu.profileOrNull(), ProfileBucket::Mprotect);
    uint64_t PageIdx = Ctx->Mem->pageIndex(Addr);
    std::lock_guard<std::mutex> PageLock(PageLocks[PageIdx]);
    std::lock_guard<std::mutex> Lock(Mutex);
    bool Broke = breakOverlappingLocked(Addr, Size, Cpu.Tid, &Cpu);
    if (!Broke) {
      Cpu.Counters.FalseSharingFaults++;
      Cpu.Events.FalseSharingFaults++;
    }
    Ctx->Mem->shadowStore(Addr, Value, Size);
  }

  uint64_t loadHook(VCpu &Cpu, uint64_t Addr, unsigned Size) override {
    FaultResult Result = FaultGuard::tryLoad(*Ctx->Mem, Addr, Size);
    if (!Result.Faulted)
      return Result.LoadedValue;

    // The page is remapped away by an in-flight SC: wait for it.
    Cpu.Counters.PageFaultsRecovered++;
    Cpu.Events.FaultsRecovered++;
    if (TraceRecorder *Trace = TraceRecorder::active())
      Trace->instant(Cpu.Tid, "fault", "mem");
    uint64_t PageIdx = Ctx->Mem->pageIndex(Addr);
    std::lock_guard<std::mutex> PageLock(PageLocks[PageIdx]);
    return Ctx->Mem->shadowLoad(Addr, Size);
  }

private:
  uint64_t NumPages = 0;
  std::unique_ptr<std::mutex[]> PageLocks;
};

} // namespace

std::unique_ptr<AtomicScheme> llsc::createPstRemap() {
  return std::make_unique<PstRemap>();
}
