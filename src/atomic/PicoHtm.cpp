//===- atomic/PicoHtm.cpp - HTM transaction spanning LL..SC (PICO-HTM) --------===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// PICO-HTM (Section II-B): the whole region between LL and SC runs as one
/// HTM transaction, so the hardware detects any conflicting write to the
/// synchronization variable. The fatal flaw the paper identifies (Section
/// III-B, [18]): in a DBT the *emulator's own* code — block lookup,
/// interpretation, helpers — executes inside the transaction too, inflating
/// its footprint and causing aborts; beyond ~8 threads the abort storms
/// turn into livelock/crashes (Fig. 11).
///
/// Our engine charges per-block emulator footprint to the open transaction
/// (VCpu::InLongTx -> HtmRuntime::noteFootprint), so capacity aborts emerge
/// exactly as described. When the LL retry budget is exhausted the scheme
/// falls back to a stop-the-world LL (recorded as a livelock-fallback
/// event — the paper's implementation simply crashed here).
///
//===----------------------------------------------------------------------===//

#include "atomic/AtomicScheme.h"
#include "atomic/Schemes.h"

#include "htm/Htm.h"
#include "mem/GuestMemory.h"
#include "runtime/Exclusive.h"
#include "runtime/Observe.h"
#include "support/Timing.h"

#include <cassert>
#include <vector>

using namespace llsc;

namespace {

class PicoHtm final : public AtomicScheme {
public:
  explicit PicoHtm(unsigned HtmMaxRetries) : MaxRetries(HtmMaxRetries) {}

  const SchemeTraits &traits() const override {
    return schemeTraits(SchemeKind::PicoHtm);
  }

  // Table II classifies PICO-HTM as incorrect: the livelock fallback
  // serializes instead of detecting conflicts, so a success over a
  // modified-and-restored value is documented behavior, not a bug the
  // oracle should flag.
  bool admitsAba() const override { return true; }

  void onAttach() override { InExclFallback.assign(Ctx->NumThreads, false); }

  void onReset() override {
    for (auto &&Flag : InExclFallback)
      Flag = false;
  }

  void onDetach() override {
    // Quiesce (onCpuStopped per vCPU) already released open transactions
    // and any fallback floor; the flags are per-attach state.
    InExclFallback.clear();
  }

  bool storesViaHelper() const override { return true; }

  uint64_t emulateLoadLink(VCpu &Cpu, uint64_t Addr, unsigned Size) override {
    assert(Ctx->Htm && "PICO-HTM requires an HTM runtime");
    // A dangling transaction from a path that never reached SC is aborted
    // before starting over.
    abandonOpenTransaction(Cpu);

    for (unsigned Attempt = 0; Attempt < MaxRetries; ++Attempt) {
      Cpu.Events.HtmBegins++;
      TxStatus Status = Ctx->Htm->begin(Cpu.Tid, Addr);
      if (Status == TxStatus::Started) {
        uint64_t Value = Ctx->Mem->shadowLoad(Addr, Size);
        Cpu.Monitor.arm(Addr, Value, Size);
        Cpu.InLongTx = true; // Engine now charges footprint to the tx.
        return Value;
      }
      if (Status == TxStatus::AbortCapacity)
        Cpu.Events.HtmAbortsCapacity++;
      else
        Cpu.Events.HtmAbortsConflict++;
      if (TraceRecorder *Trace = TraceRecorder::active())
        Trace->instant(Cpu.Tid, "htm-abort", "htm");
    }

    // Retry budget exhausted: the paper's PICO-HTM livelocks/crashes here.
    // We record the event and serialize via a stop-the-world fallback so
    // the measurement can continue (EXPERIMENTS.md discusses this).
    Cpu.Counters.HtmLivelockFallbacks++;
    Cpu.Events.HtmFallbacks++;
    BucketTimer Timer(Cpu.profileOrNull(), ProfileBucket::Exclusive);
    // The section spans LL..SC (closed in emulateStoreCond or
    // abandonOpenTransaction), so the free-function form is used instead
    // of the RAII ExclusiveSection.
    observeStartExclusive(Cpu, Cpu.InRunLoop);
    InExclFallback[Cpu.Tid] = true;
    uint64_t Value = Ctx->Mem->shadowLoad(Addr, Size);
    Cpu.Monitor.arm(Addr, Value, Size);
    return Value;
  }

  bool emulateStoreCond(VCpu &Cpu, uint64_t Addr, uint64_t Value,
                        unsigned Size) override {
    ExclusiveMonitor &Mon = Cpu.Monitor;
    bool AddrOk = Mon.valid() && Mon.Addr == Addr && Mon.Size == Size;

    if (InExclFallback[Cpu.Tid]) {
      // Serialized fallback: the world is stopped, the store is safe.
      if (AddrOk)
        Ctx->Mem->shadowStore(Addr, Value, Size);
      else
        Cpu.Events.ScFailMonitorLost++;
      InExclFallback[Cpu.Tid] = false;
      observeEndExclusive(Cpu, Cpu.InRunLoop);
      Mon.clear();
      return AddrOk;
    }

    if (!Ctx->Htm->inTransaction(Cpu.Tid)) {
      // The transaction aborted between LL and SC: a conflicting access
      // doomed the monitored window.
      Cpu.Events.ScFailMonitorLost++;
      Mon.clear();
      return false;
    }
    if (!AddrOk) {
      Ctx->Htm->abort(Cpu.Tid);
      Cpu.InLongTx = false;
      Cpu.Events.ScFailMonitorLost++;
      Mon.clear();
      return false;
    }

    Ctx->Mem->shadowStore(Addr, Value, Size);
    bool Committed = Ctx->Htm->commit(Cpu.Tid);
    Cpu.InLongTx = false;
    if (Committed) {
      Cpu.Events.HtmCommits++;
    } else {
      // A doomed commit: footprint overflow or a conflicting plain store
      // hit the watch set while the transaction spanned LL..SC. The
      // backend's htm.raw.* counters record the precise cause.
      Cpu.Events.HtmAbortsConflict++;
      Cpu.Events.ScFailMonitorLost++;
    }
    Mon.clear();
    return Committed;
  }

  void clearExclusive(VCpu &Cpu) override {
    abandonOpenTransaction(Cpu);
    Cpu.Monitor.clear();
  }

  void onCpuStopped(VCpu &Cpu) override {
    // A wall/block budget can stop the vCPU between LL and SC: release
    // the open transaction or the exclusive-fallback floor.
    abandonOpenTransaction(Cpu);
  }

  void storeHook(VCpu &Cpu, uint64_t Addr, uint64_t Value,
                 unsigned Size) override {
    // Plain stores are not instrumented in PICO-HTM (its selling point);
    // the only cost is the conflict notification to the HTM model, which
    // is a single relaxed load when no transaction is active.
    if (Ctx->Htm->needsStoreNotification())
      Ctx->Htm->notifyStore(Addr);
    Ctx->Mem->store(Addr, Value, Size);
  }

private:
  void abandonOpenTransaction(VCpu &Cpu) {
    if (Ctx->Htm->inTransaction(Cpu.Tid)) {
      Ctx->Htm->abort(Cpu.Tid);
      Cpu.InLongTx = false;
    }
    if (InExclFallback[Cpu.Tid]) {
      InExclFallback[Cpu.Tid] = false;
      observeEndExclusive(Cpu, Cpu.InRunLoop);
    }
  }

  unsigned MaxRetries;
  std::vector<char> InExclFallback; ///< Indexed by tid; char to avoid
                                    ///< vector<bool> aliasing pitfalls.
};

} // namespace

std::unique_ptr<AtomicScheme> llsc::createPicoHtm(unsigned HtmMaxRetries) {
  return std::make_unique<PicoHtm>(HtmMaxRetries);
}
