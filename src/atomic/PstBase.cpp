//===- atomic/PstBase.cpp - Shared PST monitor bookkeeping --------------------===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//

#include "atomic/PstBase.h"

#include "runtime/Observe.h"

#include <cassert>
#include <sys/mman.h>

using namespace llsc;

void PstBase::onAttach() {
  Monitors.assign(Ctx->NumThreads, PageMonitor());
  PageCount.assign(Ctx->Mem->numPages(), 0);
}

void PstBase::onReset() {
  std::lock_guard<std::mutex> Lock(Mutex);
  for (unsigned Tid = 0; Tid < Monitors.size(); ++Tid)
    releaseMonitorLocked(Tid, /*Cpu=*/nullptr);
}

void PstBase::onDetach() {
  // Same operation as reset — releasing the last monitor of each page
  // restores PROT_READ|PROT_WRITE, so no protection outlives the scheme.
  onReset();
  Monitors.clear();
  PageCount.clear();
}

void PstBase::armMonitorLocked(unsigned Tid, uint64_t Addr, unsigned Size,
                               VCpu *Cpu) {
  assert(!Monitors[Tid].Valid && "previous monitor must be released first");
  Monitors[Tid] = {true, Addr, Size};
  uint64_t PageIdx = Ctx->Mem->pageIndex(Addr);
  if (PageCount[PageIdx]++ == 0) {
    SyscallTimer Timer(Cpu, ProtSyscall::Mprotect);
    Ctx->Mem->protectPage(PageIdx, PROT_READ);
  }
}

void PstBase::releaseMonitorLocked(unsigned Tid, VCpu *Cpu,
                                   bool AdjustProtection) {
  PageMonitor &Mon = Monitors[Tid];
  if (!Mon.Valid)
    return;
  Mon.Valid = false;
  uint64_t PageIdx = Ctx->Mem->pageIndex(Mon.Addr);
  assert(PageCount[PageIdx] > 0 && "page count underflow");
  if (--PageCount[PageIdx] == 0 && AdjustProtection) {
    SyscallTimer Timer(Cpu, ProtSyscall::Mprotect);
    Ctx->Mem->protectPage(PageIdx, PROT_READ | PROT_WRITE);
  }
}

bool PstBase::breakOverlappingLocked(uint64_t Addr, unsigned Size,
                                     unsigned ExcludeTid, VCpu *Cpu,
                                     bool AdjustProtection) {
  bool AnyBroken = false;
  for (unsigned Tid = 0; Tid < Monitors.size(); ++Tid) {
    if (Tid == ExcludeTid)
      continue;
    if (Monitors[Tid].overlaps(Addr, Size)) {
      releaseMonitorLocked(Tid, Cpu, AdjustProtection);
      AnyBroken = true;
    }
  }
  return AnyBroken;
}
