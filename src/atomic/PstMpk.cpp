//===- atomic/PstMpk.cpp - MPK-style protection-key store test -------------------===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// PST-MPK: the paper's Discussion-section proposal ("Optimization using
/// Intel MPK", Section VI) implemented as a working scheme. Intel MPK
/// gives threads *thread-local* control over page-group permissions
/// without changing global page tables — the two costs that sink PST
/// (mprotect syscalls and suspending all threads) disappear.
///
/// This host lacks PKU, so the key check is emulated in the store path:
/// pages hash onto the 15 usable protection keys; each key carries an
/// atomic count of active monitors. A plain store loads its key's count —
/// one relaxed load on the fast path, the stand-in for the hardware PKRU
/// check — and only enters the (mutex-protected) monitor-break slow path
/// when the key is "armed". SC validates and stores under the same mutex:
/// no mprotect, no stop-the-world, strong atomicity.
///
/// The paper's predicted limitation is reproduced exactly: with only 15
/// keys, *unrelated pages that share a key* false-share monitor state, so
/// stores to them take the slow path while any monitor is armed anywhere
/// on the key (counted in FalseSharingFaults).
///
//===----------------------------------------------------------------------===//

#include "atomic/AtomicScheme.h"
#include "atomic/Schemes.h"

#include "mem/GuestMemory.h"
#include "runtime/Observe.h"
#include "support/Timing.h"

#include <array>
#include <atomic>
#include <cassert>
#include <mutex>
#include <vector>

using namespace llsc;

namespace {

class PstMpk final : public AtomicScheme {
public:
  /// Keys 1..15 are usable (key 0 is the default-permissive key, as on
  /// real MPK hardware).
  static constexpr unsigned NumUsableKeys = 15;

  const SchemeTraits &traits() const override {
    return schemeTraits(SchemeKind::PstMpk);
  }

  void onAttach() override {
    Monitors.assign(Ctx->NumThreads, Monitor());
    for (auto &Count : KeyMonitorCount)
      Count.store(0, std::memory_order_relaxed);
  }

  void onReset() override {
    std::lock_guard<std::mutex> Lock(Mutex);
    for (Monitor &Mon : Monitors)
      releaseLocked(Mon);
  }

  void onDetach() override {
    std::lock_guard<std::mutex> Lock(Mutex);
    for (Monitor &Mon : Monitors)
      releaseLocked(Mon);
    Monitors.clear();
  }

  bool storesViaHelper() const override { return true; }

  unsigned keyOf(uint64_t Addr) const {
    return 1 + static_cast<unsigned>((Addr / Ctx->Mem->pageSize()) %
                                     NumUsableKeys);
  }

  uint64_t emulateLoadLink(VCpu &Cpu, uint64_t Addr, unsigned Size) override {
    uint64_t Value;
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      Monitor &Own = Monitors[Cpu.Tid];
      releaseLocked(Own);
      Own = {true, Addr, Size};
      KeyMonitorCount[keyOf(Addr)].fetch_add(1, std::memory_order_release);
      Value = Ctx->Mem->shadowLoad(Addr, Size);
    }
    Cpu.Monitor.arm(Addr, Value, Size);
    return Value;
  }

  bool emulateStoreCond(VCpu &Cpu, uint64_t Addr, uint64_t Value,
                        unsigned Size) override {
    bool AddrOk = Cpu.Monitor.valid() && Cpu.Monitor.Addr == Addr &&
                  Cpu.Monitor.Size == Size;
    bool Ok;
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      Monitor &Own = Monitors[Cpu.Tid];
      Ok = AddrOk && Own.Valid && Own.Addr == Addr;
      if (Ok) {
        // The SC is a store: break every monitor of this location.
        for (unsigned Tid = 0; Tid < Monitors.size(); ++Tid)
          if (Tid != Cpu.Tid && Monitors[Tid].overlaps(Addr, Size))
            releaseLocked(Monitors[Tid]);
        Ctx->Mem->shadowStore(Addr, Value, Size);
      } else {
        // Exact-range monitors (like PST): failures are never spurious.
        Cpu.Events.ScFailMonitorLost++;
      }
      releaseLocked(Own);
    }
    Cpu.Monitor.clear();
    return Ok;
  }

  void clearExclusive(VCpu &Cpu) override {
    std::lock_guard<std::mutex> Lock(Mutex);
    releaseLocked(Monitors[Cpu.Tid]);
    Cpu.Monitor.clear();
  }

  void storeHook(VCpu &Cpu, uint64_t Addr, uint64_t Value,
                 unsigned Size) override {
    // Fast path: the emulated PKRU check — one acquire load of the key's
    // monitor count.
    if (KeyMonitorCount[keyOf(Addr)].load(std::memory_order_acquire) == 0) {
      Ctx->Mem->store(Addr, Value, Size);
      return;
    }
    // Slow path: some monitor is armed on this key (maybe for an
    // unrelated page — the 15-key false sharing the paper warns about).
    Cpu.Counters.PageFaultsRecovered++;
    Cpu.Events.FaultsRecovered++;
    if (TraceRecorder *Trace = TraceRecorder::active())
      Trace->instant(Cpu.Tid, "key-conflict", "mem");
    BucketTimer Timer(Cpu.profileOrNull(), ProfileBucket::Instrument);
    std::lock_guard<std::mutex> Lock(Mutex);
    bool Broke = false;
    for (unsigned Tid = 0; Tid < Monitors.size(); ++Tid) {
      if (Tid == Cpu.Tid)
        continue;
      if (Monitors[Tid].overlaps(Addr, Size)) {
        releaseLocked(Monitors[Tid]);
        Broke = true;
      }
    }
    if (!Broke) {
      Cpu.Counters.FalseSharingFaults++;
      Cpu.Events.FalseSharingFaults++;
    }
    Ctx->Mem->shadowStore(Addr, Value, Size);
  }

private:
  struct Monitor {
    bool Valid = false;
    uint64_t Addr = 0;
    unsigned Size = 0;

    bool overlaps(uint64_t A, unsigned S) const {
      return Valid && Addr < A + S && A < Addr + Size;
    }
  };

  void releaseLocked(Monitor &Mon) {
    if (!Mon.Valid)
      return;
    Mon.Valid = false;
    [[maybe_unused]] uint32_t Prev =
        KeyMonitorCount[keyOf(Mon.Addr)].fetch_sub(
            1, std::memory_order_release);
    assert(Prev > 0 && "key monitor count underflow");
  }

  std::mutex Mutex;
  std::vector<Monitor> Monitors;
  std::array<std::atomic<uint32_t>, NumUsableKeys + 1> KeyMonitorCount{};
};

} // namespace

std::unique_ptr<AtomicScheme> llsc::createPstMpk() {
  return std::make_unique<PstMpk>();
}
