//===- atomic/PicoSt.cpp - Software store-test (PICO-ST) ----------------------===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// PICO-ST (Section II-B): a software exclusive flag per thread associates
/// the LL/SC target address with its thread; *every* plain store is
/// instrumented through a runtime helper that checks the store address
/// against the active monitors of every other thread under a lock, and
/// clears conflicting flags. Correct (strong atomicity) but expensive —
/// stores are 88x–3000x more frequent than LL/SC (Table I), and each one
/// pays a helper call plus lock acquisition. This is the baseline the
/// paper's headline "HST is 2.03x faster" speedup is measured against.
///
//===----------------------------------------------------------------------===//

#include "atomic/AtomicScheme.h"
#include "atomic/Schemes.h"

#include "mem/GuestMemory.h"
#include "support/Timing.h"

#include <cassert>
#include <mutex>
#include <vector>

using namespace llsc;

namespace {

/// One thread's software exclusive flag.
struct SoftMonitor {
  bool Valid = false;
  uint64_t Addr = 0;
  unsigned Size = 0;

  bool overlaps(uint64_t A, unsigned S) const {
    return Valid && Addr < A + S && A < Addr + Size;
  }
};

class PicoSt final : public AtomicScheme {
public:
  const SchemeTraits &traits() const override {
    return schemeTraits(SchemeKind::PicoSt);
  }

  void onAttach() override { Monitors.assign(Ctx->NumThreads, SoftMonitor()); }

  void onReset() override {
    std::lock_guard<std::mutex> Lock(Mutex);
    for (SoftMonitor &Mon : Monitors)
      Mon.Valid = false;
  }

  void onDetach() override {
    std::lock_guard<std::mutex> Lock(Mutex);
    Monitors.clear();
  }

  bool storesViaHelper() const override { return true; }

  uint64_t emulateLoadLink(VCpu &Cpu, uint64_t Addr, unsigned Size) override {
    uint64_t Value;
    {
      BucketTimer Timer(Cpu.profileOrNull(), ProfileBucket::Exclusive);
      std::lock_guard<std::mutex> Lock(Mutex);
      Monitors[Cpu.Tid] = {true, Addr, Size};
      Value = Ctx->Mem->shadowLoad(Addr, Size);
    }
    Cpu.Monitor.arm(Addr, Value, Size);
    return Value;
  }

  bool emulateStoreCond(VCpu &Cpu, uint64_t Addr, uint64_t Value,
                        unsigned Size) override {
    BucketTimer Timer(Cpu.profileOrNull(), ProfileBucket::Exclusive);
    std::lock_guard<std::mutex> Lock(Mutex);
    SoftMonitor &Own = Monitors[Cpu.Tid];
    bool Ok = Own.Valid && Own.Addr == Addr && Own.Size == Size &&
              Cpu.Monitor.valid() && Cpu.Monitor.Addr == Addr;
    if (Ok) {
      // The SC is itself a store: it must break every other thread's
      // monitor of this location.
      for (unsigned Tid = 0; Tid < Monitors.size(); ++Tid)
        if (Monitors[Tid].overlaps(Addr, Size))
          Monitors[Tid].Valid = false;
      Ctx->Mem->shadowStore(Addr, Value, Size);
    } else {
      // PICO-ST monitors exact address ranges — every failure is a
      // genuinely broken (or never-armed) monitor, never a spurious one.
      Cpu.Events.ScFailMonitorLost++;
    }
    Own.Valid = false;
    Cpu.Monitor.clear();
    return Ok;
  }

  void clearExclusive(VCpu &Cpu) override {
    std::lock_guard<std::mutex> Lock(Mutex);
    Monitors[Cpu.Tid].Valid = false;
    Cpu.Monitor.clear();
  }

  void storeHook(VCpu &Cpu, uint64_t Addr, uint64_t Value,
                 unsigned Size) override {
    // The paper implements this as a QEMU helper; the dominant costs are
    // the helper context switch, the lock, and the scan — all modeled.
    simulateQemuHelperCall(Cpu);
    BucketTimer Timer(Cpu.profileOrNull(), ProfileBucket::Instrument);
    std::lock_guard<std::mutex> Lock(Mutex);
    for (unsigned Tid = 0; Tid < Monitors.size(); ++Tid) {
      if (Tid == Cpu.Tid)
        continue; // A thread's own store does not clear its monitor.
      if (Monitors[Tid].overlaps(Addr, Size))
        Monitors[Tid].Valid = false;
    }
    Ctx->Mem->shadowStore(Addr, Value, Size);
  }

private:
  std::mutex Mutex;
  std::vector<SoftMonitor> Monitors;
};

} // namespace

std::unique_ptr<AtomicScheme> llsc::createPicoSt() {
  return std::make_unique<PicoSt>();
}
