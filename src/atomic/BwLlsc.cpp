//===- atomic/BwLlsc.cpp - Constant-time LL/SC over pointer-width CAS ---------===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// BW-LLSC: Blelloch & Wei's constant-time LL/SC construction
/// (arXiv:1911.09671) adapted as an atomic-emulation scheme. Each vCPU
/// owns one word-sized *announcement slot*; LL publishes a version-tagged
/// descriptor of the monitored granule range there, and SC commits by a
/// single pointer-width CAS that flips its own descriptor from
/// (version, valid) to (version + 1, invalid). Any conflicting store or
/// peer SC invalidates the slot the same way, so the stale descriptor can
/// never match again — the version tag closes the ABA window PICO-CAS
/// leaves open, without page protection, a hash table, or HTM.
///
/// Slot word layout (single 64-bit CAS target):
///
///   bit  63     valid
///   bits 62..31 first monitored 4-byte granule (Addr >> 2)
///   bits 30..29 granules spanned - 1 (an 8-byte access covers <= 3)
///   bits 28..0  version, bumped on every consume (publish-to-publish
///               reuse of a word needs 2^29 intervening LLs by the same
///               vCPU — impossible within one LL/SC window)
///
/// Cost model: LL and SC are O(1) (one RMW each, plus an O(P) peer-slot
/// scan on the SC commit); a plain store is one fence + one counter load
/// unless some monitor is armed anywhere, in which case it scans the P
/// slots. Space is O(P). The granule match is conservative (HST's 4-byte
/// granule model), so false sharing within a granule costs a spurious SC
/// failure, never a missed conflict.
///
//===----------------------------------------------------------------------===//

#include "atomic/AtomicScheme.h"
#include "atomic/Schemes.h"

#include "mem/GuestMemory.h"
#include "runtime/Observe.h"
#include "support/Timing.h"

#include <atomic>
#include <cassert>
#include <memory>
#include <vector>

using namespace llsc;

namespace {

class BwLlsc final : public AtomicScheme {
public:
  static constexpr uint64_t ValidBit = 1ULL << 63;
  static constexpr unsigned GranuleShift = 31;
  static constexpr unsigned SpanShift = 29;
  static constexpr uint64_t VersionMask = (1ULL << 29) - 1;

  const SchemeTraits &traits() const override {
    return schemeTraits(SchemeKind::BwLlsc);
  }

  void onAttach() override {
    // The descriptor's granule field is 32 bits wide, bounding the guest
    // address space at 16 GiB — far above any Machine this repo builds.
    assert(Ctx->Mem->size() <= (1ULL << 34) &&
           "bw-llsc granule field limits guest memory to 16 GiB");
    NumThreads = Ctx->NumThreads;
    Slots = std::make_unique<PaddedSlot[]>(NumThreads);
    Published.assign(NumThreads, 0);
    ArmedCount.store(0, std::memory_order_relaxed);
  }

  void onReset() override { dropAllSlots(); }

  void onDetach() override {
    dropAllSlots();
    Slots.reset();
    Published.clear();
  }

  bool storesViaHelper() const override { return true; }

  uint64_t emulateLoadLink(VCpu &Cpu, uint64_t Addr, unsigned Size) override {
    assert(Size >= 1 && Size <= 8 && "unsupported LL size");
    std::atomic<uint64_t> &Slot = Slots[Cpu.Tid].Word;
    consume(Slot); // At most one announcement per vCPU.
    // Count-then-publish, and only then load: a plain store pairs a
    // store-release of the data with a fenced load of ArmedCount, so
    // either the storer observes the armed count (and scans the slots),
    // or this LL's load observes the stored value (the store linearizes
    // before the LL and the monitor legitimately survives it).
    ArmedCount.fetch_add(1, std::memory_order_seq_cst);
    uint64_t First = Addr >> 2;
    uint64_t Span = ((Addr + Size - 1) >> 2) - First;
    uint64_t Word = ValidBit | (First << GranuleShift) | (Span << SpanShift) |
                    (Slot.load(std::memory_order_relaxed) & VersionMask);
    Slot.exchange(Word, std::memory_order_seq_cst);
    Published[Cpu.Tid] = Word;
    Cpu.Events.BwLlscPublishes++;
    uint64_t Value = Ctx->Mem->shadowLoad(Addr, Size);
    Cpu.Monitor.arm(Addr, Value, Size);
    return Value;
  }

  bool emulateStoreCond(VCpu &Cpu, uint64_t Addr, uint64_t Value,
                        unsigned Size) override {
    ExclusiveMonitor &Mon = Cpu.Monitor;
    if (!Mon.valid() || Mon.Addr != Addr || Mon.Size != Size) {
      Mon.clear();
      consume(Slots[Cpu.Tid].Word);
      Cpu.Events.ScFailMonitorLost++;
      return false;
    }

    bool Ok;
    {
      BucketTimer Timer(Cpu.profileOrNull(), ProfileBucket::Exclusive);
      ExclusiveSection Excl(Cpu, Cpu.InRunLoop);
      // The commit: one pointer-width CAS retiring our own descriptor.
      // Success proves no conflicting store consumed the slot since the
      // LL published it; failure means the version already moved on.
      uint64_t Expected = Published[Cpu.Tid];
      Ok = Slots[Cpu.Tid].Word.compare_exchange_strong(
          Expected, nextInvalid(Expected), std::memory_order_seq_cst);
      if (Ok) {
        ArmedCount.fetch_sub(1, std::memory_order_release);
        // The SC is itself a store: retire every peer announcement of an
        // overlapping granule range.
        breakOverlapping(Cpu, Addr, Size);
        Ctx->Mem->shadowStore(Addr, Value, Size);
        Cpu.Events.BwLlscScCommits++;
      } else {
        Cpu.Events.ScFailMonitorLost++;
      }
    }
    Mon.clear();
    return Ok;
  }

  void clearExclusive(VCpu &Cpu) override {
    consume(Slots[Cpu.Tid].Word);
    Cpu.Monitor.clear();
  }

  void onCpuStopped(VCpu &Cpu) override { consume(Slots[Cpu.Tid].Word); }

  void storeHook(VCpu &Cpu, uint64_t Addr, uint64_t Value,
                 unsigned Size) override {
    Ctx->Mem->store(Addr, Value, Size);
    // Store-then-check, fenced against LL's count-then-publish-then-load
    // (Dekker pairing, see emulateLoadLink). A zero count is the fast
    // path: no monitor armed anywhere, nothing to scan.
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (ArmedCount.load(std::memory_order_relaxed) == 0)
      return;
    Cpu.Events.BwLlscStoreScans++;
    BucketTimer Timer(Cpu.profileOrNull(), ProfileBucket::Instrument);
    breakOverlapping(Cpu, Addr, Size);
  }

private:
  struct alignas(64) PaddedSlot {
    std::atomic<uint64_t> Word{0};
  };

  /// The invalid successor of \p Word: version bumped, valid/granule bits
  /// dropped. Version arithmetic wraps within the 29-bit field.
  static uint64_t nextInvalid(uint64_t Word) { return (Word + 1) & VersionMask; }

  /// Retires \p Slot if it holds a valid announcement. Exactly one CAS
  /// winner per published word decrements ArmedCount.
  bool consume(std::atomic<uint64_t> &Slot) {
    uint64_t Word = Slot.load(std::memory_order_acquire);
    while (Word & ValidBit) {
      if (Slot.compare_exchange_weak(Word, nextInvalid(Word),
                                     std::memory_order_acq_rel)) {
        ArmedCount.fetch_sub(1, std::memory_order_release);
        return true;
      }
    }
    return false;
  }

  /// Retires every peer announcement overlapping [Addr, Addr + Size) at
  /// granule resolution. Own-slot announcements survive own stores.
  void breakOverlapping(VCpu &Cpu, uint64_t Addr, unsigned Size) {
    uint64_t First = Addr >> 2;
    uint64_t Last = (Addr + Size - 1) >> 2;
    for (unsigned Tid = 0; Tid < NumThreads; ++Tid) {
      if (Tid == Cpu.Tid)
        continue;
      std::atomic<uint64_t> &Slot = Slots[Tid].Word;
      uint64_t Word = Slot.load(std::memory_order_acquire);
      while ((Word & ValidBit) && overlaps(Word, First, Last)) {
        if (Slot.compare_exchange_weak(Word, nextInvalid(Word),
                                       std::memory_order_acq_rel)) {
          ArmedCount.fetch_sub(1, std::memory_order_release);
          Cpu.Events.BwLlscSlotBreaks++;
          break;
        }
      }
    }
  }

  static bool overlaps(uint64_t Word, uint64_t First, uint64_t Last) {
    uint64_t SlotFirst = (Word >> GranuleShift) & 0xFFFFFFFFULL;
    uint64_t SlotLast = SlotFirst + ((Word >> SpanShift) & 3);
    return SlotFirst <= Last && First <= SlotLast;
  }

  void dropAllSlots() {
    for (unsigned Tid = 0; Tid < NumThreads; ++Tid)
      Slots[Tid].Word.store(0, std::memory_order_relaxed);
    if (!Published.empty())
      Published.assign(NumThreads, 0);
    ArmedCount.store(0, std::memory_order_relaxed);
  }

  unsigned NumThreads = 0;
  std::unique_ptr<PaddedSlot[]> Slots;
  /// The exact word each vCPU's LL published — the SC CAS's expected
  /// value. Owner-read/owner-written only, so no synchronization.
  std::vector<uint64_t> Published;
  /// Number of valid announcement slots; plain stores skip the slot scan
  /// while it is zero.
  std::atomic<uint64_t> ArmedCount{0};
};

} // namespace

std::unique_ptr<AtomicScheme> llsc::createBwLlsc() {
  return std::make_unique<BwLlsc>();
}
