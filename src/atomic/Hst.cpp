//===- atomic/Hst.cpp - Hash-table store test (HST family) --------------------===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// HST (Section III-A, Figures 4 and 5): a non-blocking hash table maps
/// guest addresses to the id of the last thread that wrote them. Each LL
/// and each plain store sets its entry to the executing thread's id with a
/// single plain store (no atomics); SC, inside a QEMU-style exclusive
/// section, checks that the entry still carries its own id before
/// performing the store. Hash conflicts only cause spurious SC failures
/// (retry), never missed conflicts, so atomicity is strong.
///
/// The table layout mirrors Figure 4: the index is derived from the guest
/// address by dropping the 2 low bits and masking; the entry is a 4-byte
/// thread id, so instrumentation is expressible as four inline IR ops
/// (shift, mask, scale, host store) — the paper's key cost insight versus
/// PICO-ST's helper calls.
///
/// Variants:
///  - HST-WEAK (Section III-C): no store instrumentation; only LL/SC
///    update the table => weak atomicity, best scalability (Fig. 10).
///  - HST-HELPER (ablation, Section IV-B2): identical semantics to HST but
///    the table update runs in a runtime helper, quantifying the
///    "IR inlining <5% vs helper 20..45%" claim.
///
//===----------------------------------------------------------------------===//

#include "atomic/AtomicScheme.h"
#include "atomic/Schemes.h"

#include "mem/GuestMemory.h"
#include "runtime/Exclusive.h"
#include "runtime/Observe.h"
#include "support/BitUtils.h"
#include "support/Compiler.h"
#include "support/LazyZeroArray.h"
#include "support/Timing.h"

#include <atomic>
#include <cassert>
#include <memory>

using namespace llsc;
using namespace llsc::ir;

namespace {

class Hst : public AtomicScheme {
public:
  Hst(unsigned TableLog2, SchemeKind Variant)
      : Variant(Variant), NumEntries(1ULL << TableLog2), Mask(NumEntries - 1),
        Table(NumEntries) {}

  const SchemeTraits &traits() const override { return schemeTraits(Variant); }

  void onAttach() override {
    if (Variant == SchemeKind::Hst) {
      // Publish the table so the engine can execute the fused
      // HstStoreTag micro-op directly (JIT-inlined instrumentation).
      Ctx->HstTable = Table.data();
      Ctx->HstMask = Mask;
    }
  }

  void onReset() override { zeroTable(); }

  void onDetach() override {
    // Unpublish the fused-op table and drop every armed tag so the next
    // scheme starts from a neutral machine.
    if (Ctx->HstTable == Table.data()) {
      Ctx->HstTable = nullptr;
      Ctx->HstMask = 0;
    }
    zeroTable();
  }

  // Lazy table zeroing: dropping the dirty pages costs O(entries the
  // last run touched), which is what keeps Machine::reset() cheap enough
  // for per-job reuse in the serve layer (and scheme hot-swap detach
  // cheap enough for the adaptive controller's cooldown window).
  void zeroTable() { Table.zero(); }

  /// Figure 4's hash: drop the 2 alignment bits, mask to the table size.
  uint64_t entryIndex(uint64_t Addr) const { return (Addr >> 2) & Mask; }

  /// Entries hold tid+1 so 0 means "never touched".
  static uint32_t tagFor(unsigned Tid) { return Tid + 1; }

  /// Tags every 4-byte granule covered by [Addr, Addr + Size). The table
  /// is granule-indexed, so an access wider than 4 bytes (or one that
  /// straddles a granule boundary) owns several entries; tagging only the
  /// first would let a store to the uncovered granules slip past an armed
  /// monitor. Aligned accesses of <= 4 bytes cover exactly one granule —
  /// the common fast path stays a single plain store.
  void tagGranules(uint64_t Addr, unsigned Size, uint32_t Tag) {
    uint64_t First = Addr >> 2;
    uint64_t Last = (Addr + Size - 1) >> 2;
    Table[First & Mask].store(Tag, std::memory_order_relaxed);
    while (LLSC_UNLIKELY(First != Last)) {
      ++First;
      Table[First & Mask].store(Tag, std::memory_order_relaxed);
    }
  }

  /// \returns true if every granule covered by [Addr, Addr + Size) still
  /// carries \p Tag (the SC-side dual of tagGranules).
  bool granulesCarry(uint64_t Addr, unsigned Size, uint32_t Tag) const {
    uint64_t First = Addr >> 2;
    uint64_t Last = (Addr + Size - 1) >> 2;
    for (; First <= Last; ++First)
      if (Table[First & Mask].load(std::memory_order_relaxed) != Tag)
        return false;
    return true;
  }

  uint64_t emulateLoadLink(VCpu &Cpu, uint64_t Addr, unsigned Size) override {
    // Figure 5 LL: Htable_set(addr, tid) for every covered granule, then
    // the load.
    tagGranules(Addr, Size, tagFor(Cpu.Tid));
    uint64_t Value = Ctx->Mem->shadowLoad(Addr, Size);
    Cpu.Monitor.arm(Addr, Value, Size);
    return Value;
  }

  bool emulateStoreCond(VCpu &Cpu, uint64_t Addr, uint64_t Value,
                        unsigned Size) override {
    ExclusiveMonitor &Mon = Cpu.Monitor;
    if (!Mon.valid() || Mon.Addr != Addr || Mon.Size != Size) {
      Mon.clear();
      Cpu.Events.ScFailMonitorLost++;
      return false;
    }

    bool Ok;
    {
      BucketTimer Timer(Cpu.profileOrNull(), ProfileBucket::Exclusive);
      ExclusiveSection Excl(Cpu, Cpu.InRunLoop);
      // Figure 5 SC: Htable_check — every covered granule must still
      // carry our tag.
      Ok = granulesCarry(Addr, Size, tagFor(Cpu.Tid));
      if (Ok) {
        // The SC store leaves our tag in the entry, which is what breaks
        // every other thread's monitor of this location.
        Ctx->Mem->shadowStore(Addr, Value, Size);
      } else if (Ctx->Mem->shadowLoad(Addr, Size) != Mon.Value) {
        // The monitored value changed: a real conflict broke the monitor.
        Cpu.Events.ScFailMonitorLost++;
      } else {
        // Value unchanged: another address stole the hash slot (spurious
        // failure) — or an ABA cycle restored the value, which is
        // indistinguishable here (docs/OBSERVABILITY.md discusses this).
        Cpu.Events.ScFailHashConflict++;
      }
    }
    Mon.clear();
    return Ok;
  }

  // --- Plain-store instrumentation ----------------------------------------

  void emitStorePrologue(IRBuilder &B, ValueId Addr, int64_t Offset,
                         ValueId Value, unsigned Size) override {
    if (Variant == SchemeKind::HstWeak)
      return; // Section III-C: stores are not instrumented.

    B.setInstrumentMode(true);
    ValueId EffAddr =
        Offset ? B.emitBinImm(IROp::AddImm, Addr, Offset) : Addr;
    if (Variant == SchemeKind::HstHelper) {
      // Ablation: same table update through a helper call. The access size
      // is a translation-time constant, so it is baked into the thunk
      // instead of being marshalled as a runtime argument.
      HelperFn Fn;
      Fn.Fn = helperThunkForSize(Size);
      Fn.Ctx = this;
      Fn.Name = "hst_store_helper";
      B.emitHelper(Fn, EffAddr, EffAddr);
    } else {
      // Inline instrumentation (Figure 5's store translation). In QEMU
      // this is ~4 host instructions emitted into the TB; the fused
      // micro-op models that as a single interpreter dispatch so the
      // inline-vs-helper cost ratio survives interpretation.
      B.emitHstStoreTag(EffAddr, 0, Size);
    }
    B.setInstrumentMode(false);
  }

protected:
  template <unsigned Size>
  static uint64_t hstStoreHelperThunk(void *SchemeCtx, void *CpuPtr,
                                      uint64_t Addr, uint64_t /*B*/) {
    auto *Self = static_cast<Hst *>(SchemeCtx);
    auto *Cpu = static_cast<VCpu *>(CpuPtr);
    simulateQemuHelperCall(*Cpu);
    BucketTimer Timer(Cpu->profileOrNull(), ProfileBucket::Instrument);
    Self->tagGranules(Addr, Size, tagFor(Cpu->Tid));
    return 0;
  }

  static HelperFnPtr helperThunkForSize(unsigned Size) {
    switch (Size) {
    case 1:
      return &hstStoreHelperThunk<1>;
    case 2:
      return &hstStoreHelperThunk<2>;
    case 4:
      return &hstStoreHelperThunk<4>;
    case 8:
      return &hstStoreHelperThunk<8>;
    }
    assert(false && "unsupported store size");
    return &hstStoreHelperThunk<4>;
  }

  SchemeKind Variant;
  uint64_t NumEntries;
  uint64_t Mask;
  LazyZeroArray<std::atomic<uint32_t>> Table;
};

} // namespace

std::unique_ptr<AtomicScheme> llsc::createHst(unsigned HstTableLog2,
                                              SchemeKind Variant) {
  assert((Variant == SchemeKind::Hst || Variant == SchemeKind::HstWeak ||
          Variant == SchemeKind::HstHelper) &&
         "not an HST variant");
  return std::make_unique<Hst>(HstTableLog2, Variant);
}
