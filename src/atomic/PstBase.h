//===- atomic/PstBase.h - Shared PST monitor bookkeeping --------*- C++-*-===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Monitor/page bookkeeping shared by PST and PST-REMAP (Sections III-D/E):
/// per-thread software monitors plus a per-page count of active monitors.
/// When the first monitor lands on a page, the page's *primary* mapping is
/// mprotect()ed read-only so conflicting plain stores fault; when the last
/// monitor leaves, the page becomes writable again.
///
/// All mutators must hold the scheme mutex.
///
//===----------------------------------------------------------------------===//

#ifndef LLSC_ATOMIC_PSTBASE_H
#define LLSC_ATOMIC_PSTBASE_H

#include "atomic/AtomicScheme.h"

#include "mem/GuestMemory.h"
#include "runtime/Profiler.h"

#include <mutex>
#include <vector>

namespace llsc {

/// Base for the page-protection schemes.
class PstBase : public AtomicScheme {
public:
  bool storesViaHelper() const override { return true; }

protected:
  void onAttach() override;
  void onReset() override;
  /// Releases every monitor, restoring the page protections the scheme
  /// installed — the machine must be scheme-neutral after detach().
  void onDetach() override;

  struct PageMonitor {
    bool Valid = false;
    uint64_t Addr = 0;
    unsigned Size = 0;

    bool overlaps(uint64_t A, unsigned S) const {
      return Valid && Addr < A + S && A < Addr + Size;
    }
  };

  /// Arms \p Tid's monitor on [Addr, Addr+Size), protecting the page when
  /// it acquires its first monitor. Any previous monitor of \p Tid must
  /// already have been released. \p Cpu is the vCPU charged for the
  /// mprotect syscall (profiler bucket + sys.mprotect_calls); may be null
  /// on paths with no executing vCPU (reset).
  void armMonitorLocked(unsigned Tid, uint64_t Addr, unsigned Size,
                        VCpu *Cpu);

  /// Releases \p Tid's monitor if valid. When \p AdjustProtection, a page
  /// whose count drops to zero is made writable again (callers doing their
  /// own remap/protect sequencing pass false).
  void releaseMonitorLocked(unsigned Tid, VCpu *Cpu,
                            bool AdjustProtection = true);

  /// Invalidates every monitor overlapping [Addr, Addr+Size) except
  /// \p ExcludeTid (pass NumThreads to exclude none).
  /// \returns true if at least one monitor was broken.
  bool breakOverlappingLocked(uint64_t Addr, unsigned Size,
                              unsigned ExcludeTid, VCpu *Cpu,
                              bool AdjustProtection = true);

  /// \returns the number of live monitors on \p PageIdx.
  uint32_t pageMonitorCountLocked(uint64_t PageIdx) const {
    return PageCount[PageIdx];
  }

  std::mutex Mutex;
  std::vector<PageMonitor> Monitors; ///< Indexed by tid.
  std::vector<uint32_t> PageCount;   ///< Live monitors per page.
};

} // namespace llsc

#endif // LLSC_ATOMIC_PSTBASE_H
