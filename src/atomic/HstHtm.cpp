//===- atomic/HstHtm.cpp - HST with HTM-backed SC (HST-HTM) -------------------===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// HST-HTM (Section III-B, Figure 6): identical to HST except the SC
/// critical section — hash-table check plus store — runs as an HTM
/// transaction instead of a QEMU start/end_exclusive stop-the-world
/// section. Crucially, and unlike PICO-HTM, the transaction covers *only*
/// the SC emulation, never the translated code between LL and SC, so its
/// footprint stays tiny and it keeps scaling where PICO-HTM livelocks
/// (Fig. 11).
///
/// After repeated conflict aborts the SC falls back to the exclusive
/// section, guaranteeing forward progress.
///
//===----------------------------------------------------------------------===//

#include "atomic/AtomicScheme.h"
#include "atomic/Schemes.h"

#include "htm/Htm.h"
#include "mem/GuestMemory.h"
#include "runtime/Exclusive.h"
#include "runtime/Observe.h"
#include "support/BitUtils.h"
#include "support/Compiler.h"
#include "support/LazyZeroArray.h"
#include "support/Timing.h"

#include <atomic>
#include <cassert>
#include <memory>

using namespace llsc;
using namespace llsc::ir;

namespace {

class HstHtm final : public AtomicScheme {
public:
  HstHtm(unsigned TableLog2, unsigned HtmMaxRetries)
      : NumEntries(1ULL << TableLog2), Mask(NumEntries - 1),
        MaxRetries(HtmMaxRetries),
        Table(NumEntries) {}

  const SchemeTraits &traits() const override {
    return schemeTraits(SchemeKind::HstHtm);
  }

  void onAttach() override {
    Ctx->HstTable = Table.data();
    Ctx->HstMask = Mask;
  }

  void onReset() override { zeroTable(); }

  void onDetach() override {
    if (Ctx->HstTable == Table.data()) {
      Ctx->HstTable = nullptr;
      Ctx->HstMask = 0;
    }
    zeroTable();
  }

  // Lazy zeroing via page drop, same rationale as Hst::zeroTable.
  void zeroTable() { Table.zero(); }

  uint64_t entryIndex(uint64_t Addr) const { return (Addr >> 2) & Mask; }
  static uint32_t tagFor(unsigned Tid) { return Tid + 1; }

  /// Multi-granule tag/check, same rationale as Hst::tagGranules: the
  /// table is 4-byte-granule indexed, so a wide or straddling access owns
  /// every covered entry, not just the first.
  void tagGranules(uint64_t Addr, unsigned Size, uint32_t Tag) {
    uint64_t First = Addr >> 2;
    uint64_t Last = (Addr + Size - 1) >> 2;
    Table[First & Mask].store(Tag, std::memory_order_relaxed);
    while (LLSC_UNLIKELY(First != Last)) {
      ++First;
      Table[First & Mask].store(Tag, std::memory_order_relaxed);
    }
  }

  bool granulesCarry(uint64_t Addr, unsigned Size, uint32_t Tag) const {
    uint64_t First = Addr >> 2;
    uint64_t Last = (Addr + Size - 1) >> 2;
    for (; First <= Last; ++First)
      if (Table[First & Mask].load(std::memory_order_relaxed) != Tag)
        return false;
    return true;
  }

  uint64_t emulateLoadLink(VCpu &Cpu, uint64_t Addr, unsigned Size) override {
    tagGranules(Addr, Size, tagFor(Cpu.Tid));
    uint64_t Value = Ctx->Mem->shadowLoad(Addr, Size);
    Cpu.Monitor.arm(Addr, Value, Size);
    return Value;
  }

  bool emulateStoreCond(VCpu &Cpu, uint64_t Addr, uint64_t Value,
                        unsigned Size) override {
    ExclusiveMonitor &Mon = Cpu.Monitor;
    if (!Mon.valid() || Mon.Addr != Addr || Mon.Size != Size) {
      Mon.clear();
      Cpu.Events.ScFailMonitorLost++;
      return false;
    }
    assert(Ctx->Htm && "HST-HTM requires an HTM runtime");

    bool Ok = false;
    bool Done = false;
    for (unsigned Attempt = 0; Attempt < MaxRetries && !Done; ++Attempt) {
      Cpu.Events.HtmBegins++;
      TxStatus Status = Ctx->Htm->begin(Cpu.Tid, Addr);
      if (Status != TxStatus::Started) {
        if (Status == TxStatus::AbortCapacity)
          Cpu.Events.HtmAbortsCapacity++;
        else
          Cpu.Events.HtmAbortsConflict++;
        if (TraceRecorder *Trace = TraceRecorder::active())
          Trace->instant(Cpu.Tid, "htm-abort", "htm");
        continue; // Conflict: retry the tiny transaction.
      }
      // Figure 6: HTM_xbegin; Htable_check; store; HTM_xend. The check
      // covers every granule the SC touches.
      bool CheckOk = granulesCarry(Addr, Size, tagFor(Cpu.Tid));
      if (CheckOk)
        Ctx->Mem->shadowStore(Addr, Value, Size);
      if (Ctx->Htm->commit(Cpu.Tid)) {
        Cpu.Events.HtmCommits++;
        Ok = CheckOk;
        Done = true;
      }
      // A doomed commit means a plain store hit our watch address while
      // the transaction ran; the SC must fail and the guest retries.
      else {
        Cpu.Events.HtmAbortsConflict++;
        Ok = false;
        Done = true;
      }
    }

    if (!Done) {
      // Forward-progress fallback: the HST exclusive-section path.
      Cpu.Counters.HtmLivelockFallbacks++;
      Cpu.Events.HtmFallbacks++;
      BucketTimer Timer(Cpu.profileOrNull(), ProfileBucket::Exclusive);
      ExclusiveSection Excl(Cpu, Cpu.InRunLoop);
      Ok = granulesCarry(Addr, Size, tagFor(Cpu.Tid));
      if (Ok)
        Ctx->Mem->shadowStore(Addr, Value, Size);
    }

    if (!Ok) {
      // Same classification as HST: an unchanged value means the failure
      // was a hash-slot conflict or a doomed commit, not a lost monitor
      // (ABA cases are indistinguishable — see docs/OBSERVABILITY.md).
      if (Ctx->Mem->shadowLoad(Addr, Size) != Mon.Value)
        Cpu.Events.ScFailMonitorLost++;
      else
        Cpu.Events.ScFailHashConflict++;
    }

    Mon.clear();
    return Ok;
  }

  void emitStorePrologue(IRBuilder &B, ValueId Addr, int64_t Offset,
                         ValueId Value, unsigned Size) override {
    // Same inline instrumentation as HST (Figure 6 keeps the table);
    // fused into one micro-op like HST's (see Hst.cpp).
    B.setInstrumentMode(true);
    ValueId EffAddr =
        Offset ? B.emitBinImm(IROp::AddImm, Addr, Offset) : Addr;
    B.emitHstStoreTag(EffAddr, 0, Size);
    B.setInstrumentMode(false);
  }

private:
  uint64_t NumEntries;
  uint64_t Mask;
  unsigned MaxRetries;
  LazyZeroArray<std::atomic<uint32_t>> Table;
};

} // namespace

std::unique_ptr<AtomicScheme> llsc::createHstHtm(unsigned HstTableLog2,
                                                 unsigned HtmMaxRetries) {
  return std::make_unique<HstHtm>(HstTableLog2, HtmMaxRetries);
}
