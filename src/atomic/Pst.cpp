//===- atomic/Pst.cpp - Page-protection store test (PST) ----------------------===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// PST (Section III-D, Figure 8): the LL mprotect()s the page holding the
/// synchronization variable read-only. A conflicting plain store then
/// raises a hardware page fault; the handler checks whether the store
/// address matches an armed monitor — if so the monitor is broken (the SC
/// will fail and retry), otherwise it is false sharing and the store is
/// performed without breaking atomicity. The SC itself runs under a
/// stop-the-world exclusive section and flips the page writable and back —
/// the syscall traffic that Fig. 12's "mprotect" bars account for, and the
/// reason PST loses to HST despite instrumenting no stores.
///
//===----------------------------------------------------------------------===//

#include "atomic/PstBase.h"
#include "atomic/Schemes.h"

#include "mem/FaultGuard.h"
#include "runtime/Exclusive.h"
#include "runtime/Observe.h"
#include "support/Timing.h"

#include <sys/mman.h>

using namespace llsc;

namespace {

class Pst final : public PstBase {
public:
  const SchemeTraits &traits() const override {
    return schemeTraits(SchemeKind::Pst);
  }

  uint64_t emulateLoadLink(VCpu &Cpu, uint64_t Addr, unsigned Size) override {
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      releaseMonitorLocked(Cpu.Tid, &Cpu);
      armMonitorLocked(Cpu.Tid, Addr, Size, &Cpu);
    }
    uint64_t Value = Ctx->Mem->shadowLoad(Addr, Size);
    Cpu.Monitor.arm(Addr, Value, Size);
    return Value;
  }

  bool emulateStoreCond(VCpu &Cpu, uint64_t Addr, uint64_t Value,
                        unsigned Size) override {
    CpuProfile *Profile = Cpu.profileOrNull();
    bool AddrOk = Cpu.Monitor.valid() && Cpu.Monitor.Addr == Addr &&
                  Cpu.Monitor.Size == Size;

    bool Ok = false;
    {
      BucketTimer ExclTimer(Profile, ProfileBucket::Exclusive);
      ExclusiveSection Excl(Cpu, Cpu.InRunLoop);
      {
        // The scheme mutex must be released before endExclusive:
        // endExclusive(SelfRunning) can block behind a queued exclusive
        // section whose body needs this mutex (deadlock otherwise).
        std::lock_guard<std::mutex> Lock(Mutex);

        Ok = AddrOk && Monitors[Cpu.Tid].Valid &&
             Monitors[Cpu.Tid].Addr == Addr;
        if (Ok) {
          uint64_t PageIdx = Ctx->Mem->pageIndex(Addr);
          // Figure 8: RO -> RW, store through the primary mapping, back
          // to RO if other monitors remain on the page.
          {
            SyscallTimer Timer(&Cpu, ProtSyscall::Mprotect);
            Ctx->Mem->protectPage(PageIdx, PROT_READ | PROT_WRITE);
          }
          Ctx->Mem->store(Addr, Value, Size);
          // The SC is a store: break every monitor of this location
          // (including our own, releasing its page count).
          breakOverlappingLocked(Addr, Size,
                                 /*ExcludeTid=*/Monitors.size(), &Cpu,
                                 /*AdjustProtection=*/false);
          if (pageMonitorCountLocked(PageIdx) > 0) {
            SyscallTimer Timer(&Cpu, ProtSyscall::Mprotect);
            Ctx->Mem->protectPage(PageIdx, PROT_READ);
          }
        } else {
          // PST page monitors track exact ranges: a failed SC always
          // means the monitor was broken by a real store (or never
          // armed), never a spurious conflict.
          Cpu.Events.ScFailMonitorLost++;
          releaseMonitorLocked(Cpu.Tid, &Cpu);
        }
      }
    }
    Cpu.Monitor.clear();
    return Ok;
  }

  void clearExclusive(VCpu &Cpu) override {
    std::lock_guard<std::mutex> Lock(Mutex);
    releaseMonitorLocked(Cpu.Tid, &Cpu);
    Cpu.Monitor.clear();
  }

  void storeHook(VCpu &Cpu, uint64_t Addr, uint64_t Value,
                 unsigned Size) override {
    // Fast path: a raw store against the primary mapping. Unmonitored
    // pages execute exactly one host store — PST's selling point: no
    // instrumentation cost (Section III-D).
    FaultResult Result = FaultGuard::tryStore(*Ctx->Mem, Addr, Value, Size);
    if (!Result.Faulted)
      return;

    // Slow path: the page is monitored. Break matching monitors; a
    // non-matching fault is false sharing (Section IV-B2's false alarms).
    Cpu.Counters.PageFaultsRecovered++;
    Cpu.Events.FaultsRecovered++;
    if (TraceRecorder *Trace = TraceRecorder::active())
      Trace->instant(Cpu.Tid, "fault", "mem");
    BucketTimer Timer(Cpu.profileOrNull(), ProfileBucket::Mprotect);
    std::lock_guard<std::mutex> Lock(Mutex);
    bool Broke = breakOverlappingLocked(Addr, Size, Cpu.Tid, &Cpu);
    if (!Broke) {
      Cpu.Counters.FalseSharingFaults++;
      Cpu.Events.FalseSharingFaults++;
    }
    Ctx->Mem->shadowStore(Addr, Value, Size);
  }
};

} // namespace

std::unique_ptr<AtomicScheme> llsc::createPst() {
  return std::make_unique<Pst>();
}
