//===- atomic/AtomicScheme.cpp - Scheme interface and registry ---------------===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//

#include "atomic/AtomicScheme.h"

#include "mem/GuestMemory.h"
#include "support/Compiler.h"
#include "support/StringUtils.h"

#include <cassert>

using namespace llsc;

AtomicScheme::~AtomicScheme() = default;

void AtomicScheme::attach(MachineContext &Ctx) {
  assert(State == SchemeState::Detached &&
         "attach() on an already-attached scheme");
  this->Ctx = &Ctx;
  State = SchemeState::Attached;
  onAttach();
}

void AtomicScheme::reset() {
  assert(State == SchemeState::Attached && "reset() on a detached scheme");
  onReset();
}

void AtomicScheme::detach() {
  if (State == SchemeState::Detached)
    return; // Idempotent: double-detach and detach-before-attach are no-ops.
  onDetach();
  Ctx = nullptr;
  State = SchemeState::Detached;
}

void AtomicScheme::storeHook(VCpu &Cpu, uint64_t Addr, uint64_t Value,
                             unsigned Size) {
  // Default: a plain store straight to guest memory.
  Ctx->Mem->store(Addr, Value, Size);
}

uint64_t AtomicScheme::loadHook(VCpu &Cpu, uint64_t Addr, unsigned Size) {
  return Ctx->Mem->load(Addr, Size);
}

namespace {

// Trailing pair per row: UsesPageProtection, NeutralTranslations (the
// snapshot sharing gates; see SchemeTraits).
constexpr SchemeTraits TraitsTable[] = {
    {SchemeKind::PicoCas, "pico-cas", AtomicityClass::Incorrect, "fast",
     false, "portable", false, true},
    {SchemeKind::PicoSt, "pico-st", AtomicityClass::Strong, "slow", false,
     "portable", false, true},
    {SchemeKind::PicoHtm, "pico-htm", AtomicityClass::Incorrect, "fast",
     true, "HTM", false, true},
    {SchemeKind::Hst, "hst", AtomicityClass::Strong, "fast", false,
     "portable", false, true},
    {SchemeKind::HstWeak, "hst-weak", AtomicityClass::Weak, "fast", false,
     "portable", false, true},
    {SchemeKind::HstHtm, "hst-htm", AtomicityClass::Strong, "fast", true,
     "HTM", false, true},
    {SchemeKind::HstHelper, "hst-helper", AtomicityClass::Strong, "slow",
     false, "portable", false, false},
    {SchemeKind::Pst, "pst", AtomicityClass::Strong, "slow", false,
     "portable", true, true},
    {SchemeKind::PstRemap, "pst-remap", AtomicityClass::Strong, "varies",
     false, "portable", true, true},
    {SchemeKind::PstMpk, "pst-mpk", AtomicityClass::Strong, "fast", false,
     "portable (emulated MPK)", false, true},
    {SchemeKind::BwLlsc, "bw-llsc", AtomicityClass::Strong, "fast", false,
     "portable", false, true},
};

// Every SchemeKind must have a TraitsTable row; a kind added to the enum
// without a row here would silently vanish from allSchemeKinds() and every
// scheme-indexed suite built on it.
static_assert(sizeof(TraitsTable) / sizeof(TraitsTable[0]) ==
                  static_cast<size_t>(SchemeKind::BwLlsc) + 1,
              "TraitsTable must cover every SchemeKind");

} // namespace

const SchemeTraits &llsc::schemeTraits(SchemeKind Kind) {
  for (const SchemeTraits &Traits : TraitsTable)
    if (Traits.Kind == Kind)
      return Traits;
  llsc_unreachable("unknown scheme kind");
}

const std::vector<SchemeKind> &llsc::allSchemeKinds() {
  static const std::vector<SchemeKind> Kinds = [] {
    std::vector<SchemeKind> Out;
    for (const SchemeTraits &Traits : TraitsTable)
      Out.push_back(Traits.Kind);
    return Out;
  }();
  return Kinds;
}

std::optional<SchemeKind> llsc::parseSchemeName(std::string_view Name) {
  for (const SchemeTraits &Traits : TraitsTable)
    if (equalsLower(Name, Traits.Name))
      return Traits.Kind;
  // Accept underscore spellings too.
  std::string Normalized = toLower(Name);
  for (char &C : Normalized)
    if (C == '_')
      C = '-';
  for (const SchemeTraits &Traits : TraitsTable)
    if (Normalized == Traits.Name)
      return Traits.Kind;
  return std::nullopt;
}

ErrorOr<std::vector<SchemeKind>> llsc::parseSchemeList(std::string_view List) {
  std::vector<SchemeKind> Kinds;
  for (std::string_view Name : split(List, ',')) {
    auto Kind = parseSchemeName(Name);
    if (!Kind)
      return makeError("unknown scheme '%.*s'", static_cast<int>(Name.size()),
                       Name.data());
    Kinds.push_back(*Kind);
  }
  if (Kinds.empty())
    return makeError("empty scheme list");
  return Kinds;
}
