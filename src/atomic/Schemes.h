//===- atomic/Schemes.h - Concrete scheme constructors ----------*- C++-*-===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Internal constructors for the individual schemes; external code uses
/// createScheme() from AtomicScheme.h.
///
//===----------------------------------------------------------------------===//

#ifndef LLSC_ATOMIC_SCHEMES_H
#define LLSC_ATOMIC_SCHEMES_H

#include "atomic/AtomicScheme.h"

namespace llsc {

std::unique_ptr<AtomicScheme> createPicoCas(const SchemeConfig &Config);
std::unique_ptr<AtomicScheme> createPicoSt(const SchemeConfig &Config);
std::unique_ptr<AtomicScheme> createPicoHtm(const SchemeConfig &Config);
std::unique_ptr<AtomicScheme> createHst(const SchemeConfig &Config,
                                        SchemeKind Variant);
std::unique_ptr<AtomicScheme> createHstHtm(const SchemeConfig &Config);
std::unique_ptr<AtomicScheme> createPst(const SchemeConfig &Config);
std::unique_ptr<AtomicScheme> createPstRemap(const SchemeConfig &Config);
std::unique_ptr<AtomicScheme> createPstMpk(const SchemeConfig &Config);

} // namespace llsc

#endif // LLSC_ATOMIC_SCHEMES_H
