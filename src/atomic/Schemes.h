//===- atomic/Schemes.h - Concrete scheme constructors ----------*- C++-*-===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Internal constructors for the individual schemes; external code uses
/// createScheme() from AtomicScheme.h.
///
//===----------------------------------------------------------------------===//

#ifndef LLSC_ATOMIC_SCHEMES_H
#define LLSC_ATOMIC_SCHEMES_H

#include "atomic/AtomicScheme.h"

namespace llsc {

std::unique_ptr<AtomicScheme> createPicoCas();
std::unique_ptr<AtomicScheme> createPicoSt();
std::unique_ptr<AtomicScheme> createPicoHtm(unsigned HtmMaxRetries);
std::unique_ptr<AtomicScheme> createHst(unsigned HstTableLog2,
                                        SchemeKind Variant);
std::unique_ptr<AtomicScheme> createHstHtm(unsigned HstTableLog2,
                                           unsigned HtmMaxRetries);
std::unique_ptr<AtomicScheme> createPst();
std::unique_ptr<AtomicScheme> createPstRemap();
std::unique_ptr<AtomicScheme> createPstMpk();
std::unique_ptr<AtomicScheme> createBwLlsc();

} // namespace llsc

#endif // LLSC_ATOMIC_SCHEMES_H
