//===- atomic/AtomicScheme.h - LL/SC emulation scheme interface -*- C++-*-===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interface every atomic-instruction emulation scheme implements.
/// This is the design space the paper explores (Table II):
///
///   PICO-CAS  (QEMU 4.1)   fast    incorrect  portable
///   PICO-ST                slow    strong     portable
///   PICO-HTM               fast    incorrect* needs HTM (livelocks)
///   HST                    fast    strong     portable      (paper's best)
///   HST-WEAK               fast    weak       portable
///   HST-HTM                fast    strong     needs HTM
///   PST                    slow    strong     portable
///   PST-REMAP              varies  strong     portable
///
/// A scheme participates at two times:
///  - translate time, via ir::TranslationHooks — it decides whether plain
///    stores/loads run raw, get inline IR instrumentation (HST), or are
///    routed through runtime helpers (PICO-ST, PST, PST-REMAP);
///  - run time, via emulateLoadLink/emulateStoreCond/storeHook/loadHook,
///    invoked by the engine for the corresponding micro-ops.
///
/// A scheme's lifetime is an explicit state machine (docs/API.md):
///
///   Detached --attach()--> Attached --detach()--> Detached
///                 (reset() only while Attached)
///
/// attach/reset/detach are non-virtual entry points that enforce the
/// transitions; schemes customize them through the onAttach/onReset/
/// onDetach extension points. detach() must return the machine to a
/// scheme-neutral state (page protections restored, published tables
/// unpublished, per-thread monitors dropped) so another scheme can be
/// attached to the same MachineContext — the contract behind
/// Machine::setScheme's runtime hot-swap.
///
//===----------------------------------------------------------------------===//

#ifndef LLSC_ATOMIC_ATOMICSCHEME_H
#define LLSC_ATOMIC_ATOMICSCHEME_H

#include "ir/TranslationHooks.h"
#include "runtime/VCpu.h"

#include "support/Error.h"

#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace llsc {

class GuestMemory;
class ExclusiveContext;
class HtmRuntime;

/// The schemes evaluated in the paper, plus the HST-HELPER ablation
/// (HST's hash table updated through a helper call instead of inline IR,
/// quantifying the paper's IR-inlining argument).
enum class SchemeKind {
  PicoCas,
  PicoSt,
  PicoHtm,
  Hst,
  HstWeak,
  HstHtm,
  HstHelper,
  Pst,
  PstRemap,
  /// The paper's Discussion-section proposal (Section VI "Optimization
  /// using Intel MPK") realized with emulated protection keys: per-key
  /// monitor counts checked on the store path instead of kernel-global
  /// mprotect — no syscalls, no stop-the-world, but only 15 usable keys,
  /// so pages sharing a key false-share monitors.
  PstMpk,
  /// Blelloch & Wei's constant-time LL/SC over pointer-width CAS
  /// (arXiv:1911.09671): LL publishes (granule range, version) in a
  /// per-vCPU announcement slot; SC commits by a single pointer-width CAS
  /// on that version-tagged descriptor. O(1) SC, no page protection, no
  /// hash table, no HTM — and no ABA window at all, unlike PICO-CAS.
  BwLlsc,
};

/// Atomicity classes in the sense of Section II-D.
enum class AtomicityClass {
  Incorrect, ///< May miss even LL/SC-vs-LL/SC conflicts (ABA-prone).
  Weak,      ///< Catches LL/SC-vs-LL/SC conflicts, misses plain stores.
  Strong,    ///< Catches conflicts from plain stores too.
};

/// Static description of a scheme (Table II row), extended with the two
/// sharing properties the snapshot/clone machinery keys on.
struct SchemeTraits {
  SchemeKind Kind;
  const char *Name;
  AtomicityClass Atomicity;
  const char *Speed;       ///< Table II qualitative label.
  bool RequiresHtm;
  const char *Portability; ///< Table II qualitative label.

  /// True for schemes that mprotect/remap guest pages (PST, PST-REMAP).
  /// Snapshot restore must deep-copy guest memory for these instead of
  /// attaching a CoW view: their fault recovery remaps pages against the
  /// machine's own memfd, which a MAP_PRIVATE snapshot view cannot honor.
  bool UsesPageProtection;

  /// True when the scheme's translations carry no machine-instance state,
  /// so TB-cache + JIT code can be shared read-only between a snapshot
  /// and its clones. False only for HST-HELPER, whose store prologue
  /// bakes the scheme instance into helper records (ir::HelperFn::Ctx).
  bool NeutralTranslations;
};

/// Lifecycle states of an AtomicScheme (docs/API.md).
enum class SchemeState {
  Detached, ///< Not bound to a machine; only attach() is legal.
  Attached, ///< Bound; run/translate hooks, reset() and detach() are legal.
};

/// Abstract atomic-emulation scheme.
class AtomicScheme : public ir::TranslationHooks {
public:
  ~AtomicScheme() override;

  virtual const SchemeTraits &traits() const = 0;

  /// True if the scheme *documents* ABA unsoundness: an SC may succeed
  /// after the monitored location was modified and restored. The fuzz
  /// oracle keys on this capability — for schemes returning true an ABA
  /// success is counted (Oracle::abaSuccesses) as the scheme's documented
  /// behavior; for every other scheme it is flagged as a failure. Only
  /// the value-comparing kinds (PICO-CAS, and PICO-HTM's value-compare
  /// fallback window) return true.
  virtual bool admitsAba() const { return false; }

  // --- Lifecycle (non-virtual; see the state machine above) ----------------

  /// Binds the scheme to a machine's services and transitions
  /// Detached -> Attached. \p Ctx must outlive the scheme's use. Calling
  /// attach() on an already-attached scheme is a programming error.
  void attach(MachineContext &Ctx);

  /// Clears scheme-internal cross-run state (monitors, tables) between
  /// runs of the same machine. Legal only while Attached.
  void reset();

  /// Unbinds the scheme, transitioning Attached -> Detached: releases any
  /// machine-visible state the scheme installed (page protections,
  /// published lookup tables, armed monitors). Idempotent — detaching a
  /// detached scheme is a no-op. The caller must quiesce every vCPU first
  /// (Machine::setScheme's job: onCpuStopped + clearExclusive per vCPU).
  void detach();

  SchemeState state() const { return State; }

  // --- Runtime hooks --------------------------------------------------------

  /// Emulates LDXR: loads Size bytes at \p Addr and arms the monitor.
  virtual uint64_t emulateLoadLink(VCpu &Cpu, uint64_t Addr,
                                   unsigned Size) = 0;

  /// Emulates STXR. \returns true on success (the store happened).
  virtual bool emulateStoreCond(VCpu &Cpu, uint64_t Addr, uint64_t Value,
                                unsigned Size) = 0;

  /// Emulates CLREX.
  virtual void clearExclusive(VCpu &Cpu) { Cpu.Monitor.clear(); }

  /// Executes a plain guest store when storesViaHelper() is true.
  virtual void storeHook(VCpu &Cpu, uint64_t Addr, uint64_t Value,
                         unsigned Size);

  /// Executes a plain guest load when loadsViaHelper() is true.
  /// \returns the zero-extended loaded value.
  virtual uint64_t loadHook(VCpu &Cpu, uint64_t Addr, unsigned Size);

  /// Called by the engine when \p Cpu stops executing (halt, budget
  /// exhaustion, error). Schemes holding cross-instruction state — an
  /// open PICO-HTM transaction or exclusive-fallback floor — must release
  /// it here or parked sibling threads deadlock.
  virtual void onCpuStopped(VCpu &Cpu) {}

protected:
  // --- Lifecycle extension points ------------------------------------------
  //
  // Called by the non-virtual attach()/reset()/detach() wrappers above with
  // the state transition already validated; Ctx is set before onAttach()
  // and cleared after onDetach().

  /// Allocates/publishes per-machine state (sized by Ctx->NumThreads etc.).
  virtual void onAttach() {}

  /// Clears cross-run state; the default scheme has none.
  virtual void onReset() {}

  /// Releases machine-visible state. Runs at most once per attach().
  virtual void onDetach() {}

  MachineContext *Ctx = nullptr;

private:
  SchemeState State = SchemeState::Detached;
};

/// Models the guest-context save/restore a QEMU-style JIT performs around
/// every helper call — the "context switch to QEMU" Section II-B blames
/// for PICO-ST's cost ("implemented as a helper function ... incurs
/// extremely heavy runtime overheads"). Our interpreter reaches helpers
/// through a plain virtual call, which would make helper-routed schemes
/// unrealistically cheap relative to JIT-inlined instrumentation; schemes
/// whose hot paths are genuine QEMU helpers (PICO-ST's store test, the
/// HST-HELPER ablation) call this on helper entry. The cost is the real
/// work a JIT does: spill all guest registers, reload them after.
inline void simulateQemuHelperCall(VCpu &Cpu) {
  volatile uint64_t *Spill = Cpu.HelperSpill;
  for (unsigned Reg = 0; Reg < guest::NumGuestRegs; ++Reg)
    Spill[Reg] = Cpu.Regs[Reg];
  std::atomic_signal_fence(std::memory_order_seq_cst);
  for (unsigned Reg = 0; Reg < guest::NumGuestRegs; ++Reg)
    Cpu.Regs[Reg] = Spill[Reg];
}

/// \returns the traits row for \p Kind without instantiating a scheme.
const SchemeTraits &schemeTraits(SchemeKind Kind);

/// \returns all scheme kinds in Table II order.
const std::vector<SchemeKind> &allSchemeKinds();

/// Parses a scheme name ("hst", "pico-cas", "pst-remap", ...).
std::optional<SchemeKind> parseSchemeName(std::string_view Name);

/// Parses a comma-separated scheme list ("hst,pst-remap").
/// \returns an error naming the first unknown scheme, or on an empty list.
ErrorOr<std::vector<SchemeKind>> parseSchemeList(std::string_view List);

/// Creates a scheme instance in the Detached state. \p HstTableLog2 is
/// the log2 entry count of the HST-family hash table (Figure 4);
/// \p HtmMaxRetries is how often the HTM kinds retry before falling back
/// to blocking serialization (the paper's PICO-HTM has no sound fallback
/// and crashes; we record a livelock-fallback event instead). Kinds that
/// do not use a tunable ignore it. Scheme tuning lives in MachineConfig
/// (core/Machine.h); Machine::create forwards it here.
std::unique_ptr<AtomicScheme> createScheme(SchemeKind Kind,
                                           unsigned HstTableLog2 = 20,
                                           unsigned HtmMaxRetries = 64);

} // namespace llsc

#endif // LLSC_ATOMIC_ATOMICSCHEME_H
