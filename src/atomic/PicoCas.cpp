//===- atomic/PicoCas.cpp - QEMU 4.1's CAS-based LL/SC emulation --------------===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// PICO-CAS (Figure 1 of the paper; what QEMU ships): the LL records the
/// loaded value and address; the SC performs a host compare-and-swap
/// against the recorded value. "Value unchanged" is taken to mean "nothing
/// changed", which is exactly the ABA bug — neither intervening plain
/// stores nor complete LL/SC cycles by other threads that restore the old
/// value are detected (Seq1–Seq4 of Section IV-A all succeed when they
/// must fail).
///
//===----------------------------------------------------------------------===//

#include "atomic/AtomicScheme.h"
#include "atomic/Schemes.h"

#include "mem/GuestMemory.h"

using namespace llsc;

namespace {

class PicoCas final : public AtomicScheme {
public:
  const SchemeTraits &traits() const override {
    return schemeTraits(SchemeKind::PicoCas);
  }

  // Figure 1's documented unsoundness: the SC compares values, so a
  // modify-and-restore cycle is invisible. The fuzz oracle counts (not
  // flags) ABA successes for schemes declaring this.
  bool admitsAba() const override { return true; }

  uint64_t emulateLoadLink(VCpu &Cpu, uint64_t Addr, unsigned Size) override {
    // Figure 1: record oldval and lsc_addr after loading.
    uint64_t Value = Ctx->Mem->shadowLoad(Addr, Size);
    Cpu.Monitor.arm(Addr, Value, Size);
    return Value;
  }

  bool emulateStoreCond(VCpu &Cpu, uint64_t Addr, uint64_t Value,
                        unsigned Size) override {
    ExclusiveMonitor &Mon = Cpu.Monitor;
    if (!Mon.valid() || Mon.Addr != Addr || Mon.Size != Size) {
      Mon.clear();
      Cpu.Events.ScFailMonitorLost++;
      return false;
    }
    uint64_t Expected = Mon.Value;
    bool Ok = Ctx->Mem->compareExchange(Addr, Expected, Value, Size);
    // A CAS failure means the value differs — by construction PICO-CAS
    // only ever fails for a (seemingly) lost monitor; the ABA cases it
    // wrongly *succeeds* on are what the litmus tests expose.
    if (!Ok)
      Cpu.Events.ScFailMonitorLost++;
    Mon.clear();
    return Ok;
  }
};

} // namespace

std::unique_ptr<AtomicScheme> llsc::createPicoCas() {
  return std::make_unique<PicoCas>();
}
