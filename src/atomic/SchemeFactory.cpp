//===- atomic/SchemeFactory.cpp - createScheme dispatch -----------------------===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//

#include "atomic/Schemes.h"

#include "support/Compiler.h"

using namespace llsc;

std::unique_ptr<AtomicScheme> llsc::createScheme(SchemeKind Kind,
                                                 unsigned HstTableLog2,
                                                 unsigned HtmMaxRetries) {
  switch (Kind) {
  case SchemeKind::PicoCas:
    return createPicoCas();
  case SchemeKind::PicoSt:
    return createPicoSt();
  case SchemeKind::PicoHtm:
    return createPicoHtm(HtmMaxRetries);
  case SchemeKind::Hst:
  case SchemeKind::HstWeak:
  case SchemeKind::HstHelper:
    return createHst(HstTableLog2, Kind);
  case SchemeKind::HstHtm:
    return createHstHtm(HstTableLog2, HtmMaxRetries);
  case SchemeKind::Pst:
    return createPst();
  case SchemeKind::PstRemap:
    return createPstRemap();
  case SchemeKind::PstMpk:
    return createPstMpk();
  case SchemeKind::BwLlsc:
    return createBwLlsc();
  }
  llsc_unreachable("unknown scheme kind");
}
