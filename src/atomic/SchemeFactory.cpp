//===- atomic/SchemeFactory.cpp - createScheme dispatch -----------------------===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//

#include "atomic/Schemes.h"

#include "support/Compiler.h"

using namespace llsc;

std::unique_ptr<AtomicScheme> llsc::createScheme(SchemeKind Kind,
                                                 const SchemeConfig &Config) {
  switch (Kind) {
  case SchemeKind::PicoCas:
    return createPicoCas(Config);
  case SchemeKind::PicoSt:
    return createPicoSt(Config);
  case SchemeKind::PicoHtm:
    return createPicoHtm(Config);
  case SchemeKind::Hst:
  case SchemeKind::HstWeak:
  case SchemeKind::HstHelper:
    return createHst(Config, Kind);
  case SchemeKind::HstHtm:
    return createHstHtm(Config);
  case SchemeKind::Pst:
    return createPst(Config);
  case SchemeKind::PstRemap:
    return createPstRemap(Config);
  case SchemeKind::PstMpk:
    return createPstMpk(Config);
  }
  llsc_unreachable("unknown scheme kind");
}
