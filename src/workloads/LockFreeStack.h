//===- workloads/LockFreeStack.h - ABA micro-benchmark ----------*- C++-*-===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's correctness micro-benchmark (Section IV-A, Figures 2/3): a
/// lock-free stack implemented with LDXR/STXR in guest assembly. N threads
/// repeatedly pop a node and push it back. On a correct LL/SC emulation
/// the stack's node set is conserved; under PICO-CAS the ABA interleaving
/// corrupts the list — the paper's tell-tale being entries whose `next`
/// pointer points to themselves.
///
/// After the run, check() walks the list from the host side and reports
/// self-loops, cycles, lost and duplicated nodes.
///
//===----------------------------------------------------------------------===//

#ifndef LLSC_WORKLOADS_LOCKFREESTACK_H
#define LLSC_WORKLOADS_LOCKFREESTACK_H

#include "guest/Program.h"

#include "support/Error.h"

#include <cstdint>

namespace llsc {

class GuestMemory;

namespace workloads {

/// Build parameters for the stack micro-benchmark.
struct LockFreeStackParams {
  unsigned NumNodes = 64;
  uint64_t IterationsPerThread = 1 << 14;
  /// Insert a YIELD between the pop's LL and SC on every Nth pop attempt
  /// (0 = never). On the paper's 52-core host the A-B-A interleaving
  /// arises from true parallel overlap; on a single-core host this widens
  /// the preemption window to an equivalent degree (documented in
  /// EXPERIMENTS.md). Kept periodic rather than unconditional so correct
  /// schemes see occasional SC failures and retries instead of a
  /// ping-pong livelock.
  unsigned YieldEveryNPops = 0;

  /// Additionally yield between a successful pop and the push-back on
  /// every Nth iteration (0 = never; power of two). This parks threads
  /// *while they hold a popped node*, which is what lets Figure 2's
  /// three-thread A-B-A interleaving (T2 pops A, T3 pops B, T2 pushes A)
  /// arise on a time-sliced single core.
  unsigned HoldYieldEveryN = 0;

  /// Nodes popped per iteration before they are pushed back (1 or 2).
  /// Depth 2 means every thread regularly *holds* a popped node while
  /// operating on the stack — the ingredient of Figure 2's interleaving
  /// (T2 pops A, T3 pops B, T2 pushes A) that immediate push-back lacks.
  unsigned BatchDepth = 1;
};

/// Result of the host-side consistency walk.
struct StackCheckResult {
  bool Corrupted = false;
  uint64_t SelfLoops = 0;       ///< Nodes with next == self (paper's metric).
  uint64_t NodesReachable = 0;  ///< Distinct nodes on the final stack.
  uint64_t NodesLost = 0;       ///< NumNodes - reachable (when walk is sane).
  bool CycleDetected = false;
  bool BadPointer = false;      ///< next outside the node array.
  double SelfLoopPct = 0.0;     ///< SelfLoops / NumNodes * 100.
};

/// Builds the guest program. Symbols: `stack_top` (8-byte top pointer on
/// its own page) and `nodes` (16-byte nodes: next, value).
ErrorOr<guest::Program> buildLockFreeStack(const LockFreeStackParams &Params);

/// Walks the final stack in \p Mem and classifies corruption.
StackCheckResult checkLockFreeStack(GuestMemory &Mem,
                                    const guest::Program &Prog,
                                    const LockFreeStackParams &Params);

/// Builds the *tagged* variant: the classic version-number ABA defense the
/// paper cites ([13], Section II-C related work). The top-of-stack word
/// packs {tag:32, node index:32}; every successful pop or push increments
/// the tag, so a value-comparing CAS can never confuse "same index" with
/// "nothing happened" — even PICO-CAS emulates this stack correctly. The
/// price is guest-side: packing/unpacking on every operation and indices
/// instead of pointers. Same parameters and checker contract as the plain
/// stack (YieldEveryNPops/HoldYieldEveryN apply; BatchDepth is supported).
ErrorOr<guest::Program>
buildTaggedLockFreeStack(const LockFreeStackParams &Params);

/// Walks the final tagged stack and classifies corruption.
StackCheckResult
checkTaggedLockFreeStack(GuestMemory &Mem, const guest::Program &Prog,
                         const LockFreeStackParams &Params);

} // namespace workloads
} // namespace llsc

#endif // LLSC_WORKLOADS_LOCKFREESTACK_H
