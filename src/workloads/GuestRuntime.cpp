//===- workloads/GuestRuntime.cpp - Guest-side runtime library -----------------===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//

#include "workloads/GuestRuntime.h"

using namespace llsc;

std::string workloads::guestRuntimeAsm() {
  return R"(
; ---- llsc guest runtime ------------------------------------------------
        b       _start

; rt_mutex_lock: r1 = &lock (4 bytes). Clobbers r2, r3.
rt_mutex_lock:
rt_ml_retry:
        ldxr.w  r2, [r1]
        cbnz    r2, rt_ml_wait
        movz    r2, #1
        stxr.w  r3, r2, [r1]
        cbnz    r3, rt_ml_retry
        dmb
        ret
rt_ml_wait:
        yield
        b       rt_ml_retry

; rt_mutex_unlock: r1 = &lock. Clobbers r2.
; Plain release store: only the lock owner writes the lock word here,
; the pattern HST-WEAK's weak atomicity depends on (Section III-C).
rt_mutex_unlock:
        dmb
        movz    r2, #0
        stw     r2, [r1]
        ret

; rt_barrier_wait: r1 = &{count:4, generation:4}. Clobbers r2, r3, r5, r6.
rt_barrier_wait:
        ldw     r5, [r1, #4]          ; my generation
rt_bw_retry:
        ldxr.w  r2, [r1]
        addi    r2, r2, #1
        stxr.w  r3, r2, [r1]
        cbnz    r3, rt_bw_retry
        sys     r6, #2                ; r6 = number of guest threads
        beq     r2, r6, rt_bw_last
rt_bw_spin:
        ldw     r2, [r1, #4]
        beq     r2, r5, rt_bw_pause
        dmb
        ret
rt_bw_pause:
        yield
        b       rt_bw_spin
rt_bw_last:
        movz    r2, #0
        stw     r2, [r1]              ; reset count (plain store)
        addi    r5, r5, #1
        stw     r5, [r1, #4]          ; publish next generation (plain store)
        dmb
        ret

; rt_atomic_add_w: r1 = &word, r2 = delta -> r3 = old value.
; Clobbers r5, r6. Matches the compiler idiom the rule-based pass
; (Section VI) recognizes: ldxr/add/stxr/cbnz.
rt_atomic_add_w:
        ldxr.w  r3, [r1]
        add     r5, r3, r2
        stxr.w  r6, r5, [r1]
        cbnz    r6, rt_atomic_add_w
        ret

; rt_atomic_add_d: 8-byte variant.
rt_atomic_add_d:
        ldxr.d  r3, [r1]
        add     r5, r3, r2
        stxr.d  r6, r5, [r1]
        cbnz    r6, rt_atomic_add_d
        ret

; rt_ticket_lock: r1 = &{next:4, serving:4}. FIFO-fair lock built on the
; fetch-add idiom (the release is the owner's plain store, like glibc).
; Clobbers r2, r3, r5, r6.
rt_ticket_lock:
        movz    r2, #1
rt_tl_take:                        ; r3 = my ticket (fetch-add idiom)
        ldxr.w  r3, [r1]
        add     r5, r3, r2
        stxr.w  r6, r5, [r1]
        cbnz    r6, rt_tl_take
rt_tl_spin:
        ldw     r5, [r1, #4]
        beq     r5, r3, rt_tl_got
        yield
        b       rt_tl_spin
rt_tl_got:
        dmb
        ret

; rt_ticket_unlock: r1 = &{next:4, serving:4}. Clobbers r2.
rt_ticket_unlock:
        dmb
        ldw     r2, [r1, #4]
        addi    r2, r2, #1
        stw     r2, [r1, #4]       ; plain store by the owner
        ret
; ---- end runtime ---------------------------------------------------------
)";
}
