//===- workloads/Litmus.cpp - Atomicity litmus sequences ------------------------===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//

#include "workloads/Litmus.h"

#include "support/Compiler.h"

#include <cassert>

using namespace llsc;
using namespace llsc::workloads;

// Fragment program: each event is one tiny block ending in HALT. The
// shared variable address is passed in r10, the store/SC value in r11;
// LL's result lands in r1, SC's status in r2.
static const char *FragmentProgram = R"(
_start:
        halt                    ; never used as an entry

frag_ll:
        ldxr.w  r1, [r10]
        halt

frag_sc:
        stxr.w  r2, r11, [r10]
        halt

frag_store:
        stw     r11, [r10]
        halt

        .align  4096
shared_var:
        .word   0
)";

ErrorOr<LitmusDriver> LitmusDriver::create(Machine &M) {
  if (M.numThreads() < 2)
    return makeError("litmus sequences need at least 2 threads");
  auto LoadedOrErr = M.loadAssembly(FragmentProgram);
  if (!LoadedOrErr)
    return LoadedOrErr.error();

  LitmusDriver Driver(M);
  Driver.LlPc = M.program().requiredSymbol("frag_ll");
  Driver.ScPc = M.program().requiredSymbol("frag_sc");
  Driver.StorePc = M.program().requiredSymbol("frag_store");
  Driver.VarAddr = M.program().requiredSymbol("shared_var");
  M.prepareRun();
  return Driver;
}

void LitmusDriver::resetVar(uint32_t Value) {
  M.prepareRun(); // Clears monitors, tables, page protection.
  M.mem().shadowStore(VarAddr, Value, 4);
}

void LitmusDriver::runFragment(unsigned Tid, uint64_t Pc) {
  VCpu &Cpu = M.cpu(Tid);
  Cpu.Halted = false;
  Cpu.Pc = Pc;
  Cpu.Regs[10] = VarAddr;
  // A fragment is at most a handful of blocks (LL retry loops never occur
  // here since fragments are straight-line).
  auto Status = M.engine().stepBlocks(Cpu, /*MaxBlocks=*/16);
  if (!Status)
    reportFatalError(Status.error());
  assert(*Status == RunStatus::Halted && "fragment did not halt");
}

uint32_t LitmusDriver::loadLink(unsigned Tid) {
  runFragment(Tid, LlPc);
  return static_cast<uint32_t>(M.cpu(Tid).Regs[1]);
}

bool LitmusDriver::storeCond(unsigned Tid, uint32_t Value) {
  M.cpu(Tid).Regs[11] = Value;
  runFragment(Tid, ScPc);
  return M.cpu(Tid).Regs[2] == 0;
}

void LitmusDriver::plainStore(unsigned Tid, uint32_t Value) {
  M.cpu(Tid).Regs[11] = Value;
  runFragment(Tid, StorePc);
}

uint32_t LitmusDriver::varValue() {
  return static_cast<uint32_t>(M.mem().shadowLoad(VarAddr, 4));
}

LitmusOutcome workloads::runLitmusSequence(LitmusDriver &Driver, int SeqNo) {
  constexpr uint32_t C = 100, D = 200;
  constexpr unsigned A = 0, B = 1;
  Driver.resetVar(C);

  switch (SeqNo) {
  case 1:
    // LLa(x(c)) -> Sb(x,d) -> Sb(x,c) -> SCa.
    Driver.loadLink(A);
    Driver.plainStore(B, D);
    Driver.plainStore(B, C);
    break;
  case 2:
    // LLa -> LLb -> SCb(c,d) -> LLb -> SCb(d,c) -> SCa.
    Driver.loadLink(A);
    Driver.loadLink(B);
    Driver.storeCond(B, D);
    Driver.loadLink(B);
    Driver.storeCond(B, C);
    break;
  case 3:
    // LLa -> LLb -> SCb(c,d) -> Sb(x,c) -> SCa.
    Driver.loadLink(A);
    Driver.loadLink(B);
    Driver.storeCond(B, D);
    Driver.plainStore(B, C);
    break;
  case 4:
    // LLa -> Sb(x,d) -> LLb -> SCb(d,c) -> SCa.
    Driver.loadLink(A);
    Driver.plainStore(B, D);
    Driver.loadLink(B);
    Driver.storeCond(B, C);
    break;
  default:
    llsc_unreachable("sequence number must be 1..4");
  }

  LitmusOutcome Outcome;
  Outcome.ScaFailed = !Driver.storeCond(A, 999);
  Outcome.FinalValue = Driver.varValue();
  return Outcome;
}

MeasuredAtomicity workloads::classifyScheme(LitmusDriver &Driver) {
  bool Seq1Caught = runLitmusSequence(Driver, 1).ScaFailed;
  bool LaterCaught = true;
  for (int Seq = 2; Seq <= 4; ++Seq)
    LaterCaught &= runLitmusSequence(Driver, Seq).ScaFailed;

  if (Seq1Caught && LaterCaught)
    return MeasuredAtomicity::Strong;
  if (LaterCaught)
    return MeasuredAtomicity::Weak;
  return MeasuredAtomicity::Incorrect;
}

const char *workloads::measuredAtomicityName(MeasuredAtomicity Class) {
  switch (Class) {
  case MeasuredAtomicity::Incorrect:
    return "incorrect";
  case MeasuredAtomicity::Weak:
    return "weak";
  case MeasuredAtomicity::Strong:
    return "strong";
  }
  llsc_unreachable("invalid classification");
}
