//===- workloads/Litmus.cpp - Atomicity litmus sequences ------------------------===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//

#include "workloads/Litmus.h"

#include "input/GuestImage.h"
#include "input/rv32/Rv32Isa.h"
#include "support/Compiler.h"

#include <cassert>

using namespace llsc;
using namespace llsc::workloads;

// Fragment program: each event is one tiny block ending in HALT. The
// shared variable address is passed in r10, the store/SC value in r11;
// LL's result lands in r1, SC's status in r2.
static const char *FragmentProgram = R"(
_start:
        halt                    ; never used as an entry

frag_ll:
        ldxr.w  r1, [r10]
        halt

frag_sc:
        stxr.w  r2, r11, [r10]
        halt

frag_store:
        stw     r11, [r10]
        halt

; Sized variants: 8-byte LL/SC/store and a 2-byte store, for the
; multi-granule litmus shapes (r10 carries the already-offset address).
frag_ll_d:
        ldxr.d  r1, [r10]
        halt

frag_sc_d:
        stxr.d  r2, r11, [r10]
        halt

frag_store_d:
        std     r11, [r10]
        halt

frag_store_h:
        sth     r11, [r10]
        halt

        .align  4096
shared_var:
        .space  16
)";

// RV32IA equivalent of FragmentProgram, emitted as machine code (there is
// no RV32 assembler in-tree). Same register contract as GRV: address in
// x10, value in x11, LL result in x1, SC status in x2 (0 = success, which
// is RISC-V's native convention). No 8-byte fragments — the A extension
// has no 64-bit word form on RV32.
static guest::Program rv32FragmentProgram() {
  using namespace input::rv32;
  constexpr uint64_t Base = 0x1000;
  const uint32_t Ecall = rv32EncodeI(0, 0, 0x0, 0, 0x73);

  std::vector<uint32_t> Words;
  std::map<std::string, uint64_t> Symbols;
  auto Label = [&](const char *Name) {
    Symbols[Name] = Base + Words.size() * 4;
  };

  Label("_start");
  Words.push_back(Ecall); // never used as an entry
  Label("frag_ll");       // lr.w x1, (x10)
  Words.push_back(rv32EncodeAmo(AmoFunct5LrW, false, false, 0, 10, 1));
  Words.push_back(Ecall);
  Label("frag_sc");       // sc.w x2, x11, (x10)
  Words.push_back(rv32EncodeAmo(AmoFunct5ScW, false, false, 11, 10, 2));
  Words.push_back(Ecall);
  Label("frag_store");    // sw x11, 0(x10)
  Words.push_back(rv32EncodeS(0, 11, 10, 0x2, 0x23));
  Words.push_back(Ecall);
  Label("frag_store_h");  // sh x11, 0(x10)
  Words.push_back(rv32EncodeS(0, 11, 10, 0x1, 0x23));
  Words.push_back(Ecall);

  // Page-aligned shared window, as in the GRV source's ".align 4096".
  const uint64_t SharedVar = 0x2000;
  Symbols["shared_var"] = SharedVar;

  std::vector<uint8_t> Image(SharedVar - Base + LitmusDriver::WindowBytes, 0);
  for (size_t I = 0; I < Words.size(); ++I)
    for (unsigned B = 0; B < 4; ++B)
      Image[I * 4 + B] = static_cast<uint8_t>(Words[I] >> (B * 8));
  return guest::Program(std::move(Image), Base, Base, std::move(Symbols));
}

ErrorOr<LitmusDriver> LitmusDriver::create(Machine &M) {
  if (M.numThreads() < 2)
    return makeError("litmus sequences need at least 2 threads");

  const bool Rv32 = M.config().Arch == input::GuestArch::Rv32;
  auto LoadedOrErr =
      Rv32 ? M.load(input::GuestImage(input::GuestArch::Rv32,
                                      rv32FragmentProgram()))
           : M.loadAssembly(FragmentProgram);
  if (!LoadedOrErr)
    return LoadedOrErr.error();

  LitmusDriver Driver(M);
  Driver.LlPc = M.program().requiredSymbol("frag_ll");
  Driver.ScPc = M.program().requiredSymbol("frag_sc");
  Driver.StorePc = M.program().requiredSymbol("frag_store");
  if (!Rv32) {
    Driver.LlDPc = M.program().requiredSymbol("frag_ll_d");
    Driver.ScDPc = M.program().requiredSymbol("frag_sc_d");
    Driver.StoreDPc = M.program().requiredSymbol("frag_store_d");
  }
  Driver.StoreHPc = M.program().requiredSymbol("frag_store_h");
  Driver.VarAddr = M.program().requiredSymbol("shared_var");
  M.prepareRun();
  return Driver;
}

void LitmusDriver::resetVar(uint32_t Value) {
  M.prepareRun(); // Clears monitors, tables, page protection.
  for (unsigned Offset = 0; Offset < WindowBytes; Offset += 8)
    M.mem().shadowStore(VarAddr + Offset, 0, 8);
  M.mem().shadowStore(VarAddr, Value, 4);
}

void LitmusDriver::runFragment(unsigned Tid, uint64_t Pc) {
  assert(Pc != 0 && "fragment not available under this frontend "
                    "(8-byte variants are GRV-only)");
  VCpu &Cpu = M.cpu(Tid);
  Cpu.Halted = false;
  Cpu.Pc = Pc;
  // A fragment is at most a handful of blocks (LL retry loops never occur
  // here since fragments are straight-line).
  auto Status = M.engine().stepBlocks(Cpu, /*MaxBlocks=*/16);
  if (!Status)
    reportFatalError(Status.error());
  assert(*Status == RunStatus::Halted && "fragment did not halt");
}

uint32_t LitmusDriver::loadLink(unsigned Tid) {
  return static_cast<uint32_t>(loadLinkAt(Tid, 0, 4));
}

bool LitmusDriver::storeCond(unsigned Tid, uint32_t Value) {
  return storeCondAt(Tid, Value, 0, 4);
}

void LitmusDriver::plainStore(unsigned Tid, uint32_t Value) {
  plainStoreAt(Tid, Value, 0, 4);
}

uint64_t LitmusDriver::loadLinkAt(unsigned Tid, unsigned Offset,
                                  unsigned Size) {
  assert((Size == 4 || Size == 8) && Offset + Size <= WindowBytes);
  M.cpu(Tid).Regs[10] = VarAddr + Offset;
  runFragment(Tid, Size == 8 ? LlDPc : LlPc);
  return M.cpu(Tid).Regs[1];
}

bool LitmusDriver::storeCondAt(unsigned Tid, uint64_t Value, unsigned Offset,
                               unsigned Size) {
  assert((Size == 4 || Size == 8) && Offset + Size <= WindowBytes);
  M.cpu(Tid).Regs[10] = VarAddr + Offset;
  M.cpu(Tid).Regs[11] = Value;
  runFragment(Tid, Size == 8 ? ScDPc : ScPc);
  return M.cpu(Tid).Regs[2] == 0;
}

void LitmusDriver::plainStoreAt(unsigned Tid, uint64_t Value, unsigned Offset,
                                unsigned Size) {
  assert((Size == 2 || Size == 4 || Size == 8) &&
         Offset + Size <= WindowBytes);
  M.cpu(Tid).Regs[10] = VarAddr + Offset;
  M.cpu(Tid).Regs[11] = Value;
  runFragment(Tid, Size == 8 ? StoreDPc : Size == 2 ? StoreHPc : StorePc);
}

uint32_t LitmusDriver::varValue() {
  return static_cast<uint32_t>(M.mem().shadowLoad(VarAddr, 4));
}

uint64_t LitmusDriver::varValueAt(unsigned Offset, unsigned Size) {
  assert(Offset + Size <= WindowBytes);
  return M.mem().shadowLoad(VarAddr + Offset, Size);
}

LitmusOutcome workloads::runLitmusSequence(LitmusDriver &Driver, int SeqNo) {
  constexpr uint32_t C = 100, D = 200;
  constexpr unsigned A = 0, B = 1;
  Driver.resetVar(C);

  switch (SeqNo) {
  case 1:
    // LLa(x(c)) -> Sb(x,d) -> Sb(x,c) -> SCa.
    Driver.loadLink(A);
    Driver.plainStore(B, D);
    Driver.plainStore(B, C);
    break;
  case 2:
    // LLa -> LLb -> SCb(c,d) -> LLb -> SCb(d,c) -> SCa.
    Driver.loadLink(A);
    Driver.loadLink(B);
    Driver.storeCond(B, D);
    Driver.loadLink(B);
    Driver.storeCond(B, C);
    break;
  case 3:
    // LLa -> LLb -> SCb(c,d) -> Sb(x,c) -> SCa.
    Driver.loadLink(A);
    Driver.loadLink(B);
    Driver.storeCond(B, D);
    Driver.plainStore(B, C);
    break;
  case 4:
    // LLa -> Sb(x,d) -> LLb -> SCb(d,c) -> SCa.
    Driver.loadLink(A);
    Driver.plainStore(B, D);
    Driver.loadLink(B);
    Driver.storeCond(B, C);
    break;
  default:
    llsc_unreachable("sequence number must be 1..4");
  }

  LitmusOutcome Outcome;
  Outcome.ScaFailed = !Driver.storeCond(A, 999);
  Outcome.FinalValue = Driver.varValue();
  return Outcome;
}

MeasuredAtomicity workloads::classifyScheme(LitmusDriver &Driver) {
  bool Seq1Caught = runLitmusSequence(Driver, 1).ScaFailed;
  bool LaterCaught = true;
  for (int Seq = 2; Seq <= 4; ++Seq)
    LaterCaught &= runLitmusSequence(Driver, Seq).ScaFailed;

  if (Seq1Caught && LaterCaught)
    return MeasuredAtomicity::Strong;
  if (LaterCaught)
    return MeasuredAtomicity::Weak;
  return MeasuredAtomicity::Incorrect;
}

const char *workloads::measuredAtomicityName(MeasuredAtomicity Class) {
  switch (Class) {
  case MeasuredAtomicity::Incorrect:
    return "incorrect";
  case MeasuredAtomicity::Weak:
    return "weak";
  case MeasuredAtomicity::Strong:
    return "strong";
  }
  llsc_unreachable("invalid classification");
}
