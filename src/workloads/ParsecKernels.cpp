//===- workloads/ParsecKernels.cpp - PARSEC-like guest kernels ------------------===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//

#include "workloads/ParsecKernels.h"

#include "guest/Assembler.h"
#include "support/BitUtils.h"
#include "support/StringUtils.h"
#include "workloads/GuestRuntime.h"

#include <cassert>

using namespace llsc;
using namespace llsc::workloads;

// Register plan (see GuestRuntime.h for the runtime's clobbers):
//   r0  tid                     r9  inner loop counter
//   r4  outer loop counter      r10 &shared_counters
//   r7  private buffer base     r11 &shared_locks
//   r8  compute accumulator     r12 &barrier
//   r15 moving store pointer    r1/r2/r3/r5/r6 scratch & call args

namespace {

/// Thread-private buffers live outside the program image.
constexpr uint64_t PrivateBase = 0x2000000; // 32 MiB.
constexpr unsigned PrivateShift = 16;       // 64 KiB per thread.

// Parameters are chosen so the *measured* store:LL/SC ratios span the
// paper's Table I range (88x at the atomic-heavy end, ~3000x for
// blackscholes) and the sync structure matches each benchmark's published
// character; `table1_profile` prints the measured values.
const std::vector<KernelParams> Kernels = {
    // Name            Iters Comp Priv Adds Lk LkSt NLk Barr Serial
    {"blackscholes", 300, 200, 2900, 1, 0, 0, 1, 0, false},
    {"bodytrack", 250, 150, 700, 1, 2, 6, 8, 4, false},
    {"canneal", 200, 120, 450, 2, 1, 6, 1, 0, true},
    {"facesim", 250, 200, 900, 1, 1, 8, 4, 4, false},
    {"fluidanimate", 200, 100, 900, 1, 10, 2, 64, 8, false},
    {"freqmine", 200, 100, 850, 8, 2, 4, 1, 0, false},
    {"swaptions", 250, 150, 800, 5, 1, 4, 2, 0, false},
    {"x264", 300, 250, 1400, 1, 1, 4, 8, 16, false},
};

} // namespace

const std::vector<KernelParams> &workloads::parsecKernels() { return Kernels; }

const KernelParams *workloads::findKernel(std::string_view Name) {
  for (const KernelParams &Params : Kernels)
    if (equalsLower(Name, Params.Name))
      return &Params;
  return nullptr;
}

ErrorOr<guest::Program> workloads::buildKernel(const KernelParams &Params,
                                               double Scale) {
  assert(isPowerOf2(Params.NumLocks) && "lock count must be a power of two");
  uint64_t Iters = static_cast<uint64_t>(
      static_cast<double>(Params.OuterIters) * Scale);
  if (Iters == 0)
    Iters = 1;

  std::string Asm = guestRuntimeAsm();
  Asm += formatString("\n; ---- synthetic kernel '%s' ----\n",
                      Params.Name.c_str());
  Asm += "_start:\n";
  Asm += formatString("        li      r7, #0x%llx\n",
                      static_cast<unsigned long long>(PrivateBase));
  Asm += formatString("        lsli    r1, r0, #%u\n", PrivateShift);
  Asm += "        add     r7, r7, r1\n";
  Asm += "        la      r10, shared_counters\n";
  Asm += "        la      r11, shared_locks\n";
  Asm += "        la      r12, barrier_var\n";
  Asm += "        movz    r8, #0x1234\n";
  Asm += formatString("        li      r4, #%llu\n",
                      static_cast<unsigned long long>(Iters));
  Asm += "outer_loop:\n";
  Asm += "        cbz     r4, kernel_done\n";

  // --- Compute phase: 4 ALU ops per inner iteration. ----------------------
  if (Params.ComputeOps) {
    Asm += formatString("        li      r9, #%u\n",
                        (Params.ComputeOps + 3) / 4);
    Asm += R"(compute_loop:
        cbz     r9, compute_done
        addi    r8, r8, #0x19e3
        eori    r8, r8, #0x1b3
        lsri    r1, r8, #7
        add     r8, r8, r1
        addi    r9, r9, #-1
        b       compute_loop
compute_done:
)";
  }

  // --- Private stores: plain stores to thread-private memory. --------------
  if (Params.PrivateStores) {
    Asm += formatString("        li      r9, #%u\n", Params.PrivateStores);
    Asm += R"(        mov     r15, r7
priv_store_loop:
        cbz     r9, priv_store_done
        ldd     r2, [r15]           ; read-modify-write, like real kernels
        add     r2, r2, r8
        std     r2, [r15]
        addi    r15, r15, #8
        addi    r9, r9, #-1
        b       priv_store_loop
priv_store_done:
)";
  }

  // --- Contended atomic adds (rt_atomic_add_w). -----------------------------
  if (Params.SharedAtomicAdds) {
    Asm += formatString("        li      r9, #%u\n", Params.SharedAtomicAdds);
    Asm += R"(atomic_loop:
        cbz     r9, atomic_done
        add     r1, r4, r9
        andi    r1, r1, #3
        lsli    r1, r1, #2
        add     r1, r10, r1
        movz    r2, #1
        bl      rt_atomic_add_w
        addi    r9, r9, #-1
        b       atomic_loop
atomic_done:
)";
  }

  // --- Critical sections: striped locks with stores inside. -----------------
  if (Params.LockedSections) {
    Asm += formatString("        li      r9, #%u\n", Params.LockedSections);
    Asm += "lock_loop:\n";
    Asm += "        cbz     r9, lock_done\n";
    Asm += "        add     r1, r4, r9\n";
    Asm += formatString("        andi    r1, r1, #%u\n",
                        Params.NumLocks - 1);
    Asm += "        lsli    r1, r1, #6\n"; // 64-byte lock stride.
    Asm += "        add     r1, r11, r1\n";
    Asm += "        bl      rt_mutex_lock\n";
    // Stores to the lock's cache line / page: under PST these are the
    // false-sharing stores of Section IV-B2 whenever a waiter's LL has
    // the lock page read-protected.
    for (unsigned Store = 0; Store < Params.LockedStores; ++Store)
      Asm += formatString("        std     r8, [r1, #%u]\n",
                          8 + 8 * (Store % 6));
    Asm += "        bl      rt_mutex_unlock\n";
    Asm += "        addi    r9, r9, #-1\n";
    Asm += "        b       lock_loop\n";
    Asm += "lock_done:\n";
  }

  // --- Serial section (canneal's limited parallelism). ----------------------
  if (Params.SerialSection) {
    Asm += R"(        la      r1, serial_lock
        bl      rt_mutex_lock
        li      r9, #48
serial_loop:
        cbz     r9, serial_done
        addi    r8, r8, #0x35
        eori    r8, r8, #0x5c
        std     r8, [r1, #8]
        addi    r9, r9, #-1
        b       serial_loop
serial_done:
        bl      rt_mutex_unlock
)";
  }

  // --- Barrier cadence. -------------------------------------------------------
  if (Params.BarrierEvery) {
    Asm += formatString("        li      r1, #%u\n", Params.BarrierEvery);
    Asm += R"(        urem    r2, r4, r1
        cbnz    r2, skip_barrier
        mov     r1, r12
        bl      rt_barrier_wait
skip_barrier:
)";
  }

  Asm += R"(        addi    r4, r4, #-1
        b       outer_loop
kernel_done:
        halt

; ---- shared data (page-separated for the PST page-granularity effects) --
        .align  4096
shared_counters:
        .space  64
        .align  4096
shared_locks:
)";
  Asm += formatString("        .space  %u\n", Params.NumLocks * 64);
  Asm += R"(        .align  4096
barrier_var:
        .word   0
        .word   0
        .align  4096
serial_lock:
        .word   0
        .space  60
)";

  return guest::assemble(Asm);
}
