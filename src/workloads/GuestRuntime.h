//===- workloads/GuestRuntime.h - Guest-side runtime library ----*- C++-*-===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reusable GRV assembly routines shared by the workloads: an LL/SC spin
/// mutex, a sense-reversing barrier, and atomic fetch-add — the same
/// synchronization idioms PARSEC binaries exercise through libc/pthreads
/// on real ARM (Section II-A: "often used in system libraries for critical
/// sections and functions such as atomic_add and mutex_lock").
///
/// Note the deliberate use of *plain* stores for mutex_unlock and the
/// barrier generation bump: the paper's code analysis found shared data is
/// updated by normal stores only by the lock owner, which is exactly the
/// property HST-WEAK relies on (Section III-C).
///
/// Calling convention: `bl` sets lr; routines clobber only the registers
/// documented per routine; arguments in r1..r3.
///
//===----------------------------------------------------------------------===//

#ifndef LLSC_WORKLOADS_GUESTRUNTIME_H
#define LLSC_WORKLOADS_GUESTRUNTIME_H

#include <string>

namespace llsc {
namespace workloads {

/// \returns the runtime's assembly text. Prepend it to a program and jump
/// over it (it starts with a branch to `_start`, which the caller defines
/// after the runtime).
///
/// Provided routines:
///   rt_mutex_lock    r1 = &lock        clobbers r2, r3
///   rt_mutex_unlock  r1 = &lock        clobbers r2
///   rt_barrier_wait  r1 = &barrier     clobbers r2, r3, r5, r6
///                    (barrier: 4-byte count then 4-byte generation)
///   rt_atomic_add_w  r1 = &word, r2 = delta; returns old value in r3;
///                    clobbers r5, r6
///   rt_atomic_add_d  like rt_atomic_add_w for 8-byte values
///   rt_ticket_lock   r1 = &{next:4, serving:4}; FIFO-fair lock;
///                    clobbers r2, r3, r5, r6
///   rt_ticket_unlock r1 = &{next:4, serving:4}; clobbers r2
std::string guestRuntimeAsm();

} // namespace workloads
} // namespace llsc

#endif // LLSC_WORKLOADS_GUESTRUNTIME_H
