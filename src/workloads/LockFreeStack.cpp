//===- workloads/LockFreeStack.cpp - ABA micro-benchmark -----------------------===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//

#include "workloads/LockFreeStack.h"

#include "guest/Assembler.h"
#include "mem/GuestMemory.h"
#include "support/BitUtils.h"
#include "support/StringUtils.h"

#include <set>

using namespace llsc;
using namespace llsc::workloads;

ErrorOr<guest::Program>
workloads::buildLockFreeStack(const LockFreeStackParams &Params) {
  if (Params.YieldEveryNPops && !isPowerOf2(Params.YieldEveryNPops))
    return makeError("YieldEveryNPops must be 0 or a power of two");
  if (Params.HoldYieldEveryN && !isPowerOf2(Params.HoldYieldEveryN))
    return makeError("HoldYieldEveryN must be 0 or a power of two");
  if (Params.BatchDepth < 1 || Params.BatchDepth > 2)
    return makeError("BatchDepth must be 1 or 2");

  // Register plan: r10 = &stack_top, r9 = iteration countdown,
  // r8/r11/r12 = per-thread LCG for pseudo-random yield points,
  // r5/r6 = held nodes, r1..r4 = pop/push scratch, lr = call linkage.
  std::string Asm;
  Asm += "; lock-free stack ABA micro-benchmark (paper Figures 2/3)\n";
  Asm += "_start:\n";
  Asm += "        la      r10, stack_top\n";
  Asm += formatString("        li      r9, #%llu\n",
                      static_cast<unsigned long long>(
                          Params.IterationsPerThread));
  // Yield decisions come from a per-thread LCG: deterministic counters
  // make all threads rotate in lockstep, where the pop/push involution
  // restores the stack at every switch point and the A-B-A interleaving
  // never forms. Tid-seeded pseudo-random yields decorrelate the threads
  // the way true parallel overlap does on the paper's 52-core host.
  if (Params.YieldEveryNPops || Params.HoldYieldEveryN) {
    Asm += "        li      r11, #0x5851f42d4c957f2d ; LCG multiplier\n";
    Asm += "        li      r12, #0x14057b7ef767814f ; LCG increment\n";
    Asm += "        addi    r8, r0, #1\n";
    Asm += "        li      r2, #0x9e3779b97f4a7c15\n";
    Asm += "        mul     r8, r8, r2          ; seed from tid\n";
  }
  Asm += R"(main_loop:
        cbz     r9, done
        bl      stack_pop           ; r1 = node (0 if empty)
        cbz     r1, iter_next
        mov     r5, r1
)";
  if (Params.BatchDepth == 2) {
    Asm += "        bl      stack_pop           ; r6 = second node (may be 0)\n";
    Asm += "        mov     r6, r1\n";
  }
  if (Params.HoldYieldEveryN) {
    // Park while holding popped node(s) on a pseudo-random 1-in-N of
    // iterations (distinct LCG bits from the pop-window yield).
    Asm += "        lsri    r4, r8, #45\n";
    Asm += formatString("        andi    r4, r4, #%u\n",
                        Params.HoldYieldEveryN - 1);
    Asm += "        cbnz    r4, no_hold_yield\n";
    Asm += "        yield                        ; hold node(s) across a slice\n";
    Asm += "no_hold_yield:\n";
  }
  Asm += "        mov     r1, r5\n";
  Asm += "        bl      stack_push\n";
  if (Params.BatchDepth == 2) {
    Asm += "        cbz     r6, iter_next\n";
    Asm += "        mov     r1, r6\n";
    Asm += "        bl      stack_push\n";
  }
  Asm += R"(iter_next:
        addi    r9, r9, #-1
        b       main_loop
done:
        halt

; --- stack_pop: r1 = popped node or 0; clobbers r2, r3, r4 -----------
stack_pop:
)";
  if (Params.YieldEveryNPops || Params.HoldYieldEveryN) {
    Asm += "        mul     r8, r8, r11         ; advance the LCG\n";
    Asm += "        add     r8, r8, r12\n";
  }
  Asm += R"(        ldxr.d  r1, [r10]           ; LL(top)
        cbz     r1, pop_fail
        ldd     r2, [r1]            ; new_top = top->next (plain load)
)";
  if (Params.YieldEveryNPops) {
    // Widen the A-B-A window on a pseudo-random 1-in-N of attempts.
    Asm += "        lsri    r4, r8, #33\n";
    Asm += formatString("        andi    r4, r4, #%u\n",
                        Params.YieldEveryNPops - 1);
    Asm += "        cbnz    r4, no_window_yield\n";
    Asm += "        yield                        ; widen the A-B-A window\n";
    Asm += "no_window_yield:\n";
  }
  Asm += R"(        stxr.d  r3, r2, [r10]       ; SC(top = new_top)
        cbnz    r3, stack_pop
        ret
pop_fail:
        clrex
        movz    r1, #0
        ret

; --- stack_push: pushes r1; clobbers r2, r3 ----------------------------
stack_push:
        ldxr.d  r2, [r10]           ; LL(top)
        std     r2, [r1]            ; node->next = top (plain store)
        stxr.d  r3, r1, [r10]       ; SC(top = node)
        cbnz    r3, stack_push
        ret

; --- data: the top pointer lives on its own page (PST page granularity) --
        .align  4096
stack_top:
)";
  Asm += "        .quad   nodes\n";
  Asm += "        .align  4096\n";
  Asm += "nodes:\n";
  for (unsigned Node = 0; Node < Params.NumNodes; ++Node) {
    if (Node + 1 < Params.NumNodes)
      Asm += formatString("        .quad   nodes+%u\n", (Node + 1) * 16);
    else
      Asm += "        .quad   0\n";
    Asm += formatString("        .quad   %u\n", Node + 1); // Payload.
  }

  return guest::assemble(Asm);
}

StackCheckResult
workloads::checkLockFreeStack(GuestMemory &Mem, const guest::Program &Prog,
                              const LockFreeStackParams &Params) {
  StackCheckResult Result;
  uint64_t TopAddr = Prog.requiredSymbol("stack_top");
  uint64_t NodesBase = Prog.requiredSymbol("nodes");
  uint64_t NodesEnd = NodesBase + Params.NumNodes * 16ULL;

  auto IsNode = [&](uint64_t Addr) {
    return Addr >= NodesBase && Addr < NodesEnd && (Addr - NodesBase) % 16 == 0;
  };

  // The paper's tell-tale: entries whose next pointer is themselves.
  for (unsigned Node = 0; Node < Params.NumNodes; ++Node) {
    uint64_t Addr = NodesBase + Node * 16ULL;
    if (Mem.shadowLoad(Addr, 8) == Addr)
      Result.SelfLoops++;
  }
  Result.SelfLoopPct =
      100.0 * static_cast<double>(Result.SelfLoops) / Params.NumNodes;

  // Walk the final list.
  std::set<uint64_t> Visited;
  uint64_t Cursor = Mem.shadowLoad(TopAddr, 8);
  while (Cursor != 0) {
    if (!IsNode(Cursor)) {
      Result.BadPointer = true;
      break;
    }
    if (!Visited.insert(Cursor).second) {
      Result.CycleDetected = true;
      break;
    }
    Cursor = Mem.shadowLoad(Cursor, 8);
  }
  Result.NodesReachable = Visited.size();
  if (!Result.CycleDetected && !Result.BadPointer &&
      Result.NodesReachable <= Params.NumNodes)
    Result.NodesLost = Params.NumNodes - Result.NodesReachable;

  Result.Corrupted = Result.SelfLoops > 0 || Result.CycleDetected ||
                     Result.BadPointer || Result.NodesLost > 0;
  return Result;
}

ErrorOr<guest::Program>
workloads::buildTaggedLockFreeStack(const LockFreeStackParams &Params) {
  if (Params.YieldEveryNPops && !isPowerOf2(Params.YieldEveryNPops))
    return makeError("YieldEveryNPops must be 0 or a power of two");
  if (Params.HoldYieldEveryN && !isPowerOf2(Params.HoldYieldEveryN))
    return makeError("HoldYieldEveryN must be 0 or a power of two");
  if (Params.BatchDepth < 1 || Params.BatchDepth > 2)
    return makeError("BatchDepth must be 1 or 2");

  // Register plan: r10 = &top, r9 = iteration countdown, r8/r11/r12 LCG,
  // r7 = nodes base, r6 = 0xffffffff mask, r5 = first held index,
  // r15 = SC status / second held index, r1..r4 scratch.
  //
  // top packs {tag:32, index+1:32}; index 0 means empty. A node is 16
  // bytes: {next index:4, pad:4, payload:8}.
  std::string Asm;
  Asm += "; tagged lock-free stack: the version-number ABA defense [13]\n";
  Asm += "_start:\n";
  Asm += "        la      r10, stack_top\n";
  Asm += "        la      r7, nodes\n";
  Asm += "        li      r6, #0xffffffff\n";
  Asm += formatString("        li      r9, #%llu\n",
                      static_cast<unsigned long long>(
                          Params.IterationsPerThread));
  if (Params.YieldEveryNPops || Params.HoldYieldEveryN) {
    Asm += "        li      r11, #0x5851f42d4c957f2d ; LCG multiplier\n";
    Asm += "        li      r12, #0x14057b7ef767814f ; LCG increment\n";
    Asm += "        addi    r8, r0, #1\n";
    Asm += "        li      r2, #0x9e3779b97f4a7c15\n";
    Asm += "        mul     r8, r8, r2          ; seed from tid\n";
  }
  Asm += R"(main_loop:
        cbz     r9, done
        bl      tstack_pop          ; r1 = popped index (0 if empty)
        cbz     r1, iter_next
        mov     r5, r1
)";
  if (Params.BatchDepth == 2) {
    Asm += "        bl      tstack_pop\n";
    Asm += "        mov     r15, r1             ; second held index\n";
  }
  if (Params.HoldYieldEveryN) {
    Asm += "        lsri    r4, r8, #45\n";
    Asm += formatString("        andi    r4, r4, #%u\n",
                        Params.HoldYieldEveryN - 1);
    Asm += "        cbnz    r4, no_hold_yield\n";
    Asm += "        yield\n";
    Asm += "no_hold_yield:\n";
  }
  Asm += "        mov     r1, r5\n";
  Asm += "        bl      tstack_push\n";
  if (Params.BatchDepth == 2) {
    Asm += "        cbz     r15, iter_next\n";
    Asm += "        mov     r1, r15\n";
    Asm += "        bl      tstack_push\n";
  }
  Asm += R"(iter_next:
        addi    r9, r9, #-1
        b       main_loop
done:
        halt

; --- tstack_pop: r1 = popped index or 0; clobbers r2, r3, r4 ----------
tstack_pop:
)";
  if (Params.YieldEveryNPops || Params.HoldYieldEveryN) {
    Asm += "        mul     r8, r8, r11\n";
    Asm += "        add     r8, r8, r12\n";
  }
  Asm += R"(        ldxr.d  r1, [r10]           ; LL({tag, index})
        and     r2, r1, r6          ; index
        cbz     r2, tpop_fail
        addi    r3, r2, #-1
        lsli    r3, r3, #4
        add     r3, r3, r7          ; &node
        ldw     r4, [r3]            ; next index (plain load)
)";
  if (Params.YieldEveryNPops) {
    Asm += "        lsri    r3, r8, #33\n";
    Asm += formatString("        andi    r3, r3, #%u\n",
                        Params.YieldEveryNPops - 1);
    Asm += "        cbnz    r3, tpop_no_yield\n";
    Asm += "        yield                        ; widen the A-B-A window\n";
    Asm += "tpop_no_yield:\n";
  }
  Asm += R"(        lsri    r3, r1, #32          ; tag
        addi    r3, r3, #1
        lsli    r3, r3, #32
        orr     r3, r3, r4          ; new top = {tag+1, next}
        mov     r1, r2              ; stash popped index
        stxr.d  r4, r3, [r10]       ; SC
        cbnz    r4, tstack_pop
        ret
tpop_fail:
        clrex
        movz    r1, #0
        ret

; --- tstack_push: pushes index r1; clobbers r2, r3, r4 ------------------
tstack_push:
        addi    r3, r1, #-1
        lsli    r3, r3, #4
        add     r3, r3, r7          ; &node
tpush_retry:
        ldxr.d  r2, [r10]           ; LL({tag, index})
        and     r4, r2, r6          ; current index
        stw     r4, [r3]            ; node.next = current (plain store)
        lsri    r2, r2, #32
        addi    r2, r2, #1
        lsli    r2, r2, #32
        orr     r2, r2, r1          ; new top = {tag+1, this index}
        stxr.d  r4, r2, [r10]
        cbnz    r4, tpush_retry
        ret

; --- data ----------------------------------------------------------------
        .align  4096
stack_top:
)";
  // Initial top: tag 0, index 1 (first node).
  Asm += "        .quad   1\n";
  Asm += "        .align  4096\n";
  Asm += "nodes:\n";
  for (unsigned Node = 0; Node < Params.NumNodes; ++Node) {
    // next index: Node+2, or 0 for the last. Stored as a 4-byte field
    // followed by 4 bytes of padding and an 8-byte payload.
    unsigned Next = Node + 1 < Params.NumNodes ? Node + 2 : 0;
    Asm += formatString("        .word   %u\n", Next);
    Asm += "        .word   0\n";
    Asm += formatString("        .quad   %u\n", Node + 1);
  }

  return guest::assemble(Asm);
}

StackCheckResult
workloads::checkTaggedLockFreeStack(GuestMemory &Mem,
                                    const guest::Program &Prog,
                                    const LockFreeStackParams &Params) {
  StackCheckResult Result;
  uint64_t TopAddr = Prog.requiredSymbol("stack_top");
  uint64_t NodesBase = Prog.requiredSymbol("nodes");

  // Self-loop scan: node whose next index points at itself.
  for (unsigned Node = 0; Node < Params.NumNodes; ++Node) {
    uint64_t NextIdx = Mem.shadowLoad(NodesBase + Node * 16ULL, 4);
    if (NextIdx == Node + 1)
      Result.SelfLoops++;
  }
  Result.SelfLoopPct =
      100.0 * static_cast<double>(Result.SelfLoops) / Params.NumNodes;

  std::set<uint64_t> Visited;
  uint64_t Index = Mem.shadowLoad(TopAddr, 8) & 0xffffffffULL;
  while (Index != 0) {
    if (Index > Params.NumNodes) {
      Result.BadPointer = true;
      break;
    }
    if (!Visited.insert(Index).second) {
      Result.CycleDetected = true;
      break;
    }
    Index = Mem.shadowLoad(NodesBase + (Index - 1) * 16ULL, 4);
  }
  Result.NodesReachable = Visited.size();
  if (!Result.CycleDetected && !Result.BadPointer &&
      Result.NodesReachable <= Params.NumNodes)
    Result.NodesLost = Params.NumNodes - Result.NodesReachable;

  Result.Corrupted = Result.SelfLoops > 0 || Result.CycleDetected ||
                     Result.BadPointer || Result.NodesLost > 0;
  return Result;
}
