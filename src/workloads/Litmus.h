//===- workloads/Litmus.h - Atomicity litmus sequences ----------*- C++-*-===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic replay of the paper's Section IV-A event sequences:
///
///   Seq1: LLa(x(c)) -> Sb(x,d) -> Sb(x,c)              -> SCa(x(c,#))
///   Seq2: LLa(x(c)) -> LLb -> SCb(c,d) -> LLb -> SCb(d,c) -> SCa
///   Seq3: LLa(x(c)) -> LLb -> SCb(c,d) -> Sb(x,c)      -> SCa
///   Seq4: LLa(x(c)) -> Sb(x,d) -> LLb -> SCb(d,c)      -> SCa
///
/// Under the architectural LL/SC semantics every final SCa must FAIL.
/// A scheme that lets SCa succeed on Seq1 only is *weak*; on any of
/// Seq2–Seq4 it is *incorrect* (this is how Table II's atomicity column
/// is derived).
///
/// Events are executed through the real pipeline: each LL/SC/store is a
/// tiny translated guest fragment run on the owning vCPU, so scheme
/// instrumentation (inline IR, helpers, mprotect, HTM) is exercised
/// exactly as in full runs.
///
//===----------------------------------------------------------------------===//

#ifndef LLSC_WORKLOADS_LITMUS_H
#define LLSC_WORKLOADS_LITMUS_H

#include "core/Machine.h"

#include <array>
#include <string>

namespace llsc {
namespace workloads {

/// Executes single guest operations (LL, SC, plain store) on chosen vCPUs
/// of a machine, through the translator and engine.
class LitmusDriver {
public:
  /// Prepares \p M with the fragment program in the machine's configured
  /// guest ISA (MachineConfig::Arch): GRV assembly, or machine-code RV32IA
  /// fragments (lr.w/sc.w), so the same sequences classify a scheme through
  /// either frontend. The machine must have been created with at least 2
  /// threads; existing program state is replaced. The 8-byte window
  /// variants (loadLinkAt/storeCondAt with Size == 8) are GRV-only — RV32's
  /// A extension has no 64-bit word form on a 32-bit guest.
  static ErrorOr<LitmusDriver> create(Machine &M);

  /// Bytes of the shared window sized operations may address.
  static constexpr unsigned WindowBytes = 16;

  /// Resets the shared window (zeroed, \p Value at offset 0) and clears
  /// scheme state.
  void resetVar(uint32_t Value);

  /// Performs an LL of the shared variable on thread \p Tid; \returns the
  /// loaded value.
  uint32_t loadLink(unsigned Tid);

  /// Performs an SC of \p Value on thread \p Tid. \returns true on success.
  bool storeCond(unsigned Tid, uint32_t Value);

  /// Performs a plain store of \p Value on thread \p Tid.
  void plainStore(unsigned Tid, uint32_t Value);

  // Sized/offset variants over the 16-byte shared window — the
  // multi-granule surface the aliased 4-byte entry points cannot reach
  // (8-byte accesses, granule-straddling offsets, sub-word stores).

  /// LL of \p Size (4/8) bytes at window offset \p Offset.
  uint64_t loadLinkAt(unsigned Tid, unsigned Offset, unsigned Size);

  /// SC of \p Size (4/8) bytes at window offset \p Offset.
  bool storeCondAt(unsigned Tid, uint64_t Value, unsigned Offset,
                   unsigned Size);

  /// Plain store of \p Size (2/4/8) bytes at window offset \p Offset.
  void plainStoreAt(unsigned Tid, uint64_t Value, unsigned Offset,
                    unsigned Size);

  /// Current value of the shared variable.
  uint32_t varValue();

  /// \p Size bytes of the window at \p Offset.
  uint64_t varValueAt(unsigned Offset, unsigned Size);

  Machine &machine() { return M; }

private:
  explicit LitmusDriver(Machine &M) : M(M) {}

  void runFragment(unsigned Tid, uint64_t Pc);

  Machine &M;
  uint64_t LlPc = 0;
  uint64_t ScPc = 0;
  uint64_t StorePc = 0;
  uint64_t LlDPc = 0;
  uint64_t ScDPc = 0;
  uint64_t StoreDPc = 0;
  uint64_t StoreHPc = 0;
  uint64_t VarAddr = 0;
};

/// One Section IV-A sequence applied to a scheme.
struct LitmusOutcome {
  bool ScaFailed = false;  ///< Architecturally required: true.
  uint32_t FinalValue = 0; ///< Value of x after the sequence.
};

/// Runs sequence \p SeqNo (1..4) and reports whether the final SCa failed.
LitmusOutcome runLitmusSequence(LitmusDriver &Driver, int SeqNo);

/// Classification derived from the four sequences.
enum class MeasuredAtomicity { Incorrect, Weak, Strong };

/// Runs all four sequences and classifies the scheme (Table II column).
MeasuredAtomicity classifyScheme(LitmusDriver &Driver);

/// Human-readable name for a classification.
const char *measuredAtomicityName(MeasuredAtomicity Class);

} // namespace workloads
} // namespace llsc

#endif // LLSC_WORKLOADS_LITMUS_H
