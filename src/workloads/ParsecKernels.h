//===- workloads/ParsecKernels.h - PARSEC-like guest kernels ----*- C++-*-===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Synthetic guest kernels standing in for the eight PARSEC 3.0 programs
/// of the paper's evaluation (simlarge inputs on ARM). The real benchmarks
/// cannot be cross-compiled into GRV; what drives every result in Figures
/// 10–12 and Table I is the *mix* of plain stores vs LL/SC operations,
/// lock contention, and barrier cadence — so each kernel reproduces its
/// benchmark's published character:
///
///   - store:LL/SC ratios spanning the paper's 88x..3000x range (Table I),
///   - blackscholes/x264: embarrassingly parallel, almost no atomics;
///   - bodytrack/facesim: barrier-phased ("U"-shaped scaling, §IV-B2);
///   - fluidanimate: very frequent fine-grained (striped) locks;
///   - freqmine/swaptions: contended atomic counters;
///   - canneal: a serial section bounding parallelism (~30%, §IV).
///
/// The substitution is documented in DESIGN.md §5; Table I is regenerated
/// from the engine's *measured* instruction-mix counters, not from these
/// parameters.
///
//===----------------------------------------------------------------------===//

#ifndef LLSC_WORKLOADS_PARSECKERNELS_H
#define LLSC_WORKLOADS_PARSECKERNELS_H

#include "guest/Program.h"

#include "support/Error.h"

#include <cstdint>
#include <string>
#include <vector>

namespace llsc {
namespace workloads {

/// Shape of one synthetic kernel (per guest thread).
struct KernelParams {
  std::string Name;
  uint64_t OuterIters;       ///< Outer iterations per thread (at Scale=1).
  unsigned ComputeOps;       ///< ALU ops per iteration.
  unsigned PrivateStores;    ///< Plain stores to thread-private memory.
  unsigned SharedAtomicAdds; ///< rt_atomic_add_w calls per iteration.
  unsigned LockedSections;   ///< Mutex acquire/release pairs per iteration.
  unsigned LockedStores;     ///< Plain stores inside each critical section.
  unsigned NumLocks;         ///< Lock striping (1 = fully contended).
  unsigned BarrierEvery;     ///< Barrier each N iterations (0 = never).
  bool SerialSection;        ///< canneal-style serialized portion.
};

/// \returns the eight kernels in the paper's benchmark order.
const std::vector<KernelParams> &parsecKernels();

/// Finds a kernel by name (case-insensitive). \returns nullptr if unknown.
const KernelParams *findKernel(std::string_view Name);

/// Builds the guest program for \p Params; \p Scale multiplies OuterIters.
/// The program uses the guest runtime (GuestRuntime.h) and the standard
/// entry conventions (r0 = tid).
ErrorOr<guest::Program> buildKernel(const KernelParams &Params,
                                    double Scale = 1.0);

} // namespace workloads
} // namespace llsc

#endif // LLSC_WORKLOADS_PARSECKERNELS_H
