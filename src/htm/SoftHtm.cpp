//===- htm/SoftHtm.cpp - Single-global-lock HTM emulation --------------------===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//

#include "htm/Htm.h"

#include "support/Compiler.h"

#include <cassert>
#include <vector>

using namespace llsc;

namespace {

/// Cache-line padded per-thread transaction slot.
struct alignas(64) TxSlot {
  std::atomic<bool> Active{false};
  std::atomic<bool> Doomed{false};
  std::atomic<uint64_t> WatchGranuleAddr{0};
  uint64_t Footprint = 0;
};

class SoftHtm final : public HtmRuntime {
public:
  explicit SoftHtm(const SoftHtmConfig &Config)
      : Config(Config), Slots(Config.MaxThreads) {}

  const char *name() const override { return "soft-htm"; }

  TxStatus begin(unsigned Tid, uint64_t WatchAddr) override {
    assert(Tid < Slots.size() && "tid out of range");
    TxSlot &Slot = Slots[Tid];
    assert(!Slot.Active.load(std::memory_order_relaxed) &&
           "nested transactions are not supported");

    const HtmRegistryCounters &Reg = HtmRegistryCounters::get();
    Begins.fetch_add(1, std::memory_order_relaxed);
    Reg.Begins->fetch_add(1, std::memory_order_relaxed);

    // Bounded spin on the global commit lock; giving up is a conflict
    // abort, so the abort rate grows with contention like real HTM.
    unsigned Spins = 0;
    bool Expected = false;
    while (!GlobalLock.compare_exchange_weak(Expected, true,
                                             std::memory_order_acquire,
                                             std::memory_order_relaxed)) {
      Expected = false;
      if (++Spins >= Config.BeginSpinLimit) {
        ConflictAborts.fetch_add(1, std::memory_order_relaxed);
        Reg.ConflictAborts->fetch_add(1, std::memory_order_relaxed);
        return TxStatus::AbortConflict;
      }
#if defined(__x86_64__) || defined(__i386__)
      __builtin_ia32_pause();
#endif
    }

    Slot.Doomed.store(false, std::memory_order_relaxed);
    Slot.WatchGranuleAddr.store(WatchAddr / Config.WatchGranule,
                                std::memory_order_relaxed);
    Slot.Footprint = 0;
    Slot.Active.store(true, std::memory_order_release);
    ActiveCount.fetch_add(1, std::memory_order_release);
    return TxStatus::Started;
  }

  bool commit(unsigned Tid) override {
    TxSlot &Slot = Slots[Tid];
    assert(Slot.Active.load(std::memory_order_relaxed) &&
           "commit without transaction");
    bool Doomed = Slot.Doomed.load(std::memory_order_acquire);
    release(Slot);
    if (Doomed)
      return false;
    Commits.fetch_add(1, std::memory_order_relaxed);
    HtmRegistryCounters::get().Commits->fetch_add(1,
                                                  std::memory_order_relaxed);
    return true;
  }

  void abort(unsigned Tid) override {
    TxSlot &Slot = Slots[Tid];
    if (!Slot.Active.load(std::memory_order_relaxed))
      return;
    release(Slot);
  }

  bool inTransaction(unsigned Tid) const override {
    return Slots[Tid].Active.load(std::memory_order_relaxed);
  }

  void noteFootprint(unsigned Tid, uint64_t Units) override {
    TxSlot &Slot = Slots[Tid];
    if (!Slot.Active.load(std::memory_order_relaxed))
      return;
    Slot.Footprint += Units;
    if (Slot.Footprint > Config.CapacityLimit) {
      Slot.Doomed.store(true, std::memory_order_release);
      CapacityAborts.fetch_add(1, std::memory_order_relaxed);
      HtmRegistryCounters::get().CapacityAborts->fetch_add(
          1, std::memory_order_relaxed);
    }
  }

  void notifyStore(uint64_t Addr) override {
    // Fast path: no transaction anywhere.
    if (ActiveCount.load(std::memory_order_acquire) == 0)
      return;
    uint64_t Granule = Addr / Config.WatchGranule;
    for (TxSlot &Slot : Slots) {
      if (!Slot.Active.load(std::memory_order_acquire))
        continue;
      if (Slot.WatchGranuleAddr.load(std::memory_order_relaxed) == Granule) {
        Slot.Doomed.store(true, std::memory_order_release);
        StoreDooms.fetch_add(1, std::memory_order_relaxed);
        HtmRegistryCounters::get().StoreDooms->fetch_add(
            1, std::memory_order_relaxed);
      }
    }
  }

  bool needsStoreNotification() const override { return true; }

  HtmStats stats() const override {
    HtmStats Stats;
    Stats.Begins = Begins.load(std::memory_order_relaxed);
    Stats.Commits = Commits.load(std::memory_order_relaxed);
    Stats.ConflictAborts = ConflictAborts.load(std::memory_order_relaxed);
    Stats.CapacityAborts = CapacityAborts.load(std::memory_order_relaxed);
    Stats.StoreDooms = StoreDooms.load(std::memory_order_relaxed);
    return Stats;
  }

  void resetStats() override {
    Begins = 0;
    Commits = 0;
    ConflictAborts = 0;
    CapacityAborts = 0;
    StoreDooms = 0;
  }

private:
  void release(TxSlot &Slot) {
    Slot.Active.store(false, std::memory_order_release);
    ActiveCount.fetch_sub(1, std::memory_order_release);
    GlobalLock.store(false, std::memory_order_release);
  }

  SoftHtmConfig Config;
  std::vector<TxSlot> Slots;
  std::atomic<bool> GlobalLock{false};
  std::atomic<int> ActiveCount{0};

  std::atomic<uint64_t> Begins{0};
  std::atomic<uint64_t> Commits{0};
  std::atomic<uint64_t> ConflictAborts{0};
  std::atomic<uint64_t> CapacityAborts{0};
  std::atomic<uint64_t> StoreDooms{0};
};

} // namespace

std::unique_ptr<HtmRuntime> llsc::createSoftHtm(const SoftHtmConfig &Config) {
  return std::make_unique<SoftHtm>(Config);
}
