//===- htm/HardwareHtm.cpp - Intel RTM backend -------------------------------===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
// This translation unit is compiled with -mrtm when the compiler supports
// it (see CMakeLists.txt); availability is still probed at runtime because
// many virtualized environments advertise the CPUID bit but abort every
// transaction.
//
//===----------------------------------------------------------------------===//

#include "htm/Htm.h"

#include "support/Logging.h"
#include "support/Stats.h"

#include <cassert>
#include <vector>

#if defined(LLSC_HAVE_RTM) && (defined(__x86_64__) || defined(__i386__))
#include <cpuid.h>
#include <immintrin.h>
#define LLSC_RTM_COMPILED 1
#else
#define LLSC_RTM_COMPILED 0
#endif

using namespace llsc;

#if LLSC_RTM_COMPILED

namespace {

bool cpuidHasRtm() {
  unsigned Eax = 0, Ebx = 0, Ecx = 0, Edx = 0;
  if (!__get_cpuid_count(7, 0, &Eax, &Ebx, &Ecx, &Edx))
    return false;
  return (Ebx & (1u << 11)) != 0; // CPUID.07H.EBX.RTM.
}

class HardwareHtm final : public HtmRuntime {
public:
  explicit HardwareHtm(unsigned MaxThreads) : InTx(MaxThreads) {
    for (auto &Flag : InTx)
      Flag.store(false, std::memory_order_relaxed);
  }

  const char *name() const override { return "rtm"; }

  TxStatus begin(unsigned Tid, uint64_t WatchAddr) override {
    (void)WatchAddr; // Hardware tracks the read/write set itself.
    const HtmRegistryCounters &Reg = HtmRegistryCounters::get();
    Begins.fetch_add(1, std::memory_order_relaxed);
    Reg.Begins->fetch_add(1, std::memory_order_relaxed);
    // The registry increments must stay outside the transaction: a
    // counter touched between _xbegin and an abort would be rolled back
    // (and would widen the write set).
    unsigned Status = _xbegin();
    if (Status == _XBEGIN_STARTED) {
      InTx[Tid].store(true, std::memory_order_relaxed);
      return TxStatus::Started;
    }
    if (Status & _XABORT_CONFLICT) {
      ConflictAborts.fetch_add(1, std::memory_order_relaxed);
      Reg.ConflictAborts->fetch_add(1, std::memory_order_relaxed);
      return TxStatus::AbortConflict;
    }
    if (Status & _XABORT_CAPACITY) {
      CapacityAborts.fetch_add(1, std::memory_order_relaxed);
      Reg.CapacityAborts->fetch_add(1, std::memory_order_relaxed);
      return TxStatus::AbortCapacity;
    }
    ConflictAborts.fetch_add(1, std::memory_order_relaxed);
    Reg.ConflictAborts->fetch_add(1, std::memory_order_relaxed);
    return TxStatus::AbortOther;
  }

  bool commit(unsigned Tid) override {
    // If we are still transactional, commit succeeds; if the transaction
    // already aborted, control never reaches here (execution resumed at
    // _xbegin), so this is unconditionally a commit.
    if (_xtest()) {
      _xend();
      InTx[Tid].store(false, std::memory_order_relaxed);
      Commits.fetch_add(1, std::memory_order_relaxed);
      HtmRegistryCounters::get().Commits->fetch_add(1,
                                                    std::memory_order_relaxed);
      return true;
    }
    InTx[Tid].store(false, std::memory_order_relaxed);
    return false;
  }

  void abort(unsigned Tid) override {
    InTx[Tid].store(false, std::memory_order_relaxed);
    if (_xtest())
      _xabort(0xff);
  }

  bool inTransaction(unsigned Tid) const override {
    return InTx[Tid].load(std::memory_order_relaxed);
  }

  HtmStats stats() const override {
    HtmStats Stats;
    Stats.Begins = Begins.load(std::memory_order_relaxed);
    Stats.Commits = Commits.load(std::memory_order_relaxed);
    Stats.ConflictAborts = ConflictAborts.load(std::memory_order_relaxed);
    Stats.CapacityAborts = CapacityAborts.load(std::memory_order_relaxed);
    return Stats;
  }

  void resetStats() override {
    Begins = 0;
    Commits = 0;
    ConflictAborts = 0;
    CapacityAborts = 0;
  }

private:
  std::vector<std::atomic<bool>> InTx;
  std::atomic<uint64_t> Begins{0};
  std::atomic<uint64_t> Commits{0};
  std::atomic<uint64_t> ConflictAborts{0};
  std::atomic<uint64_t> CapacityAborts{0};
};

/// Executes one trivial transaction to check RTM actually works here.
bool probeRtmWorks() {
  if (!cpuidHasRtm())
    return false;
  for (int Attempt = 0; Attempt < 10; ++Attempt) {
    unsigned Status = _xbegin();
    if (Status == _XBEGIN_STARTED) {
      _xend();
      return true;
    }
  }
  return false;
}

} // namespace

bool llsc::hardwareHtmUsable() {
  static const bool Usable = probeRtmWorks();
  return Usable;
}

std::unique_ptr<HtmRuntime> llsc::createHardwareHtm(unsigned MaxThreads) {
  if (!hardwareHtmUsable())
    return nullptr;
  return std::make_unique<HardwareHtm>(MaxThreads);
}

#else // !LLSC_RTM_COMPILED

bool llsc::hardwareHtmUsable() { return false; }

std::unique_ptr<HtmRuntime> llsc::createHardwareHtm(unsigned MaxThreads) {
  (void)MaxThreads;
  return nullptr;
}

#endif // LLSC_RTM_COMPILED

const HtmRegistryCounters &HtmRegistryCounters::get() {
  static const HtmRegistryCounters Counters = [] {
    CounterRegistry &R = CounterRegistry::instance();
    return HtmRegistryCounters{
        R.counter("htm.raw.begins"),
        R.counter("htm.raw.commits"),
        R.counter("htm.raw.aborts.conflict"),
        R.counter("htm.raw.aborts.capacity"),
        R.counter("htm.raw.store_dooms"),
    };
  }();
  return Counters;
}

std::unique_ptr<HtmRuntime>
llsc::createBestHtm(const SoftHtmConfig &SoftConfig) {
  if (auto Hw = createHardwareHtm(SoftConfig.MaxThreads)) {
    LLSC_INFO("using hardware RTM for HTM-based schemes");
    return Hw;
  }
  LLSC_INFO("hardware RTM unavailable; using the software HTM model");
  return createSoftHtm(SoftConfig);
}
