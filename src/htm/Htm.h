//===- htm/Htm.h - Hardware transactional memory runtime --------*- C++-*-===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// HTM abstraction used by the HST-HTM and PICO-HTM schemes.
///
/// Two backends:
///  - HardwareHtm: Intel RTM (xbegin/xend), selected when the CPU supports
///    it at runtime.
///  - SoftHtm: a single-global-lock HTM emulation with a calibrated abort
///    model. Transactions acquire a global spin lock with bounded spinning
///    (failure => conflict abort, so abort rate grows with contention,
///    mirroring TSX under load); plain stores doom transactions watching
///    the stored address (strong-atomicity conflict detection); and a
///    footprint model aborts transactions that cover too much emulator
///    work — reproducing the paper's observation that PICO-HTM, whose
///    transactions span the translator/interpreter code between LL and SC,
///    suffers abort storms and livelocks beyond ~8 threads (Section IV-B).
///
/// The substitution is documented in DESIGN.md §5.
///
//===----------------------------------------------------------------------===//

#ifndef LLSC_HTM_HTM_H
#define LLSC_HTM_HTM_H

#include <atomic>
#include <cstdint>
#include <memory>

namespace llsc {

/// Result of beginning (or running) a transaction.
enum class TxStatus : uint8_t {
  Started,       ///< Transaction is running.
  AbortConflict, ///< Another thread conflicted.
  AbortCapacity, ///< Footprint exceeded capacity.
  AbortOther,
};

/// Aggregate HTM statistics.
struct HtmStats {
  uint64_t Begins = 0;
  uint64_t Commits = 0;
  uint64_t ConflictAborts = 0;
  uint64_t CapacityAborts = 0;
  uint64_t StoreDooms = 0; ///< Transactions doomed by plain stores (soft).
};

/// CounterRegistry pointers for backend-level HTM events, resolved once
/// (the cache-the-pointer contract of support/Stats.h). These mirror the
/// backends' own atomics under "htm.raw.*" names — the backend-level
/// truth, as opposed to the per-vCPU, scheme-attributed "htm.*" counters
/// in runtime/EventCounters.h (see docs/OBSERVABILITY.md).
struct HtmRegistryCounters {
  std::atomic<uint64_t> *Begins;
  std::atomic<uint64_t> *Commits;
  std::atomic<uint64_t> *ConflictAborts;
  std::atomic<uint64_t> *CapacityAborts;
  std::atomic<uint64_t> *StoreDooms;

  static const HtmRegistryCounters &get();
};

/// Abstract HTM backend. Thread ids index per-thread transaction slots and
/// must be < the MaxThreads the backend was created with.
class HtmRuntime {
public:
  virtual ~HtmRuntime() = default;

  virtual const char *name() const = 0;

  /// Begins a transaction on thread \p Tid that will validate/update guest
  /// address \p WatchAddr. \returns Started or an abort cause.
  virtual TxStatus begin(unsigned Tid, uint64_t WatchAddr) = 0;

  /// Attempts to commit. \returns false if the transaction was doomed (it
  /// is then already rolled back logically; the caller must retry).
  virtual bool commit(unsigned Tid) = 0;

  /// Explicitly aborts the running transaction of \p Tid.
  virtual void abort(unsigned Tid) = 0;

  /// \returns true if \p Tid currently has a transaction running.
  virtual bool inTransaction(unsigned Tid) const = 0;

  /// Accounts \p Units of emulator work to \p Tid's transaction footprint.
  /// The engine calls this per executed block while a vCPU is inside a
  /// PICO-HTM-style long transaction. May doom the transaction.
  virtual void noteFootprint(unsigned Tid, uint64_t Units) {}

  /// Plain-store conflict hook (software backend): dooms transactions
  /// watching \p Addr. Cheap no-op when no transaction is active.
  virtual void notifyStore(uint64_t Addr) {}

  /// \returns true if plain store paths must call notifyStore().
  virtual bool needsStoreNotification() const { return false; }

  virtual HtmStats stats() const = 0;
  virtual void resetStats() = 0;
};

/// Tuning knobs for the software backend.
struct SoftHtmConfig {
  unsigned MaxThreads = 64;
  /// Spin iterations before a begin() gives up with a conflict abort.
  unsigned BeginSpinLimit = 4096;
  /// Footprint units (emulator work) a transaction tolerates before a
  /// capacity abort. PICO-HTM's LL..SC transactions accumulate the
  /// interpreter work of every block they span; HST-HTM's SC-only
  /// transactions accumulate none.
  uint64_t CapacityLimit = 512;
  /// Watch granule in bytes for store-interference dooming.
  unsigned WatchGranule = 8;
};

/// Creates the software (single-global-lock) backend.
std::unique_ptr<HtmRuntime> createSoftHtm(const SoftHtmConfig &Config);

/// Creates the Intel RTM backend, or nullptr if the CPU lacks usable RTM.
std::unique_ptr<HtmRuntime> createHardwareHtm(unsigned MaxThreads);

/// \returns true if RTM transactions actually work on this machine (probed
/// by executing one, since virtualized environments often advertise the
/// CPUID bit while aborting every transaction).
bool hardwareHtmUsable();

/// Creates the hardware backend when usable, else the software backend.
std::unique_ptr<HtmRuntime> createBestHtm(const SoftHtmConfig &SoftConfig);

} // namespace llsc

#endif // LLSC_HTM_HTM_H
