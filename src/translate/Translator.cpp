//===- translate/Translator.cpp - Guest to IR translation ---------------------===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//

#include "translate/Translator.h"

#include "ir/IRBuilder.h"
#include "ir/IRVerifier.h"
#include "ir/Optimizer.h"
#include "mem/GuestMemory.h"

#include <cassert>

using namespace llsc;
using namespace llsc::ir;

Translator::Translator(GuestMemory &Mem, const input::InputArch &Arch,
                       ir::TranslationHooks *Hooks,
                       const TranslatorConfig &Config)
    : Mem(Mem), Arch(Arch), Hooks(Hooks), Config(Config) {}

ErrorOr<IRBlock> Translator::translateBlock(uint64_t StartPc) {
  IRBuilder Builder(StartPc);
  uint64_t Pc = StartPc;
  bool Terminated = false;

  while (!Terminated) {
    if (Builder.peek().GuestInstCount >= Config.MaxGuestInstsPerBlock) {
      Builder.emitSetPcImm(Pc);
      break;
    }

    input::LowerContext Ctx{Builder, Hooks, Pc, Config.RuleBasedAtomics};
    auto ResultOrErr = Arch.lowerInst(Mem, Ctx);
    if (!ResultOrErr)
      return ResultOrErr.error();
    const input::LowerResult Result = *ResultOrErr;
    assert(Result.BytesConsumed >= Arch.instBytes() &&
           "frontend consumed no code");

    for (unsigned N = 0; N < Result.InstsConsumed; ++N)
      Builder.noteGuestInst();
    if (Result.Idiom == input::AtomicIdiom::HostRmw)
      Stats.AtomicIdiomsMatched.fetch_add(1, std::memory_order_relaxed);
    Pc += Result.BytesConsumed;
    Terminated = Result.EndsBlock;
  }

  IRBlock Block = Builder.take();
  Stats.BlocksTranslated.fetch_add(1, std::memory_order_relaxed);
  Stats.GuestInstsTranslated.fetch_add(Block.GuestInstCount,
                                       std::memory_order_relaxed);
  Stats.IROpsEmitted.fetch_add(Block.Insts.size(),
                               std::memory_order_relaxed);

  if (Config.Optimize)
    ir::optimize(Block);
  Stats.IROpsAfterOpt.fetch_add(Block.Insts.size(),
                                std::memory_order_relaxed);

  if (Config.Verify) {
    auto VerifyResult = ir::verify(Block);
    if (!VerifyResult)
      return VerifyResult.error();
  }

  // Liveness metadata for the tier-1 JIT's linear scan, computed after
  // optimization so it reflects the instruction stream that executes.
  // One forward pass: the last instruction referencing a value — as an
  // operand or as its (re)definition — wins.
  Block.TempLastUse.assign(Block.NumValues, IRBlock::NoUse);
  for (uint32_t I = 0; I < Block.Insts.size(); ++I) {
    const IRInst &Inst = Block.Insts[I];
    Block.TempLastUse[Inst.A] = I;
    Block.TempLastUse[Inst.B] = I;
    if (writesDst(Inst.Op))
      Block.TempLastUse[Inst.Dst] = I;
  }
  return Block;
}
