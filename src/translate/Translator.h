//===- translate/Translator.h - Guest to IR translation ---------*- C++-*-===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Translates guest basic blocks to IR. The translator itself is
/// frontend-neutral: per-instruction decoding and lowering live behind the
/// input::InputArch interface (one implementation per guest ISA), while
/// this layer owns block formation, the active atomic scheme's
/// instrumentation hooks (ir::TranslationHooks), the optimizer/verifier
/// pipeline, and translation statistics. The paper's Section VI rule-based
/// atomic translation is a frontend concern — GRV matches compiler-shaped
/// LL/SC retry loops, RV32 maps single AMO instructions — and frontends
/// report each hit back through input::AtomicIdiom so the stats stay
/// comparable across ISAs.
///
//===----------------------------------------------------------------------===//

#ifndef LLSC_TRANSLATE_TRANSLATOR_H
#define LLSC_TRANSLATE_TRANSLATOR_H

#include "input/InputArch.h"
#include "ir/IR.h"
#include "ir/TranslationHooks.h"

#include "support/Error.h"

#include <atomic>

namespace llsc {

class GuestMemory;

/// Translator tunables.
struct TranslatorConfig {
  /// Run the IR optimizer (constant folding, copy-prop, DCE) per block.
  bool Optimize = true;
  /// Enable the Section VI rule-based atomic translation (frontend-
  /// specific: GRV retry-loop idioms, RV32 AMO → host RMW).
  bool RuleBasedAtomics = false;
  /// Guest instructions per translation block before a forced cut.
  unsigned MaxGuestInstsPerBlock = 64;
  /// Verify every produced block (cheap; always on in tests).
  bool Verify = true;
};

/// Statistics across all translations of one Translator. Relaxed
/// atomics: vCPUs translating concurrently on different TbCache shards
/// bump these from their own threads.
struct TranslatorStats {
  std::atomic<uint64_t> BlocksTranslated{0};
  std::atomic<uint64_t> GuestInstsTranslated{0};
  std::atomic<uint64_t> IROpsEmitted{0};
  std::atomic<uint64_t> IROpsAfterOpt{0};
  std::atomic<uint64_t> AtomicIdiomsMatched{0}; ///< Rule-based pass hits.
};

/// Translates guest code reachable from arbitrary PCs, one block at a
/// time. Thread-safe for concurrent translateBlock calls.
class Translator {
public:
  /// \p Arch is the guest frontend (stateless singleton, outlives the
  /// translator). \p Hooks may be null (no instrumentation). \p Mem
  /// provides code bytes; fetches go through the shadow mapping so PST
  /// page protection never blocks code fetch.
  Translator(GuestMemory &Mem, const input::InputArch &Arch,
             ir::TranslationHooks *Hooks, const TranslatorConfig &Config);

  /// Translates the block starting at \p Pc.
  /// \returns the block, or an error for undecodable instructions or an
  /// out-of-range pc.
  ErrorOr<ir::IRBlock> translateBlock(uint64_t Pc);

  /// Swaps the instrumentation hooks (may be null). Only legal while no
  /// translateBlock call is in flight — Machine::setScheme calls this
  /// under the stop-the-world quiescence floor, then flushes the TbCache
  /// so no block translated with the old hooks survives.
  void setHooks(ir::TranslationHooks *NewHooks) { Hooks = NewHooks; }

  /// The guest frontend this translator lowers with.
  const input::InputArch &arch() const { return Arch; }

  const TranslatorStats &stats() const { return Stats; }

private:
  GuestMemory &Mem;
  const input::InputArch &Arch;
  ir::TranslationHooks *Hooks;
  TranslatorConfig Config;
  TranslatorStats Stats;
};

} // namespace llsc

#endif // LLSC_TRANSLATE_TRANSLATOR_H
