//===- translate/Translator.h - Guest to IR translation ---------*- C++-*-===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Translates GRV guest basic blocks to IR, applying the active atomic
/// scheme's instrumentation hooks (ir::TranslationHooks) and, optionally,
/// the rule-based atomic-idiom pass of the paper's Section VI, which
/// recognizes compiler-generated LL/SC retry loops (atomic_add style) and
/// lowers the whole loop to one host atomic read-modify-write — both fast
/// and ABA-free.
///
//===----------------------------------------------------------------------===//

#ifndef LLSC_TRANSLATE_TRANSLATOR_H
#define LLSC_TRANSLATE_TRANSLATOR_H

#include "ir/IR.h"
#include "ir/TranslationHooks.h"

#include "support/Error.h"

#include <atomic>

namespace llsc {

class GuestMemory;

/// Translator tunables.
struct TranslatorConfig {
  /// Run the IR optimizer (constant folding, copy-prop, DCE) per block.
  bool Optimize = true;
  /// Enable the Section VI rule-based LL/SC idiom translation.
  bool RuleBasedAtomics = false;
  /// Guest instructions per translation block before a forced cut.
  unsigned MaxGuestInstsPerBlock = 64;
  /// Verify every produced block (cheap; always on in tests).
  bool Verify = true;
};

/// Statistics across all translations of one Translator. Relaxed
/// atomics: vCPUs translating concurrently on different TbCache shards
/// bump these from their own threads.
struct TranslatorStats {
  std::atomic<uint64_t> BlocksTranslated{0};
  std::atomic<uint64_t> GuestInstsTranslated{0};
  std::atomic<uint64_t> IROpsEmitted{0};
  std::atomic<uint64_t> IROpsAfterOpt{0};
  std::atomic<uint64_t> AtomicIdiomsMatched{0}; ///< Rule-based pass hits.
};

/// Translates guest code reachable from arbitrary PCs, one block at a
/// time. Thread-safe for concurrent translateBlock calls.
class Translator {
public:
  /// \p Hooks may be null (no instrumentation). \p Mem provides code
  /// bytes; fetches go through the shadow mapping so PST page protection
  /// never blocks code fetch.
  Translator(GuestMemory &Mem, ir::TranslationHooks *Hooks,
             const TranslatorConfig &Config);

  /// Translates the block starting at \p Pc.
  /// \returns the block, or an error for undecodable instructions or an
  /// out-of-range pc.
  ErrorOr<ir::IRBlock> translateBlock(uint64_t Pc);

  /// Swaps the instrumentation hooks (may be null). Only legal while no
  /// translateBlock call is in flight — Machine::setScheme calls this
  /// under the stop-the-world quiescence floor, then flushes the TbCache
  /// so no block translated with the old hooks survives.
  void setHooks(ir::TranslationHooks *NewHooks) { Hooks = NewHooks; }

  const TranslatorStats &stats() const { return Stats; }

private:
  /// Attempts to match the atomic_add LL/SC idiom at \p Pc; on success
  /// emits the AtomicAddG lowering and returns the number of guest
  /// instructions consumed (0 if no match).
  unsigned tryAtomicIdiom(ir::IRBuilder &Builder, uint64_t Pc);

  /// Fetches and decodes one instruction.
  ErrorOr<guest::Inst> fetch(uint64_t Pc);

  GuestMemory &Mem;
  ir::TranslationHooks *Hooks;
  TranslatorConfig Config;
  TranslatorStats Stats;
};

} // namespace llsc

#endif // LLSC_TRANSLATE_TRANSLATOR_H
