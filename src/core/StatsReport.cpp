//===- core/StatsReport.cpp - Machine-readable run statistics -----------------===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/StatsReport.h"

#include "core/Machine.h"

#include <cinttypes>
#include <cstdio>

using namespace llsc;

StatsReport::StatsReport(const JobReport &Result)
    : WallSeconds(Result.WallSeconds), AllHalted(Result.AllHalted),
      FinalScheme(schemeTraits(Result.FinalSchemeKind).Name),
      GuestArchName(input::guestArchName(Result.GuestArch)) {
  auto Add = [this](const char *Name, uint64_t Value) {
    Metrics.push_back({Name, Value});
  };

  const CpuCounters &C = Result.Total;
  Add("exec.insts", C.ExecutedInsts);
  Add("exec.blocks", C.ExecutedBlocks);
  Add("exec.loads", C.Loads);
  Add("exec.stores", C.Stores);
  Add("exec.yields", C.Yields);

  Result.Events.forEach(
      [this](const char *Name, uint64_t Value) { Metrics.push_back({Name, Value}); });

  // Process-level views kept for continuity with the pre-event-counter
  // stats line (excl.entries/fault.recovered are the per-vCPU views).
  Add("excl.sections", Result.ExclusiveSections);
  Add("fault.process_recovered", Result.RecoveredFaults);
  Add("engine.shard.lock_waits", Result.TbLockWaits);

  const HtmStats &H = Result.Htm;
  Add("htm.raw.begins", H.Begins);
  Add("htm.raw.commits", H.Commits);
  Add("htm.raw.aborts.conflict", H.ConflictAborts);
  Add("htm.raw.aborts.capacity", H.CapacityAborts);
  Add("htm.raw.store_dooms", H.StoreDooms);

  const CpuProfile &P = Result.Profile;
  Add("prof.exclusive_ns", P.bucketNs(ProfileBucket::Exclusive));
  Add("prof.instrument_ns", P.bucketNs(ProfileBucket::Instrument));
  Add("prof.mprotect_ns", P.bucketNs(ProfileBucket::Mprotect));
  Add("prof.inline_ops", P.InlineInstrumentOps);

  PerCpuEvents.reserve(Result.PerCpuEvents.size());
  for (const EventCounters &Events : Result.PerCpuEvents) {
    std::vector<StatMetric> Row;
    Events.forEach([&Row](const char *Name, uint64_t Value) {
      Row.push_back({Name, Value});
    });
    PerCpuEvents.push_back(std::move(Row));
  }
}

uint64_t StatsReport::metric(std::string_view Name) const {
  for (const StatMetric &M : Metrics)
    if (M.Name == Name)
      return M.Value;
  return 0;
}

std::string StatsReport::renderBody(bool Compact) const {
  // The pretty and compact forms share one emitter so the key order (the
  // schema contract) cannot drift between them; Compact only changes the
  // separators and drops the per_cpu array.
  const char *Nl = Compact ? "" : "\n";
  const char *Ind = Compact ? "" : "  ";
  std::string Out;
  Out.reserve(Compact ? 1024 : 4096);
  char Buf[192];

  std::snprintf(Buf, sizeof(Buf),
                "{%s\"schema_version\": %u,%s\"job_id\": %" PRIu64
                ",%s\"name\": \"%s\""
                ",%s\"reused_machine\": %s,%s\"final_scheme\": \"%s\",%s"
                "\"guest_arch\": \"%s\",%s"
                "\"wall_seconds\": %.9f,%s\"all_halted\": %s,%s",
                Nl, SchemaVersion, Nl, JobId, Nl, JobName.c_str(), Nl,
                ReusedMachine ? "true" : "false", Nl, FinalScheme.c_str(),
                Nl, GuestArchName.c_str(), Nl, WallSeconds, Nl,
                AllHalted ? "true" : "false", Nl);
  Out += Buf;

  Out += "\"metrics\": {";
  for (size_t I = 0; I < Metrics.size(); ++I) {
    std::snprintf(Buf, sizeof(Buf), "%s%s%s\"%s\": %" PRIu64, I ? "," : "",
                  Nl, Ind, Metrics[I].Name.c_str(), Metrics[I].Value);
    Out += Buf;
  }
  Out += Nl;
  Out += "}";

  if (!Compact) {
    Out += ",\n\"per_cpu\": [";
    for (size_t Tid = 0; Tid < PerCpuEvents.size(); ++Tid) {
      std::snprintf(Buf, sizeof(Buf), "%s\n  {\"tid\": %zu", Tid ? "," : "",
                    Tid);
      Out += Buf;
      for (const StatMetric &M : PerCpuEvents[Tid]) {
        std::snprintf(Buf, sizeof(Buf), ", \"%s\": %" PRIu64,
                      M.Name.c_str(), M.Value);
        Out += Buf;
      }
      Out += "}";
    }
    Out += "\n]";
  }
  Out += Nl;
  Out += "}\n";
  return Out;
}

std::string StatsReport::renderJson() const {
  return renderBody(/*Compact=*/false);
}

std::string StatsReport::renderJsonLine() const {
  return renderBody(/*Compact=*/true);
}
