//===- core/MachineOptions.cpp - Flags -> MachineConfig -----------------------===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/MachineOptions.h"

using namespace llsc;

ErrorOr<MachineConfig>
llsc::machineConfigFromOptions(const MachineOptionValues &Values) {
  MachineConfig Config;

  if (Values.Arch) {
    auto ArchOrErr = input::parseGuestArch(*Values.Arch);
    if (!ArchOrErr)
      return ArchOrErr.error();
    Config.Arch = *ArchOrErr;
  }

  if (*Values.Scheme == "adaptive") {
    Config.Adaptive = true;
    // PST is the paper's page-protection baseline and the scheme the
    // controller most often wants to leave, which makes the demo honest:
    // adaptive must earn its keep by swapping away from it.
    std::string Start =
        Values.AdaptiveStart ? *Values.AdaptiveStart : std::string("pst");
    auto Kind = parseSchemeName(Start);
    if (!Kind)
      return makeError("unknown scheme '%s' in --adaptive-start",
                       Start.c_str());
    Config.Scheme = *Kind;
  } else {
    auto Kind = parseSchemeName(*Values.Scheme);
    if (!Kind)
      return makeError("unknown scheme '%s'", Values.Scheme->c_str());
    Config.Scheme = *Kind;
  }

  if (Values.Threads)
    Config.NumThreads = static_cast<unsigned>(*Values.Threads);
  if (Values.MemMb)
    Config.MemBytes = static_cast<uint64_t>(*Values.MemMb) << 20;
  if (Values.HstTableLog2)
    Config.HstTableLog2 = static_cast<unsigned>(*Values.HstTableLog2);
  if (Values.HtmMaxRetries)
    Config.HtmMaxRetries = static_cast<unsigned>(*Values.HtmMaxRetries);
  if (Values.AdaptiveIntervalMs)
    Config.AdaptiveTuning.SampleIntervalMs =
        static_cast<uint64_t>(*Values.AdaptiveIntervalMs);
  if (Values.AdaptiveCooldownMs)
    Config.AdaptiveTuning.CooldownMs =
        static_cast<uint64_t>(*Values.AdaptiveCooldownMs);
  return Config;
}
