//===- core/Snapshot.cpp - Copy-on-write machine snapshots ---------------===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/Snapshot.h"

#include "engine/TbCache.h"
#include "engine/jit/Jit.h"

#include <unistd.h>

using namespace llsc;

MachineSnapshot::~MachineSnapshot() {
  if (MemFd >= 0)
    ::close(MemFd);
}
