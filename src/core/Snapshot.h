//===- core/Snapshot.h - Copy-on-write machine snapshots --------*- C++-*-===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The capture side of Machine::snapshot()/restoreFrom(): one immutable
/// image of a warm machine that many clones restore from at near-zero
/// cost (docs/SERVING.md "Snapshot lifecycle").
///
/// A snapshot owns three things:
///  - guest memory as a sealed memfd (F_SEAL_WRITE and friends): restored
///    machines map it MAP_PRIVATE, so their dirty pages are CoW-private
///    and the snapshot bytes can never change underneath a sibling;
///  - the architectural state of every vCPU (register file, pc, halt
///    flag) plus the loaded program and its content hash;
///  - optionally, shared co-ownership of the donor's TbCache and tier-1
///    JIT. Compiled code is machine-neutral (engine/jit/JitCompiler.h),
///    so clones execute the same warm translations read-only and start
///    tier-1 without a single recompile — the serve-layer headline.
///
/// Snapshots are handed around as shared_ptr<const MachineSnapshot>; the
/// last owner (pool bucket, in-flight clone, or the service that captured
/// it) closes the memfd and releases the code caches.
///
//===----------------------------------------------------------------------===//

#ifndef LLSC_CORE_SNAPSHOT_H
#define LLSC_CORE_SNAPSHOT_H

#include "core/Machine.h"
#include "guest/Isa.h"
#include "guest/Program.h"

#include <cstdint>
#include <memory>
#include <vector>

namespace llsc {

class TbCache;
namespace jit {
class Jit;
} // namespace jit

/// An immutable machine image produced by Machine::snapshot().
struct MachineSnapshot {
  MachineSnapshot() = default;
  ~MachineSnapshot();
  MachineSnapshot(const MachineSnapshot &) = delete;
  MachineSnapshot &operator=(const MachineSnapshot &) = delete;

  /// Captured per-vCPU architectural state.
  struct CpuState {
    uint64_t Regs[guest::MaxGuestRegs] = {};
    uint64_t Pc = 0;
    bool Halted = false;
  };

  /// The donor's configuration at capture. restoreFrom validates shape
  /// (MemBytes, NumThreads); the serve layer buckets snapshot clones by
  /// machineConfigKey(Config) + ImageHash.
  MachineConfig Config;

  /// Scheme kind active at capture (may differ from Config.Scheme after
  /// an adaptive hot-swap); restoreFrom re-attaches this kind.
  SchemeKind SchemeAtCapture = SchemeKind::Hst;

  /// The loaded program and its content hash (Machine's image identity,
  /// the key that decides whether warm translations match).
  guest::Program Prog;
  uint64_t ImageHash = 0;

  /// Sealed memfd holding the guest-memory image, and its size. Owned;
  /// closed by the destructor.
  int MemFd = -1;
  uint64_t MemBytes = 0;

  /// One entry per vCPU, in tid order.
  std::vector<CpuState> Cpus;

  /// True when the snapshot was taken mid-run (some vCPU had state beyond
  /// the entry conventions); prepareRun then applies Cpus verbatim
  /// instead of the fresh-entry register setup.
  bool MidRun = false;

  /// Warm code, co-owned with the donor and every clone — null when the
  /// capture-time scheme's translations are not machine-neutral
  /// (SchemeTraits::NeutralTranslations is false, i.e. HST-HELPER).
  /// Cache declared before Jit so the Jit (and its executable regions)
  /// is destroyed first, while the blocks referencing it still exist.
  std::shared_ptr<TbCache> Cache;
  std::shared_ptr<jit::Jit> Jit;
};

} // namespace llsc

#endif // LLSC_CORE_SNAPSHOT_H
