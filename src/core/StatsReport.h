//===- core/StatsReport.h - Machine-readable run statistics -----*- C++-*-===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Flattens a RunResult into a stable, ordered list of named integer
/// metrics — the single machine-readable stats surface shared by
/// `llsc-run --stats=json` and the bench/ CSV writers. The metric names
/// form the documented contract (docs/OBSERVABILITY.md lists every one);
/// consumers key on the dotted name, never on list position.
///
/// Namespaces:
///   exec.*      instruction-mix totals (CpuCounters)
///   ll./sc./excl./sys./htm./helper./instr./fault.*
///               atomic-emulation events (runtime/EventCounters.h)
///   htm.raw.*   backend-level HTM truth for this run (HtmStats)
///   prof.*      Fig. 12 bucket nanoseconds (zero unless --profile)
///
//===----------------------------------------------------------------------===//

#ifndef LLSC_CORE_STATSREPORT_H
#define LLSC_CORE_STATSREPORT_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace llsc {

struct JobReport;

/// One named integer metric.
struct StatMetric {
  std::string Name;
  uint64_t Value = 0;
};

/// A flattened snapshot of one JobReport (a RunResult is-a JobReport, so
/// both feed it). Cheap to build (one pass over the report); safe to keep
/// after the report is gone.
class StatsReport {
public:
  explicit StatsReport(const JobReport &Result);

  /// All metrics, in stable catalogue order.
  const std::vector<StatMetric> &metrics() const { return Metrics; }

  /// Appends an extra metric after the catalogue (the serve layer adds
  /// its per-job serve.* counters here; docs/OBSERVABILITY.md). Call
  /// before rendering; duplicate names are the caller's bug.
  void addMetric(std::string Name, uint64_t Value) {
    Metrics.push_back({std::move(Name), Value});
  }

  /// Stamps the job identity keys (schema v4). Outside the serve layer
  /// they keep their defaults: job_id 0, name "", reused_machine false.
  void setJob(uint64_t Id, std::string Name, bool Reused) {
    JobId = Id;
    JobName = std::move(Name);
    ReusedMachine = Reused;
  }

  /// Looks up one metric by dotted name; 0 if absent (so CSV writers can
  /// ask for scheme-specific counters unconditionally).
  uint64_t metric(std::string_view Name) const;

  double wallSeconds() const { return WallSeconds; }
  bool allHalted() const { return AllHalted; }
  /// Name of the scheme active when the run ended (differs from the
  /// configured one after an adaptive hot-swap).
  const std::string &finalScheme() const { return FinalScheme; }
  /// Stable name of the guest frontend the job ran under ("grv", "rv32").
  const std::string &guestArch() const { return GuestArchName; }

  /// The --stats=json schema version. Bumped when a top-level key is
  /// added, removed, or reordered; adding a metric to "metrics" (a
  /// keyed map) is not a schema change. History:
  ///   1: {"wall_seconds", "all_halted", "metrics", "per_cpu"}
  ///   2: + leading "schema_version", "final_scheme" keys
  ///   3: + "job_id", "reused_machine" keys after "schema_version"
  ///      (serve-layer job identity; 0/false outside it), and the
  ///      "metrics" map may carry appended serve.* per-job counters
  ///   4: + "name" key after "job_id" (the serve-layer job label, so
  ///      fleet consumers can group per-job lines without relying on
  ///      submission order; "" outside the serve layer)
  ///   5: + "guest_arch" key after "final_scheme" (the frontend the job
  ///      ran under: "grv", "rv32" — docs/FRONTENDS.md)
  static constexpr unsigned SchemaVersion = 5;

  /// Renders the whole report as a JSON object:
  ///   {"schema_version": 5, "job_id": 0, "name": "",
  ///    "reused_machine": false,
  ///    "final_scheme": "...", "guest_arch": "...",
  ///    "wall_seconds": ..., "all_halted": ...,
  ///    "metrics": {...}, "per_cpu": [{"tid": 0, ...events...}, ...]}
  /// Key order is deterministic: top-level keys exactly as above,
  /// "metrics" in stable catalogue order (the metrics() order, plus any
  /// addMetric() extras at the end), per-cpu rows in tid order. Metric
  /// keys inside "metrics" are the same dotted names metrics() reports.
  /// Ends with a newline.
  std::string renderJson() const;

  /// renderJson() compressed to one line with the "per_cpu" array
  /// omitted — the llsc-serve per-job JSON-lines shape (docs/SERVING.md).
  /// Same schema version and key order otherwise. Ends with a newline.
  std::string renderJsonLine() const;

private:
  std::string renderBody(bool Compact) const;

  double WallSeconds = 0;
  bool AllHalted = true;
  uint64_t JobId = 0;
  std::string JobName;
  bool ReusedMachine = false;
  std::string FinalScheme;
  std::string GuestArchName;
  std::vector<StatMetric> Metrics;
  /// Per-vCPU event rows for the JSON "per_cpu" array: one vector of
  /// (name, value) per tid, EventCounters names only.
  std::vector<std::vector<StatMetric>> PerCpuEvents;
};

} // namespace llsc

#endif // LLSC_CORE_STATSREPORT_H
