//===- core/StatsReport.h - Machine-readable run statistics -----*- C++-*-===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Flattens a RunResult into a stable, ordered list of named integer
/// metrics — the single machine-readable stats surface shared by
/// `llsc-run --stats=json` and the bench/ CSV writers. The metric names
/// form the documented contract (docs/OBSERVABILITY.md lists every one);
/// consumers key on the dotted name, never on list position.
///
/// Namespaces:
///   exec.*      instruction-mix totals (CpuCounters)
///   ll./sc./excl./sys./htm./helper./instr./fault.*
///               atomic-emulation events (runtime/EventCounters.h)
///   htm.raw.*   backend-level HTM truth for this run (HtmStats)
///   prof.*      Fig. 12 bucket nanoseconds (zero unless --profile)
///
//===----------------------------------------------------------------------===//

#ifndef LLSC_CORE_STATSREPORT_H
#define LLSC_CORE_STATSREPORT_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace llsc {

struct RunResult;

/// One named integer metric.
struct StatMetric {
  std::string Name;
  uint64_t Value = 0;
};

/// A flattened snapshot of one RunResult. Cheap to build (one pass over
/// the result); safe to keep after the RunResult is gone.
class StatsReport {
public:
  explicit StatsReport(const RunResult &Result);

  /// All metrics, in stable catalogue order.
  const std::vector<StatMetric> &metrics() const { return Metrics; }

  /// Looks up one metric by dotted name; 0 if absent (so CSV writers can
  /// ask for scheme-specific counters unconditionally).
  uint64_t metric(std::string_view Name) const;

  double wallSeconds() const { return WallSeconds; }
  bool allHalted() const { return AllHalted; }
  /// Name of the scheme active when the run ended (differs from the
  /// configured one after an adaptive hot-swap).
  const std::string &finalScheme() const { return FinalScheme; }

  /// The --stats=json schema version. Bumped when a top-level key is
  /// added, removed, or reordered; adding a metric to "metrics" (a
  /// keyed map) is not a schema change. History:
  ///   1: {"wall_seconds", "all_halted", "metrics", "per_cpu"}
  ///   2: + leading "schema_version", "final_scheme" keys
  static constexpr unsigned SchemaVersion = 2;

  /// Renders the whole report as a JSON object:
  ///   {"schema_version": 2, "final_scheme": "...", "wall_seconds": ...,
  ///    "all_halted": ..., "metrics": {...},
  ///    "per_cpu": [{"tid": 0, ...events...}, ...]}
  /// Key order is deterministic: top-level keys exactly as above,
  /// "metrics" in stable catalogue order (the metrics() order), per-cpu
  /// rows in tid order. Metric keys inside "metrics" are the same dotted
  /// names metrics() reports. Ends with a newline.
  std::string renderJson() const;

private:
  double WallSeconds = 0;
  bool AllHalted = true;
  std::string FinalScheme;
  std::vector<StatMetric> Metrics;
  /// Per-vCPU event rows for the JSON "per_cpu" array: one vector of
  /// (name, value) per tid, EventCounters names only.
  std::vector<std::vector<StatMetric>> PerCpuEvents;
};

} // namespace llsc

#endif // LLSC_CORE_STATSREPORT_H
