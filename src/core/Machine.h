//===- core/Machine.h - Public emulator facade ------------------*- C++-*-===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The library's main entry point. A Machine bundles guest memory, the
/// translation cache, the execution engine, and one atomic-emulation
/// scheme, and runs a guest program on N emulated hardware threads —
/// QEMU user-mode in miniature, with the scheme swappable so the paper's
/// design space can be measured side by side.
///
/// A Machine is a reusable *session*: create → load → run → reset →
/// load → run → ... The serve layer (src/serve/) pools Machines per
/// MachineConfig and streams jobs through them, amortizing construction
/// cost (guest-memory mmap, scheme attach, translator/engine setup)
/// across jobs. Typical one-shot use:
/// \code
///   MachineConfig Config;
///   Config.Scheme = SchemeKind::Hst;
///   Config.NumThreads = 16;
///   auto MachineOrErr = Machine::create(Config);
///   auto &M = **MachineOrErr;
///   M.loadAssembly(Source);           // or loadProgram(Program)
///   auto Result = M.run({});          // one host thread per guest thread
///   printf("%f s, %llu SC failures\n", Result->WallSeconds,
///          Result->Total.StoreCondFailures);
///   M.reset();                        // ready for the next job
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef LLSC_CORE_MACHINE_H
#define LLSC_CORE_MACHINE_H

#include "atomic/AtomicScheme.h"
#include "engine/Engine.h"
#include "guest/Program.h"
#include "htm/Htm.h"
#include "input/GuestImage.h"
#include "mem/GuestMemory.h"
#include "runtime/AdaptiveController.h"
#include "runtime/Exclusive.h"
#include "runtime/Schedule.h"
#include "translate/Translator.h"

#include <atomic>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

namespace llsc {

struct MachineSnapshot;

/// Everything configurable about a Machine.
struct MachineConfig {
  /// Guest ISA this machine translates. Fixed at create() — the frontend
  /// determines decode, entry conventions and the binary format load()
  /// accepts; snapshots and pool keys carry it (docs/FRONTENDS.md).
  input::GuestArch Arch = input::GuestArch::Grv;
  SchemeKind Scheme = SchemeKind::Hst;
  unsigned NumThreads = 1;
  uint64_t MemBytes = 64ULL << 20;
  uint64_t StackBytes = 256 * 1024; ///< Per-thread stack at top of memory.
  bool Profile = false;             ///< Fig. 12 bucket attribution.
  /// Use the software HTM model even when hardware RTM is usable
  /// (deterministic tests force this).
  bool ForceSoftHtm = false;
  /// Stop each vCPU after this many blocks; 0 = unlimited.
  uint64_t MaxBlocksPerCpu = 0;
  /// Stop each vCPU after this much wall time; 0 = unlimited. Catches
  /// livelocks spent inside scheme spin loops (PICO-HTM).
  double MaxSecondsPerCpu = 0;

  // --- Tier-1 JIT -----------------------------------------------------------
  /// Enable the tier-1 x86-64 JIT backend (docs/JIT.md). Effective only on
  /// supported hosts (x86-64 Linux, non-TSAN builds) — elsewhere the
  /// machine silently runs tier-0 only. The LLSC_NO_JIT environment
  /// variable force-disables; LLSC_FORCE_JIT forces JitHotThreshold to 0.
  bool Jit = true;
  /// Tier-0 dispatches of a block before it compiles; 0 = compile on
  /// first dispatch.
  uint32_t JitHotThreshold = 16;

  // --- Scheme tuning (forwarded to createScheme) ----------------------------
  /// HST-family hash-table size, log2 of the entry count (Figure 4).
  unsigned HstTableLog2 = 20;
  /// HTM kinds: transaction retries before the livelock fallback.
  unsigned HtmMaxRetries = 64;

  // --- Adaptive scheme controller -------------------------------------------
  /// Runs the adaptive controller thread during run(): it samples the
  /// event counters every AdaptiveTuning.SampleIntervalMs under the
  /// quiescence floor and hot-swaps the scheme (setScheme protocol) when
  /// the workload is hostile to the current one. Scheme above is the
  /// starting scheme. See runtime/AdaptiveController.h and docs/API.md.
  bool Adaptive = false;
  AdaptiveConfig AdaptiveTuning;

  TranslatorConfig Translation;
  SoftHtmConfig SoftHtm;
};

/// How run(const RunOptions &) drives the vCPUs, and the per-run knobs
/// that used to be spread across three run* entry points. A
/// default-constructed RunOptions reproduces the classic run(): one host
/// thread per vCPU, budgets from MachineConfig.
struct RunOptions {
  enum class Mode {
    Threaded,    ///< One host thread per vCPU (production mode).
    Cooperative, ///< Single host thread, round-robin in tid order.
    Scheduled,   ///< Single host thread under an external controller.
  };
  Mode ExecMode = Mode::Threaded;

  /// Cooperative/Scheduled: blocks one vCPU executes per slice.
  uint64_t BlocksPerSlice = 1;
  /// Scheduled only: picks the next vCPU each slice (required).
  ScheduleController *Sched = nullptr;
  /// Scheduled only: observes machine state after every slice (optional).
  SliceObserver *Observer = nullptr;

  // --- Per-run budget overrides (the serve layer's per-job deadlines) ------
  // Unset = inherit the MachineConfig value; an explicit 0 = unlimited.

  /// Stop each vCPU after this many blocks.
  std::optional<uint64_t> MaxBlocksPerCpu;
  /// Stop each vCPU after this much wall time (seconds).
  std::optional<double> MaxSecondsPerCpu;
};

/// The reusable statistics payload of one run — one *job* in the serve
/// layer (src/serve/), which aggregates JobReports across pooled
/// Machines. Everything here is harvested by Machine::collectResult when
/// a run ends and is self-contained: safe to keep after the Machine has
/// been reset() and handed to the next job.
struct JobReport {
  double WallSeconds = 0;
  bool AllHalted = true; ///< False if any vCPU hit a block/time budget.
  CpuCounters Total;
  CpuProfile Profile;
  std::vector<CpuCounters> PerCpu;
  /// Atomic-emulation event counters summed over all vCPUs (also flushed
  /// into the process-wide CounterRegistry; see runtime/EventCounters.h).
  EventCounters Events;
  std::vector<EventCounters> PerCpuEvents;
  HtmStats Htm;
  uint64_t ExclusiveSections = 0; ///< Machine-wide delta during the run.
  uint64_t RecoveredFaults = 0;   ///< Process-wide delta during the run.
  /// TbCache shard-mutex contention events during the run (delta of
  /// TbCache::lockWaits(), reported as engine.shard.lock_waits).
  uint64_t TbLockWaits = 0;
  /// Kind the active scheme claimed (traits().Kind) when the run ended;
  /// differs from MachineConfig::Scheme after an adaptive hot-swap.
  SchemeKind FinalSchemeKind = SchemeKind::Hst;
  /// Guest ISA the job ran under (stats schema v5 "guest_arch").
  input::GuestArch GuestArch = input::GuestArch::Grv;
};

/// Aggregate outcome of one run(). The statistics live in the JobReport
/// base so the serve layer can slice them off a result and file them per
/// job; RunResult remains the name run() returns.
struct RunResult : JobReport {};

/// The emulator facade.
class Machine {
public:
  /// Builds a machine: memory, scheme, HTM runtime (if the scheme needs
  /// one), translator and engine.
  static ErrorOr<std::unique_ptr<Machine>> create(const MachineConfig &Config);

  ~Machine();
  Machine(const Machine &) = delete;
  Machine &operator=(const Machine &) = delete;

  /// Loads an arch-tagged program image — the one load entry point. The
  /// image's arch must match MachineConfig::Arch (the frontend is fixed at
  /// create()). The code cache is flushed only when the image differs (by
  /// content hash) from the one the cached translations were built from:
  /// reloading a byte-identical image — what a pooled machine does between
  /// jobs — keeps the cache warm.
  ErrorOr<void> load(input::GuestImage Image);

  /// Deprecated GRV-only wrapper: load({GuestArch::Grv, Prog}). Errors on
  /// a non-GRV machine. See the docs/API.md deprecation table.
  ErrorOr<void> loadProgram(guest::Program Prog);

  /// Deprecated GRV-only wrapper: assembles \p Source at \p BaseAddr with
  /// the GRV assembler and loads it. See the docs/API.md deprecation
  /// table.
  ErrorOr<void> loadAssembly(std::string_view Source,
                             uint64_t BaseAddr = 0x1000);

  /// Runs the loaded program to completion under \p Opts — the one run
  /// entry point (docs/API.md "Session lifecycle & pooling"). Register
  /// conventions at entry: r0 = tid, sp = top-of-stack. In Scheduled mode
  /// either side can end the run early (Opts.Sched by returning a
  /// negative tid, Opts.Observer by returning false); RunResult.AllHalted
  /// then reflects the actual vCPU states.
  ErrorOr<RunResult> run(const RunOptions &Opts);

  /// Restores machine-neutral state so the same Machine can serve another
  /// job without paying construction cost again (guest-memory mmap,
  /// scheme attach, translator/engine setup are all kept). Must not be
  /// called while a run is in flight. In order:
  ///
  ///  1. scheme reset() — monitors released, PST page protections
  ///     restored, HST tables zeroed (the PR 4 lifecycle contract);
  ///  2. counter rollover — per-vCPU counters/profiles (already merged
  ///     into the previous run's JobReport by collectResult) are zeroed,
  ///     HTM stats reset, so the next job starts from a clean slate;
  ///  3. code-cache housekeeping — live translations are *retained*
  ///     (loadProgram flushes if the next image differs, so they are only
  ///     reused for a byte-identical reload); blocks retired by earlier
  ///     hot-swap flushes are reaped, along with the retired schemes
  ///     their helpers reference;
  ///  4. guest memory re-zeroed via fallocate hole-punch (pages return
  ///     to the kernel; faulted back as zero pages on next touch), and
  ///     the loaded program dropped — load*() must be called again.
  void reset();

  /// Number of times reset() completed on this machine — jobs served
  /// equals resets + 1 while the machine is in a pool.
  uint64_t resetCount() const { return Resets; }

  // --- Component access (benchmarks, tests, litmus drivers) ----------------

  GuestMemory &mem() { return *Mem; }
  AtomicScheme &scheme() { return *Scheme; }
  ExclusiveContext &exclusive() { return Excl; }
  HtmRuntime *htm() { return Htm.get(); }
  Translator &translator() { return *Trans; }
  TbCache &cache() { return *Cache; }
  Engine &engine() { return *Exec; }
  /// The tier-1 JIT, or null when disabled/unsupported (tests, bench).
  jit::Jit *jitBackend() { return TheJit.get(); }
  MachineContext &context() { return Ctx; }
  const MachineConfig &config() const { return Config; }
  const guest::Program &program() const { return Prog; }

  unsigned numThreads() const { return Config.NumThreads; }
  VCpu &cpu(unsigned Tid) { return Cpus[Tid]; }

  /// Re-initializes vCPUs (pc/regs/stacks), scheme state and counters as
  /// run() does, without executing. Exposed for drivers that call scheme
  /// hooks directly (atomicity litmus tests).
  void prepareRun();

  /// Replaces the machine's atomic scheme at runtime, taking ownership of
  /// \p NewScheme (which must be Detached). Safe between runs and — the
  /// point of the design — while run() is in flight, from any thread that
  /// is not itself a vCPU:
  ///
  ///  1. quiesce: enter a stop-the-world exclusive section and drain it
  ///     until no scheme-owned SC section is queued behind it (a queued SC
  ///     captured the *old* scheme's monitor state and must complete under
  ///     old-scheme semantics first);
  ///  2. break state: onCpuStopped + clearExclusive per vCPU, then detach
  ///     the old scheme — armed LL windows are broken (their SC fails,
  ///     which the architecture permits at any time) and machine-visible
  ///     state (page protections, published tables) is released;
  ///  3. attach the new scheme, repoint the translator hooks, and flush
  ///     the code cache — blocks carry scheme instrumentation, so a stale
  ///     block would be a correctness bug, not just a perf one.
  ///
  /// The previous scheme is retained until the *next* swap (retired code
  /// blocks hold helper pointers into it), then freed. Protocol details
  /// and the lifecycle state machine are documented in docs/API.md.
  void setScheme(std::unique_ptr<AtomicScheme> NewScheme);

  // --- Copy-on-write snapshots (docs/SERVING.md "Snapshot lifecycle") ------

  /// Captures a restorable image of this machine: guest memory as a
  /// sealed, immutable memfd; the full architectural state of every vCPU;
  /// and — when the active scheme's translations are machine-neutral
  /// (SchemeTraits::NeutralTranslations) — shared co-ownership of the
  /// warm TbCache and JIT code regions, so restored machines start with
  /// warm tier-0 and tier-1 code without recompiling.
  ///
  /// Legal post-load or quiesced mid-run: the call takes the PR 4
  /// stop-the-world floor itself (from any non-vCPU thread), breaks armed
  /// LL windows (exclusive-monitor-neutral by construction) and resets
  /// the scheme so page protections and published tables are neutral
  /// before memory is captured. Requires a loaded program.
  ErrorOr<std::shared_ptr<const MachineSnapshot>> snapshot();

  /// Restores this machine to \p Snap's captured state. Guest memory
  /// attaches to the snapshot memfd via MAP_PRIVATE CoW (dirty pages
  /// after restore are private; the snapshot stays immutable) — except
  /// under page-protection schemes (PST/PST-REMAP), which get a deep copy
  /// into the machine's own memfd. Adopts the snapshot's shared code
  /// caches when it carries them. The machine's config must match the
  /// snapshot's shape (MemBytes, NumThreads); the scheme is hot-swapped
  /// to the snapshot's kind when it differs. Repeated restores from the
  /// same snapshot take the O(dirtied pages) fast path (madvise).
  ErrorOr<void> restoreFrom(std::shared_ptr<const MachineSnapshot> Snap);

  /// The snapshot this machine's guest memory is currently CoW-attached
  /// to, or null. MachinePool keys its snapshot buckets on this.
  const std::shared_ptr<const MachineSnapshot> &attachedSnapshot() const {
    return AttachedSnapshot;
  }

  /// How many shared_ptr copies of \p Snap this machine itself holds
  /// (AttachedSnapshot and the one-shot RestorePoint may both point at
  /// it). MachinePool::trim needs the exact count to tell bucket-owned
  /// references apart from an open session's.
  unsigned snapshotRefs(const MachineSnapshot &Snap) const {
    return (AttachedSnapshot.get() == &Snap ? 1u : 0u) +
           (RestorePoint.get() == &Snap ? 1u : 0u);
  }

  /// True while the TB cache + JIT are co-owned by a snapshot (sharing
  /// both directions: donor after snapshot(), clone after restoreFrom()).
  bool codeShared() const { return CodeShared; }

private:
  explicit Machine(const MachineConfig &Config);

  /// Swap body; requires the caller to hold the quiescence floor with no
  /// other exclusive section queued (ExclusiveContext::soleExclusive()).
  void setSchemeLocked(std::unique_ptr<AtomicScheme> NewScheme);

  /// Acquires the quiescence floor, draining queued scheme SC sections
  /// (the setScheme protocol); pair with Excl.endExclusive.
  void acquireFloor();

  /// Replaces a *shared* TB cache + JIT with fresh private ones and
  /// rewires the engine/listener plumbing. The shared objects live on in
  /// the snapshot (and its other clones); this machine simply stops
  /// executing out of them. Requires quiescence (no vCPU running).
  void privatizeCode();

  /// Body of the adaptive controller thread (Config.Adaptive).
  void adaptiveLoop(const std::atomic<bool> &Stop);

  /// run(RunOptions) bodies per mode.
  ErrorOr<RunResult> runThreaded();
  ErrorOr<RunResult> runSliced(const RunOptions &Opts);

  /// Totals sampled at run start so collectResult can report deltas
  /// (process-wide fault count, cache-wide lock waits, machine-wide
  /// exclusive sections — all monotonic across Machine reuse).
  struct RunBaseline {
    uint64_t Faults = 0;
    uint64_t LockWaits = 0;
    uint64_t ExclSections = 0;
  };
  RunBaseline sampleBaseline() const;

  /// Collects counters/profiles into a RunResult (wall time filled by the
  /// caller); \p Base turns the monotonic totals into per-run deltas.
  RunResult collectResult(bool AllHalted, const RunBaseline &Base) const;

  MachineConfig Config;
  std::unique_ptr<GuestMemory> Mem;
  ExclusiveContext Excl;
  std::unique_ptr<HtmRuntime> Htm;
  std::unique_ptr<AtomicScheme> Scheme;
  /// Schemes replaced by setScheme, kept one swap deep: retired code
  /// blocks (TbCache) embed helper pointers into the scheme that
  /// translated them, so a scheme may be freed only after those blocks
  /// are — which happens at the next swap (reapRetired, then clear).
  std::vector<std::unique_ptr<AtomicScheme>> RetiredSchemes;
  /// adaptive.* counters, charged by the controller thread and merged
  /// into RunResult::Events alongside the per-vCPU blocks.
  EventCounters AdaptiveEvents;
  std::unique_ptr<Translator> Trans;
  /// TB cache and tier-1 JIT are shared_ptrs because a MachineSnapshot
  /// co-owns them: a snapshot taken from this machine keeps the warm
  /// translations (and compiled code) alive for its clones, which adopt
  /// the same two objects on restore. CodeShared marks that state — any
  /// path that would flush or reap a shared cache must privatize instead
  /// (privatizeCode), since siblings still execute out of it.
  std::shared_ptr<TbCache> Cache;
  std::unique_ptr<Engine> Exec;
  /// Tier-1 JIT; null when disabled or unsupported. Declared after Cache
  /// so it is destroyed first, while the blocks referencing its code
  /// regions still exist (nothing executes during destruction).
  std::shared_ptr<jit::Jit> TheJit;
  /// True while Cache/TheJit are co-owned by a snapshot (either because
  /// snapshot() was taken from this machine or restoreFrom adopted them).
  bool CodeShared = false;
  MachineContext Ctx;
  std::vector<VCpu> Cpus;
  guest::Program Prog;
  /// Content hash of the image the current cache contents were translated
  /// from; loadProgram compares against it to decide whether to flush.
  uint64_t LoadedImageHash = 0;
  uint64_t Resets = 0;
  /// Snapshot whose memfd guest memory is CoW-attached to (null when the
  /// machine owns its pages, including after a PST deep-copy restore).
  std::shared_ptr<const MachineSnapshot> AttachedSnapshot;
  /// Snapshot whose captured vCPU state the next prepareRun applies (set
  /// by restoreFrom for mid-run snapshots; consumed by prepareRun).
  std::shared_ptr<const MachineSnapshot> RestorePoint;
  bool PendingCpuRestore = false;
};

} // namespace llsc

#endif // LLSC_CORE_MACHINE_H
