//===- core/Machine.cpp - Public emulator facade --------------------------------===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/Machine.h"

#include "guest/Assembler.h"
#include "mem/FaultGuard.h"
#include "support/BitUtils.h"
#include "support/Logging.h"
#include "support/Stats.h"
#include "support/Timing.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <thread>

using namespace llsc;

Machine::Machine(const MachineConfig &Config) : Config(Config) {}

Machine::~Machine() = default;

ErrorOr<std::unique_ptr<Machine>> Machine::create(const MachineConfig &Config) {
  if (Config.NumThreads == 0)
    return makeError("machine needs at least one thread");
  if (Config.StackBytes * Config.NumThreads >= Config.MemBytes)
    return makeError("stacks (%u x %llu) do not fit in guest memory",
                     Config.NumThreads,
                     static_cast<unsigned long long>(Config.StackBytes));

  auto M = std::unique_ptr<Machine>(new Machine(Config));

  auto MemOrErr = GuestMemory::create(Config.MemBytes);
  if (!MemOrErr)
    return MemOrErr.error();
  M->Mem = MemOrErr.take();

  const SchemeTraits &Traits = schemeTraits(Config.Scheme);
  if (Traits.RequiresHtm) {
    SoftHtmConfig SoftConfig = Config.SoftHtm;
    SoftConfig.MaxThreads = std::max(SoftConfig.MaxThreads,
                                     Config.NumThreads);
    M->Htm = Config.ForceSoftHtm ? createSoftHtm(SoftConfig)
                                 : createBestHtm(SoftConfig);
  }

  M->Scheme = createScheme(Config.Scheme, Config.SchemeTuning);

  M->Ctx.Mem = M->Mem.get();
  M->Ctx.Excl = &M->Excl;
  M->Ctx.Htm = M->Htm.get();
  M->Ctx.Scheme = M->Scheme.get();
  M->Ctx.NumThreads = Config.NumThreads;
  M->Scheme->attach(M->Ctx);

  M->Trans = std::make_unique<Translator>(*M->Mem, M->Scheme.get(),
                                          Config.Translation);
  M->Cache = std::make_unique<TbCache>(*M->Trans);

  EngineConfig EngineCfg;
  EngineCfg.Profile = Config.Profile;
  EngineCfg.MaxBlocksPerCpu = Config.MaxBlocksPerCpu;
  EngineCfg.MaxWallNanosPerCpu =
      static_cast<uint64_t>(Config.MaxSecondsPerCpu * 1e9);
  M->Exec = std::make_unique<Engine>(M->Ctx, *M->Cache, EngineCfg);

  M->Cpus.resize(Config.NumThreads);
  for (unsigned Tid = 0; Tid < Config.NumThreads; ++Tid) {
    M->Cpus[Tid].Tid = Tid;
    M->Cpus[Tid].Ctx = &M->Ctx;
    M->Cpus[Tid].ProfilingEnabled = Config.Profile;
  }

  // The page-protection schemes rely on recoverable faults; installing the
  // handler here keeps the first run free of lazy-init hiccups.
  FaultGuard::ensureInstalled();
  return M;
}

ErrorOr<bool> Machine::loadProgram(guest::Program NewProg) {
  auto LoadedOrErr = Mem->loadProgram(NewProg);
  if (!LoadedOrErr)
    return LoadedOrErr.error();
  Prog = std::move(NewProg);
  Cache->flush();
  return true;
}

ErrorOr<bool> Machine::loadAssembly(std::string_view Source,
                                    uint64_t BaseAddr) {
  auto ProgOrErr = guest::assemble(Source, BaseAddr);
  if (!ProgOrErr)
    return ProgOrErr.error();
  return loadProgram(ProgOrErr.take());
}

void Machine::setCustomScheme(AtomicScheme &Custom) {
  Ctx.Scheme = &Custom;
  Custom.attach(Ctx);
  Trans = std::make_unique<Translator>(*Mem, &Custom, Config.Translation);
  Cache = std::make_unique<TbCache>(*Trans);
  EngineConfig EngineCfg;
  EngineCfg.Profile = Config.Profile;
  EngineCfg.MaxBlocksPerCpu = Config.MaxBlocksPerCpu;
  EngineCfg.MaxWallNanosPerCpu =
      static_cast<uint64_t>(Config.MaxSecondsPerCpu * 1e9);
  Exec = std::make_unique<Engine>(Ctx, *Cache, EngineCfg);
}

void Machine::prepareRun() {
  Ctx.Scheme->reset(); // The active scheme (may be a custom one).
  if (Htm)
    Htm->resetStats();
  for (unsigned Tid = 0; Tid < Config.NumThreads; ++Tid) {
    VCpu &Cpu = Cpus[Tid];
    Cpu.resetForRun(Prog.entryAddr());
    // Entry conventions: r0 = tid, sp = private stack top (16-aligned),
    // stacks carved from the top of guest memory downwards.
    Cpu.Regs[0] = Tid;
    uint64_t StackTop = Config.MemBytes - Tid * Config.StackBytes;
    Cpu.Regs[guest::RegSp] = alignDown(StackTop - 16, 16);
  }
}

RunResult Machine::collectResult(bool AllHalted, uint64_t FaultsBefore,
                                 uint64_t LockWaitsBefore) const {
  RunResult Result;
  Result.AllHalted = AllHalted;
  for (const VCpu &Cpu : Cpus) {
    Result.Total.merge(Cpu.Counters);
    Result.Profile.merge(Cpu.Profile);
    Result.PerCpu.push_back(Cpu.Counters);
    Result.Events.merge(Cpu.Events);
    Result.PerCpuEvents.push_back(Cpu.Events);
  }
  if (Htm)
    Result.Htm = Htm->stats();
  Result.ExclusiveSections = Excl.exclusiveCount();
  Result.RecoveredFaults = FaultGuard::recoveredFaultCount() - FaultsBefore;
  Result.TbLockWaits = Cache->lockWaits() - LockWaitsBefore;
  // Make the run visible process-wide: tools and long-lived embedders read
  // the aggregated events from CounterRegistry::snapshot().
  Result.Events.flushToRegistry();
  if (Result.TbLockWaits) {
    static std::atomic<uint64_t> *const ShardLockWaits =
        CounterRegistry::instance().counter("engine.shard.lock_waits");
    ShardLockWaits->fetch_add(Result.TbLockWaits, std::memory_order_relaxed);
  }
  return Result;
}

ErrorOr<RunResult> Machine::run() {
  prepareRun();
  uint64_t FaultsBefore = FaultGuard::recoveredFaultCount();
  uint64_t LockWaitsBefore = Cache->lockWaits();

  std::vector<std::thread> Threads;
  std::vector<ErrorOr<RunStatus>> Statuses(Config.NumThreads,
                                           ErrorOr<RunStatus>(
                                               RunStatus::Halted));
  // Start gate: guest threads must overlap in time, not run back-to-back
  // as their host threads happen to get spawned (essential on few-core
  // hosts where a whole workload can fit in one scheduling quantum).
  std::atomic<unsigned> Ready{0};
  std::atomic<bool> Go{false};
  Threads.reserve(Config.NumThreads);
  for (unsigned Tid = 0; Tid < Config.NumThreads; ++Tid)
    Threads.emplace_back([this, Tid, &Statuses, &Ready, &Go] {
      Ready.fetch_add(1, std::memory_order_acq_rel);
      while (!Go.load(std::memory_order_acquire))
        std::this_thread::yield();
      Statuses[Tid] = Exec->runCpu(Cpus[Tid]);
    });
  while (Ready.load(std::memory_order_acquire) != Config.NumThreads)
    std::this_thread::yield();
  uint64_t WallStart = monotonicNanos();
  Go.store(true, std::memory_order_release);
  for (std::thread &Thread : Threads)
    Thread.join();
  uint64_t WallEnd = monotonicNanos();

  bool AllHalted = true;
  for (unsigned Tid = 0; Tid < Config.NumThreads; ++Tid) {
    if (!Statuses[Tid])
      return Statuses[Tid].error();
    if (*Statuses[Tid] != RunStatus::Halted)
      AllHalted = false;
  }

  RunResult Result = collectResult(AllHalted, FaultsBefore, LockWaitsBefore);
  Result.WallSeconds = static_cast<double>(WallEnd - WallStart) * 1e-9;
  return Result;
}

ErrorOr<RunResult> Machine::runCooperative(uint64_t BlocksPerSlice) {
  RoundRobinSchedule Sched;
  return runScheduled(Sched, BlocksPerSlice);
}

ErrorOr<RunResult> Machine::runScheduled(ScheduleController &Sched,
                                         uint64_t BlocksPerSlice,
                                         SliceObserver *Observer) {
  assert(BlocksPerSlice > 0 && "slice must be positive");
  prepareRun();
  uint64_t FaultsBefore = FaultGuard::recoveredFaultCount();
  uint64_t LockWaitsBefore = Cache->lockWaits();
  Sched.begin(Config.NumThreads);

  // A vCPU leaves the runnable set when it halts or exhausts its block /
  // time budget (TimedOut); the run ends when the set empties or either
  // the controller or the observer stops it.
  std::vector<bool> TimedOut(Config.NumThreads, false);
  std::vector<unsigned> Runnable;
  uint64_t StepIndex = 0;

  uint64_t WallStart = monotonicNanos();
  while (true) {
    Runnable.clear();
    for (unsigned Tid = 0; Tid < Config.NumThreads; ++Tid)
      if (!Cpus[Tid].Halted && !TimedOut[Tid])
        Runnable.push_back(Tid);
    if (Runnable.empty())
      break;

    int Choice = Sched.pickNext(Runnable);
    if (Choice < 0)
      break;
    assert(static_cast<unsigned>(Choice) < Config.NumThreads &&
           !Cpus[Choice].Halted && !TimedOut[Choice] &&
           "controller picked a non-runnable tid");

    auto StatusOrErr = Exec->stepBlocks(Cpus[Choice], BlocksPerSlice);
    if (!StatusOrErr)
      return StatusOrErr.error();
    if (*StatusOrErr == RunStatus::TimedOut)
      TimedOut[Choice] = true;

    bool Continue =
        !Observer ||
        Observer->onSlice(static_cast<unsigned>(Choice), StepIndex);
    ++StepIndex;
    if (!Continue)
      break;
  }
  uint64_t WallEnd = monotonicNanos();

  bool AllHalted = true;
  for (unsigned Tid = 0; Tid < Config.NumThreads; ++Tid)
    AllHalted = AllHalted && Cpus[Tid].Halted;

  RunResult Result = collectResult(AllHalted, FaultsBefore, LockWaitsBefore);
  Result.WallSeconds = static_cast<double>(WallEnd - WallStart) * 1e-9;
  return Result;
}
