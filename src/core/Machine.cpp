//===- core/Machine.cpp - Public emulator facade --------------------------------===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/Machine.h"

#include "core/Snapshot.h"
#include "engine/jit/Jit.h"
#include "guest/Assembler.h"
#include "mem/FaultGuard.h"
#include "support/BitUtils.h"
#include "support/Compiler.h"
#include "support/Logging.h"
#include "support/Stats.h"
#include "support/Timing.h"
#include "support/Trace.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <cstdlib>
#include <thread>

using namespace llsc;

Machine::Machine(const MachineConfig &Config) : Config(Config) {}

Machine::~Machine() {
  // Complete the lifecycle: the active scheme may hold machine-visible
  // state (page protections, published tables). Retired schemes were
  // detached when they were swapped out.
  if (Scheme)
    Scheme->detach();
}

ErrorOr<std::unique_ptr<Machine>> Machine::create(const MachineConfig &Config) {
  if (Config.NumThreads == 0)
    return makeError("machine needs at least one thread");
  if (Config.StackBytes * Config.NumThreads >= Config.MemBytes)
    return makeError("stacks (%u x %llu) do not fit in guest memory",
                     Config.NumThreads,
                     static_cast<unsigned long long>(Config.StackBytes));

  auto M = std::unique_ptr<Machine>(new Machine(Config));

  auto MemOrErr = GuestMemory::create(Config.MemBytes);
  if (!MemOrErr)
    return MemOrErr.error();
  M->Mem = MemOrErr.take();

  const SchemeTraits &Traits = schemeTraits(Config.Scheme);
  if (Traits.RequiresHtm) {
    SoftHtmConfig SoftConfig = Config.SoftHtm;
    SoftConfig.MaxThreads = std::max(SoftConfig.MaxThreads,
                                     Config.NumThreads);
    M->Htm = Config.ForceSoftHtm ? createSoftHtm(SoftConfig)
                                 : createBestHtm(SoftConfig);
  }

  M->Scheme =
      createScheme(Config.Scheme, Config.HstTableLog2, Config.HtmMaxRetries);

  M->Ctx.Mem = M->Mem.get();
  M->Ctx.Excl = &M->Excl;
  M->Ctx.Htm = M->Htm.get();
  M->Ctx.Scheme = M->Scheme.get();
  M->Ctx.NumThreads = Config.NumThreads;
  M->Ctx.ExclPendingAddr = M->Excl.pendingFlagAddr();
  M->Ctx.FastEpochAddr = M->Mem->fastPathEpochAddr();
  M->Scheme->attach(M->Ctx);

  M->Trans = std::make_unique<Translator>(*M->Mem,
                                          input::inputArch(Config.Arch),
                                          M->Scheme.get(),
                                          Config.Translation);
  M->Cache = std::make_shared<TbCache>();

  EngineConfig EngineCfg;
  EngineCfg.Profile = Config.Profile;
  EngineCfg.MaxBlocksPerCpu = Config.MaxBlocksPerCpu;
  EngineCfg.MaxWallNanosPerCpu =
      static_cast<uint64_t>(Config.MaxSecondsPerCpu * 1e9);
  M->Exec = std::make_unique<Engine>(M->Ctx, *M->Cache, *M->Trans, EngineCfg);

  // Tier-1 JIT, on supported hosts: region allocation failure or an
  // explicit disable leaves TheJit null and the machine tier-0 only.
  if (LLSC_JIT_SUPPORTED && Config.Jit && !std::getenv("LLSC_NO_JIT")) {
    jit::JitConfig JitCfg;
    JitCfg.HotThreshold =
        std::getenv("LLSC_FORCE_JIT") ? 0 : Config.JitHotThreshold;
    M->TheJit = jit::Jit::create(JitCfg);
    if (M->TheJit) {
      M->Cache->setListener(M->TheJit.get());
      M->Exec->setJit(M->TheJit.get());
    }
  }

  M->Cpus.resize(Config.NumThreads);
  for (unsigned Tid = 0; Tid < Config.NumThreads; ++Tid) {
    M->Cpus[Tid].Tid = Tid;
    M->Cpus[Tid].Ctx = &M->Ctx;
    M->Cpus[Tid].ProfilingEnabled = Config.Profile;
  }

  // The page-protection schemes rely on recoverable faults; installing the
  // handler here keeps the first run free of lazy-init hiccups.
  FaultGuard::ensureInstalled();
  return M;
}

/// Identity of a program image as the translator sees it: the bytes and
/// where they sit. Symbols are metadata; they never reach translation.
static uint64_t programImageHash(const guest::Program &Prog) {
  uint64_t Hash = 0xcbf29ce484222325ULL; // FNV-1a 64.
  auto Mix = [&Hash](uint64_t V) {
    for (unsigned I = 0; I < 8; ++I) {
      Hash ^= (V >> (I * 8)) & 0xff;
      Hash *= 0x100000001b3ULL;
    }
  };
  Mix(Prog.baseAddr());
  Mix(Prog.entryAddr());
  Mix(Prog.image().size());
  for (uint8_t Byte : Prog.image()) {
    Hash ^= Byte;
    Hash *= 0x100000001b3ULL;
  }
  return Hash;
}

ErrorOr<void> Machine::load(input::GuestImage Image) {
  if (Image.Arch != Config.Arch)
    return makeError("image arch '%s' does not match machine arch '%s' "
                     "(the frontend is fixed at Machine::create)",
                     input::guestArchName(Image.Arch),
                     input::guestArchName(Config.Arch));
  guest::Program NewProg = std::move(Image.Prog);
  auto LoadedOrErr = Mem->loadProgram(NewProg);
  if (!LoadedOrErr)
    return LoadedOrErr.error();
  // Translations are a pure function of the image bytes plus per-machine
  // translator config, the frontend (fixed at create) and the attached
  // scheme (whose change paths flush on their own), so a byte-identical
  // reload — the pooled-reuse pattern in serve/MachinePool.h — keeps the
  // previous job's code cache warm and skips retranslation entirely.
  // Guest stores into the code region are not tracked (the engine assumes
  // no self-modifying code), which is the same contract a single run
  // already has.
  uint64_t Hash = programImageHash(NewProg);
  if (Hash != LoadedImageHash) {
    // A shared cache holds translations siblings still execute; walk away
    // to a fresh private cache instead of flushing under them.
    if (CodeShared)
      privatizeCode();
    else
      Cache->flush();
    LoadedImageHash = Hash;
  }
  Prog = std::move(NewProg);
  return {};
}

ErrorOr<void> Machine::loadProgram(guest::Program NewProg) {
  return load(input::GuestImage(input::GuestArch::Grv, std::move(NewProg)));
}

ErrorOr<void> Machine::loadAssembly(std::string_view Source,
                                    uint64_t BaseAddr) {
  auto ProgOrErr = guest::assemble(Source, BaseAddr);
  if (!ProgOrErr)
    return ProgOrErr.error();
  return loadProgram(ProgOrErr.take());
}

void Machine::reset() {
  // 1. Scheme state: releases monitors, restores PST page protections,
  //    zeroes HST tables — the reset() half of the lifecycle contract.
  Ctx.Scheme->reset();

  // 2. Counter rollover. The previous job's numbers were merged into its
  //    JobReport by collectResult when the run ended; zero the live
  //    blocks so the next job starts clean.
  for (VCpu &Cpu : Cpus)
    Cpu.resetForRun(/*EntryPc=*/0);
  AdaptiveEvents.reset();
  if (Htm)
    Htm->resetStats();

  // 3. Code cache: live translations survive the reset — they depend only
  //    on the image bytes, and loadProgram() flushes if the next image
  //    differs — so a pooled machine re-running the same program (the
  //    batch-service steady state) skips retranslation entirely. Blocks
  //    retired by earlier hot-swap flushes, and the retired schemes their
  //    helpers reference, are freed now: no vCPU runs between jobs, so
  //    nothing can hold a stale pointer. A *shared* cache is left alone:
  //    siblings execute out of it, and it holds no retired blocks by
  //    construction (every flush path privatizes first).
  if (!CodeShared) {
    Cache->reapRetired();
    RetiredSchemes.clear();
  }

  // 4. Guest memory and program. resetZero punches the backing pages out
  //    of the memfd — O(1) RSS release instead of a 64 MiB memset — and
  //    the next touch faults in a fresh zero page. An attached snapshot
  //    is detached inside resetZero; drop our handle on it too.
  Mem->resetZero();
  AttachedSnapshot.reset();
  RestorePoint.reset();
  PendingCpuRestore = false;
  Prog = guest::Program();
  ++Resets;
}

void Machine::acquireFloor() {
  // Quiesce + drain. Holding the floor parks every vCPU at a TB boundary,
  // but a vCPU may already be *queued* for its own SC exclusive section —
  // and schemes capture monitor validity before queuing (Hst checks
  // Cpu.Monitor, Pst snapshots AddrOk), so letting that SC resume against
  // reset scheme state could succeed on stale evidence: a false SC
  // success, the one outcome a swap or snapshot must never produce.
  // Release and re-acquire until ours is the only section, so queued
  // old-state SCs complete under their own semantics first. This
  // terminates: each queued SC section is finite, and new ones cannot
  // arrive while we hold the floor (queuing requires the requester to be
  // running).
  for (;;) {
    Excl.startExclusive(/*SelfRunning=*/false);
    if (Excl.soleExclusive())
      break;
    Excl.endExclusive(/*SelfRunning=*/false);
    std::this_thread::yield();
  }
}

void Machine::setScheme(std::unique_ptr<AtomicScheme> NewScheme) {
  assert(NewScheme && "setScheme(nullptr)");
  assert(NewScheme->state() == SchemeState::Detached &&
         "setScheme requires a freshly created (Detached) scheme");
  acquireFloor();
  setSchemeLocked(std::move(NewScheme));
  Excl.endExclusive(/*SelfRunning=*/false);
}

void Machine::setSchemeLocked(std::unique_ptr<AtomicScheme> NewScheme) {
  // Blocks retired by the previous swap are now unreachable: every parked
  // vCPU re-resolves its block by cache generation before touching it
  // (engine/Engine.cpp), and the jump caches were invalidated by that
  // flush. Free them, and with them the scheme whose helpers they called.
  // A shared cache is exempt: siblings still run out of it, and it holds
  // no retired blocks anyway (shared caches are never flushed).
  if (!CodeShared) {
    Cache->reapRetired();
    RetiredSchemes.clear();
  }

  // Break cross-instruction state on every vCPU: open HTM transactions or
  // exclusive-fallback floors (onCpuStopped), then the armed LL window
  // (clearExclusive). An SC whose LL predates the swap will simply fail —
  // the architecture permits spurious SC failure at any point.
  for (VCpu &Cpu : Cpus) {
    Scheme->onCpuStopped(Cpu);
    Scheme->clearExclusive(Cpu);
  }
  // Detach returns the machine to scheme-neutral state: page protections
  // restored, published tables unpublished (the AtomicScheme contract).
  Scheme->detach();

  // A swap may introduce the machine's first HTM-backed scheme.
  if (NewScheme->traits().RequiresHtm && !Htm) {
    SoftHtmConfig SoftConfig = Config.SoftHtm;
    SoftConfig.MaxThreads = std::max(SoftConfig.MaxThreads, Config.NumThreads);
    Htm = Config.ForceSoftHtm ? createSoftHtm(SoftConfig)
                              : createBestHtm(SoftConfig);
    Ctx.Htm = Htm.get();
  }

  Ctx.Scheme = NewScheme.get();
  NewScheme->attach(Ctx);
  Trans->setHooks(NewScheme.get());
  RetiredSchemes.push_back(std::move(Scheme));
  Scheme = std::move(NewScheme);

  // Flush last, after the new hooks are in place: translated blocks embed
  // scheme instrumentation (and helper pointers into the scheme object),
  // so executing a stale block under the new scheme would be a
  // correctness bug. Retired blocks stay allocated until the next swap —
  // a resuming vCPU may still hold a pointer for one last generation
  // check. When the cache is co-owned by a snapshot, flushing would yank
  // warm translations out from under sibling clones — walk away to fresh
  // private caches instead; the shared ones live on untouched.
  if (CodeShared) {
    privatizeCode();
    // Page-protection schemes need own-memfd backing (their remap entry
    // points restore memfd pages); fold the CoW view into own backing
    // before the new scheme starts protecting.
    if (Mem->snapshotAttached() && Scheme->traits().UsesPageProtection) {
      if (auto R = Mem->privatizeFromSnapshot(); !R)
        LLSC_ERROR("privatizing snapshot memory for scheme swap failed: %s",
                   R.error().message().c_str());
      AttachedSnapshot.reset();
    }
  } else {
    Cache->flush();
  }
}

void Machine::privatizeCode() {
  Cache = std::make_shared<TbCache>();
  if (TheJit) {
    // A fresh JIT, not a shared one: compiled code lives in the old Jit's
    // regions, co-owned by the snapshot. Same config resolution as
    // create().
    jit::JitConfig JitCfg;
    JitCfg.HotThreshold =
        std::getenv("LLSC_FORCE_JIT") ? 0 : Config.JitHotThreshold;
    TheJit = jit::Jit::create(JitCfg);
  }
  if (TheJit)
    Cache->setListener(TheJit.get());
  Exec->setCache(Cache.get());
  Exec->setJit(TheJit.get());
  // Jump-cache entries point into the old shared cache's blocks; the
  // generation trick cannot catch a cache *swap* (the fresh cache also
  // starts at generation 1), so clear explicitly. Generation 0 never
  // matches a live cache.
  for (VCpu &Cpu : Cpus) {
    Cpu.JmpCache.clear();
    Cpu.JmpCache.Generation = 0;
  }
  CodeShared = false;
}

ErrorOr<std::shared_ptr<const MachineSnapshot>> Machine::snapshot() {
  if (Prog.image().empty())
    return makeError("snapshot requires a loaded program");
  acquireFloor();

  // Break cross-instruction state on every vCPU, then reset the scheme:
  // the captured image must be exclusive-monitor neutral (no armed LL
  // window — its SC simply fails, which the architecture permits), with
  // page protections restored and published tables at their attach state,
  // so any clone of any scheme kind can restore from it.
  for (VCpu &Cpu : Cpus) {
    Scheme->onCpuStopped(Cpu);
    Scheme->clearExclusive(Cpu);
  }
  Scheme->reset();

  auto Snap = std::make_shared<MachineSnapshot>();
  Snap->Config = Config;
  Snap->SchemeAtCapture = Scheme->traits().Kind;
  Snap->Prog = Prog;
  Snap->ImageHash = LoadedImageHash;

  auto FdOrErr = Mem->snapshotTo();
  if (!FdOrErr) {
    Excl.endExclusive(/*SelfRunning=*/false);
    return FdOrErr.error();
  }
  Snap->MemFd = FdOrErr.take();
  Snap->MemBytes = Mem->size();

  Snap->Cpus.resize(Config.NumThreads);
  bool MidRun = false;
  for (unsigned Tid = 0; Tid < Config.NumThreads; ++Tid) {
    const VCpu &Cpu = Cpus[Tid];
    MachineSnapshot::CpuState &S = Snap->Cpus[Tid];
    std::copy(std::begin(Cpu.Regs), std::end(Cpu.Regs), std::begin(S.Regs));
    S.Pc = Cpu.Pc;
    S.Halted = Cpu.Halted;
    if (!Cpu.Halted && Cpu.Pc != 0)
      MidRun = true;
  }
  Snap->MidRun = MidRun;

  // Share the warm code when translations are machine-neutral — the
  // serve-layer headline: clones start with warm tier-0 and tier-1 code
  // and recompile nothing. HST-HELPER bakes a scheme-instance pointer
  // into its helper records (SchemeTraits::NeutralTranslations is
  // false), so its snapshots carry memory + registers only.
  if (Scheme->traits().NeutralTranslations) {
    if (!CodeShared) {
      // Retired blocks reference retired schemes; free both now (we are
      // quiesced) so the shared cache holds live blocks only.
      Cache->reapRetired();
      RetiredSchemes.clear();
      CodeShared = true;
    }
    Snap->Cache = Cache;
    Snap->Jit = TheJit;
  }

  Excl.endExclusive(/*SelfRunning=*/false);
  return std::shared_ptr<const MachineSnapshot>(std::move(Snap));
}

ErrorOr<void> Machine::restoreFrom(std::shared_ptr<const MachineSnapshot> Snap) {
  if (!Snap)
    return makeError("restoreFrom(null snapshot)");
  if (Snap->MemBytes != Mem->size() ||
      Snap->Config.NumThreads != Config.NumThreads)
    return makeError(
        "snapshot shape mismatch: snapshot has %u threads / %llu mem bytes, "
        "machine has %u / %llu",
        Snap->Config.NumThreads,
        static_cast<unsigned long long>(Snap->MemBytes), Config.NumThreads,
        static_cast<unsigned long long>(Mem->size()));
  // Shared translations (and the captured register file) are in the
  // snapshot arch's lowering; restoring across frontends would execute
  // one ISA's code under another's conventions.
  if (Snap->Config.Arch != Config.Arch)
    return makeError("snapshot guest arch '%s' does not match machine "
                     "arch '%s'",
                     input::guestArchName(Snap->Config.Arch),
                     input::guestArchName(Config.Arch));

  // Fast path — this machine is already a clone of this very snapshot
  // (the pool's restore-on-release steady state): revert CoW-dirty pages
  // with one madvise and reset architectural state. O(pages dirtied by
  // the last job), no syscalls proportional to memory size.
  if (AttachedSnapshot == Snap) {
    Scheme->reset();
    Mem->resetToSnapshot();
    for (VCpu &Cpu : Cpus)
      Cpu.resetForRun(/*EntryPc=*/0);
    AdaptiveEvents.reset();
    if (Htm)
      Htm->resetStats();
    RestorePoint = Snap;
    PendingCpuRestore = Snap->MidRun;
    return {};
  }

  // Cold path — first restore on this machine (or a re-target to a
  // different snapshot). Re-attach the capture-time scheme kind first:
  // shared translations embed that kind's instrumentation.
  if (Scheme->traits().Kind != Snap->SchemeAtCapture)
    setScheme(createScheme(Snap->SchemeAtCapture, Config.HstTableLog2,
                           Config.HtmMaxRetries));
  Scheme->reset();

  if (Scheme->traits().UsesPageProtection) {
    // PST-family: remap entry points restore own-memfd backing, so a CoW
    // attachment is off the table — deep-copy the image instead.
    if (auto R = Mem->restoreCopyFrom(Snap->MemFd); !R)
      return R.error();
    AttachedSnapshot.reset();
  } else {
    if (auto R = Mem->attachSnapshotCow(Snap->MemFd); !R)
      return R.error();
    AttachedSnapshot = Snap;
  }

  if (Snap->Cache && Cache != Snap->Cache) {
    // Adopt the shared warm code (our old private cache is simply
    // dropped; nothing executes during restore). The snapshot's Jit is
    // the cache's listener already — wired by the donor.
    Cache = Snap->Cache;
    TheJit = Snap->Jit;
    Exec->setCache(Cache.get());
    Exec->setJit(TheJit.get());
    CodeShared = true;
    LoadedImageHash = Snap->ImageHash;
  } else if (!Snap->Cache && LoadedImageHash != Snap->ImageHash) {
    // Memory/register-only snapshot over a different image: our cached
    // translations are stale.
    if (CodeShared)
      privatizeCode();
    else
      Cache->flush();
    LoadedImageHash = Snap->ImageHash;
  }

  Prog = Snap->Prog;
  for (VCpu &Cpu : Cpus)
    Cpu.resetForRun(/*EntryPc=*/0);
  AdaptiveEvents.reset();
  if (Htm)
    Htm->resetStats();
  RestorePoint = Snap;
  PendingCpuRestore = Snap->MidRun;
  return {};
}

void Machine::prepareRun() {
  Ctx.Scheme->reset(); // The active scheme (may be a custom one).
  AdaptiveEvents.reset();
  if (Htm)
    Htm->resetStats();
  const input::InputArch &Frontend = input::inputArch(Config.Arch);
  for (unsigned Tid = 0; Tid < Config.NumThreads; ++Tid) {
    VCpu &Cpu = Cpus[Tid];
    Cpu.resetForRun(Prog.entryAddr());
    // Entry conventions are the frontend's: which register carries the
    // tid, which is the stack pointer (GRV: r0/r13, RV32: a0/x2). Stacks
    // are carved from the top of guest memory downwards.
    uint64_t StackTop = Config.MemBytes - Tid * Config.StackBytes;
    Frontend.setupEntry(Cpu, Tid, StackTop);
  }

  // A mid-run snapshot restore replaces the fresh-entry conventions with
  // the captured architectural state: the clone resumes where the donor
  // was quiesced. One-shot — a later run on the same machine starts from
  // the program entry again.
  if (PendingCpuRestore && RestorePoint) {
    for (unsigned Tid = 0; Tid < Config.NumThreads; ++Tid) {
      const MachineSnapshot::CpuState &S = RestorePoint->Cpus[Tid];
      VCpu &Cpu = Cpus[Tid];
      std::copy(std::begin(S.Regs), std::end(S.Regs), std::begin(Cpu.Regs));
      Cpu.Pc = S.Pc;
      Cpu.Halted = S.Halted;
    }
    PendingCpuRestore = false;
  }
}

Machine::RunBaseline Machine::sampleBaseline() const {
  RunBaseline Base;
  Base.Faults = FaultGuard::recoveredFaultCount();
  Base.LockWaits = Cache->lockWaits();
  Base.ExclSections = Excl.exclusiveCount();
  return Base;
}

RunResult Machine::collectResult(bool AllHalted,
                                 const RunBaseline &Base) const {
  RunResult Result;
  Result.AllHalted = AllHalted;
  for (const VCpu &Cpu : Cpus) {
    Result.Total.merge(Cpu.Counters);
    Result.Profile.merge(Cpu.Profile);
    Result.PerCpu.push_back(Cpu.Counters);
    Result.Events.merge(Cpu.Events);
    Result.PerCpuEvents.push_back(Cpu.Events);
  }
  Result.Events.merge(AdaptiveEvents);
  Result.FinalSchemeKind = Scheme->traits().Kind;
  Result.GuestArch = Config.Arch;
  if (Htm)
    Result.Htm = Htm->stats();
  // Deltas, not absolutes: the underlying totals are monotonic across
  // Machine reuse (reset() does not rewind them), so each job's report
  // covers only its own run.
  Result.ExclusiveSections = Excl.exclusiveCount() - Base.ExclSections;
  Result.RecoveredFaults = FaultGuard::recoveredFaultCount() - Base.Faults;
  Result.TbLockWaits = Cache->lockWaits() - Base.LockWaits;
  // Make the run visible process-wide: tools and long-lived embedders read
  // the aggregated events from CounterRegistry::snapshot().
  Result.Events.flushToRegistry();
  if (Result.TbLockWaits) {
    static std::atomic<uint64_t> *const ShardLockWaits =
        CounterRegistry::instance().counter("engine.shard.lock_waits");
    ShardLockWaits->fetch_add(Result.TbLockWaits, std::memory_order_relaxed);
  }
  return Result;
}

ErrorOr<RunResult> Machine::run(const RunOptions &Opts) {
  if (Prog.image().empty())
    return makeError("no program loaded (run after create or reset "
                     "requires loadProgram/loadAssembly first)");

  // Per-run budget overrides (the serve layer's per-job deadlines and
  // block budgets); the engine reads them at loop entry, so setting them
  // here — before any vCPU starts — is race-free.
  EngineBudgets Budgets;
  Budgets.MaxBlocksPerCpu =
      Opts.MaxBlocksPerCpu.value_or(Config.MaxBlocksPerCpu);
  Budgets.MaxWallNanosPerCpu = static_cast<uint64_t>(
      Opts.MaxSecondsPerCpu.value_or(Config.MaxSecondsPerCpu) * 1e9);
  Exec->setBudgets(Budgets);

  switch (Opts.ExecMode) {
  case RunOptions::Mode::Threaded:
    return runThreaded();
  case RunOptions::Mode::Cooperative:
  case RunOptions::Mode::Scheduled:
    return runSliced(Opts);
  }
  llsc_unreachable("bad RunOptions::Mode");
}

ErrorOr<RunResult> Machine::runThreaded() {
  prepareRun();
  RunBaseline Base = sampleBaseline();

  std::vector<std::thread> Threads;
  std::vector<ErrorOr<RunStatus>> Statuses(Config.NumThreads,
                                           ErrorOr<RunStatus>(
                                               RunStatus::Halted));
  // Start gate: guest threads must overlap in time, not run back-to-back
  // as their host threads happen to get spawned (essential on few-core
  // hosts where a whole workload can fit in one scheduling quantum).
  std::atomic<unsigned> Ready{0};
  std::atomic<bool> Go{false};
  Threads.reserve(Config.NumThreads);
  for (unsigned Tid = 0; Tid < Config.NumThreads; ++Tid)
    Threads.emplace_back([this, Tid, &Statuses, &Ready, &Go] {
      Ready.fetch_add(1, std::memory_order_acq_rel);
      while (!Go.load(std::memory_order_acquire))
        std::this_thread::yield();
      Statuses[Tid] = Exec->runCpu(Cpus[Tid]);
    });
  while (Ready.load(std::memory_order_acquire) != Config.NumThreads)
    std::this_thread::yield();

  // The adaptive controller is a plain host thread beside the vCPUs; it
  // swaps schemes via the same quiesce/drain protocol as setScheme, so it
  // must never itself be a vCPU (the floor holder cannot park).
  std::atomic<bool> StopController{false};
  std::thread Controller;
  if (Config.Adaptive)
    Controller = std::thread([this, &StopController] {
      adaptiveLoop(StopController);
    });

  uint64_t WallStart = monotonicNanos();
  Go.store(true, std::memory_order_release);
  for (std::thread &Thread : Threads)
    Thread.join();
  uint64_t WallEnd = monotonicNanos();

  if (Controller.joinable()) {
    StopController.store(true, std::memory_order_release);
    Controller.join();
  }

  bool AllHalted = true;
  for (unsigned Tid = 0; Tid < Config.NumThreads; ++Tid) {
    if (!Statuses[Tid])
      return Statuses[Tid].error();
    if (*Statuses[Tid] != RunStatus::Halted)
      AllHalted = false;
  }

  RunResult Result = collectResult(AllHalted, Base);
  Result.WallSeconds = static_cast<double>(WallEnd - WallStart) * 1e-9;
  return Result;
}

void Machine::adaptiveLoop(const std::atomic<bool> &Stop) {
  AdaptiveController Controller(Scheme->traits().Kind, Config.AdaptiveTuning);
  EventCounters Previous;
  uint64_t PreviousNs = monotonicNanos();
  const auto Interval =
      std::chrono::milliseconds(Config.AdaptiveTuning.SampleIntervalMs);

  while (!Stop.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(Interval);
    if (Stop.load(std::memory_order_acquire))
      break;

    // Take the floor for the sample; if another exclusive section is
    // queued behind us (a scheme SC), yield to it and retry next tick
    // instead of spin-holding the world (the setScheme drain loop is only
    // justified when a swap is actually happening).
    Excl.startExclusive(/*SelfRunning=*/false);
    if (!Excl.soleExclusive()) {
      Excl.endExclusive(/*SelfRunning=*/false);
      continue;
    }

    // The per-vCPU counters are plain non-atomic fields; reading them is
    // legal only here, under the floor — parked and exited vCPUs alike
    // synchronized with us through the ExclusiveContext mutex.
    EventCounters Current;
    for (const VCpu &Cpu : Cpus)
      Current.merge(Cpu.Events);
    uint64_t NowNs = monotonicNanos();

    AdaptiveSample Delta;
    Delta.WallNs = NowNs - PreviousNs;
    Delta.ScAttempted = Current.ScAttempted - Previous.ScAttempted;
    Delta.ScFailHashConflict =
        Current.ScFailHashConflict - Previous.ScFailHashConflict;
    Delta.FalseSharingFaults =
        Current.FalseSharingFaults - Previous.FalseSharingFaults;
    Delta.ExclWaitNs = Current.ExclWaitNs - Previous.ExclWaitNs;
    Delta.HtmBegins = Current.HtmBegins - Previous.HtmBegins;
    Delta.HtmFallbacks = Current.HtmFallbacks - Previous.HtmFallbacks;
    Previous = Current;
    PreviousNs = NowNs;

    if (auto Want = Controller.onSample(Delta, NowNs)) {
      setSchemeLocked(
          createScheme(*Want, Config.HstTableLog2, Config.HtmMaxRetries));
      Controller.onSwapComplete(*Want, NowNs);
      if (TraceRecorder *Recorder = TraceRecorder::active())
        // Tid 0's trace buffer normally belongs to vCPU 0, but that vCPU
        // is parked under our floor — the write is ordered, not racing.
        Recorder->instant(0, "adaptive.swap", "adaptive", "to_kind",
                          static_cast<uint64_t>(*Want));
    }
    Excl.endExclusive(/*SelfRunning=*/false);
  }

  // Published after the vCPU join + controller join in run(), before
  // collectResult reads it.
  AdaptiveEvents.AdaptiveSamples = Controller.samples();
  AdaptiveEvents.AdaptiveSwaps = Controller.swaps();
  AdaptiveEvents.AdaptiveCooldownBlocked = Controller.cooldownBlocked();
}

ErrorOr<RunResult> Machine::runSliced(const RunOptions &Opts) {
  assert(Opts.BlocksPerSlice > 0 && "slice must be positive");
  // Cooperative mode is Scheduled mode with the canonical round-robin
  // controller and no observer.
  RoundRobinSchedule RoundRobin;
  ScheduleController *Sched = Opts.Sched;
  if (Opts.ExecMode == RunOptions::Mode::Cooperative)
    Sched = &RoundRobin;
  assert(Sched && "Scheduled mode requires RunOptions::Sched");
  SliceObserver *Observer = Opts.Observer;
  uint64_t BlocksPerSlice = Opts.BlocksPerSlice;

  prepareRun();
  RunBaseline Base = sampleBaseline();
  Sched->begin(Config.NumThreads);

  // A vCPU leaves the runnable set when it halts or exhausts its block /
  // time budget (TimedOut); the run ends when the set empties or either
  // the controller or the observer stops it.
  std::vector<bool> TimedOut(Config.NumThreads, false);
  std::vector<unsigned> Runnable;
  uint64_t StepIndex = 0;

  uint64_t WallStart = monotonicNanos();
  while (true) {
    Runnable.clear();
    for (unsigned Tid = 0; Tid < Config.NumThreads; ++Tid)
      if (!Cpus[Tid].Halted && !TimedOut[Tid])
        Runnable.push_back(Tid);
    if (Runnable.empty())
      break;

    int Choice = Sched->pickNext(Runnable);
    if (Choice < 0)
      break;
    assert(static_cast<unsigned>(Choice) < Config.NumThreads &&
           !Cpus[Choice].Halted && !TimedOut[Choice] &&
           "controller picked a non-runnable tid");

    auto StatusOrErr = Exec->stepBlocks(Cpus[Choice], BlocksPerSlice);
    if (!StatusOrErr)
      return StatusOrErr.error();
    if (*StatusOrErr == RunStatus::TimedOut)
      TimedOut[Choice] = true;

    bool Continue =
        !Observer ||
        Observer->onSlice(static_cast<unsigned>(Choice), StepIndex);
    ++StepIndex;
    if (!Continue)
      break;
  }
  uint64_t WallEnd = monotonicNanos();

  bool AllHalted = true;
  for (unsigned Tid = 0; Tid < Config.NumThreads; ++Tid)
    AllHalted = AllHalted && Cpus[Tid].Halted;

  RunResult Result = collectResult(AllHalted, Base);
  Result.WallSeconds = static_cast<double>(WallEnd - WallStart) * 1e-9;
  return Result;
}
