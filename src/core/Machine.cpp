//===- core/Machine.cpp - Public emulator facade --------------------------------===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/Machine.h"

#include "engine/jit/Jit.h"
#include "guest/Assembler.h"
#include "mem/FaultGuard.h"
#include "support/BitUtils.h"
#include "support/Compiler.h"
#include "support/Logging.h"
#include "support/Stats.h"
#include "support/Timing.h"
#include "support/Trace.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <cstdlib>
#include <thread>

using namespace llsc;

Machine::Machine(const MachineConfig &Config) : Config(Config) {}

Machine::~Machine() {
  // Complete the lifecycle: the active scheme may hold machine-visible
  // state (page protections, published tables). Retired schemes were
  // detached when they were swapped out.
  if (Scheme)
    Scheme->detach();
}

ErrorOr<std::unique_ptr<Machine>> Machine::create(const MachineConfig &Config) {
  if (Config.NumThreads == 0)
    return makeError("machine needs at least one thread");
  if (Config.StackBytes * Config.NumThreads >= Config.MemBytes)
    return makeError("stacks (%u x %llu) do not fit in guest memory",
                     Config.NumThreads,
                     static_cast<unsigned long long>(Config.StackBytes));

  auto M = std::unique_ptr<Machine>(new Machine(Config));

  auto MemOrErr = GuestMemory::create(Config.MemBytes);
  if (!MemOrErr)
    return MemOrErr.error();
  M->Mem = MemOrErr.take();

  const SchemeTraits &Traits = schemeTraits(Config.Scheme);
  if (Traits.RequiresHtm) {
    SoftHtmConfig SoftConfig = Config.SoftHtm;
    SoftConfig.MaxThreads = std::max(SoftConfig.MaxThreads,
                                     Config.NumThreads);
    M->Htm = Config.ForceSoftHtm ? createSoftHtm(SoftConfig)
                                 : createBestHtm(SoftConfig);
  }

  M->Scheme =
      createScheme(Config.Scheme, Config.HstTableLog2, Config.HtmMaxRetries);

  M->Ctx.Mem = M->Mem.get();
  M->Ctx.Excl = &M->Excl;
  M->Ctx.Htm = M->Htm.get();
  M->Ctx.Scheme = M->Scheme.get();
  M->Ctx.NumThreads = Config.NumThreads;
  M->Scheme->attach(M->Ctx);

  M->Trans = std::make_unique<Translator>(*M->Mem, M->Scheme.get(),
                                          Config.Translation);
  M->Cache = std::make_unique<TbCache>(*M->Trans);

  EngineConfig EngineCfg;
  EngineCfg.Profile = Config.Profile;
  EngineCfg.MaxBlocksPerCpu = Config.MaxBlocksPerCpu;
  EngineCfg.MaxWallNanosPerCpu =
      static_cast<uint64_t>(Config.MaxSecondsPerCpu * 1e9);
  M->Exec = std::make_unique<Engine>(M->Ctx, *M->Cache, EngineCfg);

  // Tier-1 JIT, on supported hosts: region allocation failure or an
  // explicit disable leaves TheJit null and the machine tier-0 only.
  if (LLSC_JIT_SUPPORTED && Config.Jit && !std::getenv("LLSC_NO_JIT")) {
    jit::JitConfig JitCfg;
    JitCfg.HotThreshold =
        std::getenv("LLSC_FORCE_JIT") ? 0 : Config.JitHotThreshold;
    M->TheJit = jit::Jit::create(JitCfg, M->Excl.pendingFlagAddr(),
                                 M->Mem->fastPathEpochAddr());
    if (M->TheJit) {
      M->Cache->setListener(M->TheJit.get());
      M->Exec->setJit(M->TheJit.get());
    }
  }

  M->Cpus.resize(Config.NumThreads);
  for (unsigned Tid = 0; Tid < Config.NumThreads; ++Tid) {
    M->Cpus[Tid].Tid = Tid;
    M->Cpus[Tid].Ctx = &M->Ctx;
    M->Cpus[Tid].ProfilingEnabled = Config.Profile;
  }

  // The page-protection schemes rely on recoverable faults; installing the
  // handler here keeps the first run free of lazy-init hiccups.
  FaultGuard::ensureInstalled();
  return M;
}

/// Identity of a program image as the translator sees it: the bytes and
/// where they sit. Symbols are metadata; they never reach translation.
static uint64_t programImageHash(const guest::Program &Prog) {
  uint64_t Hash = 0xcbf29ce484222325ULL; // FNV-1a 64.
  auto Mix = [&Hash](uint64_t V) {
    for (unsigned I = 0; I < 8; ++I) {
      Hash ^= (V >> (I * 8)) & 0xff;
      Hash *= 0x100000001b3ULL;
    }
  };
  Mix(Prog.baseAddr());
  Mix(Prog.entryAddr());
  Mix(Prog.image().size());
  for (uint8_t Byte : Prog.image()) {
    Hash ^= Byte;
    Hash *= 0x100000001b3ULL;
  }
  return Hash;
}

ErrorOr<void> Machine::loadProgram(guest::Program NewProg) {
  auto LoadedOrErr = Mem->loadProgram(NewProg);
  if (!LoadedOrErr)
    return LoadedOrErr.error();
  // Translations are a pure function of the image bytes plus per-machine
  // translator config and the attached scheme (whose change paths flush on
  // their own), so a byte-identical reload — the pooled-reuse pattern in
  // serve/MachinePool.h — keeps the previous job's code cache warm and
  // skips retranslation entirely. Guest stores into the code region are
  // not tracked (the engine assumes no self-modifying code), which is the
  // same contract a single run already has.
  uint64_t Hash = programImageHash(NewProg);
  if (Hash != LoadedImageHash) {
    Cache->flush();
    LoadedImageHash = Hash;
  }
  Prog = std::move(NewProg);
  return {};
}

ErrorOr<void> Machine::loadAssembly(std::string_view Source,
                                    uint64_t BaseAddr) {
  auto ProgOrErr = guest::assemble(Source, BaseAddr);
  if (!ProgOrErr)
    return ProgOrErr.error();
  return loadProgram(ProgOrErr.take());
}

void Machine::reset() {
  // 1. Scheme state: releases monitors, restores PST page protections,
  //    zeroes HST tables — the reset() half of the lifecycle contract.
  Ctx.Scheme->reset();

  // 2. Counter rollover. The previous job's numbers were merged into its
  //    JobReport by collectResult when the run ended; zero the live
  //    blocks so the next job starts clean.
  for (VCpu &Cpu : Cpus)
    Cpu.resetForRun(/*EntryPc=*/0);
  AdaptiveEvents.reset();
  if (Htm)
    Htm->resetStats();

  // 3. Code cache: live translations survive the reset — they depend only
  //    on the image bytes, and loadProgram() flushes if the next image
  //    differs — so a pooled machine re-running the same program (the
  //    batch-service steady state) skips retranslation entirely. Blocks
  //    retired by earlier hot-swap flushes, and the retired schemes their
  //    helpers reference, are freed now: no vCPU runs between jobs, so
  //    nothing can hold a stale pointer.
  Cache->reapRetired();
  RetiredSchemes.clear();

  // 4. Guest memory and program. resetZero punches the backing pages out
  //    of the memfd — O(1) RSS release instead of a 64 MiB memset — and
  //    the next touch faults in a fresh zero page.
  Mem->resetZero();
  Prog = guest::Program();
  ++Resets;
}

void Machine::setScheme(std::unique_ptr<AtomicScheme> NewScheme) {
  assert(NewScheme && "setScheme(nullptr)");
  assert(NewScheme->state() == SchemeState::Detached &&
         "setScheme requires a freshly created (Detached) scheme");
  // Quiesce + drain. Holding the floor parks every vCPU at a TB boundary,
  // but a vCPU may already be *queued* for its own SC exclusive section —
  // and schemes capture monitor validity before queuing (Hst checks
  // Cpu.Monitor, Pst snapshots AddrOk), so letting that SC resume against
  // the new scheme's empty state could succeed on stale evidence: a false
  // SC success, the one outcome the swap must never produce. Release and
  // re-acquire until ours is the only section, so queued old-scheme SCs
  // complete under old-scheme semantics first. This terminates: each
  // queued SC section is finite, and new ones cannot arrive while we hold
  // the floor (queuing requires the requester to be running).
  for (;;) {
    Excl.startExclusive(/*SelfRunning=*/false);
    if (Excl.soleExclusive())
      break;
    Excl.endExclusive(/*SelfRunning=*/false);
    std::this_thread::yield();
  }
  setSchemeLocked(std::move(NewScheme));
  Excl.endExclusive(/*SelfRunning=*/false);
}

void Machine::setSchemeLocked(std::unique_ptr<AtomicScheme> NewScheme) {
  // Blocks retired by the previous swap are now unreachable: every parked
  // vCPU re-resolves its block by cache generation before touching it
  // (engine/Engine.cpp), and the jump caches were invalidated by that
  // flush. Free them, and with them the scheme whose helpers they called.
  Cache->reapRetired();
  RetiredSchemes.clear();

  // Break cross-instruction state on every vCPU: open HTM transactions or
  // exclusive-fallback floors (onCpuStopped), then the armed LL window
  // (clearExclusive). An SC whose LL predates the swap will simply fail —
  // the architecture permits spurious SC failure at any point.
  for (VCpu &Cpu : Cpus) {
    Scheme->onCpuStopped(Cpu);
    Scheme->clearExclusive(Cpu);
  }
  // Detach returns the machine to scheme-neutral state: page protections
  // restored, published tables unpublished (the AtomicScheme contract).
  Scheme->detach();

  // A swap may introduce the machine's first HTM-backed scheme.
  if (NewScheme->traits().RequiresHtm && !Htm) {
    SoftHtmConfig SoftConfig = Config.SoftHtm;
    SoftConfig.MaxThreads = std::max(SoftConfig.MaxThreads, Config.NumThreads);
    Htm = Config.ForceSoftHtm ? createSoftHtm(SoftConfig)
                              : createBestHtm(SoftConfig);
    Ctx.Htm = Htm.get();
  }

  Ctx.Scheme = NewScheme.get();
  NewScheme->attach(Ctx);
  Trans->setHooks(NewScheme.get());
  RetiredSchemes.push_back(std::move(Scheme));
  Scheme = std::move(NewScheme);

  // Flush last, after the new hooks are in place: translated blocks embed
  // scheme instrumentation (and helper pointers into the scheme object),
  // so executing a stale block under the new scheme would be a
  // correctness bug. Retired blocks stay allocated until the next swap —
  // a resuming vCPU may still hold a pointer for one last generation
  // check.
  Cache->flush();
}

void Machine::prepareRun() {
  Ctx.Scheme->reset(); // The active scheme (may be a custom one).
  AdaptiveEvents.reset();
  if (Htm)
    Htm->resetStats();
  for (unsigned Tid = 0; Tid < Config.NumThreads; ++Tid) {
    VCpu &Cpu = Cpus[Tid];
    Cpu.resetForRun(Prog.entryAddr());
    // Entry conventions: r0 = tid, sp = private stack top (16-aligned),
    // stacks carved from the top of guest memory downwards.
    Cpu.Regs[0] = Tid;
    uint64_t StackTop = Config.MemBytes - Tid * Config.StackBytes;
    Cpu.Regs[guest::RegSp] = alignDown(StackTop - 16, 16);
  }
}

Machine::RunBaseline Machine::sampleBaseline() const {
  RunBaseline Base;
  Base.Faults = FaultGuard::recoveredFaultCount();
  Base.LockWaits = Cache->lockWaits();
  Base.ExclSections = Excl.exclusiveCount();
  return Base;
}

RunResult Machine::collectResult(bool AllHalted,
                                 const RunBaseline &Base) const {
  RunResult Result;
  Result.AllHalted = AllHalted;
  for (const VCpu &Cpu : Cpus) {
    Result.Total.merge(Cpu.Counters);
    Result.Profile.merge(Cpu.Profile);
    Result.PerCpu.push_back(Cpu.Counters);
    Result.Events.merge(Cpu.Events);
    Result.PerCpuEvents.push_back(Cpu.Events);
  }
  Result.Events.merge(AdaptiveEvents);
  Result.FinalSchemeKind = Scheme->traits().Kind;
  if (Htm)
    Result.Htm = Htm->stats();
  // Deltas, not absolutes: the underlying totals are monotonic across
  // Machine reuse (reset() does not rewind them), so each job's report
  // covers only its own run.
  Result.ExclusiveSections = Excl.exclusiveCount() - Base.ExclSections;
  Result.RecoveredFaults = FaultGuard::recoveredFaultCount() - Base.Faults;
  Result.TbLockWaits = Cache->lockWaits() - Base.LockWaits;
  // Make the run visible process-wide: tools and long-lived embedders read
  // the aggregated events from CounterRegistry::snapshot().
  Result.Events.flushToRegistry();
  if (Result.TbLockWaits) {
    static std::atomic<uint64_t> *const ShardLockWaits =
        CounterRegistry::instance().counter("engine.shard.lock_waits");
    ShardLockWaits->fetch_add(Result.TbLockWaits, std::memory_order_relaxed);
  }
  return Result;
}

ErrorOr<RunResult> Machine::run(const RunOptions &Opts) {
  if (Prog.image().empty())
    return makeError("no program loaded (run after create or reset "
                     "requires loadProgram/loadAssembly first)");

  // Per-run budget overrides (the serve layer's per-job deadlines and
  // block budgets); the engine reads them at loop entry, so setting them
  // here — before any vCPU starts — is race-free.
  EngineBudgets Budgets;
  Budgets.MaxBlocksPerCpu =
      Opts.MaxBlocksPerCpu.value_or(Config.MaxBlocksPerCpu);
  Budgets.MaxWallNanosPerCpu = static_cast<uint64_t>(
      Opts.MaxSecondsPerCpu.value_or(Config.MaxSecondsPerCpu) * 1e9);
  Exec->setBudgets(Budgets);

  switch (Opts.ExecMode) {
  case RunOptions::Mode::Threaded:
    return runThreaded();
  case RunOptions::Mode::Cooperative:
  case RunOptions::Mode::Scheduled:
    return runSliced(Opts);
  }
  llsc_unreachable("bad RunOptions::Mode");
}

ErrorOr<RunResult> Machine::runThreaded() {
  prepareRun();
  RunBaseline Base = sampleBaseline();

  std::vector<std::thread> Threads;
  std::vector<ErrorOr<RunStatus>> Statuses(Config.NumThreads,
                                           ErrorOr<RunStatus>(
                                               RunStatus::Halted));
  // Start gate: guest threads must overlap in time, not run back-to-back
  // as their host threads happen to get spawned (essential on few-core
  // hosts where a whole workload can fit in one scheduling quantum).
  std::atomic<unsigned> Ready{0};
  std::atomic<bool> Go{false};
  Threads.reserve(Config.NumThreads);
  for (unsigned Tid = 0; Tid < Config.NumThreads; ++Tid)
    Threads.emplace_back([this, Tid, &Statuses, &Ready, &Go] {
      Ready.fetch_add(1, std::memory_order_acq_rel);
      while (!Go.load(std::memory_order_acquire))
        std::this_thread::yield();
      Statuses[Tid] = Exec->runCpu(Cpus[Tid]);
    });
  while (Ready.load(std::memory_order_acquire) != Config.NumThreads)
    std::this_thread::yield();

  // The adaptive controller is a plain host thread beside the vCPUs; it
  // swaps schemes via the same quiesce/drain protocol as setScheme, so it
  // must never itself be a vCPU (the floor holder cannot park).
  std::atomic<bool> StopController{false};
  std::thread Controller;
  if (Config.Adaptive)
    Controller = std::thread([this, &StopController] {
      adaptiveLoop(StopController);
    });

  uint64_t WallStart = monotonicNanos();
  Go.store(true, std::memory_order_release);
  for (std::thread &Thread : Threads)
    Thread.join();
  uint64_t WallEnd = monotonicNanos();

  if (Controller.joinable()) {
    StopController.store(true, std::memory_order_release);
    Controller.join();
  }

  bool AllHalted = true;
  for (unsigned Tid = 0; Tid < Config.NumThreads; ++Tid) {
    if (!Statuses[Tid])
      return Statuses[Tid].error();
    if (*Statuses[Tid] != RunStatus::Halted)
      AllHalted = false;
  }

  RunResult Result = collectResult(AllHalted, Base);
  Result.WallSeconds = static_cast<double>(WallEnd - WallStart) * 1e-9;
  return Result;
}

void Machine::adaptiveLoop(const std::atomic<bool> &Stop) {
  AdaptiveController Controller(Scheme->traits().Kind, Config.AdaptiveTuning);
  EventCounters Previous;
  uint64_t PreviousNs = monotonicNanos();
  const auto Interval =
      std::chrono::milliseconds(Config.AdaptiveTuning.SampleIntervalMs);

  while (!Stop.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(Interval);
    if (Stop.load(std::memory_order_acquire))
      break;

    // Take the floor for the sample; if another exclusive section is
    // queued behind us (a scheme SC), yield to it and retry next tick
    // instead of spin-holding the world (the setScheme drain loop is only
    // justified when a swap is actually happening).
    Excl.startExclusive(/*SelfRunning=*/false);
    if (!Excl.soleExclusive()) {
      Excl.endExclusive(/*SelfRunning=*/false);
      continue;
    }

    // The per-vCPU counters are plain non-atomic fields; reading them is
    // legal only here, under the floor — parked and exited vCPUs alike
    // synchronized with us through the ExclusiveContext mutex.
    EventCounters Current;
    for (const VCpu &Cpu : Cpus)
      Current.merge(Cpu.Events);
    uint64_t NowNs = monotonicNanos();

    AdaptiveSample Delta;
    Delta.WallNs = NowNs - PreviousNs;
    Delta.ScAttempted = Current.ScAttempted - Previous.ScAttempted;
    Delta.ScFailHashConflict =
        Current.ScFailHashConflict - Previous.ScFailHashConflict;
    Delta.FalseSharingFaults =
        Current.FalseSharingFaults - Previous.FalseSharingFaults;
    Delta.ExclWaitNs = Current.ExclWaitNs - Previous.ExclWaitNs;
    Delta.HtmBegins = Current.HtmBegins - Previous.HtmBegins;
    Delta.HtmFallbacks = Current.HtmFallbacks - Previous.HtmFallbacks;
    Previous = Current;
    PreviousNs = NowNs;

    if (auto Want = Controller.onSample(Delta, NowNs)) {
      setSchemeLocked(
          createScheme(*Want, Config.HstTableLog2, Config.HtmMaxRetries));
      Controller.onSwapComplete(*Want, NowNs);
      if (TraceRecorder *Recorder = TraceRecorder::active())
        // Tid 0's trace buffer normally belongs to vCPU 0, but that vCPU
        // is parked under our floor — the write is ordered, not racing.
        Recorder->instant(0, "adaptive.swap", "adaptive", "to_kind",
                          static_cast<uint64_t>(*Want));
    }
    Excl.endExclusive(/*SelfRunning=*/false);
  }

  // Published after the vCPU join + controller join in run(), before
  // collectResult reads it.
  AdaptiveEvents.AdaptiveSamples = Controller.samples();
  AdaptiveEvents.AdaptiveSwaps = Controller.swaps();
  AdaptiveEvents.AdaptiveCooldownBlocked = Controller.cooldownBlocked();
}

ErrorOr<RunResult> Machine::runSliced(const RunOptions &Opts) {
  assert(Opts.BlocksPerSlice > 0 && "slice must be positive");
  // Cooperative mode is Scheduled mode with the canonical round-robin
  // controller and no observer.
  RoundRobinSchedule RoundRobin;
  ScheduleController *Sched = Opts.Sched;
  if (Opts.ExecMode == RunOptions::Mode::Cooperative)
    Sched = &RoundRobin;
  assert(Sched && "Scheduled mode requires RunOptions::Sched");
  SliceObserver *Observer = Opts.Observer;
  uint64_t BlocksPerSlice = Opts.BlocksPerSlice;

  prepareRun();
  RunBaseline Base = sampleBaseline();
  Sched->begin(Config.NumThreads);

  // A vCPU leaves the runnable set when it halts or exhausts its block /
  // time budget (TimedOut); the run ends when the set empties or either
  // the controller or the observer stops it.
  std::vector<bool> TimedOut(Config.NumThreads, false);
  std::vector<unsigned> Runnable;
  uint64_t StepIndex = 0;

  uint64_t WallStart = monotonicNanos();
  while (true) {
    Runnable.clear();
    for (unsigned Tid = 0; Tid < Config.NumThreads; ++Tid)
      if (!Cpus[Tid].Halted && !TimedOut[Tid])
        Runnable.push_back(Tid);
    if (Runnable.empty())
      break;

    int Choice = Sched->pickNext(Runnable);
    if (Choice < 0)
      break;
    assert(static_cast<unsigned>(Choice) < Config.NumThreads &&
           !Cpus[Choice].Halted && !TimedOut[Choice] &&
           "controller picked a non-runnable tid");

    auto StatusOrErr = Exec->stepBlocks(Cpus[Choice], BlocksPerSlice);
    if (!StatusOrErr)
      return StatusOrErr.error();
    if (*StatusOrErr == RunStatus::TimedOut)
      TimedOut[Choice] = true;

    bool Continue =
        !Observer ||
        Observer->onSlice(static_cast<unsigned>(Choice), StepIndex);
    ++StepIndex;
    if (!Continue)
      break;
  }
  uint64_t WallEnd = monotonicNanos();

  bool AllHalted = true;
  for (unsigned Tid = 0; Tid < Config.NumThreads; ++Tid)
    AllHalted = AllHalted && Cpus[Tid].Halted;

  RunResult Result = collectResult(AllHalted, Base);
  Result.WallSeconds = static_cast<double>(WallEnd - WallStart) * 1e-9;
  return Result;
}
