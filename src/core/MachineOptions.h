//===- core/MachineOptions.h - Flags -> MachineConfig -----------*- C++-*-===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Semantic half of the shared option table (support/MachineOptions.h):
/// turns the registered flag values into a MachineConfig, resolving scheme
/// names — including the "adaptive" pseudo-scheme, which enables the
/// adaptive controller and starts from --adaptive-start — and the tuning
/// knobs. Split from the registration half so support/ stays free of
/// atomic/ and core/ dependencies.
///
//===----------------------------------------------------------------------===//

#ifndef LLSC_CORE_MACHINEOPTIONS_H
#define LLSC_CORE_MACHINEOPTIONS_H

#include "core/Machine.h"
#include "support/MachineOptions.h"

namespace llsc {

/// Builds a MachineConfig from parsed flag values. Flags the tool opted
/// out of (null pointers) keep the MachineConfig defaults. Fails on an
/// unknown scheme name (in --scheme or --adaptive-start).
ErrorOr<MachineConfig>
machineConfigFromOptions(const MachineOptionValues &Values);

} // namespace llsc

#endif // LLSC_CORE_MACHINEOPTIONS_H
