//===- ir/TranslationHooks.h - Scheme instrumentation interface -*- C++-*-===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The translate-time interface through which an atomic-emulation scheme
/// customizes code generation. This is the axis the paper's design space
/// varies along:
///
///  - HST inlines a short hash-table update before every plain store
///    (emitStorePrologue with IR ops — cheap);
///  - PICO-ST and PST route every plain store through a runtime helper
///    (storesViaHelper — expensive, either because the helper locks or
///    because the store may fault);
///  - PST-REMAP additionally routes loads through a guarded helper
///    (loadsViaHelper) because a remapped page faults on reads too;
///  - PICO-CAS and HST-WEAK leave plain stores untouched.
///
/// LL/SC instructions always translate to LoadLink/StoreCond micro-ops,
/// which the engine dispatches to the active scheme at execution time.
///
//===----------------------------------------------------------------------===//

#ifndef LLSC_IR_TRANSLATIONHOOKS_H
#define LLSC_IR_TRANSLATIONHOOKS_H

#include "ir/IRBuilder.h"

namespace llsc {
namespace ir {

/// Translate-time customization points implemented by atomic schemes.
class TranslationHooks {
public:
  virtual ~TranslationHooks() = default;

  /// Invoked before each plain guest store, with the (not yet offset)
  /// address value id. Implementations emit instrumentation ops via \p B
  /// (typically inside setInstrumentMode(true)). \p Offset is the
  /// displacement the store will add to \p Addr.
  virtual void emitStorePrologue(IRBuilder &B, ValueId Addr, int64_t Offset,
                                 ValueId Value, unsigned Size) {}

  /// \returns true if plain stores must execute via the scheme's storeHook
  /// (IROp::HelperStore) instead of a raw StoreG.
  virtual bool storesViaHelper() const { return false; }

  /// \returns true if plain loads must execute via the scheme's loadHook
  /// (IROp::HelperLoad) instead of a raw LoadG.
  virtual bool loadsViaHelper() const { return false; }
};

} // namespace ir
} // namespace llsc

#endif // LLSC_IR_TRANSLATIONHOOKS_H
