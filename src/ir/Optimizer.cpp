//===- ir/Optimizer.cpp - Block-local IR optimizations -----------------------===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/Optimizer.h"

#include <cassert>
#include <optional>
#include <vector>

using namespace llsc;
using namespace llsc::ir;

namespace {

/// Which of A/B an opcode actually reads.
void operandsRead(const IRInst &I, bool &ReadsA, bool &ReadsB) {
  switch (I.Op) {
  case IROp::MovImm:
  case IROp::ReadSpecial:
  case IROp::ClearExcl:
  case IROp::Fence:
  case IROp::Yield:
  case IROp::SetPcImm:
  case IROp::Halt:
    ReadsA = ReadsB = false;
    return;
  case IROp::Add:
  case IROp::Sub:
  case IROp::Mul:
  case IROp::UDiv:
  case IROp::SDiv:
  case IROp::URem:
  case IROp::SRem:
  case IROp::And:
  case IROp::Or:
  case IROp::Xor:
  case IROp::Shl:
  case IROp::Shr:
  case IROp::Sar:
  case IROp::SltS:
  case IROp::SltU:
  case IROp::StoreG:
  case IROp::StoreHost:
  case IROp::StoreCond:
  case IROp::HelperStore:
  case IROp::Helper:
  case IROp::AtomicAddG:
  case IROp::AtomicRmwG:
  case IROp::BrCond:
    ReadsA = ReadsB = true;
    return;
  default:
    ReadsA = true;
    ReadsB = false;
    return;
  }
}

/// \returns the immediate form of a reg-reg ALU op, or NumOps if none.
IROp immFormOf(IROp Op) {
  switch (Op) {
  case IROp::Add:
    return IROp::AddImm;
  case IROp::And:
    return IROp::AndImm;
  case IROp::Or:
    return IROp::OrImm;
  case IROp::Xor:
    return IROp::XorImm;
  case IROp::Shl:
    return IROp::ShlImm;
  case IROp::Shr:
    return IROp::ShrImm;
  case IROp::Sar:
    return IROp::SarImm;
  case IROp::SltS:
    return IROp::SltSImm;
  case IROp::SltU:
    return IROp::SltUImm;
  default:
    return IROp::NumOps;
  }
}

bool isRegRegAlu(IROp Op) {
  switch (Op) {
  case IROp::Add:
  case IROp::Sub:
  case IROp::Mul:
  case IROp::UDiv:
  case IROp::SDiv:
  case IROp::URem:
  case IROp::SRem:
  case IROp::And:
  case IROp::Or:
  case IROp::Xor:
  case IROp::Shl:
  case IROp::Shr:
  case IROp::Sar:
  case IROp::SltS:
  case IROp::SltU:
    return true;
  default:
    return false;
  }
}

bool isImmAlu(IROp Op) {
  switch (Op) {
  case IROp::AddImm:
  case IROp::AndImm:
  case IROp::OrImm:
  case IROp::XorImm:
  case IROp::ShlImm:
  case IROp::ShrImm:
  case IROp::SarImm:
  case IROp::SltSImm:
  case IROp::SltUImm:
    return true;
  default:
    return false;
  }
}

void recountInstrumentOps(IRBlock &Block) {
  uint32_t Count = 0;
  for (const IRInst &I : Block.Insts)
    if (I.Flags & IRFlagInstrument)
      ++Count;
  Block.InstrumentOpCount = Count;
}

} // namespace

OptStats ir::foldConstants(IRBlock &Block) {
  OptStats Stats;
  std::vector<std::optional<uint64_t>> Known(Block.NumValues, std::nullopt);

  std::vector<IRInst> NewInsts;
  NewInsts.reserve(Block.Insts.size());
  bool Truncated = false;

  for (IRInst I : Block.Insts) {
    if (Truncated)
      break;

    auto KnownVal = [&](ValueId Id) { return Known[Id]; };
    auto Define = [&](ValueId Id, std::optional<uint64_t> Value) {
      Known[Id] = Value;
    };

    // Fold reg-reg ALU with both operands known, or rewrite to imm form.
    if (isRegRegAlu(I.Op)) {
      auto CA = KnownVal(I.A), CB = KnownVal(I.B);
      if (CA && CB) {
        uint64_t Result = evalAluOp(I.Op, *CA, *CB, 0);
        I = {IROp::MovImm, 0, I.Flags, CondCode::Eq, I.Dst, 0, 0,
             static_cast<int64_t>(Result)};
        ++Stats.ConstantsFolded;
      } else if (CB && immFormOf(I.Op) != IROp::NumOps) {
        I.Op = immFormOf(I.Op);
        I.Imm = static_cast<int64_t>(*CB);
        I.B = 0;
        ++Stats.ConstantsFolded;
      } else if (CA && (I.Op == IROp::Add || I.Op == IROp::And ||
                        I.Op == IROp::Or || I.Op == IROp::Xor)) {
        // Commutative: swap the constant into the immediate.
        I.Op = immFormOf(I.Op);
        I.Imm = static_cast<int64_t>(*CA);
        I.A = I.B;
        I.B = 0;
        ++Stats.ConstantsFolded;
      }
    } else if (isImmAlu(I.Op)) {
      if (auto CA = KnownVal(I.A)) {
        uint64_t Result = evalAluOp(I.Op, *CA, 0, I.Imm);
        I = {IROp::MovImm, 0, I.Flags, CondCode::Eq, I.Dst, 0, 0,
             static_cast<int64_t>(Result)};
        ++Stats.ConstantsFolded;
      }
    } else if (I.Op == IROp::Mov) {
      if (auto CA = KnownVal(I.A)) {
        I = {IROp::MovImm, 0, I.Flags, CondCode::Eq, I.Dst, 0, 0,
             static_cast<int64_t>(*CA)};
        ++Stats.ConstantsFolded;
      }
    } else if (I.Op == IROp::BrCond) {
      auto CA = KnownVal(I.A), CB = KnownVal(I.B);
      if (CA && CB) {
        if (evalCondCode(I.Cc, *CA, *CB)) {
          // Always taken: becomes the block terminator.
          I = {IROp::SetPcImm, 0, I.Flags, CondCode::Eq, 0, 0, 0, I.Imm};
          Truncated = true;
        } else {
          // Never taken: drop the op.
          ++Stats.ConstantsFolded;
          continue;
        }
        ++Stats.ConstantsFolded;
      }
    } else if (I.Op == IROp::LoadG || I.Op == IROp::StoreG ||
               I.Op == IROp::HelperStore || I.Op == IROp::HelperLoad ||
               I.Op == IROp::LoadHost || I.Op == IROp::StoreHost) {
      // Fold a known base into the displacement.
      if (auto CA = KnownVal(I.A)) {
        // Keep the op but materialize the constant base: A + Imm is fully
        // known; represent as A=value via a MovImm would need a temp, so
        // instead fold into Imm with A pointing at a zero... simplest:
        // leave memory ops untouched when the base is constant — the
        // interpreter cost is identical. (No-op on purpose.)
        (void)CA;
      }
    }

    // Update known-ness for the defined value.
    if (writesDst(I.Op)) {
      if (I.Op == IROp::MovImm)
        Define(I.Dst, static_cast<uint64_t>(I.Imm));
      else if (I.Op == IROp::Mov)
        Define(I.Dst, Known[I.A]);
      else
        Define(I.Dst, std::nullopt);
    }
    NewInsts.push_back(I);
  }

  Block.Insts = std::move(NewInsts);
  recountInstrumentOps(Block);
  return Stats;
}

OptStats ir::propagateCopies(IRBlock &Block) {
  OptStats Stats;
  // CopyOf[V] = S means V currently holds the same value as S.
  std::vector<ValueId> CopyOf(Block.NumValues);
  std::vector<bool> HasCopy(Block.NumValues, false);

  auto Resolve = [&](ValueId V) {
    // Single-step resolution is enough because we canonicalize on insert.
    return HasCopy[V] ? CopyOf[V] : V;
  };
  auto InvalidateDef = [&](ValueId Def) {
    HasCopy[Def] = false;
    for (ValueId V = 0; V < Block.NumValues; ++V)
      if (HasCopy[V] && CopyOf[V] == Def)
        HasCopy[V] = false;
  };

  for (IRInst &I : Block.Insts) {
    bool ReadsA, ReadsB;
    operandsRead(I, ReadsA, ReadsB);
    if (ReadsA) {
      ValueId R = Resolve(I.A);
      if (R != I.A) {
        I.A = R;
        ++Stats.CopiesPropagated;
      }
    }
    if (ReadsB) {
      ValueId R = Resolve(I.B);
      if (R != I.B) {
        I.B = R;
        ++Stats.CopiesPropagated;
      }
    }
    if (writesDst(I.Op)) {
      InvalidateDef(I.Dst);
      if (I.Op == IROp::Mov && I.A != I.Dst) {
        CopyOf[I.Dst] = Resolve(I.A);
        HasCopy[I.Dst] = true;
      }
    }
  }
  return Stats;
}

namespace {
/// Ops that may observe guest register state beyond their explicit
/// operands (helpers receive the VCpu and could in principle read any
/// register), so register liveness must be conservatively revived there.
bool observesAllRegs(IROp Op) {
  switch (Op) {
  case IROp::LoadLink:
  case IROp::StoreCond:
  case IROp::ClearExcl:
  case IROp::Helper:
  case IROp::HelperStore:
  case IROp::HelperLoad:
  case IROp::SysCall:
  case IROp::AtomicAddG:
  case IROp::AtomicRmwG:
    return true;
  default:
    return false;
  }
}
} // namespace

OptStats ir::eliminateDeadOps(IRBlock &Block) {
  OptStats Stats;
  std::vector<bool> Live(Block.NumValues, false);
  // All guest registers are live-out of every block.
  for (ValueId V = 0; V < FirstTempId; ++V)
    Live[V] = true;

  std::vector<bool> Keep(Block.Insts.size(), true);
  for (size_t Index = Block.Insts.size(); Index-- > 0;) {
    const IRInst &I = Block.Insts[Index];
    bool DefinesDeadValue = writesDst(I.Op) && !Live[I.Dst];
    if (isPure(I.Op) && DefinesDeadValue) {
      Keep[Index] = false;
      ++Stats.DeadOpsRemoved;
      continue;
    }
    if (writesDst(I.Op))
      Live[I.Dst] = false; // Def kills liveness going upward.
    if (observesAllRegs(I.Op))
      for (ValueId V = 0; V < FirstTempId; ++V)
        Live[V] = true;
    bool ReadsA, ReadsB;
    operandsRead(I, ReadsA, ReadsB);
    if (ReadsA)
      Live[I.A] = true;
    if (ReadsB)
      Live[I.B] = true;
  }

  if (Stats.DeadOpsRemoved) {
    std::vector<IRInst> NewInsts;
    NewInsts.reserve(Block.Insts.size() - Stats.DeadOpsRemoved);
    for (size_t Index = 0; Index < Block.Insts.size(); ++Index)
      if (Keep[Index])
        NewInsts.push_back(Block.Insts[Index]);
    Block.Insts = std::move(NewInsts);
    recountInstrumentOps(Block);
  }
  return Stats;
}

OptStats ir::forwardStoresToLoads(IRBlock &Block) {
  OptStats Stats;
  struct TrackedStore {
    ValueId Base;
    int64_t Offset;
    uint8_t Size;
    ValueId Value;
  };
  std::vector<TrackedStore> Stores;

  auto InvalidateAll = [&] { Stores.clear(); };
  auto InvalidateValue = [&](ValueId Def) {
    // A redefined value id invalidates entries using it as base or value.
    for (size_t Index = 0; Index < Stores.size();) {
      if (Stores[Index].Base == Def || Stores[Index].Value == Def) {
        Stores[Index] = Stores.back();
        Stores.pop_back();
      } else {
        ++Index;
      }
    }
  };

  for (IRInst &I : Block.Insts) {
    switch (I.Op) {
    case IROp::StoreG: {
      // Keep only entries provably disjoint from this store: same base
      // value with non-overlapping ranges. Different bases may hold the
      // same address, so everything else is dropped.
      for (size_t Index = 0; Index < Stores.size();) {
        const TrackedStore &Tracked = Stores[Index];
        bool SameBase = Tracked.Base == I.A;
        bool Disjoint = SameBase &&
                        (Tracked.Offset + Tracked.Size <= I.Imm ||
                         I.Imm + I.Size <= Tracked.Offset);
        if (Disjoint) {
          ++Index;
        } else {
          Stores[Index] = Stores.back();
          Stores.pop_back();
        }
      }
      Stores.push_back({I.A, I.Imm, I.Size, I.B});
      break;
    }
    case IROp::LoadG: {
      if (I.Flags & IRFlagSignExtend)
        break; // Forwarding would need a re-extension; skip.
      for (const TrackedStore &Tracked : Stores) {
        if (Tracked.Base == I.A && Tracked.Offset == I.Imm &&
            Tracked.Size == I.Size && I.Size == 8) {
          // Only full-width forwards are value-preserving (narrower
          // loads zero-extend a truncation of the stored value).
          I = {IROp::Mov, 0, I.Flags, CondCode::Eq, I.Dst, Tracked.Value,
               0, 0};
          ++Stats.CopiesPropagated;
          break;
        }
      }
      break;
    }
    // Possibly aliasing or order-sensitive memory effects.
    case IROp::StoreCond:
    case IROp::HelperStore:
    case IROp::Helper:
    case IROp::AtomicAddG:
    case IROp::AtomicRmwG:
    case IROp::LoadLink:
    case IROp::ClearExcl:
    case IROp::Fence:
    case IROp::SysCall:
      InvalidateAll();
      break;
    default:
      break;
    }
    if (writesDst(I.Op))
      InvalidateValue(I.Dst);
  }
  return Stats;
}

OptStats ir::optimize(IRBlock &Block, unsigned MaxIterations) {
  OptStats Total;
  for (unsigned Iter = 0; Iter < MaxIterations; ++Iter) {
    OptStats Fold = foldConstants(Block);
    OptStats Copy = propagateCopies(Block);
    OptStats Forward = forwardStoresToLoads(Block);
    Copy.CopiesPropagated += Forward.CopiesPropagated;
    OptStats Dce = eliminateDeadOps(Block);
    Total.ConstantsFolded += Fold.ConstantsFolded + Copy.ConstantsFolded;
    Total.CopiesPropagated += Copy.CopiesPropagated;
    Total.DeadOpsRemoved += Dce.DeadOpsRemoved;
    if (Fold.ConstantsFolded == 0 && Copy.CopiesPropagated == 0 &&
        Dce.DeadOpsRemoved == 0)
      break;
  }
  return Total;
}
