//===- ir/Optimizer.h - Block-local IR optimizations ------------*- C++-*-===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Straight-line optimizations over translated blocks, run by the
/// translator before a block enters the code cache:
///
///  - constant folding / propagation (MOVZ/MOVK chains from the guest's
///    li/la expansion fold to a single MovImm),
///  - copy propagation,
///  - dead temp elimination.
///
/// The passes never remove ops with side effects, never remove writes to
/// guest registers (ids < FirstTempId), and never touch instrumentation
/// ordering relative to the stores it guards.
///
//===----------------------------------------------------------------------===//

#ifndef LLSC_IR_OPTIMIZER_H
#define LLSC_IR_OPTIMIZER_H

#include "ir/IR.h"

namespace llsc {
namespace ir {

/// Statistics from one optimize() run (for tests and -stats style output).
struct OptStats {
  unsigned ConstantsFolded = 0;
  unsigned CopiesPropagated = 0;
  unsigned DeadOpsRemoved = 0;
};

/// Folds ops whose operands are known constants into MovImm, and rewrites
/// reg+const address arithmetic into immediate forms.
OptStats foldConstants(IRBlock &Block);

/// Replaces reads of copies with their source while valid.
OptStats propagateCopies(IRBlock &Block);

/// Removes pure ops whose results are never read (temps only).
OptStats eliminateDeadOps(IRBlock &Block);

/// Forwards values from guest stores to later guest loads of the same
/// (base value, displacement, size) within the block, when no possibly
/// aliasing write or helper intervenes and the base/value registers are
/// unchanged. Loads become Movs (then fold away). Conservative: any
/// StoreG/StoreCond/HelperStore/Helper/AtomicAddG invalidates all tracked
/// stores; LoadLink too (its semantics observe memory order).
OptStats forwardStoresToLoads(IRBlock &Block);

/// Runs the standard pipeline (fold, copy-prop, fold, DCE) until fixpoint
/// or \p MaxIterations.
OptStats optimize(IRBlock &Block, unsigned MaxIterations = 4);

} // namespace ir
} // namespace llsc

#endif // LLSC_IR_OPTIMIZER_H
