//===- ir/IRPrinter.cpp - IR textual dump ------------------------------------===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/IRPrinter.h"

#include "guest/Isa.h"
#include "support/StringUtils.h"

using namespace llsc;
using namespace llsc::ir;

std::string ir::printValue(ValueId Id) {
  // GRV register names for the slots GRV defines; the extra machine
  // register-file slots (used by wider frontends like RV32) print as
  // plain g16..g31 — the printer is frontend-agnostic.
  if (Id < guest::NumGuestRegs)
    return std::string(guest::regName(Id));
  if (Id < FirstTempId)
    return formatString("g%u", static_cast<unsigned>(Id));
  // formatString rather than operator+: GCC 12's -O3 -Wrestrict trips a
  // false positive on const char* + std::string&& (PR105651).
  return formatString("t%u", static_cast<unsigned>(Id));
}

std::string ir::printInst(const IRInst &I) {
  auto V = [](ValueId Id) { return printValue(Id); };
  auto Imm = [&]() {
    return formatString("%lld", static_cast<long long>(I.Imm));
  };
  auto Hex = [&]() {
    return formatString("0x%llx", static_cast<unsigned long long>(I.Imm));
  };
  auto Mem = [&](const char *Space) {
    std::string Out = formatString("%s.%u [%s", Space, I.Size,
                                   V(I.A).c_str());
    if (I.Imm != 0)
      Out += formatString("%+lld", static_cast<long long>(I.Imm));
    Out += "]";
    return Out;
  };

  std::string Text;
  switch (I.Op) {
  case IROp::MovImm:
    Text = V(I.Dst) + " = " + Hex();
    break;
  case IROp::Mov:
    Text = V(I.Dst) + " = " + V(I.A);
    break;
  case IROp::Add:
  case IROp::Sub:
  case IROp::Mul:
  case IROp::UDiv:
  case IROp::SDiv:
  case IROp::URem:
  case IROp::SRem:
  case IROp::And:
  case IROp::Or:
  case IROp::Xor:
  case IROp::Shl:
  case IROp::Shr:
  case IROp::Sar:
  case IROp::SltS:
  case IROp::SltU:
    Text = V(I.Dst) + " = " + irOpName(I.Op) + " " + V(I.A) + ", " + V(I.B);
    break;
  case IROp::AddImm:
  case IROp::AndImm:
  case IROp::OrImm:
  case IROp::XorImm:
  case IROp::ShlImm:
  case IROp::ShrImm:
  case IROp::SarImm:
  case IROp::SltSImm:
  case IROp::SltUImm:
    Text = V(I.Dst) + " = " + irOpName(I.Op) + " " + V(I.A) + ", " + Imm();
    break;
  case IROp::LoadG:
    Text = V(I.Dst) + " = " + Mem("ldg") +
           ((I.Flags & IRFlagSignExtend) ? " sext" : "");
    break;
  case IROp::StoreG:
    Text = Mem("stg") + " = " + V(I.B);
    break;
  case IROp::LoadHost:
    Text = V(I.Dst) + " = " + Mem("ldh");
    break;
  case IROp::StoreHost:
    Text = Mem("sth") + " = " + V(I.B);
    break;
  case IROp::LoadLink:
    Text = V(I.Dst) + " = ll." + std::to_string(I.Size) + " [" + V(I.A) + "]";
    break;
  case IROp::StoreCond:
    Text = V(I.Dst) + " = sc." + std::to_string(I.Size) + " [" + V(I.A) +
           "], " + V(I.B);
    break;
  case IROp::ClearExcl:
    Text = "clrex";
    break;
  case IROp::Fence:
    Text = "fence";
    break;
  case IROp::HelperStore:
    Text = Mem("hstore") + " = " + V(I.B);
    break;
  case IROp::HelperLoad:
    Text = V(I.Dst) + " = " + Mem("hload") +
           ((I.Flags & IRFlagSignExtend) ? " sext" : "");
    break;
  case IROp::Helper:
    Text = V(I.Dst) + " = helper[" + Imm() + "](" + V(I.A) + ", " + V(I.B) +
           ")";
    break;
  case IROp::AtomicAddG:
    Text = V(I.Dst) + " = atomic_add." + std::to_string(I.Size) + " [" +
           V(I.A) + "], " + V(I.B);
    break;
  case IROp::AtomicRmwG:
    Text = V(I.Dst) + " = atomic_" +
           rmwKindName(static_cast<RmwKind>(I.Imm)) + "." +
           std::to_string(I.Size) + " [" + V(I.A) + "], " + V(I.B);
    break;
  case IROp::HstStoreTag:
    Text = "hst_tag." + std::to_string(I.Size) + " [" + V(I.A) +
           formatString("%+lld]", static_cast<long long>(I.Imm));
    break;
  case IROp::ReadSpecial:
    Text = V(I.Dst) + " = rdspec " + Imm();
    break;
  case IROp::SysCall:
    Text = V(I.Dst) + " = sys " + Imm() + "(" + V(I.A) + ")";
    break;
  case IROp::Yield:
    Text = "yield";
    break;
  case IROp::SetPcImm:
    Text = "pc = " + Hex();
    break;
  case IROp::SetPc:
    Text = "pc = " + V(I.A);
    break;
  case IROp::BrCond:
    Text = std::string("br.") + condCodeName(I.Cc) + " " + V(I.A) + ", " +
           V(I.B) + " -> " + Hex();
    break;
  case IROp::Halt:
    Text = "halt";
    break;
  case IROp::NumOps:
    Text = "<invalid>";
    break;
  }
  if (I.Flags & IRFlagInstrument)
    Text += "   ; instrument";
  return Text;
}

std::string ir::printBlock(const IRBlock &Block) {
  std::string Out = formatString(
      "block @ 0x%llx (%u guest insts, %u values, %u instrument ops)\n",
      static_cast<unsigned long long>(Block.GuestPc), Block.GuestInstCount,
      Block.NumValues, Block.InstrumentOpCount);
  for (const IRInst &I : Block.Insts)
    Out += "  " + printInst(I) + "\n";
  return Out;
}
