//===- ir/IR.h - Micro-op intermediate representation -----------*- C++-*-===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The translator's intermediate representation, modeled after QEMU's TCG:
/// each guest instruction lowers to a handful of micro-ops over an infinite
/// set of block-local values. Value ids below FirstTempId denote the guest
/// registers themselves (TCG "globals"); higher ids are block-local temps.
///
/// The atomic-emulation schemes inject micro-ops here — this is the paper's
/// key HST implementation point: store instrumentation is inlined at the IR
/// level (a short shift/mask/store sequence) instead of calling out to a
/// helper, which is what makes HST cheaper than PICO-ST (Section III-A).
///
//===----------------------------------------------------------------------===//

#ifndef LLSC_IR_IR_H
#define LLSC_IR_IR_H

#include "guest/Isa.h"

#include <cstdint>
#include <string>
#include <vector>

namespace llsc {
namespace ir {

/// Block-local value id. Ids [0, FirstTempId) name guest registers.
using ValueId = uint16_t;

/// First value id that denotes a temp rather than a guest register. Sized
/// by the widest frontend's register file (guest::MaxGuestRegs), not by
/// GRV's: value ids below this bound are architectural registers for
/// whichever input::InputArch produced the block.
constexpr ValueId FirstTempId = guest::MaxGuestRegs;

/// Micro-op opcodes.
enum class IROp : uint8_t {
  // Pure value ops.
  MovImm, ///< dst = Imm.
  Mov,    ///< dst = A.
  Add,    ///< dst = A + B (all ALU ops are 64-bit).
  Sub,
  Mul,
  UDiv, ///< Division by zero yields 0 (ARM-style).
  SDiv,
  URem,
  SRem,
  And,
  Or,
  Xor,
  Shl, ///< Shift amounts are taken modulo 64.
  Shr,
  Sar,
  SltS, ///< dst = (int64)A < (int64)B.
  SltU,
  AddImm, ///< dst = A + Imm.
  AndImm,
  OrImm,
  XorImm,
  ShlImm,
  ShrImm,
  SarImm,
  SltSImm,
  SltUImm,

  // Guest memory (addresses are guest-physical; Size in {1,2,4,8}).
  LoadG,  ///< dst = guest[A + Imm]; Flags SignExtend extends from Size*8.
  StoreG, ///< guest[A + Imm] = B.

  // Raw host memory, used by inline scheme instrumentation to touch
  // scheme-owned tables (e.g. the HST hash table). A + Imm is a host
  // virtual address. Accesses are relaxed host atomics.
  LoadHost,  ///< dst = *(SizeBytes*)(A + Imm).
  StoreHost, ///< *(SizeBytes*)(A + Imm) = B.

  // Atomic / exclusive operations, dispatched to the active AtomicScheme.
  LoadLink,  ///< dst = scheme.LL(cpu, addr=A, Size).
  StoreCond, ///< dst = scheme.SC(cpu, addr=A, val=B, Size) ? 0 : 1.
  ClearExcl, ///< scheme.clearExclusive(cpu).
  Fence,     ///< Sequentially-consistent fence.

  // Helper routing for schemes that need full store/load interposition
  // (PICO-ST's instrumented stores, PST's fault-tested stores,
  // PST-REMAP's guarded loads).
  HelperStore, ///< scheme.storeHook(cpu, addr=A+Imm, val=B, Size).
  HelperLoad,  ///< dst = scheme.loadHook(cpu, addr=A+Imm, Size, Flags).
  Helper,      ///< dst = Block.Helpers[Imm].Fn(ctx, cpu, A, B).

  // Host atomic read-modify-write on guest memory; emitted by the optional
  // rule-based translation pass for recognized LL/SC idioms (Section VI).
  AtomicAddG, ///< dst = atomic_fetch_add(guest[A], B) (Size).

  // Generalized host atomic RMW on guest memory: the Section VI rule-based
  // lowering of single-instruction guest atomics (RV32 AMOs). Imm selects
  // the operation (RmwKind); like AtomicAddG it bypasses the scheme and
  // runs as one sequentially-consistent host RMW.
  AtomicRmwG, ///< dst = atomic_rmw<Imm>(guest[A], B) (Size).

  // Fused HST store instrumentation: one micro-op tagging every 4-byte
  // granule covered by [A + Imm, A + Imm + Size) in the hash table the
  // active scheme published in MachineContext (aligned accesses of <= 4
  // bytes cover exactly one granule — the fast path). In a JIT the
  // instrumentation is ~4 inlined host instructions (Figure 5) — i.e. a
  // fraction of one interpreter dispatch — so modeling it as a single
  // micro-op preserves the paper's inline-vs-helper cost ratio under an
  // interpreted engine.
  HstStoreTag, ///< hst_table[granule & mask] = tid + 1 for covered granules.

  // Special reads and services.
  ReadSpecial, ///< dst = special value selected by Imm (SpecialValue).
  SysCall,     ///< dst = system service Imm with argument A (SysCall enum).
  Yield,       ///< Scheduling hint; not a terminator.

  // Terminators.
  SetPcImm, ///< pc = Imm; end of block.
  SetPc,    ///< pc = A; end of block.
  BrCond,   ///< if cc(A, B): pc = Imm, end of block; else fall through.
  Halt,     ///< Thread finished; end of block.

  NumOps
};

/// Selectors for ReadSpecial.
enum class SpecialValue : uint8_t {
  Tid = 0,        ///< Current guest thread id.
  NumThreads = 1, ///< Guest thread count of the machine.
  ClockNanos = 2, ///< Host monotonic nanoseconds.
};

/// Condition codes for BrCond.
enum class CondCode : uint8_t { Eq, Ne, LtS, LtU, GeS, GeU };

/// Operation selector for AtomicRmwG, carried in IRInst::Imm. The numeric
/// values are baked into emitted tier-1 code (thunk argument) — append only.
enum class RmwKind : uint8_t {
  Swap = 0, ///< dst = exchange(guest[A], B).
  Add = 1,  ///< dst = fetch_add(guest[A], B).
  And = 2,  ///< dst = fetch_and(guest[A], B).
  Or = 3,   ///< dst = fetch_or(guest[A], B).
  Xor = 4,  ///< dst = fetch_xor(guest[A], B).
};
constexpr unsigned NumRmwKinds = 5;

/// IRInst::Flags bits.
enum : uint8_t {
  IRFlagSignExtend = 1 << 0, ///< LoadG/HelperLoad sign-extends.
  IRFlagInstrument = 1 << 1, ///< Op was injected by scheme instrumentation.
  /// LoadLink/StoreCond: fault (error-halt) when A is not Size-aligned.
  /// RV32 requires LR/SC addresses naturally aligned; GRV does not. Bit
  /// position 1 << 2 is deliberately skipped: the engine's decoded flag
  /// space derives DecodedFlagCountInline there (engine/Decoded.h), and
  /// keeping pass-through bits at equal positions in both spaces lets
  /// decodeBlock copy them with a mask.
  IRFlagCheckAlign = 1 << 3,
};

/// One micro-op. Fields unused by an opcode are zero.
struct IRInst {
  IROp Op = IROp::MovImm;
  uint8_t Size = 0;  ///< Access size in bytes for memory ops.
  uint8_t Flags = 0; ///< IRFlag* bits.
  CondCode Cc = CondCode::Eq;
  ValueId Dst = 0;
  ValueId A = 0;
  ValueId B = 0;
  int64_t Imm = 0;

  bool operator==(const IRInst &Other) const = default;
};

/// Signature of a generic helper callable from IR. \p Cpu is the executing
/// VCpu (passed as void* to keep the IR library independent of the
/// runtime layer).
using HelperFnPtr = uint64_t (*)(void *Ctx, void *Cpu, uint64_t A, uint64_t B);

/// A registered helper for IROp::Helper.
struct HelperFn {
  HelperFnPtr Fn = nullptr;
  void *Ctx = nullptr;
  const char *Name = "";
};

/// A translated block: straight-line micro-ops for one guest basic block.
struct IRBlock {
  uint64_t GuestPc = 0;        ///< Guest address of the first instruction.
  uint32_t GuestInstCount = 0; ///< Guest instructions covered.
  ValueId NumValues = FirstTempId; ///< Guest regs + temps.
  std::vector<IRInst> Insts;
  std::vector<HelperFn> Helpers;

  /// Number of ops carrying IRFlagInstrument, maintained by the builder;
  /// the profiler uses this to attribute inline-instrumentation cost.
  uint32_t InstrumentOpCount = 0;

  /// Liveness metadata for register allocation (the tier-1 JIT's linear
  /// scan): TempLastUse[Id] is the index into Insts of the last
  /// instruction referencing value Id, or NoUse. Indexed by absolute
  /// ValueId and sized NumValues when present (guest-register slots are
  /// filled but unused — their home is the VCpu frame); empty on blocks
  /// built before finalization. Computed by Translator::translateBlock
  /// after optimization, so it reflects the instruction stream that
  /// actually executes.
  static constexpr uint32_t NoUse = ~0u;
  std::vector<uint32_t> TempLastUse;
};

/// \returns the mnemonic of \p Op (for the printer and diagnostics).
const char *irOpName(IROp Op);

/// \returns the printable name of \p Cc.
const char *condCodeName(CondCode Cc);

/// \returns the printable name of \p Kind ("swap", "add", ...).
const char *rmwKindName(RmwKind Kind);

/// Applies \p Kind to two values (the new value an AtomicRmwG stores).
/// Shared by the interpreter, the JIT thunk, and the constant folder.
inline uint64_t applyRmwKind(RmwKind Kind, uint64_t Old, uint64_t Operand) {
  switch (Kind) {
  case RmwKind::Swap:
    return Operand;
  case RmwKind::Add:
    return Old + Operand;
  case RmwKind::And:
    return Old & Operand;
  case RmwKind::Or:
    return Old | Operand;
  case RmwKind::Xor:
    return Old ^ Operand;
  }
  return Operand;
}

/// \returns true if \p Op ends a block (SetPc/SetPcImm/Halt). BrCond is
/// conditional and therefore not a final terminator.
bool isTerminator(IROp Op);

/// \returns true if the op has no side effects and its result is dead when
/// unused (candidates for dead-code elimination).
bool isPure(IROp Op);

/// \returns true if the op writes Dst.
bool writesDst(IROp Op);

/// Evaluates a pure binary/unary ALU op on constants (used by the constant
/// folder and by the interpreter's shared semantics).
uint64_t evalAluOp(IROp Op, uint64_t A, uint64_t B, int64_t Imm);

/// Evaluates a branch condition.
bool evalCondCode(CondCode Cc, uint64_t A, uint64_t B);

} // namespace ir
} // namespace llsc

#endif // LLSC_IR_IR_H
