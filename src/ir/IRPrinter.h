//===- ir/IRPrinter.h - IR textual dump -------------------------*- C++-*-===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders IR blocks as text for debugging, tracing, and golden tests.
///
//===----------------------------------------------------------------------===//

#ifndef LLSC_IR_IRPRINTER_H
#define LLSC_IR_IRPRINTER_H

#include "ir/IR.h"

#include <string>

namespace llsc {
namespace ir {

/// Renders one micro-op, e.g. "t17 = add r1, t16" or "stg.4 [t17+8], r2".
std::string printInst(const IRInst &Inst);

/// Renders a whole block with a header line.
std::string printBlock(const IRBlock &Block);

/// Renders a value id as "rN" (guest register) or "tN" (temp).
std::string printValue(ValueId Id);

} // namespace ir
} // namespace llsc

#endif // LLSC_IR_IRPRINTER_H
