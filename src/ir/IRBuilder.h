//===- ir/IRBuilder.h - IR construction helper ------------------*- C++-*-===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builder for IRBlocks: allocates temps, appends micro-ops, and tracks
/// instrumentation markers. Used by the translator and by the atomic
/// schemes' inline instrumentation (TranslationHooks).
///
//===----------------------------------------------------------------------===//

#ifndef LLSC_IR_IRBUILDER_H
#define LLSC_IR_IRBUILDER_H

#include "ir/IR.h"

#include <cassert>

namespace llsc {
namespace ir {

/// Appends micro-ops to an IRBlock under construction.
class IRBuilder {
public:
  /// Starts a fresh block beginning at guest address \p GuestPc.
  explicit IRBuilder(uint64_t GuestPc) { Block.GuestPc = GuestPc; }

  /// While set, every emitted op is tagged IRFlagInstrument. Schemes set
  /// this around their injected code so the profiler and tests can tell
  /// translation proper from instrumentation.
  void setInstrumentMode(bool Enabled) { InstrumentMode = Enabled; }

  /// Allocates a new temp value id.
  ValueId newTemp() {
    assert(Block.NumValues < UINT16_MAX && "too many temps in block");
    return Block.NumValues++;
  }

  /// \returns the value id of guest register \p Reg (machine register
  /// file slot; frontends index their architectural registers here).
  static ValueId guestReg(unsigned Reg) {
    assert(Reg < guest::MaxGuestRegs && "invalid guest register");
    return static_cast<ValueId>(Reg);
  }

  // --- Value ops -----------------------------------------------------------

  ValueId emitMovImm(int64_t Imm) {
    ValueId Dst = newTemp();
    emitMovImmTo(Dst, Imm);
    return Dst;
  }
  void emitMovImmTo(ValueId Dst, int64_t Imm) {
    append({IROp::MovImm, 0, 0, CondCode::Eq, Dst, 0, 0, Imm});
  }
  void emitMovTo(ValueId Dst, ValueId Src) {
    append({IROp::Mov, 0, 0, CondCode::Eq, Dst, Src, 0, 0});
  }
  ValueId emitBin(IROp Op, ValueId A, ValueId B) {
    ValueId Dst = newTemp();
    emitBinTo(Op, Dst, A, B);
    return Dst;
  }
  void emitBinTo(IROp Op, ValueId Dst, ValueId A, ValueId B) {
    append({Op, 0, 0, CondCode::Eq, Dst, A, B, 0});
  }
  ValueId emitBinImm(IROp Op, ValueId A, int64_t Imm) {
    ValueId Dst = newTemp();
    emitBinImmTo(Op, Dst, A, Imm);
    return Dst;
  }
  void emitBinImmTo(IROp Op, ValueId Dst, ValueId A, int64_t Imm) {
    append({Op, 0, 0, CondCode::Eq, Dst, A, 0, Imm});
  }

  // --- Memory --------------------------------------------------------------

  ValueId emitLoadG(ValueId Addr, int64_t Offset, unsigned Size,
                    bool SignExtend) {
    ValueId Dst = newTemp();
    emitLoadGTo(Dst, Addr, Offset, Size, SignExtend);
    return Dst;
  }
  void emitLoadGTo(ValueId Dst, ValueId Addr, int64_t Offset, unsigned Size,
                   bool SignExtend) {
    append({IROp::LoadG, static_cast<uint8_t>(Size),
            static_cast<uint8_t>(SignExtend ? IRFlagSignExtend : 0),
            CondCode::Eq, Dst, Addr, 0, Offset});
  }
  void emitStoreG(ValueId Addr, int64_t Offset, ValueId Value, unsigned Size) {
    append({IROp::StoreG, static_cast<uint8_t>(Size), 0, CondCode::Eq, 0,
            Addr, Value, Offset});
  }
  ValueId emitLoadHost(ValueId Addr, int64_t Offset, unsigned Size) {
    ValueId Dst = newTemp();
    append({IROp::LoadHost, static_cast<uint8_t>(Size), 0, CondCode::Eq, Dst,
            Addr, 0, Offset});
    return Dst;
  }
  void emitStoreHost(ValueId Addr, int64_t Offset, ValueId Value,
                     unsigned Size) {
    append({IROp::StoreHost, static_cast<uint8_t>(Size), 0, CondCode::Eq, 0,
            Addr, Value, Offset});
  }

  // --- Atomics and helpers ---------------------------------------------------

  ValueId emitLoadLink(ValueId Addr, unsigned Size) {
    ValueId Dst = newTemp();
    emitLoadLinkTo(Dst, Addr, Size);
    return Dst;
  }
  void emitLoadLinkTo(ValueId Dst, ValueId Addr, unsigned Size,
                      bool CheckAlign = false) {
    append({IROp::LoadLink, static_cast<uint8_t>(Size),
            static_cast<uint8_t>(CheckAlign ? IRFlagCheckAlign : 0),
            CondCode::Eq, Dst, Addr, 0, 0});
  }
  ValueId emitStoreCond(ValueId Addr, ValueId Value, unsigned Size) {
    ValueId Dst = newTemp();
    emitStoreCondTo(Dst, Addr, Value, Size);
    return Dst;
  }
  void emitStoreCondTo(ValueId Dst, ValueId Addr, ValueId Value,
                       unsigned Size, bool CheckAlign = false) {
    append({IROp::StoreCond, static_cast<uint8_t>(Size),
            static_cast<uint8_t>(CheckAlign ? IRFlagCheckAlign : 0),
            CondCode::Eq, Dst, Addr, Value, 0});
  }
  void emitClearExcl() {
    append({IROp::ClearExcl, 0, 0, CondCode::Eq, 0, 0, 0, 0});
  }
  void emitFence() { append({IROp::Fence, 0, 0, CondCode::Eq, 0, 0, 0, 0}); }

  void emitHelperStore(ValueId Addr, int64_t Offset, ValueId Value,
                       unsigned Size) {
    append({IROp::HelperStore, static_cast<uint8_t>(Size), 0, CondCode::Eq, 0,
            Addr, Value, Offset});
  }
  ValueId emitHelperLoad(ValueId Addr, int64_t Offset, unsigned Size,
                         bool SignExtend) {
    ValueId Dst = newTemp();
    emitHelperLoadTo(Dst, Addr, Offset, Size, SignExtend);
    return Dst;
  }
  void emitHelperLoadTo(ValueId Dst, ValueId Addr, int64_t Offset,
                        unsigned Size, bool SignExtend) {
    append({IROp::HelperLoad, static_cast<uint8_t>(Size),
            static_cast<uint8_t>(SignExtend ? IRFlagSignExtend : 0),
            CondCode::Eq, Dst, Addr, 0, Offset});
  }

  /// Registers \p Fn and emits a generic helper call.
  ValueId emitHelper(const HelperFn &Fn, ValueId A, ValueId B) {
    Block.Helpers.push_back(Fn);
    ValueId Dst = newTemp();
    append({IROp::Helper, 0, 0, CondCode::Eq, Dst, A, B,
            static_cast<int64_t>(Block.Helpers.size() - 1)});
    return Dst;
  }

  void emitHstStoreTag(ValueId Addr, int64_t Offset, unsigned Size) {
    append({IROp::HstStoreTag, static_cast<uint8_t>(Size), 0, CondCode::Eq, 0,
            Addr, 0, Offset});
  }

  ValueId emitAtomicAddG(ValueId Addr, ValueId Delta, unsigned Size) {
    ValueId Dst = newTemp();
    emitAtomicAddGTo(Dst, Addr, Delta, Size);
    return Dst;
  }
  void emitAtomicAddGTo(ValueId Dst, ValueId Addr, ValueId Delta,
                        unsigned Size) {
    append({IROp::AtomicAddG, static_cast<uint8_t>(Size), 0, CondCode::Eq,
            Dst, Addr, Delta, 0});
  }

  ValueId emitAtomicRmwG(RmwKind Kind, ValueId Addr, ValueId Operand,
                         unsigned Size) {
    ValueId Dst = newTemp();
    emitAtomicRmwGTo(Dst, Kind, Addr, Operand, Size);
    return Dst;
  }
  void emitAtomicRmwGTo(ValueId Dst, RmwKind Kind, ValueId Addr,
                        ValueId Operand, unsigned Size) {
    append({IROp::AtomicRmwG, static_cast<uint8_t>(Size), 0, CondCode::Eq,
            Dst, Addr, Operand, static_cast<int64_t>(Kind)});
  }

  ValueId emitReadSpecial(SpecialValue Which) {
    ValueId Dst = newTemp();
    emitReadSpecialTo(Dst, Which);
    return Dst;
  }
  void emitReadSpecialTo(ValueId Dst, SpecialValue Which) {
    append({IROp::ReadSpecial, 0, 0, CondCode::Eq, Dst, 0, 0,
            static_cast<int64_t>(Which)});
  }
  void emitSysCallTo(ValueId Dst, int64_t Selector, ValueId Arg) {
    append({IROp::SysCall, 0, 0, CondCode::Eq, Dst, Arg, 0, Selector});
  }
  void emitYield() { append({IROp::Yield, 0, 0, CondCode::Eq, 0, 0, 0, 0}); }

  // --- Terminators -----------------------------------------------------------

  void emitSetPcImm(uint64_t Pc) {
    append({IROp::SetPcImm, 0, 0, CondCode::Eq, 0, 0, 0,
            static_cast<int64_t>(Pc)});
  }
  void emitSetPc(ValueId Target) {
    append({IROp::SetPc, 0, 0, CondCode::Eq, 0, Target, 0, 0});
  }
  void emitBrCond(CondCode Cc, ValueId A, ValueId B, uint64_t TakenPc) {
    append({IROp::BrCond, 0, 0, Cc, 0, A, B, static_cast<int64_t>(TakenPc)});
  }
  void emitHalt() { append({IROp::Halt, 0, 0, CondCode::Eq, 0, 0, 0, 0}); }

  /// Notes one more guest instruction covered by this block.
  void noteGuestInst() { ++Block.GuestInstCount; }

  /// Finishes and returns the block.
  IRBlock take() { return std::move(Block); }

  /// Read-only access while building (used by tests).
  const IRBlock &peek() const { return Block; }

private:
  void append(IRInst Inst) {
    if (InstrumentMode) {
      Inst.Flags |= IRFlagInstrument;
      ++Block.InstrumentOpCount;
    }
    Block.Insts.push_back(Inst);
  }

  IRBlock Block;
  bool InstrumentMode = false;
};

} // namespace ir
} // namespace llsc

#endif // LLSC_IR_IRBUILDER_H
