//===- ir/IRVerifier.cpp - IR well-formedness checks -------------------------===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/IRVerifier.h"

#include "ir/IRPrinter.h"

using namespace llsc;
using namespace llsc::ir;

ErrorOr<bool> ir::verify(const IRBlock &Block) {
  if (Block.Insts.empty())
    return makeError("empty IR block at 0x%llx",
                     static_cast<unsigned long long>(Block.GuestPc));
  if (Block.NumValues < FirstTempId)
    return makeError("block value count below guest register count");

  auto BadInst = [&](size_t Index, const char *Why) {
    return makeError("IR verify failed at op %zu (%s): %s", Index,
                     printInst(Block.Insts[Index]).c_str(), Why);
  };

  for (size_t Index = 0; Index < Block.Insts.size(); ++Index) {
    const IRInst &I = Block.Insts[Index];
    if (I.Op >= IROp::NumOps)
      return BadInst(Index, "invalid opcode");

    if (writesDst(I.Op) && I.Dst >= Block.NumValues)
      return BadInst(Index, "dst out of range");
    if (I.A >= Block.NumValues)
      return BadInst(Index, "operand A out of range");
    if (I.B >= Block.NumValues)
      return BadInst(Index, "operand B out of range");

    switch (I.Op) {
    case IROp::LoadG:
    case IROp::StoreG:
    case IROp::LoadHost:
    case IROp::StoreHost:
    case IROp::HelperStore:
    case IROp::HelperLoad:
      if (I.Size != 1 && I.Size != 2 && I.Size != 4 && I.Size != 8)
        return BadInst(Index, "invalid memory access size");
      break;
    case IROp::LoadLink:
    case IROp::StoreCond:
    case IROp::AtomicAddG:
      if (I.Size != 4 && I.Size != 8)
        return BadInst(Index, "exclusive/atomic size must be 4 or 8");
      break;
    case IROp::AtomicRmwG:
      if (I.Size != 4 && I.Size != 8)
        return BadInst(Index, "exclusive/atomic size must be 4 or 8");
      if (I.Imm < 0 || I.Imm >= static_cast<int64_t>(NumRmwKinds))
        return BadInst(Index, "invalid RMW kind selector");
      break;
    case IROp::Helper:
      if (I.Imm < 0 ||
          static_cast<size_t>(I.Imm) >= Block.Helpers.size() ||
          !Block.Helpers[static_cast<size_t>(I.Imm)].Fn)
        return BadInst(Index, "unresolvable helper index");
      break;
    default:
      break;
    }

    if (isTerminator(I.Op) && Index + 1 != Block.Insts.size())
      return BadInst(Index, "terminator before end of block");
  }

  if (!isTerminator(Block.Insts.back().Op))
    return makeError("block at 0x%llx does not end in a terminator",
                     static_cast<unsigned long long>(Block.GuestPc));
  return true;
}
