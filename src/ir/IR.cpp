//===- ir/IR.cpp - Micro-op intermediate representation ---------------------===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/IR.h"

#include "support/Compiler.h"

#include <cassert>

using namespace llsc;
using namespace llsc::ir;

const char *ir::irOpName(IROp Op) {
  switch (Op) {
  case IROp::MovImm:
    return "movi";
  case IROp::Mov:
    return "mov";
  case IROp::Add:
    return "add";
  case IROp::Sub:
    return "sub";
  case IROp::Mul:
    return "mul";
  case IROp::UDiv:
    return "udiv";
  case IROp::SDiv:
    return "sdiv";
  case IROp::URem:
    return "urem";
  case IROp::SRem:
    return "srem";
  case IROp::And:
    return "and";
  case IROp::Or:
    return "or";
  case IROp::Xor:
    return "xor";
  case IROp::Shl:
    return "shl";
  case IROp::Shr:
    return "shr";
  case IROp::Sar:
    return "sar";
  case IROp::SltS:
    return "slts";
  case IROp::SltU:
    return "sltu";
  case IROp::AddImm:
    return "addi";
  case IROp::AndImm:
    return "andi";
  case IROp::OrImm:
    return "ori";
  case IROp::XorImm:
    return "xori";
  case IROp::ShlImm:
    return "shli";
  case IROp::ShrImm:
    return "shri";
  case IROp::SarImm:
    return "sari";
  case IROp::SltSImm:
    return "sltsi";
  case IROp::SltUImm:
    return "sltui";
  case IROp::LoadG:
    return "ldg";
  case IROp::StoreG:
    return "stg";
  case IROp::LoadHost:
    return "ldh";
  case IROp::StoreHost:
    return "sth";
  case IROp::LoadLink:
    return "ll";
  case IROp::StoreCond:
    return "sc";
  case IROp::ClearExcl:
    return "clrex";
  case IROp::Fence:
    return "fence";
  case IROp::HelperStore:
    return "hstore";
  case IROp::HelperLoad:
    return "hload";
  case IROp::Helper:
    return "helper";
  case IROp::AtomicAddG:
    return "atomic_add";
  case IROp::AtomicRmwG:
    return "atomic_rmw";
  case IROp::HstStoreTag:
    return "hst_tag";
  case IROp::ReadSpecial:
    return "rdspec";
  case IROp::SysCall:
    return "sys";
  case IROp::Yield:
    return "yield";
  case IROp::SetPcImm:
    return "setpc_i";
  case IROp::SetPc:
    return "setpc";
  case IROp::BrCond:
    return "brcond";
  case IROp::Halt:
    return "halt";
  case IROp::NumOps:
    break;
  }
  llsc_unreachable("invalid IR opcode");
}

const char *ir::condCodeName(CondCode Cc) {
  switch (Cc) {
  case CondCode::Eq:
    return "eq";
  case CondCode::Ne:
    return "ne";
  case CondCode::LtS:
    return "lts";
  case CondCode::LtU:
    return "ltu";
  case CondCode::GeS:
    return "ges";
  case CondCode::GeU:
    return "geu";
  }
  llsc_unreachable("invalid condition code");
}

const char *ir::rmwKindName(RmwKind Kind) {
  switch (Kind) {
  case RmwKind::Swap:
    return "swap";
  case RmwKind::Add:
    return "add";
  case RmwKind::And:
    return "and";
  case RmwKind::Or:
    return "or";
  case RmwKind::Xor:
    return "xor";
  }
  llsc_unreachable("invalid RMW kind");
}

bool ir::isTerminator(IROp Op) {
  return Op == IROp::SetPc || Op == IROp::SetPcImm || Op == IROp::Halt;
}

bool ir::isPure(IROp Op) {
  switch (Op) {
  case IROp::MovImm:
  case IROp::Mov:
  case IROp::Add:
  case IROp::Sub:
  case IROp::Mul:
  case IROp::UDiv:
  case IROp::SDiv:
  case IROp::URem:
  case IROp::SRem:
  case IROp::And:
  case IROp::Or:
  case IROp::Xor:
  case IROp::Shl:
  case IROp::Shr:
  case IROp::Sar:
  case IROp::SltS:
  case IROp::SltU:
  case IROp::AddImm:
  case IROp::AndImm:
  case IROp::OrImm:
  case IROp::XorImm:
  case IROp::ShlImm:
  case IROp::ShrImm:
  case IROp::SarImm:
  case IROp::SltSImm:
  case IROp::SltUImm:
  case IROp::ReadSpecial:
    return true;
  default:
    return false;
  }
}

bool ir::writesDst(IROp Op) {
  switch (Op) {
  case IROp::StoreG:
  case IROp::StoreHost:
  case IROp::HstStoreTag:
  case IROp::ClearExcl:
  case IROp::Fence:
  case IROp::HelperStore:
  case IROp::Yield:
  case IROp::SetPcImm:
  case IROp::SetPc:
  case IROp::BrCond:
  case IROp::Halt:
  case IROp::NumOps:
    return false;
  default:
    return true;
  }
}

uint64_t ir::evalAluOp(IROp Op, uint64_t A, uint64_t B, int64_t Imm) {
  auto SDivSafe = [](int64_t X, int64_t Y) -> uint64_t {
    if (Y == 0 || (X == INT64_MIN && Y == -1))
      return 0;
    return static_cast<uint64_t>(X / Y);
  };
  auto SRemSafe = [](int64_t X, int64_t Y) -> uint64_t {
    if (Y == 0 || (X == INT64_MIN && Y == -1))
      return 0;
    return static_cast<uint64_t>(X % Y);
  };

  switch (Op) {
  case IROp::MovImm:
    return static_cast<uint64_t>(Imm);
  case IROp::Mov:
    return A;
  case IROp::Add:
    return A + B;
  case IROp::Sub:
    return A - B;
  case IROp::Mul:
    return A * B;
  case IROp::UDiv:
    return B == 0 ? 0 : A / B;
  case IROp::SDiv:
    return SDivSafe(static_cast<int64_t>(A), static_cast<int64_t>(B));
  case IROp::URem:
    return B == 0 ? 0 : A % B;
  case IROp::SRem:
    return SRemSafe(static_cast<int64_t>(A), static_cast<int64_t>(B));
  case IROp::And:
    return A & B;
  case IROp::Or:
    return A | B;
  case IROp::Xor:
    return A ^ B;
  case IROp::Shl:
    return A << (B & 63);
  case IROp::Shr:
    return A >> (B & 63);
  case IROp::Sar:
    return static_cast<uint64_t>(static_cast<int64_t>(A) >> (B & 63));
  case IROp::SltS:
    return static_cast<int64_t>(A) < static_cast<int64_t>(B) ? 1 : 0;
  case IROp::SltU:
    return A < B ? 1 : 0;
  case IROp::AddImm:
    return A + static_cast<uint64_t>(Imm);
  case IROp::AndImm:
    return A & static_cast<uint64_t>(Imm);
  case IROp::OrImm:
    return A | static_cast<uint64_t>(Imm);
  case IROp::XorImm:
    return A ^ static_cast<uint64_t>(Imm);
  case IROp::ShlImm:
    return A << (static_cast<uint64_t>(Imm) & 63);
  case IROp::ShrImm:
    return A >> (static_cast<uint64_t>(Imm) & 63);
  case IROp::SarImm:
    return static_cast<uint64_t>(static_cast<int64_t>(A)
                                 >> (static_cast<uint64_t>(Imm) & 63));
  case IROp::SltSImm:
    return static_cast<int64_t>(A) < Imm ? 1 : 0;
  case IROp::SltUImm:
    return A < static_cast<uint64_t>(Imm) ? 1 : 0;
  default:
    llsc_unreachable("evalAluOp on non-ALU opcode");
  }
}

bool ir::evalCondCode(CondCode Cc, uint64_t A, uint64_t B) {
  switch (Cc) {
  case CondCode::Eq:
    return A == B;
  case CondCode::Ne:
    return A != B;
  case CondCode::LtS:
    return static_cast<int64_t>(A) < static_cast<int64_t>(B);
  case CondCode::LtU:
    return A < B;
  case CondCode::GeS:
    return static_cast<int64_t>(A) >= static_cast<int64_t>(B);
  case CondCode::GeU:
    return A >= B;
  }
  llsc_unreachable("invalid condition code");
}
