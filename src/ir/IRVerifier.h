//===- ir/IRVerifier.h - IR well-formedness checks --------------*- C++-*-===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural verification for IR blocks: every block must end in exactly
/// one final terminator, value ids must be in range, memory sizes valid,
/// and helper indices resolvable. The translator verifies every block it
/// produces in debug builds.
///
//===----------------------------------------------------------------------===//

#ifndef LLSC_IR_IRVERIFIER_H
#define LLSC_IR_IRVERIFIER_H

#include "ir/IR.h"

#include "support/Error.h"

namespace llsc {
namespace ir {

/// Checks the structural invariants of \p Block.
/// \returns true, or an Error describing the first violation.
ErrorOr<bool> verify(const IRBlock &Block);

} // namespace ir
} // namespace llsc

#endif // LLSC_IR_IRVERIFIER_H
