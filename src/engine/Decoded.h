//===- engine/Decoded.h - Pre-decoded micro-ops for dispatch ----*- C++-*-===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The threaded interpreter's flat instruction form. At translation time
/// every IRInst is resolved into a DecodedInst: the opcode doubles as the
/// handler index into the computed-goto jump table, and each operand's
/// register-vs-temp decision (the `Id < FirstTempId` branch the generic
/// accessors paid per op) is pre-resolved into a bank selector so the
/// execution loop reads operands with one indexed load.
///
/// Decoding is pure and per-block; TbCache performs it once under the
/// shard lock when a block is translated, so execution never sees a
/// CachedBlock without its decoded form.
///
//===----------------------------------------------------------------------===//

#ifndef LLSC_ENGINE_DECODED_H
#define LLSC_ENGINE_DECODED_H

#include "ir/IR.h"

#include <vector>

namespace llsc {
namespace engine {

/// DecodedInst::Flags bits. SignExtend and Instrument keep the IRFlag bit
/// positions so decoding copies them through; CountInline is derived (the
/// instrument-counting predicate hoisted out of the hot loop).
enum : uint8_t {
  DecodedFlagSignExtend = 1 << 0, ///< == IRFlagSignExtend.
  DecodedFlagInstrument = 1 << 1, ///< == IRFlagInstrument.
  /// Instrumented op that executes inline (not via a Helper* op), i.e. it
  /// increments Events.InlineInstrumentOps when executed.
  DecodedFlagCountInline = 1 << 2,
  DecodedFlagCheckAlign = 1 << 3, ///< == IRFlagCheckAlign.
};

/// Operand bank selectors: index 0 is the guest register file, index 1 the
/// block-local temp array. Both banks are indexed with the original
/// ValueId (the temp array is sized IRBlock::NumValues, so temp ids index
/// it directly and the first FirstTempId slots are simply unused).
enum : uint8_t { BankRegs = 0, BankTemps = 1 };

/// One pre-decoded micro-op (24 bytes; a cache line holds ~2.6).
struct DecodedInst {
  ir::IROp Op = ir::IROp::MovImm; ///< Handler index for dispatch.
  uint8_t Size = 0;               ///< Access size in bytes for memory ops.
  uint8_t Flags = 0;              ///< DecodedFlag* bits.
  ir::CondCode Cc = ir::CondCode::Eq;
  uint8_t DstBank = BankRegs;
  uint8_t ABank = BankRegs;
  uint8_t BBank = BankRegs;
  ir::ValueId Dst = 0;
  ir::ValueId A = 0;
  ir::ValueId B = 0;
  int64_t Imm = 0;
};

/// Decodes \p IR into the flat executable form. Pure; no IR state is
/// retained beyond what DecodedInst copies.
std::vector<DecodedInst> decodeBlock(const ir::IRBlock &IR);

} // namespace engine
} // namespace llsc

#endif // LLSC_ENGINE_DECODED_H
