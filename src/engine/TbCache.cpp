//===- engine/TbCache.cpp - Translation block cache ----------------------------===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//

#include "engine/TbCache.h"

#include "translate/Translator.h"

#include <mutex>

using namespace llsc;

ErrorOr<CachedBlock *> TbCache::lookup(uint64_t Pc) {
  Lookups.fetch_add(1, std::memory_order_relaxed);
  {
    std::shared_lock<std::shared_mutex> ReadLock(Mutex);
    auto It = Blocks.find(Pc);
    if (It != Blocks.end())
      return It->second.get();
  }

  std::unique_lock<std::shared_mutex> WriteLock(Mutex);
  // Another thread may have translated it while we upgraded.
  auto It = Blocks.find(Pc);
  if (It != Blocks.end())
    return It->second.get();

  Misses.fetch_add(1, std::memory_order_relaxed);
  // Translation runs under the writer lock, which also serializes the
  // Translator's statistics.
  auto BlockOrErr = Trans.translateBlock(Pc);
  if (!BlockOrErr)
    return BlockOrErr.error();

  auto Cached = std::make_unique<CachedBlock>();
  Cached->IR = BlockOrErr.take();
  CachedBlock *Raw = Cached.get();
  Blocks.emplace(Pc, std::move(Cached));
  return Raw;
}

ErrorOr<CachedBlock *> TbCache::chain(CachedBlock &Block, unsigned Slot,
                                      uint64_t TargetPc) {
  if (CachedBlock *Cached = Block.Chain[Slot].load(std::memory_order_acquire))
    if (Block.ChainPc[Slot] == TargetPc)
      return Cached;

  auto TargetOrErr = lookup(TargetPc);
  if (!TargetOrErr)
    return TargetOrErr.error();
  // Benign race: several threads may resolve the same slot to the same
  // value. ChainPc is written before the pointer is published.
  Block.ChainPc[Slot] = TargetPc;
  Block.Chain[Slot].store(*TargetOrErr, std::memory_order_release);
  return *TargetOrErr;
}

void TbCache::flush() {
  std::unique_lock<std::shared_mutex> WriteLock(Mutex);
  Blocks.clear();
}

size_t TbCache::size() const {
  std::shared_lock<std::shared_mutex> ReadLock(Mutex);
  return Blocks.size();
}
