//===- engine/TbCache.cpp - Translation block cache ----------------------------===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//

#include "engine/TbCache.h"

#include "translate/Translator.h"

#include <mutex>

using namespace llsc;

ErrorOr<CachedBlock *> TbCache::lookup(uint64_t Pc, Translator &Trans) {
  Lookups.fetch_add(1, std::memory_order_relaxed);
  Shard &S = Shards[shardIndex(Pc)];
  {
    std::shared_lock<std::shared_mutex> ReadLock(S.Mutex);
    auto It = S.Blocks.find(Pc);
    if (It != S.Blocks.end())
      return It->second.get();
  }

  std::unique_lock<std::shared_mutex> WriteLock(S.Mutex, std::try_to_lock);
  if (!WriteLock.owns_lock()) {
    // Contended shard: another vCPU is translating (possibly this very
    // pc). Count the wait, then block.
    LockWaits.fetch_add(1, std::memory_order_relaxed);
    WriteLock.lock();
  }
  // Another thread may have translated it while we upgraded.
  auto It = S.Blocks.find(Pc);
  if (It != S.Blocks.end())
    return It->second.get();

  Misses.fetch_add(1, std::memory_order_relaxed);
  // Translation runs under the shard writer lock; the Translator is
  // thread-safe for concurrent translateBlock calls from other shards.
  auto BlockOrErr = Trans.translateBlock(Pc);
  if (!BlockOrErr)
    return BlockOrErr.error();

  auto Cached = std::make_unique<CachedBlock>();
  Cached->IR = BlockOrErr.take();
  Cached->Decoded = engine::decodeBlock(Cached->IR);
  CachedBlock *Raw = Cached.get();
  S.Blocks.emplace(Pc, std::move(Cached));
  return Raw;
}

ErrorOr<CachedBlock *> TbCache::chain(CachedBlock &Block, unsigned Slot,
                                      uint64_t TargetPc, Translator &Trans) {
  // Acquire on the pointer pairs with the release store below, so the pc
  // read afterwards is the one stored for this (or a later, identical)
  // resolution. Both cells are atomic; racing writers store the same
  // values because a block's branch targets are immutable.
  if (CachedBlock *Cached = Block.Chain[Slot].load(std::memory_order_acquire))
    if (Block.ChainPc[Slot].load(std::memory_order_relaxed) == TargetPc)
      return Cached;

  auto TargetOrErr = lookup(TargetPc, Trans);
  if (!TargetOrErr)
    return TargetOrErr.error();
  Block.ChainPc[Slot].store(TargetPc, std::memory_order_relaxed);
  Block.Chain[Slot].store(*TargetOrErr, std::memory_order_release);
  return *TargetOrErr;
}

void TbCache::flush() {
  for (Shard &S : Shards) {
    std::unique_lock<std::shared_mutex> WriteLock(S.Mutex);
    for (auto &Entry : S.Blocks) {
      // Sever stale chains: a retired block must not keep feeding its
      // successors to a vCPU that still holds it.
      Entry.second->Chain[0].store(nullptr, std::memory_order_release);
      Entry.second->Chain[1].store(nullptr, std::memory_order_release);
      S.Retired.push_back(std::move(Entry.second));
    }
    S.Blocks.clear();
  }
  // Publish the new generation last: a vCPU that observes it sees empty
  // shards and drops its jump-cache contents.
  Generation.fetch_add(1, std::memory_order_release);
  if (Listener)
    Listener->onTbFlush();
}

void TbCache::reapRetired() {
  for (Shard &S : Shards) {
    std::unique_lock<std::shared_mutex> WriteLock(S.Mutex);
    S.Retired.clear();
  }
  if (Listener)
    Listener->onTbReapRetired();
}

size_t TbCache::size() const {
  size_t Total = 0;
  for (const Shard &S : Shards) {
    std::shared_lock<std::shared_mutex> ReadLock(S.Mutex);
    Total += S.Blocks.size();
  }
  return Total;
}
