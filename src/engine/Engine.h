//===- engine/Engine.h - IR execution engine --------------------*- C++-*-===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes translated blocks for one vCPU: a threaded-dispatch interpreter
/// over the micro-op IR with QEMU-style block chaining, safepoint polling
/// for exclusive sections, per-block HTM footprint accounting (PICO-HTM),
/// and instruction-mix counting.
///
/// Two driving modes:
///  - runCpu(): run until HALT; one host thread per vCPU (the
///    multi-threaded emulation mode whose scalability Fig. 10 studies);
///  - stepBlocks(): run a bounded number of blocks, used by the
///    cooperative round-robin runner that replays the deterministic
///    interleavings of Section IV-A's litmus sequences.
///
//===----------------------------------------------------------------------===//

#ifndef LLSC_ENGINE_ENGINE_H
#define LLSC_ENGINE_ENGINE_H

#include "engine/TbCache.h"
#include "runtime/VCpu.h"

#include <vector>

namespace llsc {

class Translator;

namespace jit {
class Jit;
} // namespace jit

/// Engine tunables.
struct EngineConfig {
  /// Attribute time/ops to profile buckets (Fig. 12 runs).
  bool Profile = false;
  /// Stop a vCPU after this many executed blocks (0 = unlimited). Guards
  /// against livelock (PICO-HTM) and runaway guests.
  uint64_t MaxBlocksPerCpu = 0;
  /// Stop a vCPU after this much wall time (0 = unlimited), polled every
  /// few hundred blocks. Catches livelocks whose time is spent inside
  /// scheme spin loops rather than in guest blocks.
  uint64_t MaxWallNanosPerCpu = 0;
};

/// Per-run execution budgets, settable between runs without rebuilding
/// the Engine — how Machine::run(RunOptions) applies per-job deadlines
/// and block budgets on a pooled, reused Machine (docs/SERVING.md).
struct EngineBudgets {
  uint64_t MaxBlocksPerCpu = 0;    ///< 0 = unlimited.
  uint64_t MaxWallNanosPerCpu = 0; ///< 0 = unlimited.
};

/// Why execution of a vCPU stopped.
enum class RunStatus {
  Halted,   ///< The guest executed HALT.
  Running,  ///< stepBlocks() budget exhausted; more work remains.
  TimedOut, ///< MaxBlocksPerCpu reached.
};

/// Executes guest code for vCPUs of one machine.
class Engine {
public:
  Engine(MachineContext &Ctx, TbCache &Cache, Translator &Trans,
         const EngineConfig &Config)
      : Ctx(Ctx), Cache(&Cache), Trans(&Trans), Config(Config) {}

  /// Runs \p Cpu until HALT (or the block budget). Brackets execution with
  /// ExclusiveContext::execStart/execEnd and polls safepoints, so it is
  /// safe to run one runCpu per host thread concurrently.
  ErrorOr<RunStatus> runCpu(VCpu &Cpu);

  /// Runs at most \p MaxBlocks blocks of \p Cpu without registering as a
  /// running thread (single-threaded cooperative mode).
  ErrorOr<RunStatus> stepBlocks(VCpu &Cpu, uint64_t MaxBlocks);

  /// Replaces the block/wall budgets for subsequent runs. Must not be
  /// called while any vCPU is executing — Machine::run applies it before
  /// starting the vCPU threads.
  void setBudgets(const EngineBudgets &Budgets) {
    Config.MaxBlocksPerCpu = Budgets.MaxBlocksPerCpu;
    Config.MaxWallNanosPerCpu = Budgets.MaxWallNanosPerCpu;
  }

  /// Wires the tier-1 JIT (null = tier-0 only). Set by Machine::create
  /// before any vCPU runs; never changed while one executes.
  void setJit(jit::Jit *J) { TheJit = J; }

  /// Repoints the engine at a different TB cache — how Machine adopts a
  /// snapshot's shared warm cache (restoreFrom) or swaps in a private one
  /// (privatizeCode). Must not be called while any vCPU is executing.
  void setCache(TbCache *C) { Cache = C; }

private:
  /// How a block handed control back.
  struct BlockExit {
    enum Kind : uint8_t {
      TakenBranch, ///< BrCond taken: chain slot 0.
      FallThrough, ///< Final SetPcImm: chain slot 1.
      Indirect,    ///< SetPc: full cache lookup.
      Halted,
    } ExitKind;
    uint64_t NextPc;
  };

  BlockExit execBlock(VCpu &Cpu, const CachedBlock &Block,
                      std::vector<uint64_t> &Temps);

  /// Shared body of runCpu/stepBlocks. \p Registered: whether the caller
  /// holds an execStart registration (enables safepoints). The temp value
  /// file lives in the caller's frame, so one Engine instance serves any
  /// number of concurrent host threads.
  ErrorOr<RunStatus> runLoop(VCpu &Cpu, uint64_t MaxBlocks, bool Registered);

  MachineContext &Ctx;
  TbCache *Cache;
  Translator *Trans;
  EngineConfig Config;
  jit::Jit *TheJit = nullptr;
};

} // namespace llsc

#endif // LLSC_ENGINE_ENGINE_H
