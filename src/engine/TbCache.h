//===- engine/TbCache.h - Translation block cache ---------------*- C++-*-===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shared translation-block cache: guest pc -> translated block, with
/// QEMU-style direct block chaining so the hot path (loops) avoids the
/// hash lookup. Blocks are translated once under the writer lock and are
/// immutable afterwards; chain pointers are published with atomics.
///
//===----------------------------------------------------------------------===//

#ifndef LLSC_ENGINE_TBCACHE_H
#define LLSC_ENGINE_TBCACHE_H

#include "ir/IR.h"

#include "support/Error.h"

#include <atomic>
#include <memory>
#include <shared_mutex>
#include <unordered_map>

namespace llsc {

class Translator;

/// A cached, immutable translated block plus its chain slots.
struct CachedBlock {
  ir::IRBlock IR;

  /// Direct-chain successors: slot 0 = BrCond taken target, slot 1 =
  /// final SetPcImm target. Resolved lazily; nullptr until then.
  std::atomic<CachedBlock *> Chain[2] = {nullptr, nullptr};
  uint64_t ChainPc[2] = {~0ULL, ~0ULL};
};

/// Thread-safe pc -> block cache.
class TbCache {
public:
  explicit TbCache(Translator &Translator) : Trans(Translator) {}

  /// Looks up (translating on miss) the block at \p Pc.
  /// \returns the cached block, or an error from translation.
  ErrorOr<CachedBlock *> lookup(uint64_t Pc);

  /// Resolves a chain slot of \p Block to the block at \p TargetPc,
  /// memoizing the pointer. \returns the successor block.
  ErrorOr<CachedBlock *> chain(CachedBlock &Block, unsigned Slot,
                               uint64_t TargetPc);

  /// Drops every cached block (e.g. between runs with different hooks).
  void flush();

  size_t size() const;

  uint64_t lookups() const { return Lookups.load(std::memory_order_relaxed); }
  uint64_t misses() const { return Misses.load(std::memory_order_relaxed); }

private:
  Translator &Trans;
  mutable std::shared_mutex Mutex;
  std::unordered_map<uint64_t, std::unique_ptr<CachedBlock>> Blocks;
  std::atomic<uint64_t> Lookups{0};
  std::atomic<uint64_t> Misses{0};
};

} // namespace llsc

#endif // LLSC_ENGINE_TBCACHE_H
