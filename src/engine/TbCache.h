//===- engine/TbCache.h - Translation block cache ---------------*- C++-*-===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shared translation-block cache: guest pc -> translated block, with
/// QEMU-style direct block chaining so the hot path (loops) avoids the
/// hash lookup. The map is striped into mutex-guarded shards keyed by a
/// PC hash, so cold misses from many vCPUs translate concurrently instead
/// of serializing on one writer lock; each vCPU additionally keeps a
/// lock-free direct-mapped jump cache (runtime/VCpu.h) consulted before
/// any shard is touched.
///
/// Blocks are translated and decoded once under their shard's writer lock
/// and are immutable afterwards; chain slots are published with atomics.
/// flush() retires blocks instead of destroying them (vCPUs may still
/// hold pointers) and bumps a generation counter that invalidates every
/// per-vCPU jump cache.
///
//===----------------------------------------------------------------------===//

#ifndef LLSC_ENGINE_TBCACHE_H
#define LLSC_ENGINE_TBCACHE_H

#include "engine/Decoded.h"
#include "ir/IR.h"

#include "support/Error.h"

#include <atomic>
#include <memory>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

namespace llsc {

class Translator;

/// Tier-up state of a block, stored in CachedBlock::Tier. Transitions:
/// NotCompiled -> Compiling (CAS, one winner) -> Jitted | Bailed, plus
/// Compiling -> NotCompiled when a flush raced the compilation and the
/// result was discarded. Bailed is terminal: the block stays tier-0.
enum class BlockTier : uint8_t { NotCompiled = 0, Compiling, Jitted, Bailed };

/// A cached, immutable translated block plus its chain slots.
struct CachedBlock {
  ir::IRBlock IR;

  /// Flat pre-decoded form executed by the engine (engine/Decoded.h);
  /// built once at insertion, same length as IR.Insts.
  std::vector<engine::DecodedInst> Decoded;

  /// Direct-chain successors: slot 0 = BrCond taken target, slot 1 =
  /// final SetPcImm target. Resolved lazily; nullptr until then. The
  /// target pc is stored first (relaxed), then the pointer published with
  /// release, so a reader that acquires the pointer sees a matching pc.
  std::atomic<CachedBlock *> Chain[2] = {nullptr, nullptr};
  std::atomic<uint64_t> ChainPc[2] = {~0ULL, ~0ULL};

  // --- Tier-1 JIT state (engine/jit/Jit.h, docs/JIT.md) -------------------
  // Blocks are retired wholesale on flush(), never recycled, so this state
  // only ever moves forward for a given CachedBlock instance.

  /// Times the dispatch loop entered this block at tier 0; drives the
  /// hotness threshold.
  std::atomic<uint32_t> HotCount{0};

  /// BlockTier, widened for the atomic.
  std::atomic<uint8_t> Tier{static_cast<uint8_t>(BlockTier::NotCompiled)};

  /// Entry point of the compiled body in the executable code region, or
  /// nullptr. Published with release after installation; read with acquire.
  std::atomic<const void *> JitCode{nullptr};
};

/// Observer of TB-cache lifecycle events. Implemented by the tier-1 JIT
/// (engine/jit/Jit.h) so executable code regions are retired and freed in
/// lockstep with the blocks whose JitCode pointers target them: a flush
/// retires the active region alongside the blocks, and reapRetired() frees
/// both under the same quiescence guarantee.
class TbCacheListener {
public:
  virtual ~TbCacheListener() = default;

  /// Called at the end of flush(), after every block is retired and the
  /// generation was bumped. Runs under the same caller-provided exclusion
  /// as flush() itself (quiescence floor or no running vCPUs).
  virtual void onTbFlush() = 0;

  /// Called at the end of reapRetired(), when retired blocks were freed.
  virtual void onTbReapRetired() = 0;
};

/// Thread-safe pc -> block cache, mutex-striped into shards.
///
/// The cache holds no translator of its own: misses translate through the
/// Translator the caller passes in. That keeps the cache a pure function
/// of the image bytes plus translation config — the property that lets a
/// snapshot share one warm TbCache read-only across machines, each
/// resolving misses through its own Translator (all of which produce
/// identical IR for identical bytes).
class TbCache {
public:
  TbCache() = default;

  /// Registers \p L (nullptr to clear) for flush/reap notifications.
  /// Not thread-safe; wire up before any vCPU runs.
  void setListener(TbCacheListener *L) { Listener = L; }

  /// Looks up (translating through \p Trans on miss) the block at \p Pc.
  /// \returns the cached block, or an error from translation.
  ErrorOr<CachedBlock *> lookup(uint64_t Pc, Translator &Trans);

  /// Resolves a chain slot of \p Block to the block at \p TargetPc,
  /// memoizing the pointer. \returns the successor block.
  ErrorOr<CachedBlock *> chain(CachedBlock &Block, unsigned Slot,
                               uint64_t TargetPc, Translator &Trans);

  /// Drops every cached block (e.g. between runs with different hooks).
  /// Old blocks are retired, not freed, so concurrently executing vCPUs
  /// holding a CachedBlock* stay valid; the generation bump makes every
  /// jump cache and chain slot re-resolve through lookup().
  void flush();

  /// Frees the blocks retired by earlier flush() calls. Only legal while
  /// no vCPU can still hold a retired pointer — Machine::setScheme calls
  /// this under the quiescence floor, where every parked vCPU re-resolves
  /// its block by generation before touching it (engine/Engine.cpp).
  void reapRetired();

  size_t size() const;

  uint64_t lookups() const { return Lookups.load(std::memory_order_relaxed); }
  uint64_t misses() const { return Misses.load(std::memory_order_relaxed); }

  /// Times a lookup found its shard's mutex contended (blocked acquire).
  uint64_t lockWaits() const {
    return LockWaits.load(std::memory_order_relaxed);
  }

  /// Cache generation; starts at 1 and increments on every flush().
  /// Per-vCPU jump caches compare this against their stamped generation.
  uint64_t generation() const {
    return Generation.load(std::memory_order_acquire);
  }

private:
  static constexpr unsigned ShardBits = 4;
  static constexpr unsigned NumShards = 1u << ShardBits;

  /// Fibonacci-hash the pc down to a shard index. Consecutive block pcs
  /// land in different shards, so a phase-local working set spreads.
  static unsigned shardIndex(uint64_t Pc) {
    return static_cast<unsigned>((Pc * 0x9E3779B97F4A7C15ULL) >>
                                 (64 - ShardBits));
  }

  struct alignas(64) Shard {
    mutable std::shared_mutex Mutex;
    std::unordered_map<uint64_t, std::unique_ptr<CachedBlock>> Blocks;
    /// Blocks removed by flush() but possibly still referenced by a
    /// running vCPU; freed with the cache.
    std::vector<std::unique_ptr<CachedBlock>> Retired;
  };

  TbCacheListener *Listener = nullptr;
  Shard Shards[NumShards];
  std::atomic<uint64_t> Lookups{0};
  std::atomic<uint64_t> Misses{0};
  std::atomic<uint64_t> LockWaits{0};
  std::atomic<uint64_t> Generation{1};
};

} // namespace llsc

#endif // LLSC_ENGINE_TBCACHE_H
