//===- engine/Engine.cpp - IR execution engine ---------------------------------===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//

#include "engine/Engine.h"

#include "atomic/AtomicScheme.h"
#include "htm/Htm.h"
#include "mem/GuestMemory.h"
#include "runtime/Exclusive.h"
#include "support/BitUtils.h"
#include "support/Compiler.h"
#include "support/Logging.h"
#include "support/Trace.h"

#include <atomic>
#include <cassert>
#include <cinttypes>
#include <cstdio>
#include <ctime>
#include <sched.h>

using namespace llsc;
using namespace llsc::ir;

namespace {

/// Relaxed-atomic host memory accessors for scheme tables (LoadHost /
/// StoreHost micro-ops emitted by inline instrumentation).
uint64_t hostLoad(uint64_t Addr, unsigned Size) {
  switch (Size) {
  case 1:
    return __atomic_load_n(reinterpret_cast<uint8_t *>(Addr),
                           __ATOMIC_RELAXED);
  case 2:
    return __atomic_load_n(reinterpret_cast<uint16_t *>(Addr),
                           __ATOMIC_RELAXED);
  case 4:
    return __atomic_load_n(reinterpret_cast<uint32_t *>(Addr),
                           __ATOMIC_RELAXED);
  case 8:
    return __atomic_load_n(reinterpret_cast<uint64_t *>(Addr),
                           __ATOMIC_RELAXED);
  default:
    llsc_unreachable("bad host access size");
  }
}

void hostStore(uint64_t Addr, uint64_t Value, unsigned Size) {
  switch (Size) {
  case 1:
    __atomic_store_n(reinterpret_cast<uint8_t *>(Addr),
                     static_cast<uint8_t>(Value), __ATOMIC_RELAXED);
    return;
  case 2:
    __atomic_store_n(reinterpret_cast<uint16_t *>(Addr),
                     static_cast<uint16_t>(Value), __ATOMIC_RELAXED);
    return;
  case 4:
    __atomic_store_n(reinterpret_cast<uint32_t *>(Addr),
                     static_cast<uint32_t>(Value), __ATOMIC_RELAXED);
    return;
  case 8:
    __atomic_store_n(reinterpret_cast<uint64_t *>(Addr), Value,
                     __ATOMIC_RELAXED);
    return;
  default:
    llsc_unreachable("bad host access size");
  }
}

} // namespace

Engine::BlockExit Engine::execBlock(VCpu &Cpu, const CachedBlock &Block,
                                    std::vector<uint64_t> &Temps) {
  const IRBlock &IR = Block.IR;
  if (Temps.size() < static_cast<size_t>(IR.NumValues))
    Temps.resize(IR.NumValues);

  // Value accessors: ids below FirstTempId alias the guest registers.
  auto V = [&](ValueId Id) -> uint64_t {
    return Id < FirstTempId ? Cpu.Regs[Id] : Temps[Id];
  };
  auto SetV = [&](ValueId Id, uint64_t Value) {
    if (Id < FirstTempId)
      Cpu.Regs[Id] = Value;
    else
      Temps[Id] = Value;
  };

  const bool Profiling = Cpu.ProfilingEnabled;
  GuestMemory &Mem = *Ctx.Mem;
  AtomicScheme &Scheme = *Ctx.Scheme;

  for (const IRInst &I : IR.Insts) {
    if (I.Flags & IRFlagInstrument) {
      if (Profiling)
        Cpu.Profile.InlineInstrumentOps++;
      // Helper-routed ops are counted as helper calls below; only the
      // truly inline injected ops land in instr.inline_ops, keeping the
      // helper-vs-inline split meaningful (hst vs hst-helper).
      if (I.Op != IROp::HelperStore && I.Op != IROp::HelperLoad &&
          I.Op != IROp::Helper)
        Cpu.Events.InlineInstrumentOps++;
    }

    switch (I.Op) {
    // --- ALU (shared constant-folder semantics) ---------------------------
    case IROp::MovImm:
    case IROp::Mov:
    case IROp::Add:
    case IROp::Sub:
    case IROp::Mul:
    case IROp::UDiv:
    case IROp::SDiv:
    case IROp::URem:
    case IROp::SRem:
    case IROp::And:
    case IROp::Or:
    case IROp::Xor:
    case IROp::Shl:
    case IROp::Shr:
    case IROp::Sar:
    case IROp::SltS:
    case IROp::SltU:
    case IROp::AddImm:
    case IROp::AndImm:
    case IROp::OrImm:
    case IROp::XorImm:
    case IROp::ShlImm:
    case IROp::ShrImm:
    case IROp::SarImm:
    case IROp::SltSImm:
    case IROp::SltUImm:
      SetV(I.Dst, evalAluOp(I.Op, V(I.A), V(I.B), I.Imm));
      break;

    // --- Guest memory -----------------------------------------------------
    case IROp::LoadG: {
      uint64_t Addr = V(I.A) + static_cast<uint64_t>(I.Imm);
      if (LLSC_UNLIKELY(Addr + I.Size > Mem.size())) {
        LLSC_ERROR("tid %u: guest load out of range at pc-block 0x%" PRIx64
                   " addr 0x%" PRIx64,
                   Cpu.Tid, IR.GuestPc, Addr);
        Cpu.Halted = true;
        return {BlockExit::Halted, 0};
      }
      uint64_t Value = Mem.load(Addr, I.Size);
      if (I.Flags & IRFlagSignExtend)
        Value = static_cast<uint64_t>(signExtend(Value, I.Size * 8));
      SetV(I.Dst, Value);
      Cpu.Counters.Loads++;
      break;
    }
    case IROp::StoreG: {
      uint64_t Addr = V(I.A) + static_cast<uint64_t>(I.Imm);
      if (LLSC_UNLIKELY(Addr + I.Size > Mem.size())) {
        LLSC_ERROR("tid %u: guest store out of range at pc-block 0x%" PRIx64
                   " addr 0x%" PRIx64,
                   Cpu.Tid, IR.GuestPc, Addr);
        Cpu.Halted = true;
        return {BlockExit::Halted, 0};
      }
      Mem.store(Addr, V(I.B), I.Size);
      Cpu.Counters.Stores++;
      break;
    }

    // --- Host memory (scheme tables) ---------------------------------------
    case IROp::LoadHost:
      SetV(I.Dst, hostLoad(V(I.A) + static_cast<uint64_t>(I.Imm), I.Size));
      break;
    case IROp::StoreHost:
      hostStore(V(I.A) + static_cast<uint64_t>(I.Imm), V(I.B), I.Size);
      break;

    // --- Atomics ------------------------------------------------------------
    case IROp::LoadLink:
      SetV(I.Dst, Scheme.emulateLoadLink(Cpu, V(I.A), I.Size));
      Cpu.Counters.LoadLinks++;
      Cpu.Events.LlIssued++;
      if (TraceRecorder *Trace = TraceRecorder::active())
        Trace->instant(Cpu.Tid, "ll", "atomic");
      break;
    case IROp::StoreCond: {
      bool Ok = Scheme.emulateStoreCond(Cpu, V(I.A), V(I.B), I.Size);
      SetV(I.Dst, Ok ? 0 : 1);
      Cpu.Counters.StoreConds++;
      Cpu.Events.ScAttempted++;
      if (Ok) {
        Cpu.Events.ScSucceeded++;
      } else {
        Cpu.Counters.StoreCondFailures++;
        Cpu.Events.ScFailed++;
      }
      if (TraceRecorder *Trace = TraceRecorder::active())
        Trace->instant(Cpu.Tid, Ok ? "sc" : "sc-fail", "atomic");
      break;
    }
    case IROp::ClearExcl:
      Scheme.clearExclusive(Cpu);
      break;
    case IROp::Fence:
      std::atomic_thread_fence(std::memory_order_seq_cst);
      break;

    // --- Helper-routed memory ------------------------------------------------
    case IROp::HelperStore:
      Scheme.storeHook(Cpu, V(I.A) + static_cast<uint64_t>(I.Imm), V(I.B),
                       I.Size);
      Cpu.Counters.Stores++;
      Cpu.Events.HelperStoreCalls++;
      break;
    case IROp::HelperLoad: {
      uint64_t Value =
          Scheme.loadHook(Cpu, V(I.A) + static_cast<uint64_t>(I.Imm), I.Size);
      if (I.Flags & IRFlagSignExtend)
        Value = static_cast<uint64_t>(signExtend(Value, I.Size * 8));
      SetV(I.Dst, Value);
      Cpu.Counters.Loads++;
      Cpu.Events.HelperLoadCalls++;
      break;
    }
    case IROp::Helper: {
      const HelperFn &Fn = IR.Helpers[static_cast<size_t>(I.Imm)];
      SetV(I.Dst, Fn.Fn(Fn.Ctx, &Cpu, V(I.A), V(I.B)));
      Cpu.Events.SchemeHelperCalls++;
      break;
    }

    case IROp::HstStoreTag: {
      // Fused HST instrumentation (Figure 5's 4-instruction inline
      // sequence): one dispatch, no scheme call. Guarded in case a
      // custom scheme emits the op without publishing a table.
      if (LLSC_LIKELY(Ctx.HstTable != nullptr)) {
        uint64_t Addr = V(I.A) + static_cast<uint64_t>(I.Imm);
        Ctx.HstTable[(Addr >> 2) & Ctx.HstMask].store(
            Cpu.Tid + 1, std::memory_order_relaxed);
      }
      break;
    }

    case IROp::AtomicAddG: {
      uint64_t Addr = V(I.A);
      if (LLSC_UNLIKELY(Addr + I.Size > Mem.size())) {
        LLSC_ERROR("tid %u: atomic rmw out of range addr 0x%" PRIx64,
                   Cpu.Tid, Addr);
        Cpu.Halted = true;
        return {BlockExit::Halted, 0};
      }
      SetV(I.Dst, Mem.fetchAdd(Addr, V(I.B), I.Size));
      break;
    }

    // --- Specials --------------------------------------------------------------
    case IROp::ReadSpecial:
      switch (static_cast<SpecialValue>(I.Imm)) {
      case SpecialValue::Tid:
        SetV(I.Dst, Cpu.Tid);
        break;
      case SpecialValue::NumThreads:
        SetV(I.Dst, Ctx.NumThreads);
        break;
      case SpecialValue::ClockNanos:
        SetV(I.Dst, monotonicNanos());
        break;
      }
      break;
    case IROp::SysCall:
      if (static_cast<guest::SysCall>(I.Imm) == guest::SysCall::PrintReg) {
        std::fprintf(stderr, "[guest tid %u] 0x%016" PRIx64 " (%" PRId64 ")\n",
                     Cpu.Tid, V(I.A), static_cast<int64_t>(V(I.A)));
        SetV(I.Dst, V(I.A));
      } else {
        LLSC_WARN("unknown SYS selector %lld", static_cast<long long>(I.Imm));
        SetV(I.Dst, 0);
      }
      break;
    case IROp::Yield: {
      Cpu.Counters.Yields++;
      // Mostly a scheduler yield; occasionally a short random sleep.
      // sched_yield() alone produces near-perfect FIFO rotation on a
      // single-core host, a schedule so structured that cross-thread
      // interleavings (the ABA ingredient) cannot form; the sleep models
      // the timer-interrupt descheduling a loaded multicore shows.
      thread_local uint64_t YieldLcg = 0x9e3779b97f4a7c15ULL ^
                                       (uint64_t)(uintptr_t)&YieldLcg;
      YieldLcg = YieldLcg * 6364136223846793005ULL + 1442695040888963407ULL;
      if ((YieldLcg >> 60) == 0) {
        timespec Ts{0, static_cast<long>(20000 + ((YieldLcg >> 20) %
                                                  100000))};
        nanosleep(&Ts, nullptr);
      } else {
        sched_yield();
      }
      break;
    }

    // --- Terminators --------------------------------------------------------------
    case IROp::BrCond:
      if (evalCondCode(I.Cc, V(I.A), V(I.B)))
        return {BlockExit::TakenBranch, static_cast<uint64_t>(I.Imm)};
      break;
    case IROp::SetPcImm:
      return {BlockExit::FallThrough, static_cast<uint64_t>(I.Imm)};
    case IROp::SetPc:
      return {BlockExit::Indirect, V(I.A)};
    case IROp::Halt:
      Cpu.Halted = true;
      return {BlockExit::Halted, 0};

    case IROp::NumOps:
      llsc_unreachable("invalid opcode reached the interpreter");
    }
  }
  llsc_unreachable("block fell off the end without a terminator");
}

ErrorOr<RunStatus> Engine::runLoop(VCpu &Cpu, uint64_t MaxBlocks,
                                   bool Registered) {
  ExclusiveContext &Excl = *Ctx.Excl;
  std::vector<uint64_t> Temps;

  uint64_t WallStart = monotonicNanos();
  auto Finish = [&](RunStatus Status) {
    Cpu.Profile.WallNs += monotonicNanos() - WallStart;
    return Status;
  };

  auto BlockOrErr = Cache.lookup(Cpu.Pc);
  if (!BlockOrErr)
    return BlockOrErr.error();
  CachedBlock *Block = *BlockOrErr;

  uint64_t Executed = 0;
  while (true) {
    if (Registered && Excl.safepoint())
      Cpu.Events.SafepointParks++;

    if (LLSC_UNLIKELY(logEnabled(LogLevel::Trace)))
      LLSC_TRACE("tid %u exec block 0x%" PRIx64 " (%u insts)", Cpu.Tid,
                 Block->IR.GuestPc, Block->IR.GuestInstCount);

    BlockExit Exit = execBlock(Cpu, *Block, Temps);
    Cpu.Counters.ExecutedBlocks++;
    Cpu.Counters.ExecutedInsts += Block->IR.GuestInstCount;

    if (Cpu.InLongTx && Ctx.Htm)
      Ctx.Htm->noteFootprint(Cpu.Tid, Block->IR.GuestInstCount);

    if (Exit.ExitKind == BlockExit::Halted) {
      Cpu.Pc = 0;
      return Finish(RunStatus::Halted);
    }
    Cpu.Pc = Exit.NextPc;

    ++Executed;
    if (MaxBlocks && Executed >= MaxBlocks)
      return Finish(RunStatus::Running);
    if (Config.MaxBlocksPerCpu &&
        Cpu.Counters.ExecutedBlocks >= Config.MaxBlocksPerCpu)
      return Finish(RunStatus::TimedOut);
    // Checked every block: under scheme livelock a thread may spend
    // nearly all wall time parked or asleep and execute blocks only
    // rarely, so a sampled check would never fire.
    if (Config.MaxWallNanosPerCpu &&
        monotonicNanos() - WallStart > Config.MaxWallNanosPerCpu)
      return Finish(RunStatus::TimedOut);

    // Next block: direct chain for the two static successors, full lookup
    // for indirect branches.
    ErrorOr<CachedBlock *> NextOrErr = [&]() -> ErrorOr<CachedBlock *> {
      switch (Exit.ExitKind) {
      case BlockExit::TakenBranch:
        return Cache.chain(*Block, 0, Exit.NextPc);
      case BlockExit::FallThrough:
        return Cache.chain(*Block, 1, Exit.NextPc);
      case BlockExit::Indirect:
        return Cache.lookup(Exit.NextPc);
      case BlockExit::Halted:
        break;
      }
      llsc_unreachable("unexpected exit kind");
    }();
    if (!NextOrErr)
      return NextOrErr.error();
    Block = *NextOrErr;
  }
}

ErrorOr<RunStatus> Engine::runCpu(VCpu &Cpu) {
  Ctx.Excl->execStart();
  Cpu.InRunLoop = true;
  auto Result = runLoop(Cpu, /*MaxBlocks=*/0, /*Registered=*/true);
  // Release scheme state that may span guest instructions (open PICO-HTM
  // transactions / exclusive floors) before deregistering.
  Ctx.Scheme->onCpuStopped(Cpu);
  Cpu.InRunLoop = false;
  Ctx.Excl->execEnd();
  return Result;
}

ErrorOr<RunStatus> Engine::stepBlocks(VCpu &Cpu, uint64_t MaxBlocks) {
  if (Cpu.Halted)
    return RunStatus::Halted;
  return runLoop(Cpu, MaxBlocks, /*Registered=*/false);
}
