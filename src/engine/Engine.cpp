//===- engine/Engine.cpp - IR execution engine ---------------------------------===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//
//
// Threaded-dispatch interpreter over the pre-decoded micro-op form
// (engine/Decoded.h). Handler bodies are written once with the OP/NEXT
// macros and compiled either as computed-goto labels (GCC/Clang) or as a
// switch in a dispatch loop (LLSC_FORCE_SWITCH_DISPATCH or other
// compilers) — identical semantics, different dispatch cost.
//
//===----------------------------------------------------------------------===//

#include "engine/Engine.h"

#include "atomic/AtomicScheme.h"
#include "engine/jit/Jit.h"
#include "htm/Htm.h"
#include "mem/GuestMemory.h"
#include "runtime/Exclusive.h"
#include "support/BitUtils.h"
#include "support/Compiler.h"
#include "support/Logging.h"
#include "support/Trace.h"

#include <atomic>
#include <cassert>
#include <cinttypes>
#include <cstdio>
#include <ctime>
#include <sched.h>

using namespace llsc;
using namespace llsc::ir;
using namespace llsc::engine;

namespace {

/// Relaxed-atomic host memory accessors for scheme tables (LoadHost /
/// StoreHost micro-ops emitted by inline instrumentation).
uint64_t hostLoad(uint64_t Addr, unsigned Size) {
  switch (Size) {
  case 1:
    return __atomic_load_n(reinterpret_cast<uint8_t *>(Addr),
                           __ATOMIC_RELAXED);
  case 2:
    return __atomic_load_n(reinterpret_cast<uint16_t *>(Addr),
                           __ATOMIC_RELAXED);
  case 4:
    return __atomic_load_n(reinterpret_cast<uint32_t *>(Addr),
                           __ATOMIC_RELAXED);
  case 8:
    return __atomic_load_n(reinterpret_cast<uint64_t *>(Addr),
                           __ATOMIC_RELAXED);
  default:
    llsc_unreachable("bad host access size");
  }
}

void hostStore(uint64_t Addr, uint64_t Value, unsigned Size) {
  switch (Size) {
  case 1:
    __atomic_store_n(reinterpret_cast<uint8_t *>(Addr),
                     static_cast<uint8_t>(Value), __ATOMIC_RELAXED);
    return;
  case 2:
    __atomic_store_n(reinterpret_cast<uint16_t *>(Addr),
                     static_cast<uint16_t>(Value), __ATOMIC_RELAXED);
    return;
  case 4:
    __atomic_store_n(reinterpret_cast<uint32_t *>(Addr),
                     static_cast<uint32_t>(Value), __ATOMIC_RELAXED);
    return;
  case 8:
    __atomic_store_n(reinterpret_cast<uint64_t *>(Addr), Value,
                     __ATOMIC_RELAXED);
    return;
  default:
    llsc_unreachable("bad host access size");
  }
}

} // namespace

Engine::BlockExit Engine::execBlock(VCpu &Cpu, const CachedBlock &Block,
                                    std::vector<uint64_t> &Temps) {
  const IRBlock &IR = Block.IR;
  if (Temps.size() < static_cast<size_t>(IR.NumValues))
    Temps.resize(IR.NumValues);

  // Operand banks: decode resolved every ValueId into {bank, index}, so
  // the per-op register-vs-temp branch becomes one indexed load. Temps
  // are indexed with the absolute id (the first FirstTempId slots of the
  // vector are unused).
  uint64_t *const Banks[2] = {Cpu.Regs, Temps.data()};

  const bool Profiling = Cpu.ProfilingEnabled;
  GuestMemory &Mem = *Ctx.Mem;
  AtomicScheme &Scheme = *Ctx.Scheme;

  // Fast-path window, revalidated by runLoop() before each block.
  uint8_t *const FastBase = Cpu.FastMemBase;
  const uint64_t FastLimit = Cpu.FastMemLimit;

  const DecodedInst *D = Block.Decoded.data();

// Operand access. A/B reads and the Dst write are single indexed loads
// and stores; every handler uses these only.
#define VAL_A() (Banks[D->ABank][D->A])
#define VAL_B() (Banks[D->BBank][D->B])
#define SET_DST(Value) (Banks[D->DstBank][D->Dst] = (Value))

// Bookkeeping for scheme-injected ops, hoisted behind one flag test per
// dispatch (the flags byte is already in the decoded form's cache line).
#define INSTRUMENT_CHECK()                                                     \
  do {                                                                         \
    if (LLSC_UNLIKELY(D->Flags & DecodedFlagInstrument)) {                     \
      if (Profiling)                                                           \
        Cpu.Profile.InlineInstrumentOps++;                                     \
      if (D->Flags & DecodedFlagCountInline)                                   \
        Cpu.Events.InlineInstrumentOps++;                                      \
    }                                                                          \
  } while (false)

#if LLSC_HAS_COMPUTED_GOTO

  // Handler table indexed by IROp; the opcode byte is the handler index.
  static const void *const JumpTable[] = {
      &&H_MovImm,  &&H_Mov,      &&H_Add,     &&H_Sub,      &&H_Mul,
      &&H_UDiv,    &&H_SDiv,     &&H_URem,    &&H_SRem,     &&H_And,
      &&H_Or,      &&H_Xor,      &&H_Shl,     &&H_Shr,      &&H_Sar,
      &&H_SltS,    &&H_SltU,     &&H_AddImm,  &&H_AndImm,   &&H_OrImm,
      &&H_XorImm,  &&H_ShlImm,   &&H_ShrImm,  &&H_SarImm,   &&H_SltSImm,
      &&H_SltUImm, &&H_LoadG,    &&H_StoreG,  &&H_LoadHost, &&H_StoreHost,
      &&H_LoadLink, &&H_StoreCond, &&H_ClearExcl, &&H_Fence,
      &&H_HelperStore, &&H_HelperLoad, &&H_Helper, &&H_AtomicAddG,
      &&H_AtomicRmwG, &&H_HstStoreTag, &&H_ReadSpecial, &&H_SysCall, &&H_Yield,
      &&H_SetPcImm, &&H_SetPc,   &&H_BrCond,  &&H_Halt,
  };
  static_assert(sizeof(JumpTable) / sizeof(JumpTable[0]) ==
                    static_cast<size_t>(IROp::NumOps),
                "jump table must cover every opcode in enum order");

#define OP(Name) H_##Name:
#define DISPATCH()                                                             \
  do {                                                                         \
    INSTRUMENT_CHECK();                                                        \
    goto *JumpTable[static_cast<unsigned>(D->Op)];                             \
  } while (false)
#define NEXT()                                                                 \
  do {                                                                         \
    ++D;                                                                       \
    DISPATCH();                                                                \
  } while (false)

  DISPATCH();

#else // !LLSC_HAS_COMPUTED_GOTO

#define OP(Name) case IROp::Name:
#define NEXT()                                                                 \
  do {                                                                         \
    ++D;                                                                       \
    goto DispatchTop;                                                          \
  } while (false)

DispatchTop:
  INSTRUMENT_CHECK();
  switch (D->Op) {

#endif // LLSC_HAS_COMPUTED_GOTO

  // --- ALU (constant-folder semantics, one handler per op) ----------------
  OP(MovImm) {
    SET_DST(static_cast<uint64_t>(D->Imm));
    NEXT();
  }
  OP(Mov) {
    SET_DST(VAL_A());
    NEXT();
  }
  OP(Add) {
    SET_DST(VAL_A() + VAL_B());
    NEXT();
  }
  OP(Sub) {
    SET_DST(VAL_A() - VAL_B());
    NEXT();
  }
  OP(Mul) {
    SET_DST(VAL_A() * VAL_B());
    NEXT();
  }
  OP(UDiv) {
    uint64_t B = VAL_B();
    SET_DST(B == 0 ? 0 : VAL_A() / B);
    NEXT();
  }
  OP(SDiv) {
    int64_t A = static_cast<int64_t>(VAL_A());
    int64_t B = static_cast<int64_t>(VAL_B());
    SET_DST(B == 0 || (A == INT64_MIN && B == -1)
                ? 0
                : static_cast<uint64_t>(A / B));
    NEXT();
  }
  OP(URem) {
    uint64_t B = VAL_B();
    SET_DST(B == 0 ? 0 : VAL_A() % B);
    NEXT();
  }
  OP(SRem) {
    int64_t A = static_cast<int64_t>(VAL_A());
    int64_t B = static_cast<int64_t>(VAL_B());
    SET_DST(B == 0 || (A == INT64_MIN && B == -1)
                ? 0
                : static_cast<uint64_t>(A % B));
    NEXT();
  }
  OP(And) {
    SET_DST(VAL_A() & VAL_B());
    NEXT();
  }
  OP(Or) {
    SET_DST(VAL_A() | VAL_B());
    NEXT();
  }
  OP(Xor) {
    SET_DST(VAL_A() ^ VAL_B());
    NEXT();
  }
  OP(Shl) {
    SET_DST(VAL_A() << (VAL_B() & 63));
    NEXT();
  }
  OP(Shr) {
    SET_DST(VAL_A() >> (VAL_B() & 63));
    NEXT();
  }
  OP(Sar) {
    SET_DST(static_cast<uint64_t>(static_cast<int64_t>(VAL_A()) >>
                                  (VAL_B() & 63)));
    NEXT();
  }
  OP(SltS) {
    SET_DST(static_cast<int64_t>(VAL_A()) < static_cast<int64_t>(VAL_B())
                ? 1
                : 0);
    NEXT();
  }
  OP(SltU) {
    SET_DST(VAL_A() < VAL_B() ? 1 : 0);
    NEXT();
  }
  OP(AddImm) {
    SET_DST(VAL_A() + static_cast<uint64_t>(D->Imm));
    NEXT();
  }
  OP(AndImm) {
    SET_DST(VAL_A() & static_cast<uint64_t>(D->Imm));
    NEXT();
  }
  OP(OrImm) {
    SET_DST(VAL_A() | static_cast<uint64_t>(D->Imm));
    NEXT();
  }
  OP(XorImm) {
    SET_DST(VAL_A() ^ static_cast<uint64_t>(D->Imm));
    NEXT();
  }
  OP(ShlImm) {
    SET_DST(VAL_A() << (static_cast<uint64_t>(D->Imm) & 63));
    NEXT();
  }
  OP(ShrImm) {
    SET_DST(VAL_A() >> (static_cast<uint64_t>(D->Imm) & 63));
    NEXT();
  }
  OP(SarImm) {
    SET_DST(static_cast<uint64_t>(static_cast<int64_t>(VAL_A()) >>
                                  (static_cast<uint64_t>(D->Imm) & 63)));
    NEXT();
  }
  OP(SltSImm) {
    SET_DST(static_cast<int64_t>(VAL_A()) < D->Imm ? 1 : 0);
    NEXT();
  }
  OP(SltUImm) {
    SET_DST(VAL_A() < static_cast<uint64_t>(D->Imm) ? 1 : 0);
    NEXT();
  }

  // --- Guest memory -------------------------------------------------------
  OP(LoadG) {
    uint64_t Addr = VAL_A() + static_cast<uint64_t>(D->Imm);
    // Fast path: window valid (no restricted pages), access in bounds,
    // and the op is not scheme-injected — direct relaxed read through
    // the primary mapping, no accessor call.
    if (LLSC_LIKELY(!(D->Flags & DecodedFlagInstrument) &&
                    Addr < FastLimit && D->Size <= FastLimit - Addr)) {
      uint64_t Value = GuestMemory::loadRelaxed(FastBase + Addr, D->Size);
      if (D->Flags & DecodedFlagSignExtend)
        Value = static_cast<uint64_t>(signExtend(Value, D->Size * 8));
      SET_DST(Value);
      Cpu.Counters.Loads++;
      Cpu.Events.FastMemHits++;
      NEXT();
    }
    Cpu.Events.FastMemSlow++;
    if (LLSC_UNLIKELY(Addr >= Mem.size() || Mem.size() - Addr < D->Size)) {
      LLSC_ERROR("tid %u: guest load out of range at pc-block 0x%" PRIx64
                 " addr 0x%" PRIx64,
                 Cpu.Tid, IR.GuestPc, Addr);
      Cpu.Halted = true;
      return {BlockExit::Halted, 0};
    }
    uint64_t Value = Mem.load(Addr, D->Size);
    if (D->Flags & DecodedFlagSignExtend)
      Value = static_cast<uint64_t>(signExtend(Value, D->Size * 8));
    SET_DST(Value);
    Cpu.Counters.Loads++;
    NEXT();
  }
  OP(StoreG) {
    uint64_t Addr = VAL_A() + static_cast<uint64_t>(D->Imm);
    if (LLSC_LIKELY(!(D->Flags & DecodedFlagInstrument) &&
                    Addr < FastLimit && D->Size <= FastLimit - Addr)) {
      GuestMemory::storeRelaxed(FastBase + Addr, VAL_B(), D->Size);
      Cpu.Counters.Stores++;
      Cpu.Events.FastMemHits++;
      NEXT();
    }
    Cpu.Events.FastMemSlow++;
    if (LLSC_UNLIKELY(Addr >= Mem.size() || Mem.size() - Addr < D->Size)) {
      LLSC_ERROR("tid %u: guest store out of range at pc-block 0x%" PRIx64
                 " addr 0x%" PRIx64,
                 Cpu.Tid, IR.GuestPc, Addr);
      Cpu.Halted = true;
      return {BlockExit::Halted, 0};
    }
    Mem.store(Addr, VAL_B(), D->Size);
    Cpu.Counters.Stores++;
    NEXT();
  }

  // --- Host memory (scheme tables) ----------------------------------------
  OP(LoadHost) {
    SET_DST(hostLoad(VAL_A() + static_cast<uint64_t>(D->Imm), D->Size));
    NEXT();
  }
  OP(StoreHost) {
    hostStore(VAL_A() + static_cast<uint64_t>(D->Imm), VAL_B(), D->Size);
    NEXT();
  }

  // --- Atomics --------------------------------------------------------------
  OP(LoadLink) {
    uint64_t LlAddr = VAL_A();
    if (LLSC_UNLIKELY((D->Flags & DecodedFlagCheckAlign) &&
                      (LlAddr & (D->Size - 1)))) {
      LLSC_ERROR("tid %u: misaligned LR at pc-block 0x%" PRIx64
                 " addr 0x%" PRIx64,
                 Cpu.Tid, IR.GuestPc, LlAddr);
      Cpu.Halted = true;
      return {BlockExit::Halted, 0};
    }
    SET_DST(Scheme.emulateLoadLink(Cpu, LlAddr, D->Size));
    Cpu.Counters.LoadLinks++;
    Cpu.Events.LlIssued++;
    if (TraceRecorder *Trace = TraceRecorder::active())
      Trace->instant(Cpu.Tid, "ll", "atomic");
    NEXT();
  }
  OP(StoreCond) {
    uint64_t ScAddr = VAL_A();
    if (LLSC_UNLIKELY((D->Flags & DecodedFlagCheckAlign) &&
                      (ScAddr & (D->Size - 1)))) {
      LLSC_ERROR("tid %u: misaligned SC at pc-block 0x%" PRIx64
                 " addr 0x%" PRIx64,
                 Cpu.Tid, IR.GuestPc, ScAddr);
      Cpu.Halted = true;
      return {BlockExit::Halted, 0};
    }
    bool Ok = Scheme.emulateStoreCond(Cpu, ScAddr, VAL_B(), D->Size);
    SET_DST(Ok ? 0 : 1);
    Cpu.Counters.StoreConds++;
    Cpu.Events.ScAttempted++;
    if (Ok) {
      Cpu.Events.ScSucceeded++;
    } else {
      Cpu.Counters.StoreCondFailures++;
      Cpu.Events.ScFailed++;
    }
    if (TraceRecorder *Trace = TraceRecorder::active())
      Trace->instant(Cpu.Tid, Ok ? "sc" : "sc-fail", "atomic");
    NEXT();
  }
  OP(ClearExcl) {
    Scheme.clearExclusive(Cpu);
    NEXT();
  }
  OP(Fence) {
    std::atomic_thread_fence(std::memory_order_seq_cst);
    NEXT();
  }

  // --- Helper-routed memory -------------------------------------------------
  OP(HelperStore) {
    Scheme.storeHook(Cpu, VAL_A() + static_cast<uint64_t>(D->Imm), VAL_B(),
                     D->Size);
    Cpu.Counters.Stores++;
    Cpu.Events.HelperStoreCalls++;
    NEXT();
  }
  OP(HelperLoad) {
    uint64_t Value =
        Scheme.loadHook(Cpu, VAL_A() + static_cast<uint64_t>(D->Imm), D->Size);
    if (D->Flags & DecodedFlagSignExtend)
      Value = static_cast<uint64_t>(signExtend(Value, D->Size * 8));
    SET_DST(Value);
    Cpu.Counters.Loads++;
    Cpu.Events.HelperLoadCalls++;
    NEXT();
  }
  OP(Helper) {
    const HelperFn &Fn = IR.Helpers[static_cast<size_t>(D->Imm)];
    SET_DST(Fn.Fn(Fn.Ctx, &Cpu, VAL_A(), VAL_B()));
    Cpu.Events.SchemeHelperCalls++;
    NEXT();
  }

  OP(HstStoreTag) {
    // Fused HST instrumentation (Figure 5's 4-instruction inline
    // sequence): one dispatch, no scheme call. Guarded in case a
    // custom scheme emits the op without publishing a table. Every
    // 4-byte granule the store touches must be tagged, or a wider or
    // misaligned store could slip past a monitor armed on a granule the
    // first entry does not cover; aligned stores of <= 4 bytes cover one
    // granule and keep the single-store fast path.
    if (LLSC_LIKELY(Ctx.HstTable != nullptr)) {
      uint64_t Addr = VAL_A() + static_cast<uint64_t>(D->Imm);
      uint64_t First = Addr >> 2;
      uint64_t Last = (Addr + D->Size - 1) >> 2;
      Ctx.HstTable[First & Ctx.HstMask].store(Cpu.Tid + 1,
                                              std::memory_order_relaxed);
      while (LLSC_UNLIKELY(First != Last)) {
        ++First;
        Ctx.HstTable[First & Ctx.HstMask].store(Cpu.Tid + 1,
                                                std::memory_order_relaxed);
      }
    }
    NEXT();
  }

  OP(AtomicAddG) {
    uint64_t Addr = VAL_A();
    if (LLSC_UNLIKELY(Addr >= Mem.size() || Mem.size() - Addr < D->Size)) {
      LLSC_ERROR("tid %u: atomic rmw out of range addr 0x%" PRIx64, Cpu.Tid,
                 Addr);
      Cpu.Halted = true;
      return {BlockExit::Halted, 0};
    }
    SET_DST(Mem.fetchAdd(Addr, VAL_B(), D->Size));
    NEXT();
  }

  OP(AtomicRmwG) {
    // Single host-RMW lowering of a guest AMO (Section VI rule-based
    // path and the GRV fetch-add idiom's generalised sibling). Imm is an
    // ir::RmwKind; GuestMemory::atomicRmw matches it numerically. AMOs
    // are architecturally aligned, so misalignment is a translation bug
    // for the naturally-aligned frontends — but guest addresses are
    // data-dependent, so misalignment halts rather than asserts.
    uint64_t Addr = VAL_A();
    if (LLSC_UNLIKELY(Addr >= Mem.size() || Mem.size() - Addr < D->Size ||
                      (Addr & (D->Size - 1)))) {
      LLSC_ERROR("tid %u: atomic rmw out of range or misaligned addr"
                 " 0x%" PRIx64,
                 Cpu.Tid, Addr);
      Cpu.Halted = true;
      return {BlockExit::Halted, 0};
    }
    SET_DST(Mem.atomicRmw(Addr, VAL_B(), D->Size,
                          static_cast<unsigned>(D->Imm)));
    NEXT();
  }

  // --- Specials ---------------------------------------------------------------
  OP(ReadSpecial) {
    switch (static_cast<SpecialValue>(D->Imm)) {
    case SpecialValue::Tid:
      SET_DST(Cpu.Tid);
      break;
    case SpecialValue::NumThreads:
      SET_DST(Ctx.NumThreads);
      break;
    case SpecialValue::ClockNanos:
      SET_DST(monotonicNanos());
      break;
    }
    NEXT();
  }
  OP(SysCall) {
    if (static_cast<guest::SysCall>(D->Imm) == guest::SysCall::PrintReg) {
      std::fprintf(stderr, "[guest tid %u] 0x%016" PRIx64 " (%" PRId64 ")\n",
                   Cpu.Tid, VAL_A(), static_cast<int64_t>(VAL_A()));
      SET_DST(VAL_A());
    } else {
      LLSC_WARN("unknown SYS selector %lld", static_cast<long long>(D->Imm));
      SET_DST(0);
    }
    NEXT();
  }
  OP(Yield) {
    Cpu.Counters.Yields++;
    // Mostly a scheduler yield; occasionally a short random sleep.
    // sched_yield() alone produces near-perfect FIFO rotation on a
    // single-core host, a schedule so structured that cross-thread
    // interleavings (the ABA ingredient) cannot form; the sleep models
    // the timer-interrupt descheduling a loaded multicore shows.
    thread_local uint64_t YieldLcg =
        0x9e3779b97f4a7c15ULL ^ (uint64_t)(uintptr_t)&YieldLcg;
    YieldLcg = YieldLcg * 6364136223846793005ULL + 1442695040888963407ULL;
    if ((YieldLcg >> 60) == 0) {
      timespec Ts{0, static_cast<long>(20000 + ((YieldLcg >> 20) % 100000))};
      nanosleep(&Ts, nullptr);
    } else {
      sched_yield();
    }
    NEXT();
  }

  // --- Terminators --------------------------------------------------------------
  OP(BrCond) {
    if (evalCondCode(D->Cc, VAL_A(), VAL_B()))
      return {BlockExit::TakenBranch, static_cast<uint64_t>(D->Imm)};
    NEXT();
  }
  OP(SetPcImm) {
    return {BlockExit::FallThrough, static_cast<uint64_t>(D->Imm)};
  }
  OP(SetPc) {
    return {BlockExit::Indirect, VAL_A()};
  }
  OP(Halt) {
    Cpu.Halted = true;
    return {BlockExit::Halted, 0};
  }

#if !LLSC_HAS_COMPUTED_GOTO
  case IROp::NumOps:
    break;
  }
#endif
  llsc_unreachable("invalid opcode reached the interpreter");

#undef OP
#undef NEXT
#undef DISPATCH
#undef INSTRUMENT_CHECK
#undef VAL_A
#undef VAL_B
#undef SET_DST
}

ErrorOr<RunStatus> Engine::runLoop(VCpu &Cpu, uint64_t MaxBlocks,
                                   bool Registered) {
  ExclusiveContext &Excl = *Ctx.Excl;
  GuestMemory &Mem = *Ctx.Mem;
  std::vector<uint64_t> Temps;

  // The wall budget is per *run*, not per runLoop entry: sliced modes
  // re-enter here once per slice, so the clock must carry over or a
  // cooperative vCPU could never exceed its budget inside one slice.
  // Profile.WallNs holds exactly the wall time accrued by this vCPU's
  // earlier slices of the current run (reset in prepareRun).
  uint64_t WallStart = monotonicNanos();
  const uint64_t WallBase = Cpu.Profile.WallNs;
  auto Finish = [&](RunStatus Status) {
    Cpu.Profile.WallNs += monotonicNanos() - WallStart;
    return Status;
  };
  if (Config.MaxWallNanosPerCpu && WallBase > Config.MaxWallNanosPerCpu)
    return Finish(RunStatus::TimedOut);

  // First-level block lookup for indirect control flow: the per-vCPU
  // direct-mapped jump cache, dropped wholesale when the TbCache
  // generation moves (flush), filled lock-free from lookups.
  auto LookupJmpCached = [&](uint64_t Pc) -> ErrorOr<CachedBlock *> {
    uint64_t Gen = Cache->generation();
    if (LLSC_UNLIKELY(Gen != Cpu.JmpCache.Generation)) {
      Cpu.JmpCache.clear();
      Cpu.JmpCache.Generation = Gen;
    }
    if (CachedBlock *Hit = Cpu.JmpCache.probe(Pc)) {
      Cpu.Events.JmpCacheHits++;
      return Hit;
    }
    Cpu.Events.JmpCacheMisses++;
    auto BlockOrErr = Cache->lookup(Pc, *Trans);
    if (!BlockOrErr)
      return BlockOrErr.error();
    Cpu.JmpCache.insert(Pc, *BlockOrErr);
    return *BlockOrErr;
  };

  auto BlockOrErr = LookupJmpCached(Cpu.Pc);
  if (!BlockOrErr)
    return BlockOrErr.error();
  CachedBlock *Block = *BlockOrErr;

  // Wall-budget bookkeeping: the clock is read every WallCheckLeft blocks
  // (see below), starting with an immediate read.
  uint64_t WallCheckLeft = 0;

  uint64_t Executed = 0;
  while (true) {
    if (Registered && Excl.safepoint()) {
      Cpu.Events.SafepointParks++;
      // The exclusive section we parked for may have been a scheme
      // hot-swap, which flushes the TB cache: the held Block would then
      // be retired, carrying the *old* scheme's instrumentation (and
      // possibly freed at the next swap). At the loop top Block's pc is
      // Cpu.Pc, so re-resolve before touching it. Costs nothing on the
      // non-parked fast path.
      if (LLSC_UNLIKELY(Cache->generation() != Cpu.JmpCache.Generation)) {
        BlockOrErr = LookupJmpCached(Cpu.Pc);
        if (!BlockOrErr)
          return BlockOrErr.error();
        Block = *BlockOrErr;
      }
    }

    // Re-validate the guest-memory fast-path window. One counter load +
    // compare per block; transitions (PST's mprotect/remap) are rare.
    uint64_t MemEpoch = Mem.fastPathEpoch();
    if (LLSC_UNLIKELY(MemEpoch != Cpu.FastMemEpoch)) {
      Cpu.FastMemEpoch = MemEpoch;
      Cpu.FastMemBase = Mem.primaryBase();
      Cpu.FastMemLimit = Mem.fastPathAllowed() ? Mem.size() : 0;
    }

    // --- Tier-1 dispatch ---------------------------------------------------
    // Hand hot blocks to the JIT and let emitted code chain through its
    // successors until an exit condition (docs/JIT.md). Stays tier-0 in
    // cooperative mode (unregistered; the litmus replayer counts blocks
    // one at a time), under profiling (bucket attribution is interpreter
    // state), under HTM schemes (per-block footprint accounting), and
    // while per-block trace logging is on.
    if (TheJit && Registered && !Config.Profile && !Ctx.Htm &&
        LLSC_LIKELY(!logEnabled(LogLevel::Trace))) {
      if (const void *Code = TheJit->codeFor(*Block, Cpu)) {
        // A previous tier-1 exit left an unchained site whose target is
        // this very block; patch it now that the target has code so the
        // next pass through the site never leaves emitted code.
        if (Cpu.JitPendingPatch) {
          TheJit->patchChain(Cpu.JitPendingPatch, Code, Cpu);
          Cpu.JitPendingPatch = 0;
        }

        // Chained-execution budget: emitted prologues decrement it once
        // per block and exit at zero, so the budget/wall checks below
        // still run often enough. Unlimited runs re-enter every ~2^30
        // blocks; wall-budgeted runs every 64 (the interpreter's maximum
        // clock-check stride).
        int64_t Budget = int64_t(1) << 30;
        if (Config.MaxBlocksPerCpu) {
          uint64_t Done = Cpu.Counters.ExecutedBlocks;
          uint64_t Left =
              Config.MaxBlocksPerCpu > Done ? Config.MaxBlocksPerCpu - Done : 1;
          if (static_cast<uint64_t>(Budget) > Left)
            Budget = static_cast<int64_t>(Left);
        }
        if (Config.MaxWallNanosPerCpu && Budget > 64)
          Budget = 64;
        Cpu.JitChainBudget = Budget;

        uint64_t BlocksBefore = Cpu.Counters.ExecutedBlocks;
        Cpu.Events.JitEnters++;
        jit::JitExit JExit = TheJit->enter(Cpu, Code);
        Executed += Cpu.Counters.ExecutedBlocks - BlocksBefore;

        if (JExit.kind() == jit::ExitKind::Halted) {
          Cpu.Pc = 0;
          return Finish(RunStatus::Halted);
        }
        Cpu.Pc = JExit.NextPc;
        if (JExit.kind() == jit::ExitKind::Deopt)
          Cpu.Events.JitDeopts++;

        if (MaxBlocks && Executed >= MaxBlocks)
          return Finish(RunStatus::Running);
        if (Config.MaxBlocksPerCpu &&
            Cpu.Counters.ExecutedBlocks >= Config.MaxBlocksPerCpu)
          return Finish(RunStatus::TimedOut);
        if (Config.MaxWallNanosPerCpu) {
          if (WallBase + (monotonicNanos() - WallStart) >
              Config.MaxWallNanosPerCpu)
            return Finish(RunStatus::TimedOut);
          WallCheckLeft = 0; // Stride state is stale; re-read next block.
        }

        BlockOrErr = LookupJmpCached(Cpu.Pc);
        if (!BlockOrErr)
          return BlockOrErr.error();
        Block = *BlockOrErr;
        // Loop top re-runs the safepoint poll and window revalidation the
        // emitted prologue may have exited for (Safepoint/Deopt kinds).
        continue;
      }
      // The pending site's target stays tier-0 (cold or bailed): the site
      // keeps its fall-through stub and re-reports on every pass.
      Cpu.JitPendingPatch = 0;
    }

    if (LLSC_UNLIKELY(logEnabled(LogLevel::Trace)))
      LLSC_TRACE("tid %u exec block 0x%" PRIx64 " (%u insts)", Cpu.Tid,
                 Block->IR.GuestPc, Block->IR.GuestInstCount);

    BlockExit Exit = execBlock(Cpu, *Block, Temps);
    Cpu.Counters.ExecutedBlocks++;
    Cpu.Counters.ExecutedInsts += Block->IR.GuestInstCount;

    if (Cpu.InLongTx && Ctx.Htm)
      Ctx.Htm->noteFootprint(Cpu.Tid, Block->IR.GuestInstCount);

    if (Exit.ExitKind == BlockExit::Halted) {
      Cpu.Pc = 0;
      return Finish(RunStatus::Halted);
    }
    Cpu.Pc = Exit.NextPc;

    ++Executed;
    if (MaxBlocks && Executed >= MaxBlocks)
      return Finish(RunStatus::Running);
    if (Config.MaxBlocksPerCpu &&
        Cpu.Counters.ExecutedBlocks >= Config.MaxBlocksPerCpu)
      return Finish(RunStatus::TimedOut);

    // Wall-clock budget with an adaptive stride. Under scheme livelock a
    // thread may spend nearly all wall time parked or asleep and execute
    // blocks only rarely, so a fixed sampling stride would detect the
    // timeout arbitrarily late; instead the next check distance is sized
    // from the measured per-block cost so slow (parked) blocks re-check
    // every block while tight loops pay one clock read per 64 blocks,
    // and the deadline can never be overshot by more than ~half the
    // remaining budget.
    if (Config.MaxWallNanosPerCpu) {
      if (WallCheckLeft == 0) {
        uint64_t Elapsed = WallBase + (monotonicNanos() - WallStart);
        if (Elapsed > Config.MaxWallNanosPerCpu)
          return Finish(RunStatus::TimedOut);
        uint64_t Remaining = Config.MaxWallNanosPerCpu - Elapsed;
        uint64_t AvgBlockNs =
            Executed ? (Elapsed / Executed) + 1 : 1;
        uint64_t Stride = Remaining / (2 * AvgBlockNs);
        WallCheckLeft = Stride > 64 ? 64 : Stride;
      } else {
        --WallCheckLeft;
      }
    }

    // Next block: direct chain for the two static successors, jump-cached
    // lookup for indirect branches.
    ErrorOr<CachedBlock *> NextOrErr = [&]() -> ErrorOr<CachedBlock *> {
      switch (Exit.ExitKind) {
      case BlockExit::TakenBranch:
        return Cache->chain(*Block, 0, Exit.NextPc, *Trans);
      case BlockExit::FallThrough:
        return Cache->chain(*Block, 1, Exit.NextPc, *Trans);
      case BlockExit::Indirect:
        return LookupJmpCached(Exit.NextPc);
      case BlockExit::Halted:
        break;
      }
      llsc_unreachable("unexpected exit kind");
    }();
    if (!NextOrErr)
      return NextOrErr.error();
    Block = *NextOrErr;
  }
}

ErrorOr<RunStatus> Engine::runCpu(VCpu &Cpu) {
  Ctx.Excl->execStart();
  Cpu.InRunLoop = true;
  auto Result = runLoop(Cpu, /*MaxBlocks=*/0, /*Registered=*/true);
  // Release scheme state that may span guest instructions (open PICO-HTM
  // transactions / exclusive floors) before deregistering.
  Ctx.Scheme->onCpuStopped(Cpu);
  Cpu.InRunLoop = false;
  Ctx.Excl->execEnd();
  return Result;
}

ErrorOr<RunStatus> Engine::stepBlocks(VCpu &Cpu, uint64_t MaxBlocks) {
  if (Cpu.Halted)
    return RunStatus::Halted;
  return runLoop(Cpu, MaxBlocks, /*Registered=*/false);
}
