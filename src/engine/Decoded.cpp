//===- engine/Decoded.cpp - Pre-decoded micro-ops for dispatch --------------===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//

#include "engine/Decoded.h"

using namespace llsc;
using namespace llsc::engine;

static_assert(static_cast<uint8_t>(DecodedFlagSignExtend) ==
                  static_cast<uint8_t>(ir::IRFlagSignExtend),
              "decode copies IR flag bits through");
static_assert(static_cast<uint8_t>(DecodedFlagInstrument) ==
                  static_cast<uint8_t>(ir::IRFlagInstrument),
              "decode copies IR flag bits through");
static_assert(static_cast<uint8_t>(DecodedFlagCheckAlign) ==
                  static_cast<uint8_t>(ir::IRFlagCheckAlign),
              "decode copies IR flag bits through");

static uint8_t bankOf(ir::ValueId Id) {
  return Id < ir::FirstTempId ? BankRegs : BankTemps;
}

std::vector<DecodedInst> engine::decodeBlock(const ir::IRBlock &IR) {
  std::vector<DecodedInst> Out;
  Out.reserve(IR.Insts.size());
  for (const ir::IRInst &I : IR.Insts) {
    DecodedInst D;
    D.Op = I.Op;
    D.Size = I.Size;
    D.Flags = I.Flags & (DecodedFlagSignExtend | DecodedFlagInstrument |
                         DecodedFlagCheckAlign);
    if ((I.Flags & ir::IRFlagInstrument) && I.Op != ir::IROp::Helper &&
        I.Op != ir::IROp::HelperLoad && I.Op != ir::IROp::HelperStore)
      D.Flags |= DecodedFlagCountInline;
    D.Cc = I.Cc;
    D.Dst = I.Dst;
    D.A = I.A;
    D.B = I.B;
    D.DstBank = bankOf(I.Dst);
    D.ABank = bankOf(I.A);
    D.BBank = bankOf(I.B);
    D.Imm = I.Imm;
    Out.push_back(D);
  }
  return Out;
}
