//===- engine/jit/JitCompiler.h - IR block -> x86-64 lowering ---*- C++-*-===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-block TranslationContext: lowers one CachedBlock's pre-decoded
/// micro-ops to x86-64 through the raw byte emitter, with linear-scan
/// register allocation over IR temps (guest registers stay memory-resident
/// in the VCpu frame, QEMU-style). See docs/JIT.md for the lowering map
/// and the register contract; JitRuntime.h describes the exit protocol the
/// emitted prologue and exit stubs implement.
///
/// compileBlock is pure with respect to the machine: it writes only into
/// the caller's emitter/fixup buffers. Unsupported shapes (temp pressure
/// beyond the spill area, use of an undefined temp) return false — the
/// caller marks the block Bailed and tier-0 keeps executing it.
///
//===----------------------------------------------------------------------===//

#ifndef LLSC_ENGINE_JIT_JITCOMPILER_H
#define LLSC_ENGINE_JIT_JITCOMPILER_H

#include "engine/jit/CodeCache.h"

#include <atomic>
#include <cstdint>
#include <vector>

namespace llsc {

struct CachedBlock;

namespace jit {

class X86Emitter;

/// Lowers \p Block into \p Em, recording relocations in \p Fixups.
/// \returns false to bail (block stays tier-0). On success the buffer is
/// a complete block body: entry checks, counter bookkeeping, op bodies,
/// and exit stubs, ready for CodeCache::install.
///
/// Emitted code is machine-neutral: every machine-instance address it
/// needs (exclusive-pending flag, fastmem epoch, HST table/mask, thread
/// count) is loaded through the pinned VCpu's MachineContext at runtime
/// rather than baked as an immediate, so one compiled body is valid for
/// any machine sharing the block — the property snapshot clones rely on
/// to reuse warm code without recompiling.
bool compileBlock(const CachedBlock &Block, X86Emitter &Em,
                  std::vector<Fixup> &Fixups);

} // namespace jit
} // namespace llsc

#endif // LLSC_ENGINE_JIT_JITCOMPILER_H
