//===- engine/jit/CodeCache.cpp - W^X executable code region -------------===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//

#include "engine/jit/CodeCache.h"

#include "engine/jit/X86Emitter.h"
#include "support/Logging.h"

#include <cerrno>
#include <cstring>
#include <sys/mman.h>
#include <unistd.h>

using namespace llsc;
using namespace llsc::jit;

std::unique_ptr<CodeCache> CodeCache::create(size_t Bytes) {
  long Page = sysconf(_SC_PAGESIZE);
  if (Page <= 0)
    Page = 4096;
  Bytes = (Bytes + Page - 1) & ~static_cast<size_t>(Page - 1);

  int Fd = memfd_create("llsc-jit-code", 0);
  if (Fd < 0) {
    LLSC_WARN("jit: memfd_create failed (%s); tier-1 disabled",
              std::strerror(errno));
    return nullptr;
  }
  if (ftruncate(Fd, static_cast<off_t>(Bytes)) != 0) {
    LLSC_WARN("jit: ftruncate failed (%s); tier-1 disabled",
              std::strerror(errno));
    close(Fd);
    return nullptr;
  }

  void *Rw = mmap(nullptr, Bytes, PROT_READ | PROT_WRITE, MAP_SHARED, Fd, 0);
  if (Rw == MAP_FAILED) {
    LLSC_WARN("jit: code mmap (rw) failed (%s); tier-1 disabled",
              std::strerror(errno));
    close(Fd);
    return nullptr;
  }
  void *Rx = mmap(nullptr, Bytes, PROT_READ | PROT_EXEC, MAP_SHARED, Fd, 0);
  if (Rx == MAP_FAILED) {
    LLSC_WARN("jit: code mmap (rx) failed (%s); tier-1 disabled",
              std::strerror(errno));
    munmap(Rw, Bytes);
    close(Fd);
    return nullptr;
  }

  auto Cache = std::unique_ptr<CodeCache>(new CodeCache());
  Cache->MemFd = Fd;
  Cache->WriteBase = static_cast<uint8_t *>(Rw);
  Cache->ExecBase = static_cast<uint8_t *>(Rx);
  Cache->Size = Bytes;

  // Trampoline at offset 0 (= enterFn): rdi = VCpu*, rsi = body.
  // Entry rsp is 8 mod 16 (return address); 6 pushes keep it at 8 mod 16,
  // the sub re-aligns to 0 mod 16 so bodies may `call` thunks directly.
  X86Emitter Em;
  Em.push(RBP);
  Em.push(RBX);
  Em.push(R12);
  Em.push(R13);
  Em.push(R14);
  Em.push(R15);
  Em.subImm(RSP, 8);
  Em.movReg(RBX, RDI);
  Em.jmpReg(RSI);

  // Shared epilogue: exit stubs arrive with rax:rdx = {NextPc, Kind}.
  Em.alignWithBias(16, 0);
  size_t Epilogue = Em.size();
  Em.addImm(RSP, 8);
  Em.pop(R15);
  Em.pop(R14);
  Em.pop(R13);
  Em.pop(R12);
  Em.pop(RBX);
  Em.pop(RBP);
  Em.ret();

  std::memcpy(Cache->WriteBase, Em.data(), Em.size());
  Cache->EpilogueOffset = Epilogue;
  Cache->Cursor = (Em.size() + 15) & ~static_cast<size_t>(15);
  return Cache;
}

CodeCache::~CodeCache() {
  if (WriteBase)
    munmap(WriteBase, Size);
  if (ExecBase)
    munmap(ExecBase, Size);
  if (MemFd >= 0)
    close(MemFd);
}

const void *CodeCache::install(const X86Emitter &Em,
                               const std::vector<Fixup> &Fixups) {
  size_t Start = (Cursor + 15) & ~static_cast<size_t>(15);
  if (Start + Em.size() > Size)
    return nullptr;

  uint8_t *Dst = WriteBase + Start;
  std::memcpy(Dst, Em.data(), Em.size());

  uintptr_t ExecStart = reinterpret_cast<uintptr_t>(ExecBase) + Start;
  for (const Fixup &F : Fixups) {
    switch (F.K) {
    case Fixup::AbsBlockAddr: {
      uint64_t Addr = ExecStart + F.Target;
      std::memcpy(Dst + F.Offset, &Addr, sizeof(Addr));
      break;
    }
    case Fixup::RelEpilogue: {
      int64_t Rel = static_cast<int64_t>(EpilogueOffset) -
                    (static_cast<int64_t>(Start + F.Offset) + 4);
      int32_t Rel32 = static_cast<int32_t>(Rel);
      std::memcpy(Dst + F.Offset, &Rel32, sizeof(Rel32));
      break;
    }
    }
  }

  Cursor = Start + Em.size();
  return reinterpret_cast<const void *>(ExecStart);
}

void CodeCache::patchChain(uintptr_t SiteExecAddr, uintptr_t TargetExecAddr) {
  // The compiler NOP-pads every chain site so its rel32 operand is 4-byte
  // aligned: one atomic dword store through the write view updates the
  // jump while other vCPUs may be executing it (the QEMU tb-chaining
  // pattern; on x86 an aligned 4-byte cross-modifying store is the
  // accepted practice for patching a jump-immediate).
  uintptr_t SiteRw = reinterpret_cast<uintptr_t>(WriteBase) +
                     (SiteExecAddr - reinterpret_cast<uintptr_t>(ExecBase));
  int64_t Rel =
      static_cast<int64_t>(TargetExecAddr) - (static_cast<int64_t>(SiteExecAddr) + 4);
  __atomic_store_n(reinterpret_cast<int32_t *>(SiteRw),
                   static_cast<int32_t>(Rel), __ATOMIC_RELEASE);
}
