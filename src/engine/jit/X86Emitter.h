//===- engine/jit/X86Emitter.h - Raw x86-64 machine-code writer -*- C++-*-===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal x86-64 byte emitter for the tier-1 JIT: no external assembler,
/// just REX/ModRM/SIB encoding into a growable byte buffer (the
/// machine_code_writer idiom of SNIPPETS.md snippets 1-3). The
/// TranslationContext (JitCompiler.cpp) is the only client; it emits a
/// block into a local buffer, then CodeCache::install copies the bytes
/// into the dual-mapped executable region and resolves the recorded
/// external fixups against final addresses.
///
/// Only the subset of the ISA the lowering needs is implemented. All
/// integer ops are 64-bit (REX.W) unless the name says otherwise; memory
/// operands handle the RSP/R12 SIB and RBP/R13 disp8 encoding corners.
///
//===----------------------------------------------------------------------===//

#ifndef LLSC_ENGINE_JIT_X86EMITTER_H
#define LLSC_ENGINE_JIT_X86EMITTER_H

#include "support/Compiler.h"

#include <cstddef>
#include <cstdint>
#include <vector>

namespace llsc {
namespace jit {

/// Host register numbers (hardware encoding).
enum Reg : uint8_t {
  RAX = 0,
  RCX = 1,
  RDX = 2,
  RBX = 3,
  RSP = 4,
  RBP = 5,
  RSI = 6,
  RDI = 7,
  R8 = 8,
  R9 = 9,
  R10 = 10,
  R11 = 11,
  R12 = 12,
  R13 = 13,
  R14 = 14,
  R15 = 15,
};

/// x86 condition-code nibble for Jcc / SETcc.
enum Cond : uint8_t {
  CC_O = 0x0,
  CC_B = 0x2,  ///< unsigned <
  CC_AE = 0x3, ///< unsigned >=
  CC_E = 0x4,
  CC_NE = 0x5,
  CC_BE = 0x6, ///< unsigned <=
  CC_A = 0x7,  ///< unsigned >
  CC_S = 0x8,  ///< sign set
  CC_NS = 0x9,
  CC_L = 0xC,  ///< signed <
  CC_GE = 0xD, ///< signed >=
  CC_LE = 0xE, ///< signed <=
  CC_G = 0xF,  ///< signed >
};

/// Byte-buffer machine-code writer.
class X86Emitter {
public:
  const uint8_t *data() const { return Buf.data(); }
  size_t size() const { return Buf.size(); }

  // --- Raw bytes -----------------------------------------------------------

  void emit8(uint8_t B) { Buf.push_back(B); }
  void emit16(uint16_t V) {
    emit8(static_cast<uint8_t>(V));
    emit8(static_cast<uint8_t>(V >> 8));
  }
  void emit32(uint32_t V) {
    for (int I = 0; I < 4; ++I)
      emit8(static_cast<uint8_t>(V >> (8 * I)));
  }
  void emit64(uint64_t V) {
    for (int I = 0; I < 8; ++I)
      emit8(static_cast<uint8_t>(V >> (8 * I)));
  }

  void nop() { emit8(0x90); }

  /// Pads with NOPs until (size() + Bias) is a multiple of \p Align.
  void alignWithBias(unsigned Align, unsigned Bias) {
    while ((Buf.size() + Bias) % Align != 0)
      nop();
  }

  // --- Moves ---------------------------------------------------------------

  /// mov r64, imm64 (movabs). Emits the shorter mov r32, imm32 /
  /// mov r64, simm32 forms when the value allows.
  void movImm64(Reg Dst, uint64_t Imm) {
    if (Imm <= UINT32_MAX) {
      // mov r32, imm32 zero-extends.
      rexOpt(0, Dst);
      emit8(0xB8 | (Dst & 7));
      emit32(static_cast<uint32_t>(Imm));
      return;
    }
    if (static_cast<int64_t>(Imm) < 0 &&
        static_cast<int64_t>(Imm) >= INT32_MIN) {
      // mov r/m64, simm32.
      rexW(0, Dst);
      emit8(0xC7);
      modrmReg(0, Dst);
      emit32(static_cast<uint32_t>(Imm));
      return;
    }
    rexW(0, Dst);
    emit8(0xB8 | (Dst & 7));
    emit64(Imm);
  }

  /// mov r64, imm64 in the fixed 10-byte movabs form (never shortened),
  /// for operands a Fixup will overwrite. \returns the buffer offset of
  /// the imm64.
  size_t movImm64Fixed(Reg Dst, uint64_t Imm) {
    rexW(0, Dst);
    emit8(0xB8 | (Dst & 7));
    size_t At = Buf.size();
    emit64(Imm);
    return At;
  }

  /// mov r64, r64.
  void movReg(Reg Dst, Reg Src) {
    rexW(Src, Dst);
    emit8(0x89);
    modrmReg(Src, Dst);
  }

  /// mov r64, [Base + Disp].
  void loadQ(Reg Dst, Reg Base, int32_t Disp) {
    rexW(Dst, Base);
    emit8(0x8B);
    modrmMem(Dst, Base, Disp);
  }

  /// mov [Base + Disp], r64.
  void storeQ(Reg Base, int32_t Disp, Reg Src) {
    rexW(Src, Base);
    emit8(0x89);
    modrmMem(Src, Base, Disp);
  }

  /// Zero-extending load of Size (1/2/4/8) bytes: movzx / mov r32 / mov r64
  /// from [Base + Index].
  void loadZx(Reg Dst, Reg Base, Reg Index, unsigned Size) {
    switch (Size) {
    case 1:
      rexW(Dst, Base, Index);
      emit8(0x0F);
      emit8(0xB6);
      modrmSib(Dst, Base, Index, 0, 0);
      return;
    case 2:
      rexW(Dst, Base, Index);
      emit8(0x0F);
      emit8(0xB7);
      modrmSib(Dst, Base, Index, 0, 0);
      return;
    case 4:
      // mov r32, m32 zero-extends to 64.
      rexOpt(Dst, Base, Index);
      emit8(0x8B);
      modrmSib(Dst, Base, Index, 0, 0);
      return;
    case 8:
      rexW(Dst, Base, Index);
      emit8(0x8B);
      modrmSib(Dst, Base, Index, 0, 0);
      return;
    }
    llsc_unreachable("bad load size");
  }

  /// Sign-extending load of Size (1/2/4) bytes from [Base + Index];
  /// Size 8 is a plain load.
  void loadSx(Reg Dst, Reg Base, Reg Index, unsigned Size) {
    switch (Size) {
    case 1:
      rexW(Dst, Base, Index);
      emit8(0x0F);
      emit8(0xBE);
      modrmSib(Dst, Base, Index, 0, 0);
      return;
    case 2:
      rexW(Dst, Base, Index);
      emit8(0x0F);
      emit8(0xBF);
      modrmSib(Dst, Base, Index, 0, 0);
      return;
    case 4:
      // movsxd r64, m32.
      rexW(Dst, Base, Index);
      emit8(0x63);
      modrmSib(Dst, Base, Index, 0, 0);
      return;
    case 8:
      loadZx(Dst, Base, Index, 8);
      return;
    }
    llsc_unreachable("bad load size");
  }

  /// Store of the low Size (1/2/4/8) bytes of Src to [Base + Index].
  void storeSized(Reg Base, Reg Index, Reg Src, unsigned Size) {
    switch (Size) {
    case 1:
      // mov m8, r8 needs REX to reach SIL/DIL/r8b+; always emit one.
      rexForce(Src, Base, Index, /*Wide=*/false);
      emit8(0x88);
      modrmSib(Src, Base, Index, 0, 0);
      return;
    case 2:
      emit8(0x66);
      rexOpt(Src, Base, Index);
      emit8(0x89);
      modrmSib(Src, Base, Index, 0, 0);
      return;
    case 4:
      rexOpt(Src, Base, Index);
      emit8(0x89);
      modrmSib(Src, Base, Index, 0, 0);
      return;
    case 8:
      rexW(Src, Base, Index);
      emit8(0x89);
      modrmSib(Src, Base, Index, 0, 0);
      return;
    }
    llsc_unreachable("bad store size");
  }

  /// Zero-extending load of Size (1/2/4/8) bytes from [Base + Disp].
  void loadSizedZx(Reg Dst, Reg Base, int32_t Disp, unsigned Size) {
    switch (Size) {
    case 1:
      rexW(Dst, Base);
      emit8(0x0F);
      emit8(0xB6);
      modrmMem(Dst, Base, Disp);
      return;
    case 2:
      rexW(Dst, Base);
      emit8(0x0F);
      emit8(0xB7);
      modrmMem(Dst, Base, Disp);
      return;
    case 4:
      rexOpt(Dst, Base);
      emit8(0x8B);
      modrmMem(Dst, Base, Disp);
      return;
    case 8:
      loadQ(Dst, Base, Disp);
      return;
    }
    llsc_unreachable("bad load size");
  }

  /// Store of the low Size (1/2/4/8) bytes of Src to [Base + Disp].
  void storeSizedAt(Reg Base, int32_t Disp, Reg Src, unsigned Size) {
    switch (Size) {
    case 1:
      rexForce(Src, Base, 0, /*Wide=*/false);
      emit8(0x88);
      modrmMem(Src, Base, Disp);
      return;
    case 2:
      emit8(0x66);
      rexOpt(Src, Base);
      emit8(0x89);
      modrmMem(Src, Base, Disp);
      return;
    case 4:
      rexOpt(Src, Base);
      emit8(0x89);
      modrmMem(Src, Base, Disp);
      return;
    case 8:
      storeQ(Base, Disp, Src);
      return;
    }
    llsc_unreachable("bad store size");
  }

  /// mov dword [Base + Index*4], r32 (HST tag store).
  void storeDwordScaled4(Reg Base, Reg Index, Reg Src) {
    rexOpt(Src, Base, Index);
    emit8(0x89);
    modrmSib(Src, Base, Index, /*Scale=*/2, /*Disp=*/0);
  }

  /// movzx r64, dword [Base + Disp] — 32-bit field load (Tid).
  void loadDword(Reg Dst, Reg Base, int32_t Disp) {
    rexOpt(Dst, Base);
    emit8(0x8B);
    modrmMem(Dst, Base, Disp);
  }

  /// mov byte [Base + Disp], imm8.
  void storeByteImm(Reg Base, int32_t Disp, uint8_t Imm) {
    rexOpt(0, Base);
    emit8(0xC6);
    modrmMem(0, Base, Disp);
    emit8(Imm);
  }

  /// cmp byte [Base + Disp], imm8.
  void cmpByteImm(Reg Base, int32_t Disp, uint8_t Imm) {
    rexOpt(0, Base);
    emit8(0x80);
    modrmMem(7, Base, Disp);
    emit8(Imm);
  }

  /// lea r64, [Base + Disp].
  void lea(Reg Dst, Reg Base, int32_t Disp) {
    rexW(Dst, Base);
    emit8(0x8D);
    modrmMem(Dst, Base, Disp);
  }

  // --- ALU (64-bit, reg/reg and reg/imm) -----------------------------------

  void add(Reg Dst, Reg Src) { aluRR(0x01, Src, Dst); }
  void sub(Reg Dst, Reg Src) { aluRR(0x29, Src, Dst); }
  void and_(Reg Dst, Reg Src) { aluRR(0x21, Src, Dst); }
  void or_(Reg Dst, Reg Src) { aluRR(0x09, Src, Dst); }
  void xor_(Reg Dst, Reg Src) { aluRR(0x31, Src, Dst); }
  void cmp(Reg A, Reg B) { aluRR(0x39, B, A); }

  void imul(Reg Dst, Reg Src) {
    rexW(Dst, Src);
    emit8(0x0F);
    emit8(0xAF);
    modrmReg(Dst, Src);
  }

  /// 64-bit ALU with sign-extended imm32: /0 add, /4 and, /1 or, /6 xor,
  /// /5 sub, /7 cmp.
  void aluImm(uint8_t OpExt, Reg Dst, int32_t Imm) {
    if (Imm >= INT8_MIN && Imm <= INT8_MAX) {
      rexW(0, Dst);
      emit8(0x83);
      modrmReg(OpExt, Dst);
      emit8(static_cast<uint8_t>(Imm));
      return;
    }
    rexW(0, Dst);
    emit8(0x81);
    modrmReg(OpExt, Dst);
    emit32(static_cast<uint32_t>(Imm));
  }
  void addImm(Reg Dst, int32_t Imm) { aluImm(0, Dst, Imm); }
  void subImm(Reg Dst, int32_t Imm) { aluImm(5, Dst, Imm); }
  void andImm(Reg Dst, int32_t Imm) { aluImm(4, Dst, Imm); }
  void cmpImm(Reg Dst, int32_t Imm) { aluImm(7, Dst, Imm); }

  /// add qword [Base + Disp], imm (sign-extended imm8/imm32) — counters.
  void addMemImm(Reg Base, int32_t Disp, int32_t Imm) {
    rexW(0, Base);
    if (Imm >= INT8_MIN && Imm <= INT8_MAX) {
      emit8(0x83);
      modrmMem(0, Base, Disp);
      emit8(static_cast<uint8_t>(Imm));
      return;
    }
    emit8(0x81);
    modrmMem(0, Base, Disp);
    emit32(static_cast<uint32_t>(Imm));
  }

  /// dec qword [Base + Disp].
  void decMem(Reg Base, int32_t Disp) {
    rexW(0, Base);
    emit8(0xFF);
    modrmMem(1, Base, Disp);
  }

  /// cmp r64, qword [Base + Disp].
  void cmpRegMem(Reg A, Reg Base, int32_t Disp) {
    rexW(A, Base);
    emit8(0x3B);
    modrmMem(A, Base, Disp);
  }

  // --- Shifts --------------------------------------------------------------

  /// shl/shr/sar r64, cl. OpExt: 4 shl, 5 shr, 7 sar.
  void shiftCl(uint8_t OpExt, Reg Dst) {
    rexW(0, Dst);
    emit8(0xD3);
    modrmReg(OpExt, Dst);
  }

  /// shl/shr/sar r64, imm8.
  void shiftImm(uint8_t OpExt, Reg Dst, uint8_t Imm) {
    rexW(0, Dst);
    emit8(0xC1);
    modrmReg(OpExt, Dst);
    emit8(Imm);
  }

  // --- Flags ---------------------------------------------------------------

  /// setcc Dst8 (followed by movzx into the same 64-bit register).
  void setccZx(Cond Cc, Reg Dst) {
    // setcc r/m8.
    rexForce(0, Dst, 0, /*Wide=*/false);
    emit8(0x0F);
    emit8(0x90 | Cc);
    modrmReg(0, Dst);
    // movzx r64, r8.
    rexW(Dst, Dst);
    emit8(0x0F);
    emit8(0xB6);
    modrmReg(Dst, Dst);
  }

  // --- Control flow --------------------------------------------------------

  /// jcc rel32 with a placeholder; \returns the buffer offset of the rel32
  /// operand for patchRel32 once the target offset is known.
  size_t jcc(Cond Cc) {
    emit8(0x0F);
    emit8(0x80 | Cc);
    size_t At = Buf.size();
    emit32(0);
    return At;
  }

  /// jmp rel32 with a placeholder; \returns the rel32 operand offset.
  size_t jmp() {
    emit8(0xE9);
    size_t At = Buf.size();
    emit32(0);
    return At;
  }

  /// Resolves a rel32 recorded by jcc()/jmp() to buffer offset \p Target.
  void patchRel32(size_t OperandAt, size_t Target) {
    int64_t Rel = static_cast<int64_t>(Target) -
                  (static_cast<int64_t>(OperandAt) + 4);
    uint32_t V = static_cast<uint32_t>(static_cast<int32_t>(Rel));
    for (int I = 0; I < 4; ++I)
      Buf[OperandAt + I] = static_cast<uint8_t>(V >> (8 * I));
  }

  /// Backward jcc straight to a known buffer offset.
  void jccTo(Cond Cc, size_t Target) { patchRel32(jcc(Cc), Target); }

  /// call r64 (indirect; targets are movabs'd into a scratch register so
  /// thunks anywhere in the address space are reachable).
  void callReg(Reg R) {
    rexOpt(0, R, 0, /*ForceForOp=*/2);
    emit8(0xFF);
    modrmReg(2, R);
  }

  /// jmp r64.
  void jmpReg(Reg R) {
    rexOpt(0, R, 0, /*ForceForOp=*/4);
    emit8(0xFF);
    modrmReg(4, R);
  }

  void push(Reg R) {
    if (R >= R8)
      emit8(0x41);
    emit8(0x50 | (R & 7));
  }
  void pop(Reg R) {
    if (R >= R8)
      emit8(0x41);
    emit8(0x58 | (R & 7));
  }
  void ret() { emit8(0xC3); }
  void mfence() {
    emit8(0x0F);
    emit8(0xAE);
    emit8(0xF0);
  }

private:
  /// 64-bit reg/reg ALU in the "op r/m64, r64" form (\p Src in the reg
  /// field, \p Dst in r/m).
  void aluRR(uint8_t Opcode, Reg Src, Reg Dst) {
    rexW(Src, Dst);
    emit8(Opcode);
    modrmReg(Src, Dst);
  }

  // REX prefix: W=1 always for the 64-bit helpers; R extends the reg
  // field, X the SIB index, B the base.
  void rexW(uint8_t RegField, uint8_t Base, uint8_t Index = 0) {
    emit8(0x48 | ((RegField & 8) >> 1) | ((Index & 8) >> 2) |
          ((Base & 8) >> 3));
  }

  /// Optional REX (no W): emitted only when a high register needs it.
  void rexOpt(uint8_t RegField, uint8_t Base, uint8_t Index = 0,
              uint8_t ForceForOp = 0xff) {
    (void)ForceForOp;
    uint8_t R = ((RegField & 8) >> 1) | ((Index & 8) >> 2) | ((Base & 8) >> 3);
    if (R)
      emit8(0x40 | R);
  }

  /// REX always emitted (8-bit ops touching SPL/BPL/SIL/DIL need it).
  void rexForce(uint8_t RegField, uint8_t Base, uint8_t Index, bool Wide) {
    emit8((Wide ? 0x48 : 0x40) | ((RegField & 8) >> 1) | ((Index & 8) >> 2) |
          ((Base & 8) >> 3));
  }

  void modrmReg(uint8_t RegField, uint8_t Rm) {
    emit8(0xC0 | ((RegField & 7) << 3) | (Rm & 7));
  }

  /// ModRM (+ SIB where the encoding demands it) for [Base + Disp].
  void modrmMem(uint8_t RegField, uint8_t Base, int32_t Disp) {
    uint8_t BaseLow = Base & 7;
    bool NeedsSib = BaseLow == 4; // RSP/R12.
    bool Disp8 = Disp >= INT8_MIN && Disp <= INT8_MAX;
    // RBP/R13 with mod=00 means rip-relative; force disp8 0.
    uint8_t Mod = (Disp == 0 && BaseLow != 5) ? 0 : (Disp8 ? 1 : 2);
    emit8((Mod << 6) | ((RegField & 7) << 3) | (NeedsSib ? 4 : BaseLow));
    if (NeedsSib)
      emit8(0x24); // scale=0, index=none, base=rsp/r12.
    if (Mod == 1)
      emit8(static_cast<uint8_t>(Disp));
    else if (Mod == 2)
      emit32(static_cast<uint32_t>(Disp));
  }

  /// ModRM + SIB for [Base + Index*2^Scale + Disp]. Index must not be RSP.
  void modrmSib(uint8_t RegField, uint8_t Base, uint8_t Index, uint8_t Scale,
                int32_t Disp) {
    bool Disp8 = Disp >= INT8_MIN && Disp <= INT8_MAX;
    uint8_t Mod = (Disp == 0 && (Base & 7) != 5) ? 0 : (Disp8 ? 1 : 2);
    emit8((Mod << 6) | ((RegField & 7) << 3) | 4);
    emit8((Scale << 6) | ((Index & 7) << 3) | (Base & 7));
    if (Mod == 1)
      emit8(static_cast<uint8_t>(Disp));
    else if (Mod == 2)
      emit32(static_cast<uint32_t>(Disp));
  }

  std::vector<uint8_t> Buf;
};

} // namespace jit
} // namespace llsc

#endif // LLSC_ENGINE_JIT_X86EMITTER_H
