//===- engine/jit/JitRuntime.h - Emitted-code <-> runtime ABI ---*- C++-*-===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The contract between tier-1 emitted code and the C++ runtime: the exit
/// protocol a block uses to hand control back to Engine::runLoop, and the
/// extern "C" thunks emitted code calls for everything that is not worth
/// inlining (scheme LL/SC hooks, slow-path guest memory, helpers, yields).
///
/// ABI of emitted block bodies (docs/JIT.md "Register contract"):
///  - rbx pins the executing VCpu* for the whole chained run;
///  - rbp, r12-r15 hold register-allocated IR temps (callee-saved, so they
///    survive thunk calls); spilled temps live in VCpu::JitSpill;
///  - rax, rcx, rdx, rsi, rdi, r8-r11 are per-micro-op scratch — never
///    live across a thunk call;
///  - rsp is 16-byte aligned at every point a `call` may be emitted (the
///    trampoline's `sub rsp, 8` establishes this), so thunks are entered
///    in a valid SysV frame;
///  - a block exits by loading {NextPc, Kind} into rax:rdx and jumping to
///    the region's shared epilogue, which pops the callee-saved frame and
///    returns the pair to enterJit()'s caller as a JitExit.
///
/// Every thunk replicates the interpreter handler's bookkeeping exactly
/// (counter increments, trace instants, halt-on-out-of-range), which is
/// what makes the tier-0-vs-tier-1 differential tests able to compare
/// RunResult counters verbatim (tests/JitTest.cpp).
///
//===----------------------------------------------------------------------===//

#ifndef LLSC_ENGINE_JIT_JITRUNTIME_H
#define LLSC_ENGINE_JIT_JITRUNTIME_H

#include <cstdint>

namespace llsc {

struct VCpu;

namespace jit {

/// Why emitted code returned to the runtime. Values are baked as
/// immediates into emitted exit stubs — append only.
enum class ExitKind : uint64_t {
  /// The guest executed HALT (or an out-of-range access halted the vCPU).
  /// NextPc is meaningless; the runtime zeroes Cpu.Pc like the interpreter.
  Halted = 0,
  /// A static exit (SetPcImm / taken BrCond) whose chain site is not yet
  /// patched. NextPc is the target; VCpu::JitPendingPatch holds the
  /// executable-view address of the site's rel32 operand so the runtime
  /// can chain it once the target is compiled.
  Exit = 1,
  /// An indirect exit (SetPc). NextPc came from a guest register.
  Indirect = 2,
  /// The block-entry safepoint poll saw a pending exclusive section.
  /// NextPc is the pc of the *unexecuted* block; no side effects ran.
  Safepoint = 3,
  /// The chained-execution budget (VCpu::JitChainBudget) hit zero. NextPc
  /// is the pc of the unexecuted block.
  Budget = 4,
  /// The block-entry fastmem check saw GuestMemory::fastPathEpoch() move
  /// against the vCPU's cached epoch: the window the code would use is
  /// stale (a PST-family protection transition happened while parked).
  /// NextPc is the pc of the unexecuted block; the runtime revalidates the
  /// window and may immediately re-enter tier-1.
  Deopt = 5,
};

/// The {NextPc, Kind} pair a block run returns. Two eightbytes, returned
/// in rax:rdx per the SysV ABI — the shared epilogue materializes it.
struct JitExit {
  uint64_t NextPc;
  uint64_t Kind;

  ExitKind kind() const { return static_cast<ExitKind>(Kind); }
};

/// Signature of the region trampoline (CodeCache emits it): saves the
/// callee-saved frame, pins \p Cpu in rbx, aligns rsp, and jumps to
/// \p Body (a block's code start).
using EnterFn = JitExit (*)(VCpu *Cpu, const void *Body);

// --- Thunks ----------------------------------------------------------------
//
// extern "C" with unmangled names so the emitter can reference them as
// plain addresses. All take the VCpu* first (emitted code forwards rbx).

extern "C" {

/// LoadLink micro-op: counters + trace + scheme.emulateLoadLink.
/// \p SizeAndFlags packs the access size in the low byte; bit 0x100 set
/// means the frontend requested an alignment trap (RV32 LR), in which
/// case a misaligned address halts the vCPU (return value 0, emitted
/// code must test VCpu::Halted — same protocol as llscJitLoadSlow).
uint64_t llscJitLoadLink(VCpu *Cpu, uint64_t Addr, uint64_t SizeAndFlags);

/// StoreCond micro-op. \returns the guest-visible result (0 ok, 1 fail).
/// \p SizeAndFlags as in llscJitLoadLink (bit 0x100 = align-trap).
uint64_t llscJitStoreCond(VCpu *Cpu, uint64_t Addr, uint64_t Value,
                          uint64_t SizeAndFlags);

/// ClearExcl micro-op.
void llscJitClearExcl(VCpu *Cpu);

/// HelperStore micro-op: scheme.storeHook + counters.
void llscJitHelperStore(VCpu *Cpu, uint64_t Addr, uint64_t Value,
                        uint64_t Size);

/// HelperLoad micro-op: scheme.loadHook + counters; \p SignExtend != 0
/// extends from Size*8 bits.
uint64_t llscJitHelperLoad(VCpu *Cpu, uint64_t Addr, uint64_t Size,
                           uint64_t SignExtend);

/// Helper micro-op: \p Fn is a baked ir::HelperFn* (owned by the
/// CachedBlock, which outlives the code via retire-don't-free).
uint64_t llscJitHelper(VCpu *Cpu, const void *Fn, uint64_t A, uint64_t B);

/// LoadG slow path (fastmem window missed or instrumented op): exactly the
/// interpreter's slow path including the out-of-range halt. When the vCPU
/// is halted the return value is 0 and emitted code must test
/// VCpu::Halted before using it.
uint64_t llscJitLoadSlow(VCpu *Cpu, uint64_t Addr, uint64_t SizeAndFlags,
                         uint64_t BlockPc);

/// StoreG slow path; halts the vCPU on out-of-range like the interpreter.
void llscJitStoreSlow(VCpu *Cpu, uint64_t Addr, uint64_t Value,
                      uint64_t Size, uint64_t BlockPc);

/// AtomicAddG micro-op (rule-based LL/SC idiom lowering); halts on
/// out-of-range.
uint64_t llscJitAtomicAdd(VCpu *Cpu, uint64_t Addr, uint64_t Delta,
                          uint64_t Size);

/// AtomicRmwG micro-op (single host-RMW AMO lowering). \p SizeAndKind
/// packs the access size in the low byte and the ir::RmwKind selector in
/// bits 8+. Halts on out-of-range or misaligned (AMOs trap on
/// misalignment architecturally).
uint64_t llscJitAtomicRmw(VCpu *Cpu, uint64_t Addr, uint64_t Operand,
                          uint64_t SizeAndKind);

/// SysCall micro-op.
uint64_t llscJitSysCall(VCpu *Cpu, uint64_t A, uint64_t Selector);

/// Yield micro-op: counter + the interpreter's randomized yield/sleep.
void llscJitYield(VCpu *Cpu);

/// ReadSpecial(ClockNanos).
uint64_t llscJitClockNanos();

/// UDiv/SDiv/URem/SRem with the interpreter's divide-by-zero and
/// INT64_MIN/-1 semantics. \p Op is the ir::IROp opcode value.
uint64_t llscJitDivRem(uint64_t Op, uint64_t A, uint64_t B);

} // extern "C"

/// Runs \p Body (a block's emitted entry) on \p Cpu via \p Enter.
inline JitExit enterJit(EnterFn Enter, VCpu &Cpu, const void *Body) {
  return Enter(&Cpu, Body);
}

} // namespace jit
} // namespace llsc

#endif // LLSC_ENGINE_JIT_JITRUNTIME_H
