//===- engine/jit/CodeCache.h - W^X executable code region ------*- C++-*-===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One executable code region per TbCache generation, W^X by construction:
/// the region is a memfd mapped twice — a PROT_READ|PROT_WRITE view the
/// compiler writes through and a PROT_READ|PROT_EXEC view the vCPUs
/// execute — so no page is ever writable and executable at once (the same
/// dual-mapping trick GuestMemory uses for PST's shadow accesses, applied
/// to code). Chain-site patching goes through the write view with a
/// 4-byte-aligned atomic store while other vCPUs execute the read view.
///
/// The region starts with two shared pieces of emitted code:
///  - the *trampoline* (jit::EnterFn): pushes the callee-saved frame,
///    pins the VCpu* in rbx, 16-aligns rsp, and jumps to a block body;
///  - the *epilogue*: unwinds that frame and returns rax:rdx (the JitExit
///    pair every exit stub loads).
///
/// Blocks are installed append-only at 16-byte-aligned cursors; a full
/// region stops compilation for the rest of the generation (execution
/// continues — new blocks just stay on tier-0). On TbCache flush the
/// whole region is retired with the blocks that reference it and reaped
/// under the same quiescence rules (Jit::onTbFlush / reapRetired).
///
//===----------------------------------------------------------------------===//

#ifndef LLSC_ENGINE_JIT_CODECACHE_H
#define LLSC_ENGINE_JIT_CODECACHE_H

#include "engine/jit/JitRuntime.h"

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace llsc {
namespace jit {

class X86Emitter;

/// A relocation recorded by the compiler against its local byte buffer,
/// resolved by CodeCache::install once the block's final executable
/// address is known.
struct Fixup {
  enum Kind : uint8_t {
    /// 8-byte placeholder at Offset := executable address of
    /// (block start + Target). Used for the movabs that loads a chain
    /// site's own operand address into VCpu::JitPendingPatch.
    AbsBlockAddr,
    /// 4-byte placeholder at Offset := rel32 to the region's shared
    /// epilogue (Target unused).
    RelEpilogue,
  };
  Kind K = AbsBlockAddr;
  uint32_t Offset = 0; ///< Byte offset of the placeholder in the buffer.
  uint32_t Target = 0; ///< AbsBlockAddr: target byte offset in the buffer.
};

/// One dual-mapped executable region.
class CodeCache {
public:
  /// Creates a region of \p Bytes (rounded up to a page multiple) and
  /// emits the trampoline + epilogue. \returns null on mmap failure
  /// (JIT silently disabled).
  static std::unique_ptr<CodeCache> create(size_t Bytes);

  ~CodeCache();
  CodeCache(const CodeCache &) = delete;
  CodeCache &operator=(const CodeCache &) = delete;

  /// The region's enter trampoline.
  EnterFn enterFn() const { return reinterpret_cast<EnterFn>(ExecBase); }

  /// Copies \p Em's bytes into the region at a 16-byte-aligned cursor and
  /// resolves \p Fixups. \returns the executable entry address, or null
  /// when the region is full. Not thread-safe — Jit serializes installs.
  const void *install(const X86Emitter &Em, const std::vector<Fixup> &Fixups);

  /// Atomically patches the rel32 jump operand at executable address
  /// \p SiteExecAddr to land on \p TargetExecAddr (both inside this
  /// region). Safe while other threads execute the site.
  void patchChain(uintptr_t SiteExecAddr, uintptr_t TargetExecAddr);

  /// \returns true when \p ExecAddr points into this region's executable
  /// view.
  bool contains(uintptr_t ExecAddr) const {
    return ExecAddr >= reinterpret_cast<uintptr_t>(ExecBase) &&
           ExecAddr < reinterpret_cast<uintptr_t>(ExecBase) + Size;
  }

  size_t bytesUsed() const { return Cursor; }
  size_t capacity() const { return Size; }

private:
  CodeCache() = default;

  int MemFd = -1;
  uint8_t *WriteBase = nullptr; ///< RW view (compiler + patching).
  uint8_t *ExecBase = nullptr;  ///< RX view (vCPUs).
  size_t Size = 0;
  size_t Cursor = 0;
  size_t EpilogueOffset = 0;
};

} // namespace jit
} // namespace llsc

#endif // LLSC_ENGINE_JIT_CODECACHE_H
