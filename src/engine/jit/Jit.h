//===- engine/jit/Jit.h - Tier-1 JIT facade ---------------------*- C++-*-===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tier-1 JIT as the engine sees it: a hotness-driven tier-up query
/// (codeFor), an entry point into emitted code (enter), and chain-site
/// patching (patchChain). One executable CodeCache region is active per
/// TbCache generation; Jit listens to the TB cache's flush/reap events so
/// regions retire and free in lockstep with the blocks that point into
/// them (docs/JIT.md "Code cache lifecycle").
///
/// Thread-safety model, leaning on the machine's quiescence rules:
///  - codeFor/enter/patchChain run concurrently from every vCPU; per-block
///    tier state is atomic, installs serialize on one mutex.
///  - onTbFlush runs only while no vCPU executes (quiescence floor or no
///    threads started), so swapping the active region is race-free.
///  - onTbReapRetired frees retired regions under the same guarantee.
///
//===----------------------------------------------------------------------===//

#ifndef LLSC_ENGINE_JIT_JIT_H
#define LLSC_ENGINE_JIT_JIT_H

#include "engine/TbCache.h"
#include "engine/jit/CodeCache.h"

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

/// Host support for the tier-1 backend: it emits x86-64 and maps
/// dual-view memfd code regions (Linux), and TSAN cannot instrument
/// emitted code, so machines stay tier-0 under that sanitizer (the CI
/// TSAN leg exercises exactly those fallback paths).
#if defined(__x86_64__) && defined(__linux__) && !defined(__SANITIZE_THREAD__)
#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define LLSC_JIT_SUPPORTED 0
#else
#define LLSC_JIT_SUPPORTED 1
#endif
#else
#define LLSC_JIT_SUPPORTED 1
#endif
#else
#define LLSC_JIT_SUPPORTED 0
#endif

namespace llsc {

struct VCpu;

namespace jit {

/// Tier-1 JIT tuning knobs (resolved by Machine::create from MachineConfig
/// and the LLSC_FORCE_JIT / LLSC_NO_JIT environment overrides).
struct JitConfig {
  /// Bytes per executable code region (one region per TbCache generation;
  /// a full region stops tier-up for the rest of the generation).
  size_t CodeBytes = 16u << 20;

  /// Tier-0 dispatches of a block before it compiles. 0 means compile on
  /// first dispatch (LLSC_FORCE_JIT, and what the differential tests use).
  uint32_t HotThreshold = 16;
};

/// The tier-1 JIT: owns the active code region plus the regions retired
/// by TB-cache flushes but still referenced by retired blocks.
class Jit final : public TbCacheListener {
public:
  /// Creates a JIT with one fresh code region. \returns null when the
  /// region cannot be allocated — the machine simply runs tier-0 only.
  /// Emitted code carries no machine-instance addresses (everything is
  /// loaded through VCpu::Ctx at runtime), so a Jit can be shared
  /// read-only between a snapshot and its clones.
  static std::unique_ptr<Jit> create(const JitConfig &Config);

  // --- Hot path (any vCPU) -------------------------------------------------

  /// Tier-up query for one dispatch of \p Block by \p Cpu: returns the
  /// block's executable entry when it is (or just became) tier-1, else
  /// null. Bumps the hotness counter and compiles inline on the vCPU that
  /// wins the NotCompiled -> Compiling transition; compile bails and
  /// installs are charged to \p Cpu's event counters.
  const void *codeFor(CachedBlock &Block, VCpu &Cpu);

  /// Runs \p Cpu through \p Code (obtained from codeFor in this TB-cache
  /// generation) until the emitted code exits.
  JitExit enter(VCpu &Cpu, const void *Code) {
    return enterJit(Active->enterFn(), Cpu, Code);
  }

  /// Patches the pending chain site whose rel32 operand lives at
  /// executable address \p SiteOpndAddr (from VCpu::JitPendingPatch) to
  /// jump to \p TargetCode. Silently skipped unless both addresses lie in
  /// the active region — a stale site from before a flush must not be
  /// written through.
  void patchChain(uint64_t SiteOpndAddr, const void *TargetCode, VCpu &Cpu);

  // --- TbCacheListener (quiesced contexts only) ----------------------------

  void onTbFlush() override;
  void onTbReapRetired() override;

  size_t codeBytesUsed() const { return Active ? Active->bytesUsed() : 0; }

private:
  explicit Jit(JitConfig C) : Config(C) {}

  /// Lowers and installs \p Block (tier already CASed to Compiling by the
  /// caller). \returns the entry on success, null on bail/full/raced-flush.
  const void *compile(CachedBlock &Block, VCpu &Cpu);

  JitConfig Config;

  /// Region of the current TB-cache generation. Swapped only in
  /// onTbFlush (quiesced), read without locks on the hot path.
  std::unique_ptr<CodeCache> Active;

  /// Regions retired by onTbFlush, freed by onTbReapRetired — mirrors
  /// TbCache's retire-don't-free discipline for blocks.
  std::vector<std::unique_ptr<CodeCache>> Retired;

  /// Serializes install() calls and guards the compile-vs-flush race.
  std::mutex InstallMutex;

  /// Bumped per region swap; a compilation that started against an older
  /// serial discards its result instead of installing into the new region.
  std::atomic<uint64_t> RegionSerial{0};
};

} // namespace jit
} // namespace llsc

#endif // LLSC_ENGINE_JIT_JIT_H
