//===- engine/jit/JitRuntime.cpp - Thunks called by emitted code ---------===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//
//
// Each thunk mirrors one interpreter handler from engine/Engine.cpp,
// including every counter increment and trace instant, so a program run
// under tier-1 produces byte-identical guest state *and* identical
// RunResult counters (modulo the engine.jit.* tier counters themselves).
// Any change to a handler's bookkeeping in Engine.cpp must be made here
// too — tests/JitTest.cpp's differential suite enforces the pairing.
//
//===----------------------------------------------------------------------===//

#include "engine/jit/JitRuntime.h"

#include "atomic/AtomicScheme.h"
#include "ir/IR.h"
#include "mem/GuestMemory.h"
#include "runtime/VCpu.h"
#include "support/BitUtils.h"
#include "support/Logging.h"
#include "support/Timing.h"
#include "support/Trace.h"

#include <cinttypes>
#include <cstdio>
#include <ctime>
#include <sched.h>

using namespace llsc;

extern "C" {

uint64_t llscJitLoadLink(VCpu *Cpu, uint64_t Addr, uint64_t SizeAndFlags) {
  unsigned Size = static_cast<unsigned>(SizeAndFlags & 0xff);
  if (LLSC_UNLIKELY((SizeAndFlags & 0x100) && (Addr & (Size - 1)))) {
    LLSC_ERROR("tid %u: misaligned LR addr 0x%" PRIx64, Cpu->Tid, Addr);
    Cpu->Halted = true;
    return 0;
  }
  uint64_t Value = Cpu->Ctx->Scheme->emulateLoadLink(*Cpu, Addr, Size);
  Cpu->Counters.LoadLinks++;
  Cpu->Events.LlIssued++;
  if (TraceRecorder *Trace = TraceRecorder::active())
    Trace->instant(Cpu->Tid, "ll", "atomic");
  return Value;
}

uint64_t llscJitStoreCond(VCpu *Cpu, uint64_t Addr, uint64_t Value,
                          uint64_t SizeAndFlags) {
  unsigned Size = static_cast<unsigned>(SizeAndFlags & 0xff);
  if (LLSC_UNLIKELY((SizeAndFlags & 0x100) && (Addr & (Size - 1)))) {
    LLSC_ERROR("tid %u: misaligned SC addr 0x%" PRIx64, Cpu->Tid, Addr);
    Cpu->Halted = true;
    return 0;
  }
  bool Ok = Cpu->Ctx->Scheme->emulateStoreCond(*Cpu, Addr, Value, Size);
  Cpu->Counters.StoreConds++;
  Cpu->Events.ScAttempted++;
  if (Ok) {
    Cpu->Events.ScSucceeded++;
  } else {
    Cpu->Counters.StoreCondFailures++;
    Cpu->Events.ScFailed++;
  }
  if (TraceRecorder *Trace = TraceRecorder::active())
    Trace->instant(Cpu->Tid, Ok ? "sc" : "sc-fail", "atomic");
  return Ok ? 0 : 1;
}

void llscJitClearExcl(VCpu *Cpu) { Cpu->Ctx->Scheme->clearExclusive(*Cpu); }

void llscJitHelperStore(VCpu *Cpu, uint64_t Addr, uint64_t Value,
                        uint64_t Size) {
  Cpu->Ctx->Scheme->storeHook(*Cpu, Addr, Value, static_cast<unsigned>(Size));
  Cpu->Counters.Stores++;
  Cpu->Events.HelperStoreCalls++;
}

uint64_t llscJitHelperLoad(VCpu *Cpu, uint64_t Addr, uint64_t Size,
                           uint64_t SignExtend) {
  uint64_t Value =
      Cpu->Ctx->Scheme->loadHook(*Cpu, Addr, static_cast<unsigned>(Size));
  if (SignExtend)
    Value = static_cast<uint64_t>(
        signExtend(Value, static_cast<unsigned>(Size) * 8));
  Cpu->Counters.Loads++;
  Cpu->Events.HelperLoadCalls++;
  return Value;
}

uint64_t llscJitHelper(VCpu *Cpu, const void *Fn, uint64_t A, uint64_t B) {
  const auto &Helper = *static_cast<const ir::HelperFn *>(Fn);
  uint64_t Value = Helper.Fn(Helper.Ctx, Cpu, A, B);
  Cpu->Events.SchemeHelperCalls++;
  return Value;
}

uint64_t llscJitLoadSlow(VCpu *Cpu, uint64_t Addr, uint64_t SizeAndFlags,
                         uint64_t BlockPc) {
  unsigned Size = static_cast<unsigned>(SizeAndFlags & 0xff);
  bool Sext = (SizeAndFlags & 0x100) != 0;
  GuestMemory &Mem = *Cpu->Ctx->Mem;
  Cpu->Events.FastMemSlow++;
  if (LLSC_UNLIKELY(Addr >= Mem.size() || Mem.size() - Addr < Size)) {
    LLSC_ERROR("tid %u: guest load out of range at pc-block 0x%" PRIx64
               " addr 0x%" PRIx64,
               Cpu->Tid, BlockPc, Addr);
    Cpu->Halted = true;
    return 0;
  }
  uint64_t Value = Mem.load(Addr, Size);
  if (Sext)
    Value = static_cast<uint64_t>(signExtend(Value, Size * 8));
  Cpu->Counters.Loads++;
  return Value;
}

void llscJitStoreSlow(VCpu *Cpu, uint64_t Addr, uint64_t Value, uint64_t Size,
                      uint64_t BlockPc) {
  GuestMemory &Mem = *Cpu->Ctx->Mem;
  Cpu->Events.FastMemSlow++;
  if (LLSC_UNLIKELY(Addr >= Mem.size() ||
                    Mem.size() - Addr < static_cast<unsigned>(Size))) {
    LLSC_ERROR("tid %u: guest store out of range at pc-block 0x%" PRIx64
               " addr 0x%" PRIx64,
               Cpu->Tid, BlockPc, Addr);
    Cpu->Halted = true;
    return;
  }
  Mem.store(Addr, Value, static_cast<unsigned>(Size));
  Cpu->Counters.Stores++;
}

uint64_t llscJitAtomicAdd(VCpu *Cpu, uint64_t Addr, uint64_t Delta,
                          uint64_t Size) {
  GuestMemory &Mem = *Cpu->Ctx->Mem;
  if (LLSC_UNLIKELY(Addr >= Mem.size() ||
                    Mem.size() - Addr < static_cast<unsigned>(Size))) {
    LLSC_ERROR("tid %u: atomic rmw out of range addr 0x%" PRIx64, Cpu->Tid,
               Addr);
    Cpu->Halted = true;
    return 0;
  }
  return Mem.fetchAdd(Addr, Delta, static_cast<unsigned>(Size));
}

uint64_t llscJitAtomicRmw(VCpu *Cpu, uint64_t Addr, uint64_t Operand,
                          uint64_t SizeAndKind) {
  unsigned Size = static_cast<unsigned>(SizeAndKind & 0xff);
  unsigned Kind = static_cast<unsigned>(SizeAndKind >> 8);
  GuestMemory &Mem = *Cpu->Ctx->Mem;
  if (LLSC_UNLIKELY(Addr >= Mem.size() || Mem.size() - Addr < Size ||
                    (Addr & (Size - 1)))) {
    LLSC_ERROR("tid %u: atomic rmw out of range or misaligned addr"
               " 0x%" PRIx64,
               Cpu->Tid, Addr);
    Cpu->Halted = true;
    return 0;
  }
  return Mem.atomicRmw(Addr, Operand, Size, Kind);
}

uint64_t llscJitSysCall(VCpu *Cpu, uint64_t A, uint64_t Selector) {
  if (static_cast<guest::SysCall>(Selector) == guest::SysCall::PrintReg) {
    std::fprintf(stderr, "[guest tid %u] 0x%016" PRIx64 " (%" PRId64 ")\n",
                 Cpu->Tid, A, static_cast<int64_t>(A));
    return A;
  }
  LLSC_WARN("unknown SYS selector %lld", static_cast<long long>(Selector));
  return 0;
}

void llscJitYield(VCpu *Cpu) {
  Cpu->Counters.Yields++;
  // Same randomized yield/short-sleep mix as the interpreter's Yield
  // handler (Engine.cpp) — the sleep models timer-interrupt descheduling
  // so cross-thread interleavings can form on mostly-idle hosts.
  thread_local uint64_t YieldLcg =
      0x9e3779b97f4a7c15ULL ^ (uint64_t)(uintptr_t)&YieldLcg;
  YieldLcg = YieldLcg * 6364136223846793005ULL + 1442695040888963407ULL;
  if ((YieldLcg >> 60) == 0) {
    timespec Ts{0, static_cast<long>(20000 + ((YieldLcg >> 20) % 100000))};
    nanosleep(&Ts, nullptr);
  } else {
    sched_yield();
  }
}

uint64_t llscJitClockNanos() { return monotonicNanos(); }

uint64_t llscJitDivRem(uint64_t Op, uint64_t A, uint64_t B) {
  return ir::evalAluOp(static_cast<ir::IROp>(Op), A, B, /*Imm=*/0);
}

} // extern "C"
