//===- engine/jit/Jit.cpp - Tier-1 JIT facade ----------------------------===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//

#include "engine/jit/Jit.h"

#include "engine/jit/JitCompiler.h"
#include "engine/jit/X86Emitter.h"
#include "runtime/VCpu.h"

using namespace llsc;
using namespace llsc::jit;

std::unique_ptr<Jit> Jit::create(const JitConfig &Config) {
  auto Region = CodeCache::create(Config.CodeBytes);
  if (!Region)
    return nullptr;
  std::unique_ptr<Jit> J(new Jit(Config));
  J->Active = std::move(Region);
  return J;
}

const void *Jit::codeFor(CachedBlock &Block, VCpu &Cpu) {
  uint8_t Tier = Block.Tier.load(std::memory_order_acquire);
  if (Tier == static_cast<uint8_t>(BlockTier::Jitted))
    return Block.JitCode.load(std::memory_order_acquire);
  if (Tier != static_cast<uint8_t>(BlockTier::NotCompiled))
    return nullptr; // Compiling on another vCPU, or bailed for good.

  if (Block.HotCount.fetch_add(1, std::memory_order_relaxed) <
      Config.HotThreshold)
    return nullptr;

  uint8_t Expected = static_cast<uint8_t>(BlockTier::NotCompiled);
  if (!Block.Tier.compare_exchange_strong(
          Expected, static_cast<uint8_t>(BlockTier::Compiling),
          std::memory_order_acq_rel, std::memory_order_acquire))
    return nullptr; // Lost the race; the winner will publish JitCode.

  return compile(Block, Cpu);
}

const void *Jit::compile(CachedBlock &Block, VCpu &Cpu) {
  // Compiled bodies are machine-neutral (all instance addresses load
  // through VCpu::Ctx at runtime); the serial captured here detects the
  // (quiesced-only, so effectively impossible while we are inside this
  // function — but cheap to check) case of installing into a region newer
  // than the one this compilation started against.
  uint64_t Serial = RegionSerial.load(std::memory_order_acquire);

  X86Emitter Em;
  std::vector<Fixup> Fixups;
  if (!compileBlock(Block, Em, Fixups)) {
    Cpu.Events.JitCompileBails++;
    Block.Tier.store(static_cast<uint8_t>(BlockTier::Bailed),
                     std::memory_order_release);
    return nullptr;
  }

  std::lock_guard<std::mutex> Lock(InstallMutex);
  if (!Active || RegionSerial.load(std::memory_order_acquire) != Serial) {
    // The region was swapped mid-compile; the block itself was retired
    // with it. Put the tier back so a fresh block compiles cleanly.
    Block.Tier.store(static_cast<uint8_t>(BlockTier::NotCompiled),
                     std::memory_order_release);
    return nullptr;
  }

  const void *Code = Active->install(Em, Fixups);
  if (!Code) {
    // Region full: this block (and, as other blocks heat up, the rest of
    // the generation) stays on tier-0.
    Cpu.Events.JitCompileBails++;
    Block.Tier.store(static_cast<uint8_t>(BlockTier::Bailed),
                     std::memory_order_release);
    return nullptr;
  }

  Cpu.Events.JitBlocksCompiled++;
  Block.JitCode.store(Code, std::memory_order_release);
  Block.Tier.store(static_cast<uint8_t>(BlockTier::Jitted),
                   std::memory_order_release);
  return Code;
}

void Jit::patchChain(uint64_t SiteOpndAddr, const void *TargetCode,
                     VCpu &Cpu) {
  uintptr_t Site = static_cast<uintptr_t>(SiteOpndAddr);
  uintptr_t Target = reinterpret_cast<uintptr_t>(TargetCode);
  if (!Active || !Active->contains(Site) || !Active->contains(Target))
    return;
  Active->patchChain(Site, Target);
  Cpu.Events.JitChainPatches++;
}

void Jit::onTbFlush() {
  std::lock_guard<std::mutex> Lock(InstallMutex);
  if (Active)
    Retired.push_back(std::move(Active));
  // A fresh region for the new generation; on allocation failure the JIT
  // idles (codeFor still runs, but installs fail the serial/Active checks).
  Active = CodeCache::create(Config.CodeBytes);
  RegionSerial.fetch_add(1, std::memory_order_release);
}

void Jit::onTbReapRetired() {
  std::lock_guard<std::mutex> Lock(InstallMutex);
  Retired.clear();
}
