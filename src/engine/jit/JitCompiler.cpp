//===- engine/jit/JitCompiler.cpp - IR block -> x86-64 lowering ----------===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//
//
// Lowering strategy (docs/JIT.md):
//  - guest registers are memory-resident at [rbx + Regs[i]] (rbx pins the
//    VCpu*), QEMU-style — correct across thunk calls and safepoint exits
//    for free;
//  - IR temps get linear-scan allocation over {rbp, r12, r13, r14, r15}
//    using the translator's last-use metadata (IRBlock::TempLastUse),
//    spilling to VCpu::JitSpill when the pool is dry;
//  - every op computes through caller-saved scratch (rax/rcx/rdx/rsi/rdi/
//    r8-r11), so values that live across a thunk call are by construction
//    in callee-saved registers or memory;
//  - per-op counter bookkeeping is emitted inline as `add qword [rbx+off]`
//    so tier-1 runs produce the same RunResult counters as tier-0.
//
// Block shape:
//   prologue:  safepoint poll -> chain-budget decrement -> fastmem-epoch
//              check (only if the block uses the inline window) — all
//              before any side effect, so these exits can re-run the block;
//              then ExecutedBlocks/ExecutedInsts bookkeeping.
//   body:      one lowering per DecodedInst, in order.
//   exits:     static exits end in a patchable `jmp rel32` chain site
//              (4-byte-aligned operand) falling through to a stub that
//              reports ExitKind::Exit; other exits load {NextPc, Kind}
//              and jump to the region's shared epilogue.
//
//===----------------------------------------------------------------------===//

#include "engine/jit/JitCompiler.h"

#include "engine/TbCache.h"
#include "engine/jit/JitRuntime.h"
#include "engine/jit/X86Emitter.h"
#include "runtime/VCpu.h"

#include <cstddef>

using namespace llsc;
using namespace llsc::jit;
using namespace llsc::engine;
using namespace llsc::ir;

namespace {

// VCpu field displacements off rbx. VCpu is a plain aggregate; every
// offset fits an int32 displacement.
constexpr int32_t offReg(unsigned Id) {
  return static_cast<int32_t>(offsetof(VCpu, Regs) + 8 * Id);
}
constexpr int32_t offSpill(unsigned Slot) {
  return static_cast<int32_t>(offsetof(VCpu, JitSpill) + 8 * Slot);
}
constexpr int32_t OffHalted = offsetof(VCpu, Halted);
constexpr int32_t OffTid = offsetof(VCpu, Tid);
constexpr int32_t OffFastMemBase = offsetof(VCpu, FastMemBase);
constexpr int32_t OffFastMemLimit = offsetof(VCpu, FastMemLimit);
constexpr int32_t OffFastMemEpoch = offsetof(VCpu, FastMemEpoch);
constexpr int32_t OffChainBudget = offsetof(VCpu, JitChainBudget);
constexpr int32_t OffPendingPatch = offsetof(VCpu, JitPendingPatch);
constexpr int32_t OffCtx = offsetof(VCpu, Ctx);

// MachineContext fields, reached as [[rbx + OffCtx] + off]. Loading these
// at runtime (instead of baking the addresses the old CompileEnv carried)
// keeps emitted code machine-neutral: a snapshot clone with a different
// ExclusiveContext/GuestMemory/scheme instance runs the same bytes.
constexpr int32_t OffCtxExclPending = offsetof(MachineContext, ExclPendingAddr);
constexpr int32_t OffCtxFastEpoch = offsetof(MachineContext, FastEpochAddr);
constexpr int32_t OffCtxHstTable = offsetof(MachineContext, HstTable);
constexpr int32_t OffCtxHstMask = offsetof(MachineContext, HstMask);
constexpr int32_t OffCtxNumThreads = offsetof(MachineContext, NumThreads);

constexpr int32_t offCounter(size_t Member) {
  return static_cast<int32_t>(offsetof(VCpu, Counters) + Member);
}
constexpr int32_t offEvent(size_t Member) {
  return static_cast<int32_t>(offsetof(VCpu, Events) + Member);
}

constexpr int32_t OffExecutedBlocks =
    offCounter(offsetof(CpuCounters, ExecutedBlocks));
constexpr int32_t OffExecutedInsts =
    offCounter(offsetof(CpuCounters, ExecutedInsts));
constexpr int32_t OffLoads = offCounter(offsetof(CpuCounters, Loads));
constexpr int32_t OffStores = offCounter(offsetof(CpuCounters, Stores));
constexpr int32_t OffFastMemHits =
    offEvent(offsetof(EventCounters, FastMemHits));
constexpr int32_t OffInlineInstrumentOps =
    offEvent(offsetof(EventCounters, InlineInstrumentOps));

/// The callee-saved temp pool. rbx is the VCpu pin and not poolable.
constexpr Reg TempPool[] = {RBP, R12, R13, R14, R15};
constexpr unsigned NumPoolRegs = sizeof(TempPool) / sizeof(TempPool[0]);

/// Where a temp currently lives.
struct TempLoc {
  enum Kind : uint8_t { None, InReg, InSpill } K = None;
  uint8_t R = 0;     ///< InReg: pool register.
  uint16_t Slot = 0; ///< InSpill: VCpu::JitSpill index.
};

Cond condFor(CondCode Cc) {
  switch (Cc) {
  case CondCode::Eq:
    return CC_E;
  case CondCode::Ne:
    return CC_NE;
  case CondCode::LtS:
    return CC_L;
  case CondCode::LtU:
    return CC_B;
  case CondCode::GeS:
    return CC_GE;
  case CondCode::GeU:
    return CC_AE;
  }
  llsc_unreachable("bad cond code");
}

Cond invert(Cond Cc) { return static_cast<Cond>(Cc ^ 1); }

bool fitsInt32(uint64_t V) {
  int64_t S = static_cast<int64_t>(V);
  return S >= INT32_MIN && S <= INT32_MAX;
}

/// Per-block lowering context.
class BlockCompiler {
public:
  BlockCompiler(const CachedBlock &Block, X86Emitter &Em,
                std::vector<Fixup> &Fixups)
      : Block(Block), IR(Block.IR), Em(Em), Fixups(Fixups) {}

  bool run();

private:
  // --- Register allocation -------------------------------------------------

  bool computeLastUse();
  void freeDeadTemps(unsigned InstIdx);
  TempLoc &allocTemp(ValueId Id);

  /// Materializes operand (Bank, Id) into \p Target.
  void readInto(Reg Target, uint8_t Bank, ValueId Id);

  /// \returns a register holding operand (Bank, Id): the temp's pool
  /// register when it has one, else \p Scratch after a load.
  Reg readVal(uint8_t Bank, ValueId Id, Reg Scratch);

  /// Stores \p Src to destination (Bank, Id), allocating temp homes on
  /// first definition.
  void writeDst(uint8_t Bank, ValueId Id, Reg Src);

  // --- Emission helpers ----------------------------------------------------

  void emitCall(const void *Fn) {
    Em.movImm64(R10, reinterpret_cast<uint64_t>(Fn));
    Em.callReg(R10);
  }

  /// jmp rel32 to the region's shared epilogue.
  void emitJmpEpilogue() {
    Em.emit8(0xE9);
    Fixups.push_back({Fixup::RelEpilogue,
                      static_cast<uint32_t>(Em.size()), 0});
    Em.emit32(0);
  }

  /// Loads {NextPc, Kind} and leaves through the epilogue.
  void emitExit(uint64_t NextPc, ExitKind Kind) {
    Em.movImm64(RAX, NextPc);
    Em.movImm64(RDX, static_cast<uint64_t>(Kind));
    emitJmpEpilogue();
  }

  /// A patchable static exit to \p TargetPc: the chain site (jmp rel32,
  /// operand 4-byte aligned, initially falling through) plus the stub
  /// that records the site and reports ExitKind::Exit.
  void emitStaticExit(uint64_t TargetPc) {
    // Block starts are 16-byte aligned, so buffer offsets equal code
    // offsets mod 16; pad until the rel32 operand (opcode + 1) is
    // 4-byte aligned for atomic patching.
    Em.alignWithBias(4, 1); // opcode at size, operand at size+1 ≡ 0 mod 4.
    size_t Site = Em.jmp(); // rel32 0: falls through to the stub below.
    size_t Opnd = Em.movImm64Fixed(R10, 0);
    Fixups.push_back({Fixup::AbsBlockAddr, static_cast<uint32_t>(Opnd),
                      static_cast<uint32_t>(Site)});
    Em.storeQ(RBX, OffPendingPatch, R10);
    emitExit(TargetPc, ExitKind::Exit);
  }

  /// Test VCpu::Halted after a thunk that may halt (out-of-range access);
  /// exits like the interpreter's mid-block halt when set.
  void emitHaltedCheck() {
    Em.cmpByteImm(RBX, OffHalted, 0);
    size_t Skip = Em.jcc(CC_E);
    emitExit(0, ExitKind::Halted);
    Em.patchRel32(Skip, Em.size());
  }

  /// addq [rbx + Disp], 1 — counter bookkeeping.
  void emitCount(int32_t Disp) { Em.addMemImm(RBX, Disp, 1); }

  /// Materializes operand A plus the op's immediate into \p Target (the
  /// effective-address pattern of the memory ops).
  void emitAddrAPlusImm(const DecodedInst &D, Reg Target) {
    readInto(Target, D.ABank, D.A);
    if (D.Imm == 0)
      return;
    if (fitsInt32(static_cast<uint64_t>(D.Imm))) {
      Em.addImm(Target, static_cast<int32_t>(D.Imm));
    } else {
      Em.movImm64(R11, static_cast<uint64_t>(D.Imm));
      Em.add(Target, R11);
    }
  }

  // --- Per-op lowering -----------------------------------------------------

  void emitPrologue();
  bool emitInst(const DecodedInst &D, unsigned InstIdx);
  void emitAluRR(const DecodedInst &D);
  void emitAluImm(const DecodedInst &D);
  void emitLoadG(const DecodedInst &D);
  void emitStoreG(const DecodedInst &D);
  void emitHstStoreTag(const DecodedInst &D);

  const CachedBlock &Block;
  const IRBlock &IR;
  X86Emitter &Em;
  std::vector<Fixup> &Fixups;

  std::vector<TempLoc> Locs;      ///< Indexed by ValueId.
  std::vector<uint32_t> LastUse;  ///< Indexed by ValueId; ~0u = unused.
  std::vector<bool> Defined;      ///< Use-before-def detection.
  bool RegFree[NumPoolRegs] = {true, true, true, true, true};
  std::vector<uint16_t> FreeSlots;
  uint16_t NextSlot = 0;
  bool UseBeforeDef = false;
};

bool BlockCompiler::computeLastUse() {
  const unsigned NumValues = IR.NumValues;
  Locs.assign(NumValues, TempLoc());
  Defined.assign(NumValues, false);
  LastUse.assign(NumValues, ~0u);

  // Prefer the translator's metadata (translate/Translator.cpp computes it
  // for every verified block); recompute for hand-built blocks in tests.
  if (IR.TempLastUse.size() == NumValues) {
    for (unsigned Id = 0; Id < NumValues; ++Id)
      LastUse[Id] = IR.TempLastUse[Id] == ir::IRBlock::NoUse
                        ? ~0u
                        : IR.TempLastUse[Id];
    return true;
  }

  for (unsigned I = 0; I < Block.Decoded.size(); ++I) {
    const DecodedInst &D = Block.Decoded[I];
    if (D.ABank == BankTemps)
      LastUse[D.A] = I;
    if (D.BBank == BankTemps)
      LastUse[D.B] = I;
    // Forward iteration leaves the last reference (use or def) in place;
    // a def with no later uses frees its home right after the def.
    if (D.DstBank == BankTemps && writesDst(D.Op))
      LastUse[D.Dst] = I;
  }
  return true;
}

void BlockCompiler::freeDeadTemps(unsigned InstIdx) {
  for (ValueId Id = FirstTempId; Id < Locs.size(); ++Id) {
    if (LastUse[Id] != InstIdx)
      continue;
    TempLoc &L = Locs[Id];
    if (L.K == TempLoc::InReg) {
      for (unsigned P = 0; P < NumPoolRegs; ++P)
        if (TempPool[P] == static_cast<Reg>(L.R))
          RegFree[P] = true;
    } else if (L.K == TempLoc::InSpill) {
      FreeSlots.push_back(L.Slot);
    }
    L = TempLoc();
  }
}

TempLoc &BlockCompiler::allocTemp(ValueId Id) {
  TempLoc &L = Locs[Id];
  if (L.K != TempLoc::None)
    return L;
  for (unsigned P = 0; P < NumPoolRegs; ++P) {
    if (RegFree[P]) {
      RegFree[P] = false;
      L.K = TempLoc::InReg;
      L.R = TempPool[P];
      return L;
    }
  }
  L.K = TempLoc::InSpill;
  if (!FreeSlots.empty()) {
    L.Slot = FreeSlots.back();
    FreeSlots.pop_back();
  } else {
    L.Slot = NextSlot++;
  }
  return L;
}

void BlockCompiler::readInto(Reg Target, uint8_t Bank, ValueId Id) {
  if (Bank == BankRegs) {
    Em.loadQ(Target, RBX, offReg(Id));
    return;
  }
  if (!Defined[Id])
    UseBeforeDef = true;
  const TempLoc &L = Locs[Id];
  switch (L.K) {
  case TempLoc::InReg:
    if (static_cast<Reg>(L.R) != Target)
      Em.movReg(Target, static_cast<Reg>(L.R));
    return;
  case TempLoc::InSpill:
    Em.loadQ(Target, RBX, offSpill(L.Slot));
    return;
  case TempLoc::None:
    // Use-before-def: flagged above; emit a deterministic zero so the
    // buffer stays well-formed until run() notices and bails.
    Em.xor_(Target, Target);
    return;
  }
}

Reg BlockCompiler::readVal(uint8_t Bank, ValueId Id, Reg Scratch) {
  if (Bank == BankTemps && Locs[Id].K == TempLoc::InReg) {
    if (!Defined[Id])
      UseBeforeDef = true;
    return static_cast<Reg>(Locs[Id].R);
  }
  readInto(Scratch, Bank, Id);
  return Scratch;
}

void BlockCompiler::writeDst(uint8_t Bank, ValueId Id, Reg Src) {
  if (Bank == BankRegs) {
    Em.storeQ(RBX, offReg(Id), Src);
    return;
  }
  Defined[Id] = true;
  TempLoc &L = allocTemp(Id);
  if (L.K == TempLoc::InReg) {
    if (static_cast<Reg>(L.R) != Src)
      Em.movReg(static_cast<Reg>(L.R), Src);
  } else {
    Em.storeQ(RBX, offSpill(L.Slot), Src);
  }
}

void BlockCompiler::emitPrologue() {
  const uint64_t Pc = IR.GuestPc;

  // Safepoint poll: one byte compare against the ExclusiveContext flag,
  // reached through the machine context so the code stays machine-neutral.
  Em.loadQ(R10, RBX, OffCtx);
  Em.loadQ(R10, R10, OffCtxExclPending);
  Em.cmpByteImm(R10, 0, 0);
  size_t SkipSp = Em.jcc(CC_E);
  emitExit(Pc, ExitKind::Safepoint);
  Em.patchRel32(SkipSp, Em.size());

  // Chained-execution budget.
  Em.decMem(RBX, OffChainBudget);
  size_t SkipBudget = Em.jcc(CC_NS);
  emitExit(Pc, ExitKind::Budget);
  Em.patchRel32(SkipBudget, Em.size());

  // Fastmem-epoch check, only when the block has inline window accesses:
  // a protection transition (PST family) while this vCPU was parked makes
  // the cached window stale — deopt before any side effect and let the
  // runtime revalidate (the fault-driven path of docs/JIT.md).
  bool UsesFastMem = false;
  for (const DecodedInst &D : Block.Decoded)
    if ((D.Op == IROp::LoadG || D.Op == IROp::StoreG) &&
        !(D.Flags & DecodedFlagInstrument))
      UsesFastMem = true;
  if (UsesFastMem) {
    Em.loadQ(R10, RBX, OffCtx);
    Em.loadQ(R10, R10, OffCtxFastEpoch);
    Em.loadQ(R10, R10, 0);
    Em.cmpRegMem(R10, RBX, OffFastMemEpoch);
    size_t SkipEpoch = Em.jcc(CC_E);
    emitExit(Pc, ExitKind::Deopt);
    Em.patchRel32(SkipEpoch, Em.size());
  }

  // Past every re-runnable exit: the block now counts as executed, like
  // the interpreter's post-execBlock bookkeeping (halts included).
  Em.addMemImm(RBX, OffExecutedBlocks, 1);
  Em.addMemImm(RBX, OffExecutedInsts,
               static_cast<int32_t>(IR.GuestInstCount));
}

void BlockCompiler::emitAluRR(const DecodedInst &D) {
  readInto(RAX, D.ABank, D.A);
  switch (D.Op) {
  case IROp::Mov:
    break;
  case IROp::Add:
    Em.add(RAX, readVal(D.BBank, D.B, RCX));
    break;
  case IROp::Sub:
    Em.sub(RAX, readVal(D.BBank, D.B, RCX));
    break;
  case IROp::Mul:
    Em.imul(RAX, readVal(D.BBank, D.B, RCX));
    break;
  case IROp::And:
    Em.and_(RAX, readVal(D.BBank, D.B, RCX));
    break;
  case IROp::Or:
    Em.or_(RAX, readVal(D.BBank, D.B, RCX));
    break;
  case IROp::Xor:
    Em.xor_(RAX, readVal(D.BBank, D.B, RCX));
    break;
  case IROp::Shl:
    readInto(RCX, D.BBank, D.B);
    Em.shiftCl(4, RAX);
    break;
  case IROp::Shr:
    readInto(RCX, D.BBank, D.B);
    Em.shiftCl(5, RAX);
    break;
  case IROp::Sar:
    readInto(RCX, D.BBank, D.B);
    Em.shiftCl(7, RAX);
    break;
  case IROp::SltS:
    Em.cmp(RAX, readVal(D.BBank, D.B, RCX));
    Em.setccZx(CC_L, RAX);
    break;
  case IROp::SltU:
    Em.cmp(RAX, readVal(D.BBank, D.B, RCX));
    Em.setccZx(CC_B, RAX);
    break;
  default:
    llsc_unreachable("not a reg-reg ALU op");
  }
  writeDst(D.DstBank, D.Dst, RAX);
}

void BlockCompiler::emitAluImm(const DecodedInst &D) {
  readInto(RAX, D.ABank, D.A);
  uint64_t Imm = static_cast<uint64_t>(D.Imm);
  bool Small = fitsInt32(Imm);
  if (!Small)
    Em.movImm64(RCX, Imm);
  int32_t I32 = static_cast<int32_t>(Imm);
  switch (D.Op) {
  case IROp::AddImm:
    Small ? Em.addImm(RAX, I32) : Em.add(RAX, RCX);
    break;
  case IROp::AndImm:
    Small ? Em.andImm(RAX, I32) : Em.and_(RAX, RCX);
    break;
  case IROp::OrImm:
    Small ? Em.aluImm(1, RAX, I32) : Em.or_(RAX, RCX);
    break;
  case IROp::XorImm:
    Small ? Em.aluImm(6, RAX, I32) : Em.xor_(RAX, RCX);
    break;
  case IROp::ShlImm:
    Em.shiftImm(4, RAX, static_cast<uint8_t>(Imm & 63));
    break;
  case IROp::ShrImm:
    Em.shiftImm(5, RAX, static_cast<uint8_t>(Imm & 63));
    break;
  case IROp::SarImm:
    Em.shiftImm(7, RAX, static_cast<uint8_t>(Imm & 63));
    break;
  case IROp::SltSImm:
    Small ? Em.cmpImm(RAX, I32) : Em.cmp(RAX, RCX);
    Em.setccZx(CC_L, RAX);
    break;
  case IROp::SltUImm:
    Small ? Em.cmpImm(RAX, I32) : Em.cmp(RAX, RCX);
    Em.setccZx(CC_B, RAX);
    break;
  default:
    llsc_unreachable("not an ALU-imm op");
  }
  writeDst(D.DstBank, D.Dst, RAX);
}

void BlockCompiler::emitLoadG(const DecodedInst &D) {
  emitAddrAPlusImm(D, RSI); // rsi = guest address (slow-path arg 2).
  bool Sext = (D.Flags & DecodedFlagSignExtend) != 0;

  std::vector<size_t> ToDone;
  if (!(D.Flags & DecodedFlagInstrument)) {
    // Inline fastmem window, interpreter condition verbatim:
    // Addr < FastLimit && Size <= FastLimit - Addr. The subtraction form
    // (not addr+size vs limit) is deliberate — addr+size can wrap at the
    // top of the 64-bit space and a wrapped sum would slip past a
    // compare, turning an out-of-range guest access into an unguarded
    // host fault.
    Em.loadQ(R10, RBX, OffFastMemLimit);
    Em.cmp(RSI, R10);
    size_t Slow1 = Em.jcc(CC_AE);
    Em.movReg(R11, R10);
    Em.sub(R11, RSI);
    Em.cmpImm(R11, static_cast<int32_t>(D.Size));
    size_t Slow2 = Em.jcc(CC_B);
    Em.loadQ(R10, RBX, OffFastMemBase);
    if (Sext)
      Em.loadSx(RAX, R10, RSI, D.Size);
    else
      Em.loadZx(RAX, R10, RSI, D.Size);
    emitCount(OffLoads);
    emitCount(OffFastMemHits);
    ToDone.push_back(Em.jmp());
    Em.patchRel32(Slow1, Em.size());
    Em.patchRel32(Slow2, Em.size());
  }

  // Slow path (always taken for instrumented ops, like the interpreter).
  Em.movReg(RDI, RBX);
  Em.movImm64(RDX, D.Size | (Sext ? 0x100u : 0u));
  Em.movImm64(RCX, IR.GuestPc);
  emitCall(reinterpret_cast<const void *>(&llscJitLoadSlow));
  emitHaltedCheck();

  for (size_t Off : ToDone)
    Em.patchRel32(Off, Em.size());
  writeDst(D.DstBank, D.Dst, RAX);
}

void BlockCompiler::emitStoreG(const DecodedInst &D) {
  emitAddrAPlusImm(D, RSI);        // rsi = guest address.
  readInto(RDX, D.BBank, D.B);     // rdx = value (slow-path arg 3).

  std::vector<size_t> ToDone;
  if (!(D.Flags & DecodedFlagInstrument)) {
    Em.loadQ(R10, RBX, OffFastMemLimit);
    Em.cmp(RSI, R10);
    size_t Slow1 = Em.jcc(CC_AE);
    Em.movReg(R11, R10);
    Em.sub(R11, RSI);
    Em.cmpImm(R11, static_cast<int32_t>(D.Size));
    size_t Slow2 = Em.jcc(CC_B);
    Em.loadQ(R10, RBX, OffFastMemBase);
    Em.storeSized(R10, RSI, RDX, D.Size);
    emitCount(OffStores);
    emitCount(OffFastMemHits);
    ToDone.push_back(Em.jmp());
    Em.patchRel32(Slow1, Em.size());
    Em.patchRel32(Slow2, Em.size());
  }

  Em.movReg(RDI, RBX);
  Em.movImm64(RCX, D.Size);
  Em.movImm64(R8, IR.GuestPc);
  emitCall(reinterpret_cast<const void *>(&llscJitStoreSlow));
  emitHaltedCheck();

  for (size_t Off : ToDone)
    Em.patchRel32(Off, Em.size());
}

void BlockCompiler::emitHstStoreTag(const DecodedInst &D) {
  // Fused multi-granule tag store (the paper's Figure 5 inline sequence).
  // Table and mask are read through the machine context at runtime with
  // the interpreter's null guard — no scheme publishes a table => skip —
  // so the same code body serves any machine: snapshot clones adopt it
  // wholesale and each supplies its own tables through its own context.
  Em.loadQ(RDX, RBX, OffCtx);
  Em.loadQ(RAX, RDX, OffCtxHstMask);
  Em.loadQ(RDX, RDX, OffCtxHstTable);
  Em.cmpImm(RDX, 0);
  size_t SkipAll = Em.jcc(CC_E);
  emitAddrAPlusImm(D, RSI);
  Em.movReg(RCX, RSI);
  Em.shiftImm(5, RCX, 2); // rcx = First = Addr >> 2.
  Em.lea(R10, RSI, static_cast<int32_t>(D.Size) - 1);
  Em.shiftImm(5, R10, 2); // r10 = Last.
  Em.loadDword(R11, RBX, OffTid);
  Em.addImm(R11, 1); // r11 = Tid + 1 (tag value).
  size_t Loop = Em.size();
  Em.movReg(RDI, RCX);
  Em.and_(RDI, RAX);
  Em.storeDwordScaled4(RDX, RDI, R11); // table[granule & mask] = tag.
  Em.cmp(RCX, R10);
  size_t Done = Em.jcc(CC_E);
  Em.addImm(RCX, 1);
  Em.patchRel32(Em.jmp(), Loop);
  Em.patchRel32(Done, Em.size());
  Em.patchRel32(SkipAll, Em.size());
}

bool BlockCompiler::emitInst(const DecodedInst &D, unsigned InstIdx) {
  // The interpreter's INSTRUMENT_CHECK, folded to its !Profiling form
  // (tier-1 never runs with profiling enabled).
  if (D.Flags & DecodedFlagCountInline)
    emitCount(OffInlineInstrumentOps);

  switch (D.Op) {
  case IROp::MovImm:
    Em.movImm64(RAX, static_cast<uint64_t>(D.Imm));
    writeDst(D.DstBank, D.Dst, RAX);
    break;

  case IROp::Mov:
  case IROp::Add:
  case IROp::Sub:
  case IROp::Mul:
  case IROp::And:
  case IROp::Or:
  case IROp::Xor:
  case IROp::Shl:
  case IROp::Shr:
  case IROp::Sar:
  case IROp::SltS:
  case IROp::SltU:
    emitAluRR(D);
    break;

  case IROp::UDiv:
  case IROp::SDiv:
  case IROp::URem:
  case IROp::SRem:
    // Division edge semantics (x/0 and INT64_MIN/-1 yield 0) via the
    // shared evalAluOp thunk; division is rare in guest code.
    readInto(RSI, D.ABank, D.A);
    readInto(RDX, D.BBank, D.B);
    Em.movImm64(RDI, static_cast<uint64_t>(D.Op));
    emitCall(reinterpret_cast<const void *>(&llscJitDivRem));
    writeDst(D.DstBank, D.Dst, RAX);
    break;

  case IROp::AddImm:
  case IROp::AndImm:
  case IROp::OrImm:
  case IROp::XorImm:
  case IROp::ShlImm:
  case IROp::ShrImm:
  case IROp::SarImm:
  case IROp::SltSImm:
  case IROp::SltUImm:
    emitAluImm(D);
    break;

  case IROp::LoadG:
    emitLoadG(D);
    break;
  case IROp::StoreG:
    emitStoreG(D);
    break;

  case IROp::LoadHost:
    // Relaxed host access to scheme tables; plain movs (the tables are
    // naturally aligned — same access the interpreter's hostLoad makes).
    emitAddrAPlusImm(D, RSI);
    Em.loadSizedZx(RAX, RSI, 0, D.Size);
    writeDst(D.DstBank, D.Dst, RAX);
    break;
  case IROp::StoreHost:
    emitAddrAPlusImm(D, RSI);
    readInto(RDX, D.BBank, D.B);
    Em.storeSizedAt(RSI, 0, RDX, D.Size);
    break;

  case IROp::LoadLink:
    Em.movReg(RDI, RBX);
    readInto(RSI, D.ABank, D.A);
    Em.movImm64(RDX,
                D.Size | ((D.Flags & DecodedFlagCheckAlign) ? 0x100u : 0u));
    emitCall(reinterpret_cast<const void *>(&llscJitLoadLink));
    if (D.Flags & DecodedFlagCheckAlign)
      emitHaltedCheck();
    writeDst(D.DstBank, D.Dst, RAX);
    break;
  case IROp::StoreCond:
    Em.movReg(RDI, RBX);
    readInto(RSI, D.ABank, D.A);
    readInto(RDX, D.BBank, D.B);
    Em.movImm64(RCX,
                D.Size | ((D.Flags & DecodedFlagCheckAlign) ? 0x100u : 0u));
    emitCall(reinterpret_cast<const void *>(&llscJitStoreCond));
    if (D.Flags & DecodedFlagCheckAlign)
      emitHaltedCheck();
    writeDst(D.DstBank, D.Dst, RAX);
    break;
  case IROp::ClearExcl:
    Em.movReg(RDI, RBX);
    emitCall(reinterpret_cast<const void *>(&llscJitClearExcl));
    break;
  case IROp::Fence:
    Em.mfence();
    break;

  case IROp::HelperStore:
    emitAddrAPlusImm(D, RSI);
    Em.movReg(RDI, RBX);
    readInto(RDX, D.BBank, D.B);
    Em.movImm64(RCX, D.Size);
    emitCall(reinterpret_cast<const void *>(&llscJitHelperStore));
    break;
  case IROp::HelperLoad:
    emitAddrAPlusImm(D, RSI);
    Em.movReg(RDI, RBX);
    Em.movImm64(RDX, D.Size);
    Em.movImm64(RCX, (D.Flags & DecodedFlagSignExtend) ? 1 : 0);
    emitCall(reinterpret_cast<const void *>(&llscJitHelperLoad));
    writeDst(D.DstBank, D.Dst, RAX);
    break;
  case IROp::Helper: {
    const HelperFn *Fn = &IR.Helpers[static_cast<size_t>(D.Imm)];
    Em.movReg(RDI, RBX);
    Em.movImm64(RSI, reinterpret_cast<uint64_t>(Fn));
    readInto(RDX, D.ABank, D.A);
    readInto(RCX, D.BBank, D.B);
    emitCall(reinterpret_cast<const void *>(&llscJitHelper));
    writeDst(D.DstBank, D.Dst, RAX);
    break;
  }

  case IROp::AtomicAddG:
    Em.movReg(RDI, RBX);
    readInto(RSI, D.ABank, D.A);
    readInto(RDX, D.BBank, D.B);
    Em.movImm64(RCX, D.Size);
    emitCall(reinterpret_cast<const void *>(&llscJitAtomicAdd));
    emitHaltedCheck();
    writeDst(D.DstBank, D.Dst, RAX);
    break;

  case IROp::AtomicRmwG:
    Em.movReg(RDI, RBX);
    readInto(RSI, D.ABank, D.A);
    readInto(RDX, D.BBank, D.B);
    Em.movImm64(RCX, D.Size | (static_cast<uint64_t>(D.Imm) << 8));
    emitCall(reinterpret_cast<const void *>(&llscJitAtomicRmw));
    emitHaltedCheck();
    writeDst(D.DstBank, D.Dst, RAX);
    break;

  case IROp::HstStoreTag:
    emitHstStoreTag(D);
    break;

  case IROp::ReadSpecial:
    switch (static_cast<SpecialValue>(D.Imm)) {
    case SpecialValue::Tid:
      Em.loadDword(RAX, RBX, OffTid);
      break;
    case SpecialValue::NumThreads:
      Em.loadQ(RAX, RBX, OffCtx);
      Em.loadDword(RAX, RAX, OffCtxNumThreads); // mov r32 zero-extends.
      break;
    case SpecialValue::ClockNanos:
      emitCall(reinterpret_cast<const void *>(&llscJitClockNanos));
      break;
    }
    writeDst(D.DstBank, D.Dst, RAX);
    break;

  case IROp::SysCall:
    Em.movReg(RDI, RBX);
    readInto(RSI, D.ABank, D.A);
    Em.movImm64(RDX, static_cast<uint64_t>(D.Imm));
    emitCall(reinterpret_cast<const void *>(&llscJitSysCall));
    writeDst(D.DstBank, D.Dst, RAX);
    break;

  case IROp::Yield:
    Em.movReg(RDI, RBX);
    emitCall(reinterpret_cast<const void *>(&llscJitYield));
    break;

  case IROp::BrCond: {
    readInto(RAX, D.ABank, D.A);
    Em.cmp(RAX, readVal(D.BBank, D.B, RCX));
    // Inverted branch skips the inline static-exit island.
    size_t Skip = Em.jcc(invert(condFor(D.Cc)));
    freeDeadTemps(InstIdx); // Exits need no temps; free before the island.
    emitStaticExit(static_cast<uint64_t>(D.Imm));
    Em.patchRel32(Skip, Em.size());
    return true;
  }
  case IROp::SetPcImm:
    emitStaticExit(static_cast<uint64_t>(D.Imm));
    return true;
  case IROp::SetPc:
    readInto(RAX, D.ABank, D.A);
    Em.movImm64(RDX, static_cast<uint64_t>(ExitKind::Indirect));
    emitJmpEpilogue();
    return true;
  case IROp::Halt:
    Em.storeByteImm(RBX, OffHalted, 1);
    emitExit(0, ExitKind::Halted);
    return true;

  case IROp::NumOps:
    return false;
  }

  freeDeadTemps(InstIdx);
  return true;
}

bool BlockCompiler::run() {
  // Temp pressure beyond the spill area is a bail, not an error.
  if (IR.NumValues > FirstTempId + VCpu::NumJitSpillSlots)
    return false;
  if (Block.Decoded.empty())
    return false;

  computeLastUse();
  emitPrologue();

  for (unsigned I = 0; I < Block.Decoded.size(); ++I)
    if (!emitInst(Block.Decoded[I], I))
      return false;
  if (UseBeforeDef || NextSlot > VCpu::NumJitSpillSlots)
    return false;
  return true;
}

} // namespace

bool llsc::jit::compileBlock(const CachedBlock &Block, X86Emitter &Em,
                             std::vector<Fixup> &Fixups) {
  return BlockCompiler(Block, Em, Fixups).run();
}
