//===- runtime/Observe.h - Scheme observation helpers -----------*- C++-*-===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared instrumentation helpers the atomic schemes use to feed the
/// EventCounters block and the trace-event recorder without duplicating
/// the measurement logic eight times:
///
///  - observeStartExclusive()/observeEndExclusive() wrap the
///    ExclusiveContext calls, timing the entry wait (excl.wait_ns),
///    counting entries, and opening/closing a per-thread "exclusive"
///    trace slice. PICO-HTM's serialized fallback spans the LL→SC window
///    across two scheme calls, so these are free functions, not only RAII.
///  - ExclusiveSection is the RAII form for schemes whose critical region
///    is a single scope (HST, PST, and the HTM fallbacks).
///  - SyscallTimer times an mprotect/mremap region: syscall-scale cost
///    makes the always-on timestamp read noise, unlike per-micro-op paths.
///
/// All helpers take the vCPU whose counters should be charged; trace
/// emission is guarded by TraceRecorder::active() (one relaxed load).
///
//===----------------------------------------------------------------------===//

#ifndef LLSC_RUNTIME_OBSERVE_H
#define LLSC_RUNTIME_OBSERVE_H

#include "runtime/Exclusive.h"
#include "runtime/VCpu.h"
#include "support/Timing.h"
#include "support/Trace.h"

namespace llsc {

/// Enters the stop-the-world exclusive section on behalf of \p Cpu,
/// charging the entry wait to excl.wait_ns and opening a trace slice.
inline void observeStartExclusive(VCpu &Cpu, bool SelfRunning) {
  uint64_t Start = monotonicNanos();
  Cpu.Ctx->Excl->startExclusive(SelfRunning);
  Cpu.Events.ExclEntries++;
  Cpu.Events.ExclWaitNs += monotonicNanos() - Start;
  if (TraceRecorder *Trace = TraceRecorder::active())
    Trace->begin(Cpu.Tid, "exclusive", "excl");
}

/// Leaves the exclusive section and closes the trace slice opened by
/// observeStartExclusive().
inline void observeEndExclusive(VCpu &Cpu, bool SelfRunning) {
  if (TraceRecorder *Trace = TraceRecorder::active())
    Trace->end(Cpu.Tid, "exclusive", "excl");
  Cpu.Ctx->Excl->endExclusive(SelfRunning);
}

/// RAII exclusive section charged to one vCPU (scoped schemes: HST/PST).
class ExclusiveSection {
public:
  ExclusiveSection(VCpu &Cpu, bool SelfRunning)
      : Cpu(Cpu), SelfRunning(SelfRunning) {
    observeStartExclusive(Cpu, SelfRunning);
  }
  ~ExclusiveSection() { observeEndExclusive(Cpu, SelfRunning); }

  ExclusiveSection(const ExclusiveSection &) = delete;
  ExclusiveSection &operator=(const ExclusiveSection &) = delete;

private:
  VCpu &Cpu;
  bool SelfRunning;
};

/// Which memory-protection syscall a SyscallTimer scope issues.
enum class ProtSyscall { Mprotect, Remap };

/// RAII timer for a protection-syscall region: counts the call, attributes
/// the time to the Fig. 12 Mprotect bucket when profiling, and records a
/// trace slice. \p Cpu may be null (scheme attach/reset paths that run
/// before vCPUs exist) — then only the trace event is emitted.
class SyscallTimer {
public:
  SyscallTimer(VCpu *Cpu, ProtSyscall Kind)
      : Cpu(Cpu), Kind(Kind), StartNs(monotonicNanos()) {}

  ~SyscallTimer() {
    uint64_t DurNs = monotonicNanos() - StartNs;
    if (Cpu) {
      if (Kind == ProtSyscall::Mprotect)
        Cpu->Events.MprotectCalls++;
      else
        Cpu->Events.RemapCalls++;
      if (CpuProfile *Profile = Cpu->profileOrNull())
        Profile->BucketNs[static_cast<unsigned>(ProfileBucket::Mprotect)] +=
            DurNs;
    }
    if (TraceRecorder *Trace = TraceRecorder::active())
      Trace->complete(Cpu ? Cpu->Tid : 0,
                      Kind == ProtSyscall::Mprotect ? "mprotect" : "remap",
                      "sys", Trace->toTraceNs(StartNs), DurNs);
  }

  SyscallTimer(const SyscallTimer &) = delete;
  SyscallTimer &operator=(const SyscallTimer &) = delete;

private:
  VCpu *Cpu;
  ProtSyscall Kind;
  uint64_t StartNs;
};

} // namespace llsc

#endif // LLSC_RUNTIME_OBSERVE_H
