//===- runtime/AdaptiveController.h - Online scheme selection ---*- C++-*-===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The adaptive scheme controller: Table II shows no scheme dominates —
/// HST degrades under hash conflicts, the PST family pays mprotect and
/// false-sharing costs, the HTM variants livelock past ~8 threads — so
/// `--scheme=adaptive` observes the per-scheme event counters online and
/// hot-swaps the scheme (Machine::setScheme) when the running workload is
/// hostile to the current one.
///
/// This class is pure policy: it consumes counter deltas sampled under the
/// quiescence floor (the per-vCPU EventCounters fields are plain non-atomic
/// loads, so they may only be read while every vCPU is parked) and decides
/// whether to swap. Hysteresis (N consecutive over-threshold samples) and a
/// cooldown window keep it from thrashing on bursty phases. The sampling
/// thread itself lives in core/Machine.cpp; the swap protocol is documented
/// in docs/API.md.
///
//===----------------------------------------------------------------------===//

#ifndef LLSC_RUNTIME_ADAPTIVECONTROLLER_H
#define LLSC_RUNTIME_ADAPTIVECONTROLLER_H

#include "atomic/AtomicScheme.h"

#include <cstdint>
#include <optional>

namespace llsc {

/// Tunables for the adaptive controller (llsc-run --adaptive-* flags).
struct AdaptiveConfig {
  /// Sampling period of the controller thread.
  uint64_t SampleIntervalMs = 10;
  /// Minimum time between two swaps.
  uint64_t CooldownMs = 50;
  /// Consecutive over-threshold samples required before a swap fires.
  unsigned HysteresisSamples = 2;
  /// SC attempts an interval must contain before SC-ratio rules apply
  /// (idle intervals carry no signal).
  uint64_t MinScAttempted = 8;
  /// PST family: false-sharing faults per millisecond that mark the
  /// workload PST-hostile (Section IV-B2's false alarms) -> swap to HST.
  double FalseSharingPerMs = 2.0;
  /// HST family: fraction of SC attempts failing on hash conflicts that
  /// marks the table overloaded -> swap to PST (exact-range monitors).
  double HashConflictFrac = 0.25;
  /// HTM kinds: fraction of SC attempts ending in the livelock fallback
  /// that marks the abort storm -> swap to HST.
  double HtmFallbackFrac = 0.25;
};

/// One interval's worth of counter deltas (summed over all vCPUs).
struct AdaptiveSample {
  uint64_t WallNs = 0;
  uint64_t ScAttempted = 0;
  uint64_t ScFailHashConflict = 0;
  uint64_t FalseSharingFaults = 0;
  uint64_t ExclWaitNs = 0;
  uint64_t HtmBegins = 0;
  uint64_t HtmFallbacks = 0;
};

/// Decides when to hot-swap the atomic scheme. Not thread-safe: owned and
/// driven by the machine's single controller thread.
class AdaptiveController {
public:
  AdaptiveController(SchemeKind Initial, const AdaptiveConfig &Config)
      : Config(Config), Current(Initial) {}

  /// Feeds one sample. \returns the scheme to swap to, or nullopt to stay.
  /// On a swap decision the caller performs the swap and then reports it
  /// via onSwapComplete().
  std::optional<SchemeKind> onSample(const AdaptiveSample &Delta,
                                     uint64_t NowNs);

  /// Records a completed swap (resets hysteresis, starts the cooldown).
  void onSwapComplete(SchemeKind NewKind, uint64_t NowNs);

  SchemeKind current() const { return Current; }

  // Mirrored into the adaptive.* event counters by the machine.
  uint64_t samples() const { return Samples; }
  uint64_t swaps() const { return Swaps; }
  uint64_t cooldownBlocked() const { return CooldownBlocked; }

private:
  /// The rule table: which scheme does this sample argue for?
  /// \returns Current when the sample carries no escape signal.
  SchemeKind desired(const AdaptiveSample &Delta) const;

  AdaptiveConfig Config;
  SchemeKind Current;
  SchemeKind StreakKind = SchemeKind::Hst;
  unsigned Streak = 0;
  uint64_t LastSwapNs = 0; ///< 0 = never swapped; no initial cooldown.
  uint64_t Samples = 0;
  uint64_t Swaps = 0;
  uint64_t CooldownBlocked = 0;
};

} // namespace llsc

#endif // LLSC_RUNTIME_ADAPTIVECONTROLLER_H
