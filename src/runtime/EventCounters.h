//===- runtime/EventCounters.h - Per-vCPU event counters --------*- C++-*-===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-vCPU atomic-emulation event counters. Where the Fig. 12 profiler
/// (runtime/Profiler.h) answers "where does the time go" in four coarse
/// buckets, these counters answer "how often does each event fire":
/// Table 1's SC failure rates, Fig. 11's HTM abort mix, and the
/// helper-vs-inline instrumentation split all come from here.
///
/// Each vCPU owns one EventCounters block and bumps plain (non-atomic)
/// fields — exactly one host thread executes a given vCPU, and the
/// cooperative runner is single-threaded, so no synchronization is
/// needed on the increment path. Aggregation happens after the run:
/// Machine::collectResult merges the blocks and flushToRegistry() adds
/// the totals lock-free into the process-wide CounterRegistry.
///
/// Full per-counter semantics (including the monitor-lost vs.
/// hash-conflict SC failure split and per-scheme applicability) are
/// catalogued in docs/OBSERVABILITY.md.
///
//===----------------------------------------------------------------------===//

#ifndef LLSC_RUNTIME_EVENTCOUNTERS_H
#define LLSC_RUNTIME_EVENTCOUNTERS_H

#include <cstdint>

namespace llsc {

/// Event counts for one vCPU (or, after merge(), a whole run).
struct EventCounters {
  // --- LL/SC core -----------------------------------------------------------
  uint64_t LlIssued = 0;     ///< Load-link (LDAXR-class) ops executed.
  uint64_t ScAttempted = 0;  ///< Store-conditional ops executed.
  uint64_t ScSucceeded = 0;  ///< SCs that stored and returned 0.
  uint64_t ScFailed = 0;     ///< SCs that returned 1 (= attempted - succeeded).
  /// SC failures where the monitored value had genuinely changed (another
  /// CPU wrote the line, or the monitor was cleared). Always a correct
  /// failure — the guest retry loop is doing real work.
  uint64_t ScFailMonitorLost = 0;
  /// SC failures where the monitored value was unchanged at failure time:
  /// hash-table conflicts in HST (two addresses sharing a slot) and other
  /// spurious rejections. ABA cases are indistinguishable from spurious
  /// ones and land here too — see docs/OBSERVABILITY.md.
  uint64_t ScFailHashConflict = 0;

  // --- Exclusive sections ---------------------------------------------------
  uint64_t ExclEntries = 0; ///< startExclusive() calls that won the section.
  uint64_t ExclWaitNs = 0;  ///< ns spent waiting to enter + draining peers.
  uint64_t SafepointParks = 0; ///< Times this vCPU parked at a safepoint.

  // --- Memory-protection syscalls (PST family) ------------------------------
  uint64_t MprotectCalls = 0; ///< mprotect() syscalls issued by the scheme.
  uint64_t RemapCalls = 0;    ///< mremap/mmap remap syscalls (pst-remap).

  // --- HTM (pico-htm / hst-htm) ---------------------------------------------
  uint64_t HtmBegins = 0;         ///< Transactions started.
  uint64_t HtmCommits = 0;        ///< Transactions committed.
  uint64_t HtmAbortsConflict = 0; ///< Aborts: data conflict with a peer.
  uint64_t HtmAbortsCapacity = 0; ///< Aborts: footprint/capacity overflow.
  uint64_t HtmFallbacks = 0;      ///< Livelock fallbacks to exclusive mode.

  // --- Instrumentation shape ------------------------------------------------
  uint64_t HelperStoreCalls = 0;  ///< HelperStore micro-ops (store hooks).
  uint64_t HelperLoadCalls = 0;   ///< HelperLoad micro-ops (load hooks).
  uint64_t SchemeHelperCalls = 0; ///< Generic Helper micro-ops (hst-helper).
  /// Instrument-flagged non-helper micro-ops: the inline tag checks and
  /// address computations schemes inject into translated code.
  uint64_t InlineInstrumentOps = 0;

  // --- Faults ---------------------------------------------------------------
  uint64_t FaultsRecovered = 0;    ///< SIGSEGV/SIGBUS recovered via FaultGuard.
  uint64_t FalseSharingFaults = 0; ///< Faults on pages shared, not raced.

  // --- BW-LLSC announcement array (bw-llsc) ---------------------------------
  uint64_t BwLlscPublishes = 0;  ///< LL announcement-slot publishes.
  uint64_t BwLlscScCommits = 0;  ///< SCs committed by the descriptor CAS.
  uint64_t BwLlscSlotBreaks = 0; ///< Peer slots invalidated by a store/SC.
  uint64_t BwLlscStoreScans = 0; ///< Plain stores that scanned the array.

  // --- Engine hot path ------------------------------------------------------
  uint64_t JmpCacheHits = 0;   ///< Indirect branches resolved lock-free.
  uint64_t JmpCacheMisses = 0; ///< Indirect branches that hit the TB cache.
  uint64_t FastMemHits = 0;    ///< LoadG/StoreG via the fast-path window.
  uint64_t FastMemSlow = 0;    ///< LoadG/StoreG via the GuestMemory accessors.

  // --- Tier-1 JIT (engine/jit/, docs/JIT.md) --------------------------------
  uint64_t JitBlocksCompiled = 0; ///< Blocks lowered and installed.
  uint64_t JitCompileBails = 0;   ///< Compilations bailed (block stays tier-0).
  uint64_t JitEnters = 0;         ///< Trampoline entries into emitted code.
  uint64_t JitDeopts = 0;         ///< Deopt exits (stale fastmem window).
  uint64_t JitChainPatches = 0;   ///< Chain sites patched to direct jumps.

  // --- Adaptive controller --------------------------------------------------
  // Machine-level, not per-vCPU: charged to the machine's AdaptiveEvents
  // block and merged into the run total (runtime/AdaptiveController.h).
  uint64_t AdaptiveSamples = 0; ///< Controller sampling intervals completed.
  uint64_t AdaptiveSwaps = 0;   ///< Scheme hot-swaps performed.
  /// Swap decisions that met hysteresis but were vetoed by the cooldown.
  uint64_t AdaptiveCooldownBlocked = 0;

  /// Accumulates \p Other into this block (for cross-vCPU aggregation).
  void merge(const EventCounters &Other);

  /// Zeroes every counter.
  void reset();

  /// Invokes \p Fn(Name, Value) for every counter, in catalogue order.
  /// Names match the CounterRegistry keys ("sc.attempted", ...).
  template <typename FnT> void forEach(FnT &&Fn) const {
    Fn("ll.issued", LlIssued);
    Fn("sc.attempted", ScAttempted);
    Fn("sc.succeeded", ScSucceeded);
    Fn("sc.failed", ScFailed);
    Fn("sc.fail.monitor_lost", ScFailMonitorLost);
    Fn("sc.fail.hash_conflict", ScFailHashConflict);
    Fn("excl.entries", ExclEntries);
    Fn("excl.wait_ns", ExclWaitNs);
    Fn("excl.safepoint_parks", SafepointParks);
    Fn("sys.mprotect_calls", MprotectCalls);
    Fn("sys.remap_calls", RemapCalls);
    Fn("htm.begins", HtmBegins);
    Fn("htm.commits", HtmCommits);
    Fn("htm.aborts.conflict", HtmAbortsConflict);
    Fn("htm.aborts.capacity", HtmAbortsCapacity);
    Fn("htm.fallbacks", HtmFallbacks);
    Fn("helper.store_calls", HelperStoreCalls);
    Fn("helper.load_calls", HelperLoadCalls);
    Fn("helper.scheme_calls", SchemeHelperCalls);
    Fn("instr.inline_ops", InlineInstrumentOps);
    Fn("fault.recovered", FaultsRecovered);
    Fn("fault.false_sharing", FalseSharingFaults);
    Fn("bwllsc.ll_published", BwLlscPublishes);
    Fn("bwllsc.sc_commits", BwLlscScCommits);
    Fn("bwllsc.slot_breaks", BwLlscSlotBreaks);
    Fn("bwllsc.store_scans", BwLlscStoreScans);
    Fn("engine.jmpcache.hit", JmpCacheHits);
    Fn("engine.jmpcache.miss", JmpCacheMisses);
    Fn("engine.fastmem.hit", FastMemHits);
    Fn("engine.fastmem.slow", FastMemSlow);
    Fn("engine.jit.compiled", JitBlocksCompiled);
    Fn("engine.jit.bails", JitCompileBails);
    Fn("engine.jit.enters", JitEnters);
    Fn("engine.jit.deopts", JitDeopts);
    Fn("engine.jit.chain_patches", JitChainPatches);
    Fn("adaptive.samples", AdaptiveSamples);
    Fn("adaptive.swaps", AdaptiveSwaps);
    Fn("adaptive.cooldown_blocked", AdaptiveCooldownBlocked);
  }

  /// Adds every counter into the process-wide CounterRegistry under the
  /// forEach() names. Lock-free after the first call (registry pointers
  /// are resolved once and cached).
  void flushToRegistry() const;
};

} // namespace llsc

#endif // LLSC_RUNTIME_EVENTCOUNTERS_H
