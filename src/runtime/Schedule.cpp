//===- runtime/Schedule.cpp - Cooperative schedule control --------------------===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//

#include "runtime/Schedule.h"

#include <algorithm>
#include <cassert>

using namespace llsc;

int FixedSchedule::pickNext(const std::vector<unsigned> &Runnable) {
  while (Next < Trace.size()) {
    unsigned Want = Trace[Next++];
    if (std::find(Runnable.begin(), Runnable.end(), Want) != Runnable.end())
      return static_cast<int>(Want);
    // Entry names a tid that already halted (or timed out): skip it, so
    // traces stay replayable across code changes that shift halt points.
  }
  if (!DrainAfter)
    return -1;
  return Drain.pickNext(Runnable);
}

PctSchedule::PctSchedule(uint64_t Seed, unsigned Depth, uint64_t StepHorizon)
    : Rand(Seed), Depth(std::max(Depth, 1U)),
      StepHorizon(std::max<uint64_t>(StepHorizon, 1)) {}

void PctSchedule::begin(unsigned NumThreads) {
  // Initial priorities: a random permutation of [Depth, Depth + n), so
  // they all sit above every demotion value the change points will hand
  // out (Depth - 1 down to 1).
  Priority.resize(NumThreads);
  for (unsigned Tid = 0; Tid < NumThreads; ++Tid)
    Priority[Tid] = Depth + Tid;
  for (unsigned I = NumThreads; I > 1; --I)
    std::swap(Priority[I - 1], Priority[Rand.nextBelow(I)]);

  ChangePoints.clear();
  for (unsigned I = 0; I + 1 < Depth; ++I)
    ChangePoints.push_back(Rand.nextBelow(StepHorizon));
  std::sort(ChangePoints.begin(), ChangePoints.end());
  NextChange = 0;
  NextFresh = Depth;
  Step = 0;
}

int PctSchedule::pickNext(const std::vector<unsigned> &Runnable) {
  assert(!Runnable.empty() && "pickNext needs a runnable thread");
  auto HighestRunnable = [&]() {
    unsigned Best = Runnable.front();
    for (unsigned Tid : Runnable)
      if (Priority[Tid] > Priority[Best])
        Best = Tid;
    return Best;
  };

  // Consume due change points: the thread that would run is demoted below
  // every other priority, forcing a context switch exactly here. This is
  // PCT's lever for reaching orderings of depth > 1.
  while (NextChange < ChangePoints.size() && Step >= ChangePoints[NextChange]) {
    Priority[HighestRunnable()] = --NextFresh;
    ++NextChange;
  }
  ++Step;
  return static_cast<int>(HighestRunnable());
}
