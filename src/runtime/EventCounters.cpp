//===- runtime/EventCounters.cpp - Per-vCPU event counters ----------------===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//

#include "runtime/EventCounters.h"

#include "support/Stats.h"

using namespace llsc;

void EventCounters::merge(const EventCounters &Other) {
  LlIssued += Other.LlIssued;
  ScAttempted += Other.ScAttempted;
  ScSucceeded += Other.ScSucceeded;
  ScFailed += Other.ScFailed;
  ScFailMonitorLost += Other.ScFailMonitorLost;
  ScFailHashConflict += Other.ScFailHashConflict;
  ExclEntries += Other.ExclEntries;
  ExclWaitNs += Other.ExclWaitNs;
  SafepointParks += Other.SafepointParks;
  MprotectCalls += Other.MprotectCalls;
  RemapCalls += Other.RemapCalls;
  HtmBegins += Other.HtmBegins;
  HtmCommits += Other.HtmCommits;
  HtmAbortsConflict += Other.HtmAbortsConflict;
  HtmAbortsCapacity += Other.HtmAbortsCapacity;
  HtmFallbacks += Other.HtmFallbacks;
  HelperStoreCalls += Other.HelperStoreCalls;
  HelperLoadCalls += Other.HelperLoadCalls;
  SchemeHelperCalls += Other.SchemeHelperCalls;
  InlineInstrumentOps += Other.InlineInstrumentOps;
  FaultsRecovered += Other.FaultsRecovered;
  FalseSharingFaults += Other.FalseSharingFaults;
  BwLlscPublishes += Other.BwLlscPublishes;
  BwLlscScCommits += Other.BwLlscScCommits;
  BwLlscSlotBreaks += Other.BwLlscSlotBreaks;
  BwLlscStoreScans += Other.BwLlscStoreScans;
  JmpCacheHits += Other.JmpCacheHits;
  JmpCacheMisses += Other.JmpCacheMisses;
  FastMemHits += Other.FastMemHits;
  FastMemSlow += Other.FastMemSlow;
  JitBlocksCompiled += Other.JitBlocksCompiled;
  JitCompileBails += Other.JitCompileBails;
  JitEnters += Other.JitEnters;
  JitDeopts += Other.JitDeopts;
  JitChainPatches += Other.JitChainPatches;
  AdaptiveSamples += Other.AdaptiveSamples;
  AdaptiveSwaps += Other.AdaptiveSwaps;
  AdaptiveCooldownBlocked += Other.AdaptiveCooldownBlocked;
}

void EventCounters::reset() { *this = EventCounters(); }

void EventCounters::flushToRegistry() const {
  // One registry lookup per counter for the whole process lifetime; the
  // cached pointers honor the cache-the-pointer contract in Stats.h.
  struct Cached {
    std::atomic<uint64_t> *LlIssued;
    std::atomic<uint64_t> *ScAttempted;
    std::atomic<uint64_t> *ScSucceeded;
    std::atomic<uint64_t> *ScFailed;
    std::atomic<uint64_t> *ScFailMonitorLost;
    std::atomic<uint64_t> *ScFailHashConflict;
    std::atomic<uint64_t> *ExclEntries;
    std::atomic<uint64_t> *ExclWaitNs;
    std::atomic<uint64_t> *SafepointParks;
    std::atomic<uint64_t> *MprotectCalls;
    std::atomic<uint64_t> *RemapCalls;
    std::atomic<uint64_t> *HtmBegins;
    std::atomic<uint64_t> *HtmCommits;
    std::atomic<uint64_t> *HtmAbortsConflict;
    std::atomic<uint64_t> *HtmAbortsCapacity;
    std::atomic<uint64_t> *HtmFallbacks;
    std::atomic<uint64_t> *HelperStoreCalls;
    std::atomic<uint64_t> *HelperLoadCalls;
    std::atomic<uint64_t> *SchemeHelperCalls;
    std::atomic<uint64_t> *InlineInstrumentOps;
    std::atomic<uint64_t> *FaultsRecovered;
    std::atomic<uint64_t> *FalseSharingFaults;
    std::atomic<uint64_t> *BwLlscPublishes;
    std::atomic<uint64_t> *BwLlscScCommits;
    std::atomic<uint64_t> *BwLlscSlotBreaks;
    std::atomic<uint64_t> *BwLlscStoreScans;
    std::atomic<uint64_t> *JmpCacheHits;
    std::atomic<uint64_t> *JmpCacheMisses;
    std::atomic<uint64_t> *FastMemHits;
    std::atomic<uint64_t> *FastMemSlow;
    std::atomic<uint64_t> *JitBlocksCompiled;
    std::atomic<uint64_t> *JitCompileBails;
    std::atomic<uint64_t> *JitEnters;
    std::atomic<uint64_t> *JitDeopts;
    std::atomic<uint64_t> *JitChainPatches;
    std::atomic<uint64_t> *AdaptiveSamples;
    std::atomic<uint64_t> *AdaptiveSwaps;
    std::atomic<uint64_t> *AdaptiveCooldownBlocked;
  };
  static const Cached C = [] {
    CounterRegistry &R = CounterRegistry::instance();
    return Cached{
        R.counter("ll.issued"),
        R.counter("sc.attempted"),
        R.counter("sc.succeeded"),
        R.counter("sc.failed"),
        R.counter("sc.fail.monitor_lost"),
        R.counter("sc.fail.hash_conflict"),
        R.counter("excl.entries"),
        R.counter("excl.wait_ns"),
        R.counter("excl.safepoint_parks"),
        R.counter("sys.mprotect_calls"),
        R.counter("sys.remap_calls"),
        R.counter("htm.begins"),
        R.counter("htm.commits"),
        R.counter("htm.aborts.conflict"),
        R.counter("htm.aborts.capacity"),
        R.counter("htm.fallbacks"),
        R.counter("helper.store_calls"),
        R.counter("helper.load_calls"),
        R.counter("helper.scheme_calls"),
        R.counter("instr.inline_ops"),
        R.counter("fault.recovered"),
        R.counter("fault.false_sharing"),
        R.counter("bwllsc.ll_published"),
        R.counter("bwllsc.sc_commits"),
        R.counter("bwllsc.slot_breaks"),
        R.counter("bwllsc.store_scans"),
        R.counter("engine.jmpcache.hit"),
        R.counter("engine.jmpcache.miss"),
        R.counter("engine.fastmem.hit"),
        R.counter("engine.fastmem.slow"),
        R.counter("engine.jit.compiled"),
        R.counter("engine.jit.bails"),
        R.counter("engine.jit.enters"),
        R.counter("engine.jit.deopts"),
        R.counter("engine.jit.chain_patches"),
        R.counter("adaptive.samples"),
        R.counter("adaptive.swaps"),
        R.counter("adaptive.cooldown_blocked"),
    };
  }();

  auto Add = [](std::atomic<uint64_t> *Counter, uint64_t Value) {
    if (Value)
      Counter->fetch_add(Value, std::memory_order_relaxed);
  };
  Add(C.LlIssued, LlIssued);
  Add(C.ScAttempted, ScAttempted);
  Add(C.ScSucceeded, ScSucceeded);
  Add(C.ScFailed, ScFailed);
  Add(C.ScFailMonitorLost, ScFailMonitorLost);
  Add(C.ScFailHashConflict, ScFailHashConflict);
  Add(C.ExclEntries, ExclEntries);
  Add(C.ExclWaitNs, ExclWaitNs);
  Add(C.SafepointParks, SafepointParks);
  Add(C.MprotectCalls, MprotectCalls);
  Add(C.RemapCalls, RemapCalls);
  Add(C.HtmBegins, HtmBegins);
  Add(C.HtmCommits, HtmCommits);
  Add(C.HtmAbortsConflict, HtmAbortsConflict);
  Add(C.HtmAbortsCapacity, HtmAbortsCapacity);
  Add(C.HtmFallbacks, HtmFallbacks);
  Add(C.HelperStoreCalls, HelperStoreCalls);
  Add(C.HelperLoadCalls, HelperLoadCalls);
  Add(C.SchemeHelperCalls, SchemeHelperCalls);
  Add(C.InlineInstrumentOps, InlineInstrumentOps);
  Add(C.FaultsRecovered, FaultsRecovered);
  Add(C.FalseSharingFaults, FalseSharingFaults);
  Add(C.BwLlscPublishes, BwLlscPublishes);
  Add(C.BwLlscScCommits, BwLlscScCommits);
  Add(C.BwLlscSlotBreaks, BwLlscSlotBreaks);
  Add(C.BwLlscStoreScans, BwLlscStoreScans);
  Add(C.JmpCacheHits, JmpCacheHits);
  Add(C.JmpCacheMisses, JmpCacheMisses);
  Add(C.FastMemHits, FastMemHits);
  Add(C.FastMemSlow, FastMemSlow);
  Add(C.JitBlocksCompiled, JitBlocksCompiled);
  Add(C.JitCompileBails, JitCompileBails);
  Add(C.JitEnters, JitEnters);
  Add(C.JitDeopts, JitDeopts);
  Add(C.JitChainPatches, JitChainPatches);
  Add(C.AdaptiveSamples, AdaptiveSamples);
  Add(C.AdaptiveSwaps, AdaptiveSwaps);
  Add(C.AdaptiveCooldownBlocked, AdaptiveCooldownBlocked);
}
