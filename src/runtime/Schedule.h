//===- runtime/Schedule.h - Cooperative schedule control --------*- C++-*-===//
//
// Part of the llsc-dbt project (CGO'21 LL/SC atomic emulation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pluggable schedule control for Machine::run in Scheduled mode: a controller
/// picks which runnable vCPU executes the next slice of the deterministic
/// single-host-thread runner, and an observer inspects machine state after
/// every slice. Built for the differential concurrency fuzzer
/// (tools/llsc-fuzz, docs/FUZZING.md): exhaustive interleaving enumeration
/// replays explicit slice traces via FixedSchedule, and the randomized
/// search uses PctSchedule — the priority-based probabilistic concurrency
/// testing sampler (Burckhardt et al., ASPLOS'10) — to hit deep orderings
/// that round-robin never produces.
///
/// Every controller is deterministic: same construction arguments, same
/// halting pattern => same schedule. That is what makes fuzzer repros
/// replayable from a seed alone.
///
//===----------------------------------------------------------------------===//

#ifndef LLSC_RUNTIME_SCHEDULE_H
#define LLSC_RUNTIME_SCHEDULE_H

#include "support/Random.h"

#include <cstddef>
#include <cstdint>
#include <vector>

namespace llsc {

/// Picks which vCPU runs the next slice in Machine::run (Scheduled mode).
class ScheduleController {
public:
  virtual ~ScheduleController() = default;

  /// Called once when a run starts, before any slice executes.
  virtual void begin(unsigned NumThreads) { (void)NumThreads; }

  /// Picks the tid to run next. \p Runnable lists the not-yet-halted,
  /// not-timed-out tids in ascending order and is never empty. \returns
  /// one of them, or a negative value to end the run early.
  virtual int pickNext(const std::vector<unsigned> &Runnable) = 0;
};

/// Observes machine state between slices (registers, guest memory, event
/// counters). The fuzzer's oracle hooks in here.
class SliceObserver {
public:
  virtual ~SliceObserver() = default;

  /// Called after slice number \p StepIndex ran on \p Tid. \returns false
  /// to end the run early.
  virtual bool onSlice(unsigned Tid, uint64_t StepIndex) = 0;
};

/// Cycles through runnable tids in ascending order — the schedule
/// Machine::run's Cooperative mode has always produced, now expressed as
/// a controller.
class RoundRobinSchedule final : public ScheduleController {
public:
  int pickNext(const std::vector<unsigned> &Runnable) override {
    // The smallest runnable tid strictly greater than the last choice;
    // wraps to the smallest runnable tid.
    for (unsigned Tid : Runnable)
      if (static_cast<int>(Tid) > Last)
        return Last = static_cast<int>(Tid);
    return Last = static_cast<int>(Runnable.front());
  }

private:
  int Last = -1;
};

/// Replays an explicit slice trace (tid per slice), then optionally drains
/// the remaining threads round-robin so the program can finish. Trace
/// entries whose tid is no longer runnable are skipped — that keeps a
/// trace recorded against one fix level replayable against another, where
/// threads may halt earlier.
class FixedSchedule final : public ScheduleController {
public:
  explicit FixedSchedule(std::vector<unsigned> Trace, bool DrainAfter = true)
      : Trace(std::move(Trace)), DrainAfter(DrainAfter) {}

  int pickNext(const std::vector<unsigned> &Runnable) override;

  /// Index of the first unconsumed trace entry (for observers that want
  /// to know whether the run is still inside the trace).
  std::size_t position() const { return Next; }

private:
  std::vector<unsigned> Trace;
  std::size_t Next = 0;
  bool DrainAfter;
  RoundRobinSchedule Drain;
};

/// Probabilistic concurrency testing: every thread gets a random distinct
/// priority; the highest-priority runnable thread always runs; at \p Depth
/// - 1 pre-sampled change points (slice indices in [0, StepHorizon)) the
/// running thread's priority drops below everyone else's. With d-1 change
/// points the schedule finds any bug of "depth" d with probability >=
/// 1/(n * k^(d-1)) — far better than uniform random walk for ordering
/// bugs, which is exactly what LL/SC monitor bugs are.
class PctSchedule final : public ScheduleController {
public:
  /// \p StepHorizon is the expected slice-count scale used to place change
  /// points (an over-estimate is fine; an under-estimate just means late
  /// slices see no more changes).
  PctSchedule(uint64_t Seed, unsigned Depth, uint64_t StepHorizon);

  void begin(unsigned NumThreads) override;
  int pickNext(const std::vector<unsigned> &Runnable) override;

private:
  Rng Rand;
  unsigned Depth;
  uint64_t StepHorizon;
  uint64_t Step = 0;
  uint64_t NextFresh = 0; ///< Priorities count down; lower = weaker.
  std::vector<uint64_t> Priority;        ///< Indexed by tid.
  std::vector<uint64_t> ChangePoints;    ///< Sorted ascending.
  std::size_t NextChange = 0;
};

} // namespace llsc

#endif // LLSC_RUNTIME_SCHEDULE_H
